// Tests for the version/digest algebra of §5: the ≼ order of Def. 7, the
// digest chain D(ω1..ωm), and value hashing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ustor/types.h"

namespace faust::ustor {
namespace {

Version ver(std::initializer_list<Timestamp> ts) {
  Version v(static_cast<int>(ts.size()));
  int k = 1;
  for (const Timestamp t : ts) v.v(k++) = t;
  return v;
}

/// Builds a version whose digests are consistent with a single chain, as
/// the protocol produces: M[k] = digest of the chain at C_k's last op.
Version chained_from(const std::vector<int>& op_clients, std::size_t count, int n) {
  Version v(n);
  Digest d = Digest::bottom();
  for (std::size_t q = 0; q < count && q < op_clients.size(); ++q) {
    const int c = op_clients[q];
    d = chain_step(d, c);
    v.v(c) += 1;
    v.m(c) = d;
  }
  return v;
}

Version chained(std::initializer_list<int> op_clients, int n) {
  const std::vector<int> ops(op_clients);
  return chained_from(ops, ops.size(), n);
}

TEST(Version, ZeroDetection) {
  Version v(3);
  EXPECT_TRUE(v.is_zero());
  v.v(2) = 1;
  EXPECT_FALSE(v.is_zero());
  Version w(3);
  w.m(1) = chain_step(Digest::bottom(), 1);
  EXPECT_FALSE(w.is_zero());
}

TEST(Version, LeqReflexive) {
  const Version v = chained({1, 2, 1, 3}, 3);
  EXPECT_TRUE(version_leq(v, v));
  EXPECT_EQ(version_compare(v, v), VersionOrder::kEqual);
}

TEST(Version, PrefixChainsAreOrdered) {
  const Version a = chained({1, 2}, 3);
  const Version b = chained({1, 2, 3, 1}, 3);
  EXPECT_TRUE(version_leq(a, b));
  EXPECT_FALSE(version_leq(b, a));
  EXPECT_EQ(version_compare(a, b), VersionOrder::kLess);
  EXPECT_EQ(version_compare(b, a), VersionOrder::kGreater);
  EXPECT_TRUE(versions_comparable(a, b));
}

TEST(Version, DivergedChainsIncomparable) {
  // Same op counts per client but different orders -> different digests.
  const Version a = chained({1, 2}, 2);
  const Version b = chained({2, 1}, 2);
  EXPECT_FALSE(version_leq(a, b));
  EXPECT_FALSE(version_leq(b, a));
  EXPECT_EQ(version_compare(a, b), VersionOrder::kIncomparable);
  EXPECT_FALSE(versions_comparable(a, b));
}

TEST(Version, ForkedSuffixesIncomparable) {
  // Common prefix [1], then fork: one world sees 1's next op, the other
  // sees 2's. V vectors are ordered only if digests agree on equal
  // entries — they do not.
  const Version a = chained({1, 1}, 2);    // V = [2,0]
  const Version b = chained({1, 2}, 2);    // V = [1,1]
  EXPECT_EQ(version_compare(a, b), VersionOrder::kIncomparable);
}

TEST(Version, DigestMismatchBlocksOrderOnEqualEntry) {
  Version a = chained({1, 2}, 2);
  Version b = chained({1, 2, 2}, 2);
  // Corrupt a's digest for client 1 (same count, different digest).
  a.m(1) = chain_step(Digest::bottom(), 2);
  EXPECT_FALSE(version_leq(a, b));
}

TEST(Version, LeqTransitiveOnChains) {
  Rng rng(4);
  const int n = 4;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> ops;
    for (int i = 0; i < 12; ++i) ops.push_back(static_cast<int>(rng.next_in(1, n)));
    const auto take = [&](std::size_t count) {
      return chained_from(ops, count, n);
    };
    const std::size_t i = rng.next_below(ops.size());
    const std::size_t j = rng.next_in(i, ops.size() - 1);
    const std::size_t k = rng.next_in(j, ops.size() - 1);
    const Version a = take(i), b = take(j), c = take(k);
    EXPECT_TRUE(version_leq(a, b));
    EXPECT_TRUE(version_leq(b, c));
    EXPECT_TRUE(version_leq(a, c));
  }
}

TEST(Digest, ChainIsPositionSensitive) {
  const Digest d1 = chain_step(chain_step(Digest::bottom(), 1), 2);
  const Digest d2 = chain_step(chain_step(Digest::bottom(), 2), 1);
  EXPECT_FALSE(d1 == d2);
}

TEST(Digest, BottomEncodesDistinctly) {
  EXPECT_NE(encode_digest(Digest::bottom()), encode_digest(chain_step(Digest::bottom(), 1)));
}

TEST(Version, EncodingInjective) {
  const Version a = chained({1, 2, 1}, 3);
  Version b = a;
  b.v(3) = 1;
  EXPECT_NE(encode_version(a), encode_version(b));
  Version c = a;
  c.m(2) = chain_step(c.m(2), 3);
  EXPECT_NE(encode_version(a), encode_version(c));
}

TEST(Value, HashDistinguishesBottomFromEmpty) {
  EXPECT_NE(value_hash(std::nullopt), value_hash(Bytes{}));
}

TEST(Value, HashDistinct) {
  EXPECT_NE(value_hash(to_bytes("a")), value_hash(to_bytes("b")));
  EXPECT_EQ(value_hash(to_bytes("a")), value_hash(to_bytes("a")));
}

TEST(Version, ToStringFormat) {
  EXPECT_EQ(ver({1, 2, 3}).to_string(), "[1,2,3]");
  EXPECT_EQ(Version(1).to_string(), "[0]");
}

}  // namespace
}  // namespace faust::ustor
