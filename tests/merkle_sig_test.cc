// Tests for the hash-based Merkle signature scheme, including running the
// full USTOR protocol over it (no protocol change — decision D4).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.h"
#include "crypto/merkle_sig.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"
#include "ustor/server.h"

namespace faust::crypto {
namespace {

std::shared_ptr<MerkleSignatureScheme> make_scheme(int n, int height = 3) {
  const Bytes seed = to_bytes("mss-test-seed");
  return std::make_shared<MerkleSignatureScheme>(n, seed, height);
}

TEST(MerkleSig, SignVerifyRoundtrip) {
  auto scheme = make_scheme(2);
  const Bytes msg = to_bytes("attack at dawn");
  const Bytes sig = scheme->sign(1, msg);
  EXPECT_EQ(sig.size(), scheme->signature_size());
  EXPECT_TRUE(scheme->verify(1, msg, sig));
}

TEST(MerkleSig, EachSignatureUsesAFreshLeaf) {
  auto scheme = make_scheme(1, /*height=*/3);
  EXPECT_EQ(scheme->signatures_remaining(1), 8u);
  std::set<Bytes> sigs;
  for (int k = 0; k < 8; ++k) {
    const Bytes msg = to_bytes("same message");
    const Bytes sig = scheme->sign(1, msg);
    EXPECT_TRUE(scheme->verify(1, msg, sig));
    EXPECT_TRUE(sigs.insert(sig).second) << "leaf reuse!";
  }
  EXPECT_EQ(scheme->signatures_remaining(1), 0u);
}

TEST(MerkleSig, WrongMessageRejected) {
  auto scheme = make_scheme(2);
  const Bytes sig = scheme->sign(1, to_bytes("m1"));
  EXPECT_FALSE(scheme->verify(1, to_bytes("m2"), sig));
}

TEST(MerkleSig, WrongSignerRejected) {
  auto scheme = make_scheme(3);
  const Bytes msg = to_bytes("m");
  const Bytes sig = scheme->sign(1, msg);
  EXPECT_FALSE(scheme->verify(2, msg, sig));
  EXPECT_FALSE(scheme->verify(3, msg, sig));
  EXPECT_FALSE(scheme->verify(0, msg, sig));
  EXPECT_FALSE(scheme->verify(4, msg, sig));
}

TEST(MerkleSig, TamperedSignatureRejectedEverywhere) {
  auto scheme = make_scheme(1);
  const Bytes msg = to_bytes("m");
  const Bytes sig = scheme->sign(1, msg);
  // Flip one bit in each region of the signature: leaf index, revealed
  // secrets, complement hashes, auth path.
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{20}, std::size_t{100}, sig.size() - 5}) {
    Bytes bad = sig;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(scheme->verify(1, msg, bad)) << "byte " << pos;
  }
  Bytes truncated = sig;
  truncated.pop_back();
  EXPECT_FALSE(scheme->verify(1, msg, truncated));
  EXPECT_FALSE(scheme->verify(1, msg, Bytes{}));
}

TEST(MerkleSig, PublicKeysDifferPerClientAndSeed) {
  auto a = make_scheme(2);
  EXPECT_NE(a->public_key(1), a->public_key(2));
  MerkleSignatureScheme b(2, to_bytes("other seed"), 3);
  EXPECT_NE(a->public_key(1), b.public_key(1));
  const Bytes msg = to_bytes("m");
  EXPECT_FALSE(b.verify(1, msg, a->sign(1, msg)));
}

TEST(MerkleSig, DeterministicKeysFromSeed) {
  auto a = make_scheme(1);
  auto b = make_scheme(1);
  EXPECT_EQ(a->public_key(1), b->public_key(1));
  // Same leaf, same message => identical signature (fully deterministic).
  EXPECT_EQ(a->sign(1, to_bytes("m")), b->sign(1, to_bytes("m")));
}

TEST(MerkleSig, RandomBitFuzzNeverVerifies) {
  auto scheme = make_scheme(1);
  const Bytes msg = to_bytes("fuzz target");
  const Bytes sig = scheme->sign(1, msg);
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes bad = sig;
    bad[rng.next_below(bad.size())] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_FALSE(scheme->verify(1, msg, bad));
  }
}

TEST(MerkleSig, UstorRunsUnchangedOverMss) {
  // The whole point of the SignatureScheme interface: USTOR with true
  // hash-based digital signatures, zero protocol changes.
  constexpr int kN = 2;
  sim::Scheduler sched;
  net::Network net(sched, Rng(5), net::DelayModel{2, 6});
  auto scheme = make_scheme(kN, /*height=*/5);  // 32 sigs per client
  ustor::Server server(kN, net);
  ustor::Client c1(1, kN, scheme, net);
  ustor::Client c2(2, kN, scheme, net);

  const auto drive = [&](auto fn) {
    bool done = false;
    fn(done);
    while (!done && sched.step()) {
    }
    return done;
  };
  ASSERT_TRUE(drive([&](bool& done) {
    c1.writex(to_bytes("signed with MSS"), [&](const ustor::WriteResult&) { done = true; });
  }));
  ustor::Value got;
  ASSERT_TRUE(drive([&](bool& done) {
    c2.readx(1, [&](const ustor::ReadResult& r) {
      got = r.value;
      done = true;
    });
  }));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_string(*got), "signed with MSS");
  EXPECT_FALSE(c1.failed());
  EXPECT_FALSE(c2.failed());
}

}  // namespace
}  // namespace faust::crypto
