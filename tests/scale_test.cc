// Scale and boundary tests: degenerate n=1 deployments, larger clusters,
// large values, long op streams, and the write-reply shape attack.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/forking_server.h"
#include "adversary/tamper_server.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "faust/cluster.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"

namespace faust {
namespace {

TEST(Scale, SingleClientClusterWorks) {
  ClusterConfig cfg;
  cfg.n = 1;
  Cluster cl(cfg);
  const Timestamp t1 = cl.write(1, "only me");
  EXPECT_EQ(t1, 1u);
  const ustor::Value v = cl.read(1, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "only me");
  // With n=1 every op is trivially stable w.r.t. everyone immediately.
  EXPECT_GE(cl.client(1).fully_stable_timestamp(), t1);
  cl.run_for(10'000);
  EXPECT_FALSE(cl.any_failed());
}

TEST(Scale, SixteenClientsConvergeToFullStability) {
  ClusterConfig cfg;
  cfg.n = 16;
  cfg.seed = 321;
  cfg.faust.dummy_read_period = 200;
  cfg.faust.probe_interval = 10'000;
  cfg.faust.probe_check_period = 2'000;
  Cluster cl(cfg);
  const Timestamp t = cl.write(1, "broadcast me");
  // One dummy-read round-robin cycle at every client suffices; give a few.
  cl.run_for(120'000);
  EXPECT_GE(cl.client(1).fully_stable_timestamp(), t);
  EXPECT_FALSE(cl.any_failed());
}

TEST(Scale, LargeValuesRoundtrip) {
  ClusterConfig cfg;
  cfg.n = 2;
  Cluster cl(cfg);
  Rng rng(42);
  Bytes big(256 * 1024);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.next_u64());
  bool done = false;
  cl.client(1).write(big, [&](Timestamp) { done = true; });
  while (!done && cl.sched().step()) {
  }
  ASSERT_TRUE(done);
  const ustor::Value v = cl.read(2, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, big) << "quarter-megabyte value must roundtrip bit-exactly";
}

TEST(Scale, LongOpStreamStaysHealthy) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 5150;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cl(cfg);
  for (int k = 0; k < 300; ++k) {
    const ClientId w = (k % 3) + 1;
    ASSERT_GT(cl.write(w, "v" + std::to_string(k)), 0u);
    const ustor::Value v = cl.read(((k + 1) % 3) + 1, w);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(to_string(*v), "v" + std::to_string(k));
  }
  EXPECT_FALSE(cl.any_failed());
  // 300 writes + 300 reads + per-op overhead — timestamps reflect it.
  EXPECT_GE(cl.client(1).engine().version().v(1), 100u);
}

TEST(Scale, WriteReplyWithReadPayloadRejected) {
  // The inverse shape attack of kDropReadPayload: answering a write with
  // a read-shaped reply must be rejected as malformed.
  sim::Scheduler sched;
  net::Network net(sched, Rng(4), net::DelayModel{2, 4});
  auto sigs = crypto::make_hmac_scheme(2);
  adversary::TamperServer server(2, net, adversary::Tamper::kAddReadPayload,
                                 /*victim=*/1, /*fire_on_op=*/2);
  ustor::Client c1(1, 2, sigs, net);
  ustor::Client c2(2, 2, sigs, net);

  bool first = false;
  c1.writex(to_bytes("ok"), [&](const ustor::WriteResult&) { first = true; });
  sched.run();
  ASSERT_TRUE(first);

  c1.writex(to_bytes("poisoned"), [](const ustor::WriteResult&) {
    FAIL() << "shape-corrupted operation must not complete";
  });
  sched.run();
  EXPECT_TRUE(c1.failed());
  EXPECT_EQ(c1.fail_cause(), ustor::FailCause::kMalformedMessage);
}

TEST(Scale, ManyForksManyWorlds) {
  // Every client forked into its own world: n mutually incomparable
  // version chains, all detected once probes fire.
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 999;
  cfg.with_server = false;
  cfg.faust.dummy_read_period = 300;
  cfg.faust.probe_interval = 2'500;
  cfg.faust.probe_check_period = 600;
  Cluster cl(cfg);
  adversary::ForkingServer server(cfg.n, cl.net());
  cl.write(1, "base");
  cl.read(2, 1);
  cl.read(3, 1);
  cl.read(4, 1);
  for (ClientId c = 2; c <= 4; ++c) server.split(c);
  EXPECT_EQ(server.num_forks(), 4);
  for (ClientId c = 1; c <= 4; ++c) cl.write(c, "world-" + std::to_string(c));
  cl.run_for(400'000);
  EXPECT_TRUE(cl.all_failed());
}

}  // namespace
}  // namespace faust
