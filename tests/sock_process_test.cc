// Multi-process deployment tests (DESIGN.md D9): real faust_sockd worker
// processes behind sock::SocketTransport, driven through the unchanged
// api::Store and scenario harness. The headline assertions are the
// acceptance gates of the real-socket milestone:
//
//   * an all-real deployment (every shard server a separate OS process,
//     loopback TCP) serves the seeded scenario with a mid-run SIGKILL +
//     restart-with-recovery, and its merged-view digest is byte-equal to
//     the deterministic in-process oracle on the same seeds;
//   * the loopback load generator (`faust_sockd load`) run as a real
//     subprocess reports the same digest;
//   * cache_mute: with the worker's cache node silenced, CacheClient
//     lookups time out and fall back to the shard path (the timeout
//     audit satellite) — ops still complete, zero cache-served slots;
//   * mixed deployments (process_shards < S) interoperate.
//
// The worker binary path arrives via the FAUST_SOCKD_PATH compile
// definition (CMake injects $<TARGET_FILE:faust_sockd>).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "api/store.h"
#include "common/hex.h"
#include "scenario/runner.h"
#include "shard/sharded_cluster.h"

namespace faust {
namespace {

struct TempDirFixture {
  std::string path;
  explicit TempDirFixture(const std::string& tag) {
    path = std::string(::testing::TempDir()) + "/faust_proc_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDirFixture() { std::filesystem::remove_all(path); }
};

sock::ProcessOptions process_options(bool tcp) {
  sock::ProcessOptions p;
  p.worker_path = FAUST_SOCKD_PATH;
  p.use_tcp = tcp;
  return p;
}

std::string digest_hex(const scenario::ScenarioResult& r) {
  return hex_encode(BytesView(r.merged_digest.data(), r.merged_digest.size()));
}

// --- Store over a single real shard process --------------------------------

TEST(SockProcess, StoreOverOneRealShardProcess) {
  TempDirFixture dir("store1");
  shard::ShardedClusterConfig cfg;
  cfg.shards = 1;
  cfg.seed = 11;
  cfg.mode = shard::ExecMode::kProcess;
  cfg.durability_root = dir.path;
  cfg.process = process_options(/*tcp=*/true);

  shard::ShardedCluster deployment(cfg);
  ASSERT_TRUE(deployment.process_shard(0));
  {
    auto store = api::open_store(deployment, 1);
    const api::PutResult put = store->put("alpha", "one").wait();
    EXPECT_FALSE(put.failed);
    const api::GetResult hit = store->get("alpha").wait();
    EXPECT_FALSE(hit.failed);
    ASSERT_TRUE(hit.entry.has_value());
    EXPECT_EQ(hit.entry->value, "one");
    const api::GetResult miss = store->get("beta").wait();
    EXPECT_FALSE(miss.failed);
    EXPECT_FALSE(miss.entry.has_value());
  }
  // Graceful shutdown returns the worker's STATS line: the put really
  // crossed the socket into the worker's WAL.
  const auto stats = deployment.finalize_processes();
  ASSERT_EQ(stats.size(), 1u);
  ASSERT_TRUE(stats[0].has_value());
  EXPECT_GT(stats[0]->wal_records, 0u);
}

// --- The acceptance differential -------------------------------------------

scenario::ScenarioConfig acceptance_config(const std::string& dir) {
  scenario::ScenarioConfig cfg;
  cfg.shards = 3;
  cfg.cluster_seed = 5;
  cfg.dir = dir;
  cfg.snapshot_every = 24;
  cfg.workload.seed = 71;
  cfg.workload.n_keys = 4'000;
  cfg.workload.n_ops = 120;
  cfg.workload.n_writers = 2;
  return cfg;
}

TEST(SockProcess, AllRealProcessesWithKillMatchDeterministicOracle) {
  TempDirFixture proc_dir("accept_p"), oracle_dir("accept_o");

  scenario::ScenarioConfig pc = acceptance_config(proc_dir.path);
  pc.mode = shard::ExecMode::kProcess;
  pc.process = process_options(/*tcp=*/true);
  scenario::KillEvent kill;
  kill.at_op = 60;
  kill.shard = 1;
  kill.downtime = 20'000;  // ticks × process.tick of real downtime
  pc.kills.push_back(kill);
  const scenario::ScenarioResult pr = scenario::run_scenario(pc);
  ASSERT_TRUE(pr.complete);
  EXPECT_FALSE(pr.any_failed);
  EXPECT_TRUE(pr.merged_complete);
  EXPECT_EQ(pr.restarts, 1);
  EXPECT_GE(pr.wire_reconnects, 1u) << "the killed worker's clients must redial";
  EXPECT_GT(pr.wire_socket_bytes, pr.wire_payload_bytes)
      << "socket accounting must include framing";
  EXPECT_GT(pr.wal_records, 0u) << "worker STATS must be collected";

  // The oracle: same seeds, fully in-process, deterministic, crash-free.
  // Byte-equal merged views pin the entire socket/process stack — framing,
  // reconnect, real recovery from disk — to change NOTHING about the
  // outcome, only the latency profile.
  scenario::ScenarioConfig oc = acceptance_config(oracle_dir.path);
  oc.mode = shard::ExecMode::kDeterministic;
  const scenario::ScenarioResult orr = scenario::run_scenario(oc);
  ASSERT_TRUE(orr.complete);
  EXPECT_EQ(digest_hex(pr), digest_hex(orr));
  EXPECT_EQ(pr.merged.size(), orr.merged.size());
}

// --- The load generator as a real subprocess --------------------------------

TEST(SockProcess, LoadGeneratorSubprocessReportsOracleDigest) {
  TempDirFixture load_dir("load_p"), oracle_dir("load_o");

  const std::string cmd = std::string(FAUST_SOCKD_PATH) +
                          " load --shards 3 --dir " + load_dir.path +
                          " --tcp --ops 90 --keys 4000 --writers 2 --seed 71" +
                          " --cluster-seed 5 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string out;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "load generator failed:\n"
      << out;

  const auto at = out.find("digest=");
  ASSERT_NE(at, std::string::npos) << out;
  const std::string digest = out.substr(at + 7, 64);

  scenario::ScenarioConfig oc;
  oc.shards = 3;
  oc.cluster_seed = 5;
  oc.dir = oracle_dir.path;
  oc.workload.seed = 71;
  oc.workload.n_keys = 4'000;
  oc.workload.n_ops = 90;
  oc.workload.n_writers = 2;
  oc.mode = shard::ExecMode::kDeterministic;
  const scenario::ScenarioResult orr = scenario::run_scenario(oc);
  ASSERT_TRUE(orr.complete);
  EXPECT_EQ(digest, digest_hex(orr)) << out;
}

// --- Timeout audit: muted cache → lookup_timeout → shard-path fallback -----

TEST(SockProcess, MutedCacheTimesOutAndFallsBackToShardPath) {
  TempDirFixture dir("mute");
  scenario::ScenarioConfig cfg;
  cfg.shards = 2;
  cfg.cluster_seed = 9;
  cfg.dir = dir.path;
  cfg.workload.seed = 13;
  cfg.workload.n_keys = 500;
  cfg.workload.n_ops = 40;
  cfg.workload.read_fraction = 0.7;
  cfg.mode = shard::ExecMode::kProcess;
  cfg.process = process_options(/*tcp=*/false);  // UDS leg of the matrix
  cfg.process.cache_mute = true;
  cfg.cache.enabled = true;

  const scenario::ScenarioResult r = scenario::run_scenario(cfg);
  ASSERT_TRUE(r.complete) << "lookup timeouts must degrade to misses, not hangs";
  EXPECT_FALSE(r.any_failed);
  EXPECT_GT(r.reads, 0u);
  EXPECT_EQ(r.registers_cache_served, 0u) << "nothing can be served by a mute cache";
  EXPECT_GT(r.registers_engine_read, 0u);
}

// --- D10 chaos storm over real sockets --------------------------------------

TEST(SockProcess, ChaosStormOverRealSocketsMatchesOracle) {
  // The D10 acceptance storm, socket side: every shard a real worker
  // process, with the transport's chaos shim live for the whole run —
  // receive-path latency plus mid-frame connection resets (the TCP
  // translation of probabilistic loss; see schedule.h) — and one 2s
  // asymmetric blackhole partition of shard 1 mid-run. Clients ride it
  // out on deadlines + retransmission, no fail_i fires, and the merged
  // view is byte-identical to the deterministic chaos-free oracle.
  TempDirFixture storm_dir("chaos_p"), oracle_dir("chaos_o");

  scenario::ScenarioConfig cfg = acceptance_config(storm_dir.path);
  cfg.mode = shard::ExecMode::kProcess;
  cfg.process = process_options(/*tcp=*/true);
  cfg.retransmit_base = 800;  // lossy fabric: re-sends own recovery
  cfg.fault_plan.drop = 0.05;
  cfg.fault_plan.jitter = 2'000;  // ticks × 1us tick = 2ms rx latency

  scenario::PartitionEvent part;
  part.at_op = 40;
  part.shard = 1;
  part.duration = 2'000'000;  // ticks × 1us tick = 2s of real cut
  part.symmetric = false;
  cfg.partitions = {part};

  scenario::ChaosEvent burst;  // a second reset wave mid-run
  burst.at_op = 70;
  burst.shard = 0;
  burst.plan.drop = 0.05;
  burst.plan.jitter = 2'000;
  cfg.chaos = {burst};

  const scenario::ScenarioResult r = scenario::run_scenario(cfg);
  ASSERT_TRUE(r.complete) << "every op must ride out the storm";
  EXPECT_FALSE(r.any_failed)
      << "socket chaos is a timing fault; fail_i here is a false detection";
  ASSERT_TRUE(r.merged_complete);
  EXPECT_GT(r.chaos_resets, 0u) << "the shim must really cut connections";
  EXPECT_GT(r.chaos_delayed, 0u) << "the latency shim must really delay frames";
  EXPECT_GT(r.chaos_blackholed, 0u) << "the partition must swallow traffic";
  EXPECT_GT(r.retransmits, 0u);
  EXPECT_GE(r.wire_reconnects, 1u) << "resets force the redial/backoff path";

  scenario::ScenarioConfig oc = acceptance_config(oracle_dir.path);
  oc.mode = shard::ExecMode::kDeterministic;
  const scenario::ScenarioResult orr = scenario::run_scenario(oc);
  ASSERT_TRUE(orr.complete);
  EXPECT_EQ(digest_hex(r), digest_hex(orr))
      << "the storm changed latency, not history";
}

// --- Mixed deployment: one real process shard, one in-process shard --------

TEST(SockProcess, MixedProcessAndInProcessShardsMatchOracle) {
  TempDirFixture mix_dir("mix_p"), oracle_dir("mix_o");

  scenario::ScenarioConfig mc;
  mc.shards = 2;
  mc.cluster_seed = 21;
  mc.dir = mix_dir.path;
  mc.workload.seed = 34;
  mc.workload.n_keys = 1'000;
  mc.workload.n_ops = 60;
  mc.mode = shard::ExecMode::kProcess;
  mc.process = process_options(/*tcp=*/true);
  mc.process.process_shards = 1;  // shard 0 real, shard 1 in-process
  const scenario::ScenarioResult mr = scenario::run_scenario(mc);
  ASSERT_TRUE(mr.complete);
  EXPECT_FALSE(mr.any_failed);
  EXPECT_GT(mr.wire_socket_bytes, 0u) << "the process shard crossed a socket";

  scenario::ScenarioConfig oc = mc;
  oc.dir = oracle_dir.path;
  oc.mode = shard::ExecMode::kDeterministic;
  oc.process = {};
  const scenario::ScenarioResult orr = scenario::run_scenario(oc);
  ASSERT_TRUE(orr.complete);
  EXPECT_EQ(digest_hex(mr), digest_hex(orr));
}

}  // namespace
}  // namespace faust
