// Byzantine cache node: every lie an EvilCacheNode can tell must be
// REJECTED by the client-side verification (tampered values, forged
// digests/signatures, bogus negatives, fake unchanged tokens) or at
// worst degrade to stale-but-authentic data with the staleness surfaced
// (stale-beyond-TTL serving). In every mode the client falls back to the
// home shard and reads the CORRECT value, and the deployment never
// condemns anyone — the cache is not a protocol party, so no fail_i.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/evil_cache.h"
#include "cache/cache_client.h"
#include "faust/cluster.h"
#include "kvstore/kv_client.h"

namespace faust::adversary {
namespace {

using cache::CacheClient;
using cache::CacheOptions;
using cache::kCacheNodeId;

struct EvilRig {
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<EvilCacheNode> node;
  std::vector<std::unique_ptr<kv::KvClient>> kv;
  std::vector<std::unique_ptr<CacheClient>> hops;

  explicit EvilRig(EvilCacheNode::Mode mode, std::uint64_t seed = 99, int n = 3,
                   exec::Time ttl = 200'000) {
    cfg.n = n;
    cfg.seed = seed;
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    cluster = std::make_unique<Cluster>(cfg);
    CacheOptions opts;
    opts.enabled = true;
    opts.ttl = ttl;
    node = std::make_unique<EvilCacheNode>(kCacheNodeId, cluster->net(), cluster->exec(),
                                           n, opts, mode);
    for (ClientId i = 1; i <= n; ++i) {
      kv.push_back(std::make_unique<kv::KvClient>(cluster->client(i)));
      hops.push_back(std::make_unique<CacheClient>(
          i, kCacheNodeId, n, cluster->sigs(), cfg.faust.data_digest, cluster->net(),
          cluster->exec(), opts.lookup_timeout));
      kv.back()->attach_cache(hops.back().get());
    }
  }

  kv::KvClient& client(ClientId i) { return *kv[static_cast<std::size_t>(i - 1)]; }
  CacheClient& hop(ClientId i) { return *hops[static_cast<std::size_t>(i - 1)]; }

  void drive(const bool& done) {
    std::size_t steps = 0;
    while (!done && steps < 2'000'000 && cluster->sched().step()) ++steps;
  }

  void put(ClientId i, const std::string& k, const std::string& v) {
    bool done = false;
    client(i).put(k, v, [&](Timestamp) { done = true; });
    drive(done);
    ASSERT_TRUE(done);
    cluster->run_for(100);  // fills land
  }

  struct Got {
    std::optional<kv::KvEntry> entry;
    kv::ReadOrigin origin;
    bool completed = false;
  };

  Got get(ClientId i, const std::string& k, bool bypass = false) {
    bool done = false;
    Got out;
    client(i).get_ex(k, bypass,
                     [&](std::optional<kv::KvEntry> e, Timestamp,
                         const kv::ReadOrigin& origin) {
                       out.entry = std::move(e);
                       out.origin = origin;
                       done = true;
                     });
    drive(done);
    out.completed = done;
    cluster->run_for(100);
    return out;
  }
};

/// Modes whose distortions must be rejected wholesale: the client reads
/// the correct value through the engine fallback every single time.
class RejectedDistortion : public ::testing::TestWithParam<EvilCacheNode::Mode> {};

TEST_P(RejectedDistortion, ClientRejectsFallsBackAndNobodyIsCondemned) {
  EvilRig rig(GetParam());
  rig.put(1, "k", "payload-one");
  rig.put(2, "other", "payload-two");

  for (int round = 0; round < 3; ++round) {
    for (ClientId reader = 1; reader <= 3; ++reader) {
      const EvilRig::Got got = rig.get(reader, "k");
      ASSERT_TRUE(got.completed) << "round " << round << " reader " << int(reader);
      ASSERT_TRUE(got.entry.has_value());
      EXPECT_EQ(got.entry->value, "payload-one")
          << "a Byzantine cache must never change an observed value";
      EXPECT_EQ(got.entry->writer, 1);
    }
  }

  EXPECT_GT(rig.node->corruptions(), 0u) << "the adversary must actually have lied";
  std::uint64_t rejected = 0;
  for (ClientId i = 1; i <= 3; ++i) rejected += rig.hop(i).sections_rejected();
  EXPECT_GT(rejected, 0u) << "distorted sections must be scored kRejected, not missed";
  EXPECT_FALSE(rig.cluster->any_failed())
      << "cache lies are absorbed by fallback — they never condemn the shard";
}

INSTANTIATE_TEST_SUITE_P(AllDistortions, RejectedDistortion,
                         ::testing::Values(EvilCacheNode::Mode::kTamperValue,
                                           EvilCacheNode::Mode::kForgeDigest,
                                           EvilCacheNode::Mode::kForgeSig));

TEST(EvilCache, BogusNegativeIsRefutedByTheClientsOwnKnowledge) {
  EvilRig rig(EvilCacheNode::Mode::kBogusNegative);
  rig.put(1, "k", "written");

  // Seed the reader's verified knowledge through the authoritative path:
  // the bypass read decodes X_1 and memoizes its digest.
  const EvilRig::Got seeded = rig.get(2, "k", /*bypass=*/true);
  ASSERT_TRUE(seeded.completed);
  ASSERT_TRUE(seeded.entry.has_value());

  // From here on, "X_1 was never written" is REFUTED outright: registers
  // never revert to ⊥, and the reader's own memo proves it was written.
  const EvilRig::Got second = rig.get(2, "k");
  ASSERT_TRUE(second.completed);
  ASSERT_TRUE(second.entry.has_value())
      << "a bogus negative must never erase a known-written register";
  EXPECT_EQ(second.entry->value, "written");
  EXPECT_GT(rig.hop(2).sections_rejected(), 0u);
  EXPECT_FALSE(rig.cluster->any_failed());
}

TEST(EvilCache, AcceptedNegativeIsAtWorstStaleAndHonestlyDated) {
  // A negative for a register the reader has NO verified knowledge of is
  // unverifiable-but-consistent: the client may accept it, and the merged
  // view then lags. The defence is honesty, not omniscience — the
  // all-negative snapshot reports cached=true with freshness horizon 0
  // ("never verified"), so a caller that needs freshness knows to bypass,
  // and the bypass path always sees the truth.
  EvilRig rig(EvilCacheNode::Mode::kBogusNegative);
  rig.put(1, "k", "written");
  const EvilRig::Got blinded = rig.get(2, "k");
  ASSERT_TRUE(blinded.completed);
  if (blinded.origin.cached && !blinded.entry.has_value()) {
    EXPECT_EQ(blinded.origin.as_of, 0u)
        << "a fabricated negative carries no credible freshness horizon";
  }
  const EvilRig::Got truth = rig.get(2, "k", /*bypass=*/true);
  ASSERT_TRUE(truth.completed);
  ASSERT_TRUE(truth.entry.has_value());
  EXPECT_EQ(truth.entry->value, "written");
  EXPECT_FALSE(rig.cluster->any_failed());
}

TEST(EvilCache, FakeUnchangedRejectedUnlessItIsActuallyTrue) {
  EvilRig rig(EvilCacheNode::Mode::kFakeUnchanged);
  rig.put(1, "k", "v1");
  (void)rig.get(2, "k");  // seeds the reader's memo with v1's digest

  // The writer moves on; the push fill updates the cache to v2. The evil
  // node now serves "unchanged" for a digest (v2) that does NOT match the
  // reader's advertised base (v1) — verification must reject it and the
  // engine fallback must deliver v2.
  rig.put(1, "k", "v2");
  const EvilRig::Got got = rig.get(2, "k");
  ASSERT_TRUE(got.completed);
  ASSERT_TRUE(got.entry.has_value());
  EXPECT_EQ(got.entry->value, "v2");
  EXPECT_GT(rig.node->corruptions(), 0u);
  EXPECT_GT(rig.hop(2).sections_rejected(), 0u);
  EXPECT_FALSE(rig.cluster->any_failed());
}

TEST(EvilCache, StaleBeyondTtlIsAuthenticAndSurfacedNeverFresh) {
  // TTL 3k ticks, but the evil node never expires anything. Without push
  // fills from the writer (only the reader has a cache hop) the node
  // keeps serving v1 long past its lifetime — which the client accepts
  // ONLY as what it is: authentic data with an old as_of horizon, never
  // eligible for stability. The bypass path sees v2 throughout.
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 77;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cluster(cfg);
  CacheOptions opts;
  opts.enabled = true;
  opts.ttl = 3'000;
  EvilCacheNode node(kCacheNodeId, cluster.net(), cluster.exec(), cfg.n, opts,
                     EvilCacheNode::Mode::kStaleBeyondTtl);
  kv::KvClient writer(cluster.client(1));
  kv::KvClient reader(cluster.client(2));
  CacheClient hop(2, kCacheNodeId, cfg.n, cluster.sigs(), cfg.faust.data_digest,
                  cluster.net(), cluster.exec(), opts.lookup_timeout);
  reader.attach_cache(&hop);

  const auto drive = [&](const bool& done) {
    std::size_t steps = 0;
    while (!done && steps < 2'000'000 && cluster.sched().step()) ++steps;
  };
  bool ok = false;
  writer.put("k", "v1", [&](Timestamp) { ok = true; });
  drive(ok);
  cluster.run_for(100);
  bool read1 = false;
  reader.get_ex("k", false,
                [&](std::optional<kv::KvEntry> e, Timestamp, const kv::ReadOrigin&) {
                  ASSERT_TRUE(e.has_value());
                  read1 = true;
                });
  drive(read1);
  cluster.run_for(100);  // read-through fill lands: cache holds v1

  ok = false;
  writer.put("k", "v2", [&](Timestamp) { ok = true; });  // no push fill (no hop)
  drive(ok);
  cluster.run_for(10'000);  // way past the TTL an honest node would honour

  Timestamp fresh_ts = 0;
  bool fresh = false;
  reader.get_ex("k", /*bypass_cache=*/true,
                [&](std::optional<kv::KvEntry> e, Timestamp t, const kv::ReadOrigin&) {
                  ASSERT_TRUE(e.has_value());
                  EXPECT_EQ(e->value, "v2");
                  fresh_ts = t;
                  fresh = true;
                });
  drive(fresh);

  bool read2 = false;
  reader.get_ex("k", false,
                [&](std::optional<kv::KvEntry> e, Timestamp t, const kv::ReadOrigin& o) {
                  ASSERT_TRUE(e.has_value());
                  if (o.cached) {
                    // Served stale: content is authentic v1, and both the
                    // snapshot timestamp and as_of date it BEFORE v2.
                    EXPECT_EQ(e->value, "v1");
                    EXPECT_GT(o.as_of, 0u);
                    EXPECT_LT(t, fresh_ts);
                  } else {
                    EXPECT_EQ(e->value, "v2");
                  }
                  read2 = true;
                });
  drive(read2);
  EXPECT_EQ(node.expirations(), 0u) << "the evil node never expires";
  EXPECT_FALSE(cluster.any_failed());
}

TEST(EvilCache, FrozenFillsDegradeToAMissMachine) {
  EvilRig rig(EvilCacheNode::Mode::kFreezeFills);
  rig.put(1, "k", "v1");
  EXPECT_EQ(rig.node->fills_accepted(), 0u);
  for (int round = 0; round < 3; ++round) {
    const EvilRig::Got got = rig.get(2, "k");
    ASSERT_TRUE(got.completed);
    ASSERT_TRUE(got.entry.has_value());
    EXPECT_EQ(got.entry->value, "v1");
    EXPECT_FALSE(got.origin.cached) << "nothing is ever cached, so nothing is served";
  }
  EXPECT_EQ(rig.node->hits(), 0u);
  EXPECT_GT(rig.hop(2).sections_missed(), 0u);
  EXPECT_FALSE(rig.cluster->any_failed());
}

TEST(EvilCache, DeadCacheNodeTimesOutIntoFallback) {
  // No node at all under kCacheNodeId: every lookup waits out the timer,
  // scores a miss, and the engine serves the read. Liveness is bounded by
  // the lookup timeout, correctness is untouched.
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 31;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cluster(cfg);
  kv::KvClient writer(cluster.client(1));
  kv::KvClient reader(cluster.client(2));
  CacheClient hop(2, kCacheNodeId, cfg.n, cluster.sigs(), cfg.faust.data_digest,
                  cluster.net(), cluster.exec(), /*lookup_timeout=*/500);
  reader.attach_cache(&hop);

  const auto drive = [&](const bool& done) {
    std::size_t steps = 0;
    while (!done && steps < 2'000'000 && cluster.sched().step()) ++steps;
  };
  bool ok = false;
  writer.put("k", "v", [&](Timestamp) { ok = true; });
  drive(ok);
  bool read = false;
  reader.get_ex("k", false,
                [&](std::optional<kv::KvEntry> e, Timestamp, const kv::ReadOrigin& o) {
                  ASSERT_TRUE(e.has_value());
                  EXPECT_EQ(e->value, "v");
                  EXPECT_FALSE(o.cached);
                  read = true;
                });
  drive(read);
  ASSERT_TRUE(read);
  EXPECT_GE(hop.timeouts(), 1u);
  EXPECT_FALSE(cluster.any_failed());
}

}  // namespace
}  // namespace faust::adversary
