// Wire robustness under a byte-level adversary, deterministic-RNG driven.
//
// Every USTOR message type (and the KV partition codec) is attacked three
// ways — truncation at every length, single-bit flips, and pure random
// garbage — and the decoders must never crash, never read out of bounds
// (the sanitizer CI job runs this suite under ASan+UBSan), and never
// accept a non-canonical buffer:
//
//   * any strict prefix of a valid encoding is rejected (the Reader's
//     sticky ok() flips and the decoder returns nullopt);
//   * any buffer a decoder does accept is in canonical form, i.e.
//     re-encoding the decoded message reproduces the buffer bit-for-bit.
//     This is decision D3 (unique encodings) pushed down to the fuzzer:
//     a bit flip either makes a different valid message or no message at
//     all — there is no third bucket of "same message, different bytes".
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kvstore/kv_client.h"
#include "ustor/messages.h"
#include "wire/encoder.h"

namespace faust::ustor {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes b(rng.next_below(max_len));
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

Version random_version(Rng& rng, int n) {
  Version v(n);
  for (int k = 1; k <= n; ++k) {
    v.v(k) = rng.next_below(1000);
    if (rng.next_below(2)) v.m(k) = chain_step(Digest::bottom(), k);
  }
  return v;
}

InvocationTuple random_invocation(Rng& rng, int n) {
  return {static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n))),
          rng.next_below(2) ? OpCode::kWrite : OpCode::kRead,
          static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n))),
          random_bytes(rng, 24)};
}

SignedVersion random_signed_version(Rng& rng, int n) {
  return {random_version(rng, n), random_bytes(rng, 24)};
}

crypto::Hash random_hash(Rng& rng) {
  crypto::Hash h{};
  for (auto& b : h) b = static_cast<std::uint8_t>(rng.next_u64());
  return h;
}

std::vector<Splice> random_splices(Rng& rng) {
  std::vector<Splice> out;
  for (std::size_t q = rng.next_below(4); q > 0; --q) {
    out.push_back(Splice{rng.next_below(64), rng.next_below(16), random_bytes(rng, 24)});
  }
  return out;
}

/// One random, valid encoding of every message type.
std::vector<Bytes> random_corpus(Rng& rng) {
  const int n = static_cast<int>(1 + rng.next_below(5));
  std::vector<Bytes> corpus;

  SubmitMessage sm;
  sm.t = rng.next_u64();
  sm.inv = random_invocation(rng, n);
  sm.value = rng.next_below(2) ? Value(random_bytes(rng, 32)) : std::nullopt;
  sm.data_sig = random_bytes(rng, 24);
  corpus.push_back(encode(sm));

  ReplyMessage rm;
  rm.c = static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n)));
  rm.last = random_signed_version(rng, n);
  if (rng.next_below(2)) {
    ReadPayload rp;
    rp.writer = random_signed_version(rng, n);
    rp.tj = rng.next_below(100);
    rp.value = rng.next_below(2) ? Value(random_bytes(rng, 32)) : std::nullopt;
    rp.data_sig = random_bytes(rng, 24);
    rm.read = std::move(rp);
  }
  for (std::size_t q = rng.next_below(3); q > 0; --q) rm.L.push_back(random_invocation(rng, n));
  for (int k = 0; k < n; ++k) rm.P.push_back(random_bytes(rng, 24));
  corpus.push_back(encode(rm));

  // SUBMIT_DELTA, write form (the opcode selects the wire shape, so it is
  // pinned rather than random).
  SubmitDeltaMessage sdw;
  sdw.t = rng.next_u64();
  sdw.inv = random_invocation(rng, n);
  sdw.inv.oc = OpCode::kWrite;
  sdw.base_digest = random_hash(rng);
  sdw.new_root = random_hash(rng);
  sdw.new_size = rng.next_below(4096);
  sdw.splices = random_splices(rng);
  sdw.data_sig = random_bytes(rng, 24);
  corpus.push_back(encode(sdw));

  // SUBMIT_DELTA, read form (an advertised-base read).
  SubmitDeltaMessage sdr;
  sdr.t = rng.next_u64();
  sdr.inv = random_invocation(rng, n);
  sdr.inv.oc = OpCode::kRead;
  sdr.base_ts = rng.next_below(1000);
  sdr.base_digest = random_hash(rng);
  sdr.data_sig = random_bytes(rng, 24);
  corpus.push_back(encode(sdr));

  // REPLY_DELTA: alternates between the "unchanged" token and the spliced
  // shape (the presence byte selects which fields exist on the wire).
  ReplyDeltaMessage rd;
  rd.c = static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n)));
  rd.last = random_signed_version(rng, n);
  rd.read.writer = random_signed_version(rng, n);
  rd.read.tj = rng.next_below(100);
  rd.read.unchanged = rng.next_below(2) == 1;
  rd.read.base_digest = random_hash(rng);
  if (!rd.read.unchanged) {
    rd.read.new_size = rng.next_below(4096);
    rd.read.splices = random_splices(rng);
  }
  rd.read.data_sig = random_bytes(rng, 24);
  for (std::size_t q = rng.next_below(3); q > 0; --q) rd.L.push_back(random_invocation(rng, n));
  for (int k = 0; k < n; ++k) rd.P.push_back(random_bytes(rng, 24));
  corpus.push_back(encode(rd));

  CommitMessage cm;
  cm.version = random_version(rng, n);
  cm.commit_sig = random_bytes(rng, 24);
  cm.proof_sig = random_bytes(rng, 24);
  corpus.push_back(encode(cm));

  corpus.push_back(encode(ProbeMessage{}));

  VersionMessage vm;
  vm.committer = static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n)));
  vm.ver = random_signed_version(rng, n);
  corpus.push_back(encode(vm));

  FailureMessage fm;
  fm.has_evidence = rng.next_below(2) == 1;
  if (fm.has_evidence) {
    fm.committer_a = 1;
    fm.a = random_signed_version(rng, n);
    fm.committer_b = 2;
    fm.b = random_signed_version(rng, n);
  }
  corpus.push_back(encode(fm));

  return corpus;
}

/// Decodes `data` as whatever its tag claims; on success returns the
/// canonical re-encoding.
std::optional<Bytes> decode_and_reencode(BytesView data) {
  const auto type = peek_type(data);
  if (!type.has_value()) return std::nullopt;
  switch (*type) {
    case MsgType::kSubmit:
      if (const auto m = decode_submit(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kReply:
      if (const auto m = decode_reply(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kSubmitDelta:
      if (const auto m = decode_submit_delta(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kReplyDelta:
      if (const auto m = decode_reply_delta(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kCommit:
      if (const auto m = decode_commit(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kProbe:
      if (const auto m = decode_probe(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kVersion:
      if (const auto m = decode_version(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kFailure:
      if (const auto m = decode_failure(data)) return encode(*m);
      return std::nullopt;
  }
  return std::nullopt;
}

TEST(WireFuzz, TruncationAlwaysRejected) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    for (int trial = 0; trial < 8; ++trial) {
      for (const Bytes& full : random_corpus(rng)) {
        // The untouched encoding decodes and is canonical.
        const auto intact = decode_and_reencode(full);
        ASSERT_TRUE(intact.has_value());
        EXPECT_EQ(*intact, full);
        // Every strict prefix is rejected.
        for (std::size_t len = 0; len < full.size(); ++len) {
          EXPECT_FALSE(decode_and_reencode(BytesView(full.data(), len)).has_value())
              << "seed " << seed << " accepted a " << len << "-byte prefix of a "
              << full.size() << "-byte message";
        }
      }
    }
  }
}

TEST(WireFuzz, BitFlipsNeverYieldNonCanonicalAcceptance) {
  for (std::uint64_t seed : {7u, 77u, 777u}) {
    Rng rng(seed);
    for (int trial = 0; trial < 8; ++trial) {
      for (const Bytes& full : random_corpus(rng)) {
        // Flip every bit of small messages; sample 512 flips of large ones.
        const std::size_t total_bits = full.size() * 8;
        const std::size_t flips = std::min<std::size_t>(total_bits, 512);
        for (std::size_t f = 0; f < flips; ++f) {
          const std::size_t bit =
              flips == total_bits ? f : rng.next_below(total_bits);
          Bytes mutated = full;
          mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          const auto re = decode_and_reencode(mutated);
          if (re.has_value()) {
            // Accepted ⇒ the mutated buffer is itself a canonical
            // encoding (possibly of another message type).
            EXPECT_EQ(*re, mutated)
                << "bit " << bit << " of a " << full.size()
                << "-byte message produced a non-canonical acceptance";
          }
        }
      }
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashesAndNeverDecodesNonCanonically) {
  for (std::uint64_t seed : {5u, 55u, 555u}) {
    Rng rng(seed);
    for (int trial = 0; trial < 4000; ++trial) {
      Bytes junk(rng.next_below(160));
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
      if (!junk.empty() && rng.next_below(2)) {
        junk[0] = static_cast<std::uint8_t>(1 + rng.next_below(12));  // valid-ish tag
      }
      const auto re = decode_and_reencode(junk);
      if (re.has_value()) EXPECT_EQ(*re, junk);
    }
  }
}

TEST(WireFuzz, ApplyDeltaRejectsOutOfBoundsSplicesAndSizeLies) {
  const Bytes base = to_bytes("0123456789");
  const auto apply = [&](std::vector<Splice> s, std::uint64_t expected) {
    return apply_delta(BytesView(base), std::span<const Splice>(s), expected);
  };

  // A splice offset past the end of the evolving buffer is rejected whole.
  EXPECT_FALSE(apply({Splice{11, 0, to_bytes("x")}}, 11).has_value());
  // An erase reaching past the end is rejected.
  EXPECT_FALSE(apply({Splice{5, 6, {}}}, 4).has_value());
  // A final size that does not match the spliced result is rejected even
  // when every splice is individually in bounds.
  EXPECT_FALSE(apply({Splice{0, 0, to_bytes("ab")}}, 10).has_value());
  // A second splice may run out of bounds on the SHRUNKEN intermediate
  // buffer even though it would fit the original.
  EXPECT_FALSE(apply({Splice{0, 8, {}}, Splice{2, 1, {}}}, 1).has_value());

  // The empty splice list is the identity (only usable when sizes agree).
  {
    const auto r = apply({}, base.size());
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, base);
  }
  // Inserting at exactly the end is an append, not out-of-bounds.
  {
    const auto r = apply({Splice{10, 0, to_bytes("!")}}, 11);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(to_string(*r), "0123456789!");
  }
  // Overlapping offsets are well-defined: splices apply SEQUENTIALLY, each
  // against the buffer produced by the previous one. "0123456789" →(0,5,"AB")
  // "AB56789" →(1,2,"Z") "AZ6789".
  {
    const auto r = apply({Splice{0, 5, to_bytes("AB")}, Splice{1, 2, to_bytes("Z")}}, 6);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(to_string(*r), "AZ6789");
  }
}

TEST(WireFuzz, KvMapCodecRejectsTruncationFlipsToCanonicalOnly) {
  using kv::decode_map;
  using kv::encode_map;
  for (std::uint64_t seed : {3u, 13u, 23u}) {
    Rng rng(seed);
    for (int trial = 0; trial < 12; ++trial) {
      std::map<std::string, std::pair<std::string, std::uint64_t>> m;
      for (std::size_t k = rng.next_below(6) + 1; k > 0; --k) {
        m["key-" + std::to_string(rng.next_below(50))] = {
            to_string(random_bytes(rng, 20)), rng.next_u64() % 1000};
      }
      const Bytes full = encode_map(m);
      const auto back = decode_map(full);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, m);

      for (std::size_t len = 0; len < full.size(); ++len) {
        EXPECT_FALSE(decode_map(BytesView(full.data(), len)).has_value());
      }
      for (std::size_t bit = 0; bit < full.size() * 8; ++bit) {
        Bytes mutated = full;
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        if (const auto dec = decode_map(mutated)) {
          // Canonicality: the map codec rejects out-of-order and duplicate
          // keys, so an accepted mutation re-encodes to the same bytes.
          EXPECT_EQ(encode_map(*dec), mutated) << "bit " << bit;
        }
      }
    }
  }
}

}  // namespace
}  // namespace faust::ustor
