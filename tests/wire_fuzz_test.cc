// Wire robustness under a byte-level adversary, deterministic-RNG driven.
//
// Every USTOR message type (and the KV partition codec) is attacked three
// ways — truncation at every length, single-bit flips, and pure random
// garbage — and the decoders must never crash, never read out of bounds
// (the sanitizer CI job runs this suite under ASan+UBSan), and never
// accept a non-canonical buffer:
//
//   * any strict prefix of a valid encoding is rejected (the Reader's
//     sticky ok() flips and the decoder returns nullopt);
//   * any buffer a decoder does accept is in canonical form, i.e.
//     re-encoding the decoded message reproduces the buffer bit-for-bit.
//     This is decision D3 (unique encodings) pushed down to the fuzzer:
//     a bit flip either makes a different valid message or no message at
//     all — there is no third bucket of "same message, different bytes".
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kvstore/kv_client.h"
#include "ustor/messages.h"
#include "wire/encoder.h"

namespace faust::ustor {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes b(rng.next_below(max_len));
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

Version random_version(Rng& rng, int n) {
  Version v(n);
  for (int k = 1; k <= n; ++k) {
    v.v(k) = rng.next_below(1000);
    if (rng.next_below(2)) v.m(k) = chain_step(Digest::bottom(), k);
  }
  return v;
}

InvocationTuple random_invocation(Rng& rng, int n) {
  return {static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n))),
          rng.next_below(2) ? OpCode::kWrite : OpCode::kRead,
          static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n))),
          random_bytes(rng, 24)};
}

SignedVersion random_signed_version(Rng& rng, int n) {
  return {random_version(rng, n), random_bytes(rng, 24)};
}

/// One random, valid encoding of every message type.
std::vector<Bytes> random_corpus(Rng& rng) {
  const int n = static_cast<int>(1 + rng.next_below(5));
  std::vector<Bytes> corpus;

  SubmitMessage sm;
  sm.t = rng.next_u64();
  sm.inv = random_invocation(rng, n);
  sm.value = rng.next_below(2) ? Value(random_bytes(rng, 32)) : std::nullopt;
  sm.data_sig = random_bytes(rng, 24);
  corpus.push_back(encode(sm));

  ReplyMessage rm;
  rm.c = static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n)));
  rm.last = random_signed_version(rng, n);
  if (rng.next_below(2)) {
    ReadPayload rp;
    rp.writer = random_signed_version(rng, n);
    rp.tj = rng.next_below(100);
    rp.value = rng.next_below(2) ? Value(random_bytes(rng, 32)) : std::nullopt;
    rp.data_sig = random_bytes(rng, 24);
    rm.read = std::move(rp);
  }
  for (std::size_t q = rng.next_below(3); q > 0; --q) rm.L.push_back(random_invocation(rng, n));
  for (int k = 0; k < n; ++k) rm.P.push_back(random_bytes(rng, 24));
  corpus.push_back(encode(rm));

  CommitMessage cm;
  cm.version = random_version(rng, n);
  cm.commit_sig = random_bytes(rng, 24);
  cm.proof_sig = random_bytes(rng, 24);
  corpus.push_back(encode(cm));

  corpus.push_back(encode(ProbeMessage{}));

  VersionMessage vm;
  vm.committer = static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n)));
  vm.ver = random_signed_version(rng, n);
  corpus.push_back(encode(vm));

  FailureMessage fm;
  fm.has_evidence = rng.next_below(2) == 1;
  if (fm.has_evidence) {
    fm.committer_a = 1;
    fm.a = random_signed_version(rng, n);
    fm.committer_b = 2;
    fm.b = random_signed_version(rng, n);
  }
  corpus.push_back(encode(fm));

  return corpus;
}

/// Decodes `data` as whatever its tag claims; on success returns the
/// canonical re-encoding.
std::optional<Bytes> decode_and_reencode(BytesView data) {
  const auto type = peek_type(data);
  if (!type.has_value()) return std::nullopt;
  switch (*type) {
    case MsgType::kSubmit:
      if (const auto m = decode_submit(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kReply:
      if (const auto m = decode_reply(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kCommit:
      if (const auto m = decode_commit(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kProbe:
      if (const auto m = decode_probe(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kVersion:
      if (const auto m = decode_version(data)) return encode(*m);
      return std::nullopt;
    case MsgType::kFailure:
      if (const auto m = decode_failure(data)) return encode(*m);
      return std::nullopt;
  }
  return std::nullopt;
}

TEST(WireFuzz, TruncationAlwaysRejected) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    for (int trial = 0; trial < 8; ++trial) {
      for (const Bytes& full : random_corpus(rng)) {
        // The untouched encoding decodes and is canonical.
        const auto intact = decode_and_reencode(full);
        ASSERT_TRUE(intact.has_value());
        EXPECT_EQ(*intact, full);
        // Every strict prefix is rejected.
        for (std::size_t len = 0; len < full.size(); ++len) {
          EXPECT_FALSE(decode_and_reencode(BytesView(full.data(), len)).has_value())
              << "seed " << seed << " accepted a " << len << "-byte prefix of a "
              << full.size() << "-byte message";
        }
      }
    }
  }
}

TEST(WireFuzz, BitFlipsNeverYieldNonCanonicalAcceptance) {
  for (std::uint64_t seed : {7u, 77u, 777u}) {
    Rng rng(seed);
    for (int trial = 0; trial < 8; ++trial) {
      for (const Bytes& full : random_corpus(rng)) {
        // Flip every bit of small messages; sample 512 flips of large ones.
        const std::size_t total_bits = full.size() * 8;
        const std::size_t flips = std::min<std::size_t>(total_bits, 512);
        for (std::size_t f = 0; f < flips; ++f) {
          const std::size_t bit =
              flips == total_bits ? f : rng.next_below(total_bits);
          Bytes mutated = full;
          mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          const auto re = decode_and_reencode(mutated);
          if (re.has_value()) {
            // Accepted ⇒ the mutated buffer is itself a canonical
            // encoding (possibly of another message type).
            EXPECT_EQ(*re, mutated)
                << "bit " << bit << " of a " << full.size()
                << "-byte message produced a non-canonical acceptance";
          }
        }
      }
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashesAndNeverDecodesNonCanonically) {
  for (std::uint64_t seed : {5u, 55u, 555u}) {
    Rng rng(seed);
    for (int trial = 0; trial < 4000; ++trial) {
      Bytes junk(rng.next_below(160));
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
      if (!junk.empty() && rng.next_below(2)) {
        junk[0] = static_cast<std::uint8_t>(1 + rng.next_below(12));  // valid-ish tag
      }
      const auto re = decode_and_reencode(junk);
      if (re.has_value()) EXPECT_EQ(*re, junk);
    }
  }
}

TEST(WireFuzz, KvMapCodecRejectsTruncationFlipsToCanonicalOnly) {
  using kv::decode_map;
  using kv::encode_map;
  for (std::uint64_t seed : {3u, 13u, 23u}) {
    Rng rng(seed);
    for (int trial = 0; trial < 12; ++trial) {
      std::map<std::string, std::pair<std::string, std::uint64_t>> m;
      for (std::size_t k = rng.next_below(6) + 1; k > 0; --k) {
        m["key-" + std::to_string(rng.next_below(50))] = {
            to_string(random_bytes(rng, 20)), rng.next_u64() % 1000};
      }
      const Bytes full = encode_map(m);
      const auto back = decode_map(full);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, m);

      for (std::size_t len = 0; len < full.size(); ++len) {
        EXPECT_FALSE(decode_map(BytesView(full.data(), len)).has_value());
      }
      for (std::size_t bit = 0; bit < full.size() * 8; ++bit) {
        Bytes mutated = full;
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        if (const auto dec = decode_map(mutated)) {
          // Canonicality: the map codec rejects out-of-order and duplicate
          // keys, so an accepted mutation re-encodes to the same bytes.
          EXPECT_EQ(encode_map(*dec), mutated) << "bit " << bit;
        }
      }
    }
  }
}

}  // namespace
}  // namespace faust::ustor
