// The api::Store facade contract: ONE client surface over every
// deployment shape.
//
// The same seeded op script (puts, erases, gets, lists, and mixed batch
// apply()s) is run through open_store() on three backends —
//
//   (a) a single FAUST deployment (kv::KvClient engine),
//   (b) a sharded deployment in deterministic mode,
//   (c) a sharded deployment in threaded mode (one OS thread per shard)
//
// — and every operation's result struct must agree across the three,
// after normalizing the deployment-specific coordinates (timestamps and
// shard indices differ between deployments by construction; presence,
// values, writers, sequence numbers, failure flags and completeness must
// not). An in-memory model re-derives the expected (seq, writer) winners
// independently, so the backends cannot agree on a wrong answer.
//
// Also pinned here: Ticket wait()/settle() on both substrates, batch
// coalescing semantics (shared publication timestamps, per-shard program
// order around read points), destruction-settling of in-flight tickets,
// and the unified on_event hook (stability advances, shard failures).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/forking_server.h"
#include "api/store.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "faust/cluster.h"
#include "shard/sharded_cluster.h"
#include "ustor/server.h"

namespace faust::api {
namespace {

constexpr int kClients = 3;

// --- In-memory reference ----------------------------------------------------

struct Model {
  std::vector<std::map<std::string, std::pair<std::string, std::uint64_t>>> partitions{
      kClients};
  std::vector<std::uint64_t> counters = std::vector<std::uint64_t>(kClients, 0);

  /// Returns true iff the change took effect (no-op-erase rule).
  bool put(ClientId w, const std::string& key, const std::string& value) {
    partitions[static_cast<std::size_t>(w - 1)][key] = {
        value, ++counters[static_cast<std::size_t>(w - 1)]};
    return true;
  }
  bool erase(ClientId w, const std::string& key) {
    if (partitions[static_cast<std::size_t>(w - 1)].erase(key) == 0) return false;
    ++counters[static_cast<std::size_t>(w - 1)];
    return true;
  }
  std::map<std::string, kv::KvEntry> merged() const {
    std::map<std::string, kv::KvEntry> out;
    for (ClientId w = 1; w <= kClients; ++w) {
      for (const auto& [key, e] : partitions[static_cast<std::size_t>(w - 1)]) {
        const auto it = out.find(key);
        if (it == out.end() || e.second > it->second.seq ||
            (e.second == it->second.seq && w > it->second.writer)) {
          out[key] = kv::KvEntry{e.first, w, e.second};
        }
      }
    }
    return out;
  }
};

// --- Backends ---------------------------------------------------------------

struct Backend {
  virtual ~Backend() = default;
  virtual Store& store(ClientId i) = 0;
  virtual const char* name() const = 0;
};

struct SingleBackend : Backend {
  explicit SingleBackend(std::uint64_t seed) {
    ClusterConfig cfg;
    cfg.n = kClients;
    cfg.seed = seed;
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    cluster = std::make_unique<Cluster>(cfg);
    for (ClientId i = 1; i <= kClients; ++i) stores.push_back(open_store(*cluster, i));
  }
  Store& store(ClientId i) override { return *stores[static_cast<std::size_t>(i - 1)]; }
  const char* name() const override { return "single"; }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<Store>> stores;
};

struct ShardedBackend : Backend {
  ShardedBackend(std::size_t shards, std::uint64_t seed, shard::ExecMode mode) {
    shard::ShardedClusterConfig cfg;
    cfg.shards = shards;
    cfg.seed = seed;
    cfg.mode = mode;
    cfg.shard_template.n = kClients;
    cfg.shard_template.faust.dummy_read_period = 0;
    cfg.shard_template.faust.probe_check_period = 0;
    cluster = std::make_unique<shard::ShardedCluster>(cfg);
    for (ClientId i = 1; i <= kClients; ++i) stores.push_back(open_store(*cluster, i));
  }
  ~ShardedBackend() override {
    cluster->stop();  // freeze shard threads before the stores unwind
  }
  Store& store(ClientId i) override { return *stores[static_cast<std::size_t>(i - 1)]; }
  const char* name() const override {
    return cluster->threaded() ? "sharded-threaded" : "sharded-deterministic";
  }

  std::unique_ptr<shard::ShardedCluster> cluster;
  std::vector<std::unique_ptr<Store>> stores;
};

// --- Normalization: strip deployment-specific coordinates -------------------

PutResult norm(PutResult r) {
  r.ts = r.ts > 0 ? 1 : 0;
  r.shard = 0;
  r.stable = false;
  return r;
}

GetResult norm(GetResult r) {
  r.read_ts = r.read_ts > 0 ? 1 : 0;
  r.shard = 0;
  r.stable = false;
  return r;
}

ListResult norm(ListResult r) { return r; }  // already deployment-invariant

OpResult norm(OpResult r) {
  r.put = norm(r.put);
  r.get = norm(r.get);
  r.list = norm(r.list);
  return r;
}

bool operator==(const OpResult& a, const OpResult& b) {
  return a.kind == b.kind && a.put == b.put && a.get == b.get && a.list == b.list;
}

// --- The differential script ------------------------------------------------

TEST(StoreApi, SameScriptSameResultsOnEveryBackend) {
  constexpr int kOps = 40;
  constexpr int kKeyPool = 14;
  constexpr std::uint64_t kSeed = 321;

  // Three backends, one script. (The threaded backend resolves tickets by
  // blocking wait(), the deterministic ones by scheduler-stepping
  // settle(); both spellings are exercised below.)
  std::vector<std::unique_ptr<Backend>> backends;
  backends.push_back(std::make_unique<SingleBackend>(kSeed));
  backends.push_back(
      std::make_unique<ShardedBackend>(3, kSeed, shard::ExecMode::kDeterministic));
  backends.push_back(std::make_unique<ShardedBackend>(3, kSeed, shard::ExecMode::kThreaded));
  Model model;

  Rng rng(kSeed);
  for (int op = 1; op <= kOps; ++op) {
    const ClientId who = static_cast<ClientId>(1 + rng.next_below(kClients));
    const std::string key = "key-" + std::to_string(rng.next_below(kKeyPool));
    const std::size_t kind = rng.next_below(12);
    SCOPED_TRACE(::testing::Message() << "op " << op << " client " << who << " key " << key);

    if (kind < 5) {  // put
      const std::string value = "v" + std::to_string(op) + "-c" + std::to_string(who);
      model.put(who, key, value);
      std::vector<PutResult> results;
      for (auto& b : backends) results.push_back(b->store(who).put(key, value).wait());
      for (std::size_t i = 0; i < backends.size(); ++i) {
        EXPECT_GT(results[i].ts, 0u) << backends[i]->name();
        EXPECT_FALSE(results[i].failed) << backends[i]->name();
        EXPECT_EQ(results[i].shard, backends[i]->store(who).home_shard(key))
            << backends[i]->name();
        EXPECT_TRUE(norm(results[i]) == norm(results[0]))
            << backends[i]->name() << " diverged from " << backends[0]->name();
      }
    } else if (kind < 7) {  // erase (frequently a no-op: keys come from a pool)
      const bool effective = model.erase(who, key);
      std::vector<PutResult> results;
      for (auto& b : backends) results.push_back(b->store(who).erase(key).settle());
      for (std::size_t i = 0; i < backends.size(); ++i) {
        EXPECT_EQ(results[i].ts > 0, effective) << backends[i]->name();
        EXPECT_FALSE(results[i].failed) << backends[i]->name();
        EXPECT_TRUE(norm(results[i]) == norm(results[0]))
            << backends[i]->name() << " diverged from " << backends[0]->name();
      }
    } else if (kind < 9) {  // get
      const auto m = model.merged();
      const auto want = m.find(key);
      std::vector<GetResult> results;
      for (auto& b : backends) results.push_back(b->store(who).get(key).wait());
      for (std::size_t i = 0; i < backends.size(); ++i) {
        ASSERT_EQ(results[i].entry.has_value(), want != m.end()) << backends[i]->name();
        if (results[i].entry.has_value()) {
          EXPECT_TRUE(*results[i].entry == want->second) << backends[i]->name();
        }
        EXPECT_GT(results[i].read_ts, 0u) << backends[i]->name();
        EXPECT_FALSE(results[i].failed) << backends[i]->name();
        EXPECT_EQ(results[i].shard, backends[i]->store(who).home_shard(key))
            << backends[i]->name();
        EXPECT_TRUE(norm(results[i]) == norm(results[0]))
            << backends[i]->name() << " diverged from " << backends[0]->name();
      }
    } else if (kind < 10) {  // full list
      const auto want = model.merged();
      for (auto& b : backends) {
        const ListResult r = b->store(who).list().wait();
        EXPECT_TRUE(r.complete) << b->name();
        EXPECT_EQ(r.entries, want) << b->name();
      }
    } else {  // mixed batch apply()
      std::vector<Op> ops;
      std::vector<OpResult> want;
      const int batch_len = static_cast<int>(2 + rng.next_below(5));
      for (int j = 0; j < batch_len; ++j) {
        const std::string bkey = "key-" + std::to_string(rng.next_below(kKeyPool));
        const std::size_t bkind = rng.next_below(8);
        OpResult w;
        if (bkind < 4) {
          const std::string value =
              "b" + std::to_string(op) + "-" + std::to_string(j) + "-c" + std::to_string(who);
          ops.push_back(Op::put(bkey, value));
          model.put(who, bkey, value);
          w.kind = Op::Kind::kPut;
          w.put.ts = 1;  // normalized: a put always publishes
        } else if (bkind < 5) {
          ops.push_back(Op::erase(bkey));
          const bool effective = model.erase(who, bkey);
          w.kind = Op::Kind::kErase;
          w.put.ts = effective ? 1 : 0;
        } else if (bkind < 7) {
          ops.push_back(Op::get(bkey));
          w.kind = Op::Kind::kGet;
          const auto m = model.merged();
          const auto it = m.find(bkey);
          if (it != m.end()) w.get.entry = it->second;
          w.get.read_ts = 1;  // normalized
        } else {
          ops.push_back(Op::list());
          w.kind = Op::Kind::kList;
          w.list.entries = model.merged();
          w.list.complete = true;
        }
        want.push_back(std::move(w));
      }
      for (auto& b : backends) {
        const BatchResult r = b->store(who).apply(ops).wait();
        EXPECT_TRUE(r.ok) << b->name();
        ASSERT_EQ(r.results.size(), want.size()) << b->name();
        for (std::size_t j = 0; j < want.size(); ++j) {
          EXPECT_TRUE(norm(r.results[j]) == want[j])
              << b->name() << " batch slot " << j << " diverged";
        }
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Final full-view agreement, from every client's seat.
  const auto want = model.merged();
  for (auto& b : backends) {
    for (ClientId i = 1; i <= kClients; ++i) {
      const ListResult r = b->store(i).list().wait();
      EXPECT_TRUE(r.complete) << b->name();
      EXPECT_EQ(r.entries, want) << b->name() << " reader " << i;
    }
  }
}

// --- Batch semantics ---------------------------------------------------------

TEST(StoreApi, BatchCoalescesMutationsIntoOnePublication) {
  SingleBackend b(7);
  Store& s = b.store(1);

  // Four puts in one batch: ONE publication — all four share its
  // timestamp — but each draws its own sequence number.
  std::vector<Op> ops;
  for (int k = 0; k < 4; ++k) {
    ops.push_back(Op::put("key" + std::to_string(k), "v" + std::to_string(k)));
  }
  const BatchResult r = s.apply(std::move(ops)).settle();
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.results.size(), 4u);
  const Timestamp shared_ts = r.results[0].put.ts;
  EXPECT_GT(shared_ts, 0u);
  for (const auto& op : r.results) EXPECT_EQ(op.put.ts, shared_ts);

  for (int k = 0; k < 4; ++k) {
    const GetResult g = s.get("key" + std::to_string(k)).settle();
    ASSERT_TRUE(g.entry.has_value());
    EXPECT_EQ(g.entry->seq, static_cast<std::uint64_t>(k + 1))
        << "coalesced puts must still draw distinct, ordered seqs";
  }

  // A batch whose mutations are all no-ops publishes nothing.
  const BatchResult noop =
      s.apply({Op::erase("never-a"), Op::erase("never-b")}).settle();
  ASSERT_TRUE(noop.ok);
  EXPECT_EQ(noop.results[0].put.ts, 0u);
  EXPECT_EQ(noop.results[1].put.ts, 0u);
  EXPECT_FALSE(noop.results[0].put.failed);
}

TEST(StoreApi, BatchReadPointsSplitMutationRuns) {
  // Per-shard program order: a get between two puts of the same key
  // observes the first value, not the second.
  SingleBackend b(8);
  Store& s = b.store(1);
  const BatchResult r =
      s.apply({Op::put("k", "v1"), Op::get("k"), Op::put("k", "v2"), Op::get("k")}).settle();
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.results.size(), 4u);
  ASSERT_TRUE(r.results[1].get.entry.has_value());
  EXPECT_EQ(r.results[1].get.entry->value, "v1");
  EXPECT_EQ(r.results[1].get.entry->seq, 1u);
  ASSERT_TRUE(r.results[3].get.entry.has_value());
  EXPECT_EQ(r.results[3].get.entry->value, "v2");
  EXPECT_EQ(r.results[3].get.entry->seq, 2u);
  EXPECT_LT(r.results[0].put.ts, r.results[2].put.ts)
      << "split runs are separate publications";
}

// --- Tickets -----------------------------------------------------------------

TEST(StoreApi, TicketLifecycle) {
  SingleBackend b(9);
  Store& s = b.store(1);

  Ticket<PutResult> t = s.put("k", "v");
  ASSERT_TRUE(t.valid());
  EXPECT_FALSE(t.ready()) << "nothing resolved before the scheduler runs";
  const PutResult r = t.settle();
  EXPECT_GT(r.ts, 0u);
  EXPECT_TRUE(t.ready());
  EXPECT_TRUE(t.result() == r) << "result() re-reads the resolved value";
  EXPECT_TRUE(t.wait() == r) << "re-waiting an already-resolved ticket is a no-op";

  Ticket<GetResult> g;  // default-constructed tickets are invalid
  EXPECT_FALSE(g.valid());
}

TEST(StoreApi, DestructionSettlesInFlightTickets) {
  // A crashed (silent) server: the op can never complete on its own, and
  // no peer report arrives (probes are off). settle() runs the scheduler
  // dry and reports a failure-marked result while the ticket stays
  // pending; destroying the store then settles it for real.
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 10;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cluster(cfg);
  cluster.net().crash(kServerNode);

  auto store = api::open_store(cluster, 1);
  Ticket<PutResult> put = store->put("k", "v");
  Ticket<GetResult> get = store->get("k");
  // A multi-step batch: its first step is in flight at destruction; the
  // REMAINING steps must settle inline instead of issuing fresh engine
  // work into the dying deployment.
  Ticket<BatchResult> batch =
      store->apply({Op::put("k2", "v2"), Op::get("k2"), Op::put("k3", "v3")});

  const PutResult interim = put.settle();
  EXPECT_TRUE(interim.failed) << "scheduler ran dry without completing the op";
  EXPECT_FALSE(put.ready()) << "the operation itself is still in flight";

  store.reset();  // destruction-settling
  ASSERT_TRUE(put.ready());
  ASSERT_TRUE(get.ready());
  EXPECT_TRUE(put.result().failed);
  EXPECT_EQ(put.result().ts, 0u);
  EXPECT_TRUE(get.result().failed);
  ASSERT_TRUE(batch.ready()) << "every step of an in-flight batch must settle";
  const BatchResult b = batch.result();
  EXPECT_FALSE(b.ok);
  ASSERT_EQ(b.results.size(), 3u);
  for (const auto& r : b.results) {
    if (r.kind == Op::Kind::kPut) EXPECT_TRUE(r.put.failed);
    if (r.kind == Op::Kind::kGet) EXPECT_TRUE(r.get.failed);
  }
}

TEST(StoreApi, ThreadedDestructionSettlesInFlightTickets) {
  // Same contract under real threads: stop() freezes the shard runtimes
  // with ops still queued inside them; destroying the store must resolve
  // the tickets with the failure outcome rather than leak them pending.
  shard::ShardedClusterConfig cfg;
  cfg.shards = 2;
  cfg.seed = 11;
  cfg.mode = shard::ExecMode::kThreaded;
  cfg.shard_template.n = 2;
  cfg.shard_template.faust.dummy_read_period = 0;
  cfg.shard_template.faust.probe_check_period = 0;
  auto cluster = std::make_unique<shard::ShardedCluster>(cfg);
  auto store = api::open_store(*cluster, 1);

  // Make shard 0 silent, then issue ops routed there.
  std::atomic<bool> crashed{false};
  cluster->shard_exec(0).post([&] {
    cluster->shard(0).net().crash(kServerNode);
    crashed.store(true, std::memory_order_release);
  });
  ASSERT_TRUE(cluster->await(crashed));
  std::string key0;
  for (int k = 0; key0.empty(); ++k) {
    const std::string key = "t" + std::to_string(k);
    if (cluster->router().shard_of(key) == 0) key0 = key;
  }
  Ticket<PutResult> put = store->put(key0, "v");
  Ticket<ListResult> list = store->list();

  cluster->stop();
  store.reset();
  ASSERT_TRUE(put.ready());
  ASSERT_TRUE(list.ready());
  EXPECT_TRUE(put.result().failed);
  EXPECT_FALSE(list.result().complete) << "shard 0 never contributed";
}

// --- Events and stability ----------------------------------------------------

TEST(StoreApi, StabilityEventsAndStableResults) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 12;
  cfg.faust.dummy_read_period = 300;  // background stability propagation
  Cluster cluster(cfg);
  auto store = api::open_store(cluster, 1);

  std::vector<Timestamp> advances;
  store->on_event([&](const Event& e) {
    if (e.kind == Event::Kind::kStabilityAdvanced) advances.push_back(e.stable_ts);
  });

  const PutResult p = store->put("k", "v").settle();
  ASSERT_GT(p.ts, 0u);
  GetResult g = store->get("k").settle();
  ASSERT_TRUE(g.entry.has_value());

  bool stable = store->stable(g);
  for (int rounds = 0; !stable && rounds < 200; ++rounds) {
    cluster.run_for(2'000);
    stable = store->stable(g);
  }
  EXPECT_TRUE(stable) << "the cut never covered the observing read";
  EXPECT_TRUE(store->stable(p)) << "the write is covered once the cut passes it";
  EXPECT_FALSE(advances.empty()) << "stability advances must surface as events";
  EXPECT_GE(store->stable_ts(0), g.read_ts);
}

TEST(StoreApi, FailedShardSurfacesThroughEventsAndResults) {
  // Shard 0's provider forks its clients; shard 1 stays correct. The
  // facade must emit the failure event, flag ops routed to the dead
  // shard, and keep serving the healthy one — same shape as the legacy
  // ShardedFailAware pins, now through one API.
  shard::ShardedClusterConfig cfg;
  cfg.shards = 2;
  cfg.seed = 17;
  cfg.shard_template.n = 2;
  cfg.shard_template.with_server = false;
  cfg.shard_template.faust.dummy_read_period = 400;
  cfg.shard_template.faust.probe_interval = 3'000;
  cfg.shard_template.faust.probe_check_period = 700;
  shard::ShardedCluster sc(cfg);
  adversary::ForkingServer bad(2, sc.shard(0).net());
  ustor::Server good(2, sc.shard(1).net());

  auto kv1 = api::open_store(sc, 1);
  auto kv2 = api::open_store(sc, 2);
  std::vector<std::size_t> failed_shards;
  kv1->on_event([&](const Event& e) {
    if (e.kind == Event::Kind::kShardFailed) failed_shards.push_back(e.shard);
  });

  std::string key0, key1;
  for (int k = 0; key0.empty() || key1.empty(); ++k) {
    const std::string key = "k" + std::to_string(k);
    (sc.router().shard_of(key) == 0 ? key0 : key1) = key;
  }
  ASSERT_GT(kv1->put(key0, "on-forked-shard").settle().ts, 0u);
  ASSERT_GT(kv1->put(key1, "on-healthy-shard").settle().ts, 0u);

  bad.isolate(2);
  ASSERT_GT(kv2->put(key0, "forked-write").settle().ts, 0u);
  sc.run_for(300'000);  // dummy reads + offline protocol expose the fork

  ASSERT_FALSE(failed_shards.empty());
  for (const std::size_t s : failed_shards) EXPECT_EQ(s, 0u);
  EXPECT_TRUE(kv1->failed(0));
  EXPECT_FALSE(kv1->failed(1));
  EXPECT_TRUE(kv1->any_failed());

  const GetResult dead = kv1->get(key0).settle();
  EXPECT_TRUE(dead.failed);
  EXPECT_EQ(dead.shard, 0u);
  EXPECT_FALSE(kv1->stable(dead));

  const GetResult alive = kv1->get(key1).settle();
  EXPECT_FALSE(alive.failed);
  ASSERT_TRUE(alive.entry.has_value());
  EXPECT_EQ(alive.entry->value, "on-healthy-shard");

  const ListResult l = kv1->list().settle();
  EXPECT_FALSE(l.complete);
  EXPECT_TRUE(l.entries.contains(key1));
  EXPECT_FALSE(l.entries.contains(key0));

  // A batch spanning both shards: the dead shard's slots fail, the
  // healthy shard's slots succeed, ok reports the mix.
  const BatchResult b =
      kv1->apply({Op::put(key0, "x"), Op::put(key1, "y"), Op::get(key1)}).settle();
  EXPECT_FALSE(b.ok);
  EXPECT_TRUE(b.results[0].put.failed);
  EXPECT_FALSE(b.results[1].put.failed);
  ASSERT_TRUE(b.results[2].get.entry.has_value());
  EXPECT_EQ(b.results[2].get.entry->value, "y");
}

// --- Deadlines, breaker and degradation (D10) -------------------------------

namespace {

// Cuts (or heals) every client→server channel of one shard's simulated
// fabric. Threaded shards own their Network on the shard thread, so the
// mutation must serialize onto that runtime.
void cut_shard(shard::ShardedCluster& sc, std::size_t s, bool cut) {
  const auto body = [&sc, s, cut] {
    Cluster& cl = sc.shard(s);
    for (ClientId c = 1; c <= kClients; ++c) {
      if (cut) {
        cl.net().partition(c, kServerNode);
      } else {
        cl.net().heal(c, kServerNode);
      }
    }
  };
  if (sc.threaded()) {
    ASSERT_TRUE(exec::post_sync(sc.shard_exec(s), body));
  } else {
    body();
  }
}

// A threaded two-shard deployment with client retransmission armed (so
// ops stranded by a cut complete after the heal instead of wedging the
// client's op queue forever).
shard::ShardedClusterConfig chaos_store_config(std::uint64_t seed) {
  shard::ShardedClusterConfig cfg;
  cfg.shards = 2;
  cfg.seed = seed;
  cfg.mode = shard::ExecMode::kThreaded;
  cfg.shard_template.n = kClients;
  cfg.shard_template.faust.dummy_read_period = 0;
  cfg.shard_template.faust.probe_check_period = 0;
  cfg.shard_template.faust.retransmit_base = 500;
  return cfg;
}

std::string key_on_shard(const Store& store, std::size_t shard) {
  for (int k = 0;; ++k) {
    std::string key = "dk" + std::to_string(k);
    if (store.home_shard(key) == shard) return key;
  }
}

}  // namespace

TEST(StoreApiD10, WaitDeadlineResolvesTypedTimeoutNotHang) {
  // The satellite-(a) pin: a put routed into a partition must resolve to
  // Status::kTimedOut within the configured deadline — never the silent
  // 120 s default-wait hang — and the op itself stays in flight: after
  // the heal, retransmission completes it and the value is readable.
  shard::ShardedCluster sc(chaos_store_config(51));
  auto store = api::open_store(sc, 1);
  store->set_wait_timeout(std::chrono::milliseconds(200));

  const std::string key = key_on_shard(*store, 0);
  cut_shard(sc, 0, true);

  const auto t0 = std::chrono::steady_clock::now();
  const PutResult r = store->put(key, "through-the-cut").wait();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.status, Status::kTimedOut);
  EXPECT_LT(elapsed, std::chrono::seconds(30))
      << "a deadline wait must return promptly, not block for minutes";
  EXPECT_EQ(r.ts, 0u) << "nothing completed yet";

  cut_shard(sc, 0, false);
  // The timed-out ticket abandoned the WAIT, not the op: retransmission
  // finishes it after the heal, and a fresh read observes the write.
  GetResult g;
  for (int round = 0; round < 100; ++round) {
    g = store->get(key).wait_for(std::chrono::milliseconds(500));
    if (g.status == Status::kOk && g.entry.has_value()) break;
  }
  ASSERT_TRUE(g.entry.has_value()) << "the stranded op never completed";
  EXPECT_EQ(g.entry->value, "through-the-cut");
  EXPECT_FALSE(store->any_failed())
      << "a partition is a timing fault and must never fire fail_i";
  sc.stop();
}

TEST(StoreApiD10, BreakerOpensRefusesFastAndRecovers) {
  shard::ShardedCluster sc(chaos_store_config(52));
  auto store = api::open_store(sc, 1);
  store->set_wait_timeout(std::chrono::milliseconds(150));
  store->set_breaker(/*threshold=*/2, /*cooldown_ops=*/3);

  const std::string key0 = key_on_shard(*store, 0);
  const std::string key1 = key_on_shard(*store, 1);
  cut_shard(sc, 0, true);

  // Two consecutive deadline expiries trip shard 0's breaker.
  EXPECT_EQ(store->put(key0, "a").wait().status, Status::kTimedOut);
  EXPECT_EQ(store->put(key0, "b").wait().status, Status::kTimedOut);
  EXPECT_TRUE(store->breaker_open(0));

  // Open breaker: writes refuse fast (typed, no deadline burned) ...
  const auto t0 = std::chrono::steady_clock::now();
  const PutResult refused = store->put(key0, "c").wait();
  EXPECT_EQ(refused.status, Status::kUnavailable);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(100))
      << "a refusal must not queue behind the partition";
  // ... reads with no cache tier degrade to typed unavailability ...
  EXPECT_EQ(store->get(key0).wait().status, Status::kUnavailable);
  // ... and the healthy shard is untouched (the breaker is per-shard).
  EXPECT_EQ(store->put(key1, "healthy").wait_for(std::chrono::seconds(10)).status,
            Status::kOk);
  EXPECT_FALSE(store->breaker_open(1));

  cut_shard(sc, 0, false);
  // Every cooldown-th refusal passes through as the recovery probe; once
  // one completes against the healed shard, the breaker closes.
  PutResult recovered;
  for (int round = 0; round < 100; ++round) {
    recovered = store->put(key0, "after-heal").wait_for(std::chrono::milliseconds(500));
    if (recovered.status == Status::kOk) break;
  }
  EXPECT_EQ(recovered.status, Status::kOk) << "the breaker never recovered";
  EXPECT_FALSE(store->breaker_open(0));
  EXPECT_FALSE(store->any_failed());
  sc.stop();
}

TEST(StoreApiD10, DegradedReadsServeStaleFromCacheFlaggedNeverStable) {
  // With the D8 cache tier wired, an unreachable shard's reads fall back
  // to verified-but-possibly-stale cache state: kOk, cached=true, as_of
  // set — and never reported stable. Writes still refuse fast.
  shard::ShardedClusterConfig cfg = chaos_store_config(53);
  cfg.shard_template.cache.enabled = true;
  cfg.shard_template.cache.with_node = true;
  shard::ShardedCluster sc(cfg);
  auto store = api::open_store(sc, 1);
  store->set_wait_timeout(std::chrono::milliseconds(150));
  store->set_breaker(/*threshold=*/2, /*cooldown_ops=*/100);  // no probes here

  const std::string key = key_on_shard(*store, 0);
  ASSERT_EQ(store->put(key, "cached-value").wait_for(std::chrono::seconds(10)).status,
            Status::kOk);
  // Warm the cache tier: an ordinary read fills every register slot the
  // observing snapshot touches.
  ASSERT_EQ(store->get(key).wait_for(std::chrono::seconds(10)).status, Status::kOk);

  cut_shard(sc, 0, true);
  EXPECT_EQ(store->put(key, "x").wait().status, Status::kTimedOut);
  EXPECT_EQ(store->put(key, "y").wait().status, Status::kTimedOut);
  ASSERT_TRUE(store->breaker_open(0));

  const GetResult degraded = store->get(key).wait();
  EXPECT_EQ(degraded.status, Status::kOk) << "the cache tier should have answered";
  EXPECT_TRUE(degraded.cached) << "a degraded read must be flagged as cache-served";
  EXPECT_GT(degraded.as_of, 0u) << "the staleness horizon must be reported";
  EXPECT_FALSE(degraded.stable) << "served-stale data must never claim stability";
  ASSERT_TRUE(degraded.entry.has_value());
  EXPECT_EQ(degraded.entry->value, "cached-value");
  EXPECT_EQ(store->put(key, "z").wait().status, Status::kUnavailable);
  EXPECT_FALSE(store->any_failed());
  sc.stop();
}

}  // namespace
}  // namespace faust::api
