// ChunkedHasher: the incremental hash tree must be (1) a FUNCTION of the
// byte string — every update path converges to the one-shot digest — and
// (2) a binding commitment — no forged chunk, stale sibling path, or
// length game can reproduce a root it did not earn. The Byzantine cases
// mirror the VerifyCache/tamper suites at the chunk-tree layer.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "crypto/chunked_hasher.h"

namespace faust::crypto {
namespace {

constexpr std::size_t kB = ChunkedHasher::kChunkSize;
constexpr std::size_t kF = ChunkedHasher::kFanout;

Bytes pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(ChunkedHasher, ResetMatchesOneShotAcrossSizes) {
  const std::size_t sizes[] = {0,          1,           kB - 1,      kB,
                               kB + 1,     2 * kB,      kF * kB - 1, kF * kB,
                               kF * kB + 1, 3 * kF * kB + 17};
  for (const std::size_t n : sizes) {
    const Bytes data = pattern_bytes(n, 7 + n);
    ChunkedHasher h;
    h.reset(data);
    EXPECT_EQ(h.root(), ChunkedHasher::digest(data)) << "size " << n;
    EXPECT_EQ(h.size(), n);
    // Deterministic: same bytes, same root.
    EXPECT_EQ(ChunkedHasher::digest(data), ChunkedHasher::digest(data));
  }
}

TEST(ChunkedHasher, DistinctContentDistinctRoot) {
  const Bytes a = pattern_bytes(5 * kB, 1);
  Bytes b = a;
  b[3 * kB + 100] ^= 0x01;
  EXPECT_NE(ChunkedHasher::digest(a), ChunkedHasher::digest(b));
  // Length binding: a zero-extended buffer is a different commitment even
  // though every shared chunk hashes identically.
  Bytes c = a;
  c.push_back(0x00);
  EXPECT_NE(ChunkedHasher::digest(a), ChunkedHasher::digest(c));
  EXPECT_NE(ChunkedHasher::digest(Bytes{}), ChunkedHasher::digest(Bytes{0x00}));
}

TEST(ChunkedHasher, InPlaceEditUpdateMatchesFullRecompute) {
  Bytes data = pattern_bytes(10 * kB + 333, 42);
  ChunkedHasher h;
  h.reset(data);
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    const std::size_t at = rng.next_below(data.size());
    const std::size_t len = 1 + rng.next_below(64);
    const std::size_t end = std::min(data.size(), at + len);
    for (std::size_t i = at; i < end; ++i) data[i] = static_cast<std::uint8_t>(rng.next_u64());
    h.update(BytesView(data), ChunkedHasher::ByteRange{at, end});
    ASSERT_EQ(h.root(), ChunkedHasher::digest(data)) << "round " << round;
  }
}

TEST(ChunkedHasher, SizeChangingUpdatesMatchFullRecompute) {
  Bytes data = pattern_bytes(4 * kB + 50, 5);
  ChunkedHasher h;
  h.reset(data);
  Rng rng(17);
  for (int round = 0; round < 60; ++round) {
    const std::size_t kind = rng.next_below(4);
    std::size_t from = data.empty() ? 0 : rng.next_below(data.size());
    if (kind == 0) {  // insert mid-buffer
      Bytes ins = pattern_bytes(1 + rng.next_below(200), 1000 + static_cast<std::uint64_t>(round));
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(from), ins.begin(), ins.end());
    } else if (kind == 1 && !data.empty()) {  // erase mid-buffer
      const std::size_t len = std::min<std::size_t>(1 + rng.next_below(200), data.size() - from);
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(from),
                 data.begin() + static_cast<std::ptrdiff_t>(from + len));
    } else if (kind == 2) {  // append
      from = data.size();
      Bytes app = pattern_bytes(1 + rng.next_below(3 * kB), 2000 + static_cast<std::uint64_t>(round));
      data.insert(data.end(), app.begin(), app.end());
    } else {  // truncate
      data.resize(data.size() - std::min<std::size_t>(data.size(), rng.next_below(2 * kB)));
      from = data.size();
    }
    h.update(BytesView(data), ChunkedHasher::ByteRange{std::min(from, data.size()), data.size()});
    ASSERT_EQ(h.root(), ChunkedHasher::digest(data)) << "round " << round << " kind " << kind;
  }
}

TEST(ChunkedHasher, MultiRangeUpdateMatchesFullRecompute) {
  // The KV splice path dirties two disjoint ranges on insert/erase (the
  // count header and the shifted tail).
  Bytes data = pattern_bytes(20 * kB, 8);
  ChunkedHasher h;
  h.reset(data);
  data[1] ^= 0xff;
  for (std::size_t i = 11 * kB; i < data.size(); ++i) data[i] ^= 0x5a;
  h.update(BytesView(data), {ChunkedHasher::ByteRange{0, 4},
                             ChunkedHasher::ByteRange{11 * kB, data.size()}});
  EXPECT_EQ(h.root(), ChunkedHasher::digest(data));
}

TEST(ChunkedHasher, UpdateDiffMatchesFullRecompute) {
  Bytes data = pattern_bytes(8 * kB + 77, 3);
  ChunkedHasher h;
  h.reset(data);
  Rng rng(23);
  for (int round = 0; round < 40; ++round) {
    const Bytes old = data;
    const std::size_t kind = rng.next_below(3);
    if (kind == 0 && !data.empty()) {  // scattered same-size edits
      for (int e = 0; e < 3; ++e) {
        data[rng.next_below(data.size())] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      }
    } else if (kind == 1) {  // splice-like insert
      const std::size_t at = data.empty() ? 0 : rng.next_below(data.size());
      Bytes ins = pattern_bytes(rng.next_below(100), 31 + static_cast<std::uint64_t>(round));
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), ins.begin(), ins.end());
    } else if (!data.empty()) {  // splice-like erase
      const std::size_t at = rng.next_below(data.size());
      const std::size_t len = std::min<std::size_t>(rng.next_below(100), data.size() - at);
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(at),
                 data.begin() + static_cast<std::ptrdiff_t>(at + len));
    }
    h.update_diff(BytesView(old), BytesView(data));
    ASSERT_EQ(h.root(), ChunkedHasher::digest(data)) << "round " << round;
  }
}

TEST(ChunkedHasher, UpdateDiffOfIdenticalBuffersHashesNothing) {
  const Bytes data = pattern_bytes(16 * kB, 12);
  ChunkedHasher h;
  h.reset(data);
  const std::uint64_t before = h.chunks_hashed();
  h.update_diff(BytesView(data), BytesView(data));
  EXPECT_EQ(h.chunks_hashed(), before) << "unchanged bytes must cost memcmp, not SHA";
  EXPECT_EQ(h.root(), ChunkedHasher::digest(data));
}

TEST(ChunkedHasher, OneByteEditRehashesOChunkNotOBuffer) {
  // The O(change) claim itself: a point edit in a 256-chunk buffer must
  // rehash one leaf (plus tree path nodes, which are not leaves).
  Bytes data = pattern_bytes(256 * kB, 77);
  ChunkedHasher h;
  h.reset(data);
  const Bytes old = data;
  const std::uint64_t before = h.chunks_hashed();
  data[100 * kB + 5] ^= 0x40;
  h.update_diff(BytesView(old), BytesView(data));
  EXPECT_LE(h.chunks_hashed() - before, 1u);
  EXPECT_EQ(h.root(), ChunkedHasher::digest(data));
}

TEST(ChunkedHasher, ForgedChunkWithStaleSiblingPathFailsVerification) {
  // The Byzantine regression of the satellite list: an attacker swaps one
  // chunk but presents the OLD tree (stale siblings / stale root). The
  // root is a binding commitment, so the honest recomputation over the
  // forged bytes can never equal the signed root.
  const Bytes honest = pattern_bytes(32 * kB + 9, 55);
  ChunkedHasher tree;
  tree.reset(honest);
  const Hash signed_root = tree.root();

  Bytes forged = honest;
  forged[17 * kB + 3] ^= 0x01;  // one forged chunk

  // (a) A verifier recomputing from scratch rejects.
  EXPECT_NE(ChunkedHasher::digest(forged), signed_root);

  // (b) A verifier diffing against the last VERIFIED value derives the
  // forged buffer's own root — identical to the from-scratch digest, and
  // still != the signed root. The memoized tree cannot launder it.
  tree.update_diff(BytesView(honest), BytesView(forged));
  EXPECT_EQ(tree.root(), ChunkedHasher::digest(forged));
  EXPECT_NE(tree.root(), signed_root);

  // (c) The stale-path attack itself: presenting the old root for the
  // forged bytes is exactly (a)/(b) failing — and an "update" that LIES
  // about the dirty range (claims nothing changed) leaves the stale root
  // in place, which then does NOT match the bytes on any honest recheck.
  ChunkedHasher stale;
  stale.reset(honest);
  stale.update(BytesView(forged), ChunkedHasher::ByteRange{0, 0});  // claimed no-op
  EXPECT_EQ(stale.root(), signed_root) << "the lie preserves the stale root...";
  EXPECT_NE(stale.root(), ChunkedHasher::digest(forged)) << "...which the bytes disprove";
}

}  // namespace
}  // namespace faust::crypto
