// Wire-format tests: encoder/reader primitives, roundtrips of every
// protocol message, and hardening against malformed input.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ustor/messages.h"
#include "wire/encoder.h"

namespace faust::ustor {
namespace {

using wire::Reader;
using wire::Writer;

TEST(Encoder, PrimitivesRoundtrip) {
  Writer w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x1122334455667788ull);
  w.put_bytes(to_bytes("str"));
  const Bytes buf = w.take();

  Reader r(buf);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x1122334455667788ull);
  EXPECT_EQ(to_string(r.get_bytes()), "str");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(Encoder, ReaderStickyErrorOnTruncation) {
  Writer w;
  w.put_u64(7);
  const Bytes buf = w.take();
  Reader r(BytesView(buf.data(), 4));  // truncated
  EXPECT_EQ(r.get_u64(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.get_u32(), 0u);  // still failing, no crash
  EXPECT_FALSE(r.ok());
}

TEST(Encoder, BytesLengthLying) {
  Writer w;
  w.put_u32(1000);  // claims 1000 bytes follow
  w.put_u8(1);
  const Bytes buf = w.take();
  Reader r(buf);
  EXPECT_TRUE(r.get_bytes().empty());
  EXPECT_FALSE(r.ok());
}

Version sample_version(int n, std::uint64_t salt) {
  Version v(n);
  for (int k = 1; k <= n; ++k) {
    v.v(k) = salt + static_cast<std::uint64_t>(k);
    v.m(k) = chain_step(Digest::bottom(), k);
  }
  return v;
}

TEST(Messages, SubmitRoundtrip) {
  SubmitMessage m;
  m.t = 42;
  m.inv = {2, OpCode::kWrite, 2, to_bytes("sig")};
  m.value = to_bytes("payload");
  m.data_sig = to_bytes("dsig");
  const auto back = decode_submit(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->t, 42u);
  EXPECT_EQ(back->inv, m.inv);
  EXPECT_EQ(back->value, m.value);
  EXPECT_EQ(back->data_sig, m.data_sig);
}

TEST(Messages, SubmitReadHasBottomValue) {
  SubmitMessage m;
  m.t = 1;
  m.inv = {1, OpCode::kRead, 3, to_bytes("s")};
  m.value = std::nullopt;
  m.data_sig = to_bytes("d");
  const auto back = decode_submit(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->value.has_value());
  EXPECT_EQ(back->inv.oc, OpCode::kRead);
}

TEST(Messages, ReplyWriteShapeRoundtrip) {
  ReplyMessage m;
  m.c = 3;
  m.last = {sample_version(4, 10), to_bytes("csig")};
  m.L.push_back({1, OpCode::kRead, 2, to_bytes("s1")});
  m.L.push_back({4, OpCode::kWrite, 4, to_bytes("s2")});
  m.P = {to_bytes("p1"), Bytes{}, to_bytes("p3"), Bytes{}};
  const auto back = decode_reply(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->c, 3);
  EXPECT_EQ(back->last.version, m.last.version);
  EXPECT_FALSE(back->read.has_value());
  ASSERT_EQ(back->L.size(), 2u);
  EXPECT_EQ(back->L[1], m.L[1]);
  EXPECT_EQ(back->P, m.P);
}

TEST(Messages, ReplyReadShapeRoundtrip) {
  ReplyMessage m;
  m.c = 1;
  m.last = {sample_version(2, 5), to_bytes("csig")};
  ReadPayload rp;
  rp.writer = {sample_version(2, 3), to_bytes("wsig")};
  rp.tj = 9;
  rp.value = to_bytes("data");
  rp.data_sig = to_bytes("dsig");
  m.read = rp;
  m.P = {Bytes{}, Bytes{}};
  const auto back = decode_reply(encode(m));
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->read.has_value());
  EXPECT_EQ(back->read->tj, 9u);
  EXPECT_EQ(back->read->value, rp.value);
  EXPECT_EQ(back->read->writer.version, rp.writer.version);
}

TEST(Messages, CommitRoundtrip) {
  CommitMessage m;
  m.version = sample_version(3, 7);
  m.commit_sig = to_bytes("c");
  m.proof_sig = to_bytes("p");
  const auto back = decode_commit(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, m.version);
  EXPECT_EQ(back->commit_sig, m.commit_sig);
  EXPECT_EQ(back->proof_sig, m.proof_sig);
}

TEST(Messages, OfflineMessagesRoundtrip) {
  EXPECT_TRUE(decode_probe(encode(ProbeMessage{})).has_value());

  VersionMessage vm;
  vm.committer = 2;
  vm.ver = {sample_version(3, 1), to_bytes("sig")};
  const auto vback = decode_version(encode(vm));
  ASSERT_TRUE(vback.has_value());
  EXPECT_EQ(vback->committer, 2);
  EXPECT_EQ(vback->ver.version, vm.ver.version);

  FailureMessage fm;
  fm.has_evidence = true;
  fm.committer_a = 1;
  fm.a = {sample_version(3, 2), to_bytes("sa")};
  fm.committer_b = 3;
  fm.b = {sample_version(3, 9), to_bytes("sb")};
  const auto fback = decode_failure(encode(fm));
  ASSERT_TRUE(fback.has_value());
  EXPECT_TRUE(fback->has_evidence);
  EXPECT_EQ(fback->committer_b, 3);
  EXPECT_EQ(fback->b.version, fm.b.version);

  FailureMessage bare;
  const auto bback = decode_failure(encode(bare));
  ASSERT_TRUE(bback.has_value());
  EXPECT_FALSE(bback->has_evidence);
}

TEST(Messages, PeekType) {
  EXPECT_EQ(peek_type(encode(ProbeMessage{})), MsgType::kProbe);
  EXPECT_EQ(peek_type(Bytes{}), std::nullopt);
  EXPECT_EQ(peek_type(Bytes{0x63}), std::nullopt);
}

TEST(Messages, WrongTagRejected) {
  const Bytes probe = encode(ProbeMessage{});
  EXPECT_FALSE(decode_version(probe).has_value());
  EXPECT_FALSE(decode_submit(probe).has_value());
}

TEST(Messages, TrailingGarbageRejected) {
  SubmitMessage m;
  m.t = 1;
  m.inv = {1, OpCode::kWrite, 1, to_bytes("s")};
  m.value = to_bytes("v");
  m.data_sig = to_bytes("d");
  Bytes buf = encode(m);
  buf.push_back(0x00);
  EXPECT_FALSE(decode_submit(buf).has_value());
}

TEST(Messages, TruncationFuzzNeverCrashes) {
  ReplyMessage m;
  m.c = 1;
  m.last = {sample_version(3, 5), to_bytes("csig")};
  ReadPayload rp;
  rp.writer = {sample_version(3, 2), to_bytes("w")};
  rp.tj = 5;
  rp.value = to_bytes("data");
  rp.data_sig = to_bytes("d");
  m.read = rp;
  m.L.push_back({2, OpCode::kRead, 1, to_bytes("s")});
  m.P = {Bytes{}, to_bytes("p"), Bytes{}};
  const Bytes full = encode(m);
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(decode_reply(BytesView(full.data(), len)).has_value());
  }
  EXPECT_TRUE(decode_reply(full).has_value());
}

TEST(Messages, RandomBytesFuzzNeverCrashes) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    // Must never crash; may occasionally decode if the bytes happen to
    // form a valid message (fine).
    (void)decode_submit(junk);
    (void)decode_reply(junk);
    (void)decode_commit(junk);
    (void)decode_probe(junk);
    (void)decode_version(junk);
    (void)decode_failure(junk);
  }
  SUCCEED();
}

TEST(Messages, OversizedVectorCapRejected) {
  // A tiny message claiming a gigantic L must fail cleanly, not allocate.
  Writer w;
  w.put_u8(2);  // kReply
  w.put_u32(1);
  // last = zero version of size 1 + empty sig
  w.put_u32(1);
  w.put_u64(0);
  w.put_u8(0);
  w.put_u32(0);
  w.put_u8(0);             // no read payload
  w.put_u32(0xffffffffu);  // |L| = 4 billion
  EXPECT_FALSE(decode_reply(w.take()).has_value());
}

}  // namespace
}  // namespace faust::ustor
