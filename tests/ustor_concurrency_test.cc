// Deterministic concurrency tests for USTOR: fixed network delays let us
// pin the exact interleavings that exercise the concurrent-operations
// list L with multiple clients, the PROOF-signature verification path
// (line 41, non-⊥ branch), and COMMIT reordering across clients.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"
#include "ustor/server.h"

namespace faust::ustor {
namespace {

constexpr int kN = 4;

struct ConcurrencyFixture : ::testing::Test {
  sim::Scheduler sched;
  // Fixed 5-tick delay: SUBMITs sent in the same tick arrive in send
  // order; a COMMIT sent at completion arrives 5 ticks later.
  net::Network net{sched, Rng(3), net::DelayModel{5, 5}};
  std::shared_ptr<const crypto::SignatureScheme> sigs = crypto::make_hmac_scheme(kN);
  Server server{kN, net};
  std::vector<std::unique_ptr<Client>> clients;

  void SetUp() override {
    for (ClientId i = 1; i <= kN; ++i) {
      clients.push_back(std::make_unique<Client>(i, kN, sigs, net));
    }
  }

  Client& c(ClientId i) { return *clients[static_cast<std::size_t>(i - 1)]; }

  void settle() { sched.run(); }

  WriteResult write_sync(ClientId i, std::string_view v) {
    WriteResult out;
    bool done = false;
    c(i).writex(to_bytes(v), [&](const WriteResult& r) {
      out = r;
      done = true;
    });
    while (!done && sched.step()) {
    }
    EXPECT_TRUE(done);
    return out;
  }
};

TEST_F(ConcurrencyFixture, ThreeWaySimultaneousSubmissions) {
  // C1, C2, C3 submit in the same tick. The schedule is their send order;
  // C2 sees L=[C1], C3 sees L=[C1, C2] — a two-entry concurrency list
  // whose digest chain must line up for everyone.
  WriteResult r1, r2, r3;
  int done = 0;
  c(1).writex(to_bytes("a"), [&](const WriteResult& r) { r1 = r; ++done; });
  c(2).writex(to_bytes("b"), [&](const WriteResult& r) { r2 = r; ++done; });
  c(3).writex(to_bytes("c"), [&](const WriteResult& r) { r3 = r; ++done; });
  settle();
  ASSERT_EQ(done, 3);

  // Versions are totally ordered along the schedule.
  EXPECT_TRUE(version_leq(r1.own.version, r2.own.version));
  EXPECT_TRUE(version_leq(r2.own.version, r3.own.version));
  EXPECT_EQ(r3.own.version.v(1), 1u);
  EXPECT_EQ(r3.own.version.v(2), 1u);
  EXPECT_EQ(r3.own.version.v(3), 1u);
  // C1's view does not include the later-scheduled concurrent ops.
  EXPECT_EQ(r1.own.version.v(2), 0u);
  EXPECT_EQ(r1.own.version.v(3), 0u);
  for (ClientId i = 1; i <= 3; ++i) EXPECT_FALSE(c(i).failed());
}

TEST_F(ConcurrencyFixture, ProofSignaturePathWithCommittedPredecessor) {
  // C1 commits an op first (M[1] becomes non-⊥ in every later version),
  // then C1 and C2 run concurrently: C2 must verify C1's PROOF signature
  // for the chained digest (line 41, the non-trivial branch).
  write_sync(1, "first");
  settle();

  bool w_done = false, r_done = false;
  ReadResult rr;
  c(1).writex(to_bytes("second"), [&](const WriteResult&) { w_done = true; });
  c(2).readx(1, [&](const ReadResult& r) {
    rr = r;
    r_done = true;
  });
  settle();
  ASSERT_TRUE(w_done && r_done);
  EXPECT_FALSE(c(2).failed()) << "PROOF verification must succeed";
  // C2's read was scheduled after C1's second write: it sees "second".
  ASSERT_TRUE(rr.value.has_value());
  EXPECT_EQ(to_string(*rr.value), "second");
  EXPECT_EQ(rr.own.version.v(1), 2u);
}

TEST_F(ConcurrencyFixture, ChainedConcurrencyAcrossFourClients) {
  // A wave of writes, then a wave where everyone reads everyone: all 16
  // combinations complete and agree on the final values.
  for (ClientId i = 1; i <= kN; ++i) write_sync(i, "v" + std::to_string(i));
  settle();

  int done = 0;
  std::vector<Value> got(kN * kN);
  // One outstanding op per client: chain the reads per client. The chain
  // objects must outlive every in-flight callback, i.e. the settle().
  struct Chain {
    ConcurrencyFixture* fix;
    ClientId reader;
    ClientId next = 1;
    int* done;
    std::vector<Value>* got;
    void step() {
      if (next > kN) return;
      const ClientId j = next++;
      fix->c(reader).readx(j, [this, j](const ReadResult& r) {
        (*got)[static_cast<std::size_t>((reader - 1) * kN + (j - 1))] = r.value;
        ++*done;
        step();
      });
    }
  };
  std::vector<std::unique_ptr<Chain>> chains;
  for (ClientId i = 1; i <= kN; ++i) {
    chains.push_back(std::make_unique<Chain>(Chain{this, i, 1, &done, &got}));
    chains.back()->step();
  }
  settle();
  ASSERT_EQ(done, kN * kN);
  for (ClientId i = 1; i <= kN; ++i) {
    for (ClientId j = 1; j <= kN; ++j) {
      const Value& v = got[static_cast<std::size_t>((i - 1) * kN + (j - 1))];
      ASSERT_TRUE(v.has_value()) << "reader " << i << " register " << j;
      EXPECT_EQ(to_string(*v), "v" + std::to_string(j));
    }
  }
  for (ClientId i = 1; i <= kN; ++i) EXPECT_FALSE(c(i).failed());
}

TEST_F(ConcurrencyFixture, ReadersRacingOneWriterSeeMonotoneValues) {
  // C1 streams writes while C2 streams reads of X1; every read returns
  // some prefix-consistent value and timestamps never regress.
  struct WriterChain {
    ConcurrencyFixture* fix;
    int remaining;
    int counter = 0;
    void step() {
      if (remaining-- <= 0) return;
      fix->c(1).writex(to_bytes("w" + std::to_string(++counter)),
                       [this](const WriteResult&) { step(); });
    }
  } writer{this, 8};
  struct ReaderChain {
    ConcurrencyFixture* fix;
    int remaining;
    int last_seen = 0;
    bool violation = false;
    void step() {
      if (remaining-- <= 0) return;
      fix->c(2).readx(1, [this](const ReadResult& r) {
        int seen = 0;
        if (r.value.has_value()) {
          seen = std::stoi(to_string(*r.value).substr(1));
        }
        if (seen < last_seen) violation = true;  // new-old inversion
        last_seen = seen;
        step();
      });
    }
  } reader{this, 8};
  writer.step();
  reader.step();
  settle();
  EXPECT_FALSE(reader.violation);
  EXPECT_FALSE(c(1).failed());
  EXPECT_FALSE(c(2).failed());
}

TEST_F(ConcurrencyFixture, LateCommitsStillPruneL) {
  // Three concurrent submissions, then quiescence: every COMMIT arrives
  // eventually and L drains completely.
  c(1).writex(to_bytes("a"), [](const WriteResult&) {});
  c(2).writex(to_bytes("b"), [](const WriteResult&) {});
  c(3).readx(2, [](const ReadResult&) {});
  EXPECT_EQ(server.core().pending_list_size(), 0u);  // nothing arrived yet
  settle();
  EXPECT_EQ(server.core().pending_list_size(), 0u);  // all pruned again
  EXPECT_EQ(server.core().schedule().size(), 3u);
}

TEST_F(ConcurrencyFixture, VersionsOfConcurrentOpsNeverIncomparable) {
  // With a correct server, any two committed versions are ≼-comparable no
  // matter how operations interleave — sweep a few waves.
  std::vector<Version> committed;
  for (int wave = 0; wave < 4; ++wave) {
    int done = 0;
    for (ClientId i = 1; i <= kN; ++i) {
      c(i).writex(to_bytes("w" + std::to_string(wave) + "-" + std::to_string(i)),
                  [&, i](const WriteResult& r) {
                    committed.push_back(r.own.version);
                    ++done;
                  });
    }
    settle();
    ASSERT_EQ(done, kN);
  }
  for (std::size_t a = 0; a < committed.size(); ++a) {
    for (std::size_t b = a + 1; b < committed.size(); ++b) {
      EXPECT_TRUE(versions_comparable(committed[a], committed[b]))
          << "versions " << a << " and " << b;
    }
  }
}

}  // namespace
}  // namespace faust::ustor
