// USTOR under a tampering server: every corruption mode of
// adversary::TamperServer must be detected immediately and attributed to
// the right check of Algorithm 1 (failure-detection *completeness* for
// non-forking misbehaviour, and the C5 attack campaign of DESIGN.md).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "adversary/misc_servers.h"
#include "adversary/tamper_server.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"

namespace faust::ustor {
namespace {

using adversary::Tamper;
using adversary::TamperServer;

constexpr int kN = 3;
constexpr ClientId kVictim = 2;

struct Case {
  Tamper mode;
  std::set<FailCause> expected;
  /// The digest scheme the clients run (the tamper detection must hold
  /// under the chunked incremental verifier exactly as under the flat
  /// hash — a forged value produces its own root, never the memoized one).
  DigestMode digest = DigestMode::kFlat;
};

class TamperTest : public ::testing::TestWithParam<Case> {};

TEST_P(TamperTest, DetectedWithExpectedCause) {
  const Case& param = GetParam();

  sim::Scheduler sched;
  net::Network net(sched, Rng(11), net::DelayModel{5, 5});
  auto sigs = crypto::make_hmac_scheme(kN);
  // The victim's 2nd operation (the read below) triggers the corruption.
  TamperServer server(kN, net, param.mode, kVictim, /*fire_on_op=*/2);

  std::vector<std::unique_ptr<Client>> clients;
  for (ClientId i = 1; i <= kN; ++i) {
    clients.push_back(std::make_unique<Client>(i, kN, sigs, net, kServerNode, 4096,
                                               param.digest));
  }
  Client& c1 = *clients[0];
  Client& victim = *clients[static_cast<std::size_t>(kVictim - 1)];

  const auto drive = [&](Client& cl, auto&& fn) {
    bool done = false;
    fn(cl, done);
    while (!done && !cl.failed() && sched.step()) {
    }
    return done;
  };
  const auto write_sync = [&](Client& cl, std::string_view v) {
    return drive(cl, [&](Client& x, bool& done) {
      x.writex(to_bytes(v), [&done](const WriteResult&) { done = true; });
    });
  };

  // Setup history: two committed writes by C1 (gives the replay attack
  // something stale to serve), one write by the victim (victim op #1).
  ASSERT_TRUE(write_sync(c1, "a"));
  ASSERT_TRUE(write_sync(c1, "b"));
  ASSERT_TRUE(write_sync(victim, "v"));

  // Victim op #2: a read of X1 concurrent with a write by C1, so the
  // reply's L is non-empty (exercising the PROOF/SUBMIT signature paths).
  bool read_done = false;
  c1.writex(to_bytes("c"), [](const WriteResult&) {});
  victim.readx(1, [&](const ReadResult&) { read_done = true; });
  sched.run();

  if (param.mode == Tamper::kNone) {
    EXPECT_TRUE(read_done);
    EXPECT_FALSE(victim.failed());
    return;
  }

  EXPECT_TRUE(server.fired());
  EXPECT_FALSE(read_done) << "corrupted operation must not complete";
  ASSERT_TRUE(victim.failed());
  EXPECT_TRUE(param.expected.count(victim.fail_cause()) > 0)
      << "got cause " << static_cast<int>(victim.fail_cause());
  // Only the victim is attacked; others remain healthy (USTOR alone has
  // no failure propagation — that is FAUST's job).
  EXPECT_FALSE(c1.failed());
}

INSTANTIATE_TEST_SUITE_P(
    AllTampers, TamperTest,
    ::testing::Values(
        Case{Tamper::kNone, {}},
        Case{Tamper::kValue, {FailCause::kBadDataSignature}},
        Case{Tamper::kValueFreshSig, {FailCause::kBadDataSignature}},
        Case{Tamper::kStaleTimestamp, {FailCause::kStaleRead}},
        Case{Tamper::kVersionVector, {FailCause::kBadCommitSignature}},
        Case{Tamper::kCommitSig, {FailCause::kBadCommitSignature}},
        Case{Tamper::kWriterCommitSig, {FailCause::kBadCommitSignature}},
        Case{Tamper::kDataSig, {FailCause::kBadDataSignature}},
        Case{Tamper::kProofSig, {FailCause::kBadProofSignature}},
        Case{Tamper::kSubmitSigInL, {FailCause::kBadSubmitSignature}},
        Case{Tamper::kEchoSelfInL, {FailCause::kSelfConcurrent}},
        Case{Tamper::kDuplicateInL, {FailCause::kBadProofSignature}},
        Case{Tamper::kWrongCommitter, {FailCause::kBadCommitSignature}},
        Case{Tamper::kGarbage, {FailCause::kMalformedMessage}},
        Case{Tamper::kDropReadPayload, {FailCause::kMalformedMessage}}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "mode_" + std::to_string(static_cast<int>(info.param.mode));
    });

// The value-affecting attacks again, under chunked DATA digests: the
// incremental verifier (memcmp-diff + partial rehash against the last
// VERIFIED value) must reject exactly what the full rehash rejects — a
// forged chunk presented with a stale sibling path cannot reproduce the
// signed root, and a replayed stale value still trips the freshness
// checks before any memo is consulted.
INSTANTIATE_TEST_SUITE_P(
    ChunkedDigestTampers, TamperTest,
    ::testing::Values(
        Case{Tamper::kNone, {}, DigestMode::kChunked},
        Case{Tamper::kValue, {FailCause::kBadDataSignature}, DigestMode::kChunked},
        Case{Tamper::kValueFreshSig, {FailCause::kBadDataSignature}, DigestMode::kChunked},
        Case{Tamper::kStaleTimestamp, {FailCause::kStaleRead}, DigestMode::kChunked},
        Case{Tamper::kDataSig, {FailCause::kBadDataSignature}, DigestMode::kChunked}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "chunked_mode_" + std::to_string(static_cast<int>(info.param.mode));
    });

TEST(CommitDropping, CommittingClientDetectsOmission) {
  sim::Scheduler sched;
  net::Network net(sched, Rng(3), net::DelayModel{2, 4});
  auto sigs = crypto::make_hmac_scheme(2);
  adversary::CommitDroppingServer server(2, net);
  Client c1(1, 2, sigs, net);
  Client c2(2, 2, sigs, net);

  bool w1 = false;
  c1.writex(to_bytes("a"), [&](const WriteResult&) { w1 = true; });
  sched.run();
  EXPECT_TRUE(w1);  // the first op completes (nothing to compare yet)
  EXPECT_FALSE(c1.failed());

  // The server dropped C1's COMMIT; C1's next reply cannot extend C1's own
  // version (V^c[1] = 0 ≠ 1) — line 36 fires.
  c1.writex(to_bytes("b"), [](const WriteResult&) {});
  sched.run();
  EXPECT_TRUE(c1.failed());
  EXPECT_EQ(c1.fail_cause(), FailCause::kVersionRegression);
}

TEST(MalformedFuzz, RandomServerBytesNeverCrashOnlyFail) {
  // A "server" that answers every SUBMIT with random bytes. Clients must
  // fail cleanly (kMalformedMessage or a signature cause), never crash.
  class FuzzServer : public net::Node {
   public:
    FuzzServer(net::Network& n, Rng rng) : net_(n), rng_(rng) { net_.attach(kServerNode, *this); }
    void on_message(NodeId from, BytesView) override {
      Bytes junk(rng_.next_in(0, 300));
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng_.next_u64());
      net_.send(kServerNode, from, junk);
    }
    net::Network& net_;
    Rng rng_;
  };

  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sim::Scheduler sched;
    net::Network net(sched, Rng(seed), net::DelayModel{1, 3});
    auto sigs = crypto::make_hmac_scheme(2);
    FuzzServer server(net, Rng(seed * 31 + 7));
    Client c1(1, 2, sigs, net);
    c1.writex(to_bytes("x"), [](const WriteResult&) { FAIL() << "must not complete"; });
    sched.run();
    EXPECT_TRUE(c1.failed());
  }
}

}  // namespace
}  // namespace faust::ustor
