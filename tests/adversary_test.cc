// Forking attacks against bare USTOR clients: the attacks succeed
// silently at the protocol layer (that is exactly what forking semantics
// permit), the resulting histories satisfy weak fork-linearizability
// (Def. 6), and the Figure 3 history separates weak fork-linearizability
// from fork-linearizability.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/forking_server.h"
#include "baseline/naive.h"
#include "checker/history.h"
#include "checker/linearizability.h"
#include "checker/causal.h"
#include "checker/weak_fork.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"

namespace faust {
namespace {

using adversary::ForkingServer;
using checker::HistoryRecorder;
using checker::OpRecord;
using checker::ViewMap;

struct ForkFixture : ::testing::Test {
  static constexpr int kN = 4;
  sim::Scheduler sched;
  net::Network net{sched, Rng(21), net::DelayModel{2, 6}};
  std::shared_ptr<const crypto::SignatureScheme> sigs = crypto::make_hmac_scheme(kN);
  ForkingServer server{kN, net};
  std::vector<std::unique_ptr<ustor::Client>> clients;
  HistoryRecorder rec;

  void SetUp() override {
    for (ClientId i = 1; i <= kN; ++i) {
      clients.push_back(std::make_unique<ustor::Client>(i, kN, sigs, net));
    }
  }

  ustor::Client& c(ClientId i) { return *clients[static_cast<std::size_t>(i - 1)]; }

  ustor::WriteResult write(ClientId i, std::string_view v) {
    const int id = rec.begin(i, ustor::OpCode::kWrite, i, to_bytes(v), sched.now());
    ustor::WriteResult out;
    bool done = false;
    c(i).writex(to_bytes(v), [&](const ustor::WriteResult& r) {
      out = r;
      done = true;
    });
    while (!done && !c(i).failed() && sched.step()) {
    }
    EXPECT_TRUE(done);
    rec.end(id, sched.now(), out.t);
    sched.run();  // drain the trailing COMMIT so fork copies are complete
    return out;
  }

  ustor::ReadResult read(ClientId i, ClientId j) {
    const int id = rec.begin(i, ustor::OpCode::kRead, j, std::nullopt, sched.now());
    ustor::ReadResult out;
    bool done = false;
    c(i).readx(j, [&](const ustor::ReadResult& r) {
      out = r;
      done = true;
    });
    while (!done && !c(i).failed() && sched.step()) {
    }
    EXPECT_TRUE(done);
    rec.end(id, sched.now(), out.t, out.value);
    sched.run();
    return out;
  }

  /// Maps a fork's schedule log to a view (sequence of recorded op ids) by
  /// matching (client, timestamp) pairs.
  std::vector<int> view_of_fork(int fork) const {
    std::vector<int> out;
    for (const ustor::ScheduledOp& s : server.core(fork).schedule()) {
      for (const OpRecord& op : rec.history()) {
        if (op.client == s.client && op.t == s.t) {
          out.push_back(op.id);
          break;
        }
      }
    }
    return out;
  }
};

TEST_F(ForkFixture, Figure3Scenario) {
  // The exact history of Figure 3: C1 writes u; the server hides it from
  // C2's first read, then reveals the *submitted* operation (not its
  // commit) for the second read.
  const auto w = write(1, "u");
  EXPECT_EQ(w.t, 1u);

  server.isolate(2);  // C2 now lives in a world where C1 never existed
  const auto r1 = read(2, 1);
  EXPECT_FALSE(r1.value.has_value()) << "first read must return ⊥";

  ASSERT_NE(server.last_submit(1), nullptr);
  server.leak_submit(server.fork_of(2), *server.last_submit(1));
  const auto r2 = read(2, 1);
  ASSERT_TRUE(r2.value.has_value());
  EXPECT_EQ(to_string(*r2.value), "u") << "second read must return u";

  // USTOR alone cannot see anything wrong — that is the forking game.
  EXPECT_FALSE(c(1).failed());
  EXPECT_FALSE(c(2).failed());

  // The history is NOT linearizable (r1 skipped a completed write) ...
  const auto& h = rec.history();
  EXPECT_FALSE(checker::check_linearizable(h).ok);
  // ... and not even fork-linearizable: no views of this history satisfy
  // full real-time order plus no-join (the paper's separation argument).
  EXPECT_FALSE(checker::exists_fork_linearizable_views(h));

  // But it IS weak fork-linearizable with the views the server produced,
  // and causally consistent.
  ViewMap views;
  views[1] = view_of_fork(0);                 // [w1]
  views[2] = view_of_fork(server.fork_of(2)); // [r1, w1(leaked), r2]
  ASSERT_EQ(views[1].size(), 1u);
  ASSERT_EQ(views[2].size(), 3u);
  const auto res = checker::validate_weak_fork_linearizable(h, views);
  EXPECT_TRUE(res.ok) << res.violation;
  EXPECT_FALSE(checker::validate_fork_linearizable(h, views).ok);
  EXPECT_TRUE(checker::check_causal(h).ok);
}

TEST_F(ForkFixture, SplitWorldForkIsInvisibleToUstor) {
  // Classic fork: {C1,C2} vs {C3,C4} from the start.
  server.isolate(3);
  server.assign(4, server.fork_of(3));

  write(1, "a1");
  write(3, "b1");
  const auto r2 = read(2, 1);
  const auto r4 = read(4, 3);
  ASSERT_TRUE(r2.value.has_value());
  EXPECT_EQ(to_string(*r2.value), "a1");
  ASSERT_TRUE(r4.value.has_value());
  EXPECT_EQ(to_string(*r4.value), "b1");

  // Cross-fork blindness: C2 sees nothing of C3.
  EXPECT_FALSE(read(2, 3).value.has_value());

  for (ClientId i = 1; i <= kN; ++i) EXPECT_FALSE(c(i).failed());

  // Versions across forks are ≼-incomparable — the evidence FAUST uses.
  EXPECT_FALSE(ustor::versions_comparable(c(1).version(), c(3).version()));
  EXPECT_TRUE(ustor::versions_comparable(c(1).version(), c(2).version()));

  // The forked history satisfies Def. 6 with the per-fork schedules.
  ViewMap views;
  views[1] = view_of_fork(0);
  views[2] = view_of_fork(0);
  views[3] = view_of_fork(server.fork_of(3));
  views[4] = view_of_fork(server.fork_of(4));
  const auto res = checker::validate_weak_fork_linearizable(rec.history(), views);
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST_F(ForkFixture, MidExecutionSplitServesStaleWorldForever) {
  write(1, "v1");
  read(2, 1);

  // Fork C2 off with a state copy: from now on it reads a frozen world.
  server.split(2);
  write(1, "v2");
  write(1, "v3");

  const auto r = read(2, 1);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(to_string(*r.value), "v1") << "victim sees the stale snapshot";
  EXPECT_FALSE(c(2).failed()) << "a consistent replay fork is invisible to USTOR";

  // Victim's own writes still work inside its fork.
  write(2, "mine");
  const auto r2 = read(2, 2);
  EXPECT_EQ(to_string(*r2.value), "mine");

  EXPECT_FALSE(ustor::versions_comparable(c(1).version(), c(2).version()));
}

TEST_F(ForkFixture, RejoinAttemptAfterForkIsDetected) {
  // The no-join flavour USTOR does enforce: once C2's view diverged, the
  // server cannot simply put C2 back on the main fork — C2's version is
  // no longer a predecessor of the main fork's versions.
  write(1, "v1");
  read(2, 1);
  server.split(2);
  write(2, "diverged");  // advances C2 inside its fork only
  write(1, "v2");        // advances the main fork

  server.assign(2, 0);   // naive rejoin attempt
  bool done = false;
  c(2).readx(1, [&](const ustor::ReadResult&) { done = true; });
  sched.run();
  EXPECT_FALSE(done);
  EXPECT_TRUE(c(2).failed());
  EXPECT_EQ(c(2).fail_cause(), ustor::FailCause::kVersionRegression);
}

TEST(NaiveBaseline, ForgedValuesPassSilently) {
  // The same lie against the unprotected baseline goes unnoticed — the
  // motivation for the whole paper (§1).
  sim::Scheduler sched;
  net::Network net(sched, Rng(5), net::DelayModel{1, 3});
  baseline::NaiveServer server(2, net);
  baseline::NaiveClient c1(1, 2, net);
  baseline::NaiveClient c2(2, 2, net);

  bool wrote = false;
  c1.write(to_bytes("honest"), [&] { wrote = true; });
  sched.run();
  ASSERT_TRUE(wrote);

  server.lie_about(1, to_bytes("forged"));
  ustor::Value got;
  c2.read(1, [&](const ustor::Value& v) { got = v; });
  sched.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_string(*got), "forged") << "no detection, forged value accepted";
}

}  // namespace
}  // namespace faust
