// O(change) KV machinery: incremental partition encoding, version-keyed
// decode memos and the merged-view cache must be pure performance — byte-
// identical publications, identical merged views and stability cuts vs
// the legacy full-reencode/full-decode paths — and must never weaken the
// Byzantine story: a tampered or replayed partition is rejected by the
// FAUST/USTOR checks BEFORE any memo is consulted (the memos are keyed
// only by verified digests).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/tamper_server.h"
#include "api/store.h"
#include "common/rng.h"
#include "faust/cluster.h"
#include "kvstore/kv_client.h"

namespace faust::kv {
namespace {

struct Rig {
  Rig(std::uint64_t seed, KvTuning tuning, ustor::DigestMode digest, int n = 3,
      bool with_server = true) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    cfg.faust.data_digest = digest;
    cfg.with_server = with_server;
    cluster = std::make_unique<Cluster>(cfg);
    for (ClientId i = 1; i <= n; ++i) {
      kv.push_back(std::make_unique<KvClient>(cluster->client(i), tuning));
    }
  }

  KvClient& client(ClientId i) { return *kv[static_cast<std::size_t>(i - 1)]; }

  void drive(const bool& done) {
    std::size_t steps = 0;
    while (!done && steps < 2'000'000 && cluster->sched().step()) ++steps;
  }

  void put(ClientId i, const std::string& k, const std::string& v) {
    bool done = false;
    client(i).put(k, v, [&](Timestamp) { done = true; });
    drive(done);
    ASSERT_TRUE(done);
  }

  void erase(ClientId i, const std::string& k) {
    bool done = false;
    client(i).erase(k, [&](Timestamp) { done = true; });
    drive(done);
    ASSERT_TRUE(done);
  }

  /// Returns false iff the op hung (e.g. the client failed mid-read).
  bool try_get(ClientId i, const std::string& k, std::optional<KvEntry>* out) {
    bool done = false;
    client(i).get(k, [&](std::optional<KvEntry> e, Timestamp) {
      *out = std::move(e);
      done = true;
    });
    drive(done);
    return done;
  }

  std::map<std::string, KvEntry> list(ClientId i) {
    bool done = false;
    std::map<std::string, KvEntry> out;
    client(i).list([&](const std::map<std::string, KvEntry>& m, Timestamp) {
      out = m;
      done = true;
    });
    drive(done);
    EXPECT_TRUE(done);
    return out;
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<KvClient>> kv;
};

constexpr KvTuning kDelta{true, true};
constexpr KvTuning kLegacy{false, false};

// --- Incremental encoding --------------------------------------------------

TEST(IncrementalEncoding, SplicedBufferAlwaysEqualsFullReencode) {
  // Seeded random workload of puts (fresh keys, same-size overwrites,
  // size-changing overwrites), erases (first/middle/last), and batches;
  // after every op the maintained buffer must equal a from-scratch
  // canonical encoding — splices are invisible.
  Rig rig(11, kDelta, ustor::DigestMode::kChunked);
  Rng rng(7);
  std::vector<std::string> keys;
  for (int op = 0; op < 120; ++op) {
    const std::size_t kind = rng.next_below(10);
    if (kind < 6 || keys.empty()) {  // put (maybe fresh)
      std::string key;
      if (keys.empty() || rng.next_below(2) == 0) {
        key = "key-" + std::to_string(rng.next_below(40));
        keys.push_back(key);
      } else {
        key = keys[rng.next_below(keys.size())];
      }
      rig.put(1, key, std::string(1 + rng.next_below(40), 'x'));
    } else if (kind < 8) {  // erase (often present, sometimes absent)
      rig.erase(1, keys[rng.next_below(keys.size())]);
    } else {  // coalesced batch, one publication
      std::vector<KvClient::SeqChange> batch;
      std::uint64_t seq = rig.client(1).put_seq();
      for (int b = 0; b < 3; ++b) {
        batch.push_back(KvClient::SeqChange{"batch-" + std::to_string(rng.next_below(10)),
                                            std::string(1 + rng.next_below(20), 'y'), ++seq});
      }
      bool done = false;
      rig.client(1).apply_with_seqs(batch, [&](Timestamp) { done = true; });
      rig.drive(done);
      ASSERT_TRUE(done);
    }
    const Bytes fresh = encode_partition(rig.client(1).own_partition());
    const BytesView kept = rig.client(1).encoded_partition();
    ASSERT_EQ(Bytes(kept.begin(), kept.end()), fresh) << "after op " << op;
  }
  // The workload above must have exercised the splice path, not rebuilt.
  EXPECT_GT(rig.client(1).encode_splices(), 100u);
  EXPECT_LE(rig.client(1).encode_rebuilds(), 1u);
}

TEST(IncrementalEncoding, PublishedBytesIdenticalToLegacyEngine) {
  // Same ops through a delta and a legacy engine: readers of either must
  // decode identical partitions (the knob changes cost, never bytes).
  Rig delta(21, kDelta, ustor::DigestMode::kChunked);
  Rig legacy(21, kLegacy, ustor::DigestMode::kFlat);
  Rng rng(3);
  for (int op = 0; op < 40; ++op) {
    const std::string key = "k" + std::to_string(rng.next_below(12));
    if (rng.next_below(4) == 0) {
      delta.erase(2, key);
      legacy.erase(2, key);
    } else {
      const std::string value = "v" + std::to_string(op);
      delta.put(2, key, value);
      legacy.put(2, key, value);
    }
    const BytesView a = delta.client(2).encoded_partition();
    const BytesView b = legacy.client(2).encoded_partition();
    ASSERT_EQ(Bytes(a.begin(), a.end()), Bytes(b.begin(), b.end())) << "after op " << op;
  }
  EXPECT_GT(delta.client(2).encode_splices(), 0u);
  EXPECT_EQ(legacy.client(2).encode_splices(), 0u) << "legacy must take the rebuild path";
}

// --- Decode memos and the merged-view cache --------------------------------

TEST(DecodeMemo, UnchangedSnapshotsSkipDecodeAndMerge) {
  Rig rig(31, kDelta, ustor::DigestMode::kChunked);
  rig.put(1, "a", "1");
  rig.put(2, "b", "2");
  rig.put(3, "c", "3");

  std::optional<KvEntry> e;
  ASSERT_TRUE(rig.try_get(1, "a", &e));  // cold: fills the memos
  const std::uint64_t hits_after_warm = rig.client(1).decode_memo_hits();
  const std::uint64_t merged_after_warm = rig.client(1).merged_cache_hits();

  for (int round = 1; round <= 5; ++round) {
    std::optional<KvEntry> got;
    ASSERT_TRUE(rig.try_get(1, "b", &got));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->value, "2");
    // Every register read hit the decode memo and the merge was skipped.
    EXPECT_EQ(rig.client(1).decode_memo_hits(), hits_after_warm + 3u * static_cast<unsigned>(round));
    EXPECT_EQ(rig.client(1).merged_cache_hits(), merged_after_warm + static_cast<unsigned>(round));
  }
}

TEST(DecodeMemo, WriteInvalidatesExactlyTheChangedPartition) {
  Rig rig(32, kDelta, ustor::DigestMode::kChunked);
  rig.put(1, "a", "1");
  rig.put(2, "b", "2");
  rig.put(3, "c", "3");
  std::optional<KvEntry> e;
  ASSERT_TRUE(rig.try_get(1, "a", &e));  // warm

  rig.put(3, "c", "3-new");  // one partition changes

  const std::uint64_t misses_before = rig.client(1).decode_memo_misses();
  std::optional<KvEntry> got;
  ASSERT_TRUE(rig.try_get(1, "c", &got));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, "3-new") << "memo must never serve stale content";
  EXPECT_EQ(rig.client(1).decode_memo_misses(), misses_before + 1u)
      << "only the rewritten partition re-decodes";

  // And the view agrees with a memo-less engine replaying the same state.
  Rig oracle(32, kLegacy, ustor::DigestMode::kFlat);
  oracle.put(1, "a", "1");
  oracle.put(2, "b", "2");
  oracle.put(3, "c", "3");
  oracle.put(3, "c", "3-new");
  EXPECT_EQ(rig.list(1), oracle.list(1));
}

TEST(DecodeMemo, ViewsAndStabilityCutsIdenticalAcrossTunings) {
  // The acceptance pin: the delta paths and the forced-legacy paths must
  // produce identical winners AND identical stability cuts. Same cluster
  // seed + same ops = same message schedule (the knobs change neither
  // message count nor sizes), so even the cut vectors match exactly.
  Rig delta(77, kDelta, ustor::DigestMode::kChunked);
  Rig legacy(77, kLegacy, ustor::DigestMode::kFlat);
  Rng rng(5);
  for (int op = 0; op < 60; ++op) {
    const ClientId who = static_cast<ClientId>(1 + rng.next_below(3));
    const std::string key = "key-" + std::to_string(rng.next_below(10));
    const std::size_t kind = rng.next_below(10);
    if (kind < 6) {
      const std::string value = "v" + std::to_string(op);
      delta.put(who, key, value);
      legacy.put(who, key, value);
    } else if (kind < 8) {
      delta.erase(who, key);
      legacy.erase(who, key);
    } else {
      std::optional<KvEntry> a, b;
      ASSERT_TRUE(delta.try_get(who, key, &a));
      ASSERT_TRUE(legacy.try_get(who, key, &b));
      ASSERT_EQ(a.has_value(), b.has_value()) << "op " << op;
      if (a.has_value()) {
        EXPECT_EQ(a->value, b->value);
        EXPECT_EQ(a->writer, b->writer);
        EXPECT_EQ(a->seq, b->seq);
      }
    }
  }
  for (ClientId i = 1; i <= 3; ++i) {
    EXPECT_EQ(delta.list(i), legacy.list(i)) << "reader " << i;
    EXPECT_EQ(delta.cluster->client(i).stability_cut(),
              legacy.cluster->client(i).stability_cut())
        << "client " << i;
    EXPECT_EQ(delta.cluster->client(i).fully_stable_timestamp(),
              legacy.cluster->client(i).fully_stable_timestamp());
  }
  EXPECT_GT(delta.client(1).decode_memo_hits() + delta.client(2).decode_memo_hits() +
                delta.client(3).decode_memo_hits(),
            0u)
      << "the comparison must actually exercise the memo path";
}

// --- Byzantine regressions -------------------------------------------------

TEST(DecodeMemoByzantine, TamperedPartitionUnderReusedVersionIsRejectedNotServed) {
  // The server substitutes a forged partition while keeping the genuine
  // DATA signature (adversary::Tamper::kValueFreshSig): the USTOR line-50
  // check fails BEFORE the KV layer sees anything — the decode memo is
  // keyed only by verified digests, so it is neither consulted nor
  // polluted, and no stale or forged view is ever delivered.
  Rig rig(41, kDelta, ustor::DigestMode::kChunked, /*n=*/3, /*with_server=*/false);
  // The victim (client 2) will fire on its 4th op: gets cost 3 reads, so
  // that is the first read of its SECOND get — after the memos are warm.
  adversary::TamperServer server(3, rig.cluster->net(), adversary::Tamper::kValueFreshSig,
                                 /*victim=*/2, /*fire_on_op=*/4);

  rig.put(1, "k", "genuine");
  std::optional<KvEntry> warm;
  ASSERT_TRUE(rig.try_get(2, "k", &warm));
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->value, "genuine");
  const std::uint64_t hits_before = rig.client(2).decode_memo_hits();

  std::optional<KvEntry> out;
  const bool completed = rig.try_get(2, "k", &out);
  EXPECT_TRUE(server.fired());
  EXPECT_FALSE(completed) << "a get over tampered bytes must not complete";
  EXPECT_TRUE(rig.cluster->client(2).failed()) << "fail_i must fire";
  EXPECT_EQ(rig.client(2).decode_memo_hits(), hits_before)
      << "the unverified read must not touch the memo";
}

TEST(DecodeMemoByzantine, StaleReplayUnderOldVersionIsRejectedNotServed) {
  // The replay attack (Tamper::kStaleTimestamp): old value with its
  // perfectly valid old DATA signature. The freshness checks (lines
  // 51–52) fire before the memo could replay the old decode — holding a
  // memoized copy of exactly that stale content must not weaken detection.
  Rig rig(42, kDelta, ustor::DigestMode::kChunked, /*n=*/3, /*with_server=*/false);
  adversary::TamperServer server(3, rig.cluster->net(), adversary::Tamper::kStaleTimestamp,
                                 /*victim=*/2, /*fire_on_op=*/7);

  rig.put(1, "k", "old-value");
  std::optional<KvEntry> seen;
  ASSERT_TRUE(rig.try_get(2, "k", &seen));  // memoizes the OLD partition
  EXPECT_EQ(seen->value, "old-value");
  rig.put(1, "k", "new-value");
  ASSERT_TRUE(rig.try_get(2, "k", &seen));  // sees and memoizes the new one
  EXPECT_EQ(seen->value, "new-value");

  std::optional<KvEntry> out;
  const bool completed = rig.try_get(2, "k", &out);  // replay fires here
  EXPECT_TRUE(server.fired());
  EXPECT_FALSE(completed) << "the replayed snapshot must not complete";
  EXPECT_TRUE(rig.cluster->client(2).failed());
}

// --- The unbatched Store::get path -----------------------------------------

TEST(StoreSingleGet, LoneGetMatchesBatchOfOneAndServesFromOneSnapshot) {
  // A lone Store::get IS a batch of one read point: same snapshot
  // machinery, same result — and through the engine's merged-view memo an
  // unchanged snapshot is served without decoding or copying.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 51;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cluster(cfg);
  auto writer = api::open_store(cluster, 1);
  auto reader = api::open_store(cluster, 2);
  ASSERT_GT(writer->put("key", "value").settle().ts, 0u);

  const api::GetResult lone = reader->get("key").settle();
  std::vector<api::Op> batch;
  batch.push_back(api::Op::get("key"));
  const api::BatchResult b = reader->apply(std::move(batch)).settle();
  ASSERT_TRUE(b.ok);
  ASSERT_TRUE(lone.entry.has_value());
  ASSERT_TRUE(b.results[0].get.entry.has_value());
  EXPECT_EQ(lone.entry->value, b.results[0].get.entry->value);
  EXPECT_EQ(lone.entry->writer, b.results[0].get.entry->writer);
  EXPECT_EQ(lone.entry->seq, b.results[0].get.entry->seq);
  EXPECT_FALSE(lone.failed);
  EXPECT_GT(lone.read_ts, 0u);
}

}  // namespace
}  // namespace faust::kv
