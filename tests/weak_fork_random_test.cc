// Randomized forking executions, machine-checked against Definition 6:
// for ANY schedule of split/isolate attacks (no rejoin), the history that
// USTOR clients observe must be weak fork-linearizable with the views the
// forking server actually produced, and causally consistent — the paper's
// safety guarantee under a Byzantine server.  Also re-checks the version
// algebra: versions within a fork stay comparable, and clients whose
// forks diverged commit incomparable versions.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "adversary/forking_server.h"
#include "checker/causal.h"
#include "checker/history.h"
#include "checker/linearizability.h"
#include "checker/weak_fork.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"

namespace faust {
namespace {

using checker::OpRecord;
using checker::ViewMap;

class RandomForkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomForkTest, AnyForkScheduleSatisfiesDefinition6) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);

  const int n = 3 + static_cast<int>(rng.next_below(2));  // 3..4 clients
  sim::Scheduler sched;
  net::Network net(sched, Rng(seed), net::DelayModel{1, 6});
  auto sigs = crypto::make_hmac_scheme(n);
  adversary::ForkingServer server(n, net);
  std::vector<std::unique_ptr<ustor::Client>> clients;
  for (ClientId i = 1; i <= n; ++i) {
    clients.push_back(std::make_unique<ustor::Client>(i, n, sigs, net));
  }
  checker::HistoryRecorder rec;

  int value_counter = 0;
  const auto run_op = [&](ClientId i) {
    ustor::Client& c = *clients[static_cast<std::size_t>(i - 1)];
    if (c.failed()) return;
    bool done = false;
    if (rng.chance(0.5)) {
      const std::string v = "s" + std::to_string(seed) + "-" + std::to_string(++value_counter);
      const int id = rec.begin(i, ustor::OpCode::kWrite, i, to_bytes(v), sched.now());
      Timestamp t = 0;
      c.writex(to_bytes(v), [&](const ustor::WriteResult& r) {
        t = r.t;
        done = true;
      });
      while (!done && !c.failed() && sched.step()) {
      }
      ASSERT_TRUE(done) << "wait-freedom inside a fork";
      rec.end(id, sched.now(), t);
    } else {
      const ClientId j = 1 + static_cast<ClientId>(rng.next_below(n));
      const int id = rec.begin(i, ustor::OpCode::kRead, j, std::nullopt, sched.now());
      Timestamp t = 0;
      ustor::Value v;
      c.readx(j, [&](const ustor::ReadResult& r) {
        t = r.t;
        v = r.value;
        done = true;
      });
      while (!done && !c.failed() && sched.step()) {
      }
      ASSERT_TRUE(done);
      rec.end(id, sched.now(), t, v);
    }
    sched.run();  // drain the COMMIT so fork snapshots are complete
  };

  // Random interleaving of operations and fork attacks.
  const int total_ops = 12 + static_cast<int>(rng.next_below(10));
  int forks_done = 0;
  for (int k = 0; k < total_ops; ++k) {
    const ClientId actor = 1 + static_cast<ClientId>(rng.next_below(n));
    run_op(actor);
    if (forks_done < 2 && rng.chance(0.25)) {
      const ClientId victim = 1 + static_cast<ClientId>(rng.next_below(n));
      // A consistent fork must preserve the victim's own history: split()
      // (state copy) always does; isolate() (empty world) is consistent
      // only for a victim that has not completed any operation yet — the
      // Figure 3 situation. An inconsistent fork would be detected
      // immediately (see adversary_test RejoinAttemptAfterForkIsDetected),
      // which is not what this test probes.
      if (clients[static_cast<std::size_t>(victim - 1)]->completed_ops() == 0 &&
          rng.chance(0.5)) {
        server.isolate(victim);
      } else {
        server.split(victim);
      }
      ++forks_done;
    }
  }

  // USTOR alone never detects a consistent fork.
  for (const auto& c : clients) EXPECT_FALSE(c->failed()) << "seed " << seed;

  // Build each client's view from its fork's schedule log.
  const auto view_of_fork = [&](int fork) {
    std::vector<int> out;
    for (const ustor::ScheduledOp& s : server.core(fork).schedule()) {
      for (const OpRecord& op : rec.history()) {
        if (op.client == s.client && op.t == s.t) {
          out.push_back(op.id);
          break;
        }
      }
    }
    return out;
  };
  ViewMap views;
  for (ClientId i = 1; i <= n; ++i) views[i] = view_of_fork(server.fork_of(i));

  const auto res = checker::validate_weak_fork_linearizable(rec.history(), views);
  EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.violation;
  const auto causal = checker::check_causal(rec.history());
  EXPECT_TRUE(causal.ok) << "seed " << seed << ": " << causal.violation;

  // Version algebra: same-fork versions comparable; clients whose version
  // vectors were committed in different forks after divergence need not
  // be — and at least the ≼ relation must agree with fork structure.
  for (ClientId a = 1; a <= n; ++a) {
    for (ClientId b = a + 1; b <= n; ++b) {
      const ustor::Version& va = clients[static_cast<std::size_t>(a - 1)]->version();
      const ustor::Version& vb = clients[static_cast<std::size_t>(b - 1)]->version();
      if (va.is_zero() || vb.is_zero()) continue;
      if (server.fork_of(a) == server.fork_of(b)) {
        EXPECT_TRUE(ustor::versions_comparable(va, vb))
            << "seed " << seed << ": same-fork clients C" << a << "/C" << b;
      }
    }
  }

  // Sanity: with no forks the history must even be linearizable.
  if (forks_done == 0) {
    const auto lin = checker::check_linearizable(rec.history());
    EXPECT_TRUE(lin.ok) << "seed " << seed << ": " << lin.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomForkTest, ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace faust
