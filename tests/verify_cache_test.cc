// VerifyCache: memoization must never weaken verification. The stale-hit
// regression cases mirror the Byzantine tamper scenarios of
// ustor_byzantine_test.cc at the crypto layer: any change to the signer,
// payload, or signature bytes must bypass the cache and fail.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "crypto/signature.h"
#include "crypto/verify_cache.h"

namespace faust::crypto {
namespace {

struct VerifyCacheFixture : ::testing::Test {
  std::shared_ptr<SignatureScheme> inner = make_hmac_scheme(4);
  VerifyCache cache{inner};
};

TEST_F(VerifyCacheFixture, HitAfterVerify) {
  const Bytes msg = to_bytes("payload");
  const Bytes sig = inner->sign(1, msg);
  EXPECT_TRUE(cache.verify(1, msg, sig));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_TRUE(cache.verify(1, msg, sig));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(VerifyCacheFixture, SignPrimesCache) {
  const Bytes msg = to_bytes("own-message");
  const Bytes sig = cache.sign(2, msg);
  EXPECT_TRUE(cache.verify(2, msg, sig));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST_F(VerifyCacheFixture, TamperedSignatureNeverHits) {
  const Bytes msg = to_bytes("payload");
  Bytes sig = inner->sign(1, msg);
  ASSERT_TRUE(cache.verify(1, msg, sig));  // cached

  // Byzantine tamper: flip one bit of the cached signature.
  Bytes bad = sig;
  bad[0] ^= 0x01;
  EXPECT_FALSE(cache.verify(1, msg, bad));
  // Every subsequent attempt with the forged signature still fails.
  EXPECT_FALSE(cache.verify(1, msg, bad));
  // The genuine triple still verifies (and still hits).
  EXPECT_TRUE(cache.verify(1, msg, sig));
}

TEST_F(VerifyCacheFixture, TamperedPayloadNeverHits) {
  const Bytes msg = to_bytes("payload");
  const Bytes sig = inner->sign(1, msg);
  ASSERT_TRUE(cache.verify(1, msg, sig));

  Bytes other = msg;
  other.push_back(0x00);
  EXPECT_FALSE(cache.verify(1, other, sig));
  Bytes flipped = msg;
  flipped[0] ^= 0x80;
  EXPECT_FALSE(cache.verify(1, flipped, sig));
}

TEST_F(VerifyCacheFixture, WrongSignerNeverHits) {
  const Bytes msg = to_bytes("payload");
  const Bytes sig = inner->sign(1, msg);
  ASSERT_TRUE(cache.verify(1, msg, sig));
  // Client 2 did not produce this signature; the cache entry for signer 1
  // must not vouch for it.
  EXPECT_FALSE(cache.verify(2, msg, sig));
}

TEST_F(VerifyCacheFixture, FailedVerificationIsNotCached) {
  const Bytes msg = to_bytes("payload");
  Bytes bad = inner->sign(1, msg);
  bad[5] ^= 0xff;
  EXPECT_FALSE(cache.verify(1, msg, bad));
  EXPECT_FALSE(cache.verify(1, msg, bad));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(VerifyCacheEviction, BoundedAndCorrectAfterReset) {
  auto inner = make_hmac_scheme(2);
  VerifyCache cache(inner, /*max_entries=*/8);
  Bytes msgs[20], sigs[20];
  for (int i = 0; i < 20; ++i) {
    msgs[i] = to_bytes("m" + std::to_string(i));
    sigs[i] = inner->sign(1, msgs[i]);
    EXPECT_TRUE(cache.verify(1, msgs[i], sigs[i]));
    EXPECT_LE(cache.entries(), 8u);
  }
  // After eviction resets, everything still verifies (just re-checked).
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(cache.verify(1, msgs[i], sigs[i]));
  }
}

TEST(VerifyCacheStress, EvictionCyclesNeverWeakenVerification) {
  // Stress the epoch-clear eviction: push an order of magnitude past
  // capacity so every entry of the early epochs is cached and then
  // wholesale-evicted, then attack exactly those cached-then-evicted
  // triples. A forged variant must re-verify from scratch and fail — an
  // eviction (or any amount of cache churn) must never downgrade
  // verification to acceptance.
  auto inner = make_hmac_scheme(3);
  VerifyCache cache(inner, /*max_entries=*/64);

  struct Entry {
    ClientId signer;
    Bytes msg, sig;
  };
  std::vector<Entry> entries;
  for (int i = 0; i < 640; ++i) {
    const ClientId signer = static_cast<ClientId>(1 + i % 3);
    Bytes msg = to_bytes("stress-payload-" + std::to_string(i));
    Bytes sig = inner->sign(signer, msg);
    ASSERT_TRUE(cache.verify(signer, msg, sig));
    ASSERT_LE(cache.entries(), 64u) << "capacity bound violated at " << i;
    entries.push_back({signer, std::move(msg), std::move(sig)});
  }
  ASSERT_GT(cache.misses(), 0u);

  // The first epochs' entries were verified, cached, and later evicted.
  for (int i = 0; i < 200; ++i) {
    const Entry& e = entries[static_cast<std::size_t>(i)];
    // Tampered signature: one flipped bit, varying position.
    Bytes bad_sig = e.sig;
    bad_sig[static_cast<std::size_t>(i) % bad_sig.size()] ^=
        static_cast<std::uint8_t>(1u << (i % 8));
    EXPECT_FALSE(cache.verify(e.signer, e.msg, bad_sig)) << "entry " << i;
    // Tampered payload under the genuine signature.
    Bytes bad_msg = e.msg;
    bad_msg.push_back(0x00);
    EXPECT_FALSE(cache.verify(e.signer, bad_msg, e.sig)) << "entry " << i;
    // Signer confusion.
    const ClientId other = static_cast<ClientId>(1 + (e.signer % 3));
    EXPECT_FALSE(cache.verify(other, e.msg, e.sig)) << "entry " << i;
  }

  // And the genuine evicted triples still verify (via re-verification).
  for (int i = 0; i < 200; ++i) {
    const Entry& e = entries[static_cast<std::size_t>(i)];
    EXPECT_TRUE(cache.verify(e.signer, e.msg, e.sig)) << "entry " << i;
  }
}

TEST(VerifyCacheNullScheme, BypassesCaching) {
  auto inner = std::make_shared<NullSignatureScheme>();
  VerifyCache cache(inner);
  EXPECT_TRUE(cache.verify(1, to_bytes("m"), {}));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.signature_size(), 0u);
}

}  // namespace
}  // namespace faust::crypto
