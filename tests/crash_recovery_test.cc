// Crash-durability integration tests (DESIGN.md D7): transient server
// crashes with epoch-fenced in-flight traffic, snapshot-based recovery
// re-verified through the chunk-tree digest, Byzantine-disk fallback to
// log replay, exactly-once resume of in-flight client operations, and
// kill/restart of whole shards in both execution modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/signature.h"
#include "faust/cluster.h"
#include "net/network.h"
#include "shard/sharded_cluster.h"
#include "shard/sharded_kv_client.h"
#include "sim/scheduler.h"
#include "storage/persistent_server.h"
#include "ustor/client.h"
#include "ustor/state_codec.h"

namespace faust {
namespace {

/// Fresh temp directory per test; removed recursively on destruction.
struct TempDirFixture {
  std::string path;
  explicit TempDirFixture(const std::string& tag) {
    path = std::string(::testing::TempDir()) + "/faust_crash_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDirFixture() { std::filesystem::remove_all(path); }
};

// --- Exactly-once resume at the protocol layer ----------------------------

TEST(CrashRecovery, DuplicateSubmitServedFromReplyCache) {
  // The server crashes after processing (and logging) a SUBMIT but before
  // its REPLY is delivered. The reconnecting client resends the identical
  // SUBMIT; the recovered server must recognise the duplicate (the submit
  // timestamp doubles as a per-client sequence number) and serve the
  // CACHED original reply — reprocessing would append a second L entry
  // and trip the client's self-concurrency check.
  constexpr int kN = 2;
  TempDirFixture dir("dup");
  sim::Scheduler sched;
  net::Network net(sched, Rng(3), net::DelayModel{1, 1});
  auto sigs = crypto::make_hmac_scheme(kN);
  auto server = std::make_unique<storage::PersistentServer>(kN, net, dir.path,
                                                            storage::DurabilityOptions{});
  ustor::Client c1(1, kN, sigs, net);
  ustor::Client c2(2, kN, sigs, net);

  bool done = false;
  c1.writex(to_bytes("first"), [&done](const ustor::WriteResult&) { done = true; });
  while (!done && sched.step()) {
  }
  ASSERT_TRUE(done);
  sched.run();  // drain the trailing COMMIT into the log

  done = false;
  c1.writex(to_bytes("in-flight"), [&done](const ustor::WriteResult&) { done = true; });
  const std::uint64_t before = server->wal_records();
  while (server->wal_records() == before && sched.step()) {
  }
  ASSERT_GT(server->wal_records(), before) << "SUBMIT must be logged";
  ASSERT_FALSE(done) << "the REPLY must still be in flight";

  net.kill(kServerNode);  // drops the undelivered REPLY via the epoch fence
  server.reset();
  sched.run();

  server = std::make_unique<storage::PersistentServer>(kN, net, dir.path,
                                                       storage::DurabilityOptions{});
  EXPECT_GT(server->recovered_records(), 0u);
  c1.resubmit();
  while (!done && sched.step()) {
  }
  ASSERT_TRUE(done) << "the resumed op must complete";
  EXPECT_EQ(server->duplicate_replies(), 1u)
      << "the resent SUBMIT must be served from the cache, not reprocessed";
  sched.run();

  // The value is durable and visible; nobody fired fail_i.
  done = false;
  ustor::Value v;
  c2.readx(1, [&](const ustor::ReadResult& r) {
    v = r.value;
    done = true;
  });
  while (!done && sched.step()) {
  }
  ASSERT_TRUE(done);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "in-flight");
  EXPECT_FALSE(c1.failed());
  EXPECT_FALSE(c2.failed());
}

// --- Snapshot recovery ----------------------------------------------------

TEST(CrashRecovery, SnapshotRecoveryMatchesFullReplay) {
  // The same on-disk history recovered two ways — verified snapshot plus
  // log suffix, and full log replay — must yield byte-identical protocol
  // state (the canonical state-codec image makes this one comparison).
  constexpr int kN = 2;
  TempDirFixture dir("equiv");
  sim::Scheduler sched;
  net::Network net(sched, Rng(11), net::DelayModel{1, 4});
  auto sigs = crypto::make_hmac_scheme(kN);
  ustor::Client c1(1, kN, sigs, net);
  ustor::Client c2(2, kN, sigs, net);

  {
    storage::PersistentServer server(kN, net, dir.path, storage::DurabilityOptions{});
    const auto write_sync = [&](ustor::Client& c, std::string_view v) {
      bool done = false;
      c.writex(to_bytes(v), [&done](const ustor::WriteResult&) { done = true; });
      while (!done && sched.step()) {
      }
      ASSERT_TRUE(done);
    };
    write_sync(c1, "alpha");
    write_sync(c2, "beta");
    write_sync(c1, "gamma");
    sched.run();
    ASSERT_TRUE(server.force_snapshot());

    // A couple more ops AFTER the snapshot, so recovery exercises the
    // snapshot + suffix path, not snapshot-only.
    write_sync(c2, "delta");
    sched.run();
    net.kill(kServerNode);
  }

  Bytes via_snapshot;
  std::size_t suffix_records = 0;
  {
    storage::PersistentServer server(kN, net, dir.path, storage::DurabilityOptions{});
    EXPECT_TRUE(server.recovered_from_snapshot());
    suffix_records = server.recovered_records();
    via_snapshot = ustor::encode_server_state(server.core());
    net.kill(kServerNode);
  }
  ASSERT_TRUE(std::filesystem::remove(dir.path + "/snapshot.bin"));
  Bytes via_replay;
  {
    storage::PersistentServer server(kN, net, dir.path, storage::DurabilityOptions{});
    EXPECT_FALSE(server.recovered_from_snapshot());
    EXPECT_GT(server.recovered_records(), suffix_records)
        << "full replay must deliver more records than the suffix";
    via_replay = ustor::encode_server_state(server.core());
    net.kill(kServerNode);
  }
  EXPECT_EQ(via_snapshot, via_replay)
      << "snapshot + suffix and full replay must reach identical state";
}

TEST(CrashRecovery, TamperedSnapshotRejectedFallsBackToLogReplay) {
  // Byzantine disk: a snapshot whose payload was altered under its stored
  // chunk-tree root must be REJECTED at restart (the root re-verification
  // is the same ChunkedHasher machinery the wire verifiers use), and
  // recovery must fall back to full log replay — reaching correct state,
  // with the rejection surfaced in a counter. Clients never notice.
  constexpr int kN = 2;
  TempDirFixture dir("tamper");
  sim::Scheduler sched;
  net::Network net(sched, Rng(23), net::DelayModel{1, 4});
  auto sigs = crypto::make_hmac_scheme(kN);
  ustor::Client c1(1, kN, sigs, net);
  ustor::Client c2(2, kN, sigs, net);

  std::vector<ustor::ScheduledOp> schedule_before;
  {
    storage::DurabilityOptions opts;
    opts.snapshot_every = 2;
    storage::PersistentServer server(kN, net, dir.path, opts);
    for (int i = 0; i < 4; ++i) {
      bool done = false;
      c1.writex(to_bytes("value-" + std::to_string(i)),
                [&done](const ustor::WriteResult&) { done = true; });
      while (!done && sched.step()) {
      }
      ASSERT_TRUE(done);
      sched.run();
    }
    ASSERT_GE(server.snapshots_written(), 1u);
    schedule_before = server.core().schedule();
    net.kill(kServerNode);
  }

  // Flip one payload byte of the snapshot; the stored root is now stale.
  const std::string snap_path = dir.path + "/snapshot.bin";
  {
    std::FILE* f = std::fopen(snap_path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }

  storage::PersistentServer server(kN, net, dir.path, storage::DurabilityOptions{});
  EXPECT_EQ(server.snapshots_rejected(), 1u) << "the tampered snapshot must be refused";
  EXPECT_FALSE(server.recovered_from_snapshot());
  EXPECT_GT(server.recovered_records(), 0u) << "fallback is full log replay";
  EXPECT_EQ(server.core().schedule(), schedule_before)
      << "replay must reconstruct the exact schedule despite the bad snapshot";

  // The deployment keeps working: fail-awareness evidence (memos, COMMIT
  // chain) is intact, reads see the last value, no fail_i.
  bool done = false;
  ustor::Value v;
  c2.readx(1, [&](const ustor::ReadResult& r) {
    v = r.value;
    done = true;
  });
  while (!done && sched.step()) {
  }
  ASSERT_TRUE(done);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "value-3");
  EXPECT_FALSE(c1.failed());
  EXPECT_FALSE(c2.failed());
}

// --- Cluster-level crash/restart ------------------------------------------

TEST(CrashRecovery, ClusterCrashRestartMidOpResumesExactlyOnce) {
  // A full FAUST deployment: the server dies with a write in flight and
  // comes back after a downtime; the op must resume and complete against
  // the recovered server, with fail-awareness preserved throughout.
  TempDirFixture dir("cluster");
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 7;
  cfg.durability_dir = dir.path;
  cfg.durability.snapshot_every = 4;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cl(cfg);
  ASSERT_TRUE(cl.durable());
  ASSERT_NE(cl.pserver(), nullptr);
  ASSERT_EQ(cl.server(), nullptr);

  ASSERT_GT(cl.write(1, "pre-crash"), 0u);
  ASSERT_GT(cl.write(2, "other-writer"), 0u);

  bool done = false;
  Timestamp ts = 0;
  cl.client(1).write(to_bytes("mid-op"), [&](Timestamp t) {
    ts = t;
    done = true;
  });
  cl.run_for(1);  // the SUBMIT is now in flight (or just processed)
  cl.crash_server();
  EXPECT_FALSE(cl.server_up());

  cl.exec().after(2'000, [&] { cl.restart_server(); });
  std::size_t steps = 0;
  while (!done && steps < 1'000'000 && cl.sched().step()) ++steps;
  ASSERT_TRUE(done) << "in-flight write must resume across the restart";
  EXPECT_GT(ts, 0u);
  EXPECT_TRUE(cl.server_up());

  bool completed = false;
  const ustor::Value v = cl.read(2, 1, &completed);
  ASSERT_TRUE(completed);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "mid-op");
  EXPECT_FALSE(cl.any_failed());
}

TEST(CrashRecovery, RepeatedCrashesWithSnapshotsStayConsistent) {
  // Several crash/restart cycles with a tight snapshot cadence: later
  // recoveries must come from a snapshot (bounded replay), and the
  // register history must survive every cycle.
  TempDirFixture dir("cycles");
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 13;
  cfg.durability_dir = dir.path;
  cfg.durability.snapshot_every = 3;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cl(cfg);

  for (int round = 0; round < 3; ++round) {
    ASSERT_GT(cl.write(1, "round-" + std::to_string(round)), 0u);
    ASSERT_GT(cl.write(2, "peer-" + std::to_string(round)), 0u);
    cl.run_for(1'000);  // drain COMMITs
    cl.crash_server();
    cl.run_for(500);  // downtime; anything in flight is dropped
    cl.restart_server();
  }
  EXPECT_TRUE(cl.pserver()->recovered_from_snapshot())
      << "with snapshot_every=3 the later recoveries must use the snapshot";

  bool completed = false;
  const ustor::Value v = cl.read(1, 2, &completed);
  ASSERT_TRUE(completed);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "peer-2");
  EXPECT_FALSE(cl.any_failed());
}

// --- Shard-level kill/restart ---------------------------------------------

std::string key_on_shard(const shard::ShardedCluster& sc, std::size_t shard) {
  for (int k = 0;; ++k) {
    const std::string key = "skey-" + std::to_string(k);
    if (sc.router().shard_of(key) == shard) return key;
  }
}

TEST(CrashRecovery, ShardKillRestartDeterministic) {
  TempDirFixture dir("shard_det");
  shard::ShardedClusterConfig cfg;
  cfg.shards = 2;
  cfg.seed = 19;
  cfg.durability_root = dir.path;
  cfg.shard_template.n = 2;
  cfg.shard_template.durability.snapshot_every = 4;
  cfg.shard_template.faust.dummy_read_period = 0;
  cfg.shard_template.faust.probe_check_period = 0;
  shard::ShardedCluster sc(cfg);
  ASSERT_TRUE(sc.durable());
  shard::ShardedKvClient kv1(sc, 1);

  const std::string k0 = key_on_shard(sc, 0);
  const std::string k1 = key_on_shard(sc, 1);

  bool done = false;
  kv1.put(k0, "on-0", [&](Timestamp) { done = true; });
  ASSERT_TRUE(sc.drive(done));
  done = false;
  kv1.put(k1, "on-1", [&](Timestamp) { done = true; });
  ASSERT_TRUE(sc.drive(done));

  // Kill shard 0 with a put to it in flight; restart after a downtime.
  done = false;
  kv1.put(k0, "across-crash", [&](Timestamp) { done = true; });
  sc.kill_shard(0);
  EXPECT_FALSE(sc.shard_up(0));
  sc.shard_exec(0).after(3'000, [&] { sc.shard(0).restart_server(); });
  ASSERT_TRUE(sc.drive(done, 4'000'000)) << "put must ride through the restart";
  EXPECT_TRUE(sc.shard_up(0));

  // The healthy shard was untouched; the restarted one serves its keys.
  done = false;
  shard::ShardedListResult lr;
  kv1.list([&](const shard::ShardedListResult& r) {
    lr = r;
    done = true;
  });
  ASSERT_TRUE(sc.drive(done));
  EXPECT_TRUE(lr.complete);
  ASSERT_TRUE(lr.entries.contains(k0));
  EXPECT_EQ(lr.entries.at(k0).value, "across-crash");
  ASSERT_TRUE(lr.entries.contains(k1));
  EXPECT_EQ(lr.entries.at(k1).value, "on-1");
  EXPECT_FALSE(sc.any_failed());
}

TEST(CrashRecovery, ShardKillRestartThreadedSmoke) {
  TempDirFixture dir("shard_thr");
  shard::ShardedClusterConfig cfg;
  cfg.shards = 2;
  cfg.seed = 29;
  cfg.mode = shard::ExecMode::kThreaded;
  cfg.durability_root = dir.path;
  cfg.shard_template.n = 2;
  cfg.shard_template.durability.snapshot_every = 4;
  cfg.shard_template.faust.dummy_read_period = 0;
  cfg.shard_template.faust.probe_check_period = 0;
  shard::ShardedCluster sc(cfg);
  shard::ShardedKvClient kv1(sc, 1);

  const std::string k0 = key_on_shard(sc, 0);
  std::atomic<bool> done{false};
  kv1.put(k0, "before", [&](Timestamp) { done.store(true, std::memory_order_release); });
  ASSERT_TRUE(sc.await(done));

  // Quiescent kill + immediate restart, both through the cross-thread
  // post_sync path.
  sc.kill_shard(0);
  sc.restart_shard(0);

  done.store(false);
  kv1.put(k0, "after-restart",
          [&](Timestamp) { done.store(true, std::memory_order_release); });
  ASSERT_TRUE(sc.await(done));

  done.store(false);
  shard::ShardedGetResult got;
  kv1.get(k0, [&](const shard::ShardedGetResult& r) {
    got = r;
    done.store(true, std::memory_order_release);
  });
  ASSERT_TRUE(sc.await(done));
  ASSERT_TRUE(got.entry.has_value());
  EXPECT_EQ(got.entry->value, "after-restart");
  EXPECT_FALSE(got.shard_failed);
  sc.stop();
  EXPECT_FALSE(sc.any_failed());
}

}  // namespace
}  // namespace faust
