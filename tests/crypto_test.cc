// Crypto substrate tests: SHA-256 against FIPS 180-4 vectors, HMAC-SHA256
// against RFC 4231 vectors, and the client signature schemes.
#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"

namespace faust::crypto {
namespace {

std::string sha_hex(BytesView data) {
  return hex_encode(hash_to_bytes(Sha256::digest(data)));
}

TEST(Sha256, FipsVectorEmpty) {
  EXPECT_EQ(sha_hex(to_bytes("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, FipsVectorAbc) {
  EXPECT_EQ(sha_hex(to_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, FipsVectorTwoBlocks) {
  EXPECT_EQ(sha_hex(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, FipsVectorMillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(hash_to_bytes(h.finish())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog, twice over");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(BytesView(data.data(), split));
    h.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), Sha256::digest(data)) << "split at " << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must all be distinct
  // and stable.
  std::set<std::string> digests;
  for (std::size_t len : {0u, 1u, 54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    digests.insert(sha_hex(Bytes(len, 0x5a)));
  }
  EXPECT_EQ(digests.size(), 12u);
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = to_bytes("Hi There");
  EXPECT_EQ(hex_encode(hash_to_bytes(hmac_sha256(key, data))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(hex_encode(hash_to_bytes(hmac_sha256(key, data))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_encode(hash_to_bytes(hmac_sha256(key, data))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);  // longer than the block size: hashed first
  const Bytes data = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hex_encode(hash_to_bytes(hmac_sha256(key, data))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Signatures, SignVerifyRoundtrip) {
  const auto scheme = make_hmac_scheme(3);
  const Bytes msg = to_bytes("payload");
  for (ClientId c = 1; c <= 3; ++c) {
    const Bytes sig = scheme->sign(c, msg);
    EXPECT_EQ(sig.size(), scheme->signature_size());
    EXPECT_TRUE(scheme->verify(c, msg, sig));
  }
}

TEST(Signatures, WrongSignerRejected) {
  const auto scheme = make_hmac_scheme(3);
  const Bytes msg = to_bytes("payload");
  const Bytes sig = scheme->sign(1, msg);
  EXPECT_FALSE(scheme->verify(2, msg, sig));
  EXPECT_FALSE(scheme->verify(3, msg, sig));
}

TEST(Signatures, TamperedMessageRejected) {
  const auto scheme = make_hmac_scheme(2);
  const Bytes sig = scheme->sign(1, to_bytes("payload"));
  EXPECT_FALSE(scheme->verify(1, to_bytes("payloae"), sig));
  EXPECT_FALSE(scheme->verify(1, to_bytes("payload "), sig));
}

TEST(Signatures, TamperedSignatureRejected) {
  const auto scheme = make_hmac_scheme(2);
  const Bytes msg = to_bytes("payload");
  Bytes sig = scheme->sign(1, msg);
  sig[0] ^= 1;
  EXPECT_FALSE(scheme->verify(1, msg, sig));
  sig[0] ^= 1;
  sig.pop_back();
  EXPECT_FALSE(scheme->verify(1, msg, sig));
}

TEST(Signatures, OutOfRangeSignerRejectedByVerify) {
  const auto scheme = make_hmac_scheme(2);
  EXPECT_FALSE(scheme->verify(0, to_bytes("m"), to_bytes("s")));
  EXPECT_FALSE(scheme->verify(3, to_bytes("m"), to_bytes("s")));
}

TEST(Signatures, SchemesWithDifferentSeedsAreIncompatible) {
  const auto a = make_hmac_scheme(2, 1);
  const auto b = make_hmac_scheme(2, 2);
  const Bytes msg = to_bytes("m");
  EXPECT_FALSE(b->verify(1, msg, a->sign(1, msg)));
}

TEST(Signatures, NullSchemeAcceptsEverything) {
  NullSignatureScheme null;
  EXPECT_TRUE(null.verify(1, to_bytes("m"), to_bytes("anything")));
  EXPECT_EQ(null.sign(1, to_bytes("m")).size(), 0u);
  EXPECT_EQ(null.signature_size(), 0u);
}

}  // namespace
}  // namespace faust::crypto
