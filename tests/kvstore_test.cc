// Tests for the key-value layer over FAUST registers, driven through the
// unified faust::api::Store facade (the kv::KvClient engine underneath is
// additionally pinned by the differential tests, which replay against it
// directly as the oracle).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/forking_server.h"
#include "api/store.h"
#include "faust/cluster.h"
#include "kvstore/kv_client.h"

namespace faust::kv {
namespace {

struct KvFixture : ::testing::Test {
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<api::Store>> stores;

  void SetUp() override {
    cfg.n = 3;
    cfg.seed = 55;
    cfg.faust.dummy_read_period = 0;  // keep op streams deterministic
    cfg.faust.probe_check_period = 0;
    cluster = std::make_unique<Cluster>(cfg);
    for (ClientId i = 1; i <= cfg.n; ++i) {
      stores.push_back(api::open_store(*cluster, i));
    }
  }

  api::Store& store(ClientId i) { return *stores[static_cast<std::size_t>(i - 1)]; }

  api::PutResult put(ClientId i, const std::string& k, const std::string& v) {
    return store(i).put(k, v).settle();
  }

  api::GetResult get(ClientId i, const std::string& k) {
    return store(i).get(k).settle();
  }

  api::ListResult list(ClientId i) { return store(i).list().settle(); }

  api::PutResult erase(ClientId i, const std::string& k) {
    return store(i).erase(k).settle();
  }
};

TEST_F(KvFixture, PutGetAcrossClients) {
  const api::PutResult p = put(1, "title", "FAUST");
  EXPECT_GT(p.ts, 0u);
  EXPECT_FALSE(p.failed);
  const api::GetResult e = get(2, "title");
  ASSERT_TRUE(e.entry.has_value());
  EXPECT_EQ(e.entry->value, "FAUST");
  EXPECT_EQ(e.entry->writer, 1);
  EXPECT_GT(e.read_ts, 0u) << "single-deployment gets report their observing reads too";
  EXPECT_FALSE(e.failed);
}

TEST_F(KvFixture, MissingKeyIsNullopt) {
  EXPECT_FALSE(get(1, "nothing").entry.has_value());
  ASSERT_GT(put(2, "a", "1").ts, 0u);
  EXPECT_FALSE(get(1, "b").entry.has_value());
}

TEST_F(KvFixture, OwnOverwriteWins) {
  ASSERT_GT(put(1, "k", "v1").ts, 0u);
  ASSERT_GT(put(1, "k", "v2").ts, 0u);
  const api::GetResult e = get(3, "k");
  ASSERT_TRUE(e.entry.has_value());
  EXPECT_EQ(e.entry->value, "v2");
  EXPECT_EQ(e.entry->seq, 2u);
}

TEST_F(KvFixture, CrossWriterConflictResolvedDeterministically) {
  // Same key written by two clients; winner = larger (seq, writer).
  ASSERT_GT(put(1, "k", "from-1").ts, 0u);  // seq 1, writer 1
  ASSERT_GT(put(2, "k", "from-2").ts, 0u);  // seq 1, writer 2 -> wins on writer id
  for (ClientId reader = 1; reader <= 3; ++reader) {
    const api::GetResult e = get(reader, "k");
    ASSERT_TRUE(e.entry.has_value());
    EXPECT_EQ(e.entry->value, "from-2") << "reader " << reader;
    EXPECT_EQ(e.entry->writer, 2);
  }
  // Client 1 writes again: seq 2 beats seq 1 regardless of writer id.
  ASSERT_GT(put(1, "k", "from-1-again").ts, 0u);
  const api::GetResult e = get(3, "k");
  EXPECT_EQ(e.entry->value, "from-1-again");
}

TEST_F(KvFixture, EraseRemovesOwnEntryOnly) {
  ASSERT_GT(put(1, "k", "mine").ts, 0u);
  ASSERT_GT(put(2, "k", "theirs").ts, 0u);
  ASSERT_GT(erase(2, "k").ts, 0u);
  const api::GetResult e = get(3, "k");
  ASSERT_TRUE(e.entry.has_value()) << "client 1's entry must survive";
  EXPECT_EQ(e.entry->value, "mine");
  ASSERT_GT(erase(1, "k").ts, 0u);
  EXPECT_FALSE(get(3, "k").entry.has_value());
}

TEST_F(KvFixture, EraseOfAbsentKeyIssuesNoRegisterWrite) {
  // The no-op-publish satellite: erasing a key the caller never wrote
  // must not re-sign and republish the unchanged partition.
  ASSERT_GT(put(1, "present", "v").ts, 0u);
  const std::uint64_t msgs_before = cluster->net().total().messages;
  const std::uint64_t sched_before = cluster->sched().executed();

  const api::PutResult r = erase(1, "never-written");
  EXPECT_EQ(r.ts, 0u) << "no publication happened, so there is no write timestamp";
  EXPECT_FALSE(r.failed) << "a no-op erase is a success, not a failure";

  EXPECT_EQ(cluster->net().total().messages, msgs_before)
      << "no-op erase must not put a register write (or anything else) on the wire";
  EXPECT_EQ(cluster->sched().executed(), sched_before)
      << "the op completes inline, without scheduling protocol events";

  // And the sequence counter did not advance: the next put's entry gets
  // the seq right after the first put's.
  ASSERT_GT(put(1, "present", "v2").ts, 0u);
  EXPECT_EQ(get(2, "present").entry->seq, 2u);
}

TEST_F(KvFixture, ListMergesAllPartitions) {
  ASSERT_GT(put(1, "a", "1").ts, 0u);
  ASSERT_GT(put(2, "b", "2").ts, 0u);
  ASSERT_GT(put(3, "c", "3").ts, 0u);
  const api::ListResult m = list(1);
  EXPECT_TRUE(m.complete);
  ASSERT_EQ(m.entries.size(), 3u);
  EXPECT_EQ(m.entries.at("a").value, "1");
  EXPECT_EQ(m.entries.at("b").value, "2");
  EXPECT_EQ(m.entries.at("c").value, "3");
  EXPECT_EQ(m.entries.at("c").writer, 3);
}

TEST_F(KvFixture, ManyKeysRoundtrip) {
  for (int k = 0; k < 20; ++k) {
    ASSERT_GT(put((k % 3) + 1, "key" + std::to_string(k), "val" + std::to_string(k)).ts, 0u);
  }
  const api::ListResult m = list(2);
  ASSERT_EQ(m.entries.size(), 20u);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(m.entries.at("key" + std::to_string(k)).value, "val" + std::to_string(k));
  }
}

TEST(KvCodec, MapRoundtripAndMalformedRejected) {
  std::map<std::string, std::pair<std::string, std::uint64_t>> m;
  m["alpha"] = {"1", 7};
  m["beta"] = {"two", 9};
  const Bytes enc = encode_map(m);
  const auto back = decode_map(enc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);

  Bytes truncated(enc.begin(), enc.end() - 3);
  EXPECT_FALSE(decode_map(truncated).has_value());
  Bytes padded = enc;
  padded.push_back(0);
  EXPECT_FALSE(decode_map(padded).has_value());
  EXPECT_TRUE(decode_map(encode_map({})).has_value());
}

TEST(KvUnderAttack, ForkDetectionFlowsThroughTheStoreFacade) {
  // The store inherits fail-awareness: a forked view is detected at the
  // FAUST layer and the application learns about it via on_event.
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 66;
  cfg.with_server = false;
  cfg.faust.dummy_read_period = 400;
  cfg.faust.probe_interval = 3'000;
  cfg.faust.probe_check_period = 700;
  Cluster cluster(cfg);
  adversary::ForkingServer server(cfg.n, cluster.net());
  auto kv1 = api::open_store(cluster, 1);
  auto kv2 = api::open_store(cluster, 2);

  bool fail_event = false;
  kv1->on_event([&](const api::Event& e) {
    if (e.kind == api::Event::Kind::kShardFailed) {
      EXPECT_EQ(e.shard, 0u);
      fail_event = true;
    }
  });

  ASSERT_GT(kv1->put("secret", "v1").settle().ts, 0u);
  server.isolate(2);  // fork the second client away
  ASSERT_GT(kv2->put("secret", "forked").settle().ts, 0u);

  cluster.run_for(300'000);
  EXPECT_TRUE(cluster.all_failed()) << "clients learn their provider forked them";
  EXPECT_TRUE(fail_event) << "the failure surfaced through the unified event hook";
  EXPECT_TRUE(kv1->failed(0));
  EXPECT_TRUE(kv1->any_failed());
}

}  // namespace
}  // namespace faust::kv
