// Tests for the key-value layer over FAUST registers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/forking_server.h"
#include "faust/cluster.h"
#include "kvstore/kv_client.h"

namespace faust::kv {
namespace {

struct KvFixture : ::testing::Test {
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<KvClient>> kv;

  void SetUp() override {
    cfg.n = 3;
    cfg.seed = 55;
    cfg.faust.dummy_read_period = 0;  // keep op streams deterministic
    cfg.faust.probe_check_period = 0;
    cluster = std::make_unique<Cluster>(cfg);
    for (ClientId i = 1; i <= cfg.n; ++i) {
      kv.push_back(std::make_unique<KvClient>(cluster->client(i)));
    }
  }

  KvClient& store(ClientId i) { return *kv[static_cast<std::size_t>(i - 1)]; }

  bool put(ClientId i, const std::string& k, const std::string& v) {
    bool done = false;
    store(i).put(k, v, [&](Timestamp) { done = true; });
    drive(done);
    return done;
  }

  std::optional<KvEntry> get(ClientId i, const std::string& k) {
    bool done = false;
    std::optional<KvEntry> out;
    store(i).get(k, [&](std::optional<KvEntry> e) {
      out = std::move(e);
      done = true;
    });
    drive(done);
    return out;
  }

  std::map<std::string, KvEntry> list(ClientId i) {
    bool done = false;
    std::map<std::string, KvEntry> out;
    store(i).list([&](const std::map<std::string, KvEntry>& m) {
      out = m;
      done = true;
    });
    drive(done);
    return out;
  }

  bool erase(ClientId i, const std::string& k) {
    bool done = false;
    store(i).erase(k, [&](Timestamp) { done = true; });
    drive(done);
    return done;
  }

  void drive(bool& done) {
    std::size_t steps = 0;
    while (!done && steps < 1'000'000 && cluster->sched().step()) ++steps;
  }
};

TEST_F(KvFixture, PutGetAcrossClients) {
  ASSERT_TRUE(put(1, "title", "FAUST"));
  const auto e = get(2, "title");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->value, "FAUST");
  EXPECT_EQ(e->writer, 1);
}

TEST_F(KvFixture, MissingKeyIsNullopt) {
  EXPECT_FALSE(get(1, "nothing").has_value());
  ASSERT_TRUE(put(2, "a", "1"));
  EXPECT_FALSE(get(1, "b").has_value());
}

TEST_F(KvFixture, OwnOverwriteWins) {
  ASSERT_TRUE(put(1, "k", "v1"));
  ASSERT_TRUE(put(1, "k", "v2"));
  const auto e = get(3, "k");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->value, "v2");
  EXPECT_EQ(e->seq, 2u);
}

TEST_F(KvFixture, CrossWriterConflictResolvedDeterministically) {
  // Same key written by two clients; winner = larger (seq, writer).
  ASSERT_TRUE(put(1, "k", "from-1"));  // seq 1, writer 1
  ASSERT_TRUE(put(2, "k", "from-2"));  // seq 1, writer 2 -> wins on writer id
  for (ClientId reader = 1; reader <= 3; ++reader) {
    const auto e = get(reader, "k");
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->value, "from-2") << "reader " << reader;
    EXPECT_EQ(e->writer, 2);
  }
  // Client 1 writes again: seq 2 beats seq 1 regardless of writer id.
  ASSERT_TRUE(put(1, "k", "from-1-again"));
  const auto e = get(3, "k");
  EXPECT_EQ(e->value, "from-1-again");
}

TEST_F(KvFixture, EraseRemovesOwnEntryOnly) {
  ASSERT_TRUE(put(1, "k", "mine"));
  ASSERT_TRUE(put(2, "k", "theirs"));
  ASSERT_TRUE(erase(2, "k"));
  const auto e = get(3, "k");
  ASSERT_TRUE(e.has_value()) << "client 1's entry must survive";
  EXPECT_EQ(e->value, "mine");
  ASSERT_TRUE(erase(1, "k"));
  EXPECT_FALSE(get(3, "k").has_value());
}

TEST_F(KvFixture, ListMergesAllPartitions) {
  ASSERT_TRUE(put(1, "a", "1"));
  ASSERT_TRUE(put(2, "b", "2"));
  ASSERT_TRUE(put(3, "c", "3"));
  const auto m = list(1);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at("a").value, "1");
  EXPECT_EQ(m.at("b").value, "2");
  EXPECT_EQ(m.at("c").value, "3");
  EXPECT_EQ(m.at("c").writer, 3);
}

TEST_F(KvFixture, ManyKeysRoundtrip) {
  for (int k = 0; k < 20; ++k) {
    ASSERT_TRUE(put((k % 3) + 1, "key" + std::to_string(k), "val" + std::to_string(k)));
  }
  const auto m = list(2);
  ASSERT_EQ(m.size(), 20u);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(m.at("key" + std::to_string(k)).value, "val" + std::to_string(k));
  }
}

TEST(KvCodec, MapRoundtripAndMalformedRejected) {
  std::map<std::string, std::pair<std::string, std::uint64_t>> m;
  m["alpha"] = {"1", 7};
  m["beta"] = {"two", 9};
  const Bytes enc = encode_map(m);
  const auto back = decode_map(enc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);

  Bytes truncated(enc.begin(), enc.end() - 3);
  EXPECT_FALSE(decode_map(truncated).has_value());
  Bytes padded = enc;
  padded.push_back(0);
  EXPECT_FALSE(decode_map(padded).has_value());
  EXPECT_TRUE(decode_map(encode_map({})).has_value());
}

TEST(KvUnderAttack, ForkDetectionFlowsThroughTheKvLayer) {
  // The KV store inherits fail-awareness: a forked KV view is detected at
  // the FAUST layer and the application learns about it via on_fail.
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 66;
  cfg.with_server = false;
  cfg.faust.dummy_read_period = 400;
  cfg.faust.probe_interval = 3'000;
  cfg.faust.probe_check_period = 700;
  Cluster cluster(cfg);
  adversary::ForkingServer server(cfg.n, cluster.net());
  KvClient kv1(cluster.client(1));
  KvClient kv2(cluster.client(2));

  bool put_done = false;
  kv1.put("secret", "v1", [&](Timestamp) { put_done = true; });
  while (!put_done && cluster.sched().step()) {
  }
  ASSERT_TRUE(put_done);

  server.isolate(2);  // fork the second client away
  bool put2_done = false;
  kv2.put("secret", "forked", [&](Timestamp) { put2_done = true; });
  while (!put2_done && cluster.sched().step()) {
  }
  ASSERT_TRUE(put2_done);

  cluster.run_for(300'000);
  EXPECT_TRUE(cluster.all_failed()) << "KV clients learn their provider forked them";
}

}  // namespace
}  // namespace faust::kv
