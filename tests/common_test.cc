// Unit tests for src/common: bytes, hex, deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/hex.h"
#include "common/rng.h"

namespace faust {
namespace {

TEST(Bytes, AppendVariants) {
  Bytes b;
  append(b, std::string_view("ab"));
  append_byte(b, 0x01);
  append_u32(b, 0x04030201u);
  append_u64(b, 0x0807060504030201ull);
  ASSERT_EQ(b.size(), 2u + 1 + 4 + 8);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[2], 0x01);
  // Little-endian layout.
  EXPECT_EQ(b[3], 0x01);
  EXPECT_EQ(b[6], 0x04);
  EXPECT_EQ(b[7], 0x01);
  EXPECT_EQ(b[14], 0x08);
}

TEST(Bytes, ToBytesRoundtrip) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(to_string(b), "hello");
  EXPECT_TRUE(to_bytes("").empty());
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(constant_time_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(constant_time_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(constant_time_equal(to_bytes("abc"), to_bytes("abcd")));
  EXPECT_TRUE(constant_time_equal(to_bytes(""), to_bytes("")));
}

TEST(Hex, EncodeDecode) {
  const Bytes b{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(b), "0001abff");
  const auto back = hex_decode("0001abff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, b);
  EXPECT_EQ(hex_decode("0001ABFF"), b);  // upper case accepted
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());    // non-hex
  EXPECT_TRUE(hex_decode("").has_value());       // empty ok
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = r.next_below(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusive) {
  Rng r(9);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.next_in(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    lo_seen |= v == 3;
    hi_seen |= v == 6;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(5);
  Rng child = parent.fork();
  // The child stream is not a suffix/copy of the parent stream.
  Rng parent2(5);
  (void)parent2.next_u64();  // parent consumed one draw for the fork
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace faust
