// Network substrate tests: FIFO reliable channels, crash semantics,
// traffic accounting, and the offline mailbox's eventual delivery.
#include <gtest/gtest.h>

#include <vector>

#include "net/mailbox.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace faust::net {
namespace {

/// Test node recording every delivery.
class Sink : public Node {
 public:
  void on_message(NodeId from, BytesView msg) override {
    received.emplace_back(from, Bytes(msg.begin(), msg.end()));
  }
  std::vector<std::pair<NodeId, Bytes>> received;
};

struct NetFixture : ::testing::Test {
  sim::Scheduler sched;
  Rng rng{123};
  net::Network net{sched, Rng(123), DelayModel{1, 10}};
  Sink a, b, c;

  void SetUp() override {
    net.attach(1, a);
    net.attach(2, b);
    net.attach(3, c);
  }
};

TEST_F(NetFixture, DeliversWithPayloadAndSender) {
  net.send(1, 2, to_bytes("hello"));
  sched.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, 1);
  EXPECT_EQ(to_string(b.received[0].second), "hello");
}

TEST_F(NetFixture, FifoPerChannel) {
  for (int i = 0; i < 50; ++i) {
    Bytes m;
    append_u32(m, static_cast<std::uint32_t>(i));
    net.send(1, 2, m);
  }
  sched.run();
  ASSERT_EQ(b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(b.received[static_cast<std::size_t>(i)].second[0],
              static_cast<std::uint8_t>(i));
  }
}

TEST_F(NetFixture, IndependentChannelsMayReorder) {
  // Not an ordering requirement across channels — just assert both arrive.
  net.send(1, 3, to_bytes("x"));
  net.send(2, 3, to_bytes("y"));
  sched.run();
  EXPECT_EQ(c.received.size(), 2u);
}

TEST_F(NetFixture, CrashedReceiverGetsNothing) {
  net.crash(2);
  net.send(1, 2, to_bytes("lost"));
  sched.run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetFixture, CrashedSenderSendsNothing) {
  net.crash(1);
  net.send(1, 2, to_bytes("lost"));
  sched.run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetFixture, CrashBetweenSendAndDeliveryDropsInFlight) {
  net.send(1, 2, to_bytes("in-flight"));
  net.crash(2);  // before the scheduler runs the delivery event
  sched.run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetFixture, StatsCountMessagesAndBytes) {
  net.send(1, 2, to_bytes("12345"));
  net.send(1, 2, to_bytes("123"));
  sched.run();
  EXPECT_EQ(net.total().messages, 2u);
  EXPECT_EQ(net.total().bytes, 8u);
  EXPECT_EQ(net.channel(1, 2).messages, 2u);
  EXPECT_EQ(net.channel(2, 1).messages, 0u);
}

TEST_F(NetFixture, DelayWithinModelBounds) {
  net.send(1, 2, to_bytes("m"));
  const sim::Time t0 = sched.now();
  sched.run();
  EXPECT_GE(sched.now(), t0 + 1);
  EXPECT_LE(sched.now(), t0 + 10);
}

TEST(Mailbox, DeliversWhenOnline) {
  sim::Scheduler sched;
  Mailbox mail(sched, Rng(1), 5, 20);
  std::vector<std::pair<ClientId, std::string>> got;
  mail.register_client(2, [&](ClientId from, BytesView m) {
    got.emplace_back(from, to_string(m));
  });
  mail.post(1, 2, to_bytes("hi"));
  sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 1);
  EXPECT_EQ(got[0].second, "hi");
}

TEST(Mailbox, QueuesWhileOfflineAndFlushesOnReturn) {
  sim::Scheduler sched;
  Mailbox mail(sched, Rng(1), 5, 20);
  std::vector<std::string> got;
  mail.register_client(2, [&](ClientId, BytesView m) { got.push_back(to_string(m)); });
  mail.set_online(2, false);
  mail.post(1, 2, to_bytes("a"));
  mail.post(3, 2, to_bytes("b"));
  sched.run();
  EXPECT_TRUE(got.empty());  // nothing while offline
  mail.set_online(2, true);
  sched.run();
  ASSERT_EQ(got.size(), 2u);  // both eventually delivered
}

TEST(Mailbox, NeverLosesOnOfflineFlap) {
  sim::Scheduler sched;
  Mailbox mail(sched, Rng(1), 5, 20);
  int got = 0;
  mail.register_client(2, [&](ClientId, BytesView) { ++got; });
  mail.post(1, 2, to_bytes("m"));
  // Go offline before the delivery event fires: the letter requeues.
  mail.set_online(2, false);
  sched.run();
  EXPECT_EQ(got, 0);
  mail.set_online(2, true);
  sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Mailbox, SenderOfflineDoesNotMatter) {
  sim::Scheduler sched;
  Mailbox mail(sched, Rng(1), 5, 20);
  int got = 0;
  mail.register_client(2, [&](ClientId, BytesView) { ++got; });
  mail.register_client(1, [](ClientId, BytesView) {});
  mail.set_online(1, false);
  mail.post(1, 2, to_bytes("m"));  // posting works from offline senders
  sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Mailbox, PostedCounter) {
  sim::Scheduler sched;
  Mailbox mail(sched, Rng(1), 1, 1);
  mail.register_client(2, [](ClientId, BytesView) {});
  mail.post(1, 2, to_bytes("x"));
  mail.post(1, 2, to_bytes("y"));
  EXPECT_EQ(mail.posted(), 2u);
}

}  // namespace
}  // namespace faust::net
