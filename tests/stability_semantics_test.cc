// Definition 5, item 6 (stability-detection accuracy) — the paper's
// deepest semantic promise: if an operation is stable w.r.t. all clients,
// the prefix of the execution up to it is linearizable, NO MATTER what
// the server does afterwards. We mount a fork attack after a stable
// prefix and machine-check both halves of the claim: the stable prefix
// passes the linearizability checker while the full history fails it.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "adversary/forking_server.h"
#include "checker/history.h"
#include "checker/linearizability.h"
#include "faust/cluster.h"

namespace faust {
namespace {

using checker::OpRecord;

/// Ops of `history` that completed no later than `cutoff`.
std::vector<OpRecord> prefix_until(const std::vector<OpRecord>& history, sim::Time cutoff) {
  std::vector<OpRecord> out;
  for (const OpRecord& op : history) {
    if (op.complete() && op.responded <= cutoff) out.push_back(op);
  }
  return out;
}

TEST(StabilitySemantics, StablePrefixStaysLinearizableThroughAFork) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 1234;
  cfg.with_server = false;
  cfg.faust.dummy_read_period = 300;
  cfg.faust.probe_interval = 2'000;
  cfg.faust.probe_check_period = 500;
  Cluster cl(cfg);
  adversary::ForkingServer server(cfg.n, cl.net());

  // Phase 1 — honest service; the recorder captures user operations.
  const Timestamp t1 = cl.write(1, "stable-1");
  ASSERT_TRUE(cl.read(2, 1).has_value());
  cl.write(2, "stable-2");
  ASSERT_TRUE(cl.read(3, 2).has_value());
  const Timestamp t2 = cl.write(1, "stable-3");
  ASSERT_GT(t2, t1);

  // Let the background machinery make everything stable.
  cl.run_for(30'000);
  ASSERT_GE(cl.client(1).fully_stable_timestamp(), t2)
      << "phase-1 operations must be stable before the attack";
  const sim::Time stable_cutoff = cl.sched().now();
  const std::size_t stable_ops = cl.recorder().history().size();

  // Phase 2 — the provider forks C3 into a stale world and both sides
  // keep operating. C3's reads now return values that contradict real
  // time.
  server.split(3);
  cl.write(1, "post-fork-main");
  cl.run_for(50);  // real-time gap: the write strictly precedes the read
  const ustor::Value stale = cl.read(3, 1);  // C3 sees the pre-fork value
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(to_string(*stale), "stable-3") << "the fork serves stale data";
  cl.write(3, "post-fork-victim");

  const auto& full = cl.recorder().history();
  ASSERT_GT(full.size(), stable_ops);

  // The FULL history is not linearizable (C3's stale read skips a
  // completed write) ...
  EXPECT_FALSE(checker::check_linearizable(full).ok);

  // ... but the prefix up to the stability cut is, exactly as Def. 5.6
  // guarantees: what was stable before the attack can never be retracted.
  const auto prefix = prefix_until(full, stable_cutoff);
  EXPECT_EQ(prefix.size(), stable_ops);
  const auto res = checker::check_linearizable(prefix);
  EXPECT_TRUE(res.ok) << res.violation;

  // Epilogue: the attack is eventually detected everywhere.
  cl.run_for(300'000);
  EXPECT_TRUE(cl.all_failed());
}

TEST(StabilitySemantics, CutNeverRegresses) {
  // The stability cut is monotone per entry, across normal operation,
  // offline periods, server crash and detection.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 77;
  cfg.faust.probe_interval = 2'000;
  cfg.faust.probe_check_period = 400;
  Cluster cl(cfg);

  std::vector<FaustClient::StabilityCut> cuts;
  cl.client(1).on_stable = [&](const FaustClient::StabilityCut& w) { cuts.push_back(w); };

  cl.write(1, "a");
  cl.run_for(5'000);
  cl.client(3).go_offline();
  cl.write(1, "b");
  cl.run_for(5'000);
  cl.client(3).go_online();
  cl.write(1, "c");
  cl.run_for(10'000);
  cl.net().crash(kServerNode);
  cl.run_for(50'000);

  ASSERT_GE(cuts.size(), 2u);
  for (std::size_t k = 1; k < cuts.size(); ++k) {
    for (std::size_t j = 0; j < cuts[k].size(); ++j) {
      EXPECT_GE(cuts[k][j], cuts[k - 1][j]) << "notification " << k << " entry " << j;
    }
  }
  EXPECT_FALSE(cl.any_failed());
}

TEST(StabilitySemantics, StableImpliesCommonViewPairwise) {
  // Pairwise form of Def. 5.6: if C1's op is stable w.r.t. C2, then C2's
  // version provably covers it — check the raw versions.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 88;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cl(cfg);

  const Timestamp t = cl.write(1, "x");
  ASSERT_TRUE(cl.read(2, 1).has_value());
  cl.run_for(200);
  cl.read(1, 2);  // C1 learns C2's version

  const auto& w = cl.client(1).stability_cut();
  ASSERT_GE(w[1], t) << "stable w.r.t. C2";
  // C2's engine version must dominate C1's op position.
  EXPECT_GE(cl.client(2).engine().version().v(1), t);
}

}  // namespace
}  // namespace faust
