// sock::SocketTransport unit tests (DESIGN.md D9): routing and learned
// return routes over real TCP and UDS sockets, connection pooling,
// FIFO per (from,to) — including across a peer restart — large frames,
// the payload-counter mirror + framing-overhead accounting, bounded
// send queues, and crash fencing. Everything runs on loopback with
// ephemeral ports; each test owns its runtime and transports.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "rt/threaded_runtime.h"
#include "sock/frame.h"
#include "sock/socket_transport.h"

namespace faust::sock {
namespace {

constexpr auto kWait = std::chrono::seconds(10);

/// Records deliveries; wait_count blocks until n arrived (or times out).
class WaitNode : public net::Node {
 public:
  void on_message(NodeId from, BytesView msg) override {
    std::lock_guard lock(mu_);
    got_.emplace_back(from, Bytes(msg.begin(), msg.end()));
    cv_.notify_all();
  }

  bool wait_count(std::size_t n) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, kWait, [&] { return got_.size() >= n; });
  }

  std::vector<std::pair<NodeId, Bytes>> got() {
    std::lock_guard lock(mu_);
    return got_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::pair<NodeId, Bytes>> got_;
};

/// Echoes every message straight back to its sender over the transport
/// it is attached to (exercising the learned return route: the server
/// side never has the client in its registry).
class EchoNode : public net::Node {
 public:
  EchoNode(net::Transport& t, NodeId self) : t_(t), self_(self) {}
  void on_message(NodeId from, BytesView msg) override {
    t_.send(self_, from, Bytes(msg.begin(), msg.end()));
  }

 private:
  net::Transport& t_;
  const NodeId self_;
};

struct UdsDir {
  std::string path;
  UdsDir() {
    path = std::string(::testing::TempDir()) + "/faust_sock_" + std::to_string(::getpid()) +
           "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::create_directories(path);
  }
  ~UdsDir() { std::filesystem::remove_all(path); }
};

std::unique_ptr<rt::ThreadedRuntime> make_runtime() {
  rt::ThreadedRuntimeConfig rc;
  rc.tick = std::chrono::nanoseconds(1000);
  return std::make_unique<rt::ThreadedRuntime>(rc);
}

Bytes tagged(std::uint8_t tag, std::size_t len) {
  Bytes b(len, 0);
  if (!b.empty()) b[0] = tag;
  for (std::size_t i = 1; i < len; ++i) b[i] = static_cast<std::uint8_t>(i);
  return b;
}

void roundtrip_fifo(const Endpoint& listen) {
  auto rt = make_runtime();
  SocketTransportConfig server_cfg;
  server_cfg.listen = listen;
  SocketTransport server(*rt, server_cfg);
  EchoNode echo(server, 1);
  server.attach(1, echo);

  SocketTransportConfig client_cfg;
  client_cfg.peers[1] = server.bound_endpoint();
  SocketTransport client(*rt, client_cfg);
  WaitNode sink;
  client.attach(2, sink);

  constexpr int kMsgs = 200;
  for (int i = 0; i < kMsgs; ++i) {
    Bytes msg = tagged(3, 16);
    msg[1] = static_cast<std::uint8_t>(i);
    msg[2] = static_cast<std::uint8_t>(i >> 8);
    client.send(2, 1, std::move(msg));
  }
  ASSERT_TRUE(sink.wait_count(kMsgs));
  const auto got = sink.got();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].first, 1) << "echo sender id";
    // FIFO per (from,to) end to end: client→server order, echo order,
    // server→client order all preserved over one pooled connection.
    EXPECT_EQ(got[static_cast<std::size_t>(i)].second[1], static_cast<std::uint8_t>(i));
    EXPECT_EQ(got[static_cast<std::size_t>(i)].second[2], static_cast<std::uint8_t>(i >> 8));
  }
  client.detach(2);
  server.detach(1);
}

TEST(SocketTransport, TcpRoundtripFifoAndLearnedReturnRoute) {
  roundtrip_fifo(Endpoint::tcp("127.0.0.1", 0));
}

TEST(SocketTransport, UdsRoundtripFifoAndLearnedReturnRoute) {
  UdsDir dir;
  roundtrip_fifo(Endpoint::uds(dir.path + "/listen.sock"));
}

TEST(SocketTransport, NodesOnOneEndpointPoolOneConnection) {
  auto rt = make_runtime();
  SocketTransportConfig server_cfg;
  server_cfg.listen = Endpoint::tcp("127.0.0.1", 0);
  SocketTransport server(*rt, server_cfg);
  WaitNode a, b;
  server.attach(1, a);
  server.attach(1'000'000, b);  // a shard's server + its cache node

  SocketTransportConfig client_cfg;
  client_cfg.peers[1] = server.bound_endpoint();
  client_cfg.peers[1'000'000] = server.bound_endpoint();
  SocketTransport client(*rt, client_cfg);

  for (int i = 0; i < 10; ++i) {
    client.send(2, 1, tagged(1, 8));
    client.send(2, 1'000'000, tagged(6, 8));
  }
  ASSERT_TRUE(a.wait_count(10));
  ASSERT_TRUE(b.wait_count(10));
  EXPECT_EQ(server.wire().accepts, 1u) << "both NodeIds share one stream";
  EXPECT_EQ(client.wire().connects, 1u);
  server.detach(1);
  server.detach(1'000'000);
}

TEST(SocketTransport, MegabyteFramesSurviveBothDirections) {
  auto rt = make_runtime();
  SocketTransportConfig server_cfg;
  server_cfg.listen = Endpoint::tcp("127.0.0.1", 0);
  SocketTransport server(*rt, server_cfg);
  EchoNode echo(server, 1);
  server.attach(1, echo);

  SocketTransportConfig client_cfg;
  client_cfg.peers[1] = server.bound_endpoint();
  SocketTransport client(*rt, client_cfg);
  WaitNode sink;
  client.attach(2, sink);

  Bytes big(1u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 13);
  client.send(2, 1, big);
  ASSERT_TRUE(sink.wait_count(1));
  EXPECT_EQ(sink.got()[0].second, big);
  client.detach(2);
  server.detach(1);
}

TEST(SocketTransport, CountersMirrorNetworkAndReportFramingOverhead) {
  auto rt = make_runtime();
  SocketTransportConfig server_cfg;
  server_cfg.listen = Endpoint::tcp("127.0.0.1", 0);
  SocketTransport server(*rt, server_cfg);
  WaitNode sink;
  server.attach(1, sink);

  SocketTransportConfig client_cfg;
  client_cfg.peers[1] = server.bound_endpoint();
  SocketTransport client(*rt, client_cfg);

  // 5 SUBMITs (tag 1) of 100 bytes, 3 CACHE_GETs (tag 6) of 40 bytes.
  for (int i = 0; i < 5; ++i) client.send(2, 1, tagged(1, 100));
  for (int i = 0; i < 3; ++i) client.send(3, 1, tagged(6, 40));
  ASSERT_TRUE(sink.wait_count(8));

  // Payload mirror: counted at send(), tagged by leading byte — the same
  // accounting net::Network does, so bytes/op comparisons carry over.
  EXPECT_EQ(client.total().messages, 8u);
  EXPECT_EQ(client.total().bytes, 5u * 100 + 3u * 40);
  EXPECT_EQ(client.total_for(1).messages, 5u);
  EXPECT_EQ(client.total_for(1).bytes, 500u);
  EXPECT_EQ(client.total_for(6).bytes, 120u);
  EXPECT_EQ(client.channel(2, 1).messages, 5u);
  EXPECT_EQ(client.channel_for(3, 1, 6).messages, 3u);
  EXPECT_EQ(client.channel_for(3, 1, 1).messages, 0u);

  // Socket-level accounting identity: everything written is payload plus
  // framing (DATA headers + the HELLO frame), with the framing share
  // reported separately for PERF.md. The server may deliver before the
  // client's loop thread flushes its write counters, so wait for them.
  const std::uint64_t expect_out =
      client.total().bytes + 8u * kDataFrameOverhead + kHelloFrameBytes;
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (client.wire().socket_bytes_out < expect_out &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const WireStats w = client.wire();
  EXPECT_EQ(w.socket_bytes_out, client.total().bytes + w.framing_bytes_out);
  EXPECT_EQ(w.framing_bytes_out, 8u * kDataFrameOverhead + kHelloFrameBytes);
  server.detach(1);
}

TEST(SocketTransport, FenceDropsQueuedAndFutureTrafficUntilUnfence) {
  auto rt = make_runtime();
  SocketTransportConfig server_cfg;
  server_cfg.listen = Endpoint::tcp("127.0.0.1", 0);
  SocketTransport server(*rt, server_cfg);
  WaitNode sink;
  server.attach(1, sink);

  SocketTransportConfig client_cfg;
  client_cfg.peers[1] = server.bound_endpoint();
  SocketTransport client(*rt, client_cfg);

  client.send(2, 1, tagged(1, 8));
  ASSERT_TRUE(sink.wait_count(1));

  client.fence(1);
  EXPECT_TRUE(client.fenced(1));
  for (int i = 0; i < 5; ++i) client.send(2, 1, tagged(1, 8));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(sink.got().size(), 1u) << "fenced sends must not arrive";
  EXPECT_GE(client.wire().fenced_drops, 5u);

  client.unfence(1);
  EXPECT_FALSE(client.fenced(1));
  client.send(2, 1, tagged(1, 8));
  ASSERT_TRUE(sink.wait_count(2));
  server.detach(1);
}

TEST(SocketTransport, FifoHoldsAcrossPeerRestartWithReconnect) {
  auto rt = make_runtime();
  UdsDir dir;
  const Endpoint ep = Endpoint::uds(dir.path + "/server.sock");

  SocketTransportConfig client_cfg;
  client_cfg.peers[1] = ep;
  client_cfg.backoff_min = std::chrono::milliseconds(1);
  SocketTransport client(*rt, client_cfg);

  WaitNode sink1;
  {
    SocketTransportConfig s1;
    s1.listen = ep;
    s1.incarnation = 1;
    SocketTransport server1(*rt, s1);
    server1.attach(1, sink1);
    for (int i = 0; i < 5; ++i) {
      Bytes m = tagged(1, 8);
      m[1] = static_cast<std::uint8_t>(i);
      client.send(2, 1, std::move(m));
    }
    ASSERT_TRUE(sink1.wait_count(5));
    server1.detach(1);
  }  // server down; its rx state died with it

  // Wait until the client's loop has *observed* the peer's death. A send
  // issued before that races into the dying conn's txq and is discarded
  // as a down_drop (designed loss — the protocol layer resubmits), which
  // is not the parked-then-flushed path this test pins.
  {
    const auto deadline = std::chrono::steady_clock::now() + kWait;
    while (client.wire().disconnects == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(client.wire().disconnects, 1u);
  }

  // Sent while the peer is down: parked in the bounded pending queue,
  // flushed in order once the redial (exponential backoff) succeeds.
  for (int i = 5; i < 20; ++i) {
    Bytes m = tagged(1, 8);
    m[1] = static_cast<std::uint8_t>(i);
    client.send(2, 1, std::move(m));
  }

  WaitNode sink2;
  SocketTransportConfig s2;
  s2.listen = ep;
  s2.incarnation = 2;  // the restarted era announces itself
  SocketTransport server2(*rt, s2);
  server2.attach(1, sink2);

  ASSERT_TRUE(sink2.wait_count(15));
  const auto got = sink2.got();
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].second[1], static_cast<std::uint8_t>(i + 5))
        << "FIFO must hold across the reconnect";
  }
  EXPECT_GE(client.wire().reconnects, 1u);
  server2.detach(1);
}

TEST(SocketTransport, SendQueueIsBoundedWhilePeerUnreachable) {
  auto rt = make_runtime();
  SocketTransportConfig cfg;
  // Nothing will ever listen here (ENOENT on every dial).
  cfg.peers[1] = Endpoint::uds("/nonexistent-faust-dir/never.sock");
  cfg.send_queue_bytes = 4096;
  cfg.backoff_min = std::chrono::milliseconds(1);
  SocketTransport t(*rt, cfg);

  for (int i = 0; i < 100; ++i) t.send(2, 1, Bytes(1024, 0x42));
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (t.wire().overflow_drops == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const WireStats w = t.wire();
  EXPECT_GT(w.overflow_drops, 0u) << "a down peer must cost drops, not memory";
  EXPECT_GT(w.connect_failures, 0u);
}

TEST(SocketTransport, ZombieEraConnectionIsClosedBeforeDelivery) {
  auto rt = make_runtime();
  UdsDir dir;
  const Endpoint ep = Endpoint::uds(dir.path + "/server.sock");

  SocketTransportConfig client_cfg;
  client_cfg.peers[1] = ep;
  client_cfg.backoff_min = std::chrono::milliseconds(1);
  SocketTransport client(*rt, client_cfg);

  {
    SocketTransportConfig s1;
    s1.listen = ep;
    s1.incarnation = 5;
    SocketTransport server1(*rt, s1);
    WaitNode sink;
    server1.attach(1, sink);
    client.send(2, 1, tagged(1, 8));
    ASSERT_TRUE(sink.wait_count(1));  // client has seen incarnation 5
    server1.detach(1);
  }

  // An impostor announcing an OLDER era on the same endpoint: the client
  // must close the connection on its HELLO — DATA from a dead era can
  // never be delivered.
  SocketTransportConfig s2;
  s2.listen = ep;
  s2.incarnation = 3;
  SocketTransport zombie(*rt, s2);
  WaitNode zombie_sink;
  zombie.attach(1, zombie_sink);

  client.send(2, 1, tagged(1, 8));
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (client.wire().stale_era_drops == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(client.wire().stale_era_drops, 1u);
  zombie.detach(1);
}

TEST(SocketTransport, LocalDeliveryNeedsNoSocket) {
  auto rt = make_runtime();
  SocketTransportConfig cfg;  // no listen, no peers
  SocketTransport t(*rt, cfg);
  WaitNode a;
  t.attach(7, a);
  t.send(8, 7, tagged(2, 32));
  ASSERT_TRUE(a.wait_count(1));
  EXPECT_EQ(a.got()[0].first, 8);
  const WireStats w = t.wire();
  EXPECT_EQ(w.socket_bytes_out, 0u);
  EXPECT_EQ(t.total().messages, 1u) << "local sends still count in the mirror";
  t.detach(7);
}

TEST(SocketTransport, UnroutableSendsAreCountedNotFatal) {
  auto rt = make_runtime();
  SocketTransportConfig cfg;
  SocketTransport t(*rt, cfg);
  t.send(1, 99, tagged(1, 8));  // nobody local, nobody in the registry
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (t.wire().unroutable_drops == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(t.wire().unroutable_drops, 1u);
}

// --- D10 redial backoff -------------------------------------------------------

TEST(SocketTransport, BackoffDecorrelatedJitterStaysInEnvelope) {
  // next_backoff is the whole redial policy: the first failure sits
  // exactly on the floor, every later draw lands in [base, min(cap,
  // prev*3)], and the cap is an absolute ceiling no matter how long the
  // outage lasts.
  Rng rng(42);
  const auto base = std::chrono::milliseconds(2);
  const auto cap = std::chrono::milliseconds(500);
  auto prev = std::chrono::milliseconds(0);
  prev = next_backoff(base, cap, prev, rng);
  EXPECT_EQ(prev, base) << "first failure: exactly the floor";
  bool reached_upper_half = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t hi =
        std::max(base.count(), std::min(cap.count(), prev.count() * 3));
    const auto d = next_backoff(base, cap, prev, rng);
    ASSERT_GE(d.count(), base.count());
    ASSERT_LE(d.count(), hi);
    ASSERT_LE(d.count(), cap.count()) << "the cap is absolute";
    if (d.count() > cap.count() / 2) reached_upper_half = true;
    prev = d;
  }
  EXPECT_TRUE(reached_upper_half) << "a long outage must actually back off";

  // Degenerate bounds stay sane: cap below base clamps to base.
  Rng r2(7);
  EXPECT_EQ(next_backoff(std::chrono::milliseconds(10), std::chrono::milliseconds(3),
                         std::chrono::milliseconds(50), r2),
            std::chrono::milliseconds(10));
}

TEST(SocketTransport, BackoffReconnectStormDesynchronizesFleet) {
  // The reconnect-storm regression: a fleet of clients loses the same
  // server at the same instant. Under truncated binary exponential
  // backoff they would redial in lockstep waves (every client's Nth
  // retry at the same tick); decorrelated jitter must spread the Nth
  // retry across (almost all) distinct times — while staying fully
  // deterministic per seed, like every other randomized component here.
  constexpr int kFleet = 64;
  constexpr int kRetries = 8;
  const auto base = std::chrono::milliseconds(2);
  const auto cap = std::chrono::milliseconds(500);

  const auto schedule = [&](std::uint64_t seed) {
    Rng rng(0x5851F42D4C957F2DULL ^ seed);  // the transport's seeding scheme
    auto prev = std::chrono::milliseconds(0);
    std::int64_t at = 0;
    for (int i = 0; i < kRetries; ++i) {
      prev = next_backoff(base, cap, prev, rng);
      at += prev.count();
    }
    return at;
  };

  std::set<std::int64_t> distinct;
  for (int c = 0; c < kFleet; ++c) {
    distinct.insert(schedule(static_cast<std::uint64_t>(c)));
  }
  EXPECT_GE(distinct.size(), static_cast<std::size_t>(kFleet - 4))
      << "the storm must not re-form into synchronized waves";

  // Same incarnation, same schedule: jitter is replayable, not entropy.
  EXPECT_EQ(schedule(11), schedule(11));
}

}  // namespace
}  // namespace faust::sock
