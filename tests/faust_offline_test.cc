// Offline-channel behaviours of FAUST: probe rate limiting, flapping
// connectivity, FAILURE delivery to clients that were offline during the
// attack, and robustness against junk on the client-to-client channel.
#include <gtest/gtest.h>

#include "adversary/forking_server.h"
#include "faust/cluster.h"

namespace faust {
namespace {

TEST(Offline, ProbesAreRateLimitedPerInterval) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_interval = 2'000;
  cfg.faust.probe_check_period = 100;  // checks far more often than Δ
  Cluster cl(cfg);
  cl.net().crash(kServerNode);  // nothing to learn via the server
  cl.run_for(20'000);
  // Ten Δ windows elapsed; rate limiting keeps probes at ~1 per window
  // per peer, even though the staleness check ran 200 times.
  EXPECT_GE(cl.client(1).probes_sent(), 5u);
  EXPECT_LE(cl.client(1).probes_sent(), 12u);
}

TEST(Offline, FailureNewsReachesLateJoiner) {
  // C3 sleeps through the entire attack and its detection; the FAILURE
  // message waits in its mailbox and fires the moment it returns.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.with_server = false;
  cfg.faust.dummy_read_period = 300;
  cfg.faust.probe_interval = 2'000;
  cfg.faust.probe_check_period = 500;
  Cluster cl(cfg);
  adversary::ForkingServer server(cfg.n, cl.net());

  cl.write(1, "a");
  cl.client(3).go_offline();

  server.split(2);
  cl.write(2, "fork-side");
  cl.write(1, "main-side");
  cl.run_for(200'000);
  EXPECT_TRUE(cl.client(1).failed());
  EXPECT_TRUE(cl.client(2).failed());
  EXPECT_FALSE(cl.client(3).failed()) << "offline: not yet reachable";

  cl.client(3).go_online();
  cl.run_for(5'000);
  EXPECT_TRUE(cl.client(3).failed()) << "mailbox delivered the FAILURE on return";
  EXPECT_EQ(cl.client(3).failure_reason(), FailureReason::kPeerReport);
}

TEST(Offline, FlappingClientNeverMissesStability) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_interval = 1'000;
  cfg.faust.probe_check_period = 250;
  Cluster cl(cfg);
  const Timestamp t = cl.write(1, "x");
  cl.read(2, 1);
  cl.net().crash(kServerNode);

  // C2 flaps on/off; probes queue while it is away and are answered in
  // the on-windows — stability still converges.
  for (int round = 0; round < 6; ++round) {
    cl.client(2).go_offline();
    cl.run_for(3'000);
    cl.client(2).go_online();
    cl.run_for(3'000);
  }
  EXPECT_GE(cl.client(1).fully_stable_timestamp(), t);
  EXPECT_FALSE(cl.any_failed());
}

TEST(Offline, JunkOnTheOfflineChannelIsIgnored) {
  ClusterConfig cfg;
  cfg.n = 2;
  Cluster cl(cfg);
  cl.write(1, "x");
  // Inject garbage and a non-protocol tag into C1's mailbox.
  cl.mail().post(2, 1, to_bytes("not a protocol message"));
  cl.mail().post(2, 1, Bytes{0xff, 0x00, 0x13});
  cl.mail().post(2, 1, Bytes{});
  cl.run_for(10'000);
  EXPECT_FALSE(cl.client(1).failed()) << "junk mail is not evidence";
}

TEST(Offline, BogusEvidenceFailureMessageRejected) {
  // A FAILURE message with evidence that does not verify must be ignored
  // (failure-detection accuracy): craft one with comparable versions.
  ClusterConfig cfg;
  cfg.n = 2;
  Cluster cl(cfg);
  const Timestamp t = cl.write(1, "x");
  ASSERT_GT(t, 0u);

  ustor::FailureMessage bogus;
  bogus.has_evidence = true;
  bogus.committer_a = 1;
  bogus.a.version = cl.client(1).engine().version();
  bogus.a.commit_sig = cl.client(1).engine().commit_signature();
  bogus.committer_b = 1;
  bogus.b = bogus.a;  // identical versions: NOT incomparable
  cl.mail().post(2, 1, ustor::encode(bogus));
  cl.run_for(10'000);
  EXPECT_FALSE(cl.client(1).failed()) << "comparable 'evidence' proves nothing";

  // Forged signature: also rejected.
  bogus.b.version.v(2) += 1;  // now incomparable, but the signature breaks
  cl.mail().post(2, 1, ustor::encode(bogus));
  cl.run_for(10'000);
  EXPECT_FALSE(cl.client(1).failed());
}

TEST(Offline, ProbeFromPeerIsAnsweredEvenWhenIdle) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;  // C2 never probes on its own
  Cluster cl(cfg);
  cl.write(1, "x");
  cl.mail().post(2, 1, ustor::encode(ustor::ProbeMessage{}));
  cl.run_for(5'000);
  // C1 answered with a VERSION message; C2 received it.
  EXPECT_GE(cl.client(2).versions_received(), 1u);
}

}  // namespace
}  // namespace faust
