// Reproduction of Figure 2 / the §3 collaboration story: Alice and Bob in
// Europe, Carlos asleep in America; Alice's stability cut reads exactly
// stable_Alice([10, 8, 3]).
#include <gtest/gtest.h>

#include "faust/cluster.h"

namespace faust {
namespace {

constexpr ClientId kAlice = 1;
constexpr ClientId kBob = 2;
constexpr ClientId kCarlos = 3;

struct Figure2 : ::testing::Test {
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cl;

  void SetUp() override {
    cfg.n = 3;
    cfg.faust.dummy_read_period = 0;  // fully scripted: no background reads
    cfg.faust.probe_interval = 1'000'000;  // and no probes during the story
    cfg.faust.probe_check_period = 1'000'000;
    cl = std::make_unique<Cluster>(cfg);
  }
};

TEST_F(Figure2, StabilityCutOfAliceIsExactly_10_8_3) {
  Cluster& c = *cl;

  // Alice's operations t = 1..3, which Carlos observes before he leaves.
  c.write(kAlice, "doc v1");
  c.write(kAlice, "doc v2");
  c.write(kAlice, "doc v3");
  ASSERT_TRUE(c.read(kCarlos, kAlice).has_value());  // Carlos catches up
  c.run_for(100);  // let Carlos's COMMIT reach the server
  c.read(kAlice, kCarlos);  // t=4: Alice learns Carlos's version

  c.client(kCarlos).go_offline();  // Carlos goes to sleep

  // Alice continues editing: t = 5..8.
  c.write(kAlice, "doc v4");
  c.write(kAlice, "doc v5");
  c.write(kAlice, "doc v6");
  c.write(kAlice, "doc v7");

  ASSERT_TRUE(c.read(kBob, kAlice).has_value());  // Bob is up to date (t<=8)
  c.run_for(100);  // let Bob's COMMIT reach the server
  c.read(kAlice, kBob);  // t=9: Alice learns Bob's version

  c.write(kAlice, "doc v8");  // t=10

  const FaustClient::StabilityCut& w = c.client(kAlice).stability_cut();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 10u) << "trivially consistent with herself up to t=10";
  EXPECT_EQ(w[1], 8u) << "consistent with Bob up to t=8";
  EXPECT_EQ(w[2], 3u) << "consistent with Carlos up to t=3";
  EXPECT_EQ(c.client(kAlice).fully_stable_timestamp(), 3u);

  // "It is unclear to Alice whether Carlos is only temporarily
  // disconnected": nobody has failed.
  EXPECT_FALSE(c.any_failed());
}

TEST_F(Figure2, CarlosReturnsAndEverythingStabilizes) {
  Cluster& c = *cl;
  c.write(kAlice, "v1");
  c.write(kAlice, "v2");
  c.write(kAlice, "v3");
  c.read(kCarlos, kAlice);
  c.run_for(100);
  c.read(kAlice, kCarlos);
  c.client(kCarlos).go_offline();
  c.write(kAlice, "v4");
  c.write(kAlice, "v5");
  c.write(kAlice, "v6");
  c.write(kAlice, "v7");
  c.read(kBob, kAlice);
  c.run_for(100);
  c.read(kAlice, kBob);
  c.write(kAlice, "v8");  // t=10, cut = [10,8,3]

  // Carlos wakes up; with the server correct, §3 promises that all
  // operations eventually become stable at all clients.
  c.client(kCarlos).go_online();
  c.read(kCarlos, kAlice);   // Carlos catches up to t=10
  c.run_for(100);
  c.read(kAlice, kCarlos);   // t=11: Alice learns it

  const FaustClient::StabilityCut& w = c.client(kAlice).stability_cut();
  EXPECT_EQ(w[0], 11u);
  EXPECT_GE(w[2], 10u) << "Carlos now covers all of Alice's edits";
  EXPECT_GE(c.client(kAlice).fully_stable_timestamp(), 8u);
  EXPECT_FALSE(c.any_failed());
}

TEST_F(Figure2, BackgroundMachineryAlsoStabilizesEverything) {
  // Same story but let dummy reads + probes do the propagation.
  ClusterConfig bg;
  bg.n = 3;
  bg.faust.dummy_read_period = 200;
  bg.faust.probe_interval = 3'000;
  bg.faust.probe_check_period = 500;
  Cluster c(bg);
  const Timestamp t1 = c.write(kAlice, "v1");
  const Timestamp t2 = c.write(kAlice, "v2");
  c.run_for(30'000);
  EXPECT_GE(c.client(kAlice).fully_stable_timestamp(), t2);
  EXPECT_GT(t2, t1);
  EXPECT_FALSE(c.any_failed());
}

TEST_F(Figure2, OfflineClientStallsFullStabilityOnly) {
  Cluster& c = *cl;
  c.client(kCarlos).go_offline();
  c.write(kAlice, "v1");
  c.read(kBob, kAlice);
  c.run_for(100);
  c.read(kAlice, kBob);
  const auto& w = c.client(kAlice).stability_cut();
  EXPECT_GE(w[1], 1u) << "stable w.r.t. Bob";
  EXPECT_EQ(w[2], 0u) << "not stable w.r.t. Carlos";
  EXPECT_EQ(c.client(kAlice).fully_stable_timestamp(), 0u);
  EXPECT_FALSE(c.any_failed()) << "an offline peer is not a failure";
}

}  // namespace
}  // namespace faust
