// D8 edge-cache tier semantics: wire codec hardening, TTL expiry, LRU
// arena eviction, negative-entry invalidation, the O(1) unchanged fast
// path, writer push fills, surfaced staleness, and the deltas×cache 2×2
// differential (the cache is pure performance — bypass-cache merged
// views are byte-identical across every tuning × cache combination).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/store.h"
#include "cache/cache_client.h"
#include "cache/cache_node.h"
#include "cache/cache_wire.h"
#include "faust/cluster.h"
#include "kvstore/kv_client.h"

namespace faust::cache {
namespace {

// --- Wire codec round-trips and hardening ----------------------------------

crypto::Hash test_hash(std::uint8_t fill) {
  crypto::Hash h{};
  h.fill(fill);
  return h;
}

TEST(CacheWire, GetRoundTrip) {
  GetMessage m;
  m.req_id = 77;
  m.bases = {std::nullopt, test_hash(0xAB), std::nullopt};
  const Bytes enc = encode_get(m);
  const auto dec = decode_get(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->req_id, 77u);
  ASSERT_EQ(dec->bases.size(), 3u);
  EXPECT_FALSE(dec->bases[0].has_value());
  ASSERT_TRUE(dec->bases[1].has_value());
  EXPECT_EQ(*dec->bases[1], test_hash(0xAB));
}

TEST(CacheWire, ReplyRoundTrip) {
  std::vector<OutSection> sections(3);
  sections[0].status = SectionStatus::kMiss;
  sections[1].status = SectionStatus::kHit;
  sections[1].writer_ts = 42;
  sections[1].digest = test_hash(0x01);
  sections[1].sig = Bytes{1, 2, 3};
  sections[1].value = std::make_shared<const Bytes>(Bytes{9, 8, 7, 6});
  sections[1].as_of = 40;
  sections[2].status = SectionStatus::kNegative;
  sections[2].as_of = 11;
  const Bytes enc = encode_reply(5, sections);
  const auto dec = decode_reply_view(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->req_id, 5u);
  ASSERT_EQ(dec->sections.size(), 3u);
  EXPECT_EQ(dec->sections[0].status, SectionStatus::kMiss);
  EXPECT_EQ(dec->sections[1].status, SectionStatus::kHit);
  EXPECT_EQ(dec->sections[1].writer_ts, 42u);
  EXPECT_EQ(dec->sections[1].digest, test_hash(0x01));
  EXPECT_EQ(Bytes(dec->sections[1].sig.begin(), dec->sections[1].sig.end()),
            (Bytes{1, 2, 3}));
  EXPECT_EQ(Bytes(dec->sections[1].value.begin(), dec->sections[1].value.end()),
            (Bytes{9, 8, 7, 6}));
  EXPECT_EQ(dec->sections[1].as_of, 40u);
  EXPECT_EQ(dec->sections[2].status, SectionStatus::kNegative);
  EXPECT_EQ(dec->sections[2].as_of, 11u);
}

TEST(CacheWire, FillRoundTrip) {
  std::vector<FillSection> fills(2);
  fills[0].writer = 2;
  fills[0].present = true;
  fills[0].writer_ts = 9;
  fills[0].digest = test_hash(0x33);
  fills[0].sig = Bytes{4, 5};
  fills[0].value = Bytes{1, 1, 2, 3, 5};
  fills[0].as_of = 9;
  fills[1].writer = 3;
  fills[1].present = false;
  fills[1].as_of = 4;
  const Bytes enc = encode_fill(fills);
  const auto dec = decode_fill_view(enc);
  ASSERT_TRUE(dec.has_value());
  ASSERT_EQ(dec->sections.size(), 2u);
  EXPECT_EQ(dec->sections[0].writer, 2);
  EXPECT_TRUE(dec->sections[0].present);
  EXPECT_EQ(dec->sections[0].writer_ts, 9u);
  EXPECT_EQ(Bytes(dec->sections[0].value.begin(), dec->sections[0].value.end()),
            (Bytes{1, 1, 2, 3, 5}));
  EXPECT_FALSE(dec->sections[1].present);
  EXPECT_EQ(dec->sections[1].as_of, 4u);
}

TEST(CacheWire, MalformedInputsAreRejected) {
  EXPECT_FALSE(decode_get(BytesView()).has_value());
  EXPECT_FALSE(decode_reply_view(BytesView()).has_value());
  EXPECT_FALSE(decode_fill_view(BytesView()).has_value());

  GetMessage m;
  m.req_id = 1;
  m.bases = {test_hash(0x01)};
  Bytes enc = encode_get(m);
  // Wrong leading tag.
  Bytes wrong = enc;
  wrong[0] = 0xEE;
  EXPECT_FALSE(decode_get(wrong).has_value());
  // Truncations at every prefix length must fail, never crash or accept.
  for (std::size_t len = 1; len < enc.size(); ++len) {
    EXPECT_FALSE(decode_get(BytesView(enc.data(), len)).has_value()) << len;
  }
  // Trailing garbage.
  enc.push_back(0x00);
  EXPECT_FALSE(decode_get(enc).has_value());

  std::vector<OutSection> sections(1);
  sections[0].status = SectionStatus::kHit;
  sections[0].value = std::make_shared<const Bytes>(Bytes{1, 2, 3});
  Bytes reply = encode_reply(2, sections);
  for (std::size_t len = 1; len < reply.size(); ++len) {
    EXPECT_FALSE(decode_reply_view(BytesView(reply.data(), len)).has_value()) << len;
  }
}

// --- Cache semantics against a live deployment -----------------------------

struct CacheRig {
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<CacheNode> node;
  std::vector<std::unique_ptr<kv::KvClient>> kv;
  std::vector<std::unique_ptr<CacheClient>> hops;

  explicit CacheRig(std::uint64_t seed, CacheOptions copts = make_opts(),
                    kv::KvTuning tuning = {}, int n = 3) {
    cfg.n = n;
    cfg.seed = seed;
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    cluster = std::make_unique<Cluster>(cfg);
    node = std::make_unique<CacheNode>(kCacheNodeId, cluster->net(), cluster->exec(), n,
                                       copts);
    for (ClientId i = 1; i <= n; ++i) {
      kv.push_back(std::make_unique<kv::KvClient>(cluster->client(i), tuning));
      hops.push_back(std::make_unique<CacheClient>(
          i, kCacheNodeId, n, cluster->sigs(), cfg.faust.data_digest, cluster->net(),
          cluster->exec(), copts.lookup_timeout));
      kv.back()->attach_cache(hops.back().get());
    }
  }

  static CacheOptions make_opts() {
    CacheOptions o;
    o.enabled = true;
    return o;
  }

  kv::KvClient& client(ClientId i) { return *kv[static_cast<std::size_t>(i - 1)]; }
  CacheClient& hop(ClientId i) { return *hops[static_cast<std::size_t>(i - 1)]; }

  void drive(const bool& done) {
    std::size_t steps = 0;
    while (!done && steps < 2'000'000 && cluster->sched().step()) ++steps;
  }

  void put(ClientId i, const std::string& k, const std::string& v) {
    bool done = false;
    client(i).put(k, v, [&](Timestamp) { done = true; });
    drive(done);
    ASSERT_TRUE(done);
    settle();
  }

  struct Got {
    std::optional<kv::KvEntry> entry;
    Timestamp ts = 0;
    kv::ReadOrigin origin;
  };

  Got get(ClientId i, const std::string& k, bool bypass = false) {
    bool done = false;
    Got out;
    client(i).get_ex(k, bypass,
                     [&](std::optional<kv::KvEntry> e, Timestamp t,
                         const kv::ReadOrigin& origin) {
                       out.entry = std::move(e);
                       out.ts = t;
                       out.origin = origin;
                       done = true;
                     });
    drive(done);
    EXPECT_TRUE(done);
    settle();
    return out;
  }

  std::map<std::string, kv::KvEntry> list(ClientId i, bool bypass) {
    bool done = false;
    std::map<std::string, kv::KvEntry> out;
    client(i).list_ex(bypass, [&](const std::map<std::string, kv::KvEntry>& m, Timestamp,
                                  const kv::ReadOrigin&) {
      out = m;
      done = true;
    });
    drive(done);
    EXPECT_TRUE(done);
    settle();
    return out;
  }

  /// Lets fire-and-forget fills (and any probe traffic) land.
  void settle(sim::Time d = 100) { cluster->run_for(d); }
};

TEST(CacheSemantics, ReadThroughFillServesNextSnapshot) {
  CacheRig rig(21);
  rig.put(1, "k", "v1");

  // First reader snapshot: push fill from the writer may already hold
  // X_1, the reader's own and third slots fill negatively on read-through.
  const CacheRig::Got first = rig.get(2, "k");
  ASSERT_TRUE(first.entry.has_value());
  EXPECT_EQ(first.entry->value, "v1");

  // Second snapshot: every register resolves at the cache — no engine
  // contact at all — and the provenance is surfaced.
  const std::uint64_t engine_before = rig.client(2).registers_engine_read();
  const CacheRig::Got second = rig.get(2, "k");
  ASSERT_TRUE(second.entry.has_value());
  EXPECT_EQ(second.entry->value, "v1");
  EXPECT_TRUE(second.origin.cached);
  EXPECT_GT(second.origin.as_of, 0u);
  EXPECT_EQ(rig.client(2).registers_engine_read(), engine_before)
      << "a fully cached snapshot issues no register reads";
  EXPECT_GE(rig.client(2).snapshots_cached(), 1u);
  EXPECT_EQ(rig.hop(2).sections_rejected(), 0u);
}

TEST(CacheSemantics, WriterPushFillPrimesTheCacheWithoutAnyRead) {
  CacheRig rig(22);
  EXPECT_FALSE(rig.node->holds(1));
  rig.put(1, "k", "v1");
  EXPECT_TRUE(rig.node->holds(1)) << "publish must push-fill the writer's register";
  EXPECT_GE(rig.client(1).cache_push_fills(), 1u);
  EXPECT_GE(rig.node->fills_accepted(), 1u);

  // A fresh reader's first snapshot is already served X_1 from the cache.
  const CacheRig::Got got = rig.get(2, "k");
  ASSERT_TRUE(got.entry.has_value());
  EXPECT_EQ(got.entry->value, "v1");
  EXPECT_TRUE(got.origin.cached);
  EXPECT_GE(rig.hop(2).sections_served(), 1u);
}

TEST(CacheSemantics, UnchangedFastPathShipsNoBytes) {
  CacheRig rig(23);
  rig.put(1, "k", std::string(2'000, 'x'));
  (void)rig.get(2, "k");  // fills cache + the reader's decode memo

  const std::uint64_t unchanged_before = rig.hop(2).sections_unchanged();
  const CacheRig::Got again = rig.get(2, "k");
  ASSERT_TRUE(again.entry.has_value());
  EXPECT_GT(rig.hop(2).sections_unchanged(), unchanged_before)
      << "a repeat lookup advertising the verified base digest must be "
         "answered with the O(1) unchanged token, not the 2KB value";
  EXPECT_GT(rig.node->unchanged_hits(), 0u);
}

TEST(CacheSemantics, TtlExpiryFallsBackToTheEngine) {
  CacheOptions opts = CacheRig::make_opts();
  opts.ttl = 3'000;
  CacheRig rig(24, opts);
  rig.put(1, "k", "v1");
  (void)rig.get(2, "k");
  ASSERT_TRUE(rig.node->holds(1));

  rig.cluster->run_for(10'000);  // well past the TTL
  EXPECT_FALSE(rig.node->holds(1)) << "expired entries read as absent";

  const std::uint64_t engine_before = rig.client(2).registers_engine_read();
  const CacheRig::Got got = rig.get(2, "k");
  ASSERT_TRUE(got.entry.has_value());
  EXPECT_EQ(got.entry->value, "v1");
  EXPECT_GT(rig.node->expirations(), 0u);
  EXPECT_GT(rig.client(2).registers_engine_read(), engine_before)
      << "expiry must force engine reads (which re-fill the cache)";
  EXPECT_TRUE(rig.node->holds(1)) << "the fallback read-through re-fills";
}

TEST(CacheSemantics, NegativeEntryInvalidatedByLaterPut) {
  CacheRig rig(25);
  // Read before any write: all n registers fill negatively.
  const CacheRig::Got empty = rig.get(2, "k");
  EXPECT_FALSE(empty.entry.has_value());
  ASSERT_TRUE(rig.node->holds(1)) << "negative entry for the unwritten register";

  // The later put's push fill must displace the negative (⊥ → written is
  // the only legal direction).
  rig.put(1, "k", "v1");
  const CacheRig::Got got = rig.get(2, "k");
  ASSERT_TRUE(got.entry.has_value());
  EXPECT_EQ(got.entry->value, "v1");

  // And a negative can never displace present content: replay a negative
  // fill for the (now written) register 1 and re-read.
  std::vector<FillSection> bogus(1);
  bogus[0].writer = 1;
  bogus[0].present = false;
  bogus[0].as_of = 1'000'000'000;
  rig.hop(2).fill(std::move(bogus));
  rig.settle();
  const std::uint64_t rejected_before = rig.node->fills_rejected();
  EXPECT_GT(rig.node->fills_rejected(), 0u);
  (void)rejected_before;
  const CacheRig::Got still = rig.get(3, "k");
  ASSERT_TRUE(still.entry.has_value());
  EXPECT_EQ(still.entry->value, "v1");
}

TEST(CacheSemantics, LruEvictionKeepsTheArenaBounded) {
  CacheOptions opts = CacheRig::make_opts();
  opts.arena_bytes = 600;  // fits ~one 512-byte partition
  CacheRig rig(26, opts);
  rig.put(1, "a", std::string(512, '1'));
  rig.put(2, "b", std::string(512, '2'));
  rig.put(3, "c", std::string(512, '3'));
  EXPECT_GT(rig.node->evictions(), 0u);
  EXPECT_LE(rig.node->arena_used(), opts.arena_bytes);

  // Reads still serve correct values — evicted slots just miss through.
  for (const auto& [key, want] : std::map<std::string, char>{
           {"a", '1'}, {"b", '2'}, {"c", '3'}}) {
    const CacheRig::Got got = rig.get(1, key);
    ASSERT_TRUE(got.entry.has_value()) << key;
    EXPECT_EQ(got.entry->value, std::string(512, want)) << key;
  }
}

TEST(CacheSemantics, StaleWithinTtlIsSurfacedNotHidden) {
  // Only the READER gets a cache hop: the writer's v2 publish sends no
  // push fill, so the cache legitimately holds v1 until TTL expiry. The
  // cached read must surface its provenance (cached + as_of) rather than
  // masquerade as fresh — and the bypass path must see v2 immediately.
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 27;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cluster(cfg);
  CacheOptions opts = CacheRig::make_opts();
  CacheNode node(kCacheNodeId, cluster.net(), cluster.exec(), cfg.n, opts);
  kv::KvClient writer(cluster.client(1));
  kv::KvClient reader(cluster.client(2));
  CacheClient hop(2, kCacheNodeId, cfg.n, cluster.sigs(), cfg.faust.data_digest,
                  cluster.net(), cluster.exec(), opts.lookup_timeout);
  reader.attach_cache(&hop);

  const auto drive = [&](const bool& done) {
    std::size_t steps = 0;
    while (!done && steps < 2'000'000 && cluster.sched().step()) ++steps;
  };
  bool put_done = false;
  writer.put("k", "v1", [&](Timestamp) { put_done = true; });
  drive(put_done);
  cluster.run_for(100);

  bool got1 = false;
  reader.get_ex("k", false, [&](std::optional<kv::KvEntry> e, Timestamp,
                                const kv::ReadOrigin&) {
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->value, "v1");
    got1 = true;
  });
  drive(got1);
  cluster.run_for(100);  // read-through fill lands

  put_done = false;
  writer.put("k", "v2", [&](Timestamp) { put_done = true; });
  drive(put_done);
  cluster.run_for(100);

  bool got2 = false;
  Timestamp fresh_ts = 0;
  reader.get_ex("k", /*bypass_cache=*/true,
                [&](std::optional<kv::KvEntry> e, Timestamp t, const kv::ReadOrigin& o) {
                  ASSERT_TRUE(e.has_value());
                  EXPECT_EQ(e->value, "v2") << "bypass is the authoritative view";
                  EXPECT_FALSE(o.cached);
                  fresh_ts = t;
                  got2 = true;
                });
  drive(got2);

  bool got3 = false;
  reader.get_ex("k", false,
                [&](std::optional<kv::KvEntry> e, Timestamp t, const kv::ReadOrigin& o) {
                  ASSERT_TRUE(e.has_value());
                  if (o.cached && t < fresh_ts) {
                    // The stale window: v1 served, but as_of honestly dates it.
                    EXPECT_EQ(e->value, "v1");
                    EXPECT_GT(o.as_of, 0u);
                    EXPECT_LT(o.as_of, fresh_ts);
                  } else {
                    EXPECT_EQ(e->value, "v2");
                  }
                  got3 = true;
                });
  drive(got3);
  EXPECT_FALSE(cluster.any_failed());
}

// --- api::Store provenance + stability conservatism -------------------------

TEST(CacheStore, CachedGetSurfacesOriginAndIsNeverStable) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 28;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  cfg.cache.enabled = true;  // Cluster owns the node; SingleStore attaches hops
  Cluster cluster(cfg);
  auto s1 = api::open_store(cluster, 1);
  auto s2 = api::open_store(cluster, 2);

  ASSERT_GT(s1->put("k", "v").settle().ts, 0u);
  cluster.run_for(100);

  (void)s2->get("k").settle();  // read-through fill
  cluster.run_for(100);
  const api::GetResult g = s2->get("k").settle();
  ASSERT_TRUE(g.entry.has_value());
  EXPECT_EQ(g.entry->value, "v");
  EXPECT_TRUE(g.cached) << "second read must be cache-served end to end";
  EXPECT_GT(g.as_of, 0u);
  EXPECT_FALSE(g.stable) << "cache-served reads are never stability-eligible";
  EXPECT_FALSE(s2->stable(g)) << "even after cuts advance, cached results stay ineligible";

  // The authoritative engine path is untouched: a batch whose list op
  // bypasses nothing still reads correctly through the cache tier.
  const api::ListResult all = s2->list().settle();
  ASSERT_TRUE(all.complete);
  ASSERT_TRUE(all.entries.count("k"));
  EXPECT_EQ(all.entries.at("k").value, "v");
}

// --- The deltas × cache differential (2×2, byte-identical views) ------------

TEST(CacheDifferential, TuningAndCacheAreInvisibleInTheMergedView) {
  // Same seeded op script under {delta, legacy} × {cache, no-cache}: the
  // bypass-cache merged views (and entry-for-entry winners) must be
  // IDENTICAL — the cache is performance, never semantics.
  const auto run = [](bool with_cache, kv::KvTuning tuning) {
    CacheOptions opts = CacheRig::make_opts();
    opts.enabled = with_cache;
    CacheRig rig(29, opts, tuning);
    if (!with_cache) {
      for (auto& c : rig.kv) c->attach_cache(nullptr);
    }
    const char* const keys[] = {"alpha", "beta", "gamma", "delta"};
    for (int round = 0; round < 4; ++round) {
      for (ClientId w = 1; w <= 3; ++w) {
        rig.put(w, keys[(round + w) % 4],
                "r" + std::to_string(round) + "w" + std::to_string(w));
        // Interleave cached reads so the cache actually serves traffic.
        (void)rig.get(static_cast<ClientId>(1 + (round + w) % 3), keys[w % 4]);
      }
    }
    rig.put(2, "beta", "final");
    bool erased = false;
    rig.client(3).erase("gamma", [&](Timestamp) { erased = true; });
    rig.drive(erased);
    rig.settle();
    return rig.list(1, /*bypass=*/true);
  };

  const auto base = run(false, kv::KvTuning{false, false});
  EXPECT_EQ(run(false, kv::KvTuning{true, true}), base);
  EXPECT_EQ(run(true, kv::KvTuning{false, false}), base);
  EXPECT_EQ(run(true, kv::KvTuning{true, true}), base);
  ASSERT_FALSE(base.empty());
  ASSERT_TRUE(base.count("beta"));
  EXPECT_EQ(base.at("beta").value, "final");
}

}  // namespace
}  // namespace faust::cache
