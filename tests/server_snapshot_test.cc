// Copy-on-write reply snapshots: process_submit must not deep-copy L/P,
// snapshots must stay valid across later state mutations, and the encoded
// bytes must be identical to the old deep-copy semantics.
#include <gtest/gtest.h>

#include "crypto/signature.h"
#include "ustor/messages.h"
#include "ustor/server.h"

namespace faust::ustor {
namespace {

SubmitMessage make_submit(ClientId i, Timestamp t, OpCode oc = OpCode::kWrite) {
  SubmitMessage m;
  m.t = t;
  m.inv = {i, oc, i, to_bytes("ssig")};
  m.value = oc == OpCode::kWrite ? Value(to_bytes("v")) : std::nullopt;
  m.data_sig = to_bytes("dsig");
  return m;
}

TEST(ReplySnapshot, SharesLAndPAcrossConsecutiveSubmits) {
  ServerCore core(4);
  const ReplySnapshot r1 = core.process_submit(make_submit(1, 1));
  const ReplySnapshot r2 = core.process_submit(make_submit(2, 1));
  // Submits deep-copy nothing: both snapshots alias the live vectors.
  EXPECT_EQ(r1.P.get(), r2.P.get());
  EXPECT_EQ(r1.L.get(), r2.L.get());
  EXPECT_EQ(core.cow_clones(), 0u);
  // Each snapshot's logical L excludes the submitting op (line 116).
  EXPECT_EQ(r1.l_count, 0u);
  EXPECT_EQ(r2.l_count, 1u);
  EXPECT_EQ(core.pending_list_size(), 2u);
  // The later push is invisible to the earlier snapshot's encoding.
  EXPECT_EQ(r1.materialize().L.size(), 0u);
  EXPECT_EQ(r2.materialize().L.size(), 1u);
}

TEST(ReplySnapshot, SnapshotImmutableAcrossCommit) {
  ServerCore core(2);
  (void)core.process_submit(make_submit(1, 1));
  const ReplySnapshot before = core.process_submit(make_submit(2, 1));
  ASSERT_EQ(before.l_count, 1u);
  const Bytes encoded_before = encode(before);

  // A commit mutates P (and possibly L); the held snapshot must not see it.
  CommitMessage cm;
  cm.version = Version(2);
  cm.version.v(1) = 1;
  cm.commit_sig = to_bytes("c");
  cm.proof_sig = to_bytes("p");
  core.process_commit(1, cm);

  EXPECT_EQ(encode(before), encoded_before);
  EXPECT_TRUE((*before.P)[0].empty());          // snapshot: pre-commit P
  EXPECT_EQ(core.P()[0], to_bytes("p"));        // live state: post-commit P
  EXPECT_GE(core.cow_clones(), 1u);             // the commit had to clone
}

TEST(ReplySnapshot, NoCloneWhenSnapshotDropped) {
  ServerCore core(2);
  (void)core.process_submit(make_submit(1, 1));  // snapshot dropped here
  const std::uint64_t clones_before = core.cow_clones();

  CommitMessage cm;
  cm.version = Version(2);
  cm.version.v(1) = 1;
  cm.commit_sig = to_bytes("c");
  cm.proof_sig = to_bytes("p");
  core.process_commit(1, cm);
  // Steady state: replies are encoded and freed before the COMMIT arrives,
  // so the P update mutates in place.
  EXPECT_EQ(core.cow_clones(), clones_before);
}

TEST(ReplySnapshot, GenerationAdvancesWithMutations) {
  ServerCore core(2);
  const ReplySnapshot r1 = core.process_submit(make_submit(1, 1));
  const ReplySnapshot r2 = core.process_submit(make_submit(2, 1));
  EXPECT_LT(r1.generation, r2.generation);
  EXPECT_GE(core.generation(), r2.generation);
}

TEST(ReplySnapshot, CopiedCoreDivergesIndependently) {
  // The adversary forking servers copy a ServerCore and drive the two
  // worlds apart; the copy must own its L/P, not alias the original's.
  ServerCore a(2);
  (void)a.process_submit(make_submit(1, 1));
  ServerCore b(a);
  (void)b.process_submit(make_submit(2, 1));
  EXPECT_EQ(a.pending_list_size(), 1u);
  EXPECT_EQ(b.pending_list_size(), 2u);
  EXPECT_NE(&a.L(), &b.L());
  EXPECT_NE(&a.P(), &b.P());
}

TEST(ReplySnapshot, MaterializeMatchesSnapshotEncoding) {
  ServerCore core(3);
  (void)core.process_submit(make_submit(2, 1));
  const ReplySnapshot snap = core.process_submit(make_submit(1, 1, OpCode::kRead));
  const ReplyMessage owned = snap.materialize();
  EXPECT_EQ(encode(snap), encode(owned));
  EXPECT_EQ(owned.L.size(), snap.l_count);
  EXPECT_EQ(owned.P.size(), snap.P->size());
  ASSERT_TRUE(owned.read.has_value());
  EXPECT_EQ(owned.c, snap.c);
}

}  // namespace
}  // namespace faust::ustor
