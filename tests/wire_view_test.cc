// Zero-copy wire layer: Reader view primitives, decode_reply_view
// equivalence with the owned decoder, size_hint exactness, and hardening
// of the view path against truncated/malformed input.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ustor/messages.h"
#include "wire/encoder.h"

namespace faust::ustor {
namespace {

using wire::Reader;
using wire::Writer;

TEST(ReaderViews, ViewsAliasSourceBuffer) {
  Writer w;
  w.put_bytes(to_bytes("hello"));
  w.put_raw(to_bytes("raw"));
  const Bytes buf = w.take();

  Reader r(buf);
  const BytesView s = r.get_bytes_view();
  const BytesView raw = r.get_view(3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
  // Zero-copy: the views point into `buf`, not at copies.
  EXPECT_GE(s.data(), buf.data());
  EXPECT_LE(s.data() + s.size(), buf.data() + buf.size());
  EXPECT_GE(raw.data(), buf.data());
  EXPECT_EQ(to_string(Bytes(s.begin(), s.end())), "hello");
  EXPECT_EQ(to_string(Bytes(raw.begin(), raw.end())), "raw");
}

TEST(ReaderViews, EmptyStringVsErrorDistinguishedByOk) {
  // A legitimately empty byte string: ok() stays true.
  Writer w;
  w.put_bytes(Bytes{});
  const Bytes good = w.take();
  Reader r1(good);
  EXPECT_TRUE(r1.get_bytes_view().empty());
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r1.exhausted());

  // A lying length prefix: same empty view, but ok() flips.
  Writer w2;
  w2.put_u32(5);  // claims 5 bytes, none follow
  const Bytes bad = w2.take();
  Reader r2(bad);
  EXPECT_TRUE(r2.get_bytes_view().empty());
  EXPECT_FALSE(r2.ok());

  // Same contract for the owned variants.
  Reader r3(good);
  EXPECT_TRUE(r3.get_bytes().empty());
  EXPECT_TRUE(r3.ok());
  Reader r4(bad);
  EXPECT_TRUE(r4.get_bytes().empty());
  EXPECT_FALSE(r4.ok());
}

TEST(ReaderViews, PresentButEmptyIsDistinctFromErrorSentinel) {
  // Regression for the get_bytes empty-vs-error ambiguity: the view API
  // now carries a distinct sentinel — a successful zero-length read has a
  // non-null data() pointing into (or at the end of) the buffer, while a
  // failed read returns the null-data error view, so the two are
  // distinguishable without consulting ok().
  Writer w;
  w.put_bytes(Bytes{});
  const Bytes good = w.take();
  Reader r1(good);
  const BytesView present = r1.get_bytes_view();
  EXPECT_TRUE(present.empty());
  EXPECT_FALSE(Reader::is_error(present));
  EXPECT_NE(present.data(), nullptr);
  EXPECT_TRUE(r1.ok());

  Writer w2;
  w2.put_u32(5);  // lying length prefix
  const Bytes bad = w2.take();
  Reader r2(bad);
  const BytesView err = r2.get_bytes_view();
  EXPECT_TRUE(err.empty());
  EXPECT_TRUE(Reader::is_error(err));
  EXPECT_FALSE(r2.ok());

  // Zero-length raw read: present, not error.
  Reader r3(good);
  (void)r3.get_u32();
  const BytesView raw0 = r3.get_view(0);
  EXPECT_FALSE(Reader::is_error(raw0));
  EXPECT_TRUE(r3.ok());

  // Even a reader over an empty source buffer distinguishes the two: a
  // zero-byte read succeeds (static sentinel address), a one-byte read is
  // the error view.
  Reader r4(BytesView{});
  EXPECT_FALSE(Reader::is_error(r4.get_view(0)));
  EXPECT_TRUE(r4.ok());
  EXPECT_TRUE(Reader::is_error(r4.get_view(1)));
  EXPECT_FALSE(r4.ok());
}

TEST(ReaderViews, StickyErrorAcrossViewCalls) {
  const Bytes buf = to_bytes("abc");
  Reader r(buf);
  EXPECT_TRUE(r.get_view(10).empty());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.get_view(1).empty());  // still failing, no crash
  EXPECT_FALSE(r.ok());
}

TEST(WriterReserve, CapacityHintDoesNotChangeOutput) {
  Writer plain;
  plain.put_u32(7);
  plain.put_bytes(to_bytes("payload"));

  Writer hinted(64);
  hinted.put_u32(7);
  hinted.put_bytes(to_bytes("payload"));
  EXPECT_EQ(plain.buffer(), hinted.buffer());
}

Version sample_version(int n, std::uint64_t salt) {
  Version v(n);
  for (int k = 1; k <= n; ++k) {
    v.v(k) = salt + static_cast<std::uint64_t>(k);
    v.m(k) = chain_step(Digest::bottom(), k);
  }
  return v;
}

ReplyMessage sample_reply(int n) {
  ReplyMessage m;
  m.c = 2;
  m.last = {sample_version(n, 9), to_bytes("csig")};
  ReadPayload rp;
  rp.writer = {sample_version(n, 4), to_bytes("wsig")};
  rp.tj = 13;
  rp.value = to_bytes("the-value");
  rp.data_sig = to_bytes("dsig");
  m.read = rp;
  m.L.push_back({1, OpCode::kRead, 2, to_bytes("s1")});
  m.L.push_back({3, OpCode::kWrite, 3, to_bytes("s2")});
  for (int k = 0; k < n; ++k) m.P.push_back(k % 2 ? to_bytes("p") : Bytes{});
  return m;
}

TEST(ReplyView, MatchesOwnedDecode) {
  const ReplyMessage m = sample_reply(3);
  const Bytes buf = encode(m);
  const auto view = decode_reply_view(buf);
  ASSERT_TRUE(view.has_value());
  const auto owned = decode_reply(buf);
  ASSERT_TRUE(owned.has_value());

  // The materialized view equals the owned decode field by field.
  const ReplyMessage mat = view->materialize();
  EXPECT_EQ(mat.c, owned->c);
  EXPECT_EQ(mat.last.version, owned->last.version);
  EXPECT_EQ(mat.last.commit_sig, owned->last.commit_sig);
  ASSERT_TRUE(mat.read.has_value());
  EXPECT_EQ(mat.read->tj, owned->read->tj);
  EXPECT_EQ(mat.read->value, owned->read->value);
  EXPECT_EQ(mat.read->data_sig, owned->read->data_sig);
  EXPECT_EQ(mat.L, owned->L);
  EXPECT_EQ(mat.P, owned->P);

  // And the view's byte fields alias the buffer (true zero-copy).
  const auto in_buf = [&](BytesView v) {
    return v.empty() || (v.data() >= buf.data() && v.data() + v.size() <= buf.data() + buf.size());
  };
  EXPECT_TRUE(in_buf(view->last.commit_sig));
  EXPECT_TRUE(in_buf(view->read->data_sig));
  EXPECT_TRUE(in_buf(*view->read->value));
  for (const auto& inv : view->L) EXPECT_TRUE(in_buf(inv.submit_sig));
  for (const auto& p : view->P) EXPECT_TRUE(in_buf(p));
}

TEST(ReplyView, TruncationFuzzNeverCrashes) {
  const Bytes full = encode(sample_reply(3));
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(decode_reply_view(BytesView(full.data(), len)).has_value());
  }
  EXPECT_TRUE(decode_reply_view(full).has_value());
}

TEST(ReplyView, RandomBytesFuzzNeverCrashes) {
  Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)decode_reply_view(junk);
  }
  SUCCEED();
}

// --- size_hint: exact for every message type, random shapes --------------

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes b(rng.next_below(max_len));
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

Version random_version(Rng& rng, int n) {
  Version v(n);
  for (int k = 1; k <= n; ++k) {
    v.v(k) = rng.next_below(1000);
    if (rng.next_below(2)) v.m(k) = chain_step(Digest::bottom(), k);
  }
  return v;
}

InvocationTuple random_invocation(Rng& rng, int n) {
  return {static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n))),
          rng.next_below(2) ? OpCode::kWrite : OpCode::kRead,
          static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n))),
          random_bytes(rng, 40)};
}

TEST(SizeHint, ExactForRandomMessages) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(1 + rng.next_below(6));

    SubmitMessage sm;
    sm.t = rng.next_u64();
    sm.inv = random_invocation(rng, n);
    sm.value = rng.next_below(2) ? Value(random_bytes(rng, 64)) : std::nullopt;
    sm.data_sig = random_bytes(rng, 40);
    const Bytes se = encode(sm);
    EXPECT_EQ(se.size(), size_hint(sm));
    ASSERT_TRUE(decode_submit(se).has_value());

    ReplyMessage rm;
    rm.c = static_cast<ClientId>(1 + rng.next_below(static_cast<std::size_t>(n)));
    rm.last = {random_version(rng, n), random_bytes(rng, 40)};
    if (rng.next_below(2)) {
      ReadPayload rp;
      rp.writer = {random_version(rng, n), random_bytes(rng, 40)};
      rp.tj = rng.next_below(100);
      rp.value = rng.next_below(2) ? Value(random_bytes(rng, 64)) : std::nullopt;
      rp.data_sig = random_bytes(rng, 40);
      rm.read = std::move(rp);
    }
    for (std::size_t q = rng.next_below(4); q > 0; --q) {
      rm.L.push_back(random_invocation(rng, n));
    }
    for (int k = 0; k < n; ++k) rm.P.push_back(random_bytes(rng, 40));
    const Bytes re = encode(rm);
    EXPECT_EQ(re.size(), size_hint(rm));
    const auto rb = decode_reply(re);
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(rb->last.version, rm.last.version);
    EXPECT_EQ(rb->L, rm.L);
    EXPECT_EQ(rb->P, rm.P);

    CommitMessage cm;
    cm.version = random_version(rng, n);
    cm.commit_sig = random_bytes(rng, 40);
    cm.proof_sig = random_bytes(rng, 40);
    const Bytes ce = encode(cm);
    EXPECT_EQ(ce.size(), size_hint(cm));
    ASSERT_TRUE(decode_commit(ce).has_value());

    VersionMessage vm;
    vm.committer = 1;
    vm.ver = {random_version(rng, n), random_bytes(rng, 40)};
    const Bytes ve = encode(vm);
    EXPECT_EQ(ve.size(), size_hint(vm));
    ASSERT_TRUE(decode_version(ve).has_value());

    FailureMessage fm;
    fm.has_evidence = rng.next_below(2) == 1;
    if (fm.has_evidence) {
      fm.committer_a = 1;
      fm.a = {random_version(rng, n), random_bytes(rng, 40)};
      fm.committer_b = 2;
      fm.b = {random_version(rng, n), random_bytes(rng, 40)};
    }
    const Bytes fe = encode(fm);
    EXPECT_EQ(fe.size(), size_hint(fm));
    ASSERT_TRUE(decode_failure(fe).has_value());

    EXPECT_EQ(encode(ProbeMessage{}).size(), size_hint(ProbeMessage{}));
  }
}

TEST(SizeHint, ReplySnapshotEncodesIdenticallyToMaterialized) {
  const ReplyMessage m = sample_reply(4);
  ReplySnapshot snap;
  snap.c = m.c;
  snap.last = m.last;
  if (m.read.has_value()) snap.read = to_shared(*m.read);
  snap.L = std::make_shared<const std::vector<InvocationTuple>>(m.L);
  snap.l_count = m.L.size();
  snap.P = std::make_shared<const std::vector<Bytes>>(m.P);
  EXPECT_EQ(encode(snap), encode(m));
  EXPECT_EQ(encode(snap).size(), size_hint(snap));
}

}  // namespace
}  // namespace faust::ustor
