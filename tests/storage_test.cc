// Durability substrate tests: CRC32 vectors, the write-ahead log's
// torn-tail recovery (fuzzed at every byte offset of the tail record),
// verified snapshots, exactly-once duplicate suppression, and full
// crash-recovery of the persistent USTOR server with clients that never
// notice.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "storage/crc32.h"
#include "storage/log_store.h"
#include "storage/persistent_server.h"
#include "storage/snapshot_store.h"
#include "ustor/client.h"
#include "ustor/state_codec.h"

namespace faust::storage {
namespace {

/// Fresh temp path per test; removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& tag) {
    path = std::string(::testing::TempDir()) + "/faust_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".log";
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

/// Fresh temp directory per test; removed recursively on destruction.
struct TempDirFixture {
  std::string path;
  explicit TempDirFixture(const std::string& tag) {
    path = std::string(::testing::TempDir()) + "/faust_dir_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDirFixture() { std::filesystem::remove_all(path); }
};

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  Bytes all(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(all.data(), 1, all.size(), f), all.size());
  std::fclose(f);
  return all;
}

void write_file(const std::string& path, BytesView content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!content.empty()) ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f), content.size());
  std::fclose(f);
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(to_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);  // the check value
  EXPECT_EQ(crc32(to_bytes("The quick brown fox jumps over the lazy dog")), 0x414FA339u);
}

TEST(Crc32, SensitiveToEveryByte) {
  const Bytes base = to_bytes("payload-payload-payload");
  const std::uint32_t ref = crc32(base);
  for (std::size_t k = 0; k < base.size(); ++k) {
    Bytes mod = base;
    mod[k] ^= 0x01;
    EXPECT_NE(crc32(mod), ref) << "byte " << k;
  }
}

TEST(LogStore, AppendReplayRoundtrip) {
  TempFile tmp("roundtrip");
  {
    LogStore log(tmp.path);
    EXPECT_TRUE(log.append(to_bytes("one")));
    EXPECT_TRUE(log.append(to_bytes("two")));
    EXPECT_TRUE(log.append(Bytes{}));  // empty records are legal
    EXPECT_EQ(log.records(), 3u);
  }
  LogStore log(tmp.path);
  std::vector<std::string> got;
  EXPECT_EQ(log.replay([&](BytesView b) { got.push_back(to_string(b)); }), 3u);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "one");
  EXPECT_EQ(got[1], "two");
  EXPECT_EQ(got[2], "");
}

TEST(LogStore, AppendAfterReplayContinuesTheLog) {
  TempFile tmp("continue");
  {
    LogStore log(tmp.path);
    log.append(to_bytes("a"));
  }
  {
    LogStore log(tmp.path);
    log.replay([](BytesView) {});
    log.append(to_bytes("b"));
  }
  LogStore log(tmp.path);
  std::vector<std::string> got;
  log.replay([&](BytesView b) { got.push_back(to_string(b)); });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], "b");
}

TEST(LogStore, TornTailIsDiscarded) {
  TempFile tmp("torn");
  {
    LogStore log(tmp.path);
    log.append(to_bytes("intact-1"));
    log.append(to_bytes("intact-2"));
    log.append(to_bytes("this record will be torn"));
  }
  // Simulate a crash mid-write: chop the last 5 bytes off the file.
  {
    std::FILE* f = std::fopen(tmp.path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    Bytes all(static_cast<std::size_t>(size));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(all.data(), 1, all.size(), f), all.size());
    std::fclose(f);
    f = std::fopen(tmp.path.c_str(), "wb");
    std::fwrite(all.data(), 1, all.size() - 5, f);
    std::fclose(f);
  }
  LogStore log(tmp.path);
  std::vector<std::string> got;
  EXPECT_EQ(log.replay([&](BytesView b) { got.push_back(to_string(b)); }), 2u);
  EXPECT_EQ(got.back(), "intact-2");
  // The torn bytes were truncated; a new append lands cleanly.
  EXPECT_TRUE(log.append(to_bytes("after-recovery")));
  LogStore reread(tmp.path);
  got.clear();
  EXPECT_EQ(reread.replay([&](BytesView b) { got.push_back(to_string(b)); }), 3u);
  EXPECT_EQ(got.back(), "after-recovery");
}

TEST(LogStore, CorruptMiddleRecordStopsReplay) {
  TempFile tmp("corrupt");
  {
    LogStore log(tmp.path);
    log.append(to_bytes("good"));
    log.append(to_bytes("soon-corrupt"));
  }
  {
    std::FILE* f = std::fopen(tmp.path.c_str(), "r+b");
    std::fseek(f, -3, SEEK_END);  // flip a byte inside the last payload
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  LogStore log(tmp.path);
  std::vector<std::string> got;
  EXPECT_EQ(log.replay([&](BytesView b) { got.push_back(to_string(b)); }), 1u);
  EXPECT_EQ(got[0], "good");
}

TEST(LogStore, TornTailFuzzAtEveryByteOffset) {
  // Satellite robustness sweep: truncate the file at EVERY byte offset
  // inside the final record (header and payload). Recovery must keep the
  // intact two-record prefix, never crash, and classify the damage:
  // a short read is a torn tail (no checksum failure), while a truncation
  // that leaves the full framing but cuts... cannot exist — truncation
  // inside the payload IS a short read. Only bit-flips (below) count as
  // checksum failures.
  TempFile proto("fuzz_proto");
  {
    LogStore log(proto.path);
    log.append(to_bytes("first"));
    log.append(to_bytes("second"));
    log.append(to_bytes("the-final-record-that-gets-torn"));
  }
  const Bytes full = read_file(proto.path);
  const std::size_t tail_record = 8 + 31;  // header + payload of record 3
  const std::size_t intact_end = full.size() - tail_record;

  for (std::size_t cut = intact_end; cut < full.size(); ++cut) {
    TempFile tmp("fuzz_cut");
    write_file(tmp.path, BytesView(full.data(), cut));
    LogStore log(tmp.path);
    std::vector<std::string> got;
    EXPECT_EQ(log.replay([&](BytesView b) { got.push_back(to_string(b)); }), 2u)
        << "cut at byte " << cut;
    ASSERT_EQ(got.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(got[0], "first");
    EXPECT_EQ(got[1], "second");
    EXPECT_EQ(log.checksum_failures(), 0u)
        << "a short read is a torn tail, not corruption (cut " << cut << ")";
    // The log is writable again, and the re-opened file replays cleanly.
    EXPECT_TRUE(log.append(to_bytes("appended")));
    LogStore reread(tmp.path);
    std::size_t n = 0;
    EXPECT_EQ(reread.replay([&](BytesView) { ++n; }), 3u) << "cut at byte " << cut;
  }
}

TEST(LogStore, BitFlipFuzzAtEveryByteOffset) {
  // Flip one bit in every byte of the final record in turn. Whatever the
  // position — length field, CRC field, payload — recovery must keep the
  // intact prefix, never deliver damaged bytes, and surface the
  // corruption through the checksum-failure counter (except flips in the
  // length field that make the record read as torn instead — those may
  // legitimately classify either way, but must still protect the prefix).
  TempFile proto("flip_proto");
  {
    LogStore log(proto.path);
    log.append(to_bytes("first"));
    log.append(to_bytes("second"));
    log.append(to_bytes("the-final-record-that-gets-flipped"));
  }
  const Bytes full = read_file(proto.path);
  const std::size_t tail_record = 8 + 34;
  const std::size_t tail_start = full.size() - tail_record;

  for (std::size_t at = tail_start; at < full.size(); ++at) {
    for (const std::uint8_t bit : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      TempFile tmp("flip");
      Bytes mod = full;
      mod[at] ^= bit;
      write_file(tmp.path, mod);
      LogStore log(tmp.path);
      std::vector<std::string> got;
      EXPECT_EQ(log.replay([&](BytesView b) { got.push_back(to_string(b)); }), 2u)
          << "flip at byte " << at;
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], "first");
      EXPECT_EQ(got[1], "second");
      // Every flip damages exactly one record; a flip that enlarges the
      // length field can also present as a torn tail. Either way the
      // prefix survives; most positions must trip the CRC.
      const bool length_field = at - tail_start < 4;
      if (!length_field) {
        EXPECT_EQ(log.checksum_failures(), 1u) << "flip at byte " << at;
      }
    }
  }
}

TEST(LogStore, SkipRecordsReplaysOnlyTheSuffix) {
  TempFile tmp("skip");
  {
    LogStore log(tmp.path);
    for (int i = 0; i < 5; ++i) log.append(to_bytes("r" + std::to_string(i)));
  }
  LogStore log(tmp.path);
  std::vector<std::string> got;
  EXPECT_EQ(log.replay([&](BytesView b) { got.push_back(to_string(b)); }, 3), 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "r3");
  EXPECT_EQ(got[1], "r4");
  EXPECT_EQ(log.records(), 5u) << "skipped records still count as intact";
}

TEST(SnapshotStore, RoundtripAndCounters) {
  TempFile tmp("snap");
  SnapshotStore store(tmp.path);
  EXPECT_FALSE(store.load().has_value()) << "missing file is not a snapshot";
  EXPECT_EQ(store.rejects(), 0u) << "missing is not a reject";

  const Bytes payload = to_bytes("snapshot-payload-bytes");
  ASSERT_TRUE(store.save(42, payload));
  EXPECT_EQ(store.saves(), 1u);
  const auto img = store.load();
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->log_records, 42u);
  EXPECT_EQ(img->payload, payload);

  // Overwrite is atomic-by-rename: the second save fully replaces.
  ASSERT_TRUE(store.save(43, to_bytes("second")));
  const auto img2 = store.load();
  ASSERT_TRUE(img2.has_value());
  EXPECT_EQ(img2->log_records, 43u);
  EXPECT_EQ(to_string(img2->payload), "second");
}

TEST(SnapshotStore, TamperAndTornRejectionAtEveryOffset) {
  // The snapshot's integrity root is the verifiers' chunk-tree digest: a
  // flip ANYWHERE in the file (header, root, payload) or a truncation at
  // any offset must be rejected — recovery then falls back to log replay.
  TempFile proto("snap_fuzz");
  Bytes file;
  {
    SnapshotStore store(proto.path);
    ASSERT_TRUE(store.save(7, to_bytes("integrity-rooted-payload")));
    file = read_file(proto.path);
  }
  for (std::size_t at = 0; at < file.size(); ++at) {
    TempFile tmp("snap_flip");
    Bytes mod = file;
    mod[at] ^= 0x01;
    write_file(tmp.path, mod);
    SnapshotStore store(tmp.path);
    // Flips in the log_records field keep payload integrity intact — the
    // field is consumed as-is (recovery re-anchors coverage; the WAL rule
    // guarantees the payload never claims unlogged state). Everything
    // else must reject.
    const bool log_records_field = at >= 8 && at < 16;
    if (!log_records_field) {
      EXPECT_FALSE(store.load().has_value()) << "flip at byte " << at;
      EXPECT_EQ(store.rejects(), 1u) << "flip at byte " << at;
    }
  }
  for (std::size_t cut = 0; cut < file.size(); ++cut) {
    TempFile tmp("snap_cut");
    write_file(tmp.path, BytesView(file.data(), cut));
    SnapshotStore store(tmp.path);
    EXPECT_FALSE(store.load().has_value()) << "cut at byte " << cut;
    EXPECT_EQ(store.rejects(), 1u) << "cut at byte " << cut;
  }
}

TEST(PersistentServerTest, CrashRecoveryIsInvisibleToClients) {
  constexpr int kN = 3;
  TempFile tmp("server");

  sim::Scheduler sched;
  net::Network net(sched, Rng(5), net::DelayModel{2, 5});
  auto sigs = crypto::make_hmac_scheme(kN);
  std::vector<std::unique_ptr<ustor::Client>> clients;

  auto server = std::make_unique<PersistentServer>(kN, net, tmp.path);
  EXPECT_EQ(server->recovered_records(), 0u);
  for (ClientId i = 1; i <= kN; ++i) {
    clients.push_back(std::make_unique<ustor::Client>(i, kN, sigs, net));
  }

  const auto write_sync = [&](ClientId i, std::string_view v) {
    bool done = false;
    clients[static_cast<std::size_t>(i - 1)]->writex(
        to_bytes(v), [&done](const ustor::WriteResult&) { done = true; });
    while (!done && sched.step()) {
    }
    return done;
  };
  const auto read_sync = [&](ClientId i, ClientId j) {
    bool done = false;
    ustor::Value out;
    clients[static_cast<std::size_t>(i - 1)]->readx(j, [&](const ustor::ReadResult& r) {
      out = r.value;
      done = true;
    });
    while (!done && sched.step()) {
    }
    EXPECT_TRUE(done);
    return out;
  };

  ASSERT_TRUE(write_sync(1, "pre-crash-1"));
  ASSERT_TRUE(write_sync(2, "pre-crash-2"));
  ASSERT_TRUE(read_sync(3, 1).has_value());
  sched.run();  // drain trailing COMMITs into the log

  const auto schedule_before = server->core().schedule();

  // Crash: destroy the server object entirely; then restart from the log.
  net.detach(kServerNode);
  server.reset();
  server = std::make_unique<PersistentServer>(kN, net, tmp.path);
  EXPECT_GT(server->recovered_records(), 0u);
  EXPECT_EQ(server->core().schedule(), schedule_before)
      << "recovered schedule must be byte-identical";

  // Clients keep operating against the recovered server: versions extend,
  // values read back, and no fail_i ever fires.
  ASSERT_TRUE(write_sync(1, "post-crash"));
  const ustor::Value v = read_sync(2, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "post-crash");
  const ustor::Value v2 = read_sync(3, 2);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(to_string(*v2), "pre-crash-2");
  for (const auto& c : clients) EXPECT_FALSE(c->failed());
}

TEST(PersistentServerTest, DoubleCrashStillConsistent) {
  constexpr int kN = 2;
  TempFile tmp("server2");
  sim::Scheduler sched;
  net::Network net(sched, Rng(9), net::DelayModel{1, 3});
  auto sigs = crypto::make_hmac_scheme(kN);
  ustor::Client c1(1, kN, sigs, net);
  ustor::Client c2(2, kN, sigs, net);

  for (int round = 0; round < 3; ++round) {
    PersistentServer server(kN, net, tmp.path);
    bool done = false;
    c1.writex(to_bytes("round-" + std::to_string(round)),
              [&done](const ustor::WriteResult&) { done = true; });
    while (!done && sched.step()) {
    }
    ASSERT_TRUE(done) << "round " << round;
    sched.run();
    net.detach(kServerNode);  // crash between rounds
  }
  PersistentServer server(kN, net, tmp.path);
  bool done = false;
  ustor::Value v;
  c2.readx(1, [&](const ustor::ReadResult& r) {
    v = r.value;
    done = true;
  });
  while (!done && sched.step()) {
  }
  ASSERT_TRUE(done);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "round-2");
  EXPECT_FALSE(c1.failed());
  EXPECT_FALSE(c2.failed());
}

}  // namespace
}  // namespace faust::storage
