// Durability substrate tests: CRC32 vectors, the write-ahead log's
// torn-tail recovery, and full crash-recovery of the persistent USTOR
// server with clients that never notice.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "storage/crc32.h"
#include "storage/log_store.h"
#include "storage/persistent_server.h"
#include "ustor/client.h"

namespace faust::storage {
namespace {

/// Fresh temp path per test; removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& tag) {
    path = std::string(::testing::TempDir()) + "/faust_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".log";
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(to_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);  // the check value
  EXPECT_EQ(crc32(to_bytes("The quick brown fox jumps over the lazy dog")), 0x414FA339u);
}

TEST(Crc32, SensitiveToEveryByte) {
  const Bytes base = to_bytes("payload-payload-payload");
  const std::uint32_t ref = crc32(base);
  for (std::size_t k = 0; k < base.size(); ++k) {
    Bytes mod = base;
    mod[k] ^= 0x01;
    EXPECT_NE(crc32(mod), ref) << "byte " << k;
  }
}

TEST(LogStore, AppendReplayRoundtrip) {
  TempFile tmp("roundtrip");
  {
    LogStore log(tmp.path);
    EXPECT_TRUE(log.append(to_bytes("one")));
    EXPECT_TRUE(log.append(to_bytes("two")));
    EXPECT_TRUE(log.append(Bytes{}));  // empty records are legal
    EXPECT_EQ(log.records(), 3u);
  }
  LogStore log(tmp.path);
  std::vector<std::string> got;
  EXPECT_EQ(log.replay([&](BytesView b) { got.push_back(to_string(b)); }), 3u);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "one");
  EXPECT_EQ(got[1], "two");
  EXPECT_EQ(got[2], "");
}

TEST(LogStore, AppendAfterReplayContinuesTheLog) {
  TempFile tmp("continue");
  {
    LogStore log(tmp.path);
    log.append(to_bytes("a"));
  }
  {
    LogStore log(tmp.path);
    log.replay([](BytesView) {});
    log.append(to_bytes("b"));
  }
  LogStore log(tmp.path);
  std::vector<std::string> got;
  log.replay([&](BytesView b) { got.push_back(to_string(b)); });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], "b");
}

TEST(LogStore, TornTailIsDiscarded) {
  TempFile tmp("torn");
  {
    LogStore log(tmp.path);
    log.append(to_bytes("intact-1"));
    log.append(to_bytes("intact-2"));
    log.append(to_bytes("this record will be torn"));
  }
  // Simulate a crash mid-write: chop the last 5 bytes off the file.
  {
    std::FILE* f = std::fopen(tmp.path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    Bytes all(static_cast<std::size_t>(size));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(all.data(), 1, all.size(), f), all.size());
    std::fclose(f);
    f = std::fopen(tmp.path.c_str(), "wb");
    std::fwrite(all.data(), 1, all.size() - 5, f);
    std::fclose(f);
  }
  LogStore log(tmp.path);
  std::vector<std::string> got;
  EXPECT_EQ(log.replay([&](BytesView b) { got.push_back(to_string(b)); }), 2u);
  EXPECT_EQ(got.back(), "intact-2");
  // The torn bytes were truncated; a new append lands cleanly.
  EXPECT_TRUE(log.append(to_bytes("after-recovery")));
  LogStore reread(tmp.path);
  got.clear();
  EXPECT_EQ(reread.replay([&](BytesView b) { got.push_back(to_string(b)); }), 3u);
  EXPECT_EQ(got.back(), "after-recovery");
}

TEST(LogStore, CorruptMiddleRecordStopsReplay) {
  TempFile tmp("corrupt");
  {
    LogStore log(tmp.path);
    log.append(to_bytes("good"));
    log.append(to_bytes("soon-corrupt"));
  }
  {
    std::FILE* f = std::fopen(tmp.path.c_str(), "r+b");
    std::fseek(f, -3, SEEK_END);  // flip a byte inside the last payload
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  LogStore log(tmp.path);
  std::vector<std::string> got;
  EXPECT_EQ(log.replay([&](BytesView b) { got.push_back(to_string(b)); }), 1u);
  EXPECT_EQ(got[0], "good");
}

TEST(PersistentServerTest, CrashRecoveryIsInvisibleToClients) {
  constexpr int kN = 3;
  TempFile tmp("server");

  sim::Scheduler sched;
  net::Network net(sched, Rng(5), net::DelayModel{2, 5});
  auto sigs = crypto::make_hmac_scheme(kN);
  std::vector<std::unique_ptr<ustor::Client>> clients;

  auto server = std::make_unique<PersistentServer>(kN, net, tmp.path);
  EXPECT_EQ(server->recovered_records(), 0u);
  for (ClientId i = 1; i <= kN; ++i) {
    clients.push_back(std::make_unique<ustor::Client>(i, kN, sigs, net));
  }

  const auto write_sync = [&](ClientId i, std::string_view v) {
    bool done = false;
    clients[static_cast<std::size_t>(i - 1)]->writex(
        to_bytes(v), [&done](const ustor::WriteResult&) { done = true; });
    while (!done && sched.step()) {
    }
    return done;
  };
  const auto read_sync = [&](ClientId i, ClientId j) {
    bool done = false;
    ustor::Value out;
    clients[static_cast<std::size_t>(i - 1)]->readx(j, [&](const ustor::ReadResult& r) {
      out = r.value;
      done = true;
    });
    while (!done && sched.step()) {
    }
    EXPECT_TRUE(done);
    return out;
  };

  ASSERT_TRUE(write_sync(1, "pre-crash-1"));
  ASSERT_TRUE(write_sync(2, "pre-crash-2"));
  ASSERT_TRUE(read_sync(3, 1).has_value());
  sched.run();  // drain trailing COMMITs into the log

  const auto schedule_before = server->core().schedule();

  // Crash: destroy the server object entirely; then restart from the log.
  net.detach(kServerNode);
  server.reset();
  server = std::make_unique<PersistentServer>(kN, net, tmp.path);
  EXPECT_GT(server->recovered_records(), 0u);
  EXPECT_EQ(server->core().schedule(), schedule_before)
      << "recovered schedule must be byte-identical";

  // Clients keep operating against the recovered server: versions extend,
  // values read back, and no fail_i ever fires.
  ASSERT_TRUE(write_sync(1, "post-crash"));
  const ustor::Value v = read_sync(2, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "post-crash");
  const ustor::Value v2 = read_sync(3, 2);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(to_string(*v2), "pre-crash-2");
  for (const auto& c : clients) EXPECT_FALSE(c->failed());
}

TEST(PersistentServerTest, DoubleCrashStillConsistent) {
  constexpr int kN = 2;
  TempFile tmp("server2");
  sim::Scheduler sched;
  net::Network net(sched, Rng(9), net::DelayModel{1, 3});
  auto sigs = crypto::make_hmac_scheme(kN);
  ustor::Client c1(1, kN, sigs, net);
  ustor::Client c2(2, kN, sigs, net);

  for (int round = 0; round < 3; ++round) {
    PersistentServer server(kN, net, tmp.path);
    bool done = false;
    c1.writex(to_bytes("round-" + std::to_string(round)),
              [&done](const ustor::WriteResult&) { done = true; });
    while (!done && sched.step()) {
    }
    ASSERT_TRUE(done) << "round " << round;
    sched.run();
    net.detach(kServerNode);  // crash between rounds
  }
  PersistentServer server(kN, net, tmp.path);
  bool done = false;
  ustor::Value v;
  c2.readx(1, [&](const ustor::ReadResult& r) {
    v = r.value;
    done = true;
  });
  while (!done && sched.step()) {
  }
  ASSERT_TRUE(done);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "round-2");
  EXPECT_FALSE(c1.failed());
  EXPECT_FALSE(c2.failed());
}

}  // namespace
}  // namespace faust::storage
