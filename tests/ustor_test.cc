// USTOR protocol tests with a correct server (Algorithms 1+2): happy-path
// semantics, timestamps, versions, concurrency, wait-freedom.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"
#include "ustor/server.h"

namespace faust::ustor {
namespace {

constexpr int kN = 3;

struct UstorFixture : ::testing::Test {
  sim::Scheduler sched;
  net::Network net{sched, Rng(7), net::DelayModel{5, 5}};
  std::shared_ptr<const crypto::SignatureScheme> sigs = crypto::make_hmac_scheme(kN);
  Server server{kN, net};
  std::vector<std::unique_ptr<Client>> clients;

  void SetUp() override {
    for (ClientId i = 1; i <= kN; ++i) {
      clients.push_back(std::make_unique<Client>(i, kN, sigs, net));
    }
  }

  Client& c(ClientId i) { return *clients[static_cast<std::size_t>(i - 1)]; }

  WriteResult write(ClientId i, std::string_view v) {
    WriteResult out;
    bool done = false;
    c(i).writex(to_bytes(v), [&](const WriteResult& r) {
      out = r;
      done = true;
    });
    while (!done && sched.step()) {
    }
    EXPECT_TRUE(done) << "write by C" << i << " did not complete";
    return out;
  }

  ReadResult read(ClientId i, ClientId j) {
    ReadResult out;
    bool done = false;
    c(i).readx(j, [&](const ReadResult& r) {
      out = r;
      done = true;
    });
    while (!done && sched.step()) {
    }
    EXPECT_TRUE(done) << "read by C" << i << " did not complete";
    return out;
  }
};

TEST_F(UstorFixture, WriteReturnsTimestampAndVersion) {
  const WriteResult r = write(1, "hello");
  EXPECT_EQ(r.t, 1u);
  EXPECT_EQ(r.own.version.v(1), 1u);
  EXPECT_EQ(r.own.version.v(2), 0u);
  EXPECT_FALSE(r.own.commit_sig.empty());
}

TEST_F(UstorFixture, ReadSeesPrecedingWrite) {
  write(1, "hello");
  const ReadResult r = read(2, 1);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(to_string(*r.value), "hello");
  EXPECT_EQ(r.writer, 1);
  EXPECT_EQ(r.writer_version.version.v(1), 1u);
}

TEST_F(UstorFixture, ReadOfUnwrittenRegisterReturnsBottom) {
  const ReadResult r = read(2, 3);
  EXPECT_FALSE(r.value.has_value());
}

TEST_F(UstorFixture, ReadOfRegisterWhoseOwnerOnlyReadReturnsBottom) {
  read(3, 1);  // C3 performs a read; its own register stays ⊥
  const ReadResult r = read(2, 3);
  EXPECT_FALSE(r.value.has_value());
}

TEST_F(UstorFixture, SelfReadReturnsOwnValue) {
  write(1, "mine");
  const ReadResult r = read(1, 1);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(to_string(*r.value), "mine");
}

TEST_F(UstorFixture, OverwriteIsVisible) {
  write(1, "v1");
  write(1, "v2");
  const ReadResult r = read(2, 1);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(to_string(*r.value), "v2");
}

TEST_F(UstorFixture, TimestampsStrictlyIncreasePerClient) {
  EXPECT_EQ(write(1, "a").t, 1u);
  EXPECT_EQ(read(1, 2).t, 2u);
  EXPECT_EQ(write(1, "b").t, 3u);
  EXPECT_EQ(read(1, 1).t, 4u);
}

TEST_F(UstorFixture, VersionsGrowMonotonically) {
  Version prev = c(2).version();
  for (int k = 0; k < 5; ++k) {
    read(2, 1);
    const Version& cur = c(2).version();
    EXPECT_TRUE(version_leq(prev, cur));
    EXPECT_FALSE(version_leq(cur, prev));
    prev = cur;
  }
}

TEST_F(UstorFixture, VersionCountsAllScheduledOps) {
  write(1, "a");
  write(2, "b");
  const ReadResult r = read(3, 1);
  EXPECT_EQ(r.own.version.v(1), 1u);
  EXPECT_EQ(r.own.version.v(2), 1u);
  EXPECT_EQ(r.own.version.v(3), 1u);
}

TEST_F(UstorFixture, ServerLogsScheduleInOrder) {
  write(1, "a");
  read(2, 1);
  write(3, "c");
  const auto& sched_log = server.core().schedule();
  ASSERT_EQ(sched_log.size(), 3u);
  EXPECT_EQ(sched_log[0], (ScheduledOp{1, OpCode::kWrite, 1, 1}));
  EXPECT_EQ(sched_log[1], (ScheduledOp{2, OpCode::kRead, 1, 1}));
  EXPECT_EQ(sched_log[2], (ScheduledOp{3, OpCode::kWrite, 3, 1}));
}

TEST_F(UstorFixture, PendingListDrainsAfterCommits) {
  write(1, "a");
  write(2, "b");
  read(3, 2);
  sched.run();  // let trailing COMMITs arrive
  EXPECT_EQ(server.core().pending_list_size(), 0u);
}

TEST_F(UstorFixture, ConcurrentSubmissionsBothComplete) {
  // Both clients submit in the same tick; the second scheduled sees the
  // first in L and must handle the in-flight operation.
  bool done1 = false, done2 = false;
  WriteResult r1;
  ReadResult r2;
  c(1).writex(to_bytes("w"), [&](const WriteResult& r) {
    r1 = r;
    done1 = true;
  });
  c(2).readx(1, [&](const ReadResult& r) {
    r2 = r;
    done2 = true;
  });
  sched.run();
  ASSERT_TRUE(done1 && done2);
  // C2's read was scheduled after C1's write; it must see the value even
  // though the write's COMMIT was still in flight (no blocking, no miss).
  ASSERT_TRUE(r2.value.has_value());
  EXPECT_EQ(to_string(*r2.value), "w");
  EXPECT_EQ(r2.own.version.v(1), 1u);
  EXPECT_TRUE(versions_comparable(r1.own.version, r2.own.version));
}

TEST_F(UstorFixture, ManyInterleavedOpsStayConsistent) {
  for (int round = 0; round < 10; ++round) {
    write(1, "x" + std::to_string(round));
    const ReadResult r2 = read(2, 1);
    ASSERT_TRUE(r2.value.has_value());
    EXPECT_EQ(to_string(*r2.value), "x" + std::to_string(round));
    const ReadResult r3 = read(3, 1);
    EXPECT_EQ(to_string(*r3.value), "x" + std::to_string(round));
  }
  EXPECT_FALSE(c(1).failed());
  EXPECT_FALSE(c(2).failed());
  EXPECT_FALSE(c(3).failed());
}

TEST_F(UstorFixture, WaitFreedomDespiteCrashedPeer) {
  // C1 submits and crashes before committing: its COMMIT never arrives.
  c(1).writex(to_bytes("doomed"), [](const WriteResult&) {});
  sched.run_until(sched.now() + 5);  // SUBMIT reaches the server
  net.crash(1);

  // Every other client keeps completing operations — wait-freedom with a
  // correct server does not depend on peers (C1's op stays in L forever).
  for (int k = 0; k < 5; ++k) {
    const ReadResult r = read(2, 1);
    EXPECT_FALSE(c(2).failed());
    // C1's submitted-but-uncommitted write is visible (scheduled first).
    ASSERT_TRUE(r.value.has_value());
    EXPECT_EQ(to_string(*r.value), "doomed");
  }
  write(3, "alive");
  EXPECT_FALSE(c(3).failed());
  EXPECT_GT(server.core().pending_list_size(), 0u);  // C1's tuple remains
}

TEST_F(UstorFixture, CompletedOpsCounterAndBusyFlag) {
  EXPECT_FALSE(c(1).busy());
  bool done = false;
  c(1).writex(to_bytes("v"), [&](const WriteResult&) { done = true; });
  EXPECT_TRUE(c(1).busy());
  while (!done && sched.step()) {
  }
  EXPECT_FALSE(c(1).busy());
  EXPECT_EQ(c(1).completed_ops(), 1u);
}

TEST_F(UstorFixture, CommitSignatureVerifies) {
  const WriteResult r = write(1, "v");
  EXPECT_TRUE(sigs->verify(1, commit_payload(r.own.version), r.own.commit_sig));
  EXPECT_EQ(c(1).commit_signature(), r.own.commit_sig);
}

TEST_F(UstorFixture, NoFailuresUnderCorrectServer) {
  for (int k = 0; k < 20; ++k) {
    write((k % 3) + 1, "v" + std::to_string(k));
    read(((k + 1) % 3) + 1, (k % 3) + 1);
  }
  for (ClientId i = 1; i <= kN; ++i) {
    EXPECT_FALSE(c(i).failed());
    EXPECT_EQ(c(i).fail_cause(), FailCause::kNone);
  }
}

}  // namespace
}  // namespace faust::ustor
