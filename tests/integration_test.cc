// End-to-end integration: a multi-phase story exercising the whole stack
// in one run — normal collaboration, disconnection, server crash,
// recovery of stability via the offline channel — and a second run where
// the provider turns malicious mid-life.
#include <gtest/gtest.h>

#include "adversary/forking_server.h"
#include "checker/causal.h"
#include "checker/linearizability.h"
#include "faust/cluster.h"

namespace faust {
namespace {

TEST(Integration, FullLifecycleWithCorrectProvider) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 7;
  cfg.faust.dummy_read_period = 300;
  cfg.faust.probe_interval = 4'000;
  cfg.faust.probe_check_period = 1'000;
  Cluster cl(cfg);

  // Phase 1: everyone collaborates.
  cl.write(1, "report-draft");
  ASSERT_EQ(to_string(*cl.read(2, 1)), "report-draft");
  cl.write(2, "review-notes");
  ASSERT_EQ(to_string(*cl.read(1, 2)), "review-notes");
  cl.write(3, "figures");
  cl.write(4, "appendix");
  cl.run_for(15'000);
  EXPECT_GE(cl.client(1).fully_stable_timestamp(), 1u);

  // Phase 2: C4 disconnects; the rest keep working.
  cl.client(4).go_offline();
  const Timestamp t = cl.write(1, "report-v2");
  cl.run_for(15'000);
  const auto& w1 = cl.client(1).stability_cut();
  EXPECT_GE(w1[1], t) << "stable w.r.t. C2";
  EXPECT_LT(w1[3], t) << "not stable w.r.t. offline C4";

  // Phase 3: C4 returns; full stability is restored.
  cl.client(4).go_online();
  cl.run_for(30'000);
  EXPECT_GE(cl.client(1).fully_stable_timestamp(), t);

  // Phase 4: the provider crashes; stability of everything already
  // exchanged still completes through probes, and nobody cries Byzantine.
  const Timestamp t2 = cl.write(2, "final");
  ASSERT_TRUE(cl.read(1, 2).has_value());
  ASSERT_TRUE(cl.read(3, 2).has_value());
  ASSERT_TRUE(cl.read(4, 2).has_value());
  cl.net().crash(kServerNode);
  cl.run_for(300'000);
  EXPECT_FALSE(cl.any_failed());
  EXPECT_GE(cl.client(2).fully_stable_timestamp(), t2);

  // The recorded user history is linearizable and causal throughout.
  EXPECT_TRUE(checker::check_linearizable(cl.recorder().history()).ok);
  EXPECT_TRUE(checker::check_causal(cl.recorder().history()).ok);
}

TEST(Integration, ProviderTurnsMaliciousMidLife) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 13;
  cfg.with_server = false;
  cfg.faust.dummy_read_period = 400;
  cfg.faust.probe_interval = 3'000;
  cfg.faust.probe_check_period = 700;
  Cluster cl(cfg);
  adversary::ForkingServer server(cfg.n, cl.net());

  // Months of honest service...
  for (int k = 0; k < 6; ++k) {
    cl.write((k % 3) + 1, "epoch" + std::to_string(k));
    cl.read(((k + 1) % 3) + 1, (k % 3) + 1);
  }
  cl.run_for(10'000);
  ASSERT_FALSE(cl.any_failed());
  const auto honest_cut = cl.client(1).stability_cut();

  // ...then the provider forks C3 into a stale world.
  server.split(3);
  cl.write(1, "secret-update");      // main world moves on
  cl.write(3, "doomed-update");      // victim's world moves separately

  cl.run_for(400'000);
  EXPECT_TRUE(cl.all_failed()) << "every correct client learns of the fork";

  // Operations that were stable before the attack stay vouched-for: the
  // stability cut never regresses.
  const auto& final_cut = cl.client(1).stability_cut();
  for (std::size_t j = 0; j < honest_cut.size(); ++j) {
    EXPECT_GE(final_cut[j], honest_cut[j]);
  }
}

TEST(Integration, TwoClustersDoNotInterfere) {
  // Sanity for the harness itself: independent simulations are isolated
  // and deterministic — same seed, same outcome.
  // Fingerprint = (events executed, virtual end time of the last op,
  // bytes on the wire): a full execution signature.
  auto run = [](std::uint64_t seed) {
    ClusterConfig cfg;
    cfg.seed = seed;
    Cluster cl(cfg);
    cl.write(1, "x");
    cl.read(2, 1);
    const sim::Time op_end = cl.sched().now();
    cl.run_for(5'000);
    return std::tuple(cl.sched().executed(), op_end, cl.net().total().bytes);
  };
  const auto a = run(42);
  const auto b = run(43);
  const auto a2 = run(42);
  EXPECT_EQ(a, a2) << "determinism: same seed, same execution";
  EXPECT_NE(a, b) << "different seeds take different schedules";
}

}  // namespace
}  // namespace faust
