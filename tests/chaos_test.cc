// D10 network-chaos tests: seeded drop/duplication/reordering/latency
// storms and timed partitions over the scenario harness. The headline
// invariant throughout is Def. 5 accuracy — chaos is a TIMING fault, so
// no run here may ever fire fail_i — and the differential oracle: a run
// under any chaos schedule must converge to a merged view byte-identical
// to a chaos-free replay of the same seeds. Chaos changes when and how
// often messages arrive, never what the history means.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/runner.h"

namespace faust::scenario {
namespace {

struct TempDirFixture {
  std::string path;
  explicit TempDirFixture(const std::string& tag) {
    path = std::string(::testing::TempDir()) + "/faust_chaos_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDirFixture() { std::filesystem::remove_all(path); }
};

// Small seeded workload; retransmission ON (lossy fabrics require it;
// runner FAUST_CHECKs the combination) with a base comfortably above the
// chaos-free round trip, so re-sends only fire when something was lost.
ScenarioConfig chaos_base(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.workload.seed = seed;
  cfg.workload.n_keys = 5'000;
  cfg.workload.n_ops = 80;
  cfg.workload.n_writers = 2;
  cfg.shards = 2;
  cfg.cluster_seed = seed * 7 + 1;
  cfg.retransmit_base = 800;
  return cfg;
}

// --- Drop-probability sweep -------------------------------------------------

TEST(Chaos, DropSweepConvergesAndNeverFiresFailI) {
  // p ∈ {0, 0.01, 0.05, 0.2} × 3 seeds. The p=0 run of each seed IS the
  // chaos-free oracle; every lossy run must reproduce its digest exactly.
  const double probs[] = {0.01, 0.05, 0.2};
  std::uint64_t total_dropped = 0, total_retransmits = 0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const ScenarioResult clean = run_scenario(chaos_base(seed));
    ASSERT_TRUE(clean.complete) << "seed " << seed;
    ASSERT_FALSE(clean.any_failed);
    ASSERT_TRUE(clean.merged_complete);
    EXPECT_EQ(clean.chaos_dropped, 0u) << "no plan, no chaos draws";

    for (double p : probs) {
      ScenarioConfig cfg = chaos_base(seed);
      cfg.fault_plan.drop = p;
      const ScenarioResult r = run_scenario(cfg);
      ASSERT_TRUE(r.complete) << "seed " << seed << " drop " << p;
      EXPECT_FALSE(r.any_failed)
          << "loss is a timing fault; fail_i here is a false detection "
             "(seed " << seed << ", drop " << p << ")";
      ASSERT_TRUE(r.merged_complete);
      EXPECT_EQ(r.merged_digest, clean.merged_digest)
          << "seed " << seed << " drop " << p
          << ": lossy run diverged from the chaos-free replay";
      total_dropped += r.chaos_dropped;
      total_retransmits += r.retransmits;
    }
  }
  EXPECT_GT(total_dropped, 0u) << "the sweep must actually lose messages";
  EXPECT_GT(total_retransmits, 0u)
      << "recovery must come from client re-sends, not luck";
}

// --- Duplication and reordering ---------------------------------------------

TEST(Chaos, DuplicationAndReorderingAreInvisible) {
  // No loss, so no retransmission needed and stability converges to the
  // same cut: duplicates are absorbed by the server's exactly-once funnel
  // (duplicate_replies counts the cached re-sends) and by the client's
  // stale-reply drop; reordered SUBMIT/COMMITs ride the parking slot and
  // the monotone COMMIT gate. Durable shards, because duplicate_replies
  // is a durability counter (and the WAL path must absorb chaos too).
  TempDirFixture clean_dir("dup_clean");
  TempDirFixture noisy_dir("dup_noisy");
  ScenarioConfig cfg = chaos_base(4);
  cfg.retransmit_base = 0;  // reliable fabric: keep the seed-default timers
  cfg.dir = clean_dir.path;
  const ScenarioResult clean = run_scenario(cfg);
  ASSERT_TRUE(clean.complete);

  ScenarioConfig noisy = cfg;
  noisy.dir = noisy_dir.path;
  noisy.fault_plan.duplicate = 0.25;
  noisy.fault_plan.reorder = 0.3;
  const ScenarioResult r = run_scenario(noisy);
  ASSERT_TRUE(r.complete);
  EXPECT_FALSE(r.any_failed)
      << "a duplicated or overtaking message must never read as misbehavior";
  ASSERT_TRUE(r.merged_complete);
  EXPECT_EQ(r.merged_digest, clean.merged_digest);
  EXPECT_EQ(r.shard_stable, clean.shard_stable)
      << "nothing was lost, so the cuts must converge to the same place";
  EXPECT_GT(r.chaos_duplicated, 0u);
  EXPECT_GT(r.chaos_reordered, 0u);
  EXPECT_GT(r.duplicate_replies, 0u)
      << "duplicated SUBMITs must hit the server's reply cache in anger";
}

// --- Partitions ---------------------------------------------------------------

TEST(Chaos, AsymmetricPartitionHealsWithoutFalseFailure) {
  // One-way cut (client→server only) of shard 0 mid-run: requests vanish
  // into the cut, the op in flight stalls, and after the heal the client's
  // retransmission completes it exactly once. Then the same storm with a
  // symmetric cut. Both must match the partition-free replay.
  const ScenarioResult clean = run_scenario(chaos_base(5));
  ASSERT_TRUE(clean.complete);

  for (bool symmetric : {false, true}) {
    ScenarioConfig cfg = chaos_base(5);
    PartitionEvent part;
    part.at_op = 20;
    part.shard = 0;
    part.duration = 1'500;
    part.symmetric = symmetric;
    cfg.partitions = {part};
    const ScenarioResult r = run_scenario(cfg);
    ASSERT_TRUE(r.complete) << (symmetric ? "symmetric" : "asymmetric");
    EXPECT_FALSE(r.any_failed)
        << "an unreachable server is indistinguishable from a slow one "
           "and must never fire fail_i";
    ASSERT_TRUE(r.merged_complete);
    EXPECT_EQ(r.merged_digest, clean.merged_digest);
    EXPECT_GT(r.chaos_partition_dropped, 0u)
        << "the cut must actually swallow traffic";
    EXPECT_GT(r.retransmits, 0u);
  }
}

// --- Mid-run plan swaps -------------------------------------------------------

TEST(Chaos, MidRunPlanSwapsApplyPerShard) {
  // A storm with edges: chaos ON for shard 1 at op 10, OFF at op 50. The
  // differential holds across both transitions, and only shard 1's fabric
  // records drops.
  const ScenarioResult clean = run_scenario(chaos_base(6));
  ASSERT_TRUE(clean.complete);

  ScenarioConfig cfg = chaos_base(6);
  ChaosEvent on;
  on.at_op = 10;
  on.shard = 1;
  on.plan.drop = 0.15;
  on.plan.jitter = 5;
  ChaosEvent off;
  off.at_op = 50;
  off.shard = 1;
  off.plan = net::FaultPlan{};  // all-zero: chaos off
  cfg.chaos = {on, off};
  const ScenarioResult r = run_scenario(cfg);
  ASSERT_TRUE(r.complete);
  EXPECT_FALSE(r.any_failed);
  ASSERT_TRUE(r.merged_complete);
  EXPECT_EQ(r.merged_digest, clean.merged_digest);
  EXPECT_GT(r.chaos_dropped, 0u);
}

// --- The acceptance storm -----------------------------------------------------

TEST(Chaos, StormMatchesChaosFreeReplay) {
  // The D10 acceptance scenario, simulated side: S=3, 5% loss + jitter on
  // every shard for the whole run, one asymmetric partition mid-run. The
  // merged view is byte-identical to the chaos-free replay, no client
  // fires fail_i, and every resilience counter shows the machinery ran.
  TempDirFixture clean_dir("storm_clean");
  TempDirFixture storm_dir("storm");
  ScenarioConfig cfg;
  cfg.workload.seed = 909;
  cfg.workload.n_keys = 20'000;
  cfg.workload.n_ops = 120;
  cfg.workload.n_writers = 2;
  cfg.shards = 3;
  cfg.cluster_seed = 31;
  cfg.retransmit_base = 800;
  cfg.dir = clean_dir.path;  // durable: the WAL rides the storm too

  const ScenarioResult clean = run_scenario(cfg);
  ASSERT_TRUE(clean.complete);
  ASSERT_FALSE(clean.any_failed);

  ScenarioConfig storm = cfg;
  storm.dir = storm_dir.path;
  storm.fault_plan.drop = 0.05;
  storm.fault_plan.jitter = 8;
  PartitionEvent part;
  part.at_op = 40;
  part.shard = 1;
  part.duration = 2'000;
  part.symmetric = false;
  storm.partitions = {part};

  const ScenarioResult r = run_scenario(storm);
  ASSERT_TRUE(r.complete) << "every op must ride out the storm";
  EXPECT_FALSE(r.any_failed) << "zero false fail_i is the tentpole claim";
  ASSERT_TRUE(r.merged_complete);
  EXPECT_EQ(r.merged_digest, clean.merged_digest)
      << "the storm changed latency, not history";
  EXPECT_GT(r.chaos_dropped, 0u);
  EXPECT_GT(r.chaos_partition_dropped, 0u);
  EXPECT_GT(r.retransmits, 0u);
}

// --- Threaded-mode storm ------------------------------------------------------

TEST(Chaos, ThreadedStormMatchesDeterministicOracle) {
  // Real shard threads under loss: ops are driven to completion one at a
  // time, so conflict winners — and the merged view — match the
  // deterministic chaos-free oracle exactly, even though the storm itself
  // is not replayable across runs in this mode.
  ScenarioConfig cfg = chaos_base(8);
  cfg.workload.n_ops = 60;
  const ScenarioResult oracle = run_scenario(cfg);
  ASSERT_TRUE(oracle.complete);

  ScenarioConfig thr = cfg;
  thr.mode = shard::ExecMode::kThreaded;
  thr.fault_plan.drop = 0.05;
  thr.fault_plan.jitter = 5;
  const ScenarioResult r = run_scenario(thr);
  ASSERT_TRUE(r.complete);
  EXPECT_FALSE(r.any_failed);
  ASSERT_TRUE(r.merged_complete);
  EXPECT_EQ(r.merged_digest, oracle.merged_digest);
}

}  // namespace
}  // namespace faust::scenario
