// Baseline tests: the lock-step fork-linearizable protocol works but
// blocks (C3 of DESIGN.md — the paper's separation claim), and detects
// forged chains; the naive baseline detects nothing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/lockstep.h"
#include "baseline/naive.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"
#include "ustor/server.h"

namespace faust::baseline {
namespace {

constexpr int kN = 3;

struct LockStepFixture : ::testing::Test {
  sim::Scheduler sched;
  net::Network net{sched, Rng(17), net::DelayModel{3, 9}};
  std::shared_ptr<const crypto::SignatureScheme> sigs = crypto::make_hmac_scheme(kN);
  LockStepServer server{kN, net};
  std::vector<std::unique_ptr<LockStepClient>> clients;

  void SetUp() override {
    for (ClientId i = 1; i <= kN; ++i) {
      clients.push_back(std::make_unique<LockStepClient>(i, kN, sigs, net));
    }
  }

  LockStepClient& c(ClientId i) { return *clients[static_cast<std::size_t>(i - 1)]; }

  bool write(ClientId i, std::string_view v) {
    bool done = false;
    c(i).write(to_bytes(v), [&] { done = true; });
    while (!done && sched.step()) {
    }
    return done;
  }

  std::pair<bool, ustor::Value> read(ClientId i, ClientId j) {
    bool done = false;
    ustor::Value out;
    c(i).read(j, [&](const ustor::Value& v) {
      out = v;
      done = true;
    });
    while (!done && sched.step()) {
    }
    return {done, out};
  }
};

TEST_F(LockStepFixture, SequentialSemanticsCorrect) {
  ASSERT_TRUE(write(1, "a"));
  auto [ok, v] = read(2, 1);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "a");
  ASSERT_TRUE(write(1, "b"));
  auto [ok2, v2] = read(3, 1);
  ASSERT_TRUE(ok2);
  EXPECT_EQ(to_string(*v2), "b");
  sched.run();  // drain the final COMMIT
  EXPECT_EQ(server.chain_length(), 4u);
}

TEST_F(LockStepFixture, UnwrittenRegisterReadsBottom) {
  auto [ok, v] = read(1, 2);
  ASSERT_TRUE(ok);
  EXPECT_FALSE(v.has_value());
}

TEST_F(LockStepFixture, ConcurrentOpsSerializeThroughTheLock) {
  int done = 0;
  c(1).write(to_bytes("x"), [&] { ++done; });
  c(2).read(1, [&](const ustor::Value&) { ++done; });
  c(3).read(1, [&](const ustor::Value&) { ++done; });
  // While the first grant is outstanding, the others must be queued.
  sched.run_until(sched.now() + 4);  // one delivery's worth of time
  EXPECT_LE(done, 1);
  sched.run();
  EXPECT_EQ(done, 3);  // all complete eventually — but serially
}

TEST_F(LockStepFixture, CrashedClientBlocksEveryoneForever) {
  // The impossibility the paper exploits (§1): C1 crashes inside its
  // critical window and the whole system wedges.
  c(1).set_crash_on_grant(true);
  c(1).write(to_bytes("doomed"), [] { FAIL() << "crashed client completed?"; });

  bool c2_done = false;
  c(2).read(1, [&](const ustor::Value&) { c2_done = true; });
  bool c3_done = false;
  c(3).write(to_bytes("stuck"), [&] { c3_done = true; });

  sched.run();  // drain the entire simulation
  EXPECT_FALSE(c2_done) << "fork-linearizable baseline is not wait-free";
  EXPECT_FALSE(c3_done);
  EXPECT_TRUE(server.grant_outstanding());
  EXPECT_EQ(server.queued(), 2u);
}

TEST_F(LockStepFixture, UstorCompletesInTheSameScenario) {
  // Control group: USTOR under the identical crash pattern stays live.
  sim::Scheduler sched2;
  net::Network net2(sched2, Rng(17), net::DelayModel{3, 9});
  auto sigs2 = crypto::make_hmac_scheme(kN);
  ustor::Server server2(kN, net2);
  ustor::Client u1(1, kN, sigs2, net2);
  ustor::Client u2(2, kN, sigs2, net2);
  ustor::Client u3(3, kN, sigs2, net2);

  u1.writex(to_bytes("doomed"), [](const ustor::WriteResult&) {});
  sched2.run_until(sched2.now() + 9);  // SUBMIT delivered
  net2.crash(1);                       // crash before COMMIT

  bool c2_done = false, c3_done = false;
  u2.readx(1, [&](const ustor::ReadResult&) { c2_done = true; });
  u3.writex(to_bytes("fine"), [&](const ustor::WriteResult&) { c3_done = true; });
  sched2.run();
  EXPECT_TRUE(c2_done) << "USTOR is wait-free";
  EXPECT_TRUE(c3_done);
  EXPECT_FALSE(u2.failed());
  EXPECT_FALSE(u3.failed());
}

TEST_F(LockStepFixture, ForgedChainEntryDetected) {
  // A Byzantine lock-step server rewriting history is caught by the chain
  // signatures during replay.
  ASSERT_TRUE(write(1, "real"));

  // Hand-craft a grant with a forged entry for C2 (the test plays server,
  // delivering it via on_message directly).
  ChainEntry forged;
  forged.client = 1;
  forged.oc = ustor::OpCode::kWrite;
  forged.target = 1;
  forged.value = to_bytes("forged");
  forged.commit_sig = to_bytes("not a real signature");
  LsGrant grant;
  grant.base_seq = 0;
  grant.delta = {forged};

  bool failed = false;
  c(2).on_fail = [&] { failed = true; };
  bool completed = false;
  c(2).read(1, [&](const ustor::Value&) { completed = true; });
  // Deliver the forged grant straight to C2, impersonating the server.
  c(2).on_message(kServerNode, encode(grant));
  EXPECT_TRUE(failed);
  EXPECT_FALSE(completed);
  EXPECT_TRUE(c(2).failed());
}

TEST_F(LockStepFixture, GrantWithWrongBaseRejected) {
  ASSERT_TRUE(write(1, "a"));
  bool failed = false;
  c(2).on_fail = [&] { failed = true; };
  c(2).read(1, [](const ustor::Value&) {});
  LsGrant grant;
  grant.base_seq = 42;  // nonsense base
  c(2).on_message(kServerNode, encode(grant));
  EXPECT_TRUE(failed);
}

TEST(LockStepMessages, Roundtrip) {
  ChainEntry e;
  e.client = 2;
  e.oc = ustor::OpCode::kWrite;
  e.target = 2;
  e.value = to_bytes("val");
  e.commit_sig = to_bytes("sig");
  LsGrant g;
  g.base_seq = 7;
  g.delta = {e};
  const auto back = decode_ls_grant(encode(g));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->base_seq, 7u);
  ASSERT_EQ(back->delta.size(), 1u);
  EXPECT_EQ(back->delta[0].value, e.value);

  EXPECT_TRUE(decode_ls_request(encode(LsRequest{3})).has_value());
  EXPECT_TRUE(decode_ls_commit(encode(LsCommit{e})).has_value());
  EXPECT_FALSE(decode_ls_grant(encode(LsRequest{3})).has_value());
}

TEST(Naive, NoIntegrityWhatsoever) {
  sim::Scheduler sched;
  net::Network net(sched, Rng(9), net::DelayModel{1, 2});
  NaiveServer server(2, net);
  NaiveClient c1(1, 2, net);
  NaiveClient c2(2, 2, net);

  bool wrote = false;
  c1.write(to_bytes("truth"), [&] { wrote = true; });
  sched.run();
  ASSERT_TRUE(wrote);

  server.lie_about(1, to_bytes("lie"));
  ustor::Value got;
  c2.read(1, [&](const ustor::Value& v) { got = v; });
  sched.run();
  EXPECT_EQ(to_string(*got), "lie");

  server.lie_about(1, std::nullopt);  // even unwriting is possible
  ustor::Value got2 = to_bytes("sentinel");
  c2.read(1, [&](const ustor::Value& v) { got2 = v; });
  sched.run();
  EXPECT_FALSE(got2.has_value());
}

}  // namespace
}  // namespace faust::baseline
