// Multi-threaded runtime tests: the same USTOR protocol objects that run
// under the simulator run under real preemptive concurrency on
// rt::ThreadBus, and the resulting histories are still linearizable.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "checker/history.h"
#include "checker/linearizability.h"
#include "crypto/signature.h"
#include "rt/thread_bus.h"
#include "ustor/client.h"
#include "ustor/server.h"

namespace faust::rt {
namespace {

/// Simple echo node for bus-level tests.
class Echo : public net::Node {
 public:
  explicit Echo(ThreadBus& bus) : bus_(bus) {}
  void on_message(NodeId from, BytesView msg) override {
    ++received;
    if (!msg.empty() && msg[0] == 'p') {  // ping -> pong
      bus_.send(2, from, to_bytes("q"));
    }
  }
  ThreadBus& bus_;
  std::atomic<int> received{0};
};

TEST(ThreadBus, DeliversAndEchoes) {
  ThreadBus bus;
  Echo a(bus), b(bus);
  bus.attach(1, a);
  bus.attach(2, b);
  for (int k = 0; k < 100; ++k) bus.send(1, 2, to_bytes("p"));
  bus.drain();
  EXPECT_EQ(b.received.load(), 100);
  EXPECT_EQ(a.received.load(), 100);  // 100 pongs
  bus.stop();
}

TEST(ThreadBus, FifoPerSenderReceiverPair) {
  ThreadBus bus;
  class Collector : public net::Node {
   public:
    void on_message(NodeId, BytesView msg) override {
      std::lock_guard lock(mu);
      got.push_back(msg[0]);
    }
    std::mutex mu;
    std::vector<std::uint8_t> got;
  } sink;
  class Dummy : public net::Node {
    void on_message(NodeId, BytesView) override {}
  } src;
  bus.attach(1, src);
  bus.attach(2, sink);
  for (int k = 0; k < 200; ++k) bus.send(1, 2, Bytes{static_cast<std::uint8_t>(k)});
  bus.drain();
  ASSERT_EQ(sink.got.size(), 200u);
  for (int k = 0; k < 200; ++k) EXPECT_EQ(sink.got[static_cast<std::size_t>(k)], k % 256);
  bus.stop();
}

TEST(ThreadBus, SendToUnknownNodeIsDropped) {
  ThreadBus bus;
  bus.send(1, 99, to_bytes("void"));
  bus.drain();
  EXPECT_EQ(bus.delivered(), 0u);
  EXPECT_EQ(bus.channel(1, 99).messages, 0u)
      << "a message no channel accepted is not counted";
}

TEST(ThreadBus, PerChannelCountersMirrorNetworkAccounting) {
  // The (from,to)×type counters net::Network keeps must behave
  // identically on the threaded fabric — byte accounting (cache-on vs
  // cache-off comparisons, per-hop traffic attribution) cannot depend on
  // the execution mode.
  ThreadBus bus;
  class Sink : public net::Node {
    void on_message(NodeId, BytesView) override {}
  } a, b;
  bus.attach(1, a);
  bus.attach(2, b);

  // Tag 3 messages of 5 bytes 1->2; tag 7 messages of 9 bytes 2->1.
  for (int k = 0; k < 4; ++k) bus.send(1, 2, Bytes{3, 0, 0, 0, 0});
  for (int k = 0; k < 2; ++k) bus.send(2, 1, Bytes{7, 0, 0, 0, 0, 0, 0, 0, 0});
  bus.drain();

  const net::ChannelStats fwd = bus.channel(1, 2);
  EXPECT_EQ(fwd.messages, 4u);
  EXPECT_EQ(fwd.bytes, 20u);
  const net::ChannelStats rev = bus.channel(2, 1);
  EXPECT_EQ(rev.messages, 2u);
  EXPECT_EQ(rev.bytes, 18u);
  EXPECT_EQ(bus.channel(2, 2).messages, 0u) << "untouched channels read zero";

  // Type bucketing per channel, and its consistency with the aggregates.
  EXPECT_EQ(bus.channel_for(1, 2, 3).messages, 4u);
  EXPECT_EQ(bus.channel_for(1, 2, 7).messages, 0u);
  EXPECT_EQ(bus.channel_for(2, 1, 7).bytes, 18u);
  EXPECT_EQ(bus.total().messages, 6u);
  EXPECT_EQ(bus.total().bytes, 38u);
  EXPECT_EQ(bus.total_for(3).messages, 4u);
  EXPECT_EQ(bus.total_for(7).messages, 2u);
  bus.stop();
}

TEST(ThreadBus, AttachAfterTrafficHasStartedIsSafe) {
  // Regression for the historical attach-vs-send contract ("attach
  // everything first"): attaching a node while other threads are already
  // hammering the bus must be safe. Messages sent before the attach are
  // dropped like any unknown-destination send; everything sent after the
  // attach returns must be delivered.
  ThreadBus bus;
  class Counter : public net::Node {
   public:
    void on_message(NodeId, BytesView) override { ++received; }
    std::atomic<int> received{0};
  } early, late;
  bus.attach(1, early);

  std::atomic<bool> stop_producers{false};
  std::atomic<int> sent_to_2_after_attach{0};
  std::atomic<bool> attached_2{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&] {
      while (!stop_producers.load(std::memory_order_acquire)) {
        bus.send(1, 1, to_bytes("x"));
        // Sample the flag BEFORE sending: only a send that *began* after
        // the attach completed is guaranteed delivery.
        const bool counted = attached_2.load(std::memory_order_acquire);
        bus.send(1, 2, to_bytes("y"));  // unknown at first, then live
        if (counted) sent_to_2_after_attach.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let traffic flow, then attach node 2 mid-fire.
  while (early.received.load() < 200) std::this_thread::yield();
  bus.attach(2, late);
  attached_2.store(true, std::memory_order_release);
  while (sent_to_2_after_attach.load() < 200) std::this_thread::yield();
  stop_producers.store(true, std::memory_order_release);
  for (auto& p : producers) p.join();
  bus.drain();
  bus.stop();

  // Every send that *began* after the attach returned must have landed;
  // racing sends may add more on top, never fewer.
  EXPECT_GE(late.received.load(), sent_to_2_after_attach.load());
  EXPECT_GT(early.received.load(), 0);
}

TEST(ThreadBus, DetachUnderFireDropsButNeverCrashes) {
  // The other half of the hardening: a sender that resolved the box keeps
  // it alive (shared ownership), so detach while sends are in flight
  // drops messages instead of freeing state under the sender.
  for (int round = 0; round < 20; ++round) {
    ThreadBus bus;
    class Sink : public net::Node {
     public:
      void on_message(NodeId, BytesView) override { ++received; }
      std::atomic<int> received{0};
    } sink;
    bus.attach(7, sink);
    std::atomic<bool> stop{false};
    std::thread producer([&] {
      while (!stop.load(std::memory_order_acquire)) bus.send(1, 7, to_bytes("m"));
    });
    while (sink.received.load() == 0) std::this_thread::yield();
    bus.detach(7);  // mid-fire
    stop.store(true, std::memory_order_release);
    producer.join();
    bus.stop();
  }
  SUCCEED();
}

TEST(ThreadBus, StopIsIdempotentAndJoins) {
  ThreadBus bus;
  Echo a(bus);
  bus.attach(1, a);
  bus.stop();
  bus.stop();
  SUCCEED();
}

/// Drives one client's sequential op stream from completion callbacks
/// (each client's protocol code runs on its own delivery thread).
struct ThreadedClientDriver {
  ustor::Client* client;
  int remaining = 0;
  std::atomic<int>* done_counter;
  std::condition_variable* done_cv;
  std::mutex* done_mu;
  checker::HistoryRecorder* recorder;
  std::mutex* recorder_mu;
  int n = 0;
  int op_index = 0;

  static sim::Time now_ns() {
    return static_cast<sim::Time>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void next() {
    if (remaining == 0) {
      std::lock_guard lock(*done_mu);
      done_counter->fetch_add(1);
      done_cv->notify_all();
      return;
    }
    --remaining;
    const int k = op_index++;
    if (k % 2 == 0) {
      const std::string v =
          "c" + std::to_string(client->id()) + "-" + std::to_string(k);
      int rec;
      {
        std::lock_guard lock(*recorder_mu);
        rec = recorder->begin(client->id(), ustor::OpCode::kWrite, client->id(),
                              to_bytes(v), now_ns());
      }
      client->writex(to_bytes(v), [this, rec](const ustor::WriteResult& r) {
        {
          std::lock_guard lock(*recorder_mu);
          recorder->end(rec, now_ns(), r.t);
        }
        next();
      });
    } else {
      const ClientId j = (k % n) + 1;
      int rec;
      {
        std::lock_guard lock(*recorder_mu);
        rec = recorder->begin(client->id(), ustor::OpCode::kRead, j, std::nullopt, now_ns());
      }
      client->readx(j, [this, rec](const ustor::ReadResult& r) {
        {
          std::lock_guard lock(*recorder_mu);
          recorder->end(rec, now_ns(), r.t, r.value);
        }
        next();
      });
    }
  }
};

TEST(ThreadedUstor, ConcurrentClientsStayLinearizable) {
  constexpr int kN = 4;
  constexpr int kOpsPerClient = 25;

  ThreadBus bus;
  auto sigs = crypto::make_hmac_scheme(kN);
  ustor::Server server(kN, bus);
  std::vector<std::unique_ptr<ustor::Client>> clients;
  for (ClientId i = 1; i <= kN; ++i) {
    clients.push_back(std::make_unique<ustor::Client>(i, kN, sigs, bus));
  }

  checker::HistoryRecorder recorder;
  std::mutex recorder_mu, done_mu;
  std::condition_variable done_cv;
  std::atomic<int> done_count{0};

  std::vector<ThreadedClientDriver> drivers(kN);
  for (int i = 0; i < kN; ++i) {
    drivers[static_cast<std::size_t>(i)] =
        ThreadedClientDriver{clients[static_cast<std::size_t>(i)].get(), kOpsPerClient,
                             &done_count, &done_cv, &done_mu, &recorder, &recorder_mu, kN, 0};
  }
  // Kick off all clients; everything after the first op runs on the
  // clients' delivery threads, genuinely concurrently.
  for (auto& d : drivers) d.next();

  {
    std::unique_lock lock(done_mu);
    const bool finished = done_cv.wait_for(lock, std::chrono::seconds(30),
                                           [&] { return done_count.load() == kN; });
    ASSERT_TRUE(finished) << "threaded workload timed out";
  }
  bus.drain();
  bus.stop();

  for (const auto& c : clients) {
    EXPECT_FALSE(c->failed());
    EXPECT_EQ(c->completed_ops(), kOpsPerClient);
  }
  // The real-time-stamped history from real threads passes the same
  // checker as the simulated histories.
  const auto res = checker::check_linearizable(recorder.history());
  EXPECT_TRUE(res.ok) << res.violation;
  EXPECT_EQ(recorder.history().size(), static_cast<std::size_t>(kN * kOpsPerClient));
}

TEST(ThreadedUstor, ValuesFlowAcrossThreads) {
  ThreadBus bus;
  auto sigs = crypto::make_hmac_scheme(2);
  ustor::Server server(2, bus);
  ustor::Client c1(1, 2, sigs, bus);
  ustor::Client c2(2, 2, sigs, bus);

  std::mutex mu;
  std::condition_variable cv;
  bool wrote = false;
  ustor::Value read_value;
  bool read_done = false;

  c1.writex(to_bytes("threaded!"), [&](const ustor::WriteResult&) {
    std::lock_guard lock(mu);
    wrote = true;
    cv.notify_all();
  });
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] { return wrote; }));
  }
  c2.readx(1, [&](const ustor::ReadResult& r) {
    std::lock_guard lock(mu);
    read_value = r.value;
    read_done = true;
    cv.notify_all();
  });
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] { return read_done; }));
  }
  bus.stop();
  ASSERT_TRUE(read_value.has_value());
  EXPECT_EQ(to_string(*read_value), "threaded!");
}

}  // namespace
}  // namespace faust::rt
