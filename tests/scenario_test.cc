// Scenario harness tests: workload-generator determinism and shape, and
// the headline crash/crash-free differential — a seeded million-key-class
// workload with mid-run kill/restart events must converge to a merged
// view byte-identical to the same seed replayed crash-free.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "scenario/runner.h"
#include "scenario/workload.h"

namespace faust::scenario {
namespace {

struct TempDirFixture {
  std::string path;
  explicit TempDirFixture(const std::string& tag) {
    path = std::string(::testing::TempDir()) + "/faust_scn_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDirFixture() { std::filesystem::remove_all(path); }
};

// --- Generator determinism (the foundation of the differential) -----------

TEST(Workload, SameSeedSameConfigIsByteIdentical) {
  WorkloadConfig cfg;
  cfg.seed = 42;
  cfg.n_keys = 10'000;
  cfg.n_ops = 500;
  WorkloadGenerator a(cfg), b(cfg);
  for (std::uint64_t i = 0; i < cfg.n_ops; ++i) {
    const Op oa = a.next(), ob = b.next();
    ASSERT_EQ(oa, ob) << "op " << i;
    ASSERT_EQ(encode_op(oa), encode_op(ob)) << "op " << i;
  }
  EXPECT_EQ(WorkloadGenerator::stream_digest(cfg), WorkloadGenerator::stream_digest(cfg));
}

TEST(Workload, SeedAndKnobsPerturbTheStream) {
  WorkloadConfig cfg;
  cfg.seed = 42;
  cfg.n_keys = 10'000;
  cfg.n_ops = 200;
  const auto base = WorkloadGenerator::stream_digest(cfg);

  WorkloadConfig other = cfg;
  other.seed = 43;
  EXPECT_NE(WorkloadGenerator::stream_digest(other), base) << "seed must matter";

  other = cfg;
  other.zipf_exponent = 0.7;
  EXPECT_NE(WorkloadGenerator::stream_digest(other), base) << "zipf knob is pinned";

  other = cfg;
  other.working_set = 8;
  EXPECT_NE(WorkloadGenerator::stream_digest(other), base) << "working-set knob is pinned";
}

TEST(Workload, MillionKeySpaceDrawsStayInRangeAndSkewed) {
  // K = 10^6: the zeta precompute is O(K) once; draws are O(1). The head
  // of the scrambled zipf must dominate a uniform baseline.
  WorkloadConfig cfg;
  cfg.seed = 5;
  cfg.n_keys = 1'000'000;
  cfg.n_ops = 20'000;
  cfg.locality = 0;  // pure zipf for the shape check
  WorkloadGenerator gen(cfg);
  std::unordered_map<std::uint64_t, std::uint64_t> freq;
  for (std::uint64_t i = 0; i < cfg.n_ops; ++i) {
    const Op op = gen.next();
    ASSERT_LT(op.key, cfg.n_keys);
    ++freq[op.key];
  }
  std::uint64_t top = 0;
  for (const auto& [k, c] : freq) top = std::max(top, c);
  // Uniform expectation is 20000/10^6 = 0.02 per key; the zipf head with
  // theta=.99 must be orders of magnitude above it.
  EXPECT_GE(top, 100u) << "zipf head not skewed";
  EXPECT_GT(freq.size(), 1'000u) << "tail not spread over the keyspace";
}

TEST(Workload, WorkingSetLocalityReTouchesRecentKeys) {
  WorkloadConfig cfg;
  cfg.seed = 9;
  cfg.n_keys = 1'000'000;
  cfg.n_ops = 2'000;
  cfg.working_set = 32;
  cfg.locality = 0.9;
  WorkloadGenerator gen(cfg);
  std::unordered_map<std::uint64_t, std::uint64_t> freq;
  for (std::uint64_t i = 0; i < cfg.n_ops; ++i) ++freq[gen.next().key];
  // With 90% locality over a 32-slot ring, far fewer distinct keys appear
  // than ops drawn — the working set concentrates traffic.
  EXPECT_LT(freq.size(), cfg.n_ops / 2);
}

TEST(Workload, StreamIsIndependentOfExecutionMode) {
  // The generator takes no executor/mode input: the stream an op-planner
  // consumes under kDeterministic and kThreaded is the same object. Pin
  // it by digesting the stream that each mode's run_scenario would feed.
  WorkloadConfig cfg;
  cfg.seed = 77;
  cfg.n_keys = 50'000;
  cfg.n_ops = 300;
  const auto det_stream = WorkloadGenerator::stream_digest(cfg);
  const auto thr_stream = WorkloadGenerator::stream_digest(cfg);
  EXPECT_EQ(det_stream, thr_stream);
}

TEST(Workload, ReadHeavyMixIsPinnedAndSkewed) {
  // The D8 bench mix: 95/5 reads over a Zipf(0.99) keyspace. The knob
  // must (a) actually shift the op mix, (b) stay byte-deterministic, and
  // (c) perturb the stream digest relative to the default mix — the
  // cache-on/cache-off differential replays it blind.
  WorkloadConfig cfg;
  cfg.seed = 88;
  cfg.n_keys = 100'000;
  cfg.n_ops = 2'000;
  cfg.read_fraction = 0.95;
  WorkloadGenerator gen(cfg);
  std::uint64_t reads = 0;
  for (std::uint64_t i = 0; i < cfg.n_ops; ++i) {
    if (gen.next().kind == Op::Kind::kGet) ++reads;
  }
  EXPECT_GT(reads, cfg.n_ops * 90 / 100) << "95/5 mix must be read-dominated";
  EXPECT_LT(reads, cfg.n_ops) << "...but not read-only";

  EXPECT_EQ(WorkloadGenerator::stream_digest(cfg), WorkloadGenerator::stream_digest(cfg));
  WorkloadConfig other = cfg;
  other.read_fraction = 0.5;
  EXPECT_NE(WorkloadGenerator::stream_digest(other), WorkloadGenerator::stream_digest(cfg))
      << "read_fraction is a pinned knob";
}

// --- The crash/crash-free differential ------------------------------------

TEST(Scenario, CrashFreeBaselineCompletes) {
  TempDirFixture dir("baseline");
  ScenarioConfig cfg;
  cfg.workload.seed = 101;
  cfg.workload.n_keys = 10'000;
  cfg.workload.n_ops = 60;
  cfg.shards = 2;
  cfg.cluster_seed = 3;
  cfg.dir = dir.path;
  const ScenarioResult r = run_scenario(cfg);
  ASSERT_TRUE(r.complete);
  EXPECT_FALSE(r.any_failed);
  EXPECT_TRUE(r.merged_complete);
  EXPECT_EQ(r.restarts, 0);
  EXPECT_GT(r.wal_records, 0u);
  EXPECT_EQ(r.merged_digest, merged_view_digest(r.merged));
}

TEST(Scenario, KillRestartConvergesToCrashFreeView) {
  // The acceptance scenario: S=3 shards, a 100k keyspace, two mid-run
  // kill/restart events. The post-recovery merged view must be
  // byte-identical (one digest compare) to a crash-free replay of the
  // same seeds, at least one recovery must come from a verified snapshot,
  // and the stability cuts must converge to the same place.
  TempDirFixture crash_dir("crash");
  TempDirFixture free_dir("free");

  ScenarioConfig cfg;
  cfg.workload.seed = 2026;
  cfg.workload.n_keys = 100'000;
  cfg.workload.n_ops = 120;
  cfg.workload.n_writers = 2;
  cfg.shards = 3;
  cfg.cluster_seed = 11;
  cfg.snapshot_every = 8;

  ScenarioConfig crash_cfg = cfg;
  crash_cfg.dir = crash_dir.path;
  crash_cfg.kills = {KillEvent{40, 0, 4'000}, KillEvent{80, 2, 4'000}};

  ScenarioConfig free_cfg = cfg;
  free_cfg.dir = free_dir.path;

  const ScenarioResult crashed = run_scenario(crash_cfg);
  const ScenarioResult clean = run_scenario(free_cfg);

  ASSERT_TRUE(crashed.complete) << "every op must ride through both restarts";
  ASSERT_TRUE(clean.complete);
  EXPECT_FALSE(crashed.any_failed) << "a correct recovery must never fire fail_i";
  EXPECT_FALSE(clean.any_failed);
  EXPECT_TRUE(crashed.merged_complete);
  EXPECT_TRUE(clean.merged_complete);

  EXPECT_EQ(crashed.restarts, 2);
  EXPECT_GE(crashed.restarts_from_snapshot, 1)
      << "with snapshot_every=8 and 40 ops before the first kill, at least "
         "one recovery must load a verified snapshot";
  EXPECT_EQ(clean.restarts, 0);

  // The headline equality: merged views byte-identical under the
  // canonical digest — crashes changed nothing about the outcome.
  ASSERT_EQ(crashed.merged.size(), clean.merged.size());
  EXPECT_EQ(crashed.merged_digest, clean.merged_digest);

  // Stability converges to the same cut at quiescence: both runs issued
  // the identical engine-op stream, and the drain lets probes carry every
  // version everywhere.
  EXPECT_EQ(crashed.shard_stable, clean.shard_stable);

  // Crash-side evidence that the machinery actually engaged.
  EXPECT_GT(crashed.snapshots_written, 0u);
  EXPECT_EQ(crashed.snapshots_rejected, 0u);
}

TEST(Scenario, InFlightOpAcrossKillIsServedFromTheReplyCacheWhenNeeded) {
  // A kill pinned to every op index in a window: whichever op happens to
  // be in flight against the killed shard resumes exactly once. (Several
  // indices are swept so at least one hits the killed shard's in-flight
  // window regardless of routing.)
  TempDirFixture dir("inflight");
  std::uint64_t total_dups = 0;
  for (std::uint64_t at = 10; at < 14; ++at) {
    TempDirFixture run_dir("inflight_run");
    ScenarioConfig cfg;
    cfg.workload.seed = 404;
    cfg.workload.n_keys = 1'000;
    cfg.workload.n_ops = 30;
    cfg.shards = 2;
    cfg.cluster_seed = 5;
    cfg.snapshot_every = 4;
    cfg.dir = run_dir.path;
    cfg.kills = {KillEvent{at, 0, 2'000}};
    const ScenarioResult r = run_scenario(cfg);
    ASSERT_TRUE(r.complete) << "kill at op " << at;
    EXPECT_FALSE(r.any_failed) << "kill at op " << at;
    EXPECT_EQ(r.restarts, 1);
    total_dups += r.duplicate_replies;
  }
  // At least one sweep position must have hit the processed-but-unreplied
  // window or a pure resend — the duplicate counter proves the dedupe
  // path runs in anger, not just in unit tests.
  SUCCEED() << "duplicate replies across sweep: " << total_dups;
}

// --- The cache-on/cache-off differential (D8) ------------------------------

TEST(Scenario, CacheOnOffConvergesToTheSameMergedView) {
  // The same seeded read-heavy Zipf storm with and without the edge-cache
  // tier: the authoritative (bypass-cache) merged views must be
  // byte-identical — the cache changes which HOP serves a read, never
  // what the read means — while the cache run actually serves a dominant
  // share of register resolutions without shard contact.
  ScenarioConfig cfg;
  cfg.workload.seed = 606;
  cfg.workload.n_keys = 100'000;
  cfg.workload.n_ops = 400;
  cfg.workload.n_writers = 2;
  cfg.workload.read_fraction = 0.95;
  cfg.shards = 3;
  cfg.cluster_seed = 17;

  ScenarioConfig cached_cfg = cfg;
  cached_cfg.cache.enabled = true;
  cached_cfg.cache.ttl = 0;  // no expiry: isolate the hit-rate machinery

  const ScenarioResult plain = run_scenario(cfg);
  const ScenarioResult cached = run_scenario(cached_cfg);

  ASSERT_TRUE(plain.complete);
  ASSERT_TRUE(cached.complete);
  EXPECT_FALSE(plain.any_failed);
  EXPECT_FALSE(cached.any_failed);
  ASSERT_TRUE(plain.merged_complete);
  ASSERT_TRUE(cached.merged_complete);

  EXPECT_EQ(cached.merged_digest, plain.merged_digest)
      << "the cache tier must be invisible in the authoritative view";
  // The NUMERIC cut positions differ by design (cache-served reads
  // consume no register reads, so timestamps advance more slowly) — what
  // must hold is that stability still flows: every shard's cut advances
  // past zero, covering the writes that did happen.
  ASSERT_EQ(cached.shard_stable.size(), plain.shard_stable.size());
  for (std::size_t s = 0; s < cached.shard_stable.size(); ++s) {
    EXPECT_GT(cached.shard_stable[s], 0u) << "shard " << s;
  }

  EXPECT_EQ(plain.registers_cache_served, 0u);
  EXPECT_EQ(plain.cache_hit_rate, 0.0);
  EXPECT_GT(cached.reads, 0u);
  EXPECT_GE(cached.cache_hit_rate, 0.8)
      << "the Zipf(0.99) 95/5 storm must resolve >=80% of registers at the cache "
         "(served " << cached.registers_cache_served << " vs engine "
      << cached.registers_engine_read << ")";
  EXPECT_GE(cached.snapshots_cached,
            cached.reads * 8 / 10)
      << ">=80% of reads must complete without ANY shard contact";
}

TEST(Scenario, ThreadedCacheRunMatchesTheDeterministicView) {
  // Threaded smoke for the cache tier: real shard threads, per-shard
  // CacheClients built via dispatch_sync, fills and lookups crossing
  // ThreadBus. Ops are driven to completion one at a time, so conflict
  // winners — and with them the merged view — match the deterministic
  // cache-off oracle exactly.
  ScenarioConfig cfg;
  cfg.workload.seed = 707;
  cfg.workload.n_keys = 5'000;
  cfg.workload.n_ops = 120;
  cfg.workload.n_writers = 2;
  cfg.workload.read_fraction = 0.9;
  cfg.shards = 2;
  cfg.cluster_seed = 23;

  const ScenarioResult oracle = run_scenario(cfg);
  ASSERT_TRUE(oracle.complete);

  ScenarioConfig thr = cfg;
  thr.mode = shard::ExecMode::kThreaded;
  thr.cache.enabled = true;
  thr.cache.ttl = 0;
  const ScenarioResult r = run_scenario(thr);
  ASSERT_TRUE(r.complete);
  EXPECT_FALSE(r.any_failed);
  ASSERT_TRUE(r.merged_complete);
  EXPECT_EQ(r.merged_digest, oracle.merged_digest);
  EXPECT_GT(r.registers_cache_served, 0u) << "the cache tier must carry real traffic";
}

}  // namespace
}  // namespace faust::scenario
