// Property-based tests, parameterized over seeds: randomized concurrent
// workloads against a correct server are wait-free and linearizable
// (Def. 5 items 1–2), timestamps respect Integrity (item 4), histories
// are causally consistent (item 3), and random fork injections are always
// detected (item 7) and never falsely reported (item 5).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adversary/forking_server.h"
#include "checker/causal.h"
#include "checker/linearizability.h"
#include "common/rng.h"
#include "faust/cluster.h"

namespace faust {
namespace {

/// Asynchronous random workload: each client issues a random op stream
/// with random think times, all recorded for the checkers.
class Workload {
 public:
  Workload(Cluster& cl, std::uint64_t seed, int ops_per_client)
      : cl_(cl), rng_(seed), remaining_(static_cast<std::size_t>(cl.n()) + 1, ops_per_client) {}

  void start() {
    for (ClientId i = 1; i <= cl_.n(); ++i) schedule_next(i);
  }

  bool all_issued_completed() const { return issued_ == completed_; }
  int issued() const { return issued_; }
  int completed() const { return completed_; }

  /// Per-client user-op timestamps in completion order (Integrity check).
  const std::vector<std::vector<Timestamp>>& timestamps() const { return ts_; }

 private:
  void schedule_next(ClientId i) {
    if (remaining_[static_cast<std::size_t>(i)] <= 0) return;
    remaining_[static_cast<std::size_t>(i)] -= 1;
    cl_.sched().after(rng_.next_in(1, 40), [this, i] { issue(i); });
  }

  void issue(ClientId i) {
    if (cl_.client(i).failed()) return;
    ++issued_;
    if (ts_.size() < static_cast<std::size_t>(cl_.n()) + 1) {
      ts_.resize(static_cast<std::size_t>(cl_.n()) + 1);
    }
    if (rng_.chance(0.5)) {
      const std::string v = "c" + std::to_string(i) + "-" + std::to_string(++write_counter_);
      const int rec = cl_.recorder().begin(i, ustor::OpCode::kWrite, i, to_bytes(v),
                                           cl_.sched().now());
      cl_.client(i).write(to_bytes(v), [this, i, rec](Timestamp t) {
        cl_.recorder().end(rec, cl_.sched().now(), t);
        ts_[static_cast<std::size_t>(i)].push_back(t);
        ++completed_;
        schedule_next(i);
      });
    } else {
      const ClientId j =
          1 + static_cast<ClientId>(rng_.next_below(static_cast<std::uint64_t>(cl_.n())));
      const int rec =
          cl_.recorder().begin(i, ustor::OpCode::kRead, j, std::nullopt, cl_.sched().now());
      cl_.client(i).read(j, [this, i, rec](const ustor::Value& v, Timestamp t) {
        cl_.recorder().end(rec, cl_.sched().now(), t, v);
        ts_[static_cast<std::size_t>(i)].push_back(t);
        ++completed_;
        schedule_next(i);
      });
    }
  }

  Cluster& cl_;
  Rng rng_;
  std::vector<int> remaining_;
  std::vector<std::vector<Timestamp>> ts_;
  int issued_ = 0;
  int completed_ = 0;
  int write_counter_ = 0;
};

class SeededTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededTest, CorrectServerWaitFreeAndLinearizable) {
  const std::uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.seed = seed;
  cfg.n = 2 + static_cast<int>(seed % 4);  // 2..5 clients
  cfg.delay = net::DelayModel{1, 1 + seed % 20};
  cfg.faust.dummy_read_period = 0;  // user ops only: clean history
  cfg.faust.probe_check_period = 0;
  Cluster cl(cfg);
  Workload w(cl, seed * 7919 + 1, /*ops_per_client=*/8);
  w.start();
  cl.sched().run();  // drains: no recurring timers in this configuration

  // Wait-freedom: every issued operation completed.
  EXPECT_EQ(w.issued(), cfg.n * 8);
  EXPECT_TRUE(w.all_issued_completed());
  EXPECT_FALSE(cl.any_failed());

  // Linearizability of the recorded history.
  const auto res = checker::check_linearizable(cl.recorder().history());
  EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.violation;

  // Integrity: per-client timestamps strictly increase.
  for (ClientId i = 1; i <= cfg.n; ++i) {
    const auto& ts = w.timestamps()[static_cast<std::size_t>(i)];
    for (std::size_t k = 1; k < ts.size(); ++k) {
      EXPECT_GT(ts[k], ts[k - 1]) << "seed " << seed << " client " << i;
    }
  }
}

TEST_P(SeededTest, CorrectServerCausallyConsistent) {
  const std::uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.seed = seed ^ 0xc0ffee;
  cfg.n = 3;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cl(cfg);
  Workload w(cl, seed + 17, /*ops_per_client=*/5);
  w.start();
  cl.sched().run();
  ASSERT_TRUE(w.all_issued_completed());
  const auto res = checker::check_causal(cl.recorder().history());
  EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.violation;
}

TEST_P(SeededTest, SmallHistoriesCrossCheckedAgainstBruteForce) {
  const std::uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.seed = seed ^ 0xabcdef;
  cfg.n = 2;
  cfg.delay = net::DelayModel{1, 15};
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_check_period = 0;
  Cluster cl(cfg);
  Workload w(cl, seed + 99, /*ops_per_client=*/4);
  w.start();
  cl.sched().run();
  ASSERT_TRUE(w.all_issued_completed());
  const auto& h = cl.recorder().history();
  ASSERT_LE(h.size(), 8u);
  EXPECT_TRUE(checker::check_linearizable(h).ok);
  EXPECT_TRUE(checker::check_linearizable_brute(h));
}

TEST_P(SeededTest, RandomForkAlwaysDetectedNeverBefore) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31 + 5);
  ClusterConfig cfg;
  cfg.seed = seed;
  cfg.n = 3;
  cfg.with_server = false;
  cfg.faust.dummy_read_period = 400;
  cfg.faust.probe_interval = 3'000;
  cfg.faust.probe_check_period = 800;
  Cluster cl(cfg);
  adversary::ForkingServer server(cfg.n, cl.net());

  const ClientId victim =
      1 + static_cast<ClientId>(rng.next_below(static_cast<std::uint64_t>(cfg.n)));
  const int pre_ops = 1 + static_cast<int>(rng.next_below(4));

  int counter = 0;
  for (int k = 0; k < pre_ops; ++k) {
    cl.write((k % cfg.n) + 1, "pre" + std::to_string(++counter));
    cl.read(((k + 1) % cfg.n) + 1, (k % cfg.n) + 1);
  }
  ASSERT_FALSE(cl.any_failed()) << "accuracy before the attack";

  server.split(victim);  // the fork happens here
  // Both sides keep working: activity on the main fork and on the victim.
  cl.write(victim, "victim-side" + std::to_string(seed));
  const ClientId other = victim == 1 ? 2 : 1;
  cl.write(other, "main-side" + std::to_string(seed));

  cl.run_for(400'000);
  EXPECT_TRUE(cl.all_failed()) << "seed " << seed << ": fork must be detected everywhere";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace faust
