// Failure-injection tests: client crashes, server crashes (benign faults)
// — wait-freedom for the survivors, no false Byzantine accusations, and
// continued stability through the offline channel. A permanent crash
// (net().crash) silences a node forever; a transient kill (net().kill)
// models a process crash that a durable restart recovers from — the last
// test here hands off to crash_recovery_test for the full treatment.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "adversary/misc_servers.h"
#include "faust/cluster.h"

namespace faust {
namespace {

TEST(Crash, ClientCrashDoesNotBlockOthers) {
  ClusterConfig cfg;
  cfg.n = 3;
  Cluster cl(cfg);
  cl.write(1, "a");
  cl.net().crash(2);  // C2 vanishes
  for (int k = 0; k < 5; ++k) {
    EXPECT_GT(cl.write(1, "w" + std::to_string(k)), 0u);
    ASSERT_TRUE(cl.read(3, 1).has_value());
  }
  EXPECT_FALSE(cl.client(1).failed());
  EXPECT_FALSE(cl.client(3).failed());
}

TEST(Crash, ClientCrashMidOperationLeavesLEntryButNoHarm) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.faust.dummy_read_period = 0;
  Cluster cl(cfg);
  // C2 submits and crashes before the commit leaves.
  cl.client(2).write(to_bytes("half-done"), [](Timestamp) {});
  cl.run_for(3);  // submit in flight
  cl.net().crash(2);
  cl.run_for(1'000);
  // Others proceed; C2's submitted-but-uncommitted write is visible to
  // readers scheduled after it (it is in the view history).
  const ustor::Value v = cl.read(1, 2);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "half-done");
  EXPECT_FALSE(cl.client(1).failed());
}

TEST(Crash, ServerCrashIsNotAccusedOfByzantineFault) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.faust.probe_interval = 2'000;
  cfg.faust.probe_check_period = 500;
  Cluster cl(cfg);
  cl.write(1, "a");
  cl.read(2, 1);
  cl.net().crash(kServerNode);
  cl.run_for(300'000);
  EXPECT_FALSE(cl.any_failed()) << "accuracy: fail_i only on real misbehaviour";
}

TEST(Crash, MidProtocolServerSilenceKeepsAccuracy) {
  // Server answers exactly 3 SUBMITs then goes silent: some operation is
  // cut off mid-flight. Nobody may accuse it of Byzantine behaviour.
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.with_server = false;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_interval = 2'000;
  cfg.faust.probe_check_period = 500;
  Cluster cl(cfg);
  adversary::SilencingServer server(cfg.n, cl.net(), /*serve_ops=*/3);

  EXPECT_GT(cl.write(1, "a"), 0u);
  ASSERT_TRUE(cl.read(2, 1).has_value());
  EXPECT_GT(cl.write(1, "b"), 0u);
  // This one never completes:
  cl.client(2).read(1, [](const ustor::Value&, Timestamp) {
    FAIL() << "operation against a silent server must not complete";
  });
  cl.run_for(300'000);
  EXPECT_TRUE(server.silenced());
  EXPECT_FALSE(cl.any_failed());
  // Stability still advanced for the completed prefix via probing.
  EXPECT_GE(cl.client(1).stability_cut()[1], 1u);
}

TEST(Crash, OfflineMailboxSurvivesLongPartitions) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_interval = 1'000;
  cfg.faust.probe_check_period = 300;
  Cluster cl(cfg);
  cl.write(1, "a");
  cl.read(2, 1);
  cl.net().crash(kServerNode);
  cl.client(2).go_offline();
  cl.run_for(50'000);  // C1's probes pile up in C2's mailbox
  EXPECT_EQ(cl.client(1).fully_stable_timestamp(), 0u);
  cl.client(2).go_online();
  cl.run_for(50'000);
  EXPECT_GE(cl.client(1).fully_stable_timestamp(), 1u)
      << "probe answered after the partition healed";
  EXPECT_FALSE(cl.any_failed());
}

TEST(Crash, TransientServerKillThenDurableRestartResumesStability) {
  // The bridge between this file's permanent-crash accuracy tests and
  // crash_recovery_test: a server process dies mid-run and comes back
  // from its own disk. Accuracy must hold through the outage (no fail_i),
  // and — unlike the permanent-crash case above, where stability freezes
  // forever — the cut resumes advancing once the server is back.
  const std::string dir = std::string(::testing::TempDir()) + "/faust_crash_durable_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.durability_dir = dir;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_interval = 1'000;
  cfg.faust.probe_check_period = 300;
  Cluster cl(cfg);
  cl.write(1, "pre-crash");
  cl.read(2, 1);
  cl.run_for(5'000);
  const Timestamp stable_before = cl.client(1).fully_stable_timestamp();
  EXPECT_GE(stable_before, 1u);

  cl.crash_server();
  cl.run_for(30'000);  // probes go unanswered; accuracy must hold
  EXPECT_FALSE(cl.any_failed());

  cl.restart_server();
  EXPECT_GT(cl.write(1, "post-crash"), 0u);
  const ustor::Value v = cl.read(2, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "post-crash");
  cl.run_for(10'000);
  EXPECT_GE(cl.client(1).fully_stable_timestamp(), stable_before + 1)
      << "stability resumes after a durable restart";
  EXPECT_FALSE(cl.any_failed());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace faust
