// Discrete-event scheduler tests: ordering, FIFO ties, cancellation,
// bounded runs, virtual-time semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace faust::sim {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.after(30, [&] { order.push_back(3); });
  s.after(10, [&] { order.push_back(1); });
  s.after(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SameTickIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.after(5, [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, NestedScheduling) {
  Scheduler s;
  std::vector<int> order;
  s.after(10, [&] {
    order.push_back(1);
    s.after(5, [&] { order.push_back(3); });
    s.after(0, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 15u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.after(10, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, CancelAfterRunIsNoop) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.after(1, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
  s.cancel(id);  // must not disturb anything
  s.after(1, [&] {});
  EXPECT_EQ(s.run(), 1u);
}

TEST(Scheduler, StepOneAtATime) {
  Scheduler s;
  int count = 0;
  s.after(1, [&] { ++count; });
  s.after(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<Time> fired;
  for (Time t : {5u, 10u, 15u, 20u}) {
    s.at(t, [&, t] { fired.push_back(t); });
  }
  EXPECT_EQ(s.run_until(12), 2u);
  EXPECT_EQ(fired, (std::vector<Time>{5, 10}));
  EXPECT_EQ(s.now(), 12u);  // time advances to the deadline
  EXPECT_EQ(s.run_until(100), 2u);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Scheduler, RunUntilInclusiveAtBoundary) {
  Scheduler s;
  bool ran = false;
  s.at(10, [&] { ran = true; });
  s.run_until(10);
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RunWithEventBudget) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.after(1, [&] { ++count; });
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.pending(), 6u);
}

TEST(Scheduler, SelfPerpetuatingTimerWithCancel) {
  Scheduler s;
  int ticks = 0;
  EventId id = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    id = s.after(10, tick);
  };
  id = s.after(10, tick);
  s.run_until(55);
  EXPECT_EQ(ticks, 5);
  s.cancel(id);
  s.run_until(1000);
  EXPECT_EQ(ticks, 5);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 3; ++i) s.after(1, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 3u);
}

TEST(Scheduler, CancelledEventsNotCountedPending) {
  Scheduler s;
  const EventId a = s.after(1, [] {});
  s.after(2, [] {});
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, PendingSurvivesCancelOfExecutedEvent) {
  Scheduler s;
  const EventId a = s.after(1, [] {});
  s.run();
  s.after(2, [] {});
  s.cancel(a);  // a already ran: must not disturb accounting
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, DoubleCancelIsIdempotent) {
  Scheduler s;
  const EventId a = s.after(1, [] {});
  s.cancel(a);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.run(), 0u);
}

}  // namespace
}  // namespace faust::sim
