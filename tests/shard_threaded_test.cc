// Differential testing of the THREADED shard execution mode
// (ShardedCluster ExecMode::kThreaded: one rt::ThreadedRuntime per
// shard).
//
// Threaded executions are not deterministic, so unlike
// shard_differential_test this file never compares event order. What it
// pins instead:
//
//   1. Set-equivalence against the in-memory model: a seeded workload
//      replayed op-for-op under kThreaded produces, at every quiescent
//      point, exactly the model's merged view (same key set, same
//      (value, writer, seq) winners) — operations driven to completion
//      one at a time are deterministic in outcome even when the shard
//      interleaving is not.
//   2. Pipelined fan-out: hundreds of in-flight puts/gets/lists issued
//      across all shards at once (the ShardedKvClient merge paths under
//      genuine concurrency) all complete, and the final merged view
//      again equals the model's.
//   3. Histories: per-shard register histories recorded with real-time
//      stamps from concurrent shard threads pass the same
//      linearizability checker the simulated histories do.
//   4. Fail-aware settling under threads: in-flight ops on a shard whose
//      provider fails complete with the failure outcome instead of
//      hanging, exactly as in the deterministic mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "checker/history.h"
#include "checker/linearizability.h"
#include "common/rng.h"
#include "kvstore/kv_client.h"
#include "shard/sharded_cluster.h"
#include "shard/sharded_kv_client.h"
#include "ustor/messages.h"

namespace faust::shard {
namespace {

using namespace std::chrono_literals;

constexpr int kClients = 3;

/// In-memory reference, identical in spirit to shard_differential_test's:
/// per-writer partitions merged by the (seq, writer) rule.
struct Model {
  std::vector<std::map<std::string, std::pair<std::string, std::uint64_t>>> partitions{kClients};
  std::vector<std::uint64_t> counters = std::vector<std::uint64_t>(kClients, 0);

  void put(ClientId w, const std::string& key, const std::string& value) {
    partitions[static_cast<std::size_t>(w - 1)][key] = {
        value, ++counters[static_cast<std::size_t>(w - 1)]};
  }
  void erase(ClientId w, const std::string& key) {
    // No-op-erase rule: absent keys consume no sequence number.
    if (partitions[static_cast<std::size_t>(w - 1)].erase(key) > 0) {
      ++counters[static_cast<std::size_t>(w - 1)];
    }
  }
  std::map<std::string, kv::KvEntry> merged() const {
    std::map<std::string, kv::KvEntry> out;
    for (ClientId w = 1; w <= kClients; ++w) {
      for (const auto& [key, e] : partitions[static_cast<std::size_t>(w - 1)]) {
        const auto it = out.find(key);
        if (it == out.end() || e.second > it->second.seq ||
            (e.second == it->second.seq && w > it->second.writer)) {
          out[key] = kv::KvEntry{e.first, w, e.second};
        }
      }
    }
    return out;
  }
};

/// A kThreaded deployment plus one ShardedKvClient per logical client.
/// Destruction stops the shard threads before the clients unwind, per the
/// ShardedKvClient destructor contract.
struct ThreadedRig {
  ThreadedRig(std::size_t shards, std::uint64_t seed, sim::Time dummy_period = 0) {
    ShardedClusterConfig cfg;
    cfg.shards = shards;
    cfg.seed = seed;
    cfg.mode = ExecMode::kThreaded;
    cfg.shard_template.n = kClients;
    cfg.shard_template.faust.dummy_read_period = dummy_period;
    cfg.shard_template.faust.probe_check_period = 0;
    cluster = std::make_unique<ShardedCluster>(cfg);
    for (ClientId i = 1; i <= kClients; ++i) {
      kv.push_back(std::make_unique<ShardedKvClient>(*cluster, i));
    }
  }

  ~ThreadedRig() { cluster->stop(); }

  // Completion state is heap-shared with the handler: if an await times
  // out (slow CI machine), the op may still complete — or be settled by
  // teardown — after the helper's frame is gone, and the late handler
  // must write into owned memory, not an unwound stack.
  void put(ClientId i, const std::string& k, const std::string& v) {
    auto done = std::make_shared<std::atomic<bool>>(false);
    kv[static_cast<std::size_t>(i - 1)]->put(
        k, v, [done](Timestamp) { done->store(true, std::memory_order_release); });
    ASSERT_TRUE(cluster->await(*done)) << "threaded put timed out";
  }
  void erase(ClientId i, const std::string& k) {
    auto done = std::make_shared<std::atomic<bool>>(false);
    kv[static_cast<std::size_t>(i - 1)]->erase(
        k, [done](Timestamp) { done->store(true, std::memory_order_release); });
    ASSERT_TRUE(cluster->await(*done)) << "threaded erase timed out";
  }
  ShardedGetResult get(ClientId i, const std::string& k) {
    struct State {
      std::atomic<bool> done{false};
      ShardedGetResult out;
    };
    auto st = std::make_shared<State>();
    kv[static_cast<std::size_t>(i - 1)]->get(k, [st](const ShardedGetResult& r) {
      st->out = r;
      st->done.store(true, std::memory_order_release);
    });
    EXPECT_TRUE(cluster->await(st->done)) << "threaded get timed out";
    return st->out;
  }
  ShardedListResult list(ClientId i) {
    struct State {
      std::atomic<bool> done{false};
      ShardedListResult out;
    };
    auto st = std::make_shared<State>();
    kv[static_cast<std::size_t>(i - 1)]->list([st](const ShardedListResult& r) {
      st->out = r;
      st->done.store(true, std::memory_order_release);
    });
    EXPECT_TRUE(cluster->await(st->done)) << "threaded list timed out";
    return st->out;
  }

  std::unique_ptr<ShardedCluster> cluster;
  std::vector<std::unique_ptr<ShardedKvClient>> kv;
};

void expect_view_equals_model(const std::map<std::string, kv::KvEntry>& got,
                              const std::map<std::string, kv::KvEntry>& want,
                              std::size_t shards, std::uint64_t seed, int after_op) {
  ASSERT_EQ(got.size(), want.size()) << "key set diverged: S=" << shards << " seed=" << seed
                                     << " after op " << after_op;
  for (const auto& [key, w] : want) {
    const auto it = got.find(key);
    ASSERT_NE(it, got.end()) << "missing key " << key;
    EXPECT_EQ(it->second.value, w.value) << "key " << key;
    EXPECT_EQ(it->second.writer, w.writer) << "key " << key;
    EXPECT_EQ(it->second.seq, w.seq) << "key " << key;
  }
}

TEST(ShardThreaded, SequentialWorkloadMatchesModel) {
  constexpr int kOps = 48;
  constexpr int kCheckEvery = 16;
  constexpr int kKeyPool = 16;
  for (const std::size_t shards : {2u, 4u}) {
    for (const std::uint64_t seed : {101u, 202u}) {
      SCOPED_TRACE(::testing::Message() << "S=" << shards << " seed=" << seed);
      Rng rng(seed);
      ThreadedRig rig(shards, seed);
      Model model;
      for (int op = 1; op <= kOps; ++op) {
        const ClientId who = static_cast<ClientId>(1 + rng.next_below(kClients));
        const std::string key = "key-" + std::to_string(rng.next_below(kKeyPool));
        const std::size_t kind = rng.next_below(10);
        if (kind < 6) {
          const std::string value = "v" + std::to_string(op) + "-c" + std::to_string(who);
          rig.put(who, key, value);
          model.put(who, key, value);
        } else if (kind < 8) {
          rig.erase(who, key);
          model.erase(who, key);
        } else {
          const ShardedGetResult got = rig.get(who, key);
          const auto m = model.merged();
          const auto want = m.find(key);
          ASSERT_EQ(got.entry.has_value(), want != m.end());
          if (got.entry.has_value()) {
            EXPECT_EQ(got.entry->value, want->second.value);
            EXPECT_EQ(got.entry->writer, want->second.writer);
            EXPECT_EQ(got.entry->seq, want->second.seq);
          }
          EXPECT_EQ(got.shard, rig.kv[0]->home_shard(key));
          EXPECT_FALSE(got.shard_failed);
        }
        if (op % kCheckEvery == 0 || op == kOps) {
          const ClientId reader = static_cast<ClientId>(1 + rng.next_below(kClients));
          const ShardedListResult sl = rig.list(reader);
          EXPECT_TRUE(sl.complete);
          expect_view_equals_model(sl.entries, model.merged(), shards, seed, op);
        }
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ShardThreaded, PipelinedFanOutCompletesAndConverges) {
  // Per-client key namespaces keep the expected winner deterministic
  // (every key has one writer, whose last issued put wins: per
  // (client, shard) the FaustClient queue preserves issue order even
  // though shards complete out of order relative to each other).
  constexpr std::size_t kShards = 4;
  constexpr int kKeysPerClient = 12;
  constexpr int kRounds = 3;
  // Completions are counted against the precomputed grand total — a
  // plain in-flight counter could transiently hit zero while the main
  // thread is still issuing, releasing the wait early.
  constexpr int kTotalOps = kRounds * kClients * (kKeysPerClient + 1);
  // Declared before the rig: on an early (assertion) return the rig's
  // teardown settles in-flight ops, whose handlers write these — they
  // must outlive the deployment.
  std::atomic<int> completed{0};
  std::atomic<bool> all_done{false};
  std::atomic<int> lists_ok{0};
  const auto op_done = [&] {
    if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == kTotalOps) {
      all_done.store(true, std::memory_order_release);
    }
  };
  ThreadedRig rig(kShards, /*seed=*/4242);
  Model model;

  for (int round = 0; round < kRounds; ++round) {
    for (ClientId c = 1; c <= kClients; ++c) {
      for (int k = 0; k < kKeysPerClient; ++k) {
        const std::string key = "c" + std::to_string(c) + "-k" + std::to_string(k);
        const std::string value = "r" + std::to_string(round) + "-" + key;
        rig.kv[static_cast<std::size_t>(c - 1)]->put(key, value,
                                                     [&](Timestamp) { op_done(); });
        model.put(c, key, value);
      }
      // Interleave a fan-out list per client per round: its merge runs
      // concurrently with puts completing on every shard. Snapshot
      // contents are timing-dependent; only completeness is pinned.
      rig.kv[static_cast<std::size_t>(c - 1)]->list([&](const ShardedListResult& r) {
        if (r.complete) lists_ok.fetch_add(1, std::memory_order_relaxed);
        op_done();
      });
    }
  }
  ASSERT_TRUE(rig.cluster->await(all_done, 60s)) << "pipelined workload never drained";
  EXPECT_EQ(lists_ok.load(), kRounds * kClients) << "no shard failed; lists must be complete";
  EXPECT_FALSE(rig.cluster->any_failed());

  const ShardedListResult final_view = rig.list(1);
  EXPECT_TRUE(final_view.complete);
  // Pipelined ops draw their cross-shard seq tickets in shard-thread
  // execution order, which races across shards — so exact seq numbers
  // are nondeterministic; the converged (value, writer) per key is not
  // (per key there is one writer, and its home shard preserves that
  // writer's issue order).
  const auto want = model.merged();
  ASSERT_EQ(final_view.entries.size(), want.size());
  for (const auto& [key, w] : want) {
    const auto it = final_view.entries.find(key);
    ASSERT_NE(it, final_view.entries.end()) << "missing key " << key;
    EXPECT_EQ(it->second.value, w.value) << "key " << key;
    EXPECT_EQ(it->second.writer, w.writer) << "key " << key;
  }
}

TEST(ShardThreaded, ConcurrentShardHistoriesStayLinearizable) {
  // Raw register traffic on every shard at once: each logical client runs
  // an op chain per shard, driven from completion callbacks (so all
  // protocol work happens on the shard's runtime thread), stamped with
  // the monotonic clock. Each shard is an independent register space, so
  // each shard's history must independently pass the simulator's
  // linearizability checker.
  constexpr std::size_t kShards = 3;
  constexpr int kOpsPerChain = 16;

  struct ShardTrace {
    checker::HistoryRecorder recorder;
    std::mutex mu;
  };
  // Everything the shard threads touch is declared BEFORE the deployment:
  // on an early (assertion) return the cluster is destroyed — joining its
  // threads — first, while traces/chains are still alive.
  std::vector<ShardTrace> traces(kShards);
  std::atomic<int> chains_left{static_cast<int>(kShards) * kClients};
  std::atomic<bool> all_done{false};

  const auto now_ns = [] {
    return static_cast<sim::Time>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                      std::chrono::steady_clock::now().time_since_epoch())
                                      .count());
  };

  struct Chain {
    ShardedCluster* sc;
    std::size_t s;
    ClientId i;
    int remaining;
    ShardTrace* trace;
    std::atomic<int>* chains_left;
    std::atomic<bool>* all_done;
    const std::function<sim::Time()>* clock;
    int op_index = 0;

    void next() {
      if (remaining-- == 0) {
        if (chains_left->fetch_sub(1, std::memory_order_acq_rel) == 1) {
          all_done->store(true, std::memory_order_release);
        }
        return;
      }
      FaustClient& f = sc->shard(s).client(i);
      const int k = op_index++;
      if (k % 2 == 0) {
        const std::string v = "s" + std::to_string(s) + "-c" + std::to_string(i) + "-" +
                              std::to_string(k);
        int rec;
        {
          std::lock_guard lock(trace->mu);
          rec = trace->recorder.begin(i, ustor::OpCode::kWrite, i, to_bytes(v), (*clock)());
        }
        f.write(to_bytes(v), [this, rec](Timestamp t) {
          {
            std::lock_guard lock(trace->mu);
            trace->recorder.end(rec, (*clock)(), t);
          }
          next();
        });
      } else {
        const ClientId j = static_cast<ClientId>((k % kClients) + 1);
        int rec;
        {
          std::lock_guard lock(trace->mu);
          rec = trace->recorder.begin(i, ustor::OpCode::kRead, j, std::nullopt, (*clock)());
        }
        f.read(j, [this, rec](const ustor::Value& v, Timestamp t) {
          {
            std::lock_guard lock(trace->mu);
            trace->recorder.end(rec, (*clock)(), t, v);
          }
          next();
        });
      }
    }
  };

  const std::function<sim::Time()> clock = now_ns;
  std::vector<std::unique_ptr<Chain>> chains;

  ShardedClusterConfig cfg;
  cfg.shards = kShards;
  cfg.seed = 99;
  cfg.mode = ExecMode::kThreaded;
  cfg.shard_template.n = kClients;
  cfg.shard_template.faust.dummy_read_period = 0;
  cfg.shard_template.faust.probe_check_period = 0;
  ShardedCluster sc(cfg);

  for (std::size_t s = 0; s < kShards; ++s) {
    for (ClientId i = 1; i <= kClients; ++i) {
      chains.push_back(std::unique_ptr<Chain>(new Chain{&sc, s, i, kOpsPerChain, &traces[s],
                                                        &chains_left, &all_done, &clock}));
    }
  }
  // Kick every chain off on its shard's own thread; from then on each
  // chain self-drives from completion callbacks.
  for (auto& c : chains) {
    sc.shard_exec(c->s).post([chain = c.get()] { chain->next(); });
  }

  ASSERT_TRUE(sc.await(all_done, 60s)) << "threaded register workload timed out";
  sc.stop();  // freeze: histories and failure flags are now safe to read

  EXPECT_FALSE(sc.any_failed());
  for (std::size_t s = 0; s < kShards; ++s) {
    const auto res = checker::check_linearizable(traces[s].recorder.history());
    EXPECT_TRUE(res.ok) << "shard " << s << ": " << res.violation;
    EXPECT_EQ(traces[s].recorder.history().size(),
              static_cast<std::size_t>(kClients * kOpsPerChain));
  }
}

TEST(ShardThreaded, MidOperationFailureSettlesInFlightOps) {
  // Threaded twin of the deterministic mid-failure test: shard 0's server
  // goes silent, ops routed there hang until a peer's FAILURE report
  // lands — then every in-flight op must settle with the failure outcome,
  // on the shard's own thread.
  // Handler-visible state first (it must outlive the rig; see the
  // pipelined test), then the deployment.
  std::atomic<bool> failed_surfaced{false};
  std::atomic<bool> crashed{false};
  std::atomic<bool> got{false}, put_done{false}, listed{false};
  ShardedGetResult gr;
  Timestamp put_ts = 77;
  ShardedListResult lr;

  ThreadedRig rig(2, /*seed=*/31);
  std::string key0, key1;
  for (int k = 0; key0.empty() || key1.empty(); ++k) {
    const std::string key = "mid" + std::to_string(k);
    (rig.cluster->router().shard_of(key) == 0 ? key0 : key1) = key;
  }
  rig.put(1, key0, "before");
  rig.put(1, key1, "healthy");
  if (::testing::Test::HasFatalFailure()) return;
  rig.kv[0]->on_fail = [&](std::size_t shard, FailureReason) {
    EXPECT_EQ(shard, 0u);
    failed_surfaced.store(true, std::memory_order_release);
  };

  // Crash the server from the shard's own thread (the network fabric is
  // owned by it), then issue ops that can never complete on their own.
  rig.cluster->shard_exec(0).post([&] {
    rig.cluster->shard(0).net().crash(kServerNode);
    crashed.store(true, std::memory_order_release);
  });
  ASSERT_TRUE(rig.cluster->await(crashed));

  rig.kv[0]->get(key0, [&](const ShardedGetResult& r) {
    gr = r;
    got.store(true, std::memory_order_release);
  });
  rig.kv[0]->put(key0, "after-crash", [&](Timestamp t) {
    put_ts = t;
    put_done.store(true, std::memory_order_release);
  });
  rig.kv[0]->list([&](const ShardedListResult& r) {
    lr = r;
    listed.store(true, std::memory_order_release);
  });

  // Client 2 reports the provider failed over the offline channel (§6).
  rig.cluster->shard_exec(0).post([&] {
    rig.cluster->shard(0).mail().post(2, 1, ustor::encode(ustor::FailureMessage{}));
  });

  ASSERT_TRUE(rig.cluster->await(got, 60s)) << "in-flight get must settle on fail_i";
  ASSERT_TRUE(rig.cluster->await(put_done, 60s)) << "in-flight put must settle on fail_i";
  ASSERT_TRUE(rig.cluster->await(listed, 60s)) << "fan-out list must deliver healthy shard";
  EXPECT_TRUE(gr.shard_failed);
  EXPECT_EQ(gr.shard, 0u);
  EXPECT_EQ(put_ts, 0u);
  EXPECT_FALSE(lr.complete);
  EXPECT_TRUE(lr.entries.contains(key1));
  EXPECT_FALSE(lr.entries.contains(key0));
  EXPECT_TRUE(failed_surfaced.load());
}

}  // namespace
}  // namespace faust::shard
