// D6 — O(change) on the wire: verifiable delta SUBMIT/REPLY.
//
// The delta wire protocol is pure transport optimization: the bytes that
// cross the network shrink to the change set, but every value a client
// accepts is verified against the same DATA-signature machinery as the
// full path, and any base mismatch degrades transparently to a full-value
// exchange. This file pins:
//
//   * the end-to-end delta write/read paths and their counters;
//   * the acceptance bounds — single-key SUBMIT bytes at K=16384 within
//     4× of K=256, and the all-unchanged snapshot read shipping O(1)
//     bytes per partition (both on the live byte counters, not estimates);
//   * the fallback protocol — a reader whose verified base is evicted
//     mid-run completes correctly via a full re-read, without fail_i;
//   * the Byzantine story — four delta-specific server lies are rejected,
//     memos stay sound, and the victim recovers through the fallback;
//   * the differential oracle — wire_deltas on vs off yields byte-
//     identical merged views and stability cuts, single and sharded.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/delta_tamper_server.h"
#include "common/rng.h"
#include "faust/cluster.h"
#include "kvstore/kv_client.h"
#include "shard/sharded_cluster.h"
#include "shard/sharded_kv_client.h"
#include "ustor/messages.h"

namespace faust::kv {
namespace {

constexpr KvTuning kDelta{true, true};

constexpr auto kSubmitTag = static_cast<std::uint8_t>(ustor::MsgType::kSubmit);
constexpr auto kSubmitDeltaTag = static_cast<std::uint8_t>(ustor::MsgType::kSubmitDelta);
constexpr auto kReplyTag = static_cast<std::uint8_t>(ustor::MsgType::kReply);
constexpr auto kReplyDeltaTag = static_cast<std::uint8_t>(ustor::MsgType::kReplyDelta);

struct Rig {
  explicit Rig(std::uint64_t seed, bool wire_deltas = true, int n = 3,
               bool with_server = true) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    cfg.faust.wire_deltas = wire_deltas;
    cfg.with_server = with_server;
    cluster = std::make_unique<Cluster>(cfg);
    for (ClientId i = 1; i <= n; ++i) {
      kv.push_back(std::make_unique<KvClient>(cluster->client(i), kDelta));
    }
  }

  KvClient& client(ClientId i) { return *kv[static_cast<std::size_t>(i - 1)]; }
  ustor::Client& engine(ClientId i) { return cluster->client(i).engine(); }

  void drive(const bool& done) {
    std::size_t steps = 0;
    while (!done && steps < 2'000'000 && cluster->sched().step()) ++steps;
  }

  void put(ClientId i, const std::string& k, const std::string& v) {
    bool done = false;
    client(i).put(k, v, [&](Timestamp) { done = true; });
    drive(done);
    ASSERT_TRUE(done);
  }

  bool try_get(ClientId i, const std::string& k, std::optional<KvEntry>* out) {
    bool done = false;
    client(i).get(k, [&](std::optional<KvEntry> e, Timestamp) {
      *out = std::move(e);
      done = true;
    });
    drive(done);
    return done;
  }

  std::map<std::string, KvEntry> list(ClientId i) {
    bool done = false;
    std::map<std::string, KvEntry> out;
    client(i).list([&](const std::map<std::string, KvEntry>& m, Timestamp) {
      out = m;
      done = true;
    });
    drive(done);
    EXPECT_TRUE(done);
    return out;
  }

  /// Bulk-loads `count` keys into writer `i`'s partition in one publish.
  void bulk_load(ClientId i, int count, std::size_t value_len,
                 const std::string& prefix = "key-") {
    std::vector<KvClient::SeqChange> batch;
    std::uint64_t seq = client(i).put_seq();
    for (int k = 0; k < count; ++k) {
      batch.push_back(KvClient::SeqChange{prefix + std::to_string(k),
                                          std::string(value_len, 'x'), ++seq});
    }
    bool done = false;
    client(i).apply_with_seqs(batch, [&](Timestamp) { done = true; });
    drive(done);
    ASSERT_TRUE(done);
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<KvClient>> kv;
};

// --- End-to-end delta paths and accounting ---------------------------------

TEST(WireDelta, DeltaWritePathShipsSplicesAndVerifies) {
  Rig rig(101);
  rig.bulk_load(1, 64, 24);  // first publish: full (seeds the server base)
  EXPECT_EQ(rig.client(1).publish_fulls(), 1u);
  EXPECT_EQ(rig.client(1).publish_deltas(), 0u);

  const auto before = rig.cluster->net().total_for(kSubmitDeltaTag);
  rig.put(1, "key-7", "edited!");  // single-key edit: ships as SUBMIT_DELTA
  EXPECT_EQ(rig.client(1).publish_deltas(), 1u);
  EXPECT_EQ(rig.engine(1).delta_submits(), 1u);
  const auto after = rig.cluster->net().total_for(kSubmitDeltaTag);
  EXPECT_EQ(after.messages, before.messages + 1);
  EXPECT_GT(after.bytes, before.bytes);

  // Readers verify the spliced publication like any other: same view.
  std::optional<KvEntry> got;
  ASSERT_TRUE(rig.try_get(2, "key-7", &got));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, "edited!");
  EXPECT_FALSE(rig.cluster->any_failed());
}

TEST(WireDelta, NetworkCountersBucketizeByTagAndSumToTotal) {
  Rig rig(102);
  rig.put(1, "a", "1");
  rig.put(1, "a", "2");
  std::optional<KvEntry> e;
  ASSERT_TRUE(rig.try_get(2, "a", &e));
  ASSERT_TRUE(rig.try_get(2, "a", &e));

  const net::Network& net = rig.cluster->net();
  std::uint64_t msgs = 0, bytes = 0;
  for (const net::ChannelStats& s : net.total_by_type()) {
    msgs += s.messages;
    bytes += s.bytes;
  }
  EXPECT_EQ(msgs, net.total().messages);
  EXPECT_EQ(bytes, net.total().bytes);
  // The workload exercised full submits, delta submits, full replies and
  // delta replies; every bucket it used is non-empty.
  EXPECT_GT(net.total_for(kSubmitTag).messages, 0u);
  EXPECT_GT(net.total_for(kSubmitDeltaTag).messages, 0u);
  EXPECT_GT(net.total_for(kReplyTag).messages, 0u);
  EXPECT_GT(net.total_for(kReplyDeltaTag).messages, 0u);
  // Per-channel accounting: the reader→server channel carries its delta
  // submits and nothing of the server→reader reply traffic.
  EXPECT_GT(net.channel_for(2, kServerNode, kSubmitDeltaTag).messages, 0u);
  EXPECT_EQ(net.channel_for(2, kServerNode, kReplyDeltaTag).messages, 0u);
}

// --- The acceptance bounds -------------------------------------------------

/// SUBMIT bytes for 10 single-key puts after bulk-loading K keys.
std::uint64_t delta_put_bytes(int k_keys, std::uint64_t seed) {
  Rig rig(seed);
  rig.bulk_load(1, k_keys, 24);
  const auto before = rig.cluster->net().total_for(kSubmitDeltaTag);
  for (int p = 0; p < 10; ++p) {
    rig.put(1, "key-" + std::to_string(p * (k_keys / 16)), "new-value!");
  }
  EXPECT_EQ(rig.engine(1).delta_submits(), 10u) << "K=" << k_keys;
  const auto after = rig.cluster->net().total_for(kSubmitDeltaTag);
  EXPECT_EQ(after.messages, before.messages + 10) << "K=" << k_keys;
  return after.bytes - before.bytes;
}

TEST(WireDelta, SubmitBytesPerPutTrackTheChangeNotTheKeyspace) {
  // The headline acceptance bound: single-key put SUBMIT bytes at
  // K=16384 within 4× of K=256 — per-op cost tracks the change set.
  const std::uint64_t small = delta_put_bytes(256, 201);
  const std::uint64_t large = delta_put_bytes(16384, 201);
  EXPECT_LE(large, 4 * small)
      << "delta SUBMIT bytes grew with the keyspace: K=256 → " << small
      << " bytes/10 puts, K=16384 → " << large;
}

/// REPLY_DELTA bytes for one all-unchanged get after bulk-loading K keys.
std::uint64_t unchanged_read_bytes(int k_keys, std::uint64_t seed) {
  Rig rig(seed);
  // Every writer holds a K/3-key partition, so the reader ends up with a
  // verified base for all three registers.
  for (ClientId w = 1; w <= 3; ++w) {
    rig.bulk_load(w, k_keys / 3, 24, "w" + std::to_string(w) + "-key-");
  }
  std::optional<KvEntry> e;
  EXPECT_TRUE(rig.try_get(2, "w1-key-0", &e));  // cold: full replies, warms memos
  const auto before = rig.cluster->net().total_for(kReplyDeltaTag);
  const std::uint64_t unchanged_before = rig.engine(2).delta_replies_unchanged();
  EXPECT_TRUE(rig.try_get(2, "w1-key-1", &e));  // warm: nothing changed anywhere
  const auto after = rig.cluster->net().total_for(kReplyDeltaTag);
  // Every register read of the warm get was answered "unchanged".
  EXPECT_GE(rig.engine(2).delta_replies_unchanged(), unchanged_before + 3) << "K=" << k_keys;
  EXPECT_GE(after.messages, before.messages + 3) << "K=" << k_keys;
  return (after.bytes - before.bytes) / (after.messages - before.messages);
}

TEST(WireDelta, AllUnchangedSnapshotReadShipsO1BytesPerPartition) {
  // The second acceptance bound, on the live counters: an all-unchanged
  // snapshot costs a small constant per partition, independent of K.
  const std::uint64_t small = unchanged_read_bytes(256, 202);
  const std::uint64_t large = unchanged_read_bytes(16384, 202);
  EXPECT_EQ(large, small)
      << "per-reply \"unchanged\" bytes must not depend on the keyspace";
  EXPECT_LT(large, 1024u) << "the unchanged token must stay O(1)-sized";
}

// --- Fallback: evicted base mid-run ----------------------------------------

TEST(WireDelta, EvictedBaseMidRunFallsBackToFullRead) {
  Rig rig(103);
  rig.put(1, "k", "v1");
  std::optional<KvEntry> e;
  ASSERT_TRUE(rig.try_get(2, "k", &e));  // verifies + memoizes the base
  ASSERT_TRUE(rig.engine(2).has_verified_base(1));

  // Issue a get — its first register read advertises the memoized base —
  // then evict every verified base BEFORE driving delivery: the replies
  // can no longer be resolved against anything.
  bool done = false;
  std::optional<KvEntry> out;
  rig.client(2).get("k", [&](std::optional<KvEntry> got, Timestamp) {
    out = std::move(got);
    done = true;
  });
  for (ClientId j = 1; j <= 3; ++j) rig.engine(2).evict_verified_value(j);
  rig.drive(done);
  ASSERT_TRUE(done) << "the fallback path must complete the op";
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value, "v1");
  EXPECT_GE(rig.engine(2).delta_fallbacks(), 1u) << "the eviction must have forced a fallback";
  EXPECT_FALSE(rig.cluster->client(2).failed())
      << "a base mismatch is a degradation, never an accusation";
}

// --- Byzantine: delta-specific server lies ---------------------------------

class WireDeltaByzantineTest : public ::testing::TestWithParam<adversary::DeltaTamper> {};

TEST_P(WireDeltaByzantineTest, LieIsRejectedMemosSoundFallbackRecovers) {
  Rig rig(104, /*wire_deltas=*/true, /*n=*/3, /*with_server=*/false);
  adversary::DeltaTamperServer server(3, rig.cluster->net(), GetParam(),
                                      /*victim=*/2, /*fire_on_read=*/1);

  rig.put(1, "k", "v1");
  std::optional<KvEntry> e;
  ASSERT_TRUE(rig.try_get(2, "k", &e));  // memoizes the v1 base
  EXPECT_EQ(e->value, "v1");
  rig.put(1, "k", "v2");

  // The next get advertises the stale v1 base; the server fires its lie.
  std::optional<KvEntry> out;
  ASSERT_TRUE(rig.try_get(2, "k", &out)) << "the victim must recover and complete";
  EXPECT_TRUE(server.fired());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value, "v2") << "the fallback must deliver the genuine current value";
  EXPECT_GE(rig.engine(2).delta_fallbacks(), 1u);
  EXPECT_FALSE(rig.cluster->client(2).failed())
      << "a delta mismatch is not transferable evidence; fail_i must not fire";

  // The memos were never polluted: subsequent reads verify and serve the
  // genuine state without incident.
  ASSERT_TRUE(rig.try_get(2, "k", &out));
  EXPECT_EQ(out->value, "v2");
  EXPECT_FALSE(rig.cluster->client(2).failed());
}

INSTANTIATE_TEST_SUITE_P(AllLies, WireDeltaByzantineTest,
                         ::testing::Values(adversary::DeltaTamper::kSpliceBytes,
                                           adversary::DeltaTamper::kForgedRoot,
                                           adversary::DeltaTamper::kLieUnchanged,
                                           adversary::DeltaTamper::kStaleBase),
                         [](const auto& info) {
                           switch (info.param) {
                             case adversary::DeltaTamper::kSpliceBytes: return "SpliceBytes";
                             case adversary::DeltaTamper::kForgedRoot: return "ForgedRoot";
                             case adversary::DeltaTamper::kLieUnchanged: return "LieUnchanged";
                             case adversary::DeltaTamper::kStaleBase: return "StaleBase";
                             default: return "None";
                           }
                         });

// --- Differential oracle: deltas on vs off ---------------------------------

TEST(WireDeltaDifferential, ViewsAndStabilityCutsIdenticalWithDeltasOnAndOff) {
  // Same seed, same ops, only the FaustConfig::wire_deltas knob differs:
  // merged views AND stability cuts must match exactly. Message counts are
  // identical in a fault-free run (advertised reads still cost one
  // SUBMIT + one REPLY), so even the delay-model draws line up.
  Rig on(77, /*wire_deltas=*/true);
  Rig off(77, /*wire_deltas=*/false);
  Rng rng(5);
  for (int op = 0; op < 60; ++op) {
    const ClientId who = static_cast<ClientId>(1 + rng.next_below(3));
    const std::string key = "key-" + std::to_string(rng.next_below(10));
    const std::size_t kind = rng.next_below(10);
    if (kind < 7) {
      const std::string value = "v" + std::to_string(op);
      on.put(who, key, value);
      off.put(who, key, value);
    } else {
      std::optional<KvEntry> a, b;
      ASSERT_TRUE(on.try_get(who, key, &a));
      ASSERT_TRUE(off.try_get(who, key, &b));
      ASSERT_EQ(a.has_value(), b.has_value()) << "op " << op;
      if (a.has_value()) {
        EXPECT_EQ(a->value, b->value);
        EXPECT_EQ(a->writer, b->writer);
        EXPECT_EQ(a->seq, b->seq);
      }
    }
  }
  for (ClientId i = 1; i <= 3; ++i) {
    EXPECT_EQ(on.list(i), off.list(i)) << "reader " << i;
    EXPECT_EQ(on.cluster->client(i).stability_cut(), off.cluster->client(i).stability_cut())
        << "client " << i;
    EXPECT_EQ(on.cluster->client(i).fully_stable_timestamp(),
              off.cluster->client(i).fully_stable_timestamp());
  }
  // The comparison must actually exercise the delta machinery on one side…
  EXPECT_GT(on.engine(1).delta_submits() + on.engine(2).delta_submits() +
                on.engine(3).delta_submits(),
            0u);
  EXPECT_GT(on.engine(1).delta_replies_unchanged() + on.engine(2).delta_replies_unchanged() +
                on.engine(3).delta_replies_unchanged() + on.engine(1).delta_replies_spliced() +
                on.engine(2).delta_replies_spliced() + on.engine(3).delta_replies_spliced(),
            0u);
  // …and none on the other.
  for (ClientId i = 1; i <= 3; ++i) {
    EXPECT_EQ(off.engine(i).delta_submits(), 0u);
    EXPECT_EQ(off.engine(i).delta_reads_advertised(), 0u);
  }
}

TEST(WireDeltaDifferential, ShardedViewsIdenticalWithDeltasOnAndOff) {
  const auto build = [](bool deltas) {
    shard::ShardedClusterConfig cfg;
    cfg.shards = 3;
    cfg.seed = 88;
    cfg.shard_template.n = 3;
    cfg.shard_template.faust.dummy_read_period = 0;
    cfg.shard_template.faust.probe_check_period = 0;
    cfg.shard_template.faust.wire_deltas = deltas;
    return std::make_unique<shard::ShardedCluster>(cfg);
  };
  const auto run = [](shard::ShardedCluster& cluster) {
    std::vector<std::unique_ptr<shard::ShardedKvClient>> kvs;
    for (ClientId i = 1; i <= 3; ++i) {
      kvs.push_back(std::make_unique<shard::ShardedKvClient>(cluster, i, kDelta));
    }
    Rng rng(9);
    for (int op = 0; op < 40; ++op) {
      const std::size_t who = rng.next_below(3);
      const std::string key = "key-" + std::to_string(rng.next_below(12));
      bool done = false;
      if (rng.next_below(4) != 0) {
        kvs[who]->put(key, "v" + std::to_string(op), [&](Timestamp) { done = true; });
      } else {
        kvs[who]->erase(key, [&](Timestamp) { done = true; });
      }
      EXPECT_TRUE(cluster.drive(done, 2'000'000));
    }
    bool done = false;
    std::map<std::string, KvEntry> view;
    kvs[0]->list([&](const shard::ShardedListResult& r) {
      view = r.entries;
      done = true;
    });
    EXPECT_TRUE(cluster.drive(done, 2'000'000));
    return view;
  };
  auto on = build(true);
  auto off = build(false);
  const auto view_on = run(*on);
  const auto view_off = run(*off);
  EXPECT_FALSE(view_on.empty());
  EXPECT_EQ(view_on, view_off);
}

}  // namespace
}  // namespace faust::kv
