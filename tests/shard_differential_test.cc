// Differential test oracle for the sharded KV layer.
//
// A seeded random workload (puts, erases, point gets) is replayed,
// op-for-op, against three implementations:
//
//   1. ShardedKvClient over a ShardedCluster with S ∈ {1,2,3,4} shards;
//   2. the single-deployment oracle: plain KvClient over one Cluster
//      (the pre-sharding code path, untouched by the shard layer);
//   3. an in-memory model that re-derives the (seq, writer) merge from
//      first principles — so the two protocol stacks cannot agree on a
//      wrong answer without also fooling the model.
//
// At every quiescent point (each op is driven to completion before the
// next is issued, and views are compared every CHECK_EVERY ops and at the
// end) the three merged views must agree key-for-key: same key set, and
// per key the same (value, writer, seq). The cross-shard seq coordination
// in ShardedKvClient (KvClient::advance_seq) is exactly what makes this
// hold — with per-shard counters a conflict's winner could differ from
// the oracle's.
//
// The file also pins the router's contract (determinism, coverage,
// rendezvous minimal disruption) and the aggregate fail-aware semantics
// (a forked shard surfaces through the sharded client; stability is
// per home shard).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "adversary/forking_server.h"
#include "common/rng.h"
#include "faust/cluster.h"
#include "kvstore/kv_client.h"
#include "shard/shard_router.h"
#include "shard/sharded_cluster.h"
#include "shard/sharded_kv_client.h"
#include "ustor/server.h"

namespace faust::shard {
namespace {

// --- Router contract ------------------------------------------------------

TEST(ShardRouter, DeterministicAndSeedSensitive) {
  const ShardRouter a(4, 99), b(4, 99), c(4, 100);
  bool any_diff = false;
  for (int k = 0; k < 200; ++k) {
    const std::string key = "key-" + std::to_string(k);
    EXPECT_EQ(a.shard_of(key), b.shard_of(key));
    EXPECT_LT(a.shard_of(key), 4u);
    any_diff |= a.shard_of(key) != c.shard_of(key);
  }
  EXPECT_TRUE(any_diff) << "the seed must perturb the placement";
}

TEST(ShardRouter, EveryShardGetsKeys) {
  for (std::size_t shards = 1; shards <= 6; ++shards) {
    const ShardRouter router(shards, 7);
    std::set<std::size_t> hit;
    for (int k = 0; k < 500; ++k) hit.insert(router.shard_of("k" + std::to_string(k)));
    EXPECT_EQ(hit.size(), shards) << "dead shard with S=" << shards;
  }
}

TEST(ShardRouter, RendezvousGrowthMovesKeysOnlyToTheNewShard) {
  // HRW property: adding shard S changes a key's home only if the new
  // shard wins — nothing ever moves between pre-existing shards.
  for (std::size_t s_count = 1; s_count < 6; ++s_count) {
    const ShardRouter before(s_count, 42), after(s_count + 1, 42);
    std::size_t moved = 0, total = 1000;
    for (std::size_t k = 0; k < total; ++k) {
      const std::string key = "grow-" + std::to_string(k);
      const std::size_t was = before.shard_of(key), now = after.shard_of(key);
      if (was != now) {
        EXPECT_EQ(now, s_count) << "key moved between old shards";
        ++moved;
      }
    }
    // Expected move fraction is 1/(S+1); allow generous slack.
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, total / (s_count + 1) * 3);
  }
}

// --- Differential workload ------------------------------------------------

constexpr int kClients = 3;

/// In-memory reference: per-writer partitions with a per-writer op
/// counter, merged by the (seq, writer) rule — independent of both
/// protocol stacks.
struct Model {
  // partitions[w-1]: key -> (value, seq); counters[w-1]: writer w's ops.
  std::vector<std::map<std::string, std::pair<std::string, std::uint64_t>>> partitions{kClients};
  std::vector<std::uint64_t> counters = std::vector<std::uint64_t>(kClients, 0);

  void put(ClientId w, const std::string& key, const std::string& value) {
    partitions[static_cast<std::size_t>(w - 1)][key] = {value,
                                                        ++counters[static_cast<std::size_t>(w - 1)]};
  }
  void erase(ClientId w, const std::string& key) {
    // No-op-erase rule: erasing a key absent from the writer's own
    // partition consumes no sequence number (and publishes nothing).
    if (partitions[static_cast<std::size_t>(w - 1)].erase(key) > 0) {
      ++counters[static_cast<std::size_t>(w - 1)];
    }
  }
  std::map<std::string, kv::KvEntry> merged() const {
    std::map<std::string, kv::KvEntry> out;
    for (ClientId w = 1; w <= kClients; ++w) {
      for (const auto& [key, e] : partitions[static_cast<std::size_t>(w - 1)]) {
        const auto it = out.find(key);
        if (it == out.end() || e.second > it->second.seq ||
            (e.second == it->second.seq && w > it->second.writer)) {
          out[key] = kv::KvEntry{e.first, w, e.second};
        }
      }
    }
    return out;
  }
};

/// The single-deployment oracle (the pre-sharding code path).
struct OracleRig {
  explicit OracleRig(std::uint64_t seed, kv::KvTuning tuning = {},
                     ustor::DigestMode digest = ustor::DigestMode::kChunked) {
    ClusterConfig cfg;
    cfg.n = kClients;
    cfg.seed = seed;
    cfg.faust.dummy_read_period = 0;  // deterministic op streams
    cfg.faust.probe_check_period = 0;
    cfg.faust.data_digest = digest;
    cluster = std::make_unique<Cluster>(cfg);
    for (ClientId i = 1; i <= kClients; ++i) {
      kv.push_back(std::make_unique<kv::KvClient>(cluster->client(i), tuning));
    }
  }

  void drive(const bool& done) {
    std::size_t steps = 0;
    while (!done && steps < 2'000'000 && cluster->sched().step()) ++steps;
  }

  void put(ClientId i, const std::string& k, const std::string& v) {
    bool done = false;
    kv[static_cast<std::size_t>(i - 1)]->put(k, v, [&](Timestamp) { done = true; });
    drive(done);
    ASSERT_TRUE(done);
  }
  void erase(ClientId i, const std::string& k) {
    bool done = false;
    kv[static_cast<std::size_t>(i - 1)]->erase(k, [&](Timestamp) { done = true; });
    drive(done);
    ASSERT_TRUE(done);
  }
  std::optional<kv::KvEntry> get(ClientId i, const std::string& k) {
    bool done = false;
    std::optional<kv::KvEntry> out;
    kv[static_cast<std::size_t>(i - 1)]->get(k, [&](std::optional<kv::KvEntry> e, Timestamp) {
      out = std::move(e);
      done = true;
    });
    drive(done);
    EXPECT_TRUE(done);
    return out;
  }
  std::map<std::string, kv::KvEntry> list(ClientId i) {
    bool done = false;
    std::map<std::string, kv::KvEntry> out;
    kv[static_cast<std::size_t>(i - 1)]->list(
        [&](const std::map<std::string, kv::KvEntry>& m, Timestamp) {
          out = m;
          done = true;
        });
    drive(done);
    EXPECT_TRUE(done);
    return out;
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<kv::KvClient>> kv;
};

/// The system under test.
struct ShardedRig {
  ShardedRig(std::size_t shards, std::uint64_t seed, kv::KvTuning tuning = {},
             ustor::DigestMode digest = ustor::DigestMode::kChunked) {
    ShardedClusterConfig cfg;
    cfg.shards = shards;
    cfg.seed = seed;
    cfg.shard_template.n = kClients;
    cfg.shard_template.faust.dummy_read_period = 0;
    cfg.shard_template.faust.probe_check_period = 0;
    cfg.shard_template.faust.data_digest = digest;
    cluster = std::make_unique<ShardedCluster>(cfg);
    for (ClientId i = 1; i <= kClients; ++i) {
      kv.push_back(std::make_unique<ShardedKvClient>(*cluster, i, tuning));
    }
  }

  void put(ClientId i, const std::string& k, const std::string& v) {
    bool done = false;
    kv[static_cast<std::size_t>(i - 1)]->put(k, v, [&](Timestamp) { done = true; });
    ASSERT_TRUE(cluster->drive(done, 2'000'000));
  }
  void erase(ClientId i, const std::string& k) {
    bool done = false;
    kv[static_cast<std::size_t>(i - 1)]->erase(k, [&](Timestamp) { done = true; });
    ASSERT_TRUE(cluster->drive(done, 2'000'000));
  }
  ShardedGetResult get(ClientId i, const std::string& k) {
    bool done = false;
    ShardedGetResult out;
    kv[static_cast<std::size_t>(i - 1)]->get(k, [&](const ShardedGetResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(cluster->drive(done, 2'000'000));
    return out;
  }
  ShardedListResult list(ClientId i) {
    bool done = false;
    ShardedListResult out;
    kv[static_cast<std::size_t>(i - 1)]->list([&](const ShardedListResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(cluster->drive(done, 2'000'000));
    return out;
  }

  std::unique_ptr<ShardedCluster> cluster;
  std::vector<std::unique_ptr<ShardedKvClient>> kv;
};

void expect_views_equal(const std::map<std::string, kv::KvEntry>& sharded,
                        const std::map<std::string, kv::KvEntry>& oracle,
                        const std::map<std::string, kv::KvEntry>& model,
                        std::size_t shards, std::uint64_t seed, int after_op) {
  const auto describe = [&](const char* what) {
    return ::testing::Message() << what << " diverged: S=" << shards << " seed=" << seed
                                << " after op " << after_op;
  };
  ASSERT_EQ(oracle.size(), model.size()) << describe("oracle vs model key set");
  ASSERT_EQ(sharded.size(), model.size()) << describe("sharded vs model key set");
  for (const auto& [key, want] : model) {
    const auto o = oracle.find(key);
    ASSERT_NE(o, oracle.end()) << describe("oracle key set") << " key=" << key;
    EXPECT_EQ(o->second.value, want.value) << describe("oracle value") << " key=" << key;
    EXPECT_EQ(o->second.writer, want.writer) << describe("oracle writer") << " key=" << key;
    EXPECT_EQ(o->second.seq, want.seq) << describe("oracle seq") << " key=" << key;
    const auto s = sharded.find(key);
    ASSERT_NE(s, sharded.end()) << describe("sharded key set") << " key=" << key;
    EXPECT_EQ(s->second.value, want.value) << describe("sharded value") << " key=" << key;
    EXPECT_EQ(s->second.writer, want.writer) << describe("sharded writer") << " key=" << key;
    EXPECT_EQ(s->second.seq, want.seq) << describe("sharded seq") << " key=" << key;
  }
}

void run_differential_workload(std::size_t shards, std::uint64_t seed, kv::KvTuning tuning = {},
                               ustor::DigestMode digest = ustor::DigestMode::kChunked) {
  SCOPED_TRACE(::testing::Message() << "S=" << shards << " seed=" << seed
                                    << " incremental=" << tuning.incremental_encode
                                    << " memo=" << tuning.decode_memo
                                    << " chunked=" << (digest == ustor::DigestMode::kChunked));
  constexpr int kOps = 48;
  constexpr int kCheckEvery = 12;
  constexpr int kKeyPool = 16;

  Rng rng(seed);
  ShardedRig sharded(shards, seed, tuning, digest);
  OracleRig oracle(seed ^ 0xdeadbeef, tuning, digest);  // independent timing, same ops
  Model model;

  for (int op = 1; op <= kOps; ++op) {
    const ClientId who = static_cast<ClientId>(1 + rng.next_below(kClients));
    const std::string key = "key-" + std::to_string(rng.next_below(kKeyPool));
    const std::size_t kind = rng.next_below(10);
    if (kind < 6) {  // put
      const std::string value = "v" + std::to_string(op) + "-c" + std::to_string(who);
      sharded.put(who, key, value);
      oracle.put(who, key, value);
      model.put(who, key, value);
    } else if (kind < 8) {  // erase
      sharded.erase(who, key);
      oracle.erase(who, key);
      model.erase(who, key);
    } else {  // point get, compared across all three on the spot
      const ShardedGetResult got = sharded.get(who, key);
      const std::optional<kv::KvEntry> want_o = oracle.get(who, key);
      const auto m = model.merged();
      const auto want_m = m.find(key);
      ASSERT_EQ(got.entry.has_value(), want_o.has_value());
      ASSERT_EQ(got.entry.has_value(), want_m != m.end());
      if (got.entry.has_value()) {
        EXPECT_EQ(got.entry->value, want_o->value);
        EXPECT_EQ(got.entry->value, want_m->second.value);
        EXPECT_EQ(got.entry->writer, want_m->second.writer);
        EXPECT_EQ(got.entry->seq, want_m->second.seq);
      }
      EXPECT_EQ(got.shard, sharded.kv[0]->home_shard(key));
      EXPECT_FALSE(got.shard_failed);
    }

    if (op % kCheckEvery == 0 || op == kOps) {
      // Quiescent point: every issued op has completed; all replicas of
      // the truth must agree, from every reader's seat.
      const ClientId reader = static_cast<ClientId>(1 + rng.next_below(kClients));
      const ShardedListResult sl = sharded.list(reader);
      EXPECT_TRUE(sl.complete);
      expect_views_equal(sl.entries, oracle.list(reader), model.merged(), shards, seed, op);
    }
  }
}

TEST(ShardDifferential, MergedViewsAgreeAcrossShardCountsAndSeeds) {
  for (std::size_t shards = 1; shards <= 4; ++shards) {
    for (const std::uint64_t seed : {101u, 202u, 303u}) {
      run_differential_workload(shards, seed);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ShardDifferential, LegacyFullReencodePathAgreesToo) {
  // The O(change) machinery behind a knob: with incremental encoding,
  // decode memos AND chunked digests all forced OFF, the same workloads
  // must still agree with the oracle and the model — the knob selects a
  // cost model, never semantics.
  const kv::KvTuning legacy{/*incremental_encode=*/false, /*decode_memo=*/false};
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    run_differential_workload(shards, 101, legacy, ustor::DigestMode::kFlat);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ShardDifferential, DeltaAndLegacyModesProduceIdenticalViewsAndStability) {
  // Replay ONE op stream through two sharded deployments with identical
  // seeds, one on the delta paths and one forced legacy: merged views
  // must match key-for-key and every shard's stability cut must advance
  // identically (the knobs change neither message counts nor sizes, so
  // even the virtual-time schedules coincide).
  const kv::KvTuning legacy{false, false};
  ShardedRig delta(2, 505);
  ShardedRig forced(2, 505, legacy, ustor::DigestMode::kFlat);
  Rng rng(606);
  for (int op = 0; op < 30; ++op) {
    const ClientId who = static_cast<ClientId>(1 + rng.next_below(kClients));
    const std::string key = "key-" + std::to_string(rng.next_below(12));
    if (rng.next_below(4) == 0) {
      delta.erase(who, key);
      forced.erase(who, key);
    } else {
      const std::string value = "v" + std::to_string(op);
      delta.put(who, key, value);
      forced.put(who, key, value);
    }
  }
  const ShardedListResult a = delta.list(1);
  const ShardedListResult b = forced.list(1);
  EXPECT_TRUE(a.complete);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (const auto& [key, want] : b.entries) {
    const auto it = a.entries.find(key);
    ASSERT_NE(it, a.entries.end()) << key;
    EXPECT_EQ(it->second.value, want.value) << key;
    EXPECT_EQ(it->second.writer, want.writer) << key;
    EXPECT_EQ(it->second.seq, want.seq) << key;
  }
  for (ClientId i = 1; i <= kClients; ++i) {
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_EQ(delta.kv[static_cast<std::size_t>(i - 1)]->shard_stable_ts(s),
                forced.kv[static_cast<std::size_t>(i - 1)]->shard_stable_ts(s))
          << "client " << i << " shard " << s;
    }
  }
}

// --- Aggregate fail-aware semantics ---------------------------------------

TEST(ShardedFailAware, ForkedShardSurfacesThroughShardedClient) {
  // Shard 0's server forks its clients; shard 1 stays correct. The
  // sharded client must report the failure with the right shard index,
  // keep serving keys homed on the healthy shard, and flag gets routed to
  // the forked one.
  ShardedClusterConfig cfg;
  cfg.shards = 2;
  cfg.seed = 17;
  cfg.shard_template.n = 2;
  cfg.shard_template.with_server = false;  // servers attached by hand below
  cfg.shard_template.faust.dummy_read_period = 400;
  cfg.shard_template.faust.probe_interval = 3'000;
  cfg.shard_template.faust.probe_check_period = 700;
  ShardedCluster sc(cfg);
  adversary::ForkingServer bad(2, sc.shard(0).net());
  ustor::Server good(2, sc.shard(1).net());

  ShardedKvClient kv1(sc, 1), kv2(sc, 2);
  std::vector<std::size_t> reported;
  kv1.on_fail = [&](std::size_t shard, FailureReason) { reported.push_back(shard); };

  // One key per shard (probed from the pool; the router decides homes).
  std::string key0, key1;
  for (int k = 0; key0.empty() || key1.empty(); ++k) {
    const std::string key = "k" + std::to_string(k);
    (sc.router().shard_of(key) == 0 ? key0 : key1) = key;
  }

  bool done = false;
  kv1.put(key0, "on-forked-shard", [&](Timestamp) { done = true; });
  ASSERT_TRUE(sc.drive(done));
  done = false;
  kv1.put(key1, "on-healthy-shard", [&](Timestamp) { done = true; });
  ASSERT_TRUE(sc.drive(done));

  // Fork shard 0 between its two clients; client 2 writes the same key in
  // the forked world.
  bad.isolate(2);
  done = false;
  kv2.put(key0, "forked-write", [&](Timestamp) { done = true; });
  ASSERT_TRUE(sc.drive(done));

  sc.run_for(300'000);  // dummy reads + offline protocol expose the fork

  EXPECT_TRUE(kv1.any_shard_failed());
  ASSERT_FALSE(reported.empty());
  for (const std::size_t s : reported) EXPECT_EQ(s, 0u);
  EXPECT_EQ(kv1.failed_shards(), std::vector<std::size_t>{0});
  EXPECT_FALSE(sc.shard(1).any_failed()) << "healthy shard must be untouched";

  // Gets on the failed shard are flagged, not hung.
  bool got = false;
  ShardedGetResult r0;
  kv1.get(key0, [&](const ShardedGetResult& r) {
    r0 = r;
    got = true;
  });
  ASSERT_TRUE(sc.drive(got));
  EXPECT_TRUE(r0.shard_failed);
  EXPECT_FALSE(kv1.stable(r0));

  // The healthy shard still serves, and a fan-out list reports the gap.
  got = false;
  ShardedGetResult r1;
  kv1.get(key1, [&](const ShardedGetResult& r) {
    r1 = r;
    got = true;
  });
  ASSERT_TRUE(sc.drive(got));
  EXPECT_FALSE(r1.shard_failed);
  ASSERT_TRUE(r1.entry.has_value());
  EXPECT_EQ(r1.entry->value, "on-healthy-shard");

  got = false;
  ShardedListResult l;
  kv1.list([&](const ShardedListResult& lr) {
    l = lr;
    got = true;
  });
  ASSERT_TRUE(sc.drive(got));
  EXPECT_FALSE(l.complete);
  EXPECT_TRUE(l.entries.contains(key1));
  EXPECT_FALSE(l.entries.contains(key0));
}

TEST(ShardedFailAware, MidOperationFailureSettlesInFlightOps) {
  // A shard can fail while ops are in flight (the halted FaustClient
  // drops its callbacks). The sharded client must complete those ops with
  // the failure outcome — and a fan-out list must still deliver the
  // healthy shards' results — instead of hanging its callers.
  ShardedClusterConfig cfg;
  cfg.shards = 2;
  cfg.seed = 31;
  cfg.shard_template.n = 2;
  cfg.shard_template.faust.dummy_read_period = 0;  // only user ops in flight
  cfg.shard_template.faust.probe_check_period = 0;
  ShardedCluster sc(cfg);
  ShardedKvClient kv1(sc, 1);

  std::string key0, key1;
  for (int k = 0; key0.empty() || key1.empty(); ++k) {
    const std::string key = "mid" + std::to_string(k);
    (sc.router().shard_of(key) == 0 ? key0 : key1) = key;
  }
  bool done = false;
  kv1.put(key0, "before", [&](Timestamp) { done = true; });
  ASSERT_TRUE(sc.drive(done));
  done = false;
  kv1.put(key1, "healthy", [&](Timestamp) { done = true; });
  ASSERT_TRUE(sc.drive(done));

  // Shard 0's server goes silent: ops routed there can never complete on
  // their own.
  sc.shard(0).net().crash(kServerNode);

  bool got = false;
  ShardedGetResult gr;
  kv1.get(key0, [&](const ShardedGetResult& r) {
    gr = r;
    got = true;
  });
  bool put_done = false;
  Timestamp put_ts = 77;
  kv1.put(key0, "after-crash", [&](Timestamp t) {
    put_ts = t;
    put_done = true;
  });
  bool listed = false;
  ShardedListResult lr;
  kv1.list([&](const ShardedListResult& r) {
    lr = r;
    listed = true;
  });
  sc.run_for(50'000);
  EXPECT_FALSE(got) << "crashed server cannot answer; op must still be pending";
  EXPECT_FALSE(listed);

  // Client 2 reports the provider failed (bare peer report over the
  // offline channel, §6); client 1's fail_i fires mid-operation.
  sc.shard(0).mail().post(2, 1, ustor::encode(ustor::FailureMessage{}));
  sc.run_for(50'000);

  ASSERT_TRUE(got) << "in-flight get must settle on fail_i";
  EXPECT_TRUE(gr.shard_failed);
  EXPECT_EQ(gr.shard, 0u);
  ASSERT_TRUE(put_done) << "in-flight put must settle on fail_i";
  EXPECT_EQ(put_ts, 0u);
  ASSERT_TRUE(listed) << "fan-out list must deliver the healthy shard";
  EXPECT_FALSE(lr.complete);
  EXPECT_TRUE(lr.entries.contains(key1));
  EXPECT_FALSE(lr.entries.contains(key0));

  // Ops issued after the failure keep taking the immediate path.
  got = false;
  kv1.get(key0, [&](const ShardedGetResult& r) {
    gr = r;
    got = true;
  });
  EXPECT_TRUE(got);
  EXPECT_TRUE(gr.shard_failed);
}

TEST(ShardedStability, KeyStabilityFollowsItsHomeShardsCut) {
  // With dummy reads propagating versions, a written key's merged value
  // becomes stable once the home shard's cut covers the observing reads —
  // and only the home shard's cut matters.
  ShardedClusterConfig cfg;
  cfg.shards = 2;
  cfg.seed = 23;
  cfg.shard_template.n = 2;
  cfg.shard_template.faust.dummy_read_period = 300;
  ShardedCluster sc(cfg);
  ShardedKvClient kv1(sc, 1);

  bool done = false;
  kv1.put("stab-key", "value", [&](Timestamp) { done = true; });
  ASSERT_TRUE(sc.drive(done));

  bool got = false;
  ShardedGetResult r;
  kv1.get("stab-key", [&](const ShardedGetResult& res) {
    r = res;
    got = true;
  });
  ASSERT_TRUE(sc.drive(got));
  ASSERT_TRUE(r.entry.has_value());
  ASSERT_GT(r.read_ts, 0u);
  EXPECT_EQ(r.shard, sc.router().shard_of("stab-key"));

  // Dummy reads advance the cut; the result must become stable within a
  // bounded number of rounds.
  bool stable = kv1.stable(r);
  for (int rounds = 0; !stable && rounds < 200; ++rounds) {
    sc.run_for(2'000);
    stable = kv1.stable(r);
  }
  EXPECT_TRUE(stable) << "home shard's cut never covered the read";
  EXPECT_GE(kv1.shard_stable_ts(r.shard), r.read_ts);
}

}  // namespace
}  // namespace faust::shard
