// FAUST service tests (Def. 5): stability propagation, failure detection
// with accuracy and completeness, offline PROBE/VERSION/FAILURE flow.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/forking_server.h"
#include "faust/cluster.h"

namespace faust {
namespace {

TEST(Faust, WriteReadRoundtripWithTimestamps) {
  Cluster cl;
  const Timestamp t1 = cl.write(1, "hello");
  EXPECT_EQ(t1, 1u);
  const ustor::Value v = cl.read(2, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "hello");
}

TEST(Faust, TimestampsMonotonicAcrossUserOps) {
  ClusterConfig cfg;
  cfg.faust.dummy_read_period = 300;  // dummy reads consume timestamps too
  Cluster cl(cfg);
  Timestamp prev = 0;
  for (int k = 0; k < 5; ++k) {
    const Timestamp t = cl.write(1, "v" + std::to_string(k));
    EXPECT_GT(t, prev) << "Def. 5 Integrity";
    prev = t;
    cl.run_for(700);  // let dummy reads interleave
  }
}

TEST(Faust, StabilityAdvancesThroughDummyReads) {
  Cluster cl;
  const Timestamp t = cl.write(1, "data");
  // No user activity at C2/C3 — their dummy reads and C1's must still
  // propagate knowledge until C1's write is stable w.r.t. everyone.
  cl.run_for(20'000);
  EXPECT_GE(cl.client(1).fully_stable_timestamp(), t);
  EXPECT_FALSE(cl.any_failed());
}

TEST(Faust, OnStableNotificationsAreMonotone) {
  Cluster cl;
  std::vector<FaustClient::StabilityCut> cuts;
  cl.client(1).on_stable = [&](const FaustClient::StabilityCut& w) { cuts.push_back(w); };
  cl.write(1, "a");
  cl.write(1, "b");
  cl.run_for(20'000);
  ASSERT_FALSE(cuts.empty());
  for (std::size_t k = 1; k < cuts.size(); ++k) {
    for (std::size_t j = 0; j < cuts[k].size(); ++j) {
      EXPECT_GE(cuts[k][j], cuts[k - 1][j]) << "cut must only advance";
    }
  }
  // W[1] (own entry) reflects the latest own op.
  EXPECT_GE(cuts.back()[0], 2u);
}

TEST(Faust, NoFalseFailuresUnderCorrectServer) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 99;
  Cluster cl(cfg);
  for (int round = 0; round < 15; ++round) {
    cl.write((round % 4) + 1, "r" + std::to_string(round));
    cl.read(((round + 1) % 4) + 1, (round % 4) + 1);
    cl.run_for(1'000);
  }
  cl.run_for(50'000);
  EXPECT_FALSE(cl.any_failed()) << "failure-detection accuracy (Def. 5.5)";
}

TEST(Faust, ForkDetectedAndPropagatedToAllClients) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.with_server = false;
  Cluster cl(cfg);
  adversary::ForkingServer server(cfg.n, cl.net());
  server.isolate(3);
  server.assign(4, server.fork_of(3));

  // Activity in both forks ⇒ incomparable versions exist.
  cl.write(1, "a");
  cl.write(3, "b");
  cl.read(2, 1);
  cl.read(4, 3);

  // Offline exchange (probes or failure broadcast) must catch it.
  cl.run_for(200'000);
  EXPECT_TRUE(cl.all_failed()) << "detection completeness (Def. 5.7)";
  int incomparable = 0, peer = 0;
  for (ClientId i = 1; i <= cfg.n; ++i) {
    const auto reason = cl.client(i).failure_reason();
    ASSERT_TRUE(reason.has_value());
    if (*reason == FailureReason::kIncomparableVersions) ++incomparable;
    if (*reason == FailureReason::kPeerReport) ++peer;
  }
  EXPECT_GE(incomparable, 1) << "someone saw the evidence first-hand";
  EXPECT_GE(peer + incomparable, 4);
}

TEST(Faust, FailedClientStopsAcceptingOps) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.with_server = false;
  Cluster cl(cfg);
  adversary::ForkingServer server(cfg.n, cl.net());
  cl.write(1, "a");
  server.isolate(2);
  cl.write(2, "b");
  cl.run_for(200'000);
  ASSERT_TRUE(cl.all_failed());
  const Timestamp t = cl.write(1, "after-fail", /*step_budget=*/10'000);
  EXPECT_EQ(t, 0u) << "halted client must not run operations";
}

TEST(Faust, StabilityDetectionSurvivesServerCrash) {
  // §6's motivation for client-to-client probing: after the server goes
  // silent, versions already exchanged still make operations stable.
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.faust.dummy_read_period = 0;  // manual control
  cfg.faust.probe_interval = 2'000;
  cfg.faust.probe_check_period = 500;
  Cluster cl(cfg);

  const Timestamp t = cl.write(1, "a");
  const ustor::Value v = cl.read(2, 1);  // C2's version now covers C1's op
  ASSERT_TRUE(v.has_value());

  cl.net().crash(kServerNode);

  // C1 can no longer reach the server, but probing C2 directly yields
  // C2's version, which proves stability of C1's op w.r.t. C2.
  cl.run_for(100'000);
  EXPECT_FALSE(cl.any_failed()) << "a crashed server is not Byzantine evidence";
  EXPECT_GE(cl.client(1).fully_stable_timestamp(), t);
  EXPECT_GT(cl.client(1).probes_sent(), 0u);
  EXPECT_GT(cl.client(1).versions_received(), 0u);
}

TEST(Faust, ProbeRoundtripUpdatesStaleEntries) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.faust.dummy_read_period = 0;
  cfg.faust.probe_interval = 1'000;
  cfg.faust.probe_check_period = 300;
  Cluster cl(cfg);
  cl.write(1, "x");
  cl.read(3, 1);  // C3 knows C1's op; C2 knows nothing yet
  cl.net().crash(kServerNode);
  cl.run_for(50'000);
  // C2 probed both; C3 (or C1) answered with the max version; C2's cut
  // for its own ops stays 0 (it ran none) but it learned versions without
  // declaring failure.
  EXPECT_GT(cl.client(2).versions_received(), 0u);
  EXPECT_FALSE(cl.any_failed());
}

TEST(Faust, EvidenceFreeFailureReportAccepted) {
  // A USTOR-level detection (no transferable evidence) still halts
  // everyone via the FAILURE broadcast. Use a garbage-sending server.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.with_server = false;
  Cluster cl(cfg);

  class GarbageServer : public net::Node {
   public:
    explicit GarbageServer(net::Network& n) : net_(n) { net_.attach(kServerNode, *this); }
    void on_message(NodeId from, BytesView) override {
      net_.send(kServerNode, from, to_bytes("!!!! not a protocol message !!!!"));
    }
    net::Network& net_;
  } server(cl.net());

  cl.write(1, "x", /*step_budget=*/10'000);  // will fail, not complete
  EXPECT_TRUE(cl.client(1).failed());
  EXPECT_EQ(cl.client(1).failure_reason(), FailureReason::kUstorDetected);
  cl.run_for(100'000);
  EXPECT_TRUE(cl.all_failed()) << "peers accept the (unprovable) report";
  EXPECT_EQ(cl.client(2).failure_reason(), FailureReason::kPeerReport);
}

TEST(Faust, FailureReportCarriesVerifiableEvidence) {
  ClusterConfig cfg;
  cfg.n = 2;
  cfg.with_server = false;
  Cluster cl(cfg);
  adversary::ForkingServer server(cfg.n, cl.net());
  cl.write(1, "a");
  server.isolate(2);
  cl.write(2, "b");
  cl.run_for(300'000);
  ASSERT_TRUE(cl.all_failed());

  // At least one client detected the incomparability first-hand; its
  // report carries evidence any third party can re-verify.
  bool evidence_seen = false;
  for (ClientId i = 1; i <= cfg.n; ++i) {
    const auto& report = cl.client(i).failure_report();
    ASSERT_TRUE(report.has_value());
    EXPECT_FALSE(report->known_versions.empty());
    if (report->evidence.has_value()) {
      evidence_seen = true;
      EXPECT_TRUE(verify_failure_evidence(*cl.sigs(), cfg.n, *report->evidence));
      // Tampered evidence must not verify.
      ustor::FailureMessage bad = *report->evidence;
      bad.a.version.v(1) += 1;
      EXPECT_FALSE(verify_failure_evidence(*cl.sigs(), cfg.n, bad));
    }
  }
  EXPECT_TRUE(evidence_seen);
}

TEST(Faust, QueuedUserOpsRunInOrder) {
  Cluster cl;
  std::vector<Timestamp> ts;
  cl.client(1).write(to_bytes("a"), [&](Timestamp t) { ts.push_back(t); });
  cl.client(1).write(to_bytes("b"), [&](Timestamp t) { ts.push_back(t); });
  cl.client(1).read(1, [&](const ustor::Value& v, Timestamp t) {
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(to_string(*v), "b");
    ts.push_back(t);
  });
  cl.run_for(10'000);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_LT(ts[0], ts[1]);
  EXPECT_LT(ts[1], ts[2]);
}

}  // namespace
}  // namespace faust
