// rt::ThreadedRuntime semantics: the executor-seam contract (deadline
// order, FIFO within a deadline, cancel, virtual now()), the monotonic
// pacing mode, cross-thread posting, pause/stop lifecycle — and the
// paper's whole FAUST stack running unchanged on a runtime thread, which
// is the point of the seam.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "faust/cluster.h"
#include "rt/threaded_runtime.h"
#include "sim/scheduler.h"

namespace faust::rt {
namespace {

using namespace std::chrono_literals;

/// Spin until `flag` (set on the runtime thread) or a generous deadline.
bool await_flag(const std::atomic<bool>& flag, std::chrono::milliseconds timeout = 10s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!flag.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(ThreadedRuntime, DeadlineOrderFifoWithinDeadline) {
  ThreadedRuntimeConfig cfg;
  cfg.start_paused = true;  // freeze so the schedule order is ours to pick
  ThreadedRuntime rt(cfg);

  std::vector<int> order;  // written only on the runtime thread
  rt.after(200, [&] { order.push_back(3); });
  rt.after(100, [&] { order.push_back(1); });
  rt.after(200, [&] { order.push_back(4); });  // same deadline: after 3
  rt.after(150, [&] { order.push_back(2); });
  std::atomic<bool> done{false};
  rt.after(300, [&] { done.store(true, std::memory_order_release); });

  rt.start();
  ASSERT_TRUE(await_flag(done));
  rt.stop();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(rt.now(), 300u) << "now() must advance to the last executed deadline";
  EXPECT_EQ(rt.executed(), 5u);
}

TEST(ThreadedRuntime, CancelPreventsExecution) {
  ThreadedRuntimeConfig cfg;
  cfg.start_paused = true;
  ThreadedRuntime rt(cfg);

  std::atomic<bool> cancelled_ran{false};
  std::atomic<bool> done{false};
  const exec::EventId id = rt.after(10, [&] { cancelled_ran.store(true); });
  rt.after(20, [&] { done.store(true, std::memory_order_release); });
  rt.cancel(id);
  rt.cancel(id);       // double-cancel is a no-op
  rt.cancel(9999999);  // as is cancelling garbage

  rt.start();
  ASSERT_TRUE(await_flag(done));
  rt.stop();
  EXPECT_FALSE(cancelled_ran.load());
}

TEST(ThreadedRuntime, PostRunsSoonAndInFifoOrder) {
  ThreadedRuntime rt;
  std::vector<int> order;
  std::atomic<bool> done{false};
  rt.post([&] { order.push_back(1); });
  rt.post([&] { order.push_back(2); });
  rt.post([&] { done.store(true, std::memory_order_release); });
  ASSERT_TRUE(await_flag(done));
  rt.stop();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ThreadedRuntime, RelativeTimersComposeOnTheRuntimeThread) {
  // A task that rearms itself: each iteration's after() is relative to
  // the executing event's deadline, as in the simulator.
  ThreadedRuntime rt;
  std::atomic<int> fired{0};
  std::atomic<bool> done{false};
  std::function<void()> tick = [&] {
    if (fired.fetch_add(1) + 1 == 5) {
      done.store(true, std::memory_order_release);
      return;
    }
    rt.after(100, tick);
  };
  rt.after(100, tick);
  ASSERT_TRUE(await_flag(done));
  rt.stop();
  EXPECT_EQ(fired.load(), 5);
  EXPECT_EQ(rt.now(), 500u) << "5 rearms x 100 ticks of virtual time";
}

TEST(ThreadedRuntime, PacedTickWaitsForTheMonotonicClock) {
  ThreadedRuntimeConfig cfg;
  cfg.tick = 1ms;
  // Deadlines pace against the runtime's construction instant, so the
  // stopwatch must start before the constructor runs.
  const auto t0 = std::chrono::steady_clock::now();
  ThreadedRuntime rt(cfg);
  std::atomic<bool> done{false};
  rt.after(25, [&] { done.store(true, std::memory_order_release); });
  ASSERT_TRUE(await_flag(done));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  rt.stop();
  EXPECT_GE(elapsed, 25ms) << "a 25-tick deadline at 1 ms/tick must pace real time";
}

TEST(ThreadedRuntime, CrossThreadPostsAllRunSerialized) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  ThreadedRuntime rt;
  std::atomic<int> ran{0};
  std::atomic<int> in_task{0};
  std::atomic<bool> overlapped{false};
  {
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&] {
        for (int k = 0; k < kPerThread; ++k) {
          rt.post([&] {
            if (in_task.fetch_add(1) != 0) overlapped.store(true);
            EXPECT_TRUE(rt.on_runtime_thread());
            in_task.fetch_sub(1);
            ran.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    for (auto& p : producers) p.join();
  }
  rt.drain();
  rt.stop();
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
  EXPECT_FALSE(overlapped.load()) << "tasks must never run concurrently";
}

TEST(ThreadedRuntime, StartPausedHoldsEventsAndStopDropsThem) {
  ThreadedRuntimeConfig cfg;
  cfg.start_paused = true;
  ThreadedRuntime rt(cfg);
  std::atomic<bool> ran{false};
  rt.post([&] { ran.store(true); });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(ran.load()) << "paused runtime must not execute";
  rt.stop();  // never started: queued work is dropped
  EXPECT_FALSE(ran.load());
  // After stop, scheduling degrades to a harmless no-op.
  EXPECT_EQ(rt.post([&] { ran.store(true); }), 0u);
  EXPECT_EQ(rt.after(5, [&] { ran.store(true); }), 0u);
  rt.cancel(1);
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(ran.load());
}

// --- The seam's purpose: the FAUST stack on a runtime thread ------------

TEST(ThreadedRuntime, FullFaustClusterRunsOnARuntimeThread) {
  // The exact Cluster the simulator runs — network, mailbox, server,
  // FaustClients with their dummy-read and probe timers — bound to a
  // ThreadedRuntime instead. Everything must be driven through post():
  // the protocol objects stay single-threaded, owned by the runtime.
  // Assembly happens while the runtime is paused — armed timers must not
  // fire into a half-built deployment (the rule ShardedCluster encodes).
  ThreadedRuntimeConfig rt_cfg;
  rt_cfg.start_paused = true;
  ThreadedRuntime rt(rt_cfg);
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 7;
  cfg.executor = &rt;
  Cluster cluster(cfg);
  rt.start();

  std::atomic<bool> wrote{false};
  Timestamp wrote_ts = 0;
  rt.post([&] {
    cluster.client(1).write(to_bytes("hello-threads"), [&](Timestamp t) {
      wrote_ts = t;
      wrote.store(true, std::memory_order_release);
    });
  });
  ASSERT_TRUE(await_flag(wrote));
  EXPECT_GT(wrote_ts, 0u);

  std::atomic<bool> read_done{false};
  ustor::Value got;
  rt.post([&] {
    cluster.client(2).read(1, [&](const ustor::Value& v, Timestamp) {
      got = v;
      read_done.store(true, std::memory_order_release);
    });
  });
  ASSERT_TRUE(await_flag(read_done));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_string(*got), "hello-threads");

  // With dummy reads and probes live on the runtime's timer wheel, the
  // stability cut must eventually cover the write (stable_i of §6).
  std::atomic<bool> stable{false};
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!stable.load() && std::chrono::steady_clock::now() < deadline) {
    std::atomic<bool> probed{false};
    rt.post([&] {
      if (cluster.client(1).fully_stable_timestamp() >= wrote_ts) stable.store(true);
      probed.store(true, std::memory_order_release);
    });
    if (!await_flag(probed)) break;
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(stable.load()) << "stability cut never covered the write";

  // Teardown order matters and is part of the contract: stop the runtime
  // (joins the thread), then destroy the cluster — its timer cancels hit
  // a stopped executor, which must be a harmless no-op.
  rt.stop();
  EXPECT_FALSE(cluster.any_failed());
}

TEST(ThreadedRuntime, SimSchedulerSatisfiesTheSameSeamContract) {
  // The other side of the seam: sim::Scheduler through the Executor
  // interface, same deadline-order/FIFO/cancel/post semantics.
  sim::Scheduler sched;
  exec::Executor& ex = sched;
  std::vector<int> order;
  ex.after(200, [&] { order.push_back(2); });
  ex.after(100, [&] { order.push_back(1); });
  const exec::EventId dead = ex.after(150, [&] { order.push_back(99); });
  ex.cancel(dead);
  ex.post([&] { order.push_back(0); });  // post = after(0): runs first
  EXPECT_EQ(ex.now(), 0u);
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ex.now(), 200u);
}

}  // namespace
}  // namespace faust::rt
