// Tests of the consistency checkers themselves: hand-built histories with
// known verdicts, plus cross-validation of the polynomial linearizability
// checker against the exhaustive Wing–Gong search on random histories.
#include <gtest/gtest.h>

#include <vector>

#include "checker/causal.h"
#include "checker/history.h"
#include "checker/linearizability.h"
#include "checker/weak_fork.h"
#include "common/rng.h"

namespace faust::checker {
namespace {

/// Tiny DSL for building histories by hand.
struct H {
  std::vector<OpRecord> ops;

  int write(ClientId c, std::string_view v, sim::Time inv, sim::Time resp) {
    OpRecord op;
    op.id = static_cast<int>(ops.size());
    op.client = c;
    op.oc = ustor::OpCode::kWrite;
    op.target = c;
    op.value = to_bytes(v);
    op.invoked = inv;
    op.responded = resp;
    op.t = 0;
    ops.push_back(op);
    return op.id;
  }

  int read(ClientId c, ClientId reg, std::optional<std::string> v, sim::Time inv,
           sim::Time resp) {
    OpRecord op;
    op.id = static_cast<int>(ops.size());
    op.client = c;
    op.oc = ustor::OpCode::kRead;
    op.target = reg;
    op.value = v.has_value() ? ustor::Value(to_bytes(*v)) : std::nullopt;
    op.invoked = inv;
    op.responded = resp;
    ops.push_back(op);
    return op.id;
  }
};

TEST(Linearizability, EmptyAndTrivialPass) {
  H h;
  EXPECT_TRUE(check_linearizable(h.ops).ok);
  h.write(1, "a", 0, 10);
  EXPECT_TRUE(check_linearizable(h.ops).ok);
}

TEST(Linearizability, SequentialReadAfterWritePasses) {
  H h;
  h.write(1, "a", 0, 10);
  h.read(2, 1, "a", 20, 30);
  EXPECT_TRUE(check_linearizable(h.ops).ok);
  EXPECT_TRUE(check_linearizable_brute(h.ops));
}

TEST(Linearizability, StaleReadAfterCompletedWriteFails) {
  H h;
  h.write(1, "a", 0, 10);
  h.read(2, 1, std::nullopt, 20, 30);  // ⊥ after the write completed
  EXPECT_FALSE(check_linearizable(h.ops).ok);
  EXPECT_FALSE(check_linearizable_brute(h.ops));
}

TEST(Linearizability, ConcurrentReadMayGoEitherWay) {
  H h1;
  h1.write(1, "a", 0, 100);
  h1.read(2, 1, "a", 10, 20);  // read of in-flight write: fine
  EXPECT_TRUE(check_linearizable(h1.ops).ok);
  EXPECT_TRUE(check_linearizable_brute(h1.ops));

  H h2;
  h2.write(1, "a", 0, 100);
  h2.read(2, 1, std::nullopt, 10, 20);  // or not yet: also fine
  EXPECT_TRUE(check_linearizable(h2.ops).ok);
  EXPECT_TRUE(check_linearizable_brute(h2.ops));
}

TEST(Linearizability, ReadFromTheFutureFails) {
  H h;
  h.read(2, 1, "a", 0, 5);  // completes before the write is invoked
  h.write(1, "a", 10, 20);
  EXPECT_FALSE(check_linearizable(h.ops).ok);
  EXPECT_FALSE(check_linearizable_brute(h.ops));
}

TEST(Linearizability, NewOldInversionFails) {
  // Both reads overlap nothing; r1 sees the newer write, the later r2
  // sees the older one: no single linearization can explain it.
  H h;
  h.write(1, "old", 0, 5);
  h.write(1, "new", 10, 15);
  h.read(2, 1, "new", 16, 20);
  h.read(3, 1, "old", 25, 30);
  EXPECT_FALSE(check_linearizable(h.ops).ok);
  EXPECT_FALSE(check_linearizable_brute(h.ops));
}

TEST(Linearizability, ThinAirValueFails) {
  H h;
  h.write(1, "a", 0, 10);
  h.read(2, 1, "never-written", 20, 30);
  EXPECT_FALSE(check_linearizable(h.ops).ok);
}

TEST(Linearizability, MultiRegisterIsLocal) {
  H h;
  h.write(1, "a", 0, 10);
  h.write(2, "b", 0, 10);
  h.read(3, 1, "a", 20, 30);
  h.read(3, 2, "b", 40, 50);
  EXPECT_TRUE(check_linearizable(h.ops).ok);
}

TEST(Linearizability, IncompleteWriteMayOrMayNotBeSeen) {
  H h1;
  h1.write(1, "a", 0, kNever);  // never completed
  h1.read(2, 1, "a", 100, 110);
  EXPECT_TRUE(check_linearizable(h1.ops).ok);

  H h2;
  h2.write(1, "a", 0, kNever);
  h2.read(2, 1, std::nullopt, 100, 110);
  EXPECT_TRUE(check_linearizable(h2.ops).ok);
}

TEST(Linearizability, CrossValidationAgainstBruteForce) {
  // Random small SWMR histories; the two checkers must agree exactly.
  Rng rng(2024);
  int disagreements = 0;
  int checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    H h;
    const int n_clients = 2 + static_cast<int>(rng.next_below(2));
    const int ops = 3 + static_cast<int>(rng.next_below(5));
    std::vector<sim::Time> client_clock(static_cast<std::size_t>(n_clients) + 1, 0);
    std::vector<std::vector<std::string>> written(static_cast<std::size_t>(n_clients) + 1);
    for (int k = 0; k < ops; ++k) {
      const ClientId c = 1 + static_cast<ClientId>(rng.next_below(
                                 static_cast<std::uint64_t>(n_clients)));
      auto& clock = client_clock[static_cast<std::size_t>(c)];
      const sim::Time inv = clock + rng.next_below(8);
      const sim::Time resp = inv + 1 + rng.next_below(10);
      clock = resp + 1;
      if (rng.chance(0.5)) {
        const std::string v = "v" + std::to_string(trial) + "_" + std::to_string(k);
        h.write(c, v, inv, resp);
        written[static_cast<std::size_t>(c)].push_back(v);
      } else {
        const ClientId reg = 1 + static_cast<ClientId>(rng.next_below(
                                     static_cast<std::uint64_t>(n_clients)));
        const auto& w = written[static_cast<std::size_t>(reg)];
        std::optional<std::string> v;
        if (!w.empty() && rng.chance(0.7)) {
          v = w[rng.next_below(w.size())];
        }
        h.read(c, reg, v, inv, resp);
      }
    }
    ++checked;
    const bool fast = check_linearizable(h.ops).ok;
    const bool brute = check_linearizable_brute(h.ops);
    if (fast != brute) ++disagreements;
    EXPECT_EQ(fast, brute) << "disagreement on trial " << trial;
  }
  EXPECT_EQ(disagreements, 0) << "out of " << checked;
}

TEST(Causal, RespectsTransitiveCausality) {
  // C1 writes a; C2 reads a then writes b; C3 reads b but misses a: a
  // causally precedes b, so C3's view is impossible.
  H bad;
  bad.write(1, "a", 0, 10);
  bad.read(2, 1, "a", 20, 30);
  bad.write(2, "b", 40, 50);
  bad.read(3, 2, "b", 60, 70);
  bad.read(3, 1, std::nullopt, 80, 90);
  EXPECT_FALSE(check_causal(bad.ops).ok);

  H good = bad;
  good.ops[4].value = to_bytes("a");  // C3 sees a as well
  EXPECT_TRUE(check_causal(good.ops).ok);
}

TEST(Causal, AllowsDivergentOrderOfConcurrentWrites) {
  // Two concurrent writes to different registers observed in different
  // orders by different clients: causal (not sequentially consistent).
  H h;
  h.write(1, "a", 0, 10);
  h.write(2, "b", 0, 10);
  h.read(3, 1, "a", 20, 25);
  h.read(3, 2, std::nullopt, 26, 30);
  h.read(4, 2, "b", 20, 25);
  h.read(4, 1, std::nullopt, 26, 30);
  EXPECT_TRUE(check_causal(h.ops).ok);
  // It is not linearizable, though.
  EXPECT_FALSE(check_linearizable(h.ops).ok);
}

TEST(Causal, ProgramOrderWithinClientEnforced) {
  // A client reads the new value, then the old one: its own program order
  // plus reads-from forbids any serialization.
  H h;
  h.write(1, "v1", 0, 10);
  h.write(1, "v2", 20, 30);
  h.read(2, 1, "v2", 40, 50);
  h.read(2, 1, "v1", 60, 70);
  EXPECT_FALSE(check_causal(h.ops).ok);
}

TEST(Causal, ThinAirFails) {
  H h;
  h.read(2, 1, "ghost", 0, 10);
  EXPECT_FALSE(check_causal(h.ops).ok);
}

TEST(WeakFork, ValidViewsAccepted) {
  // Figure 3 shape, hand-built.
  H h;
  const int w1 = h.write(1, "u", 0, 10);
  const int r1 = h.read(2, 1, std::nullopt, 20, 30);
  const int r2 = h.read(2, 1, "u", 40, 50);
  ViewMap views;
  views[1] = {w1};
  views[2] = {r1, w1, r2};
  const auto res = validate_weak_fork_linearizable(h.ops, views);
  EXPECT_TRUE(res.ok) << res.violation;
  // Strict fork-linearizability rejects the same views (real-time order).
  EXPECT_FALSE(validate_fork_linearizable(h.ops, views).ok);
  // And no other views would help.
  EXPECT_FALSE(exists_fork_linearizable_views(h.ops));
}

TEST(WeakFork, SequentialSpecViolationRejected) {
  H h;
  const int w1 = h.write(1, "u", 0, 10);
  const int r1 = h.read(2, 1, std::nullopt, 20, 30);
  ViewMap views;
  views[1] = {w1};
  views[2] = {w1, r1};  // read of ⊥ placed after the write
  EXPECT_FALSE(validate_weak_fork_linearizable(h.ops, views).ok);
}

TEST(WeakFork, MissingOwnOpRejected) {
  H h;
  const int w1 = h.write(1, "u", 0, 10);
  h.read(2, 1, "u", 20, 30);
  ViewMap views;
  views[1] = {w1};
  views[2] = {w1};  // C2's view omits its own read
  EXPECT_FALSE(validate_weak_fork_linearizable(h.ops, views).ok);
}

TEST(WeakFork, CausallyRequiredUpdateMissingRejected) {
  // C2 read u (so w1 → r); a view of C2 omitting w1 is illegal even
  // before the spec check — use a read that "guessed" the value.
  H h;
  const int w1 = h.write(1, "u", 0, 10);
  const int w2 = h.write(1, "v", 20, 30);
  const int r = h.read(2, 1, "v", 40, 50);
  ViewMap views;
  views[1] = {w1, w2};
  views[2] = {w2, r};  // misses w1, which causally precedes w2 (program order)
  const auto res = validate_weak_fork_linearizable(h.ops, views);
  EXPECT_FALSE(res.ok);
}

TEST(WeakFork, DoubleJoinRejected) {
  // Views share two ops of C1 but disagree on the prefix at the first —
  // at-most-one-join allows divergence only at the *last* common op.
  H h;
  const int w1 = h.write(1, "a", 0, 10);
  const int w2 = h.write(1, "b", 20, 30);
  const int r3 = h.read(3, 2, std::nullopt, 5, 8);
  const int r2 = h.read(2, 1, "a", 12, 15);
  ViewMap views;
  // C2 saw [w1, r2, w2]; C3 saw [r3, w1, w2]: w1 and w2 are common, and
  // the prefixes at w1 differ ([w1] vs [r3, w1]).
  views[2] = {w1, r2, w2};
  views[3] = {r3, w1, w2};
  const auto res = validate_weak_fork_linearizable(h.ops, views);
  EXPECT_FALSE(res.ok);
}

TEST(WeakFork, SingleDivergentLastOpAccepted) {
  // Same shape but only ONE common C1 op: allowed (the join happens at
  // the last operation only).
  H h;
  const int w1 = h.write(1, "a", 0, 10);
  const int r3 = h.read(3, 2, std::nullopt, 5, 8);
  const int r2 = h.read(2, 1, "a", 12, 15);
  ViewMap views;
  views[2] = {w1, r2};
  views[3] = {r3, w1};
  const auto res = validate_weak_fork_linearizable(h.ops, views);
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(WeakFork, LinearizableHistoryIsForkLinearizable) {
  H h;
  const int w1 = h.write(1, "a", 0, 10);
  const int r2 = h.read(2, 1, "a", 20, 30);
  EXPECT_TRUE(exists_fork_linearizable_views(h.ops));
  ViewMap views;
  views[1] = {w1, r2};
  views[2] = {w1, r2};
  EXPECT_TRUE(validate_fork_linearizable(h.ops, views).ok);
}

}  // namespace
}  // namespace faust::checker
