// Frame-decoder fuzz coverage (DESIGN.md D9 satellite): the socket
// transport parses UNTRUSTED bytes, so the decoder must survive
// truncated, oversized and garbage length prefixes, arbitrary read
// boundaries (every split offset), interleaved frames across
// connections, and pure noise — without crashing, misdelivering, or
// interpreting a single byte after a poison point. The suite runs in the
// ASan/UBSan CI matrix, which is where "no crash" gets teeth. The last
// tests aim the same garbage at a LIVE SocketTransport over a real
// socket: the poisoned connection dies, the transport and its healthy
// peers do not.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "rt/threaded_runtime.h"
#include "sock/frame.h"
#include "sock/socket_transport.h"

namespace faust::sock {
namespace {

Bytes cat(std::initializer_list<BytesView> parts) {
  Bytes out;
  for (const BytesView& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

struct Decoded {
  std::vector<Frame> frames;
  FrameDecoder::Sink sink() {
    return [this](Frame&& f) { frames.push_back(std::move(f)); };
  }
};

Bytes random_payload(Rng& rng, std::size_t max_len) {
  Bytes p(rng.next_below(max_len + 1));
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u64());
  return p;
}

// --- Reassembly correctness ------------------------------------------------

TEST(FrameDecoder, SplitAtEveryOffsetReassemblesIdentically) {
  const Bytes p1 = {0xde, 0xad, 0xbe, 0xef};
  const Bytes stream = cat({encode_hello_frame(7),
                            encode_data_frame(3, 0, BytesView(p1)),
                            encode_data_frame(0, 3, BytesView{}),  // empty payload
                            encode_data_frame(-2, 1'000'000, BytesView(p1))});
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder dec(1 << 20);
    Decoded got;
    ASSERT_TRUE(dec.feed(BytesView(stream.data(), split), got.sink()));
    ASSERT_TRUE(dec.feed(BytesView(stream.data() + split, stream.size() - split),
                         got.sink()));
    ASSERT_EQ(got.frames.size(), 4u) << "split " << split;
    EXPECT_EQ(got.frames[0].kind, kFrameHello);
    EXPECT_EQ(got.frames[0].incarnation, 7u);
    EXPECT_EQ(got.frames[1].from, 3);
    EXPECT_EQ(got.frames[1].to, 0);
    ASSERT_NE(got.frames[1].payload, nullptr);
    EXPECT_EQ(*got.frames[1].payload, p1);
    ASSERT_NE(got.frames[2].payload, nullptr);
    EXPECT_TRUE(got.frames[2].payload->empty());
    EXPECT_EQ(got.frames[3].from, -2);
    EXPECT_EQ(got.frames[3].to, 1'000'000);
    EXPECT_EQ(*got.frames[3].payload, p1);
  }
}

TEST(FrameDecoder, ByteAtATimeDelivery) {
  Rng rng(11);
  Bytes stream = cat({encode_hello_frame(1)});
  std::vector<Bytes> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back(random_payload(rng, 100));
    const Bytes f = encode_data_frame(i, i + 1, BytesView(payloads.back()));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameDecoder dec(1 << 20);
  Decoded got;
  for (const std::uint8_t b : stream) {
    ASSERT_TRUE(dec.feed(BytesView(&b, 1), got.sink()));
  }
  ASSERT_EQ(got.frames.size(), 21u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(got.frames[static_cast<std::size_t>(i) + 1].from, i);
    EXPECT_EQ(*got.frames[static_cast<std::size_t>(i) + 1].payload, payloads[static_cast<std::size_t>(i)]);
  }
}

TEST(FrameDecoder, TruncationIsWaitingNotError) {
  const Bytes p = {1, 2, 3, 4, 5, 6, 7, 8};
  const Bytes frame = encode_data_frame(1, 2, BytesView(p));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder dec(1 << 20);
    Decoded got;
    ASSERT_TRUE(dec.feed(BytesView(frame.data(), cut), got.sink())) << "cut " << cut;
    EXPECT_FALSE(dec.poisoned());
    EXPECT_TRUE(got.frames.empty()) << "cut " << cut;
  }
}

TEST(FrameDecoder, InterleavedStreamsStayIsolated) {
  // Two connections' streams chopped into alternating chunks: each
  // decoder only ever sees its own bytes, and neither the chunking of
  // one nor a poison on one may perturb the other.
  Rng rng(23);
  Bytes a = cat({encode_hello_frame(1)});
  Bytes b = cat({encode_hello_frame(2)});
  for (int i = 0; i < 10; ++i) {
    const Bytes pa = random_payload(rng, 64), pb = random_payload(rng, 64);
    const Bytes fa = encode_data_frame(1, 10, BytesView(pa));
    const Bytes fb = encode_data_frame(2, 20, BytesView(pb));
    a.insert(a.end(), fa.begin(), fa.end());
    b.insert(b.end(), fb.begin(), fb.end());
  }
  FrameDecoder da(1 << 20), db(1 << 20);
  Decoded ga, gb;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() || ib < b.size()) {
    const std::size_t ca = std::min<std::size_t>(1 + rng.next_below(7), a.size() - ia);
    const std::size_t cb = std::min<std::size_t>(1 + rng.next_below(7), b.size() - ib);
    if (ca > 0) ASSERT_TRUE(da.feed(BytesView(a.data() + ia, ca), ga.sink()));
    if (cb > 0) ASSERT_TRUE(db.feed(BytesView(b.data() + ib, cb), gb.sink()));
    ia += ca;
    ib += cb;
  }
  ASSERT_EQ(ga.frames.size(), 11u);
  ASSERT_EQ(gb.frames.size(), 11u);
  for (std::size_t i = 1; i < ga.frames.size(); ++i) {
    EXPECT_EQ(ga.frames[i].from, 1);
    EXPECT_EQ(gb.frames[i].from, 2);
  }
}

// --- Hostile input ---------------------------------------------------------

TEST(FrameDecoder, OversizedLengthPrefixPoisons) {
  Bytes evil;
  append_u32(evil, 100u << 20);  // 100MB claimed against a 1MB bound
  append_byte(evil, kFrameData);
  FrameDecoder dec(1 << 20);
  Decoded got;
  EXPECT_FALSE(dec.feed(BytesView(evil), got.sink()));
  EXPECT_TRUE(dec.poisoned());
  EXPECT_STRNE(dec.error(), "");
  EXPECT_TRUE(got.frames.empty());
  // Nothing after the poison point is interpreted — not even a pristine
  // valid frame.
  const Bytes fine = encode_data_frame(1, 2, BytesView{});
  EXPECT_FALSE(dec.feed(BytesView(fine), got.sink()));
  EXPECT_TRUE(got.frames.empty());
}

TEST(FrameDecoder, UnknownKindPoisons) {
  Bytes evil;
  append_u32(evil, 9);
  append_byte(evil, 0x77);
  FrameDecoder dec(1 << 20);
  Decoded got;
  EXPECT_FALSE(dec.feed(BytesView(evil), got.sink()));
  EXPECT_TRUE(dec.poisoned());
}

TEST(FrameDecoder, ShortDataAndMalformedHelloPoison) {
  for (const std::uint32_t len : {0u, 1u, 8u}) {  // DATA needs >= 9
    Bytes evil;
    append_u32(evil, len);
    append_byte(evil, kFrameData);
    evil.resize(evil.size() + len);
    FrameDecoder dec(1 << 20);
    Decoded got;
    EXPECT_FALSE(dec.feed(BytesView(evil), got.sink())) << "len " << len;
    EXPECT_TRUE(dec.poisoned());
  }
  for (const std::uint32_t len : {0u, 8u, 10u}) {  // HELLO needs == 9
    Bytes evil;
    append_u32(evil, len);
    append_byte(evil, kFrameHello);
    evil.resize(evil.size() + len);
    FrameDecoder dec(1 << 20);
    Decoded got;
    EXPECT_FALSE(dec.feed(BytesView(evil), got.sink())) << "len " << len;
    EXPECT_TRUE(dec.poisoned());
  }
}

TEST(FrameDecoder, PureNoiseNeverCrashes) {
  // Seeded garbage at random chunk boundaries: the decoder decodes,
  // waits, or poisons — and once poisoned stays poisoned. ASan/UBSan
  // make any overread here fatal.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    Bytes noise(1 + rng.next_below(4096));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
    FrameDecoder dec(1 << 16);
    Decoded got;
    std::size_t off = 0;
    bool alive = true;
    while (off < noise.size()) {
      const std::size_t chunk = std::min<std::size_t>(1 + rng.next_below(97), noise.size() - off);
      const bool ok = dec.feed(BytesView(noise.data() + off, chunk), got.sink());
      if (!alive) EXPECT_FALSE(ok) << "a poisoned decoder must stay poisoned";
      alive = ok;
      off += chunk;
    }
    for (const Frame& f : got.frames) {
      if (f.kind == kFrameData) ASSERT_NE(f.payload, nullptr);
    }
  }
}

TEST(FrameDecoder, MutatedValidStreamsNeverCrash) {
  Rng rng(99);
  Bytes stream = cat({encode_hello_frame(3)});
  for (int i = 0; i < 15; ++i) {
    const Bytes p = random_payload(rng, 200);
    const Bytes f = encode_data_frame(i, 42, BytesView(p));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = stream;
    const int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    FrameDecoder dec(1 << 16);
    Decoded got;
    (void)dec.feed(BytesView(mutated), got.sink());
    for (const Frame& f : got.frames) {
      if (f.kind == kFrameData) ASSERT_NE(f.payload, nullptr);
    }
  }
}

TEST(FrameDecoder, PartialCommitRespectsSpanContract) {
  // Drive next_span()/commit() directly with 1-byte commits against a
  // large-payload frame: the span pointer must track progress and never
  // shrink to zero while healthy.
  Bytes payload(10'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  const Bytes frame = encode_data_frame(5, 6, BytesView(payload));
  FrameDecoder dec(1 << 20);
  Decoded got;
  std::size_t off = 0;
  while (off < frame.size()) {
    auto [dst, room] = dec.next_span();
    ASSERT_NE(dst, nullptr);
    ASSERT_GT(room, 0u);
    const std::size_t n = std::min<std::size_t>(room, 1);
    std::memcpy(dst, frame.data() + off, n);
    ASSERT_TRUE(dec.commit(n, got.sink()));
    off += n;
  }
  ASSERT_EQ(got.frames.size(), 1u);
  EXPECT_EQ(*got.frames[0].payload, payload);
}

// --- Garbage against a LIVE transport --------------------------------------

class SinkNode : public net::Node {
 public:
  void on_message(NodeId, BytesView) override { ++count_; }
  int count() const { return count_; }

 private:
  std::atomic<int> count_{0};
};

TEST(SocketTransportFuzz, GarbageConnectionDiesAloneTransportSurvives) {
  rt::ThreadedRuntimeConfig rc;
  rc.tick = std::chrono::nanoseconds(1000);
  rt::ThreadedRuntime runtime(rc);

  SocketTransportConfig server_cfg;
  server_cfg.listen = Endpoint::tcp("127.0.0.1", 0);
  server_cfg.max_frame_bytes = 1 << 20;
  SocketTransport server(runtime, server_cfg);
  SinkNode node;
  server.attach(1, node);

  // A raw socket throwing noise: oversized prefix first so the poison is
  // guaranteed, then garbage. The connection must be closed by the
  // transport (read returns EOF here) without taking anything else down.
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.bound_endpoint().port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    Bytes noise(512);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
    if (trial % 2 == 0) {
      Bytes evil;
      append_u32(evil, 0xffffffffu);
      append_byte(evil, kFrameData);
      ASSERT_GT(::send(fd, evil.data(), evil.size(), MSG_NOSIGNAL), 0);
    }
    (void)::send(fd, noise.data(), noise.size(), MSG_NOSIGNAL);
    // Wait for the transport to hang up on us (POLLHUP / read 0).
    pollfd pfd{fd, POLLIN, 0};
    (void)::poll(&pfd, 1, 2000);
    char buf[64];
    (void)::read(fd, buf, sizeof(buf));
    ::close(fd);
  }

  // The transport survived and still serves a well-behaved peer.
  SocketTransportConfig client_cfg;
  client_cfg.peers[1] = server.bound_endpoint();
  SocketTransport client(runtime, client_cfg);
  client.send(2, 1, Bytes{0x01, 0x02, 0x03});
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (node.count() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(node.count(), 1);
  EXPECT_GE(server.wire().framing_errors, 1u);
  server.detach(1);
}

}  // namespace
}  // namespace faust::sock
