// A fail-aware distributed configuration store built on the unified
// faust::api::Store facade — three operators manage a service's
// configuration through an untrusted hosting provider; conflicting
// updates resolve deterministically, and a provider that serves
// different operators different configurations is detected and the store
// fenced.
//
//   build/examples/config_store
#include <cstdio>

#include "adversary/forking_server.h"
#include "api/store.h"
#include "faust/cluster.h"

using namespace faust;

namespace {

void show(api::Store& store, const char* who) {
  const api::ListResult r = store.list().settle();
  std::printf("  %s sees %zu config keys (complete=%s):\n", who, r.entries.size(),
              r.complete ? "yes" : "no");
  for (const auto& [key, entry] : r.entries) {
    std::printf("    %-22s = %-14s (set by operator %d, rev %llu)\n", key.c_str(),
                entry.value.c_str(), entry.writer, (unsigned long long)entry.seq);
  }
}

}  // namespace

int main() {
  std::printf("config-store — fail-aware configuration management\n");
  std::printf("===================================================\n\n");

  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 404;
  cfg.with_server = false;  // malicious later
  cfg.faust.dummy_read_period = 600;
  cfg.faust.probe_interval = 4'000;
  cfg.faust.probe_check_period = 900;
  Cluster cluster(cfg);
  adversary::ForkingServer server(cfg.n, cluster.net());  // behaves until told otherwise

  auto ops1 = api::open_store(cluster, 1);
  auto ops2 = api::open_store(cluster, 2);
  auto ops3 = api::open_store(cluster, 3);

  const api::Store::EventHandler alarm = [](const api::Event& e) {
    if (e.kind == api::Event::Kind::kShardFailed) {
      std::printf("  !! PROVIDER COMPROMISED — config store fenced\n");
    }
  };
  ops1->on_event(alarm);
  ops2->on_event(alarm);
  ops3->on_event(alarm);

  const auto put = [&](api::Store& store, const char* k, const char* v, const char* who) {
    const api::PutResult r = store.put(k, v).settle();
    std::printf("  %s sets %s = %s (t=%llu)\n", who, k, v, (unsigned long long)r.ts);
  };

  std::printf("-- operators configure the service -----------------------------\n");
  put(*ops1, "max_connections", "1024", "operator 1");
  put(*ops2, "tls.min_version", "1.3", "operator 2");
  put(*ops3, "log.level", "info", "operator 3");
  put(*ops1, "log.level", "debug", "operator 1");  // conflicting update

  std::printf("\n-- everyone agrees on the merged configuration ------------------\n");
  show(*ops2, "operator 2");
  std::printf("  (log.level: operator 1's later revision wins deterministically)\n");

  std::printf("\n-- a whole rollout lands atomically as one batch ----------------\n");
  const api::BatchResult batch = ops1->apply({
      api::Op::put("feature.rollout", "5%"),
      api::Op::put("feature.cohort", "beta"),
      api::Op::get("log.level"),
  }).settle();
  std::printf("  one publication carried %zu changes (shared t=%llu), and the batched\n",
              std::size_t{2}, (unsigned long long)batch.results[0].put.ts);
  std::printf("  read saw log.level=%s at the same read point\n",
              batch.results[2].get.entry ? batch.results[2].get.entry->value.c_str() : "?");

  std::printf("\n-- the provider forks operator 3 off --------------------------\n");
  server.split(3);
  put(*ops3, "feature.rollout", "100%", "operator 3 (in the forked world)");
  put(*ops1, "feature.rollout", "5%", "operator 1 (in the real world)");
  std::printf("\n  operator 3's view is now silently stale — until FAUST's probes run:\n\n");

  cluster.run_for(300'000);

  if (cluster.all_failed()) {
    std::printf("\nall operators were alerted; no one trusts the forked configuration.\n");
    return 0;
  }
  std::printf("\nERROR: fork not detected\n");
  return 1;
}
