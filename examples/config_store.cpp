// A fail-aware distributed configuration store built on the KV layer —
// three operators manage a service's configuration through an untrusted
// hosting provider; conflicting updates resolve deterministically, and a
// provider that serves different operators different configurations is
// detected and the store fenced.
//
//   build/examples/config_store
#include <cstdio>

#include "adversary/forking_server.h"
#include "faust/cluster.h"
#include "kvstore/kv_client.h"

using namespace faust;

namespace {

void drive(Cluster& cluster, bool& done) {
  while (!done && cluster.sched().step()) {
  }
}

void show(kv::KvClient& store, Cluster& cluster, const char* who) {
  bool done = false;
  store.list([&](const std::map<std::string, kv::KvEntry>& m) {
    std::printf("  %s sees %zu config keys:\n", who, m.size());
    for (const auto& [key, entry] : m) {
      std::printf("    %-22s = %-14s (set by operator %d, rev %llu)\n", key.c_str(),
                  entry.value.c_str(), entry.writer, (unsigned long long)entry.seq);
    }
    done = true;
  });
  drive(cluster, done);
}

}  // namespace

int main() {
  std::printf("config-store — fail-aware configuration management\n");
  std::printf("===================================================\n\n");

  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 404;
  cfg.with_server = false;  // malicious later
  cfg.faust.dummy_read_period = 600;
  cfg.faust.probe_interval = 4'000;
  cfg.faust.probe_check_period = 900;
  Cluster cluster(cfg);
  adversary::ForkingServer server(cfg.n, cluster.net());  // behaves until told otherwise

  kv::KvClient ops1(cluster.client(1));
  kv::KvClient ops2(cluster.client(2));
  kv::KvClient ops3(cluster.client(3));

  for (ClientId i = 1; i <= 3; ++i) {
    cluster.client(i).on_fail = [i](FailureReason) {
      std::printf("  !! operator %d: PROVIDER COMPROMISED — config store fenced\n", i);
    };
  }

  const auto put = [&](kv::KvClient& store, const char* k, const char* v, const char* who) {
    bool done = false;
    store.put(k, v, [&](Timestamp) { done = true; });
    drive(cluster, done);
    std::printf("  %s sets %s = %s\n", who, k, v);
  };

  std::printf("-- operators configure the service -----------------------------\n");
  put(ops1, "max_connections", "1024", "operator 1");
  put(ops2, "tls.min_version", "1.3", "operator 2");
  put(ops3, "log.level", "info", "operator 3");
  put(ops1, "log.level", "debug", "operator 1");  // conflicting update

  std::printf("\n-- everyone agrees on the merged configuration ------------------\n");
  show(ops2, cluster, "operator 2");
  std::printf("  (log.level: operator 1's later revision wins deterministically)\n");

  std::printf("\n-- the provider forks operator 3 off --------------------------\n");
  server.split(3);
  put(ops3, "feature.rollout", "100%", "operator 3 (in the forked world)");
  put(ops1, "feature.rollout", "5%", "operator 1 (in the real world)");
  std::printf("\n  operator 3's view is now silently stale — until FAUST's probes run:\n\n");

  cluster.run_for(300'000);

  if (cluster.all_failed()) {
    std::printf("\nall operators were alerted; no one trusts the forked configuration.\n");
    return 0;
  }
  std::printf("\nERROR: fork not detected\n");
  return 1;
}
