// The §3 / Figure 2 scenario: Alice and Bob collaborate from Europe while
// Carlos sleeps in America. Reproduces the stability cut
// stable_Alice([10, 8, 3]) from the paper, then brings Carlos back and
// shows all operations becoming stable.
//
//   build/examples/collab_editing
#include <cstdio>
#include <string>

#include "faust/cluster.h"

using namespace faust;

namespace {

constexpr ClientId kAlice = 1;
constexpr ClientId kBob = 2;
constexpr ClientId kCarlos = 3;

const char* name_of(ClientId c) {
  return c == kAlice ? "Alice" : c == kBob ? "Bob" : "Carlos";
}

std::string cut_to_string(const FaustClient::StabilityCut& w) {
  std::string s = "[";
  for (std::size_t j = 0; j < w.size(); ++j) {
    if (j > 0) s += ",";
    s += std::to_string(w[j]);
  }
  return s + "]";
}

}  // namespace

int main() {
  std::printf("FAUST collaborative editing — the Alice/Bob/Carlos story of §3\n");
  std::printf("===============================================================\n\n");

  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 9;
  cfg.faust.dummy_read_period = 0;  // scripted exactly as in the paper
  cfg.faust.probe_interval = 1'000'000;
  cfg.faust.probe_check_period = 1'000'000;
  Cluster cluster(cfg);

  cluster.client(kAlice).on_stable = [&](const FaustClient::StabilityCut& w) {
    std::printf("      >> stable_Alice(%s)\n", cut_to_string(w).c_str());
  };

  const auto edit = [&](ClientId who, const std::string& text) {
    const Timestamp t = cluster.write(who, text);
    std::printf("  %s edits the document (op timestamp %llu): \"%s\"\n", name_of(who),
                (unsigned long long)t, text.c_str());
  };
  const auto catch_up = [&](ClientId who, ClientId whose) {
    cluster.read(who, whose);
    cluster.run_for(100);  // let the COMMIT land
    std::printf("  %s reads %s's latest edits\n", name_of(who), name_of(whose));
  };

  std::printf("-- Morning in Europe: everyone is online ----------------------\n");
  edit(kAlice, "draft: introduction");
  edit(kAlice, "draft: motivation");
  edit(kAlice, "draft: related work");
  catch_up(kCarlos, kAlice);
  catch_up(kAlice, kCarlos);  // Alice now knows Carlos saw up to t=3

  std::printf("\n-- Carlos goes to sleep (offline, NOT failed) -----------------\n");
  cluster.client(kCarlos).go_offline();

  edit(kAlice, "section 2: model");
  edit(kAlice, "section 3: definitions");
  edit(kAlice, "section 4: protocol");
  edit(kAlice, "section 5: analysis");
  catch_up(kBob, kAlice);
  catch_up(kAlice, kBob);  // Alice now knows Bob saw up to t=8
  edit(kAlice, "conclusions");  // t = 10

  const auto& w = cluster.client(kAlice).stability_cut();
  std::printf("\nAlice's stability cut is now %s — exactly Figure 2:\n",
              cut_to_string(w).c_str());
  std::printf("  * consistent with herself up to her op t=%llu\n", (unsigned long long)w[0]);
  std::printf("  * consistent with Bob up to her op t=%llu\n", (unsigned long long)w[1]);
  std::printf("  * consistent with Carlos up to her op t=%llu\n", (unsigned long long)w[2]);
  std::printf("Alice cannot tell whether Carlos is asleep or the server is hiding\n");
  std::printf("his operations — both look the same until he is heard from again.\n");

  std::printf("\n-- Morning in America: Carlos returns --------------------------\n");
  cluster.client(kCarlos).go_online();
  catch_up(kCarlos, kAlice);
  catch_up(kAlice, kCarlos);

  std::printf("\nAlice's final stability cut: %s\n",
              cut_to_string(cluster.client(kAlice).stability_cut()).c_str());
  std::printf("fully stable timestamp: %llu — since the server was correct, all\n",
              (unsigned long long)cluster.client(kAlice).fully_stable_timestamp());
  std::printf("operations eventually became stable, as §3 promises.\n");
  std::printf("failures detected: %s\n", cluster.any_failed() ? "YES (bug!)" : "none");
  return 0;
}
