// Sharded KV service: one logical key-value store spread over several
// independent FAUST deployments, with rendezvous routing, aggregated
// fail-awareness, and per-home-shard stability.
//
//   build/examples/sharded_kv
#include <cstdio>
#include <string>

#include "adversary/forking_server.h"
#include "shard/sharded_cluster.h"
#include "shard/sharded_kv_client.h"
#include "ustor/server.h"

using namespace faust;

int main() {
  std::printf("FAUST sharded KV — S independent deployments, one service\n");
  std::printf("=========================================================\n\n");

  // Three shards, each a full FAUST deployment (own server, signature
  // scheme, network, mailbox), co-scheduled on one deterministic clock.
  // Shard 0 and 1 get honest servers; shard 2's provider will fork.
  shard::ShardedClusterConfig cfg;
  cfg.shards = 3;
  cfg.seed = 2026;
  cfg.shard_template.n = 2;
  cfg.shard_template.with_server = false;
  cfg.shard_template.faust.dummy_read_period = 400;
  cfg.shard_template.faust.probe_interval = 3'000;
  cfg.shard_template.faust.probe_check_period = 700;
  shard::ShardedCluster sc(cfg);
  ustor::Server server0(cfg.shard_template.n, sc.shard(0).net());
  ustor::Server server1(cfg.shard_template.n, sc.shard(1).net());
  adversary::ForkingServer server2(cfg.shard_template.n, sc.shard(2).net());

  shard::ShardedKvClient alice(sc, 1);
  shard::ShardedKvClient bob(sc, 2);
  alice.on_fail = [](std::size_t s, FailureReason) {
    std::printf("  !! fail on shard %zu — that provider forked or corrupted state\n", s);
  };

  std::printf("routing (rendezvous hashing over %zu shards):\n", sc.shards());
  const char* keys[] = {"users/alice", "users/bob", "posts/1", "posts/2", "config/theme"};
  for (const char* k : keys) {
    std::printf("  %-14s -> shard %zu\n", k, sc.router().shard_of(k));
  }

  std::printf("\nalice puts all five keys; each goes only to its home shard\n");
  for (const char* k : keys) {
    bool done = false;
    alice.put(k, std::string("by-alice:") + k, [&](Timestamp) { done = true; });
    sc.drive(done);
  }

  bool got = false;
  shard::ShardedListResult all;
  bob.list([&](const shard::ShardedListResult& r) {
    all = r;
    got = true;
  });
  sc.drive(got);
  std::printf("bob lists (concurrent fan-out over every shard): %zu keys, complete=%s\n",
              all.entries.size(), all.complete ? "yes" : "no");

  std::printf("\nletting dummy reads advance every shard's stability cut...\n");
  sc.run_for(30'000);
  for (const char* k : keys) {
    got = false;
    shard::ShardedGetResult r;
    alice.get(k, [&](const shard::ShardedGetResult& res) {
      r = res;
      got = true;
    });
    sc.drive(got);
    sc.run_for(10'000);  // cut catches up with the observing reads
    std::printf("  %-14s shard %zu  read_ts=%-4llu stable=%s\n", k, r.shard,
                (unsigned long long)r.read_ts, alice.stable(r) ? "yes" : "not yet");
  }

  std::printf("\nshard 2's provider now forks its clients apart\n");
  server2.isolate(2);
  bool done = false;
  bob.put("posts/2", "forked-write", [&](Timestamp) { done = true; });
  sc.drive(done);
  sc.run_for(300'000);

  std::printf("\nfailed shards (alice's view): ");
  for (const std::size_t s : alice.failed_shards()) std::printf("%zu ", s);
  std::printf("\nkeys homed on healthy shards keep serving; a list flags the gap:\n");
  got = false;
  bob.list([&](const shard::ShardedListResult& r) {
    all = r;
    got = true;
  });
  sc.drive(got);
  std::printf("  %zu keys visible, complete=%s\n", all.entries.size(),
              all.complete ? "yes" : "no");
  std::printf("\nthe blast radius of a compromised provider is one shard's keys —\n");
  std::printf("fail-awareness (fail_i, stability) aggregates per home shard.\n");
  return 0;
}
