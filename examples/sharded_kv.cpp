// Sharded KV service through the unified faust::api::Store facade: one
// logical key-value store spread over several independent FAUST
// deployments, with rendezvous routing, aggregated fail-awareness, and
// per-home-shard stability — the exact same Store API as the
// single-deployment examples.
//
//   build/examples/sharded_kv
#include <cstdio>
#include <string>
#include <vector>

#include "adversary/forking_server.h"
#include "api/store.h"
#include "shard/sharded_cluster.h"
#include "ustor/server.h"

using namespace faust;

int main() {
  std::printf("FAUST sharded KV — S independent deployments, one service\n");
  std::printf("=========================================================\n\n");

  // Three shards, each a full FAUST deployment (own server, signature
  // scheme, network, mailbox), co-scheduled on one deterministic clock.
  // Shard 0 and 1 get honest servers; shard 2's provider will fork.
  shard::ShardedClusterConfig cfg;
  cfg.shards = 3;
  cfg.seed = 2026;
  cfg.shard_template.n = 2;
  cfg.shard_template.with_server = false;
  cfg.shard_template.faust.dummy_read_period = 400;
  cfg.shard_template.faust.probe_interval = 3'000;
  cfg.shard_template.faust.probe_check_period = 700;
  shard::ShardedCluster sc(cfg);
  ustor::Server server0(cfg.shard_template.n, sc.shard(0).net());
  ustor::Server server1(cfg.shard_template.n, sc.shard(1).net());
  adversary::ForkingServer server2(cfg.shard_template.n, sc.shard(2).net());

  auto alice = api::open_store(sc, 1);
  auto bob = api::open_store(sc, 2);
  alice->on_event([](const api::Event& e) {
    if (e.kind == api::Event::Kind::kShardFailed) {
      std::printf("  !! fail on shard %zu — that provider forked or corrupted state\n",
                  e.shard);
    }
  });

  std::printf("routing (rendezvous hashing over %zu shards):\n", alice->shards());
  const char* keys[] = {"users/alice", "users/bob", "posts/1", "posts/2", "config/theme"};
  for (const char* k : keys) {
    std::printf("  %-14s -> shard %zu\n", k, alice->home_shard(k));
  }

  std::printf("\nalice puts all five keys as ONE batch: the ops pipeline across the\n");
  std::printf("shards and coalesce into one signed publication per shard\n");
  std::vector<api::Op> ops;
  for (const char* k : keys) ops.push_back(api::Op::put(k, std::string("by-alice:") + k));
  const api::BatchResult batch = alice->apply(std::move(ops)).settle();
  std::printf("  batch ok=%s; per-op home shards:", batch.ok ? "yes" : "no");
  for (const auto& r : batch.results) std::printf(" %zu", r.put.shard);
  std::printf("\n");

  const api::ListResult all = bob->list().settle();
  std::printf("bob lists (concurrent fan-out over every shard): %zu keys, complete=%s\n",
              all.entries.size(), all.complete ? "yes" : "no");

  std::printf("\nletting dummy reads advance every shard's stability cut...\n");
  sc.run_for(30'000);
  for (const char* k : keys) {
    api::GetResult r = alice->get(k).settle();
    sc.run_for(10'000);  // cut catches up with the observing reads
    std::printf("  %-14s shard %zu  read_ts=%-4llu stable=%s\n", k, r.shard,
                (unsigned long long)r.read_ts, alice->stable(r) ? "yes" : "not yet");
  }

  std::printf("\nshard 2's provider now forks its clients apart\n");
  server2.isolate(2);
  bob->put("posts/2", "forked-write").settle();
  sc.run_for(300'000);

  std::printf("\nfailed shards (alice's view): ");
  for (std::size_t s = 0; s < alice->shards(); ++s) {
    if (alice->failed(s)) std::printf("%zu ", s);
  }
  std::printf("\nkeys homed on healthy shards keep serving; a list flags the gap:\n");
  const api::ListResult after = bob->list().settle();
  std::printf("  %zu keys visible, complete=%s\n", after.entries.size(),
              after.complete ? "yes" : "no");
  std::printf("\nthe blast radius of a compromised provider is one shard's keys —\n");
  std::printf("fail-awareness (fail_i, stability) aggregates per home shard.\n");
  return 0;
}
