// Quickstart: assemble a FAUST deployment (Figure 1's topology), run a
// few operations, and watch stability notifications arrive.
//
//   build/examples/quickstart
#include <cstdio>
#include <string>

#include "faust/cluster.h"

using namespace faust;

namespace {

std::string cut_to_string(const FaustClient::StabilityCut& w) {
  std::string s = "[";
  for (std::size_t j = 0; j < w.size(); ++j) {
    if (j > 0) s += ",";
    s += std::to_string(w[j]);
  }
  return s + "]";
}

}  // namespace

int main() {
  std::printf("FAUST quickstart — fail-aware untrusted storage (DSN'09)\n");
  std::printf("=========================================================\n\n");

  // One server (untrusted), three clients, reliable FIFO channels with
  // 1..10 tick delay, offline client-to-client mailbox with 50..200 tick
  // delay — exactly the architecture of Figure 1.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 2026;
  Cluster cluster(cfg);
  std::printf("topology: server S + %d clients, FIFO channels (%llu..%llu ticks),\n",
              cfg.n, (unsigned long long)cfg.delay.min_delay,
              (unsigned long long)cfg.delay.max_delay);
  std::printf("          offline client-to-client mailbox (%llu..%llu ticks)\n\n",
              (unsigned long long)cfg.mail_min_delay, (unsigned long long)cfg.mail_max_delay);

  // Subscribe to the fail-aware outputs of client 1.
  cluster.client(1).on_stable = [&](const FaustClient::StabilityCut& w) {
    std::printf("  [t=%6llu] stable_1(%s)\n", (unsigned long long)cluster.sched().now(),
                cut_to_string(w).c_str());
  };
  cluster.client(1).on_fail = [](FailureReason) {
    std::printf("  fail_1 — the server is faulty!\n");
  };

  // Write and read through the service.
  std::printf("client 1 writes \"hello, untrusted world\" to its register X1\n");
  const Timestamp t1 = cluster.write(1, "hello, untrusted world");
  std::printf("  -> completed with timestamp %llu (single round trip)\n\n",
              (unsigned long long)t1);

  std::printf("client 2 reads X1\n");
  const ustor::Value v = cluster.read(2, 1);
  std::printf("  -> \"%s\"\n\n", v.has_value() ? to_string(*v).c_str() : "⊥");

  std::printf("letting background dummy reads & probes propagate stability...\n");
  cluster.run_for(20'000);

  std::printf("\nclient 1 stability cut: %s\n",
              cut_to_string(cluster.client(1).stability_cut()).c_str());
  std::printf("fully stable up to timestamp %llu — the prefix of the execution up to\n",
              (unsigned long long)cluster.client(1).fully_stable_timestamp());
  std::printf("that operation is linearizable at every client (Def. 5, item 6).\n");
  std::printf("\nno failures detected: the provider behaved. Try examples/forking_attack\n");
  std::printf("to see what happens when it does not.\n");
  return 0;
}
