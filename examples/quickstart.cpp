// Quickstart: assemble a FAUST deployment (Figure 1's topology), open the
// unified faust::api::Store client surface over it, run a few operations,
// and watch stability notifications arrive.
//
//   build/examples/quickstart
#include <cstdio>
#include <string>

#include "api/store.h"
#include "faust/cluster.h"

using namespace faust;

int main() {
  std::printf("FAUST quickstart — fail-aware untrusted storage (DSN'09)\n");
  std::printf("=========================================================\n\n");

  // One server (untrusted), three clients, reliable FIFO channels with
  // 1..10 tick delay, offline client-to-client mailbox with 50..200 tick
  // delay — exactly the architecture of Figure 1.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 2026;
  Cluster cluster(cfg);
  std::printf("topology: server S + %d clients, FIFO channels (%llu..%llu ticks),\n",
              cfg.n, (unsigned long long)cfg.delay.min_delay,
              (unsigned long long)cfg.delay.max_delay);
  std::printf("          offline client-to-client mailbox (%llu..%llu ticks)\n\n",
              (unsigned long long)cfg.mail_min_delay, (unsigned long long)cfg.mail_max_delay);

  // One Store per principal — the same API would drive a sharded or
  // threaded deployment (see examples/sharded_kv and threaded_shards).
  auto alice = api::open_store(cluster, 1);
  auto bob = api::open_store(cluster, 2);

  // Subscribe to the unified fail-aware events of client 1.
  alice->on_event([&](const api::Event& e) {
    if (e.kind == api::Event::Kind::kStabilityAdvanced) {
      std::printf("  [t=%6llu] stability advanced: fully stable up to op %llu\n",
                  (unsigned long long)cluster.sched().now(),
                  (unsigned long long)e.stable_ts);
    } else {
      std::printf("  FAILURE EVENT — the server is faulty!\n");
    }
  });

  // Write and read through the service. A Ticket is the completion token:
  // settle() drives the deterministic scheduler until the op finishes.
  std::printf("alice puts greeting := \"hello, untrusted world\"\n");
  const api::PutResult put = alice->put("greeting", "hello, untrusted world").settle();
  std::printf("  -> register write timestamp %llu (stable yet: %s)\n\n",
              (unsigned long long)put.ts, put.stable ? "yes" : "no");

  std::printf("bob reads it back\n");
  const api::GetResult got = bob->get("greeting").settle();
  std::printf("  -> \"%s\" (written by client %d, observed at read_ts %llu)\n\n",
              got.entry ? got.entry->value.c_str() : "⊥", got.entry ? got.entry->writer : 0,
              (unsigned long long)got.read_ts);

  std::printf("letting background dummy reads & probes propagate stability...\n");
  cluster.run_for(20'000);

  std::printf("\nalice's put is now stable: %s — the prefix of the execution up to it\n",
              alice->stable(put) ? "yes" : "no");
  std::printf("is linearizable at every client (Def. 5, item 6); even a later server\n");
  std::printf("compromise cannot rewrite that history undetected.\n");
  std::printf("\nno failures detected: the provider behaved. Try examples/forking_attack\n");
  std::printf("to see what happens when it does not.\n");
  return cluster.any_failed() ? 1 : 0;
}
