// Multi-process deployment through the unified faust::api::Store facade
// (DESIGN.md D9): the same sharded KV service as examples/sharded_kv.cpp,
// but every shard's SERVER side runs as a separate OS process
// (`faust_sockd serve`), reached over loopback TCP through
// sock::SocketTransport — and the exact same Store calls.
//
// What this demonstrates beyond the threaded example:
//   * real process isolation — a shard server crash is a real SIGKILL,
//     its recovery a real WAL/snapshot replay from disk in a fresh
//     process, and the client's resubmit rides a real TCP reconnect;
//   * the trust story survives the deployment change — the workers are
//     UNTRUSTED exactly like the in-process servers (same SUBMIT/REPLY
//     protocol, same signatures), so nothing about putting them in
//     processes requires trusting them more.
//
// Build & run:  cmake --build build && ./build/process_deployment
// (the faust_sockd worker path is compiled in via FAUST_SOCKD_PATH).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "api/store.h"
#include "shard/sharded_cluster.h"

using namespace faust;

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "faust_example_proc").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  shard::ShardedClusterConfig cfg;
  cfg.shards = 3;
  cfg.seed = 2026;
  cfg.mode = shard::ExecMode::kProcess;  // server side = real OS processes
  cfg.durability_root = dir;             // workers recover from here
  cfg.process.worker_path = FAUST_SOCKD_PATH;
  cfg.process.use_tcp = true;  // loopback TCP, ephemeral ports
  shard::ShardedCluster cluster(cfg);

  std::printf("S=%zu shard servers running as real processes:\n", cluster.shards());
  for (std::size_t s = 0; s < cluster.shards(); ++s) {
    std::printf("  shard %zu <- %s\n", s,
                cluster.shard_transport(s) != nullptr ? "socket transport" : "in-process");
  }

  {
    auto store = api::open_store(cluster, 1);

    // Puts cross a real socket into the worker's WAL before REPLY.
    for (int k = 0; k < 12; ++k) {
      store->put("key-" + std::to_string(k), "value-" + std::to_string(k)).wait();
    }
    std::printf("wrote 12 keys across the shard processes\n");

    // Kill shard 1's worker — a REAL SIGKILL — and restart it: the new
    // process replays its WAL/snapshot, the transport redials, and the
    // client's pipeline resumes with nothing lost.
    cluster.kill_shard(1);
    std::printf("SIGKILLed shard 1's worker\n");
    cluster.restart_shard(1);
    std::printf("restarted it (recovery from disk + TCP reconnect)\n");

    const api::GetResult got = store->get("key-4").wait();
    std::printf("get(key-4) after the crash: %s\n",
                got.entry ? got.entry->value.c_str() : "(missing!)");

    const api::ListResult all = store->list().wait();
    std::printf("list() merges %zu keys across every shard process\n",
                all.entries.size());
  }

  // Graceful SIGTERM: each worker flushes a STATS line before exiting.
  const auto stats = cluster.finalize_processes();
  for (std::size_t s = 0; s < stats.size(); ++s) {
    if (!stats[s]) continue;
    std::printf("shard %zu worker: wal_records=%llu snapshots_written=%llu\n", s,
                static_cast<unsigned long long>(stats[s]->wal_records),
                static_cast<unsigned long long>(stats[s]->snapshots_written));
  }
  std::filesystem::remove_all(dir);
  return 0;
}
