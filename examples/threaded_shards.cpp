// Threaded shard execution: the same sharded KV service as
// examples/sharded_kv.cpp, but with every shard's deployment running on
// its own OS thread (ShardedCluster ExecMode::kThreaded).
//
// The protocol objects are identical to the simulated ones — the
// exec::Executor seam swaps the substrate underneath them. On a machine
// with >= S cores, the pipelined batch below runs up to S× faster than
// the single-threaded co-scheduled mode, because the S deployments share
// no protocol state (PERF.md "Threaded shards").
//
// Build & run:  cmake --build build && ./build/threaded_shards
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded_cluster.h"
#include "shard/sharded_kv_client.h"

using namespace faust;

int main() {
  constexpr std::size_t kShards = 4;
  constexpr int kClients = 3;
  constexpr int kKeys = 600;

  shard::ShardedClusterConfig cfg;
  cfg.shards = kShards;
  cfg.seed = 2024;
  cfg.mode = shard::ExecMode::kThreaded;  // one runtime thread per shard
  cfg.shard_template.n = kClients;
  cfg.shard_template.faust.dummy_read_period = 0;
  cfg.shard_template.faust.probe_check_period = 0;
  shard::ShardedCluster cluster(cfg);

  std::vector<std::unique_ptr<shard::ShardedKvClient>> kv;
  for (ClientId i = 1; i <= kClients; ++i) {
    kv.push_back(std::make_unique<shard::ShardedKvClient>(cluster, i));
  }

  std::printf("sharded KV, S=%zu shards, one OS thread each (host has %u cores)\n",
              cluster.shards(), std::thread::hardware_concurrency());

  // A pipelined batch: every shard has work in flight at once, so the
  // shard threads crunch signatures and partition codecs in parallel.
  std::atomic<int> completed{0};
  std::atomic<bool> all_done{false};
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < kKeys; ++k) {
    kv[static_cast<std::size_t>(k % kClients)]->put(
        "key-" + std::to_string(k), "value-" + std::to_string(k), [&](Timestamp) {
          if (completed.fetch_add(1) + 1 == kKeys) all_done.store(true);
        });
  }
  cluster.await(all_done, std::chrono::seconds(60));
  const auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
  std::printf("pipelined %d puts in %.3f s (%.0f puts/s aggregate)\n", kKeys, dt.count(),
              kKeys / dt.count());

  // Reads route to the key's home shard; a fan-out list merges all S.
  std::atomic<bool> got{false};
  kv[0]->get("key-42", [&](const shard::ShardedGetResult& r) {
    std::printf("key-42 lives on shard %zu: %s\n", r.shard,
                r.entry ? r.entry->value.c_str() : "(absent)");
    got.store(true);
  });
  cluster.await(got, std::chrono::seconds(10));

  std::atomic<bool> listed{false};
  kv[0]->list([&](const shard::ShardedListResult& r) {
    std::printf("fan-out list merged %zu keys from %zu shards (complete=%s)\n",
                r.entries.size(), cluster.shards(), r.complete ? "yes" : "no");
    listed.store(true);
  });
  cluster.await(listed, std::chrono::seconds(30));

  // Teardown order is part of the threaded contract: freeze the shard
  // threads first, then let the clients and deployment unwind.
  cluster.stop();
  std::printf("done; no shard failed: %s\n", cluster.any_failed() ? "NO (failure!)" : "yes");
  return cluster.any_failed() ? 1 : 0;
}
