// Threaded shard execution through the unified faust::api::Store facade:
// the same sharded KV service as examples/sharded_kv.cpp, but with every
// shard's deployment running on its own OS thread (ShardedCluster
// ExecMode::kThreaded) — and the exact same Store calls.
//
// The protocol objects are identical to the simulated ones — the
// exec::Executor seam swaps the substrate underneath them, and the
// facade's tickets resolve by blocking wait() instead of scheduler
// stepping, transparently. On a machine with >= S cores, the pipelined
// phases below run up to S× faster than the single-threaded co-scheduled
// mode, because the S deployments share no protocol state (PERF.md
// "Threaded shards").
//
// Build & run:  cmake --build build && ./build/threaded_shards
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/store.h"
#include "shard/sharded_cluster.h"

using namespace faust;

int main() {
  constexpr std::size_t kShards = 4;
  constexpr int kClients = 3;
  constexpr int kKeys = 600;

  shard::ShardedClusterConfig cfg;
  cfg.shards = kShards;
  cfg.seed = 2024;
  cfg.mode = shard::ExecMode::kThreaded;  // one runtime thread per shard
  cfg.shard_template.n = kClients;
  cfg.shard_template.faust.dummy_read_period = 0;
  cfg.shard_template.faust.probe_check_period = 0;
  shard::ShardedCluster cluster(cfg);

  std::vector<std::unique_ptr<api::Store>> kv;
  for (ClientId i = 1; i <= kClients; ++i) {
    kv.push_back(api::open_store(cluster, i));
  }

  std::printf("sharded KV, S=%zu shards, one OS thread each (host has %u cores)\n",
              cluster.shards(), std::thread::hardware_concurrency());

  // Phase 1 — pipelined single ops: every shard has work in flight at
  // once, so the shard threads crunch signatures and partition codecs in
  // parallel. Tickets are collected first and waited on at the end.
  auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<api::Ticket<api::PutResult>> tickets;
    tickets.reserve(kKeys);
    for (int k = 0; k < kKeys; ++k) {
      tickets.push_back(kv[static_cast<std::size_t>(k % kClients)]->put(
          "key-" + std::to_string(k), "value-" + std::to_string(k)));
    }
    for (auto& t : tickets) t.wait();
  }
  auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
  std::printf("pipelined %d single puts in %.3f s (%.0f puts/s aggregate)\n", kKeys,
              dt.count(), kKeys / dt.count());

  // Phase 2 — the same work as ONE batch per client: the facade coalesces
  // each client's keys into one publication per shard (4 publications per
  // client instead of 200), and the per-shard chains run on all shard
  // threads at once.
  t0 = std::chrono::steady_clock::now();
  {
    std::vector<api::Ticket<api::BatchResult>> tickets;
    for (ClientId i = 1; i <= kClients; ++i) {
      std::vector<api::Op> ops;
      for (int k = i - 1; k < kKeys; k += kClients) {
        ops.push_back(api::Op::put("key-" + std::to_string(k), "batched-" + std::to_string(k)));
      }
      tickets.push_back(kv[static_cast<std::size_t>(i - 1)]->apply(std::move(ops)));
    }
    for (auto& t : tickets) t.wait();
  }
  dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
  std::printf("the same %d puts as 3 batched applies in %.3f s (%.0f puts/s)\n", kKeys,
              dt.count(), kKeys / dt.count());

  // Reads route to the key's home shard; a fan-out list merges all S.
  const api::GetResult r = kv[0]->get("key-42").wait();
  std::printf("key-42 lives on shard %zu: %s\n", r.shard,
              r.entry ? r.entry->value.c_str() : "(absent)");

  const api::ListResult l = kv[0]->list().wait();
  std::printf("fan-out list merged %zu keys from %zu shards (complete=%s)\n",
              l.entries.size(), cluster.shards(), l.complete ? "yes" : "no");

  // Teardown order is part of the threaded contract: freeze the shard
  // threads first, then let the stores and deployment unwind.
  cluster.stop();
  std::printf("done; no shard failed: %s\n", cluster.any_failed() ? "NO (failure!)" : "yes");
  return cluster.any_failed() ? 1 : 0;
}
