// A miniature Wiki / shared-notes application built on the unified
// faust::api::Store facade — the kind of "Web 2.0 collaboration tool" the
// paper's introduction motivates. Each author keeps pages under their own
// key prefix; everyone reads everyone's pages; the application surfaces
// FAUST's stability information as a per-revision "verified by all
// collaborators" badge, straight off the facade's result structs.
//
//   build/examples/versioned_notes
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "api/store.h"
#include "faust/cluster.h"

using namespace faust;

namespace {

struct NotesApp {
  api::Store& store;
  const char* name;
  std::map<Timestamp, std::string> my_edits;  // publication timestamp -> content

  void save_page(const std::string& content) {
    const api::PutResult r = store.put("page/" + std::string(name), content).settle();
    my_edits[r.ts] = content;
    std::printf("  [%s] saved revision (t=%llu): \"%s\"\n", name, (unsigned long long)r.ts,
                content.c_str());
  }

  std::string load_page(const std::string& author) {
    const api::GetResult r = store.get("page/" + author).settle();
    return r.entry ? r.entry->value : "(empty page)";
  }

  /// A revision is "verified" once it is stable w.r.t. every collaborator:
  /// from then on the prefix of the execution up to it is linearizable, no
  /// matter what the provider does later.
  void print_status() {
    const Timestamp stable = store.stable_ts(0);
    std::printf("  [%s] revisions:\n", name);
    for (const auto& [t, content] : my_edits) {
      std::printf("     t=%-3llu %-34s %s\n", (unsigned long long)t, content.c_str(),
                  t <= stable ? "[verified by all collaborators]" : "[pending verification]");
    }
  }
};

}  // namespace

int main() {
  std::printf("versioned-notes — a tiny Wiki over fail-aware untrusted storage\n");
  std::printf("===============================================================\n\n");

  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 31337;
  cfg.faust.dummy_read_period = 400;
  cfg.faust.probe_interval = 4'000;
  cfg.faust.probe_check_period = 1'000;
  Cluster cluster(cfg);

  auto s1 = api::open_store(cluster, 1);
  auto s2 = api::open_store(cluster, 2);
  auto s3 = api::open_store(cluster, 3);
  NotesApp alice{*s1, "alice", {}};
  NotesApp bob{*s2, "bob", {}};
  NotesApp carol{*s3, "carol", {}};

  std::printf("-- everyone drafts their page ---------------------------------\n");
  alice.save_page("Meeting notes: kickoff");
  bob.save_page("Design sketch: storage layer");
  carol.save_page("TODO list");

  std::printf("\n-- cross reading ----------------------------------------------\n");
  std::printf("  bob sees alice's page:  \"%s\"\n", bob.load_page("alice").c_str());
  std::printf("  carol sees bob's page:  \"%s\"\n", carol.load_page("bob").c_str());
  std::printf("  alice sees carol's page:\"%s\"\n", alice.load_page("carol").c_str());

  std::printf("\n-- edits keep flowing -----------------------------------------\n");
  alice.save_page("Meeting notes: kickoff + action items");
  bob.save_page("Design sketch v2");

  std::printf("\n-- status before background verification ----------------------\n");
  alice.print_status();

  std::printf("\n   ...background dummy reads and probes run for a while...\n\n");
  cluster.run_for(40'000);

  std::printf("-- status after background verification -----------------------\n");
  alice.print_status();
  bob.print_status();
  carol.print_status();

  std::printf("\nprovider honest today: %s\n", cluster.any_failed() ? "NO" : "yes");
  std::printf("Every [verified] revision is guaranteed linearizable — even a future\n");
  std::printf("compromise of the provider cannot rewrite that history undetected.\n");
  return 0;
}
