// A malicious provider mounts the Figure 3 attack and then a full fork;
// USTOR's checks stay silent (forking semantics allow it) until FAUST's
// offline version exchange produces the incomparable-version evidence and
// every client receives fail_i.
//
//   build/examples/forking_attack
#include <cstdio>

#include "adversary/forking_server.h"
#include "faust/cluster.h"

using namespace faust;

int main() {
  std::printf("FAUST forking attack demo — Figure 3 and its detection\n");
  std::printf("======================================================\n\n");

  ClusterConfig cfg;
  cfg.n = 2;
  cfg.seed = 77;
  cfg.with_server = false;  // we bring our own, malicious, server
  cfg.faust.dummy_read_period = 500;
  cfg.faust.probe_interval = 3'000;
  cfg.faust.probe_check_period = 800;
  Cluster cluster(cfg);
  adversary::ForkingServer server(cfg.n, cluster.net());

  for (ClientId i = 1; i <= cfg.n; ++i) {
    cluster.client(i).on_fail = [i](FailureReason r) {
      const char* why = r == FailureReason::kIncomparableVersions
                            ? "two signed versions are ≼-incomparable"
                        : r == FailureReason::kPeerReport ? "a peer sent proof of failure"
                                                          : "USTOR check failed";
      std::printf("  [DETECTED] fail_%d — %s\n", i, why);
    };
  }

  std::printf("step 1: client 1 writes u = \"launch codes v1\" (completes, commits)\n");
  cluster.write(1, "launch codes v1");

  std::printf("step 2: the server forks client 2 into an empty world\n");
  server.isolate(2);

  std::printf("step 3: client 2 reads X1 — the server pretends the write never happened\n");
  const ustor::Value r1 = cluster.read(2, 1);
  std::printf("        -> read returned %s   (stale! but every signature checks out)\n",
              r1.has_value() ? to_string(*r1).c_str() : "⊥");

  std::printf("step 4: the server now \"leaks\" C1's submitted write into C2's world\n");
  server.leak_submit(server.fork_of(2), *server.last_submit(1));
  const ustor::Value r2 = cluster.read(2, 1);
  std::printf("        -> read returned \"%s\"\n",
              r2.has_value() ? to_string(*r2).c_str() : "⊥");
  std::printf("        this is exactly the weak-fork-linearizable history of Figure 3;\n");
  std::printf("        no fork-linearizable protocol could have produced it.\n\n");

  std::printf("step 5: both worlds keep moving — the views can never re-join\n");
  cluster.write(1, "launch codes v2");
  cluster.write(2, "annotations by C2");

  std::printf("step 6: FAUST's dummy reads find nothing (the server lies consistently),\n");
  std::printf("        but after Δ=%llu ticks without news the clients probe each other\n",
              (unsigned long long)cfg.faust.probe_interval);
  std::printf("        over the offline channel the server does not control...\n\n");

  cluster.run_for(300'000);

  std::printf("\noutcome: client 1 failed=%s, client 2 failed=%s\n",
              cluster.client(1).failed() ? "yes" : "no",
              cluster.client(2).failed() ? "yes" : "no");
  if (cluster.all_failed()) {
    std::printf("the FAILURE message carried the two incomparable signed versions —\n");
    std::printf("transferable, independently verifiable evidence that the provider\n");
    std::printf("violated its specification. Time to change providers.\n");
    return 0;
  }
  std::printf("ERROR: the fork went undetected\n");
  return 1;
}
