// Interactive/scriptable driver for a simulated FAUST deployment — poke
// at the protocol from a shell:
//
//   build/examples/faust_repl <<'EOF'
//   write 1 hello
//   read 2 1
//   run 20000
//   cut 1
//   fork split 2
//   write 2 shadow
//   run 300000
//   status
//   EOF
//
// Commands:
//   write <client> <value...>   write to the client's register (raw layer)
//   read <client> <register>    read a register (raw layer)
//   put <client> <key> <v...>   KV put through the api::Store facade
//   get <client> <key>          KV get (with stability context)
//   del <client> <key>          KV erase (no-op when the key is absent)
//   kvlist <client>             merged KV view
//   run <ticks>                 advance virtual time
//   cut <client>                print the client's stability cut
//   offline <client> / online <client>
//   fork split <client>         fork a client off with a state copy
//   fork isolate <client>       fork a client into an empty world
//   status                      one line per client
//   help / quit
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/forking_server.h"
#include "api/store.h"
#include "faust/cluster.h"

using namespace faust;

namespace {

std::string cut_to_string(const FaustClient::StabilityCut& w) {
  std::string s = "[";
  for (std::size_t j = 0; j < w.size(); ++j) {
    if (j > 0) s += ",";
    s += std::to_string(w[j]);
  }
  return s + "]";
}

struct Repl {
  ClusterConfig cfg;
  Cluster cluster;
  adversary::ForkingServer server;
  std::vector<std::unique_ptr<api::Store>> stores;  // KV surface per client

  Repl()
      : cfg(make_config()),
        cluster(cfg),
        server(cfg.n, cluster.net()) {
    for (ClientId i = 1; i <= cfg.n; ++i) {
      cluster.client(i).on_fail = [i](FailureReason) {
        std::printf("  !! fail_%d — the server is demonstrably faulty\n", i);
      };
      cluster.client(i).on_stable = [this, i](const FaustClient::StabilityCut& w) {
        if (verbose_stability) {
          std::printf("  stable_%d(%s)\n", i, cut_to_string(w).c_str());
        }
      };
    }
    // Opened after the raw hooks so the facade chains (and preserves) them.
    for (ClientId i = 1; i <= cfg.n; ++i) {
      stores.push_back(api::open_store(cluster, i));
    }
  }

  api::Store& store(int c) { return *stores[static_cast<std::size_t>(c - 1)]; }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.n = 3;
    cfg.seed = 2027;
    cfg.with_server = false;  // the (initially honest) forking server
    cfg.faust.dummy_read_period = 500;
    cfg.faust.probe_interval = 4'000;
    cfg.faust.probe_check_period = 1'000;
    return cfg;
  }

  bool valid_client(int c) const { return c >= 1 && c <= cfg.n; }

  bool verbose_stability = false;

  void dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return;

    if (cmd == "write") {
      int c = 0;
      std::string value, word;
      in >> c;
      while (in >> word) value += (value.empty() ? "" : " ") + word;
      if (!valid_client(c) || value.empty()) {
        std::printf("usage: write <client> <value>\n");
        return;
      }
      const Timestamp t = cluster.write(c, value, 300'000);
      if (t == 0) {
        std::printf("  write by C%d did not complete (server down or client failed)\n", c);
      } else {
        std::printf("  C%d wrote \"%s\" (timestamp %llu)\n", c, value.c_str(),
                    (unsigned long long)t);
      }
    } else if (cmd == "read") {
      int c = 0, reg = 0;
      in >> c >> reg;
      if (!valid_client(c) || !valid_client(reg)) {
        std::printf("usage: read <client> <register>\n");
        return;
      }
      bool completed = false;
      const ustor::Value v = cluster.read(c, reg, &completed, 300'000);
      if (!completed) {
        std::printf("  read by C%d did not complete\n", c);
      } else {
        std::printf("  C%d read X%d = %s\n", c, reg,
                    v.has_value() ? ("\"" + to_string(*v) + "\"").c_str() : "⊥");
      }
    } else if (cmd == "put") {
      int c = 0;
      std::string key, value, word;
      in >> c >> key;
      while (in >> word) value += (value.empty() ? "" : " ") + word;
      if (!valid_client(c) || key.empty() || value.empty()) {
        std::printf("usage: put <client> <key> <value>\n");
        return;
      }
      const api::PutResult r = store(c).put(key, value).settle();
      if (r.failed || r.ts == 0) {
        std::printf("  put by C%d did not complete (client fenced or server down)\n", c);
      } else {
        std::printf("  C%d put %s = \"%s\" (t=%llu)\n", c, key.c_str(), value.c_str(),
                    (unsigned long long)r.ts);
      }
    } else if (cmd == "get") {
      int c = 0;
      std::string key;
      in >> c >> key;
      if (!valid_client(c) || key.empty()) {
        std::printf("usage: get <client> <key>\n");
        return;
      }
      const api::GetResult r = store(c).get(key).settle();
      if (r.failed) {
        std::printf("  get by C%d did not complete (client fenced or server down)\n", c);
      } else if (!r.entry) {
        std::printf("  C%d: %s is unset\n", c, key.c_str());
      } else {
        std::printf("  C%d got %s = \"%s\" (writer C%d rev %llu, %s)\n", c, key.c_str(),
                    r.entry->value.c_str(), r.entry->writer,
                    (unsigned long long)r.entry->seq,
                    store(c).stable(r) ? "stable" : "not yet stable");
      }
    } else if (cmd == "del") {
      int c = 0;
      std::string key;
      in >> c >> key;
      if (!valid_client(c) || key.empty()) {
        std::printf("usage: del <client> <key>\n");
        return;
      }
      const api::PutResult r = store(c).erase(key).settle();
      if (r.failed) {
        std::printf("  del by C%d did not complete (client fenced or server down)\n", c);
      } else if (r.ts == 0) {
        std::printf("  C%d del %s: no-op (not in C%d's partition)\n", c, key.c_str(), c);
      } else {
        std::printf("  C%d deleted %s (t=%llu)\n", c, key.c_str(), (unsigned long long)r.ts);
      }
    } else if (cmd == "kvlist") {
      int c = 0;
      in >> c;
      if (!valid_client(c)) {
        std::printf("usage: kvlist <client>\n");
        return;
      }
      const api::ListResult r = store(c).list().settle();
      std::printf("  C%d sees %zu keys (complete=%s)\n", c, r.entries.size(),
                  r.complete ? "yes" : "no");
      for (const auto& [key, e] : r.entries) {
        std::printf("    %-18s = \"%s\" (writer C%d rev %llu)\n", key.c_str(),
                    e.value.c_str(), e.writer, (unsigned long long)e.seq);
      }
    } else if (cmd == "run") {
      sim::Time ticks = 0;
      in >> ticks;
      cluster.run_for(ticks);
      std::printf("  advanced to t=%llu\n", (unsigned long long)cluster.sched().now());
    } else if (cmd == "cut") {
      int c = 0;
      in >> c;
      if (!valid_client(c)) return;
      std::printf("  stability cut of C%d: %s (fully stable up to %llu)\n", c,
                  cut_to_string(cluster.client(c).stability_cut()).c_str(),
                  (unsigned long long)cluster.client(c).fully_stable_timestamp());
    } else if (cmd == "offline" || cmd == "online") {
      int c = 0;
      in >> c;
      if (!valid_client(c)) return;
      if (cmd == "offline") {
        cluster.client(c).go_offline();
      } else {
        cluster.client(c).go_online();
      }
      std::printf("  C%d is now %s\n", c, cmd.c_str());
    } else if (cmd == "fork") {
      std::string kind;
      int c = 0;
      in >> kind >> c;
      if (!valid_client(c)) {
        std::printf("usage: fork split|isolate <client>\n");
        return;
      }
      if (kind == "split") {
        std::printf("  server forked C%d into world #%d (state copy)\n", c, server.split(c));
      } else if (kind == "isolate") {
        std::printf("  server forked C%d into empty world #%d\n", c, server.isolate(c));
      }
    } else if (cmd == "verbose") {
      verbose_stability = !verbose_stability;
      std::printf("  stability notifications %s\n", verbose_stability ? "on" : "off");
    } else if (cmd == "status") {
      for (ClientId i = 1; i <= cfg.n; ++i) {
        FaustClient& cl = cluster.client(i);
        std::printf("  C%d: %s%s, cut=%s, dummy_reads=%llu probes=%llu\n", i,
                    cl.failed() ? "FAILED" : "ok", cl.online() ? "" : " (offline)",
                    cut_to_string(cl.stability_cut()).c_str(),
                    (unsigned long long)cl.dummy_reads(),
                    (unsigned long long)cl.probes_sent());
      }
      std::printf("  server worlds: %d, virtual time %llu\n", server.num_forks(),
                  (unsigned long long)cluster.sched().now());
    } else if (cmd == "help") {
      std::printf(
          "commands: write <c> <v> | read <c> <reg> | run <ticks> | cut <c> |\n"
          "          put <c> <k> <v> | get <c> <k> | del <c> <k> | kvlist <c> |\n"
          "          offline <c> | online <c> | fork split|isolate <c> |\n"
          "          verbose | status | quit\n");
    } else if (cmd == "quit" || cmd == "exit") {
      std::exit(0);
    } else {
      std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
    }
  }
};

}  // namespace

int main() {
  std::printf("faust_repl — 3 clients, 1 (initially honest) untrusted server. 'help' lists commands.\n");
  Repl repl;
  std::string line;
  while (std::getline(std::cin, line)) {
    repl.dispatch(line);
  }
  return 0;
}
