// O(change) KV operations (PERF.md "O(change) operations"): put/get cost
// against keyspace size K, with the delta machinery (incremental
// partition encoding + chunked DATA digests + version-keyed decode
// memos) toggled against the legacy full-reencode/full-decode paths.
//
// The claims under test:
//   * put throughput at K=16384 stays within ~2x of K=256 on the delta
//     paths (legacy degrades ~linearly with K);
//   * single-op get throughput at K=3072/n=3 gains >= 5x from the decode
//     memo alone (reads of unchanged registers skip decode AND merge).
//
// K counts TOTAL keys; with n=3 writers each partition holds ~K/3
// entries. Engine-level measurement (kv::KvClient over one Cluster, the
// same rig as the differential oracle) so the numbers isolate the KV/
// crypto/wire stack, not the api::Store batching layer.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "faust/cluster.h"
#include "kvstore/kv_client.h"

namespace {

using namespace faust;

constexpr int kWriters = 3;

std::string key_of(int k) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06d", k);
  return buf;
}

std::string value_of(int v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "v%07d", v % 10'000'000);
  return buf;
}

struct DeltaRig {
  DeltaRig(int total_keys, bool legacy) {
    ClusterConfig cfg;
    cfg.n = kWriters;
    cfg.seed = 4242;
    cfg.delay = net::DelayModel{1, 1};
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    cfg.faust.data_digest = legacy ? ustor::DigestMode::kFlat : ustor::DigestMode::kChunked;
    cluster = std::make_unique<Cluster>(cfg);
    const kv::KvTuning tuning{/*incremental_encode=*/!legacy, /*decode_memo=*/!legacy};
    for (ClientId i = 1; i <= kWriters; ++i) {
      kv.push_back(std::make_unique<kv::KvClient>(cluster->client(i), tuning));
    }
    // Bulk-load K keys round-robin over the writers: one publication per
    // writer (apply_with_seqs), so setup stays cheap even at K=16384.
    std::vector<std::vector<kv::KvClient::SeqChange>> load(kWriters);
    std::vector<std::uint64_t> seq(kWriters, 0);
    for (int k = 0; k < total_keys; ++k) {
      const int w = k % kWriters;
      load[static_cast<std::size_t>(w)].push_back(
          kv::KvClient::SeqChange{key_of(k), value_of(k), ++seq[static_cast<std::size_t>(w)]});
    }
    for (int w = 0; w < kWriters; ++w) {
      bool done = false;
      kv[static_cast<std::size_t>(w)]->apply_with_seqs(load[static_cast<std::size_t>(w)],
                                                       [&](Timestamp) { done = true; });
      drive(done);
    }
  }

  void drive(const bool& done) {
    while (!done && cluster->sched().step()) {
    }
  }

  void put(int k, int v) {
    bool done = false;
    kv[static_cast<std::size_t>(k % kWriters)]->put(key_of(k), value_of(v),
                                                    [&](Timestamp) { done = true; });
    drive(done);
  }

  std::optional<kv::KvEntry> get(ClientId reader, int k) {
    bool done = false;
    std::optional<kv::KvEntry> out;
    kv[static_cast<std::size_t>(reader - 1)]->get(
        key_of(k), [&](std::optional<kv::KvEntry> e, Timestamp) {
          out = std::move(e);
          done = true;
        });
    drive(done);
    return out;
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<kv::KvClient>> kv;
};

void set_mode_counters(benchmark::State& state, const DeltaRig& rig, double ops) {
  state.counters["keys"] = static_cast<double>(state.range(0));
  state.counters["legacy"] = static_cast<double>(state.range(1));
  state.counters["ops_per_sec"] = benchmark::Counter(ops, benchmark::Counter::kIsRate);
  std::uint64_t splices = 0, rebuilds = 0, memo_hits = 0, merged_hits = 0;
  for (const auto& c : rig.kv) {
    splices += c->encode_splices();
    rebuilds += c->encode_rebuilds();
    memo_hits += c->decode_memo_hits();
    merged_hits += c->merged_cache_hits();
  }
  state.counters["encode_splices"] = static_cast<double>(splices);
  state.counters["encode_rebuilds"] = static_cast<double>(rebuilds);
  state.counters["decode_memo_hits"] = static_cast<double>(memo_hits);
  state.counters["merged_cache_hits"] = static_cast<double>(merged_hits);
}

/// Overwrite-heavy puts into pre-populated partitions of ~K/3 entries.
void BM_KvDeltaPut(benchmark::State& state) {
  const int total_keys = static_cast<int>(state.range(0));
  const bool legacy = state.range(1) != 0;
  DeltaRig rig(total_keys, legacy);
  int k = 0, v = 1'000'000;
  for (auto _ : state) {
    rig.put(k % total_keys, ++v);
    k += 7919;  // prime stride: spread splices across the partition
  }
  set_mode_counters(state, rig, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_KvDeltaPut)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({3072, 0})
    ->Args({3072, 1})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->MinTime(0.1);

/// Read-heavy single-key gets (n register reads each) over unchanged
/// registers — the decode-memo steady state.
void BM_KvDeltaGet(benchmark::State& state) {
  const int total_keys = static_cast<int>(state.range(0));
  const bool legacy = state.range(1) != 0;
  DeltaRig rig(total_keys, legacy);
  benchmark::DoNotOptimize(rig.get(1, 0));  // warm the memos
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.get(1, k % total_keys));
    k += 7919;
  }
  set_mode_counters(state, rig, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_KvDeltaGet)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({3072, 0})
    ->Args({3072, 1})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->MinTime(0.1);

/// Mixed workload: mostly reads, occasional writes — memos re-validate
/// only the one changed partition after each write.
void BM_KvDeltaMixed(benchmark::State& state) {
  const int total_keys = static_cast<int>(state.range(0));
  const bool legacy = state.range(1) != 0;
  DeltaRig rig(total_keys, legacy);
  int k = 0, v = 2'000'000;
  for (auto _ : state) {
    if (k % 8 == 0) {
      rig.put(k % total_keys, ++v);
    } else {
      benchmark::DoNotOptimize(rig.get(1, k % total_keys));
    }
    ++k;
  }
  set_mode_counters(state, rig, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_KvDeltaMixed)->Args({3072, 0})->Args({3072, 1})->MinTime(0.1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
