// Tail latency under network chaos (src/net FaultPlan + src/scenario,
// DESIGN.md D10).
//
// Three views of what a hostile fabric COSTS — the correctness side
// (byte-identical merged views, zero false fail_i) is pinned by
// chaos_test; this bench records the latency and resilience-machinery
// bill for the same storms:
//
//   BM_ChaosLossSweep/p‰ — the seeded scenario under p ∈ {0, 1%, 5%, 20%}
//     message loss: op latency distribution (p50/p99/max, µs of wall
//     clock) plus how many client re-sends the loss actually forced.
//     The p=0 row is the baseline the sweep is read against.
//   BM_ChaosPartitionStorm — the D10 acceptance storm: 5% loss + jitter
//     on every shard for the whole run and one asymmetric mid-run
//     partition. p99/max absorb the ops that rode through the cut.
//   BM_ChaosDegradedReads — the api::Store view: a threaded deployment
//     with the D8 cache tier, one shard cut. Reads fall back to
//     verified-but-stale cache state (degraded_reads counts them, and
//     their p50 is reported — the degraded path must stay cheap); writes
//     refuse fast via the breaker; recovery_ms measures heal → first
//     accepted write (breaker probe + retransmission latency).
//
// BENCH_chaos.pre.json holds the chaos-free baseline, .post.json the
// storm runs — like BENCH_scenario, the pre/post pair measures fault
// overhead rather than a code-change delta. FAUST_BENCH_SMOKE=1 shrinks
// the streams for CI; the counters the CI gate reads (complete,
// retransmits, degraded_reads, recovery_ms) are seed-deterministic.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/store.h"
#include "common/check.h"
#include "exec/executor.h"
#include "scenario/runner.h"
#include "shard/sharded_cluster.h"

namespace {

using namespace faust;

std::uint64_t chaos_ops() {
  if (const char* smoke = std::getenv("FAUST_BENCH_SMOKE"); smoke && smoke[0] == '1') {
    return 100;
  }
  return 400;
}

scenario::ScenarioConfig sweep_config() {
  scenario::ScenarioConfig cfg;
  cfg.workload.seed = 4242;
  cfg.workload.n_keys = 50'000;
  cfg.workload.n_ops = chaos_ops();
  cfg.workload.n_writers = 2;
  cfg.shards = 3;
  cfg.cluster_seed = 17;
  return cfg;
}

void report(benchmark::State& state, const scenario::ScenarioResult& r) {
  state.counters["ops"] = static_cast<double>(r.ops);
  state.counters["p50_us"] = r.p50_us;
  state.counters["p99_us"] = r.p99_us;
  state.counters["max_us"] = r.max_us;
  state.counters["retransmits"] = static_cast<double>(r.retransmits);
  state.counters["dropped"] =
      static_cast<double>(r.chaos_dropped + r.chaos_partition_dropped);
  state.counters["complete"] = r.complete && !r.any_failed ? 1.0 : 0.0;
}

// --- Loss-rate sweep ---------------------------------------------------------

void BM_ChaosLossSweep(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 1000.0;
  scenario::ScenarioResult last;
  for (auto _ : state) {
    scenario::ScenarioConfig cfg = sweep_config();
    cfg.fault_plan.drop = drop;
    if (drop > 0) cfg.retransmit_base = 800;  // lossy fabrics require re-sends
    last = scenario::run_scenario(cfg);
    benchmark::DoNotOptimize(last.merged_digest);
  }
  report(state, last);
}
BENCHMARK(BM_ChaosLossSweep)
    ->Arg(0)
    ->Arg(10)
    ->Arg(50)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

// --- The acceptance storm ----------------------------------------------------

void BM_ChaosPartitionStorm(benchmark::State& state) {
  scenario::ScenarioResult last;
  for (auto _ : state) {
    scenario::ScenarioConfig cfg = sweep_config();
    cfg.retransmit_base = 800;
    cfg.fault_plan.drop = 0.05;
    cfg.fault_plan.jitter = 8;
    scenario::PartitionEvent part;
    part.at_op = cfg.workload.n_ops / 3;
    part.shard = 1;
    part.duration = 2'000;
    part.symmetric = false;
    cfg.partitions = {part};
    last = scenario::run_scenario(cfg);
    benchmark::DoNotOptimize(last.merged_digest);
  }
  report(state, last);
}
BENCHMARK(BM_ChaosPartitionStorm)->Unit(benchmark::kMillisecond)->MinTime(0.05);

// --- Degraded reads through api::Store ---------------------------------------

void cut_shard(shard::ShardedCluster& sc, std::size_t s, bool cut, int n_clients) {
  const auto body = [&sc, s, cut, n_clients] {
    Cluster& cl = sc.shard(s);
    for (ClientId c = 1; c <= static_cast<ClientId>(n_clients); ++c) {
      if (cut) {
        cl.net().partition(c, kServerNode);
      } else {
        cl.net().heal(c, kServerNode);
      }
    }
  };
  FAUST_CHECK(exec::post_sync(sc.shard_exec(s), body));
}

void BM_ChaosDegradedReads(benchmark::State& state) {
  constexpr int kClients = 2;
  double degraded_reads = 0, recovery_ms = 0, degraded_p50_us = 0;
  bool ok = true;
  for (auto _ : state) {
    shard::ShardedClusterConfig cfg;
    cfg.shards = 2;
    cfg.seed = 61;
    cfg.mode = shard::ExecMode::kThreaded;
    cfg.shard_template.n = kClients;
    cfg.shard_template.faust.dummy_read_period = 0;
    cfg.shard_template.faust.probe_check_period = 0;
    cfg.shard_template.faust.retransmit_base = 500;
    cfg.shard_template.cache.enabled = true;
    cfg.shard_template.cache.with_node = true;
    shard::ShardedCluster sc(cfg);
    auto store = api::open_store(sc, 1);
    store->set_wait_timeout(std::chrono::milliseconds(100));
    store->set_breaker(/*threshold=*/2, /*cooldown_ops=*/8);

    std::string key;
    for (int k = 0;; ++k) {
      key = "bk" + std::to_string(k);
      if (store->home_shard(key) == 0) break;
    }
    ok = ok &&
         store->put(key, "warm").wait_for(std::chrono::seconds(10)).status ==
             api::Status::kOk &&
         store->get(key).wait_for(std::chrono::seconds(10)).status == api::Status::kOk;

    cut_shard(sc, 0, true, kClients);
    // Trip the breaker, then read through the outage.
    ok = ok && store->put(key, "x").wait().status == api::Status::kTimedOut;
    ok = ok && store->put(key, "y").wait().status == api::Status::kTimedOut;
    const int reads = 32;
    std::vector<double> read_us;
    for (int i = 0; i < reads; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const api::GetResult g = store->get(key).wait();
      const auto dt = std::chrono::steady_clock::now() - t0;
      if (g.status == api::Status::kOk && g.cached) {
        degraded_reads += 1;
        read_us.push_back(
            std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(dt)
                .count());
      }
    }
    if (!read_us.empty()) {
      std::sort(read_us.begin(), read_us.end());
      degraded_p50_us = read_us[read_us.size() / 2];
    }

    cut_shard(sc, 0, false, kClients);
    // Recovery: heal → first accepted write. The breaker lets every 8th
    // op through as a probe; retransmission finishes the stranded ops.
    const auto h0 = std::chrono::steady_clock::now();
    bool recovered = false;
    for (int i = 0; i < 400 && !recovered; ++i) {
      recovered = store->put(key, "recovered")
                      .wait_for(std::chrono::milliseconds(500))
                      .status == api::Status::kOk;
    }
    recovery_ms = std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                      std::chrono::steady_clock::now() - h0)
                      .count();
    ok = ok && recovered && !store->any_failed();
    sc.stop();
  }
  state.counters["degraded_reads"] = degraded_reads;
  state.counters["degraded_p50_us"] = degraded_p50_us;
  state.counters["recovery_ms"] = recovery_ms;
  state.counters["complete"] = ok ? 1.0 : 0.0;
}
BENCHMARK(BM_ChaosDegradedReads)->Unit(benchmark::kMillisecond)->MinTime(0.05);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
