// O(change) on the wire (PERF.md "Bytes per op"): SUBMIT/REPLY bytes per
// operation against keyspace size K, with the D6 delta wire protocol
// (SUBMIT_DELTA / REPLY_DELTA + advertised read bases) toggled against
// the full-value wire path. The engine-side delta machinery (incremental
// encode, chunked digests, decode memos) is ON in both modes — only the
// transport representation differs, so the bytes/op counters isolate the
// wire claim.
//
// The claims under test:
//   * SUBMIT bytes for a single-key put at K=16384 stay within 4x of
//     K=256 with deltas on (full-value SUBMITs scale with the partition);
//   * an all-unchanged snapshot read ships O(1) bytes per partition
//     (REPLY_DELTA "unchanged" tokens, a few hundred bytes vs the full
//     value — the residue is the version vector + L/P lists, not data).
//
// Byte counts come from the net::Network per-message-type accounting
// (total_for(tag)), measured as deltas across the timed loop and
// reported as user counters: submit_bytes_per_op / reply_bytes_per_op
// sum the full and delta variants of each direction, so the two modes
// are directly comparable. CI's perf-smoke job parses these counters
// out of BENCH_wire_delta.json and asserts the 4x bound.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "faust/cluster.h"
#include "kvstore/kv_client.h"

namespace {

using namespace faust;

constexpr int kWriters = 3;

std::string key_of(int k) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06d", k);
  return buf;
}

std::string value_of(int v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "v%07d", v % 10'000'000);
  return buf;
}

struct WireRig {
  WireRig(int total_keys, bool deltas) {
    ClusterConfig cfg;
    cfg.n = kWriters;
    cfg.seed = 4242;
    cfg.delay = net::DelayModel{1, 1};
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    cfg.faust.data_digest = ustor::DigestMode::kChunked;
    cfg.faust.wire_deltas = deltas;
    cluster = std::make_unique<Cluster>(cfg);
    const kv::KvTuning tuning{/*incremental_encode=*/true, /*decode_memo=*/true};
    for (ClientId i = 1; i <= kWriters; ++i) {
      kv.push_back(std::make_unique<kv::KvClient>(cluster->client(i), tuning));
    }
    // Bulk-load K keys round-robin over the writers: one publication per
    // writer (apply_with_seqs), so setup stays cheap even at K=16384.
    std::vector<std::vector<kv::KvClient::SeqChange>> load(kWriters);
    std::vector<std::uint64_t> seq(kWriters, 0);
    for (int k = 0; k < total_keys; ++k) {
      const int w = k % kWriters;
      load[static_cast<std::size_t>(w)].push_back(
          kv::KvClient::SeqChange{key_of(k), value_of(k), ++seq[static_cast<std::size_t>(w)]});
    }
    for (int w = 0; w < kWriters; ++w) {
      bool done = false;
      kv[static_cast<std::size_t>(w)]->apply_with_seqs(load[static_cast<std::size_t>(w)],
                                                       [&](Timestamp) { done = true; });
      drive(done);
    }
  }

  void drive(const bool& done) {
    while (!done && cluster->sched().step()) {
    }
  }

  void put(int k, int v) {
    bool done = false;
    kv[static_cast<std::size_t>(k % kWriters)]->put(key_of(k), value_of(v),
                                                    [&](Timestamp) { done = true; });
    drive(done);
  }

  std::optional<kv::KvEntry> get(ClientId reader, int k) {
    bool done = false;
    std::optional<kv::KvEntry> out;
    kv[static_cast<std::size_t>(reader - 1)]->get(
        key_of(k), [&](std::optional<kv::KvEntry> e, Timestamp) {
          out = std::move(e);
          done = true;
        });
    drive(done);
    return out;
  }

  /// SUBMIT-direction bytes so far: full + delta variants summed, so
  /// delta and full runs report through the same counter.
  std::uint64_t submit_bytes() const {
    const auto& n = cluster->net();
    return n.total_for(static_cast<std::uint8_t>(ustor::MsgType::kSubmit)).bytes +
           n.total_for(static_cast<std::uint8_t>(ustor::MsgType::kSubmitDelta)).bytes;
  }

  /// REPLY-direction bytes so far (full + delta).
  std::uint64_t reply_bytes() const {
    const auto& n = cluster->net();
    return n.total_for(static_cast<std::uint8_t>(ustor::MsgType::kReply)).bytes +
           n.total_for(static_cast<std::uint8_t>(ustor::MsgType::kReplyDelta)).bytes;
  }

  /// REPLY_DELTA messages so far (for the unchanged-storm accounting).
  std::uint64_t reply_delta_messages() const {
    return cluster->net()
        .total_for(static_cast<std::uint8_t>(ustor::MsgType::kReplyDelta))
        .messages;
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<kv::KvClient>> kv;
};

/// Reports bytes/op (measured across the timed loop only) plus the
/// engine-side delta outcome counters, so a JSON diff shows not just the
/// byte win but WHICH path produced it.
void set_wire_counters(benchmark::State& state, const WireRig& rig,
                       std::uint64_t submit_before, std::uint64_t reply_before) {
  const double ops = static_cast<double>(state.iterations());
  state.counters["keys"] = static_cast<double>(state.range(0));
  state.counters["wire_deltas"] = static_cast<double>(state.range(1));
  state.counters["ops_per_sec"] = benchmark::Counter(ops, benchmark::Counter::kIsRate);
  state.counters["submit_bytes_per_op"] =
      static_cast<double>(rig.submit_bytes() - submit_before) / (ops > 0 ? ops : 1);
  state.counters["reply_bytes_per_op"] =
      static_cast<double>(rig.reply_bytes() - reply_before) / (ops > 0 ? ops : 1);
  std::uint64_t dsub = 0, unchanged = 0, spliced = 0, fallbacks = 0;
  for (ClientId i = 1; i <= kWriters; ++i) {
    const auto& eng = rig.cluster->client(i).engine();
    dsub += eng.delta_submits();
    unchanged += eng.delta_replies_unchanged();
    spliced += eng.delta_replies_spliced();
    fallbacks += eng.delta_fallbacks();
  }
  state.counters["delta_submits"] = static_cast<double>(dsub);
  state.counters["delta_replies_unchanged"] = static_cast<double>(unchanged);
  state.counters["delta_replies_spliced"] = static_cast<double>(spliced);
  state.counters["delta_fallbacks"] = static_cast<double>(fallbacks);
}

/// Overwrite-heavy single-key puts into pre-populated partitions of
/// ~K/3 entries: submit_bytes_per_op is the headline number (the 4x
/// K-independence bound is asserted on the deltas-on rows).
void BM_WirePut(benchmark::State& state) {
  const int total_keys = static_cast<int>(state.range(0));
  const bool deltas = state.range(1) != 0;
  WireRig rig(total_keys, deltas);
  const std::uint64_t sb = rig.submit_bytes(), rb = rig.reply_bytes();
  int k = 0, v = 1'000'000;
  for (auto _ : state) {
    rig.put(k % total_keys, ++v);
    k += 7919;  // prime stride: spread splices across the partition
  }
  set_wire_counters(state, rig, sb, rb);
}
BENCHMARK(BM_WirePut)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({3072, 0})
    ->Args({3072, 1})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->MinTime(0.1);

/// Single-key gets over registers that keep changing under the reader:
/// with deltas on, the REPLY carries splice runs against the reader's
/// last verified base instead of the whole partition.
void BM_WireGet(benchmark::State& state) {
  const int total_keys = static_cast<int>(state.range(0));
  const bool deltas = state.range(1) != 0;
  WireRig rig(total_keys, deltas);
  benchmark::DoNotOptimize(rig.get(1, 0));  // warm memos + verified bases
  const std::uint64_t sb = rig.submit_bytes(), rb = rig.reply_bytes();
  int k = 0, v = 3'000'000;
  for (auto _ : state) {
    rig.put(k % total_keys, ++v);  // keep the registers moving
    benchmark::DoNotOptimize(rig.get(1, k % total_keys));
    k += 7919;
  }
  set_wire_counters(state, rig, sb, rb);
}
BENCHMARK(BM_WireGet)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({3072, 0})
    ->Args({3072, 1})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->MinTime(0.1);

/// Mixed workload: mostly reads, occasional writes.
void BM_WireMixed(benchmark::State& state) {
  const int total_keys = static_cast<int>(state.range(0));
  const bool deltas = state.range(1) != 0;
  WireRig rig(total_keys, deltas);
  benchmark::DoNotOptimize(rig.get(1, 0));
  const std::uint64_t sb = rig.submit_bytes(), rb = rig.reply_bytes();
  int k = 0, v = 2'000'000;
  for (auto _ : state) {
    if (k % 8 == 0) {
      rig.put(k % total_keys, ++v);
    } else {
      benchmark::DoNotOptimize(rig.get(1, k % total_keys));
    }
    ++k;
  }
  set_wire_counters(state, rig, sb, rb);
}
BENCHMARK(BM_WireMixed)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({3072, 0})
    ->Args({3072, 1})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->MinTime(0.1);

/// All-unchanged read storm: every register was verified once, then
/// nothing moves — each subsequent read's n REPLYs should be O(1)
/// "unchanged" tokens, independent of the partition size. Reported as
/// reply_bytes_per_op (one op = one get = n register reads).
void BM_WireUnchangedStorm(benchmark::State& state) {
  const int total_keys = static_cast<int>(state.range(0));
  const bool deltas = state.range(1) != 0;
  WireRig rig(total_keys, deltas);
  // Warm every writer's register in the reader's memo (one get per
  // partition suffices: a get reads all n registers).
  benchmark::DoNotOptimize(rig.get(1, 0));
  const std::uint64_t sb = rig.submit_bytes(), rb = rig.reply_bytes();
  const std::uint64_t rdm = rig.reply_delta_messages();
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.get(1, k % total_keys));
    k += 7919;
  }
  set_wire_counters(state, rig, sb, rb);
  const double msgs = static_cast<double>(rig.reply_delta_messages() - rdm);
  state.counters["reply_bytes_per_msg"] =
      msgs > 0 ? static_cast<double>(rig.reply_bytes() - rb) / msgs : 0.0;
}
BENCHMARK(BM_WireUnchangedStorm)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->MinTime(0.1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
