// C2 (DESIGN.md): "communication overhead of O(n) bits per request" (§5).
//
// Measures the encoded size of every USTOR message type as a function of
// the number of clients n, plus the end-to-end bytes-per-operation of a
// live simulated workload. The paper's claim holds if the series grows
// linearly in n: the version vector (n timestamps + n digests) and the
// PROOF array (n signatures) dominate.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/signature.h"
#include "faust/cluster.h"
#include "ustor/messages.h"

namespace {

using namespace faust;

ustor::Version chained_version(int n, int ops) {
  ustor::Version v(n);
  ustor::Digest d = ustor::Digest::bottom();
  for (int q = 0; q < ops; ++q) {
    const ClientId c = (q % n) + 1;
    d = ustor::chain_step(d, c);
    v.v(c) += 1;
    v.m(c) = d;
  }
  return v;
}

/// Builds a REPLY shaped like a steady-state read reply: full version,
/// full PROOF array, a couple of concurrent ops in L.
ustor::ReplyMessage realistic_reply(int n) {
  auto sigs = crypto::make_hmac_scheme(n);
  ustor::ReplyMessage m;
  m.c = 1;
  m.last.version = chained_version(n, 3 * n);
  m.last.commit_sig = sigs->sign(1, ustor::commit_payload(m.last.version));
  ustor::ReadPayload rp;
  rp.writer.version = chained_version(n, 2 * n);
  rp.writer.commit_sig = sigs->sign(2, ustor::commit_payload(rp.writer.version));
  rp.tj = 2;
  rp.value = to_bytes("a register value of 32 bytes....");
  rp.data_sig = sigs->sign(2, ustor::data_payload(2, ustor::value_hash(rp.value)));
  m.read = rp;
  for (int k = 0; k < 2; ++k) {
    ustor::InvocationTuple inv;
    inv.client = (k % n) + 1;
    inv.oc = ustor::OpCode::kWrite;
    inv.target = inv.client;
    inv.submit_sig = sigs->sign(inv.client, ustor::submit_payload(inv.oc, inv.target, 1));
    m.L.push_back(inv);
  }
  for (int k = 1; k <= n; ++k) {
    m.P.push_back(sigs->sign(k, ustor::proof_payload(m.last.version.m(k))));
  }
  return m;
}

void BM_SubmitSize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto sigs = crypto::make_hmac_scheme(n);
  ustor::SubmitMessage m;
  m.t = 7;
  m.inv = {1, ustor::OpCode::kWrite, 1,
           sigs->sign(1, ustor::submit_payload(ustor::OpCode::kWrite, 1, 7))};
  m.value = to_bytes("a register value of 32 bytes....");
  m.data_sig = sigs->sign(1, ustor::data_payload(7, ustor::value_hash(m.value)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes b = ustor::encode(m);
    bytes = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_n"] = static_cast<double>(bytes) / n;
}
BENCHMARK(BM_SubmitSize)->RangeMultiplier(2)->Range(2, 256);

void BM_ReplySize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ustor::ReplyMessage m = realistic_reply(n);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes b = ustor::encode(m);
    bytes = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_n"] = static_cast<double>(bytes) / n;  // O(n) ⇔ flat
}
BENCHMARK(BM_ReplySize)->RangeMultiplier(2)->Range(2, 256);

void BM_CommitSize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto sigs = crypto::make_hmac_scheme(n);
  ustor::CommitMessage m;
  m.version = chained_version(n, 3 * n);
  m.commit_sig = sigs->sign(1, ustor::commit_payload(m.version));
  m.proof_sig = sigs->sign(1, ustor::proof_payload(m.version.m(1)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes b = ustor::encode(m);
    bytes = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_n"] = static_cast<double>(bytes) / n;
}
BENCHMARK(BM_CommitSize)->RangeMultiplier(2)->Range(2, 256);

/// End-to-end: run a live workload and report wire bytes per completed op.
void BM_LiveBytesPerOp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double bytes_per_op = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.seed = 5;
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    Cluster cl(cfg);
    const int ops = 20;
    for (int k = 0; k < ops; ++k) {
      cl.write((k % n) + 1, "value-" + std::to_string(k));
      cl.read(((k + 1) % n) + 1, (k % n) + 1);
    }
    cl.run_for(1'000);  // drain trailing COMMITs
    bytes_per_op = static_cast<double>(cl.net().total().bytes) / (2.0 * ops);
  }
  state.counters["bytes_per_op"] = bytes_per_op;
  state.counters["bytes_per_op_per_n"] = bytes_per_op / n;
}
BENCHMARK(BM_LiveBytesPerOp)->RangeMultiplier(2)->Range(2, 64)->Iterations(1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
