// C1 (DESIGN.md): "a single round of message exchange between a client
// and the server for every operation" (§5).
//
// Counts messages on the critical path of each operation and measures
// operation latency in virtual ticks against the network round-trip time.
// USTOR's COMMIT is fire-and-forget: latency ≈ 1 RTT regardless of
// concurrency. The lock-step baseline's grant queue shows up as latency
// growing with the number of contending clients.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "baseline/lockstep.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "faust/cluster.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace {

using namespace faust;

/// USTOR: latency and message counts for a sequential op stream.
void BM_UstorRoundsPerOp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double msgs_to_server = 0, msgs_to_client = 0, avg_latency = 0, rtt = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.seed = 11;
    cfg.delay = net::DelayModel{5, 5};  // fixed delay: RTT = 10 ticks exactly
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    Cluster cl(cfg);
    const int ops = 30;
    sim::Time total_latency = 0;
    for (int k = 0; k < ops; ++k) {
      const sim::Time t0 = cl.sched().now();
      cl.write((k % n) + 1, "v" + std::to_string(k));
      total_latency += cl.sched().now() - t0;
    }
    cl.run_for(1'000);
    // Messages client->server per op: 1 SUBMIT + 1 COMMIT; server->client:
    // 1 REPLY. Critical path: SUBMIT + REPLY = exactly one round.
    std::uint64_t to_server = 0, to_client = 0;
    for (ClientId i = 1; i <= n; ++i) {
      to_server += cl.net().channel(i, kServerNode).messages;
      to_client += cl.net().channel(kServerNode, i).messages;
    }
    msgs_to_server = static_cast<double>(to_server) / ops;
    msgs_to_client = static_cast<double>(to_client) / ops;
    avg_latency = static_cast<double>(total_latency) / ops;
    rtt = 10.0;
  }
  state.counters["submit+commit_per_op"] = msgs_to_server;
  state.counters["reply_per_op"] = msgs_to_client;
  state.counters["latency_ticks"] = avg_latency;
  state.counters["latency_in_RTTs"] = avg_latency / rtt;  // claim: ~1.0
}
BENCHMARK(BM_UstorRoundsPerOp)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);

/// USTOR latency under contention: all clients issue simultaneously; the
/// wait-free protocol keeps per-op latency at one RTT.
void BM_UstorLatencyUnderContention(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double avg_latency = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.seed = 13;
    cfg.delay = net::DelayModel{5, 5};
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    Cluster cl(cfg);
    const int rounds = 10;
    sim::Time total = 0;
    int completed = 0;
    for (int r = 0; r < rounds; ++r) {
      const sim::Time t0 = cl.sched().now();
      std::vector<sim::Time> done(static_cast<std::size_t>(n) + 1, 0);
      for (ClientId i = 1; i <= n; ++i) {
        cl.client(i).write(to_bytes("r" + std::to_string(r) + "c" + std::to_string(i)),
                           [&, i](Timestamp) { done[static_cast<std::size_t>(i)] = cl.sched().now(); });
      }
      cl.sched().run();  // drains: no timers configured
      for (ClientId i = 1; i <= n; ++i) {
        total += done[static_cast<std::size_t>(i)] - t0;
        ++completed;
      }
    }
    avg_latency = static_cast<double>(total) / completed;
  }
  state.counters["latency_ticks"] = avg_latency;
  state.counters["latency_in_RTTs"] = avg_latency / 10.0;  // stays ~1 for all n
}
BENCHMARK(BM_UstorLatencyUnderContention)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);

/// Lock-step baseline under the same contention: grants serialize, so the
/// average latency grows linearly with n (the blocking the paper's §1
/// says is unavoidable for fork-linearizability).
void BM_LockStepLatencyUnderContention(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double avg_latency = 0;
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched, Rng(13), net::DelayModel{5, 5});
    auto sigs = crypto::make_hmac_scheme(n);
    baseline::LockStepServer server(n, net);
    std::vector<std::unique_ptr<baseline::LockStepClient>> clients;
    for (ClientId i = 1; i <= n; ++i) {
      clients.push_back(std::make_unique<baseline::LockStepClient>(i, n, sigs, net));
    }
    const int rounds = 10;
    sim::Time total = 0;
    int completed = 0;
    for (int r = 0; r < rounds; ++r) {
      const sim::Time t0 = sched.now();
      for (ClientId i = 1; i <= n; ++i) {
        clients[static_cast<std::size_t>(i - 1)]->write(
            to_bytes("r" + std::to_string(r) + "c" + std::to_string(i)), [&, t0] {
              total += sched.now() - t0;
              ++completed;
            });
      }
      sched.run();
    }
    avg_latency = completed > 0 ? static_cast<double>(total) / completed : 0;
  }
  state.counters["latency_ticks"] = avg_latency;
  state.counters["latency_in_RTTs"] = avg_latency / 10.0;  // grows ~n/2
}
BENCHMARK(BM_LockStepLatencyUnderContention)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
