// Edge-cache offload under the read-heavy Zipf storm (src/cache,
// DESIGN.md D8, PERF.md "Edge cache").
//
// Two deployments of the SAME seeded 95/5 read/write Zipf(0.99) stream
// over S=3 memory-only shards, K=100k keys:
//
//   BM_CacheOff — every observing snapshot reads its registers through
//     the home shard's FAUST protocol: the baseline read latency and the
//     shard load the cache tier exists to shed.
//   BM_CacheOn  — each shard fronted by an untrusted CacheNode
//     (ttl=0: entries live until displaced); clients read through it,
//     verify every served section exactly as they verify shard replies,
//     and fall back per-register on miss. Counters add cache_hit_rate,
//     registers served per origin, and the fraction of snapshots that
//     completed with ZERO shard contact.
//
// The differential oracle (scenario_test CacheOnOffConverges...) proves
// both runs merge to byte-identical views; this bench records what the
// cache tier BUYS: the perf-smoke CI gate asserts hit rate >= 0.8 and
// cached p50 < cache-off p50 on the smoke stream. BENCH_cache.pre.json
// holds the cache-off run, .post.json the cache-on run — the pre/post
// pair measures the offload, not a code-change delta.
// FAUST_BENCH_SMOKE=1 shrinks the stream for CI.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "scenario/runner.h"

namespace {

using namespace faust;

std::uint64_t storm_ops() {
  if (const char* smoke = std::getenv("FAUST_BENCH_SMOKE"); smoke && smoke[0] == '1') {
    return 400;
  }
  return 2'000;
}

scenario::ScenarioConfig storm_config() {
  scenario::ScenarioConfig cfg;
  cfg.workload.seed = 606;
  cfg.workload.n_keys = 100'000;
  cfg.workload.n_ops = storm_ops();
  cfg.workload.n_writers = 2;
  cfg.workload.read_fraction = 0.95;
  cfg.workload.zipf_exponent = 0.99;
  cfg.shards = 3;
  cfg.cluster_seed = 17;
  // Memory-only servers: no kills, so no durability dir needed — the
  // bench isolates read-path cost from WAL/snapshot cadence.
  cfg.dir.clear();
  return cfg;
}

void report(benchmark::State& state, const scenario::ScenarioResult& r) {
  state.counters["ops"] = static_cast<double>(r.ops);
  state.counters["reads"] = static_cast<double>(r.reads);
  state.counters["p50_us"] = r.p50_us;
  state.counters["p99_us"] = r.p99_us;
  state.counters["max_us"] = r.max_us;
  state.counters["cache_hit_rate"] = r.cache_hit_rate;
  state.counters["registers_cache_served"] = static_cast<double>(r.registers_cache_served);
  state.counters["registers_engine_read"] = static_cast<double>(r.registers_engine_read);
  state.counters["snapshots_cached"] = static_cast<double>(r.snapshots_cached);
  state.counters["snapshots_total"] = static_cast<double>(r.snapshots_total);
  state.counters["complete"] = r.complete && !r.any_failed && r.merged_complete ? 1.0 : 0.0;
}

void BM_CacheOff(benchmark::State& state) {
  scenario::ScenarioResult last;
  for (auto _ : state) {
    scenario::ScenarioConfig cfg = storm_config();
    last = scenario::run_scenario(cfg);
    benchmark::DoNotOptimize(last.merged_digest);
  }
  report(state, last);
}
BENCHMARK(BM_CacheOff)->Unit(benchmark::kMillisecond)->MinTime(0.05);

void BM_CacheOn(benchmark::State& state) {
  scenario::ScenarioResult last;
  for (auto _ : state) {
    scenario::ScenarioConfig cfg = storm_config();
    cfg.cache.enabled = true;
    cfg.cache.ttl = 0;  // displacement-only: isolates hit rate from TTL churn
    last = scenario::run_scenario(cfg);
    benchmark::DoNotOptimize(last.merged_digest);
  }
  report(state, last);
}
BENCHMARK(BM_CacheOn)->Unit(benchmark::kMillisecond)->MinTime(0.05);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
