// C6 (DESIGN.md), part 2: version bookkeeping costs — the ≼ comparison of
// Def. 7, digest chaining, version encoding — as functions of n; plus the
// growth of the server's concurrent-operations list L when COMMITs are
// withheld (ablation of design decision D5: COMMIT exists to garbage-
// collect L, not for correctness).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "adversary/misc_servers.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"
#include "ustor/server.h"
#include "ustor/types.h"

namespace {

using namespace faust;

ustor::Version chained_version(int n, int ops) {
  ustor::Version v(n);
  ustor::Digest d = ustor::Digest::bottom();
  for (int q = 0; q < ops; ++q) {
    const ClientId c = (q % n) + 1;
    d = ustor::chain_step(d, c);
    v.v(c) += 1;
    v.m(c) = d;
  }
  return v;
}

void BM_VersionLeq(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ustor::Version a = chained_version(n, 2 * n);
  const ustor::Version b = chained_version(n, 3 * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ustor::version_leq(a, b));
  }
  state.counters["compares_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VersionLeq)->RangeMultiplier(4)->Range(4, 1024);

void BM_ChainStep(benchmark::State& state) {
  ustor::Digest d = ustor::Digest::bottom();
  ClientId c = 1;
  for (auto _ : state) {
    d = ustor::chain_step(d, c);
    c = (c % 16) + 1;
    benchmark::DoNotOptimize(d);
  }
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ChainStep);

void BM_VersionEncode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ustor::Version v = chained_version(n, 3 * n);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes b = ustor::encode_version(v);
    bytes = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["encoded_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_VersionEncode)->RangeMultiplier(4)->Range(4, 1024);

/// updateVersion cost from the client's perspective: a full op round trip
/// in a zero-delay simulation, dominated by signature checks + digest
/// chaining. Scales O(n) per op (version copy) — the protocol's CPU cost.
void BM_FullOpCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Scheduler sched;
  net::Network net(sched, Rng(3), net::DelayModel{1, 1});
  auto sigs = crypto::make_hmac_scheme(n);
  ustor::Server server(n, net);
  std::vector<std::unique_ptr<ustor::Client>> clients;
  for (ClientId i = 1; i <= n; ++i) {
    clients.push_back(std::make_unique<ustor::Client>(i, n, sigs, net));
  }
  int k = 0;
  for (auto _ : state) {
    ustor::Client& c = *clients[static_cast<std::size_t>(k++ % n)];
    bool done = false;
    c.writex(to_bytes("x"), [&done](const ustor::WriteResult&) { done = true; });
    while (!done && sched.step()) {
    }
  }
  state.counters["ops_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullOpCost)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->MinTime(0.2);

/// D5 ablation: |L| growth when the server never receives COMMITs. The
/// protocol stays correct (clients verify everything in L) but the reply
/// size grows with every submitted operation — COMMIT is pure GC.
void BM_PendingListGrowthWithoutCommits(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  double final_l = 0, reply_bytes = 0;
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched, Rng(5), net::DelayModel{1, 1});
    auto sigs = crypto::make_hmac_scheme(4);
    adversary::CommitDroppingServer server(4, net);
    // Fresh client per op (an old client would detect the omission on its
    // second op — see ustor_byzantine_test); we only grow L here.
    for (int k = 0; k < ops; ++k) {
      ustor::SubmitMessage m;
      m.t = 1;
      const ClientId i = (k % 4) + 1;
      m.inv = {i, ustor::OpCode::kWrite, i,
               sigs->sign(i, ustor::submit_payload(ustor::OpCode::kWrite, i, 1))};
      m.value = to_bytes("v");
      m.data_sig = sigs->sign(i, ustor::data_payload(1, ustor::value_hash(m.value)));
      const ustor::ReplySnapshot reply = server.core().process_submit(m);
      reply_bytes = static_cast<double>(ustor::encode(reply).size());
    }
    final_l = static_cast<double>(server.core().pending_list_size());
  }
  state.counters["final_L_size"] = final_l;
  state.counters["last_reply_bytes"] = reply_bytes;
}
BENCHMARK(BM_PendingListGrowthWithoutCommits)->Arg(16)->Arg(64)->Arg(256)->Iterations(1);

/// Control: with COMMITs flowing, L stays O(1) and replies stay small.
void BM_PendingListWithCommits(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  double max_l = 0;
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched, Rng(5), net::DelayModel{1, 1});
    auto sigs = crypto::make_hmac_scheme(4);
    ustor::Server server(4, net);
    std::vector<std::unique_ptr<ustor::Client>> clients;
    for (ClientId i = 1; i <= 4; ++i) {
      clients.push_back(std::make_unique<ustor::Client>(i, 4, sigs, net));
    }
    double peak = 0;
    for (int k = 0; k < ops; ++k) {
      ustor::Client& c = *clients[static_cast<std::size_t>(k % 4)];
      bool done = false;
      c.writex(to_bytes("x"), [&done](const ustor::WriteResult&) { done = true; });
      while (!done && sched.step()) {
      }
      peak = std::max(peak, static_cast<double>(server.core().pending_list_size()));
    }
    sched.run();
    max_l = peak;
  }
  state.counters["peak_L_size"] = max_l;  // stays bounded by n
}
BENCHMARK(BM_PendingListWithCommits)->Arg(16)->Arg(64)->Arg(256)->Iterations(1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
