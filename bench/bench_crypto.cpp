// C6 (DESIGN.md), part 1: cost of the cryptographic substrate, and the
// end-to-end ablation HMAC signatures vs no signatures (NullSignature-
// Scheme) — quantifying what the paper's integrity guarantees cost.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "crypto/hmac.h"
#include "crypto/merkle_sig.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "ustor/client.h"
#include "ustor/server.h"

namespace {

using namespace faust;

void BM_Sha256Throughput(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * size));
}
BENCHMARK(BM_Sha256Throughput)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_HmacSign(benchmark::State& state) {
  const auto scheme = crypto::make_hmac_scheme(4);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->sign(1, msg));
  }
  state.counters["sigs_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HmacSign)->Arg(64)->Arg(512)->Arg(4096);

void BM_HmacVerify(benchmark::State& state) {
  const auto scheme = crypto::make_hmac_scheme(4);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x5a);
  const Bytes sig = scheme->sign(1, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->verify(1, msg, sig));
  }
  state.counters["verifies_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HmacVerify)->Arg(64)->Arg(512)->Arg(4096);

/// Hash-based (Merkle/Lamport) signatures: the true-digital-signature
/// alternative to HMAC (see crypto/merkle_sig.h). Key generation is the
/// dominant cost; signatures are ~16.5 kB.
void BM_MerkleKeygen(benchmark::State& state) {
  const int height = static_cast<int>(state.range(0));
  for (auto _ : state) {
    crypto::MerkleSignatureScheme scheme(1, to_bytes("bench-seed"), height);
    benchmark::DoNotOptimize(scheme.public_key(1));
  }
  state.counters["signatures_capacity"] = static_cast<double>(1ULL << height);
}
BENCHMARK(BM_MerkleKeygen)->Arg(2)->Arg(4)->Arg(6)->MinTime(0.05);

void BM_MerkleSign(benchmark::State& state) {
  crypto::MerkleSignatureScheme scheme(1, to_bytes("bench-seed"), 8);  // 256 one-time keys
  const Bytes msg(256, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sign(1, msg));
  }
  state.counters["sig_bytes"] = static_cast<double>(scheme.signature_size());
  state.counters["sigs_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MerkleSign)->Iterations(200);

void BM_MerkleVerify(benchmark::State& state) {
  crypto::MerkleSignatureScheme scheme(1, to_bytes("bench-seed"), 4);
  const Bytes msg(256, 0x5a);
  const Bytes sig = scheme.sign(1, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.verify(1, msg, sig));
  }
  state.counters["verifies_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MerkleVerify)->MinTime(0.05);

/// End-to-end ablation: wall-clock time to push a fixed USTOR workload
/// through the simulator, with real vs null signatures. The gap is the
/// total cryptography cost per operation (sign + verify on both ends of
/// every message).
void run_workload(const std::shared_ptr<const crypto::SignatureScheme>& scheme, int n,
                  int ops) {
  sim::Scheduler sched;
  net::Network net(sched, Rng(3), net::DelayModel{1, 5});
  ustor::Server server(n, net);
  std::vector<std::unique_ptr<ustor::Client>> clients;
  for (ClientId i = 1; i <= n; ++i) {
    clients.push_back(std::make_unique<ustor::Client>(i, n, scheme, net));
  }
  for (int k = 0; k < ops; ++k) {
    ustor::Client& c = *clients[static_cast<std::size_t>(k % n)];
    bool done = false;
    if (k % 2 == 0) {
      c.writex(to_bytes("v" + std::to_string(k)),
               [&done](const ustor::WriteResult&) { done = true; });
    } else {
      c.readx(((k + 1) % n) + 1, [&done](const ustor::ReadResult&) { done = true; });
    }
    while (!done && sched.step()) {
    }
  }
}

void BM_UstorWorkloadHmac(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto scheme = crypto::make_hmac_scheme(n);
  const int ops = 200;
  for (auto _ : state) {
    run_workload(scheme, n, ops);
  }
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UstorWorkloadHmac)->Arg(4)->Arg(16)->Arg(64)->MinTime(0.2);

void BM_UstorWorkloadNullCrypto(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto scheme = std::make_shared<crypto::NullSignatureScheme>();
  const int ops = 200;
  for (auto _ : state) {
    run_workload(scheme, n, ops);
  }
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_UstorWorkloadNullCrypto)->Arg(4)->Arg(16)->Arg(64)->MinTime(0.2);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
