// C3 (DESIGN.md): wait-freedom. "No fork-linearizable storage protocol
// can be wait-free" (§1, [5]) — USTOR completes operations regardless of
// other clients; the lock-step fork-linearizable baseline wedges forever
// when a client crashes inside its critical window.
//
// Series reported: operations completed by the surviving clients within a
// fixed virtual-time budget after one client crashes mid-operation.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "baseline/lockstep.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "faust/cluster.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace {

using namespace faust;

constexpr sim::Time kBudget = 20'000;

/// USTOR survivors after a mid-operation crash.
void BM_UstorSurvivorThroughputAfterCrash(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double completed_ops = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.seed = 23;
    cfg.delay = net::DelayModel{5, 5};
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    Cluster cl(cfg);

    // Client 1 submits and dies before committing.
    cl.client(1).write(to_bytes("doomed"), [](Timestamp) {});
    cl.run_for(5);
    cl.net().crash(1);

    // Every survivor pumps operations back-to-back for the budget.
    std::uint64_t completed = 0;
    std::vector<std::function<void()>> pump(static_cast<std::size_t>(n) + 1);
    for (ClientId i = 2; i <= n; ++i) {
      pump[static_cast<std::size_t>(i)] = [&, i] {
        cl.client(i).write(to_bytes("w" + std::to_string(completed)), [&, i](Timestamp) {
          ++completed;
          if (cl.sched().now() < kBudget) pump[static_cast<std::size_t>(i)]();
        });
      };
      pump[static_cast<std::size_t>(i)]();
    }
    cl.sched().run_until(kBudget);
    completed_ops = static_cast<double>(completed);
  }
  state.counters["survivor_ops_completed"] = completed_ops;
  state.counters["wait_free"] = completed_ops > 0 ? 1 : 0;
}
BENCHMARK(BM_UstorSurvivorThroughputAfterCrash)->Arg(2)->Arg(4)->Arg(8)->Iterations(1);

/// Lock-step baseline, identical scenario: everything blocks.
void BM_LockStepSurvivorThroughputAfterCrash(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double completed_ops = 0;
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched, Rng(23), net::DelayModel{5, 5});
    auto sigs = crypto::make_hmac_scheme(n);
    baseline::LockStepServer server(n, net);
    std::vector<std::unique_ptr<baseline::LockStepClient>> clients;
    for (ClientId i = 1; i <= n; ++i) {
      clients.push_back(std::make_unique<baseline::LockStepClient>(i, n, sigs, net));
    }
    clients[0]->set_crash_on_grant(true);
    clients[0]->write(to_bytes("doomed"), [] {});

    std::uint64_t completed = 0;
    std::vector<std::function<void()>> pump(static_cast<std::size_t>(n) + 1);
    for (ClientId i = 2; i <= n; ++i) {
      auto& client = *clients[static_cast<std::size_t>(i - 1)];
      pump[static_cast<std::size_t>(i)] = [&, i] {
        client.write(to_bytes("w"), [&, i] {
          ++completed;
          if (sched.now() < kBudget) pump[static_cast<std::size_t>(i)]();
        });
      };
      pump[static_cast<std::size_t>(i)]();
    }
    sched.run_until(kBudget);
    completed_ops = static_cast<double>(completed);
  }
  state.counters["survivor_ops_completed"] = completed_ops;  // = 0: blocked
  state.counters["wait_free"] = completed_ops > 0 ? 1 : 0;
}
BENCHMARK(BM_LockStepSurvivorThroughputAfterCrash)->Arg(2)->Arg(4)->Arg(8)->Iterations(1);

/// Healthy-path comparison: throughput without any crash, to show the
/// blocking cost exists even when nobody fails (serialization delay).
void BM_HealthyThroughputUstorVsLockstep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double ustor_ops = 0, lockstep_ops = 0;
  for (auto _ : state) {
    {
      ClusterConfig cfg;
      cfg.n = n;
      cfg.seed = 29;
      cfg.delay = net::DelayModel{5, 5};
      cfg.faust.dummy_read_period = 0;
      cfg.faust.probe_check_period = 0;
      Cluster cl(cfg);
      std::uint64_t completed = 0;
      std::vector<std::function<void()>> pump(static_cast<std::size_t>(n) + 1);
      for (ClientId i = 1; i <= n; ++i) {
        pump[static_cast<std::size_t>(i)] = [&, i] {
          cl.client(i).write(to_bytes("w"), [&, i](Timestamp) {
            ++completed;
            if (cl.sched().now() < kBudget) pump[static_cast<std::size_t>(i)]();
          });
        };
        pump[static_cast<std::size_t>(i)]();
      }
      cl.sched().run_until(kBudget);
      ustor_ops = static_cast<double>(completed);
    }
    {
      sim::Scheduler sched;
      net::Network net(sched, Rng(29), net::DelayModel{5, 5});
      auto sigs = crypto::make_hmac_scheme(n);
      baseline::LockStepServer server(n, net);
      std::vector<std::unique_ptr<baseline::LockStepClient>> clients;
      for (ClientId i = 1; i <= n; ++i) {
        clients.push_back(std::make_unique<baseline::LockStepClient>(i, n, sigs, net));
      }
      std::uint64_t completed = 0;
      std::vector<std::function<void()>> pump(static_cast<std::size_t>(n) + 1);
      for (ClientId i = 1; i <= n; ++i) {
        auto& client = *clients[static_cast<std::size_t>(i - 1)];
        pump[static_cast<std::size_t>(i)] = [&, i] {
          client.write(to_bytes("w"), [&, i] {
            ++completed;
            if (sched.now() < kBudget) pump[static_cast<std::size_t>(i)]();
          });
        };
        pump[static_cast<std::size_t>(i)]();
      }
      sched.run_until(kBudget);
      lockstep_ops = static_cast<double>(completed);
    }
  }
  state.counters["ustor_ops"] = ustor_ops;
  state.counters["lockstep_ops"] = lockstep_ops;
  state.counters["ustor_speedup"] = lockstep_ops > 0 ? ustor_ops / lockstep_ops : 0;
}
BENCHMARK(BM_HealthyThroughputUstorVsLockstep)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
