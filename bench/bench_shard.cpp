// Scale-out economics of the sharded KV layer (src/shard).
//
// A fixed total workload — kTotalKeys keys written by n clients — is
// served by S co-scheduled FAUST deployments, S ∈ {1, 2, 4}. Every
// per-operation cost that grows with the keyspace shrinks by the shard
// factor, because a client's register in each shard carries only the keys
// homed there: a put encodes + hashes a partition of ~K/(S·n) entries
// instead of ~K/n, and a get decodes n such partitions of the home shard
// only. The fixed per-op protocol cost (O(n) signatures, one RTT) is
// untouched, so aggregate put/get throughput scales near-linearly in S
// until the fixed cost dominates — the BENCH_shard.json artifacts record
// the measured S=4 vs S=1 ratio (≥ 2.5× on the reference machine, see
// PERF.md "Sharding").
//
// BM_KvPutUnsharded / BM_KvGetUnsharded run the identical workload on the
// single-deployment backend (one Cluster behind the same api::Store
// facade) as the baseline: S=1 sharded vs unsharded isolates the
// router/facade overhead (~noise). Everything here drives the unified
// api::Store surface; the legacy clients are the engines underneath.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/store.h"
#include "faust/cluster.h"
#include "shard/shard_router.h"
#include "shard/sharded_cluster.h"

namespace {

using namespace faust;

constexpr int kWriters = 3;          // clients per deployment (and per shard)
constexpr int kTotalKeys = 3072;     // fixed total workload, spread over shards
constexpr std::size_t kValueLen = 96;

std::string key_name(int k) { return "key-" + std::to_string(k); }

std::string value_for(int k, int round) {
  std::string v = "v" + std::to_string(round) + "-" + std::to_string(k) + "-";
  v.resize(kValueLen, 'x');
  return v;
}

struct ShardRig {
  explicit ShardRig(std::size_t shards) {
    shard::ShardedClusterConfig cfg;
    cfg.shards = shards;
    cfg.seed = 4242;
    cfg.shard_template.n = kWriters;
    cfg.shard_template.delay = net::DelayModel{5, 5};
    cfg.shard_template.faust.dummy_read_period = 0;
    cfg.shard_template.faust.probe_check_period = 0;
    cluster = std::make_unique<shard::ShardedCluster>(cfg);
    for (ClientId i = 1; i <= kWriters; ++i) {
      kv.push_back(api::open_store(*cluster, i));
    }
    for (int k = 0; k < kTotalKeys; ++k) {
      put(k, /*round=*/0);
    }
  }

  void put(int k, int round) {
    kv[static_cast<std::size_t>(k % kWriters)]->put(key_name(k), value_for(k, round)).settle();
  }

  void get(int k) {
    benchmark::DoNotOptimize(kv[static_cast<std::size_t>(k % kWriters)]->get(key_name(k)).settle());
  }

  std::unique_ptr<shard::ShardedCluster> cluster;
  std::vector<std::unique_ptr<api::Store>> kv;
};

/// Rigs are expensive to prepopulate (kTotalKeys puts), so they are built
/// once per shard count and shared by the put/get benchmarks — the
/// workload only overwrites values, never changes shapes.
ShardRig& rig_for(std::size_t shards) {
  static std::map<std::size_t, std::unique_ptr<ShardRig>> rigs;
  auto& slot = rigs[shards];
  if (!slot) slot = std::make_unique<ShardRig>(shards);
  return *slot;
}

void BM_ShardedKvPut(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  ShardRig& rig = rig_for(shards);
  int k = 0, round = 1;
  for (auto _ : state) {
    rig.put(k, round);
    if (++k == kTotalKeys) {
      k = 0;
      ++round;
    }
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["total_keys"] = kTotalKeys;
  state.counters["puts_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedKvPut)->Arg(1)->Arg(2)->Arg(4)->MinTime(0.2);

void BM_ShardedKvGet(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  ShardRig& rig = rig_for(shards);
  int k = 0;
  for (auto _ : state) {
    rig.get(k);
    if (++k == kTotalKeys) k = 0;
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["total_keys"] = kTotalKeys;
  state.counters["gets_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedKvGet)->Arg(1)->Arg(2)->Arg(4)->MinTime(0.2);

// --- Pre-sharding baseline: identical workload, one deployment ------------

struct UnshardedRig {
  UnshardedRig() {
    ClusterConfig cfg;
    cfg.n = kWriters;
    cfg.seed = 4242;
    cfg.delay = net::DelayModel{5, 5};
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    cluster = std::make_unique<Cluster>(cfg);
    for (ClientId i = 1; i <= kWriters; ++i) {
      kv.push_back(api::open_store(*cluster, i));
    }
    for (int k = 0; k < kTotalKeys; ++k) put(k, 0);
  }

  void put(int k, int round) {
    kv[static_cast<std::size_t>(k % kWriters)]->put(key_name(k), value_for(k, round)).settle();
  }

  void get(int k) {
    benchmark::DoNotOptimize(kv[static_cast<std::size_t>(k % kWriters)]->get(key_name(k)).settle());
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<api::Store>> kv;
};

UnshardedRig& unsharded_rig() {
  static UnshardedRig rig;
  return rig;
}

void BM_KvPutUnsharded(benchmark::State& state) {
  UnshardedRig& rig = unsharded_rig();
  int k = 0, round = 1;
  for (auto _ : state) {
    rig.put(k, round);
    if (++k == kTotalKeys) {
      k = 0;
      ++round;
    }
  }
  state.counters["puts_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KvPutUnsharded)->MinTime(0.2);

void BM_KvGetUnsharded(benchmark::State& state) {
  UnshardedRig& rig = unsharded_rig();
  int k = 0;
  for (auto _ : state) {
    rig.get(k);
    if (++k == kTotalKeys) k = 0;
  }
  state.counters["gets_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KvGetUnsharded)->MinTime(0.2);

// --- Routing itself is noise ----------------------------------------------

void BM_ShardRouterRoute(benchmark::State& state) {
  const shard::ShardRouter router(static_cast<std::size_t>(state.range(0)), 4242);
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.shard_of(key_name(k)));
    if (++k == kTotalKeys) k = 0;
  }
  state.counters["routes_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardRouterRoute)->Arg(4)->Arg(64)->MinTime(0.1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
