// Application-layer costs: the key-value store built over FAUST
// registers, driven through the unified api::Store facade. put = 1
// register write; get/list = n register reads — the design inherits
// USTOR's O(n)-bytes/op and 1-RTT/op economics, so a get costs ~n RTTs.
// Reported per n and per partition size.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "api/store.h"
#include "faust/cluster.h"

namespace {

using namespace faust;

struct KvRig {
  explicit KvRig(int n) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.seed = 99;
    cfg.delay = net::DelayModel{5, 5};
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    cluster = std::make_unique<Cluster>(cfg);
    for (ClientId i = 1; i <= n; ++i) {
      stores.push_back(api::open_store(*cluster, i));
    }
  }

  void put(ClientId i, const std::string& k, const std::string& v) {
    stores[static_cast<std::size_t>(i - 1)]->put(k, v).settle();
  }

  api::GetResult get(ClientId i, const std::string& k) {
    return stores[static_cast<std::size_t>(i - 1)]->get(k).settle();
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<api::Store>> stores;
};

void BM_KvPut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  KvRig rig(n);
  int k = 0;
  for (auto _ : state) {
    rig.put((k % n) + 1, "key" + std::to_string(k % 50), "value-" + std::to_string(k));
    ++k;
  }
  state.counters["puts_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KvPut)->Arg(2)->Arg(4)->Arg(8)->MinTime(0.1);

void BM_KvGet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  KvRig rig(n);
  for (int k = 0; k < 20; ++k) {
    rig.put((k % n) + 1, "key" + std::to_string(k), "value-" + std::to_string(k));
  }
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.get((k % n) + 1, "key" + std::to_string(k % 20)));
    ++k;
  }
  // A get issues n register reads: cost grows with the client count.
  state.counters["gets_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["register_reads_per_get"] = n;
}
BENCHMARK(BM_KvGet)->Arg(2)->Arg(4)->Arg(8)->MinTime(0.1);

void BM_KvPartitionSizeScaling(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  KvRig rig(2);
  for (int k = 0; k < keys; ++k) {
    rig.put(1, "key" + std::to_string(k), "value-" + std::to_string(k));
  }
  int k = 0;
  for (auto _ : state) {
    // Each put republishes the whole partition: cost scales with its size.
    rig.put(1, "key" + std::to_string(k % keys), "updated");
    ++k;
  }
  state.counters["partition_keys"] = keys;
  state.counters["puts_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KvPartitionSizeScaling)->Arg(8)->Arg(64)->Arg(256)->MinTime(0.1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
