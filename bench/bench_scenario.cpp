// Crash recovery & tail latency under the seeded scenario harness
// (src/scenario, DESIGN.md D7).
//
// Two deployments of the SAME seeded Zipf workload over S=3 durable
// shards:
//
//   BM_ScenarioCrashFree — no failures: the baseline op-latency
//     distribution (p50/p99/max, µs of wall clock per completed op) with
//     WAL + snapshot cadence running. This is the durability tax on the
//     happy path.
//   BM_ScenarioKillRestart — the same stream with two mid-run
//     kill/restart events: whole-shard process death, downtime, recovery
//     from verified snapshot + log suffix, client reconnect/resume. The
//     counters add recovery_ms (pure restart-to-serving time, excluded
//     ops none) and restarts_from_snapshot; p99/max absorb the ops that
//     rode through an outage.
//
// The differential oracle (scenario_test) proves the two runs converge to
// byte-identical merged views; this bench records what the crashes COST.
// BENCH_scenario.pre.json holds the crash-free run, .post.json the
// kill/restart run — the pre/post pair measures failure overhead rather
// than a code-change delta, which is the comparison this harness exists
// to pin over time. FAUST_BENCH_SMOKE=1 shrinks the stream for CI.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "scenario/runner.h"

namespace {

using namespace faust;

std::uint64_t scenario_ops() {
  if (const char* smoke = std::getenv("FAUST_BENCH_SMOKE"); smoke && smoke[0] == '1') {
    return 120;
  }
  return 600;
}

scenario::ScenarioConfig base_config(const std::string& dir) {
  scenario::ScenarioConfig cfg;
  cfg.workload.seed = 2026;
  cfg.workload.n_keys = 100'000;
  cfg.workload.n_ops = scenario_ops();
  cfg.workload.n_writers = 2;
  cfg.shards = 3;
  cfg.cluster_seed = 11;
  cfg.snapshot_every = 16;
  cfg.dir = dir;
  return cfg;
}

std::string fresh_dir(const std::string& tag, int iteration) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("faust_bench_scn_" + tag + "_" + std::to_string(iteration)))
                              .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void report(benchmark::State& state, const scenario::ScenarioResult& r) {
  state.counters["ops"] = static_cast<double>(r.ops);
  state.counters["p50_us"] = r.p50_us;
  state.counters["p99_us"] = r.p99_us;
  state.counters["max_us"] = r.max_us;
  state.counters["restarts"] = static_cast<double>(r.restarts);
  state.counters["restarts_from_snapshot"] = static_cast<double>(r.restarts_from_snapshot);
  state.counters["recovery_ms"] = r.recovery_ms_total;
  state.counters["snapshots_written"] = static_cast<double>(r.snapshots_written);
  state.counters["wal_records"] = static_cast<double>(r.wal_records);
  state.counters["complete"] = r.complete && !r.any_failed ? 1.0 : 0.0;
}

void BM_ScenarioCrashFree(benchmark::State& state) {
  int iteration = 0;
  scenario::ScenarioResult last;
  for (auto _ : state) {
    const std::string dir = fresh_dir("free", iteration++);
    scenario::ScenarioConfig cfg = base_config(dir);
    last = scenario::run_scenario(cfg);
    benchmark::DoNotOptimize(last.merged_digest);
    std::filesystem::remove_all(dir);
  }
  report(state, last);
}
BENCHMARK(BM_ScenarioCrashFree)->Unit(benchmark::kMillisecond)->MinTime(0.05);

void BM_ScenarioKillRestart(benchmark::State& state) {
  int iteration = 0;
  scenario::ScenarioResult last;
  for (auto _ : state) {
    const std::string dir = fresh_dir("kill", iteration++);
    scenario::ScenarioConfig cfg = base_config(dir);
    const std::uint64_t n = cfg.workload.n_ops;
    cfg.kills = {scenario::KillEvent{n / 3, 0, 4'000},
                 scenario::KillEvent{(2 * n) / 3, 2, 4'000}};
    last = scenario::run_scenario(cfg);
    benchmark::DoNotOptimize(last.merged_digest);
    std::filesystem::remove_all(dir);
  }
  report(state, last);
}
BENCHMARK(BM_ScenarioKillRestart)->Unit(benchmark::kMillisecond)->MinTime(0.05);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
