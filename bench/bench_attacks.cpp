// C5 (DESIGN.md): failure-detection accuracy and completeness (Def. 5
// items 5 + 7) as an attack campaign.
//
// Rows: every attack class implemented in src/adversary, over several
// seeds. Reported: detection rate (must be 1.0 for every attack that
// violates consistency) and the false-positive rate of a correct-server
// control group (must be 0.0).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "adversary/forking_server.h"
#include "adversary/misc_servers.h"
#include "adversary/tamper_server.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "faust/cluster.h"
#include "ustor/client.h"

namespace {

using namespace faust;

/// Control group: correct server, busy workload, many seeds. Counts any
/// fail_i as a false positive.
void BM_FalsePositiveRateCorrectServer(benchmark::State& state) {
  double false_positives = 0, runs = 0;
  for (auto _ : state) {
    false_positives = 0;
    runs = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      ClusterConfig cfg;
      cfg.n = 3;
      cfg.seed = seed;
      cfg.faust.dummy_read_period = 300;
      cfg.faust.probe_interval = 2'000;
      cfg.faust.probe_check_period = 500;
      Cluster cl(cfg);
      for (int k = 0; k < 10; ++k) {
        cl.write((k % 3) + 1, "w" + std::to_string(seed) + "-" + std::to_string(k));
        cl.read(((k + 1) % 3) + 1, (k % 3) + 1);
      }
      cl.run_for(60'000);
      ++runs;
      if (cl.any_failed()) ++false_positives;
    }
  }
  state.counters["runs"] = runs;
  state.counters["false_positive_rate"] = false_positives / runs;  // must be 0
}
BENCHMARK(BM_FalsePositiveRateCorrectServer)->Iterations(1);

/// Forking attacks (split / isolate / partition) across seeds: detection
/// rate at the FAUST layer.
void BM_ForkDetectionRate(benchmark::State& state) {
  double detected = 0, runs = 0;
  for (auto _ : state) {
    detected = 0;
    runs = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      ClusterConfig cfg;
      cfg.n = 3;
      cfg.seed = seed;
      cfg.with_server = false;
      cfg.faust.dummy_read_period = 400;
      cfg.faust.probe_interval = 3'000;
      cfg.faust.probe_check_period = 700;
      Cluster cl(cfg);
      adversary::ForkingServer server(cfg.n, cl.net());
      cl.write(1, "pre" + std::to_string(seed));
      cl.read(2, 1);
      const ClientId victim = static_cast<ClientId>(seed % 3) + 1;
      if (seed % 2 == 0) {
        server.split(victim);
      } else {
        server.isolate(victim);
      }
      cl.write(victim, "victim" + std::to_string(seed));
      cl.write(victim == 1 ? 2 : 1, "main" + std::to_string(seed));
      cl.run_for(400'000);
      ++runs;
      if (cl.all_failed()) ++detected;
    }
  }
  state.counters["runs"] = runs;
  state.counters["detection_rate"] = detected / runs;  // must be 1
}
BENCHMARK(BM_ForkDetectionRate)->Iterations(1);

/// Tampering attacks at the USTOR layer: every corruption class must be
/// caught by the victim immediately.
void BM_TamperDetectionRate(benchmark::State& state) {
  using adversary::Tamper;
  const Tamper kModes[] = {
      Tamper::kValue,        Tamper::kValueFreshSig, Tamper::kStaleTimestamp,
      Tamper::kVersionVector, Tamper::kCommitSig,    Tamper::kWriterCommitSig,
      Tamper::kDataSig,      Tamper::kProofSig,      Tamper::kSubmitSigInL,
      Tamper::kEchoSelfInL,  Tamper::kDuplicateInL,   Tamper::kWrongCommitter, Tamper::kGarbage,
      Tamper::kDropReadPayload,
  };
  double detected = 0, runs = 0;
  for (auto _ : state) {
    detected = 0;
    runs = 0;
    for (const Tamper mode : kModes) {
      sim::Scheduler sched;
      net::Network net(sched, Rng(7), net::DelayModel{5, 5});
      auto sigs = crypto::make_hmac_scheme(3);
      adversary::TamperServer server(3, net, mode, /*victim=*/2, /*fire_on_op=*/2);
      std::vector<std::unique_ptr<ustor::Client>> clients;
      for (ClientId i = 1; i <= 3; ++i) {
        clients.push_back(std::make_unique<ustor::Client>(i, 3, sigs, net));
      }
      auto drive = [&](ustor::Client& c, auto invoke) {
        bool done = false;
        invoke(c, done);
        while (!done && !c.failed() && sched.step()) {
        }
      };
      drive(*clients[0], [](ustor::Client& c, bool& done) {
        c.writex(to_bytes("a"), [&done](const ustor::WriteResult&) { done = true; });
      });
      drive(*clients[0], [](ustor::Client& c, bool& done) {
        c.writex(to_bytes("b"), [&done](const ustor::WriteResult&) { done = true; });
      });
      drive(*clients[1], [](ustor::Client& c, bool& done) {
        c.writex(to_bytes("v"), [&done](const ustor::WriteResult&) { done = true; });
      });
      clients[0]->writex(to_bytes("c"), [](const ustor::WriteResult&) {});
      clients[1]->readx(1, [](const ustor::ReadResult&) {});
      sched.run();
      ++runs;
      if (clients[1]->failed()) ++detected;
    }
  }
  state.counters["attack_classes"] = runs;
  state.counters["detection_rate"] = detected / runs;  // must be 1
}
BENCHMARK(BM_TamperDetectionRate)->Iterations(1);

/// Commit omission: detected by the committing client itself.
void BM_CommitOmissionDetection(benchmark::State& state) {
  double detected = 0;
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched, Rng(3), net::DelayModel{2, 4});
    auto sigs = crypto::make_hmac_scheme(2);
    adversary::CommitDroppingServer server(2, net);
    ustor::Client c1(1, 2, sigs, net);
    c1.writex(to_bytes("a"), [](const ustor::WriteResult&) {});
    sched.run();
    c1.writex(to_bytes("b"), [](const ustor::WriteResult&) {});
    sched.run();
    detected = c1.failed() ? 1 : 0;
  }
  state.counters["detected"] = detected;
}
BENCHMARK(BM_CommitOmissionDetection)->Iterations(1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
