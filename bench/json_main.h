// Shared main() for every bench_*.cpp: in addition to the console table,
// each run writes machine-readable results to BENCH_<name>.json in the
// working directory (Google Benchmark's JSON schema: per-benchmark name,
// iterations, real_time/cpu_time in ns, and all user counters such as
// ops_per_sec), so the perf trajectory of the project is recorded run
// over run. Passing an explicit --benchmark_out=... overrides the
// default. Set FAUST_BENCH_SMOKE=1 to run each benchmark for a minimal
// interval (CI smoke mode).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace faust::benchmain {

inline int run(int argc, char** argv) {
  // Derive <name> from argv[0]: ".../bench_crypto" → "BENCH_crypto.json".
  std::string base = argc > 0 ? argv[0] : "bench";
  if (const std::size_t slash = base.find_last_of('/'); slash != std::string::npos) {
    base = base.substr(slash + 1);
  }
  constexpr const char kPrefix[] = "bench_";
  if (base.rfind(kPrefix, 0) == 0) base = base.substr(sizeof(kPrefix) - 1);

  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exact flag prefix: "--benchmark_out_format" alone must not suppress
    // the default output file.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }

  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_" + base + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  std::string smoke_flag = "--benchmark_min_time=0.001";
  if (const char* smoke = std::getenv("FAUST_BENCH_SMOKE"); smoke && smoke[0] == '1') {
    args.push_back(smoke_flag.data());
  }

  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace faust::benchmain

#define FAUST_BENCH_MAIN()                                            \
  int main(int argc, char** argv) { return faust::benchmain::run(argc, argv); }
