// C7 (DESIGN.md): end-to-end throughput of the three systems — USTOR
// (weak fork-linearizable, wait-free), the lock-step fork-linearizable
// baseline, and unprotected storage — across client counts and read/write
// mixes. The shape to reproduce: USTOR tracks the unprotected baseline
// (constant rounds, O(n) bytes), while lock-step degrades with contention.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <vector>

#include "baseline/lockstep.h"
#include "baseline/naive.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "faust/cluster.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace {

using namespace faust;

constexpr sim::Time kBudget = 30'000;

struct Result {
  double ops = 0;
  double msgs = 0;
  double bytes = 0;
};

/// Generic closed-loop pump: each client re-issues immediately; stops at
/// the virtual-time budget. `issue(i, k, done)` runs op k at client i.
template <typename IssueFn>
Result pump_workload(sim::Scheduler& sched, net::Network& net, int n, IssueFn issue) {
  std::uint64_t completed = 0;
  std::vector<std::function<void()>> next(static_cast<std::size_t>(n) + 1);
  for (ClientId i = 1; i <= n; ++i) {
    next[static_cast<std::size_t>(i)] = [&, i] {
      issue(i, [&, i] {
        ++completed;
        if (sched.now() < kBudget) next[static_cast<std::size_t>(i)]();
      });
    };
    next[static_cast<std::size_t>(i)]();
  }
  sched.run_until(kBudget);
  Result r;
  r.ops = static_cast<double>(completed);
  r.msgs = static_cast<double>(net.total().messages);
  r.bytes = static_cast<double>(net.total().bytes);
  return r;
}

void BM_UstorThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int read_pct = static_cast<int>(state.range(1));
  Result res;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.seed = 71;
    cfg.delay = net::DelayModel{5, 15};
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_check_period = 0;
    Cluster cl(cfg);
    Rng rng(n * 1000 + read_pct);
    res = pump_workload(cl.sched(), cl.net(), n, [&](ClientId i, auto done) {
      if (rng.next_below(100) < static_cast<std::uint64_t>(read_pct)) {
        const ClientId j = 1 + static_cast<ClientId>(rng.next_below(n));
        cl.client(i).read(j, [done](const ustor::Value&, Timestamp) { done(); });
      } else {
        cl.client(i).write(to_bytes("w"), [done](Timestamp) { done(); });
      }
    });
  }
  state.counters["ops_completed"] = res.ops;
  state.counters["msgs_per_op"] = res.msgs / res.ops;
  state.counters["bytes_per_op"] = res.bytes / res.ops;
}
BENCHMARK(BM_UstorThroughput)
    ->Args({2, 50})->Args({4, 50})->Args({8, 50})->Args({16, 50})
    ->Args({8, 0})->Args({8, 100})
    ->Iterations(1);

void BM_LockStepThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int read_pct = static_cast<int>(state.range(1));
  Result res;
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched, Rng(71), net::DelayModel{5, 15});
    auto sigs = crypto::make_hmac_scheme(n);
    baseline::LockStepServer server(n, net);
    std::vector<std::unique_ptr<baseline::LockStepClient>> clients;
    for (ClientId i = 1; i <= n; ++i) {
      clients.push_back(std::make_unique<baseline::LockStepClient>(i, n, sigs, net));
    }
    Rng rng(n * 1000 + read_pct);
    res = pump_workload(sched, net, n, [&](ClientId i, auto done) {
      auto& c = *clients[static_cast<std::size_t>(i - 1)];
      if (rng.next_below(100) < static_cast<std::uint64_t>(read_pct)) {
        const ClientId j = 1 + static_cast<ClientId>(rng.next_below(n));
        c.read(j, [done](const ustor::Value&) { done(); });
      } else {
        c.write(to_bytes("w"), [done] { done(); });
      }
    });
  }
  state.counters["ops_completed"] = res.ops;
  state.counters["msgs_per_op"] = res.msgs / res.ops;
  state.counters["bytes_per_op"] = res.bytes / res.ops;
}
BENCHMARK(BM_LockStepThroughput)
    ->Args({2, 50})->Args({4, 50})->Args({8, 50})->Args({16, 50})
    ->Iterations(1);

void BM_NaiveThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Result res;
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched, Rng(71), net::DelayModel{5, 15});
    baseline::NaiveServer server(n, net);
    std::vector<std::unique_ptr<baseline::NaiveClient>> clients;
    for (ClientId i = 1; i <= n; ++i) {
      clients.push_back(std::make_unique<baseline::NaiveClient>(i, n, net));
    }
    Rng rng(n * 1000);
    res = pump_workload(sched, net, n, [&](ClientId i, auto done) {
      auto& c = *clients[static_cast<std::size_t>(i - 1)];
      if (rng.chance(0.5)) {
        const ClientId j = 1 + static_cast<ClientId>(rng.next_below(n));
        c.read(j, [done](const ustor::Value&) { done(); });
      } else {
        c.write(to_bytes("w"), [done] { done(); });
      }
    });
  }
  state.counters["ops_completed"] = res.ops;
  state.counters["msgs_per_op"] = res.msgs / res.ops;
  state.counters["bytes_per_op"] = res.bytes / res.ops;
}
BENCHMARK(BM_NaiveThroughput)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
