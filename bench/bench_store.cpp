// Single-op issue vs batched apply() through the api::Store facade, at
// S=1 and S=4 deterministic shards.
//
// The batch surface is where the facade pays for itself: apply() routes
// a batch to its home shards, preserves per-shard program order, and
// coalesces adjacent mutations into ONE signed publication per shard
// (and adjacent reads into ONE merged snapshot per shard). A batch of B
// puts therefore costs S publications instead of B — every per-op cost
// that the sharding work shrank by the shard factor (partition codec,
// value hashing, wire bytes, RTTs) is amortized again by the batch
// factor, and the verified-signature caches see one new signed version
// per shard instead of B. Single-op issue through the same facade is the
// baseline; the BENCH_store.json artifact records the ratio (the
// acceptance bar is >= 1.1x batched-over-single put throughput at S=4;
// measured is far above).
//
// Deterministic mode on purpose: the comparison is about protocol work
// per op, not thread parallelism (bench_shard_mt covers that axis), so
// the numbers are reproducible on any host.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/store.h"
#include "shard/sharded_cluster.h"

namespace {

using namespace faust;

constexpr int kWriters = 3;       // clients per deployment (and per shard)
constexpr int kTotalKeys = 3072;  // fixed total workload, as in BENCH_shard
constexpr std::size_t kValueLen = 96;
constexpr int kBatch = 256;       // ops per batched apply()

std::string key_name(int k) { return "key-" + std::to_string(k); }

std::string value_for(int k, int round) {
  std::string v = "v" + std::to_string(round) + "-" + std::to_string(k) + "-";
  v.resize(kValueLen, 'x');
  return v;
}

struct StoreRig {
  explicit StoreRig(std::size_t shards) {
    shard::ShardedClusterConfig cfg;
    cfg.shards = shards;
    cfg.seed = 4242;
    cfg.shard_template.n = kWriters;
    cfg.shard_template.delay = net::DelayModel{5, 5};
    cfg.shard_template.faust.dummy_read_period = 0;
    cfg.shard_template.faust.probe_check_period = 0;
    cluster = std::make_unique<shard::ShardedCluster>(cfg);
    for (ClientId i = 1; i <= kWriters; ++i) {
      kv.push_back(api::open_store(*cluster, i));
    }
    // Prepopulate batched (it is exactly the fast path this bench pins).
    for (ClientId i = 1; i <= kWriters; ++i) {
      std::vector<api::Op> ops;
      for (int k = i - 1; k < kTotalKeys; k += kWriters) {
        ops.push_back(api::Op::put(key_name(k), value_for(k, 0)));
      }
      store(i).apply(std::move(ops)).settle();
    }
  }

  api::Store& store(ClientId i) { return *kv[static_cast<std::size_t>(i - 1)]; }

  std::unique_ptr<shard::ShardedCluster> cluster;
  std::vector<std::unique_ptr<api::Store>> kv;
};

/// Rigs are expensive to prepopulate; one per shard count, shared by all
/// benchmarks — the workload only overwrites values, never changes shapes.
StoreRig& rig_for(std::size_t shards) {
  static std::map<std::size_t, std::unique_ptr<StoreRig>> rigs;
  auto& slot = rigs[shards];
  if (!slot) slot = std::make_unique<StoreRig>(shards);
  return *slot;
}

void BM_StorePutSingleOp(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  StoreRig& rig = rig_for(shards);
  int k = 0, round = 1;
  for (auto _ : state) {
    rig.store((k % kWriters) + 1).put(key_name(k), value_for(k, round)).settle();
    if (++k == kTotalKeys) {
      k = 0;
      ++round;
    }
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = 1;
  state.counters["puts_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StorePutSingleOp)->Arg(1)->Arg(4)->MinTime(0.2);

void BM_StorePutBatched(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  StoreRig& rig = rig_for(shards);
  int k = 0, round = 1;
  for (auto _ : state) {
    // One apply() of kBatch puts per writer in rotation, as in the
    // single-op loop — identical keys and values, one coalesced batch.
    const ClientId writer = static_cast<ClientId>((k / kBatch) % kWriters + 1);
    std::vector<api::Op> ops;
    ops.reserve(kBatch);
    for (int j = 0; j < kBatch; ++j) {
      const int key = (k + j) % kTotalKeys;
      ops.push_back(api::Op::put(key_name(key), value_for(key, round)));
    }
    rig.store(writer).apply(std::move(ops)).settle();
    k += kBatch;
    if (k >= kTotalKeys) {
      k = 0;
      ++round;
    }
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = kBatch;
  state.counters["puts_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StorePutBatched)->Arg(1)->Arg(4)->MinTime(0.2);

void BM_StoreGetSingleOp(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  StoreRig& rig = rig_for(shards);
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.store((k % kWriters) + 1).get(key_name(k)).settle());
    if (++k == kTotalKeys) k = 0;
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = 1;
  state.counters["gets_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreGetSingleOp)->Arg(1)->Arg(4)->MinTime(0.2);

void BM_StoreGetBatched(benchmark::State& state) {
  // Adjacent gets share one merged snapshot per shard: a batch of B gets
  // costs S snapshots (S*n register reads) instead of B*n reads.
  const auto shards = static_cast<std::size_t>(state.range(0));
  StoreRig& rig = rig_for(shards);
  int k = 0;
  for (auto _ : state) {
    const ClientId reader = static_cast<ClientId>((k / kBatch) % kWriters + 1);
    std::vector<api::Op> ops;
    ops.reserve(kBatch);
    for (int j = 0; j < kBatch; ++j) ops.push_back(api::Op::get(key_name((k + j) % kTotalKeys)));
    benchmark::DoNotOptimize(rig.store(reader).apply(std::move(ops)).settle());
    k = (k + kBatch) % kTotalKeys;
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = kBatch;
  state.counters["gets_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreGetBatched)->Arg(1)->Arg(4)->MinTime(0.2);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
