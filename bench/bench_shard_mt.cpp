// Wall-clock scaling of the threaded shard execution mode
// (ShardedCluster ExecMode::kThreaded) against the single-threaded
// co-scheduled mode, on an identical pipelined workload.
//
// BENCH_shard measures the *per-op* savings of sharding (smaller
// partitions); this bench measures whether S shards turn those savings
// into *aggregate* wall-clock throughput by running on S runtime threads.
// The workload is pipelined — a batch of puts (or gets) is issued across
// all clients and shards before waiting for the batch to drain — because
// thread-level parallelism is only reachable when more than one shard has
// work in flight; a strictly sequential driver would measure latency, not
// throughput.
//
// Both modes run the exact same batches through the same api::Store
// facade (and the ShardedKvClient engine under it); the only difference
// is the executor behind the seam (sim::Scheduler vs one
// rt::ThreadedRuntime per shard). The JSON
// artifact records hw_cores: on a multi-core host the threaded S=4
// configuration is expected to approach min(S, cores)× the deterministic
// S=4 throughput; on a single-core host it can only show the overhead of
// the threaded substrate (see PERF.md "Threaded shards").
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/store.h"
#include "shard/sharded_cluster.h"

namespace {

using namespace faust;

constexpr int kWriters = 3;          // clients per deployment (and per shard)
constexpr int kTotalKeys = 3072;     // fixed total workload, as in BENCH_shard
constexpr std::size_t kValueLen = 96;
constexpr int kBatch = 512;          // ops in flight per measured batch

std::string key_name(int k) { return "key-" + std::to_string(k); }

std::string value_for(int k, int round) {
  std::string v = "v" + std::to_string(round) + "-" + std::to_string(k) + "-";
  v.resize(kValueLen, 'x');
  return v;
}

struct MtRig {
  MtRig(std::size_t shards, bool threaded) {
    shard::ShardedClusterConfig cfg;
    cfg.shards = shards;
    cfg.seed = 4242;
    cfg.mode = threaded ? shard::ExecMode::kThreaded : shard::ExecMode::kDeterministic;
    cfg.shard_template.n = kWriters;
    cfg.shard_template.delay = net::DelayModel{5, 5};
    cfg.shard_template.faust.dummy_read_period = 0;
    cfg.shard_template.faust.probe_check_period = 0;
    cluster = std::make_unique<shard::ShardedCluster>(cfg);
    for (ClientId i = 1; i <= kWriters; ++i) {
      kv.push_back(api::open_store(*cluster, i));
    }
    // Pre-populate pipelined, in key chunks so no FaustClient queue grows
    // unboundedly.
    for (int base = 0; base < kTotalKeys; base += kBatch) {
      const int count = std::min(kBatch, kTotalKeys - base);
      run_batch(count, [&](int i) {
        const int k = base + i;
        kv[static_cast<std::size_t>(k % kWriters)]->put(
            key_name(k), value_for(k, 0), [this](const api::PutResult&) { op_done(); });
      });
    }
  }

  ~MtRig() {
    cluster->stop();  // freeze shard threads before the stores unwind
    kv.clear();
  }

  /// Issues `count` ops via `issue(i)` (each must arrange op_done() on
  /// completion), then drains the batch in whichever way the mode needs.
  template <typename Issue>
  void run_batch(int count, Issue issue) {
    completed_.store(0, std::memory_order_relaxed);
    target_ = count;
    batch_done_.store(false, std::memory_order_relaxed);
    for (int i = 0; i < count; ++i) issue(i);
    cluster->await(batch_done_, std::chrono::seconds(120));
  }

  void op_done() {
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == target_) {
      batch_done_.store(true, std::memory_order_release);
    }
  }

  std::unique_ptr<shard::ShardedCluster> cluster;
  std::vector<std::unique_ptr<api::Store>> kv;
  std::atomic<int> completed_{0};
  int target_ = 0;
  std::atomic<bool> batch_done_{false};
};

/// Rigs are expensive to prepopulate; one per (mode, shard count), shared
/// by the put/get benchmarks — the workload only overwrites values.
MtRig& rig_for(std::size_t shards, bool threaded) {
  static std::map<std::pair<std::size_t, bool>, std::unique_ptr<MtRig>> rigs;
  auto& slot = rigs[{shards, threaded}];
  if (!slot) slot = std::make_unique<MtRig>(shards, threaded);
  return *slot;
}

void set_counters(benchmark::State& state, std::size_t shards, const char* rate_name) {
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["total_keys"] = kTotalKeys;
  state.counters["batch"] = kBatch;
  state.counters["hw_cores"] = static_cast<double>(std::thread::hardware_concurrency());
  state.counters[rate_name] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch, benchmark::Counter::kIsRate);
}

void BM_MtShardedPut(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const bool threaded = state.range(1) != 0;
  MtRig& rig = rig_for(shards, threaded);
  int k = 0, round = 1;
  for (auto _ : state) {
    const int base = k;
    const int r = round;
    rig.run_batch(kBatch, [&rig, base, r](int i) {
      const int key = (base + i) % kTotalKeys;
      rig.kv[static_cast<std::size_t>(key % kWriters)]->put(
          key_name(key), value_for(key, r), [&rig](const api::PutResult&) { rig.op_done(); });
    });
    k += kBatch;
    if (k >= kTotalKeys) {
      k = 0;
      ++round;
    }
  }
  set_counters(state, shards, "puts_per_sec");
}
BENCHMARK(BM_MtShardedPut)
    ->ArgNames({"shards", "threaded"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->MinTime(0.2)
    ->UseRealTime();

void BM_MtShardedGet(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const bool threaded = state.range(1) != 0;
  MtRig& rig = rig_for(shards, threaded);
  int k = 0;
  for (auto _ : state) {
    const int base = k;
    rig.run_batch(kBatch, [&rig, base](int i) {
      const int key = (base + i) % kTotalKeys;
      rig.kv[static_cast<std::size_t>(key % kWriters)]->get(
          key_name(key), [&rig](const api::GetResult& r) {
            benchmark::DoNotOptimize(r.entry);
            rig.op_done();
          });
    });
    k = (k + kBatch) % kTotalKeys;
  }
  set_counters(state, shards, "gets_per_sec");
}
BENCHMARK(BM_MtShardedGet)
    ->ArgNames({"shards", "threaded"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->MinTime(0.2)
    ->UseRealTime();

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
