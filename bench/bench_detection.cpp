// C4 (DESIGN.md): detection completeness (Def. 5 item 7) — how fast do
// stability and failure detection converge, as a function of the probe
// interval Δ and the offline-channel latency?
//
// Series: (a) time until an operation is stable w.r.t. all clients after
// the server crashes (only probes can finish the job); (b) time until all
// clients output fail_i after a forking attack.
#include <benchmark/benchmark.h>

#include "adversary/forking_server.h"
#include "faust/cluster.h"

namespace {

using namespace faust;

/// Stability latency after a server crash, vs probe interval Δ.
void BM_StabilityLatencyAfterServerCrash(benchmark::State& state) {
  const sim::Time delta = static_cast<sim::Time>(state.range(0));
  double latency = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = 3;
    cfg.seed = 41;
    cfg.faust.dummy_read_period = 0;
    cfg.faust.probe_interval = delta;
    cfg.faust.probe_check_period = delta / 4;
    Cluster cl(cfg);
    const Timestamp t = cl.write(1, "payload");
    cl.read(2, 1);
    cl.read(3, 1);
    cl.run_for(50);
    cl.net().crash(kServerNode);
    const sim::Time crash_at = cl.sched().now();

    // Run until C1 knows its op is stable w.r.t. everyone.
    while (cl.client(1).fully_stable_timestamp() < t &&
           cl.sched().now() < crash_at + 100 * delta) {
      cl.run_for(delta / 4);
    }
    latency = static_cast<double>(cl.sched().now() - crash_at);
  }
  state.counters["delta"] = static_cast<double>(delta);
  state.counters["stability_latency_ticks"] = latency;
  state.counters["latency_over_delta"] = latency / static_cast<double>(delta);
}
BENCHMARK(BM_StabilityLatencyAfterServerCrash)
    ->Arg(1'000)->Arg(2'000)->Arg(4'000)->Arg(8'000)->Arg(16'000)
    ->Iterations(1);

/// Failure-detection latency after a fork, vs probe interval Δ.
void BM_ForkDetectionLatency(benchmark::State& state) {
  const sim::Time delta = static_cast<sim::Time>(state.range(0));
  double latency = 0, detected = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = 3;
    cfg.seed = 43;
    cfg.with_server = false;
    cfg.faust.dummy_read_period = 500;
    cfg.faust.probe_interval = delta;
    cfg.faust.probe_check_period = delta / 4;
    Cluster cl(cfg);
    adversary::ForkingServer server(cfg.n, cl.net());

    cl.write(1, "pre");
    cl.read(2, 1);
    server.split(3);          // the attack
    cl.write(3, "victim");    // divergence on the victim side
    cl.write(1, "main");      // and on the main side
    const sim::Time attack_at = cl.sched().now();

    while (!cl.all_failed() && cl.sched().now() < attack_at + 200 * delta) {
      cl.run_for(delta / 4);
    }
    detected = cl.all_failed() ? 1 : 0;
    latency = static_cast<double>(cl.sched().now() - attack_at);
  }
  state.counters["delta"] = static_cast<double>(delta);
  state.counters["all_clients_failed"] = detected;  // must be 1
  state.counters["detection_latency_ticks"] = latency;
  state.counters["latency_over_delta"] = latency / static_cast<double>(delta);
}
BENCHMARK(BM_ForkDetectionLatency)
    ->Arg(1'000)->Arg(2'000)->Arg(4'000)->Arg(8'000)->Arg(16'000)
    ->Iterations(1);

/// Steady-state stability lag with a healthy server, vs dummy-read period
/// (the knob that trades background traffic for freshness).
void BM_StabilityLagVsDummyReadPeriod(benchmark::State& state) {
  const sim::Time period = static_cast<sim::Time>(state.range(0));
  double lag = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n = 3;
    cfg.seed = 47;
    cfg.faust.dummy_read_period = period;
    cfg.faust.probe_interval = 1'000'000;  // probes out of the picture
    cfg.faust.probe_check_period = 1'000'000;
    Cluster cl(cfg);
    cl.run_for(3 * period);  // warm up the round-robin
    const sim::Time t0 = cl.sched().now();
    const Timestamp t = cl.write(1, "x");
    while (cl.client(1).fully_stable_timestamp() < t && cl.sched().now() < t0 + 100 * period) {
      cl.run_for(period / 2);
    }
    lag = static_cast<double>(cl.sched().now() - t0);
  }
  state.counters["dummy_period"] = static_cast<double>(period);
  state.counters["stability_lag_ticks"] = lag;
}
BENCHMARK(BM_StabilityLagVsDummyReadPeriod)
    ->Arg(200)->Arg(500)->Arg(1'000)->Arg(2'000)->Arg(4'000)
    ->Iterations(1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
