// Substrate performance: the deterministic scheduler, the simulated
// network, the offline mailbox, and the multi-threaded ThreadBus. These
// set the ceiling for every simulation-based number in the other benches
// (DESIGN.md decision D1: determinism is bought with an event queue — how
// expensive is it?).
#include <benchmark/benchmark.h>

#include <atomic>

#include "common/rng.h"
#include "net/mailbox.h"
#include "net/network.h"
#include "rt/thread_bus.h"
#include "sim/scheduler.h"

namespace {

using namespace faust;

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t fired = 0;
    for (int k = 0; k < 10'000; ++k) {
      sched.after(static_cast<sim::Time>(k % 97), [&fired] { ++fired; });
    }
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 10'000), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SchedulerEventThroughput)->MinTime(0.1);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::vector<sim::EventId> ids;
    ids.reserve(10'000);
    for (int k = 0; k < 10'000; ++k) {
      ids.push_back(sched.after(static_cast<sim::Time>(k), [] {}));
    }
    for (std::size_t k = 0; k < ids.size(); k += 2) sched.cancel(ids[k]);  // cancel half
    sched.run();
  }
  state.counters["sched+cancel_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 15'000), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SchedulerCancelHeavy)->MinTime(0.1);

void BM_NetworkMessageThroughput(benchmark::State& state) {
  class Sink : public net::Node {
   public:
    void on_message(NodeId, BytesView) override { ++count; }
    std::uint64_t count = 0;
  };
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Network net(sched, Rng(1), net::DelayModel{1, 10});
    Sink a, b;
    net.attach(1, a);
    net.attach(2, b);
    const Bytes payload(128, 0x7f);
    for (int k = 0; k < 5'000; ++k) net.send(1, 2, payload);
    sched.run();
    benchmark::DoNotOptimize(b.count);
  }
  state.counters["msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 5'000), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetworkMessageThroughput)->MinTime(0.1);

void BM_MailboxOfflineChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    net::Mailbox mail(sched, Rng(2), 10, 50);
    std::uint64_t delivered = 0;
    mail.register_client(1, [&](ClientId, BytesView) { ++delivered; });
    for (int round = 0; round < 50; ++round) {
      mail.set_online(1, false);
      for (int k = 0; k < 20; ++k) mail.post(2, 1, to_bytes("letter"));
      sched.run_until(sched.now() + 100);
      mail.set_online(1, true);
      sched.run_until(sched.now() + 100);
    }
    sched.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.counters["letters_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 1'000), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MailboxOfflineChurn)->MinTime(0.1);

void BM_ThreadBusPingPong(benchmark::State& state) {
  class Pong : public net::Node {
   public:
    rt::ThreadBus* bus = nullptr;
    void on_message(NodeId from, BytesView) override { bus->send(2, from, Bytes{1}); }
  };
  class Ping : public net::Node {
   public:
    std::atomic<int> received{0};
    void on_message(NodeId, BytesView) override { received.fetch_add(1); }
  };
  for (auto _ : state) {
    rt::ThreadBus bus;
    Ping ping;
    Pong pong;
    pong.bus = &bus;
    bus.attach(1, ping);
    bus.attach(2, pong);
    constexpr int kMsgs = 2'000;
    for (int k = 0; k < kMsgs; ++k) bus.send(1, 2, Bytes{0});
    while (ping.received.load() < kMsgs) std::this_thread::yield();
    bus.stop();
  }
  state.counters["roundtrips_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 2'000), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ThreadBusPingPong)->MinTime(0.1);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
