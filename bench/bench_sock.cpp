// Real-socket deployment benchmarks (DESIGN.md D9, PERF.md "Real
// sockets"): the loopback load-generator storm against real faust_sockd
// worker processes, over TCP.
//
//   BM_SockStormTcp — S=3 all-real-process shards serve the seeded Zipf
//     stream over loopback TCP, including one mid-run SIGKILL + restart
//     with real recovery from disk. Counters carry the perf-smoke gates:
//     complete (the storm must finish with zero fail_i), p50/p99/max µs
//     per op, reconnects, and the framing share of socket bytes.
//   BM_SockSubmitBytesSmallK / LargeK — the D6 flat-in-K gate measured
//     where it finally matters: on a real wire. Delta SUBMIT payload
//     bytes per put must track the CHANGE SET, not the keyspace, so
//     growing K from 256 to 16384 (64×) must leave submit_bytes_per_put
//     within the CI bound (4×).
//
// Results land in BENCH_sock.json (json_main.h); the CI perf-smoke step
// asserts on these counters. FAUST_BENCH_SMOKE=1 shrinks the stream.
//
// FAUST_SOCK_BASELINE=1 runs the identical workloads fully in-process
// (ExecMode::kDeterministic, no worker processes, no sockets): the
// bench/results pre/post pair BENCH_sock.{pre,post}.json is baseline vs
// real sockets, so the delta IS the socket tax — framing, syscalls,
// loopback latency, real process recovery — on the same seeded stream.
// (kDeterministic, not kThreaded: fast-forward threaded runtimes flood
// their timer wheels with virtual-time probe work, which dominates
// synchronous op latency and would bury the socket signal.)
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "scenario/runner.h"

namespace {

using namespace faust;

std::uint64_t storm_ops() {
  if (const char* smoke = std::getenv("FAUST_BENCH_SMOKE"); smoke && smoke[0] == '1') {
    return 90;
  }
  return 400;
}

std::string fresh_dir(const std::string& tag, int iteration) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("faust_bench_sock_" + tag + "_" + std::to_string(iteration)))
                              .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

bool baseline_mode() {
  const char* b = std::getenv("FAUST_SOCK_BASELINE");
  return b != nullptr && b[0] == '1';
}

scenario::ScenarioConfig sock_config(const std::string& dir, std::uint64_t n_keys) {
  scenario::ScenarioConfig cfg;
  cfg.workload.seed = 2026;
  cfg.workload.n_keys = n_keys;
  cfg.workload.n_ops = storm_ops();
  cfg.workload.n_writers = 2;
  cfg.shards = 3;
  cfg.cluster_seed = 11;
  cfg.snapshot_every = 32;
  cfg.dir = dir;
  if (baseline_mode()) {
    cfg.mode = shard::ExecMode::kDeterministic;  // same workload, no sockets
  } else {
    cfg.mode = shard::ExecMode::kProcess;
    cfg.process.worker_path = FAUST_SOCKD_PATH;
    cfg.process.use_tcp = true;
  }
  return cfg;
}

void report(benchmark::State& state, const scenario::ScenarioResult& r) {
  state.counters["ops"] = static_cast<double>(r.ops);
  state.counters["puts"] = static_cast<double>(r.puts);
  state.counters["p50_us"] = r.p50_us;
  state.counters["p99_us"] = r.p99_us;
  state.counters["max_us"] = r.max_us;
  state.counters["restarts"] = static_cast<double>(r.restarts);
  state.counters["recovery_ms"] = r.recovery_ms_total;
  state.counters["reconnects"] = static_cast<double>(r.wire_reconnects);
  state.counters["payload_bytes"] = static_cast<double>(r.wire_payload_bytes);
  state.counters["socket_bytes"] = static_cast<double>(r.wire_socket_bytes);
  state.counters["framing_bytes"] = static_cast<double>(r.wire_framing_bytes);
  state.counters["submit_bytes_per_put"] =
      r.puts > 0 ? static_cast<double>(r.submit_payload_bytes) /
                       static_cast<double>(r.puts)
                 : 0.0;
  state.counters["complete"] = r.complete && !r.any_failed ? 1.0 : 0.0;
}

void BM_SockStormTcp(benchmark::State& state) {
  int iteration = 0;
  scenario::ScenarioResult last;
  for (auto _ : state) {
    const std::string dir = fresh_dir("storm", iteration++);
    scenario::ScenarioConfig cfg = sock_config(dir, 100'000);
    const std::uint64_t n = cfg.workload.n_ops;
    cfg.kills = {scenario::KillEvent{n / 2, 1, 20'000}};
    last = scenario::run_scenario(cfg);
    benchmark::DoNotOptimize(last.merged_digest);
    std::filesystem::remove_all(dir);
  }
  report(state, last);
}
BENCHMARK(BM_SockStormTcp)->Unit(benchmark::kMillisecond)->MinTime(0.05);

void submit_bytes_run(benchmark::State& state, std::uint64_t n_keys) {
  int iteration = 0;
  scenario::ScenarioResult last;
  for (auto _ : state) {
    const std::string dir = fresh_dir("k" + std::to_string(n_keys), iteration++);
    // Crash-free, write-heavy: the cleanest bytes-per-put signal.
    scenario::ScenarioConfig cfg = sock_config(dir, n_keys);
    cfg.workload.read_fraction = 0.2;
    last = scenario::run_scenario(cfg);
    benchmark::DoNotOptimize(last.merged_digest);
    std::filesystem::remove_all(dir);
  }
  report(state, last);
}

void BM_SockSubmitBytesSmallK(benchmark::State& state) { submit_bytes_run(state, 256); }
BENCHMARK(BM_SockSubmitBytesSmallK)->Unit(benchmark::kMillisecond)->MinTime(0.05);

void BM_SockSubmitBytesLargeK(benchmark::State& state) { submit_bytes_run(state, 16'384); }
BENCHMARK(BM_SockSubmitBytesLargeK)->Unit(benchmark::kMillisecond)->MinTime(0.05);

}  // namespace

#include "json_main.h"
FAUST_BENCH_MAIN();
