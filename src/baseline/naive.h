// Baseline 2: completely unprotected remote storage — what you get when
// you point clients at an untrusted provider with no cryptographic
// protocol at all.  Reads return whatever the server says; there is no
// notion of detection.  `adversary_test` demonstrates that the very
// attacks USTOR/FAUST catch pass silently here, which is the paper's
// motivation (§1).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "net/transport.h"
#include "ustor/types.h"

namespace faust::baseline {

/// Plain remote register server (trust-me semantics).
class NaiveServer : public net::Node {
 public:
  NaiveServer(int n, net::Transport& net, NodeId self = kServerNode);

  void on_message(NodeId from, BytesView msg) override;

  /// Byzantine knob: when set, reads of register `reg` return this value
  /// instead of the stored one. No client can ever tell.
  void lie_about(ClientId reg, ustor::Value forged);

 private:
  const int n_;
  net::Transport& net_;
  const NodeId self_;
  std::vector<ustor::Value> registers_;
  std::vector<std::optional<ustor::Value>> lies_;
};

/// Matching trivial client.
class NaiveClient : public net::Node {
 public:
  using WriteCallback = std::function<void()>;
  using ReadCallback = std::function<void(const ustor::Value&)>;

  NaiveClient(ClientId id, int n, net::Transport& net, NodeId server = kServerNode);

  void write(ustor::Value x, WriteCallback done);
  void read(ClientId j, ReadCallback done);
  bool busy() const { return wdone_ != nullptr || rdone_ != nullptr; }

  void on_message(NodeId from, BytesView msg) override;

 private:
  const ClientId id_;
  net::Transport& net_;
  const NodeId server_;
  WriteCallback wdone_;
  ReadCallback rdone_;
};

}  // namespace faust::baseline
