#include "baseline/lockstep.h"

#include <utility>

#include "common/check.h"
#include "wire/encoder.h"

namespace faust::baseline {
namespace {

// Message tags, disjoint from ustor::MsgType.
constexpr std::uint8_t kRequest = 20;
constexpr std::uint8_t kGrant = 21;
constexpr std::uint8_t kCommit = 22;

constexpr std::uint32_t kMaxDelta = 1 << 20;

void put_value(wire::Writer& w, const ustor::Value& v) {
  w.put_u8(v.has_value() ? 1 : 0);
  if (v.has_value()) w.put_bytes(*v);
}

ustor::Value get_value(wire::Reader& r) {
  if (r.get_u8() == 0) return std::nullopt;
  return r.get_bytes();
}

void put_entry(wire::Writer& w, const ChainEntry& e) {
  w.put_u32(static_cast<std::uint32_t>(e.client));
  w.put_u8(static_cast<std::uint8_t>(e.oc));
  w.put_u32(static_cast<std::uint32_t>(e.target));
  put_value(w, e.value);
  w.put_bytes(e.commit_sig);
}

ChainEntry get_entry(wire::Reader& r) {
  ChainEntry e;
  e.client = static_cast<ClientId>(r.get_u32());
  e.oc = static_cast<ustor::OpCode>(r.get_u8() & 1);
  e.target = static_cast<ClientId>(r.get_u32());
  e.value = get_value(r);
  e.commit_sig = r.get_bytes();
  return e;
}

}  // namespace

Bytes encode_chain_desc(const ChainEntry& e) {
  Bytes out;
  append_u32(out, static_cast<std::uint32_t>(e.client));
  append_byte(out, static_cast<std::uint8_t>(e.oc));
  append_u32(out, static_cast<std::uint32_t>(e.target));
  append(out, ustor::encode_value(e.value));
  return out;
}

crypto::Hash chain_link(const crypto::Hash& prev, const ChainEntry& e, std::uint64_t seq) {
  crypto::Sha256 h;
  h.update(BytesView(prev.data(), prev.size()));
  h.update(encode_chain_desc(e));
  Bytes s;
  append_u64(s, seq);
  h.update(s);
  return h.finish();
}

Bytes chain_sig_payload(std::uint64_t seq, const crypto::Hash& h) {
  Bytes out = to_bytes("LOCKSTEP");
  append_u64(out, seq);
  append(out, BytesView(h.data(), h.size()));
  return out;
}

Bytes encode(const LsRequest& m) {
  wire::Writer w;
  w.put_u8(kRequest);
  w.put_u64(m.known_seq);
  return w.take();
}

Bytes encode(const LsGrant& m) {
  wire::Writer w;
  w.put_u8(kGrant);
  w.put_u64(m.base_seq);
  w.put_u32(static_cast<std::uint32_t>(m.delta.size()));
  for (const ChainEntry& e : m.delta) put_entry(w, e);
  return w.take();
}

Bytes encode(const LsCommit& m) {
  wire::Writer w;
  w.put_u8(kCommit);
  put_entry(w, m.entry);
  return w.take();
}

std::optional<LsRequest> decode_ls_request(BytesView data) {
  wire::Reader r(data);
  if (r.get_u8() != kRequest) return std::nullopt;
  LsRequest m;
  m.known_seq = r.get_u64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<LsGrant> decode_ls_grant(BytesView data) {
  wire::Reader r(data);
  if (r.get_u8() != kGrant) return std::nullopt;
  LsGrant m;
  m.base_seq = r.get_u64();
  const std::uint32_t count = r.get_u32();
  if (!r.ok() || count > kMaxDelta) return std::nullopt;
  m.delta.reserve(count);
  for (std::uint32_t k = 0; k < count && r.ok(); ++k) m.delta.push_back(get_entry(r));
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<LsCommit> decode_ls_commit(BytesView data) {
  wire::Reader r(data);
  if (r.get_u8() != kCommit) return std::nullopt;
  LsCommit m;
  m.entry = get_entry(r);
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

// --- Server ----------------------------------------------------------------

LockStepServer::LockStepServer(int n, net::Transport& net, NodeId self)
    : n_(n), net_(net), self_(self) {
  net_.attach(self_, *this);
}

void LockStepServer::on_message(NodeId from, BytesView msg) {
  if (msg.empty()) return;
  const ClientId client = static_cast<ClientId>(from);
  if (client < 1 || client > n_) return;

  if (msg[0] == kRequest) {
    queue_.emplace_back(client, Bytes(msg.begin(), msg.end()));
    try_grant();
  } else if (msg[0] == kCommit) {
    const auto m = decode_ls_commit(msg);
    if (!m.has_value()) return;
    if (!granted_.has_value() || *granted_ != client || m->entry.client != client) return;
    log_.push_back(m->entry);
    granted_.reset();
    try_grant();  // only now may the next queued operation proceed
  }
}

void LockStepServer::try_grant() {
  if (granted_.has_value() || queue_.empty()) return;
  auto [client, raw] = std::move(queue_.front());
  queue_.pop_front();

  const auto req = decode_ls_request(raw);
  if (!req.has_value() || req->known_seq > log_.size()) {
    try_grant();  // malformed request dropped; serve the next one
    return;
  }

  granted_ = client;
  LsGrant grant;
  grant.base_seq = req->known_seq;
  grant.delta.assign(log_.begin() + static_cast<std::ptrdiff_t>(req->known_seq), log_.end());
  net_.send(self_, client, encode(grant));
}

// --- Client ----------------------------------------------------------------

LockStepClient::LockStepClient(ClientId id, int n,
                               std::shared_ptr<const crypto::SignatureScheme> sigs,
                               net::Transport& net, NodeId server)
    : id_(id),
      n_(n),
      sigs_(std::move(sigs)),
      net_(net),
      server_(server),
      registers_(static_cast<std::size_t>(n)) {
  net_.attach(id_, *this);
}

void LockStepClient::fail() {
  if (failed_) return;
  failed_ = true;
  pending_.reset();
  if (on_fail) on_fail();
}

void LockStepClient::write(ustor::Value x, WriteCallback done) {
  FAUST_CHECK(!busy());
  if (failed_) return;
  pending_ = Pending{ustor::OpCode::kWrite, id_, std::move(x), std::move(done), {}};
  net_.send(id_, server_, encode(LsRequest{seq_}));
}

void LockStepClient::read(ClientId j, ReadCallback done) {
  FAUST_CHECK(!busy());
  FAUST_CHECK(j >= 1 && j <= n_);
  if (failed_) return;
  pending_ = Pending{ustor::OpCode::kRead, j, std::nullopt, {}, std::move(done)};
  net_.send(id_, server_, encode(LsRequest{seq_}));
}

void LockStepClient::on_message(NodeId from, BytesView msg) {
  if (failed_ || crashed_ || from != server_ || msg.empty() || msg[0] != kGrant) return;
  if (!pending_.has_value()) return;
  if (crash_on_grant_) {
    // Simulated crash inside the critical window: never commit, never
    // speak again. The pending callback never fires and every other
    // client now blocks.
    crashed_ = true;
    pending_.reset();
    return;
  }

  const auto grant = decode_ls_grant(msg);
  if (!grant.has_value() || grant->base_seq != seq_) {
    fail();
    return;
  }

  // Replay and verify the delta: every link hash and every committer
  // signature must check out; otherwise the server forged history.
  for (const ChainEntry& e : grant->delta) {
    const crypto::Hash next = chain_link(head_, e, seq_ + 1);
    if (!sigs_->verify(e.client, chain_sig_payload(seq_ + 1, next), e.commit_sig)) {
      fail();
      return;
    }
    head_ = next;
    seq_ += 1;
    if (e.oc == ustor::OpCode::kWrite && e.target >= 1 && e.target <= n_) {
      registers_[static_cast<std::size_t>(e.target - 1)] = e.value;
    }
  }

  // Extend the chain with the own operation and commit it.
  Pending op = std::move(*pending_);
  pending_.reset();

  ChainEntry mine;
  mine.client = id_;
  mine.oc = op.oc;
  mine.target = op.target;
  mine.value = op.oc == ustor::OpCode::kWrite ? op.value : std::nullopt;
  const crypto::Hash next = chain_link(head_, mine, seq_ + 1);
  mine.commit_sig = sigs_->sign(id_, chain_sig_payload(seq_ + 1, next));
  head_ = next;
  seq_ += 1;
  if (mine.oc == ustor::OpCode::kWrite) {
    registers_[static_cast<std::size_t>(id_ - 1)] = mine.value;
  }

  net_.send(id_, server_, encode(LsCommit{mine}));

  ++completed_;
  if (op.oc == ustor::OpCode::kWrite) {
    if (op.wdone) op.wdone();
  } else {
    // The read value comes from the replayed local state — position
    // `seq_` is the read's linearization point.
    if (op.rdone) op.rdone(registers_[static_cast<std::size_t>(op.target - 1)]);
  }
}

}  // namespace faust::baseline
