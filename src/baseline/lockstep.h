// Baseline 1: a classical *fork-linearizable* storage protocol in the
// style of SUNDR [20, 16] — included to reproduce the paper's separation
// claim (§1, C3 in DESIGN.md): every fork-linearizable protocol must
// block; USTOR does not.
//
// Design: the server serializes operations one at a time onto a signed
// hash chain. An operation is GRANTed only after the previous operation
// COMMITted; the grant ships the chain delta since the client's last
// known position, and the client replays it, verifying every link's
// signature, before extending the chain with its own operation.  Clients
// therefore agree on a chain prefix whenever they see each other's
// operations (fork-linearizability: a forked chain can never re-join
// because the link hashes diverge), and reads are served from the
// client's *locally replayed* register state — the server cannot lie
// about values at all.
//
// The price is exactly what Theorem/impossibility arguments in [5, 4]
// demand: while one operation is granted-but-uncommitted, every other
// client waits.  A client that crashes inside its critical window blocks
// the system forever.  `bench_blocking` and `baseline_test` measure this
// against USTOR's wait-freedom.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "crypto/signature.h"
#include "net/transport.h"
#include "ustor/types.h"  // OpCode, Value

namespace faust::baseline {

/// One link of the operation chain.
struct ChainEntry {
  ClientId client = 0;
  ustor::OpCode oc = ustor::OpCode::kRead;
  ClientId target = 0;
  ustor::Value value;  // written value (⊥ for reads)
  Bytes commit_sig;    // signature by `client` over (seq, link hash)
};

/// Canonical encoding of the op descriptor (input to the chain hash).
Bytes encode_chain_desc(const ChainEntry& e);

/// h_k = H(h_{k-1} || desc_k || k).
crypto::Hash chain_link(const crypto::Hash& prev, const ChainEntry& e, std::uint64_t seq);

/// Signature payload for chain position (seq, h).
Bytes chain_sig_payload(std::uint64_t seq, const crypto::Hash& h);

/// Client → server: "I want to run an operation; my chain position is
/// known_seq" (the server ships the delta from there).
struct LsRequest {
  std::uint64_t known_seq = 0;
};

/// Server → client: permission to run, plus the chain delta to replay.
struct LsGrant {
  std::uint64_t base_seq = 0;
  std::vector<ChainEntry> delta;
};

/// Client → server: the new chain entry, signed at its position.
struct LsCommit {
  ChainEntry entry;
};

Bytes encode(const LsRequest& m);
Bytes encode(const LsGrant& m);
Bytes encode(const LsCommit& m);
std::optional<LsRequest> decode_ls_request(BytesView data);
std::optional<LsGrant> decode_ls_grant(BytesView data);
std::optional<LsCommit> decode_ls_commit(BytesView data);

/// The lock-step server: grants one operation at a time, queues the rest.
class LockStepServer : public net::Node {
 public:
  LockStepServer(int n, net::Transport& net, NodeId self = kServerNode);

  void on_message(NodeId from, BytesView msg) override;

  /// Number of requests currently waiting behind the granted one.
  std::size_t queued() const { return queue_.size(); }
  bool grant_outstanding() const { return granted_.has_value(); }
  std::uint64_t chain_length() const { return log_.size(); }

 private:
  void try_grant();

  const int n_;
  net::Transport& net_;
  const NodeId self_;
  std::vector<ChainEntry> log_;            // the committed chain
  std::deque<std::pair<ClientId, Bytes>> queue_;  // pending raw requests
  std::optional<ClientId> granted_;        // client inside the critical window
};

/// The lock-step client.
class LockStepClient : public net::Node {
 public:
  using WriteCallback = std::function<void()>;
  using ReadCallback = std::function<void(const ustor::Value&)>;

  LockStepClient(ClientId id, int n, std::shared_ptr<const crypto::SignatureScheme> sigs,
                 net::Transport& net, NodeId server = kServerNode);

  /// Async write of own register; callback on completion.
  void write(ustor::Value x, WriteCallback done);

  /// Async read of register j; the value comes from the locally replayed
  /// chain, so a correct execution returns exactly the linearized value.
  void read(ClientId j, ReadCallback done);

  bool busy() const { return pending_.has_value(); }
  bool failed() const { return failed_; }
  std::function<void()> on_fail;

  /// If true, the client crashes (goes silent) right after being granted,
  /// never committing — the blocking scenario of bench C3.
  void set_crash_on_grant(bool v) { crash_on_grant_ = v; }

  std::uint64_t completed_ops() const { return completed_; }
  std::uint64_t chain_position() const { return seq_; }

  void on_message(NodeId from, BytesView msg) override;

 private:
  struct Pending {
    ustor::OpCode oc;
    ClientId target;
    ustor::Value value;
    WriteCallback wdone;
    ReadCallback rdone;
  };

  void fail();

  const ClientId id_;
  const int n_;
  const std::shared_ptr<const crypto::SignatureScheme> sigs_;
  net::Transport& net_;
  const NodeId server_;

  std::uint64_t seq_ = 0;   // chain position the client has replayed to
  crypto::Hash head_{};     // chain hash at seq_
  std::vector<ustor::Value> registers_;  // replayed register state
  std::optional<Pending> pending_;
  bool failed_ = false;
  bool crash_on_grant_ = false;
  bool crashed_ = false;  // simulated crash: silent forever
  std::uint64_t completed_ = 0;
};

}  // namespace faust::baseline
