#include "baseline/naive.h"

#include <utility>

#include "common/check.h"
#include "wire/encoder.h"

namespace faust::baseline {
namespace {

constexpr std::uint8_t kNvWrite = 30;
constexpr std::uint8_t kNvRead = 31;
constexpr std::uint8_t kNvWriteAck = 32;
constexpr std::uint8_t kNvReadReply = 33;

void put_value(wire::Writer& w, const ustor::Value& v) {
  w.put_u8(v.has_value() ? 1 : 0);
  if (v.has_value()) w.put_bytes(*v);
}

ustor::Value get_value(wire::Reader& r) {
  if (r.get_u8() == 0) return std::nullopt;
  return r.get_bytes();
}

}  // namespace

NaiveServer::NaiveServer(int n, net::Transport& net, NodeId self)
    : n_(n),
      net_(net),
      self_(self),
      registers_(static_cast<std::size_t>(n)),
      lies_(static_cast<std::size_t>(n)) {
  net_.attach(self_, *this);
}

void NaiveServer::lie_about(ClientId reg, ustor::Value forged) {
  lies_[static_cast<std::size_t>(reg - 1)] = std::move(forged);
}

void NaiveServer::on_message(NodeId from, BytesView msg) {
  if (msg.empty()) return;
  wire::Reader r(msg);
  const std::uint8_t tag = r.get_u8();
  if (tag == kNvWrite) {
    const ClientId i = static_cast<ClientId>(from);
    if (i < 1 || i > n_) return;
    registers_[static_cast<std::size_t>(i - 1)] = get_value(r);
    wire::Writer w;
    w.put_u8(kNvWriteAck);
    net_.send(self_, from, w.take());
  } else if (tag == kNvRead) {
    const ClientId j = static_cast<ClientId>(r.get_u32());
    if (!r.ok() || j < 1 || j > n_) return;
    const auto idx = static_cast<std::size_t>(j - 1);
    wire::Writer w;
    w.put_u8(kNvReadReply);
    put_value(w, lies_[idx].has_value() ? *lies_[idx] : registers_[idx]);
    net_.send(self_, from, w.take());
  }
}

NaiveClient::NaiveClient(ClientId id, int n, net::Transport& net, NodeId server)
    : id_(id), net_(net), server_(server) {
  FAUST_CHECK(id >= 1 && id <= n);
  net_.attach(id_, *this);
}

void NaiveClient::write(ustor::Value x, WriteCallback done) {
  FAUST_CHECK(!busy());
  wdone_ = std::move(done);
  wire::Writer w;
  w.put_u8(kNvWrite);
  put_value(w, x);
  net_.send(id_, server_, w.take());
}

void NaiveClient::read(ClientId j, ReadCallback done) {
  FAUST_CHECK(!busy());
  rdone_ = std::move(done);
  wire::Writer w;
  w.put_u8(kNvRead);
  w.put_u32(static_cast<std::uint32_t>(j));
  net_.send(id_, server_, w.take());
}

void NaiveClient::on_message(NodeId from, BytesView msg) {
  if (from != server_ || msg.empty()) return;
  wire::Reader r(msg);
  const std::uint8_t tag = r.get_u8();
  if (tag == kNvWriteAck && wdone_) {
    auto cb = std::move(wdone_);
    wdone_ = nullptr;
    cb();
  } else if (tag == kNvReadReply && rdone_) {
    const ustor::Value v = get_value(r);
    auto cb = std::move(rdone_);
    rdone_ = nullptr;
    cb(v);
  }
}

}  // namespace faust::baseline
