// FAUST — the fail-aware untrusted storage service of §6 (Figure 4).
//
// FaustClient wraps the USTOR engine's extended operations and adds:
//   * timestamps in user responses (Def. 5, Integrity),
//   * the stable_i(W) output action — the stability cut of Figure 2,
//   * the fail_i output action with accurate failure detection,
//   * periodic dummy reads (stability propagation through the server),
//   * the offline PROBE / VERSION / FAILURE protocol between clients,
//     which keeps detection complete even when the server crashes or
//     partitions clients (Def. 5, Detection completeness).
//
// As an extension beyond the paper, FAILURE messages carry transferable
// evidence when available (two signed, mutually incomparable versions);
// receivers verify the evidence before alarming, so a buggy peer cannot
// spuriously take the service down (see DESIGN.md).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "crypto/signature.h"
#include "exec/executor.h"
#include "net/mailbox.h"
#include "net/network.h"  // Mailbox users still need the sim network
#include "sim/scheduler.h"
#include "ustor/client.h"

namespace faust {

/// Why fail_i fired (the paper has a single fail event; the reason is
/// diagnostic and feeds the attack-campaign bench).
enum class FailureReason {
  kUstorDetected,         // USTOR check failed (lines 35–52)
  kIncomparableVersions,  // two known versions violate ≼-comparability
  kPeerReport,            // a FAILURE message (verified if evidence-bearing)
};

/// Tuning knobs for the background machinery. Times are in sim ticks.
struct FaustConfig {
  /// Cadence of dummy reads issued while idle (0 disables them).
  sim::Time dummy_read_period = 500;
  /// Δ of §6: probe a client whose VER entry is older than this.
  sim::Time probe_interval = 5000;
  /// How often to scan VER for stale entries.
  sim::Time probe_check_period = 1000;
  /// Capacity of the signature-verification caches (the USTOR engine's
  /// and the FAUST layer's own), in verified triples. The default suits a
  /// stand-alone deployment; ShardedCluster sizes it to the per-shard
  /// working set (PERF.md "Per-shard cache sizing").
  std::size_t verify_cache_entries = 4096;
  /// How DATA-signature payload digests are computed. Deployment-wide:
  /// every client must use the same mode (the verifier recomputes the
  /// signer's digest). kChunked makes re-digesting an edited register
  /// value O(change) instead of O(value) on both the signing and the
  /// verifying side (PERF.md "O(change) operations"); kFlat is the
  /// paper-literal H and the legacy-comparison knob.
  ustor::DigestMode data_digest = ustor::DigestMode::kChunked;
  /// D6: ship splice deltas on the wire (SUBMIT_DELTA / REPLY_DELTA) so
  /// bytes per op track the change set, not the register size. Effective
  /// only under kChunked (deltas verify against the chunk trees); any base
  /// mismatch degrades to the full-value path, so this is safe to leave on
  /// — the differential oracle pins on/off equivalence.
  bool wire_deltas = true;
  /// D10 chaos tolerance: while an operation is in flight, resend its
  /// COMMIT+SUBMIT (ustor::Client::resubmit — exactly-once via the
  /// server's duplicate detection) after this long, then back off
  /// exponentially with jitter up to retransmit_cap. 0 disables
  /// retransmission — the default, because on a reliable transport it is
  /// dead weight and would perturb pinned message-count baselines. Lossy
  /// deployments (a FaultPlan, a flaky real network) turn it on; without
  /// it a single dropped SUBMIT or REPLY stalls the client forever.
  sim::Time retransmit_base = 0;
  /// Backoff ceiling for retransmission delays (0 = 8 × retransmit_base).
  sim::Time retransmit_cap = 0;

  /// The same config with every period multiplied by `factor`. Real
  /// transports need this (DESIGN.md D9): the defaults above are tuned
  /// for sim ticks where a round trip costs ~10 ticks, but over a real
  /// socket a round trip costs scheduling + syscalls — timers that probe
  /// or re-read at sim cadence would fire long before the wire answers.
  /// Deployment layers scale rather than hardcode so the RELATIVE timer
  /// semantics (probe ≫ check ≫ dummy-read) survive unchanged.
  FaustConfig scaled(std::uint64_t factor) const {
    FaustConfig c = *this;
    c.dummy_read_period *= factor;
    c.probe_interval *= factor;
    c.probe_check_period *= factor;
    c.retransmit_base *= factor;
    c.retransmit_cap *= factor;
    return c;
  }
};

/// Everything a client knew at the moment it declared the server faulty —
/// the input to the "recovery procedure" §3 alludes to, and the audit
/// trail an operator would attach to a complaint against the provider.
struct FailureReport {
  FailureReason reason{};
  /// Transferable proof (two signed, ≼-incomparable versions), when the
  /// detection produced one; independently checkable by any party holding
  /// the clients' verification keys.
  std::optional<ustor::FailureMessage> evidence;
  /// Snapshot of VER at detection time: (committer, signed version) per
  /// slot with anything known.
  std::vector<std::pair<ClientId, ustor::SignedVersion>> known_versions;
};

/// Re-verifies a failure report's evidence: both signatures valid and the
/// versions mutually ≼-incomparable. Anyone with the scheme can run this.
bool verify_failure_evidence(const crypto::SignatureScheme& sigs, int n,
                             const ustor::FailureMessage& evidence);

/// Verified provenance of a read's value, delivered alongside it by
/// read_ex: the writer's timestamp t_j and the value digest x̄_j that the
/// (checked) DATA signature covers. (writer, writer_ts, value_digest) is
/// a sound cache key for anything derived from the bytes — the KV layer
/// keys its decode memos on it.
struct ReadMeta {
  Timestamp writer_ts = 0;
  crypto::Hash value_digest{};
  /// The writer's verified DATA signature over data_payload(writer_ts,
  /// value_digest); empty for a never-written register. Valid only for
  /// the duration of the callback (copy to keep). Together with the value
  /// bytes this is a self-certifying tuple any verifier can re-check —
  /// what the KV layer forwards to the edge cache on a read-through fill
  /// (DESIGN.md D8).
  BytesView data_sig;
};

/// A fail-aware client: the user-facing API of the FAUST service.
class FaustClient {
 public:
  /// W vector handed to stable_i: W[j-1] is the largest timestamp t such
  /// that all own operations with timestamp <= t are stable w.r.t. C_j.
  using StabilityCut = std::vector<Timestamp>;

  using StableHandler = std::function<void(const StabilityCut&)>;
  using FailHandler = std::function<void(FailureReason)>;
  using WriteHandler = std::function<void(Timestamp)>;
  using ReadHandler = std::function<void(const ustor::Value&, Timestamp)>;
  using ReadExHandler = std::function<void(const ustor::Value&, Timestamp, const ReadMeta&)>;

  /// Timers and deferred work go through `exec`; under a
  /// rt::ThreadedRuntime every call into this object must be made from
  /// (or posted onto) that runtime's thread.
  FaustClient(ClientId id, int n, std::shared_ptr<const crypto::SignatureScheme> sigs,
              net::Transport& net, net::Mailbox& mail, exec::Executor& exec,
              FaustConfig config = {});
  ~FaustClient();

  FaustClient(const FaustClient&) = delete;
  FaustClient& operator=(const FaustClient&) = delete;

  /// Writes `value` to own register X_i; `done(t)` delivers the operation
  /// timestamp. Operations queue behind any in-flight (user or dummy) op.
  void write(Bytes value, WriteHandler done = {});

  /// Zero-copy write: the buffer is shared, not copied, and an optional
  /// precomputed digest skips re-hashing it (the KV layer's incremental
  /// encoder maintains both across edits). `digest`, when given, must
  /// equal value_digest(config().data_digest, *value).
  void write_shared(std::shared_ptr<const Bytes> value,
                    const std::optional<crypto::Hash>& digest, WriteHandler done = {});

  /// D6 delta write: publishes only the splices carrying the previous
  /// published value (whose chunk-tree root is `base_digest`) forward to
  /// the new one (root `new_root`, total `new_size` bytes). Requires
  /// deltas_active(); callers fall back to write_shared otherwise.
  void write_delta(const crypto::Hash& base_digest, const crypto::Hash& new_root,
                   std::uint64_t new_size, std::vector<ustor::Splice> splices,
                   WriteHandler done = {});

  /// True when this client speaks the delta wire protocol (config knob on
  /// and chunked digests in use).
  bool deltas_active() const {
    return config_.wire_deltas && config_.data_digest == ustor::DigestMode::kChunked;
  }

  /// Reads register X_j; `done(value, t)` as above.
  void read(ClientId j, ReadHandler done = {});

  /// Like read(), additionally delivering the verified (writer_ts,
  /// value_digest) binding of the value (see ReadMeta).
  void read_ex(ClientId j, ReadExHandler done);

  /// The DATA signature δ_i of this client's most recently completed
  /// write — the exact bytes that went over the wire (never a
  /// re-signature, so it is scheme-agnostic and free). Together with the
  /// write's (t, x̄, value) it forms the same self-certifying tuple a
  /// read yields; the KV layer attaches it to writer push fills of the
  /// edge cache (DESIGN.md D8). Empty before the first write completes.
  BytesView last_write_sig() const { return BytesView(last_write_sig_); }

  /// stable_i — fired whenever the stability cut advances.
  StableHandler on_stable;

  /// fail_i — fired at most once; afterwards the client is halted.
  FailHandler on_fail;

  bool failed() const { return failed_; }
  std::optional<FailureReason> failure_reason() const { return failure_reason_; }

  /// Audit record captured at detection; nullopt while healthy.
  const std::optional<FailureReport>& failure_report() const { return failure_report_; }

  /// Current stability cut W (all zeros initially).
  const StabilityCut& stability_cut() const { return W_; }

  /// Largest own timestamp stable w.r.t. *all* clients (min over W); the
  /// prefix of the execution up to it is linearizable (Def. 5 item 6).
  Timestamp fully_stable_timestamp() const;

  /// Scenario scripting: an offline client issues no dummy reads/probes
  /// and receives mailbox messages only after coming back online.
  void go_offline();
  void go_online();
  bool online() const { return online_; }

  /// Reconnect after a server restart: delegates to the engine's
  /// resubmit() so an in-flight operation resumes against the recovered
  /// server (exactly-once via its duplicate detection). Queued user ops
  /// behind the in-flight one drain normally once it completes.
  void reconnect() {
    if (!failed_) ustor_.resubmit();
  }

  ClientId id() const { return id_; }
  int n() const { return n_; }

  /// The configuration this client was built with (the KV layer reads the
  /// digest mode off it).
  const FaustConfig& config() const { return config_; }

  /// The wrapped protocol engine (tests inspect it).
  ustor::Client& engine() { return ustor_; }

  /// Diagnostics: dummy reads issued, probes sent, version msgs received.
  std::uint64_t dummy_reads() const { return dummy_reads_; }
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t versions_received() const { return versions_received_; }
  /// Retransmissions fired by the D10 in-flight timer (0 when disabled).
  std::uint64_t retransmits() const { return retransmits_; }

 private:
  /// VER_i[j] of §6: the maximal version known to stem from C_j's
  /// knowledge, with the id of the client that committed it.
  struct KnownVersion {
    ClientId committer = 0;  // 0 = nothing known yet
    ustor::SignedVersion sv;
    sim::Time updated_at = 0;
  };

  struct PendingUserOp {
    bool is_write = false;
    std::shared_ptr<const Bytes> value;   // writes (shared, never copied)
    std::optional<crypto::Hash> digest;   // writes: precomputed x̄, if any
    ClientId target = 0;                  // reads
    WriteHandler write_done;
    ReadExHandler read_done;
    // Delta writes (D6): set when is_delta_write.
    bool is_delta_write = false;
    crypto::Hash base_digest{};
    crypto::Hash new_root{};
    std::uint64_t new_size = 0;
    std::vector<ustor::Splice> splices;
  };

  KnownVersion& ver(ClientId j) { return VER_[static_cast<std::size_t>(j - 1)]; }

  /// Starts the next queued user op if the engine is idle.
  void pump();
  void start_op(PendingUserOp op);

  void arm_dummy_timer();
  void arm_probe_timer();
  void dummy_tick();
  void probe_tick();

  /// D10 retransmission: armed whenever an operation goes in flight,
  /// canceled when it completes; each firing resubmit()s and doubles the
  /// delay (with jitter) up to the cap. No-ops when retransmit_base == 0.
  void start_retransmit();
  void arm_retransmit();
  void retransmit_fire();
  void cancel_retransmit();

  /// Folds a freshly learned version into VER (slot `j`), running the
  /// comparability check. Returns false iff a failure was detected.
  bool ingest(ClientId j, ClientId committer, const ustor::SignedVersion& sv,
              bool already_verified);

  /// Recomputes W from VER and fires on_stable if the cut advanced.
  void recompute_stability();

  void detect_failure(FailureReason reason,
                      std::optional<ustor::FailureMessage> evidence);
  void handle_mail(ClientId from, BytesView msg);
  void handle_version_msg(ClientId from, const ustor::VersionMessage& m);
  void handle_failure_msg(const ustor::FailureMessage& m);

  /// True iff both signed versions verify and are mutually incomparable.
  bool evidence_valid(const ustor::FailureMessage& m) const;

  const ClientId id_;
  const int n_;
  const std::shared_ptr<const crypto::SignatureScheme> sigs_;
  net::Mailbox& mail_;
  exec::Executor& exec_;
  const FaustConfig config_;
  ustor::Client ustor_;

  std::vector<KnownVersion> VER_;
  ClientId max_slot_ = 0;  // max_i of §6; 0 until any version is known
  StabilityCut W_;
  bool stable_dirty_ = false;

  std::deque<PendingUserOp> queue_;
  bool op_in_flight_ = false;
  ClientId next_dummy_target_ = 0;
  Bytes last_write_sig_;  // δ of the latest completed write (see accessor)

  bool online_ = true;
  bool failed_ = false;
  std::optional<FailureReason> failure_reason_;
  std::optional<FailureReport> failure_report_;

  sim::EventId dummy_timer_ = 0;
  sim::EventId probe_timer_ = 0;
  sim::EventId retransmit_timer_ = 0;
  sim::Time retransmit_delay_ = 0;      // current backoff step
  Rng retransmit_rng_;  // jitter stream, seeded per client id (ctor)

  std::uint64_t dummy_reads_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t versions_received_ = 0;
  std::uint64_t retransmits_ = 0;
};

}  // namespace faust
