#include "faust/cluster.h"

#include <filesystem>

#include "common/check.h"
#include "common/rng.h"

namespace faust {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      owned_sched_(config.executor ? nullptr : std::make_unique<sim::Scheduler>()),
      exec_(config.executor ? config.executor : owned_sched_.get()),
      sim_(dynamic_cast<sim::Scheduler*>(exec_)) {
  FAUST_CHECK(config_.n >= 1);
  Rng root(config_.seed);
  if (config_.transport != nullptr) {
    // External (socket) transport: the server side lives elsewhere. The
    // fork is still drawn so the mailbox/signature seeds — and therefore
    // every client-side random draw — match the owned-network assembly
    // bit for bit (the process-vs-deterministic differential relies on
    // it).
    FAUST_CHECK(config_.executor != nullptr);
    FAUST_CHECK(!config_.with_server);
    FAUST_CHECK(!config_.cache.with_node);
    FAUST_CHECK(config_.durability_dir.empty());
    (void)root.fork();
  } else {
    net_ = std::make_unique<net::Network>(*exec_, root.fork(), config_.delay);
  }
  mail_ = std::make_unique<net::Mailbox>(*exec_, root.fork(), config_.mail_min_delay,
                                         config_.mail_max_delay);
  sigs_ = crypto::make_hmac_scheme(config_.n, root.next_u64());
  if (config_.with_server) {
    if (durable()) {
      std::filesystem::create_directories(config_.durability_dir);
      pserver_ = std::make_unique<storage::PersistentServer>(
          config_.n, *net_, config_.durability_dir, config_.durability);
    } else {
      server_ = std::make_unique<ustor::Server>(config_.n, *net_);
    }
  }
  if (config_.cache.enabled && config_.cache.with_node) {
    cache_node_ = std::make_unique<cache::CacheNode>(cache::kCacheNodeId, *net_, *exec_,
                                                     config_.n, config_.cache);
  }
  clients_.reserve(static_cast<std::size_t>(config_.n));
  for (ClientId i = 1; i <= config_.n; ++i) {
    clients_.push_back(std::make_unique<FaustClient>(i, config_.n, sigs_, transport(),
                                                     *mail_, *exec_, config_.faust));
  }
}

net::Network& Cluster::net() {
  FAUST_CHECK(net_ != nullptr);  // external-transport mode has no Network
  return *net_;
}

const net::Network& Cluster::net() const {
  FAUST_CHECK(net_ != nullptr);
  return *net_;
}

net::Transport& Cluster::transport() {
  if (config_.transport != nullptr) return *config_.transport;
  return *net_;
}

sim::Scheduler& Cluster::sched() {
  FAUST_CHECK(sim_ != nullptr);  // stepping makes no sense on a threaded runtime
  return *sim_;
}

FaustClient& Cluster::client(ClientId i) {
  FAUST_CHECK(i >= 1 && i <= config_.n);
  return *clients_[static_cast<std::size_t>(i - 1)];
}

Timestamp Cluster::write(ClientId i, std::string_view value, std::size_t step_budget) {
  sim::Scheduler& sched = this->sched();
  const int rec =
      recorder_.begin(i, ustor::OpCode::kWrite, i, to_bytes(value), sched.now());
  bool done = false;
  Timestamp out = 0;
  client(i).write(to_bytes(value), [&](Timestamp t) {
    done = true;
    out = t;
  });
  std::size_t steps = 0;
  while (!done && steps < step_budget && sched.step()) ++steps;
  if (done) recorder_.end(rec, sched.now(), out);
  return out;
}

ustor::Value Cluster::read(ClientId i, ClientId j, bool* completed, std::size_t step_budget) {
  sim::Scheduler& sched = this->sched();
  const int rec = recorder_.begin(i, ustor::OpCode::kRead, j, std::nullopt, sched.now());
  bool done = false;
  Timestamp ts = 0;
  ustor::Value out;
  client(i).read(j, [&](const ustor::Value& v, Timestamp t) {
    done = true;
    ts = t;
    out = v;
  });
  std::size_t steps = 0;
  while (!done && steps < step_budget && sched.step()) ++steps;
  if (done) recorder_.end(rec, sched.now(), ts, out);
  if (completed != nullptr) *completed = done;
  return out;
}

void Cluster::crash_server() {
  FAUST_CHECK(durable());
  FAUST_CHECK(pserver_ != nullptr);
  // Fence first: kill() bumps the server's delivery epoch, so anything in
  // flight to or from the pre-crash incarnation is dropped — a stale
  // REPLY arriving after restart would otherwise look unsolicited and
  // fail the client. The PersistentServer destructor detaches the node.
  net_->kill(kServerNode);
  pserver_.reset();
}

void Cluster::restart_server() {
  FAUST_CHECK(durable());
  FAUST_CHECK(pserver_ == nullptr);
  // Constructor-time recovery + net attach; attach() revives the killed
  // node by bumping its epoch once more, so messages queued while it was
  // down are dropped too.
  pserver_ = std::make_unique<storage::PersistentServer>(
      config_.n, *net_, config_.durability_dir, config_.durability);
  reconnect_clients();
}

void Cluster::reconnect_clients() {
  for (auto& c : clients_) c->reconnect();
}

bool Cluster::any_failed() const {
  for (const auto& c : clients_) {
    if (c->failed()) return true;
  }
  return false;
}

bool Cluster::all_failed() const {
  for (const auto& c : clients_) {
    if (!c->failed()) return false;
  }
  return true;
}

}  // namespace faust
