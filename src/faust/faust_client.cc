#include "faust/faust_client.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "crypto/verify_cache.h"
#include "ustor/messages.h"

namespace faust {

bool verify_failure_evidence(const crypto::SignatureScheme& sigs, int n,
                             const ustor::FailureMessage& m) {
  if (!m.has_evidence) return false;
  if (m.committer_a < 1 || m.committer_a > n || m.committer_b < 1 || m.committer_b > n) {
    return false;
  }
  if (m.a.version.n() != n || m.b.version.n() != n) return false;
  if (!sigs.verify(m.committer_a, ustor::commit_payload(m.a.version), m.a.commit_sig)) {
    return false;
  }
  if (!sigs.verify(m.committer_b, ustor::commit_payload(m.b.version), m.b.commit_sig)) {
    return false;
  }
  return !ustor::versions_comparable(m.a.version, m.b.version);
}

FaustClient::FaustClient(ClientId id, int n,
                         std::shared_ptr<const crypto::SignatureScheme> sigs,
                         net::Transport& net, net::Mailbox& mail, exec::Executor& exec,
                         FaustConfig config)
    : id_(id),
      n_(n),
      // FAUST re-verifies the same maximal versions on every probe reply
      // and dummy read; the VerifyCache memoizes those (PERF.md).
      sigs_(std::make_shared<crypto::VerifyCache>(sigs, config.verify_cache_entries)),
      mail_(mail),
      exec_(exec),
      config_(config),
      ustor_(id, n, std::move(sigs), net, kServerNode, config.verify_cache_entries,
             config.data_digest, config.wire_deltas),
      VER_(static_cast<std::size_t>(n)),
      W_(static_cast<std::size_t>(n), 0),
      // Jitter stream is per-client so a fleet retransmitting after the
      // same outage desynchronizes instead of stampeding in lockstep.
      retransmit_rng_(0x9E3779B97F4A7C15ULL ^ static_cast<std::uint64_t>(id)) {
  for (auto& kv : VER_) {
    kv.sv.version = ustor::Version(n);
    kv.updated_at = exec_.now();
  }
  // USTOR's fail_i feeds straight into FAUST's failure handling. No
  // transferable evidence exists for these causes (the offending message
  // cannot be re-verified by peers), so the FAILURE broadcast is bare.
  ustor_.on_fail = [this](ustor::FailCause) {
    detect_failure(FailureReason::kUstorDetected, std::nullopt);
  };
  // Retransmission implies a lossy fabric, and loss alone can leave the
  // server's SVER for this client two commits behind its next submit —
  // which a READER of this register would misread as misbehavior
  // (Algorithm 1 line 52). Piggybacking the latest COMMIT on every
  // SUBMIT closes that window with probability 1.
  if (config_.retransmit_base > 0) ustor_.set_attach_commits(true);
  mail_.register_client(id_, [this](ClientId from, BytesView msg) { handle_mail(from, msg); });
  arm_dummy_timer();
  arm_probe_timer();
}

FaustClient::~FaustClient() {
  exec_.cancel(dummy_timer_);
  exec_.cancel(probe_timer_);
  cancel_retransmit();
}

void FaustClient::start_retransmit() {
  if (config_.retransmit_base == 0) return;
  retransmit_delay_ = config_.retransmit_base;
  arm_retransmit();
}

void FaustClient::arm_retransmit() {
  const sim::Time jitter =
      retransmit_delay_ > 1 ? retransmit_rng_.next_in(0, retransmit_delay_ / 2) : 0;
  retransmit_timer_ = exec_.after(retransmit_delay_ + jitter, [this] { retransmit_fire(); });
}

void FaustClient::retransmit_fire() {
  retransmit_timer_ = 0;
  if (failed_ || !op_in_flight_) return;
  ++retransmits_;
  // COMMIT first, then the in-flight SUBMIT: the resent COMMIT clears our
  // L entry at the server, and the duplicate SUBMIT either un-parks /
  // dedups there (already processed — cached reply comes back) or gets
  // processed for the first time (original was dropped). Exactly-once
  // holds either way.
  ustor_.resubmit();
  const sim::Time cap =
      config_.retransmit_cap > 0 ? config_.retransmit_cap : config_.retransmit_base * 8;
  retransmit_delay_ = std::min(cap, retransmit_delay_ * 2);
  arm_retransmit();
}

void FaustClient::cancel_retransmit() {
  if (retransmit_timer_ != 0) {
    exec_.cancel(retransmit_timer_);
    retransmit_timer_ = 0;
  }
}

Timestamp FaustClient::fully_stable_timestamp() const {
  Timestamp min = W_.empty() ? 0 : W_[0];
  for (const Timestamp w : W_) min = std::min(min, w);
  return min;
}

void FaustClient::write(Bytes value, WriteHandler done) {
  write_shared(std::make_shared<const Bytes>(std::move(value)), std::nullopt, std::move(done));
}

void FaustClient::write_shared(std::shared_ptr<const Bytes> value,
                               const std::optional<crypto::Hash>& digest, WriteHandler done) {
  if (failed_) return;
  FAUST_CHECK(value != nullptr);
  PendingUserOp op;
  op.is_write = true;
  op.value = std::move(value);
  op.digest = digest;
  op.write_done = std::move(done);
  queue_.push_back(std::move(op));
  pump();
}

void FaustClient::write_delta(const crypto::Hash& base_digest, const crypto::Hash& new_root,
                              std::uint64_t new_size, std::vector<ustor::Splice> splices,
                              WriteHandler done) {
  if (failed_) return;
  FAUST_CHECK(deltas_active());
  PendingUserOp op;
  op.is_write = true;
  op.is_delta_write = true;
  op.base_digest = base_digest;
  op.new_root = new_root;
  op.new_size = new_size;
  op.splices = std::move(splices);
  op.write_done = std::move(done);
  queue_.push_back(std::move(op));
  pump();
}

void FaustClient::read(ClientId j, ReadHandler done) {
  read_ex(j, done ? ReadExHandler([done = std::move(done)](const ustor::Value& v, Timestamp t,
                                                           const ReadMeta&) { done(v, t); })
                  : ReadExHandler{});
}

void FaustClient::read_ex(ClientId j, ReadExHandler done) {
  if (failed_) return;
  FAUST_CHECK(j >= 1 && j <= n_);
  PendingUserOp op;
  op.target = j;
  op.read_done = std::move(done);
  queue_.push_back(std::move(op));
  pump();
}

void FaustClient::pump() {
  if (failed_ || op_in_flight_ || queue_.empty()) return;
  PendingUserOp op = std::move(queue_.front());
  queue_.pop_front();
  start_op(std::move(op));
}

void FaustClient::start_op(PendingUserOp op) {
  op_in_flight_ = true;
  start_retransmit();
  if (op.is_write) {
    auto write_cb = [this, done = std::move(op.write_done)](const ustor::WriteResult& r) {
      op_in_flight_ = false;
      cancel_retransmit();
      last_write_sig_ = r.data_sig;
      const bool ok = ingest(id_, id_, r.own, /*already_verified=*/true);
      if (done) done(r.t);
      if (ok) recompute_stability();
      pump();
    };
    if (op.is_delta_write) {
      ustor_.writex_delta(op.base_digest, op.new_root, op.new_size, std::move(op.splices),
                          std::move(write_cb));
      return;
    }
    ustor_.writex(std::move(op.value), op.digest ? &*op.digest : nullptr, std::move(write_cb));
  } else {
    const ClientId j = op.target;
    ustor_.readx(j, [this, j, done = std::move(op.read_done)](const ustor::ReadResult& r) {
      op_in_flight_ = false;
      cancel_retransmit();
      // Order matters for accuracy: fold in the writer's version first so
      // an inconsistency is reported before the value is handed out.
      bool ok = true;
      if (!r.writer_version.version.is_zero()) {
        // USTOR already verified φ_j (line 49), no need to re-verify.
        ok = ingest(j, j, r.writer_version, /*already_verified=*/true);
      }
      if (ok) ok = ingest(id_, id_, r.own, /*already_verified=*/true);
      if (done) done(r.value, r.t, ReadMeta{r.writer_ts, r.value_digest, BytesView(r.data_sig)});
      if (ok) recompute_stability();
      pump();
    });
  }
}

void FaustClient::arm_dummy_timer() {
  if (config_.dummy_read_period == 0 || n_ < 2) return;
  dummy_timer_ = exec_.after(config_.dummy_read_period, [this] {
    dummy_tick();
    if (!failed_) arm_dummy_timer();
  });
}

void FaustClient::dummy_tick() {
  if (failed_ || !online_ || op_in_flight_ || !queue_.empty() || ustor_.busy()) return;
  // §6: read the register of every client in round-robin fashion while no
  // user operation is ongoing. Own register is skipped — a dummy read's
  // purpose is to pick up other clients' versions.
  next_dummy_target_ = (next_dummy_target_ % n_) + 1;
  if (next_dummy_target_ == id_) next_dummy_target_ = (next_dummy_target_ % n_) + 1;
  const ClientId j = next_dummy_target_;
  ++dummy_reads_;
  op_in_flight_ = true;
  start_retransmit();
  ustor_.readx(j, [this, j](const ustor::ReadResult& r) {
    op_in_flight_ = false;
    cancel_retransmit();
    bool ok = true;
    if (!r.writer_version.version.is_zero()) {
      ok = ingest(j, j, r.writer_version, /*already_verified=*/true);
    }
    if (ok) ok = ingest(id_, id_, r.own, /*already_verified=*/true);
    if (ok) recompute_stability();
    pump();
  });
}

void FaustClient::arm_probe_timer() {
  if (config_.probe_check_period == 0 || n_ < 2) return;
  probe_timer_ = exec_.after(config_.probe_check_period, [this] {
    probe_tick();
    if (!failed_) arm_probe_timer();
  });
}

void FaustClient::probe_tick() {
  if (failed_ || !online_) return;
  const sim::Time now = exec_.now();
  for (ClientId j = 1; j <= n_; ++j) {
    if (j == id_) continue;
    if (now - ver(j).updated_at > config_.probe_interval) {
      ++probes_sent_;
      mail_.post(id_, j, ustor::encode(ustor::ProbeMessage{}));
      // Rate-limit: treat the probe itself as contact; the next probe goes
      // out only if the entry stays stale for another full interval.
      ver(j).updated_at = now;
    }
  }
}

bool FaustClient::ingest(ClientId j, ClientId committer, const ustor::SignedVersion& sv,
                         bool already_verified) {
  if (failed_) return false;
  if (sv.version.is_zero()) return true;  // nothing learned
  if (sv.version.n() != n_ || committer < 1 || committer > n_) return true;  // ignore garbage
  if (!already_verified &&
      !sigs_->verify(committer, ustor::commit_payload(sv.version), sv.commit_sig)) {
    // Unverifiable versions are dropped, not trusted: failure accuracy
    // (Def. 5 item 5) forbids alarming on anything a peer can't prove.
    return true;
  }

  // §6 consistency check: every learned version must be ≼-comparable with
  // the maximal known version. Incomparable signed versions are precisely
  // the evidence that the server forked the clients' views.
  if (max_slot_ != 0) {
    const KnownVersion& mx = ver(max_slot_);
    if (!ustor::versions_comparable(mx.sv.version, sv.version)) {
      ustor::FailureMessage ev;
      ev.has_evidence = true;
      ev.committer_a = mx.committer;
      ev.a = mx.sv;
      ev.committer_b = committer;
      ev.b = sv;
      detect_failure(FailureReason::kIncomparableVersions, ev);
      return false;
    }
  }

  KnownVersion& slot = ver(j);
  if (ustor::version_leq(sv.version, slot.sv.version)) return true;  // not news
  // The staleness clock for Δ-probing advances only when C_j's entry
  // actually *grows* (or on direct client-to-client contact, handled in
  // handle_version_msg). Old-but-valid data relayed by the server must
  // not count as liveness of C_j — otherwise a server replaying a frozen
  // fork would suppress the probes that expose it.
  slot.updated_at = exec_.now();
  slot.committer = committer;
  slot.sv = sv;
  if (max_slot_ == 0 || ustor::version_leq(ver(max_slot_).sv.version, sv.version)) {
    max_slot_ = j;
  }
  stable_dirty_ = true;
  return true;
}

void FaustClient::recompute_stability() {
  if (failed_ || !stable_dirty_) return;
  stable_dirty_ = false;
  bool advanced = false;
  for (ClientId j = 1; j <= n_; ++j) {
    const Timestamp w = ver(j).sv.version.v(id_);  // W_i[j] = V_j[i]
    Timestamp& cur = W_[static_cast<std::size_t>(j - 1)];
    if (w > cur) {
      cur = w;
      advanced = true;
    }
  }
  if (advanced && on_stable) on_stable(W_);
}

void FaustClient::detect_failure(FailureReason reason,
                                 std::optional<ustor::FailureMessage> evidence) {
  if (failed_) return;
  failed_ = true;
  failure_reason_ = reason;
  // Capture the audit record before halting (the recovery hook of §3).
  FailureReport report;
  report.reason = reason;
  report.evidence = evidence;
  for (ClientId j = 1; j <= n_; ++j) {
    if (ver(j).committer != 0) report.known_versions.emplace_back(ver(j).committer, ver(j).sv);
  }
  failure_report_ = std::move(report);
  exec_.cancel(dummy_timer_);
  exec_.cancel(probe_timer_);
  cancel_retransmit();
  queue_.clear();

  // Alert every other client over the offline channel (§6); mailbox
  // delivery is eventual, so even currently offline clients learn of it.
  ustor::FailureMessage msg = evidence.value_or(ustor::FailureMessage{});
  const Bytes encoded = ustor::encode(msg);
  for (ClientId j = 1; j <= n_; ++j) {
    if (j != id_) mail_.post(id_, j, encoded);
  }
  if (on_fail) on_fail(reason);
}

void FaustClient::handle_mail(ClientId from, BytesView msg) {
  if (failed_) return;
  const auto type = ustor::peek_type(msg);
  if (!type.has_value()) return;
  switch (*type) {
    case ustor::MsgType::kProbe: {
      if (!ustor::decode_probe(msg).has_value()) return;
      // Reply with the maximal version we know (which need not have been
      // committed by us — §6).
      ustor::VersionMessage vm;
      if (max_slot_ != 0) {
        vm.committer = ver(max_slot_).committer;
        vm.ver = ver(max_slot_).sv;
      }
      mail_.post(id_, from, ustor::encode(vm));
      break;
    }
    case ustor::MsgType::kVersion: {
      const auto vm = ustor::decode_version(msg);
      if (!vm.has_value()) return;
      handle_version_msg(from, *vm);
      break;
    }
    case ustor::MsgType::kFailure: {
      const auto fm = ustor::decode_failure(msg);
      if (!fm.has_value()) return;
      handle_failure_msg(*fm);
      break;
    }
    default:
      break;
  }
}

void FaustClient::handle_version_msg(ClientId from, const ustor::VersionMessage& m) {
  ++versions_received_;
  if (from < 1 || from > n_) return;
  // A VERSION message is direct client-to-client contact, which the
  // server cannot forge or replay: it does refresh the staleness clock,
  // whether or not it carries news.
  ver(from).updated_at = exec_.now();
  if (m.ver.version.is_zero()) return;
  // The version arrived from `from`, so it reflects from's knowledge: it
  // lands in slot `from`, but verifies against its committer's key.
  if (ingest(from, m.committer, m.ver, /*already_verified=*/false)) {
    recompute_stability();
  }
}

bool FaustClient::evidence_valid(const ustor::FailureMessage& m) const {
  return verify_failure_evidence(*sigs_, n_, m);
}

void FaustClient::handle_failure_msg(const ustor::FailureMessage& m) {
  if (m.has_evidence && !evidence_valid(m)) return;  // unprovable claim
  // Clients follow the protocol (§2), so a bare FAILURE from a peer is
  // accepted; evidence-bearing ones were just re-verified independently.
  detect_failure(FailureReason::kPeerReport,
                 m.has_evidence ? std::optional<ustor::FailureMessage>(m) : std::nullopt);
}

void FaustClient::go_offline() {
  online_ = false;
  mail_.set_online(id_, false);
}

void FaustClient::go_online() {
  online_ = true;
  mail_.set_online(id_, true);
}

}  // namespace faust
