// Cluster — one-call assembly of a full FAUST deployment inside the
// simulator: scheduler, network, offline mailbox, signature scheme, a
// server (correct by default; adversarial servers can be attached
// instead), n FaustClients, and a history recorder feeding the checkers.
//
// Used by the examples, the benches and most integration tests.  The
// synchronous `write`/`read` helpers drive the event loop until the
// operation completes (or a step budget expires, e.g. under a crashed
// server), which keeps scenario scripts readable.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "cache/cache_node.h"
#include "checker/history.h"
#include "crypto/signature.h"
#include "faust/faust_client.h"
#include "net/mailbox.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "storage/persistent_server.h"
#include "ustor/server.h"

namespace faust {

/// Knobs for Cluster assembly.
struct ClusterConfig {
  int n = 3;
  std::uint64_t seed = 1;
  net::DelayModel delay{1, 10};       // client↔server channel delay
  sim::Time mail_min_delay = 50;      // offline channel latency
  sim::Time mail_max_delay = 200;
  FaustConfig faust;                  // FAUST timers
  bool with_server = true;            // false: caller attaches own server
  /// Non-empty: the server is a crash-durable storage::PersistentServer
  /// rooted in this directory (created if absent), and crash_server()/
  /// restart_server() become legal. server() is nullptr in this mode;
  /// use pserver().
  std::string durability_dir;
  storage::DurabilityOptions durability;  // snapshot cadence (durable mode)
  /// D8 edge-cache tier: cache.enabled wires the deployment for cached
  /// reads (the KV layer attaches CacheClients; see kvstore/), and
  /// cache.with_node makes the cluster own an honest CacheNode under
  /// cache::kCacheNodeId (false: a test attaches its own, e.g. Byzantine,
  /// node there).
  cache::CacheOptions cache;
  /// Transport hook (DESIGN.md D9): when set, the deployment's parties
  /// ride this external transport (which must outlive the cluster)
  /// instead of an owned simulated net::Network — the real-socket mode,
  /// where the server lives in ANOTHER PROCESS behind a
  /// sock::SocketTransport. Requires `executor` (the socket loop posts
  /// deliveries onto it; a sim::Scheduler cannot take cross-thread posts,
  /// so pass a rt::ThreadedRuntime), and implies with_server == false,
  /// cache.with_node == false and no durability_dir: the server side of
  /// the deployment is whoever answers on the wire. net() is illegal in
  /// this mode; use transport().
  net::Transport* transport = nullptr;
  /// Execution hook: when set, the cluster runs on this external executor
  /// (which must outlive it) instead of owning a sim::Scheduler.
  /// ShardedCluster uses it two ways: kDeterministic passes one shared
  /// sim::Scheduler to every shard (S deployments on a single event loop,
  /// deterministic under one seed), kThreaded passes each shard its own
  /// rt::ThreadedRuntime (one OS thread per shard).
  ///
  /// Lifetime contract, both directions: the executor outlives the
  /// cluster, AND the executor must not run further after this cluster is
  /// destroyed while events it scheduled are still pending — in-flight
  /// network/mailbox deliveries capture cluster-owned objects, and only
  /// the FaustClient timers are cancelled on destruction. Destroy the
  /// co-scheduled clusters and their executor together, stopping a
  /// threaded runtime first (as ShardedCluster does); tearing down a
  /// single shard mid-run needs a drain/cancel protocol that does not
  /// exist yet (ROADMAP: shard rebalancing).
  exec::Executor* executor = nullptr;
};

/// A fully wired simulated deployment.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// The executor everything in this deployment runs on.
  exec::Executor& exec() { return *exec_; }

  /// The simulation scheduler, for harnesses that step virtual time.
  /// Only valid when the cluster owns one or was given a sim::Scheduler
  /// as its executor (FAUST_CHECKed) — i.e. never under a threaded
  /// runtime, where time cannot be stepped from outside.
  sim::Scheduler& sched();

  /// True when the deployment runs on a sim::Scheduler (sched() is legal
  /// and callers drive completion by stepping it); false under a threaded
  /// runtime, where work must be post()ed onto exec() and waited for.
  bool simulated() const { return sim_ != nullptr; }

  /// The owned simulated fabric. Illegal (FAUST_CHECK) when the cluster
  /// rides an external transport — use transport() there.
  net::Network& net();
  const net::Network& net() const;

  /// The transport every party of this deployment is attached to: the
  /// external one when configured, else the owned Network. This is what
  /// deployment-generic wiring (CacheClients, extra test nodes) should
  /// use.
  net::Transport& transport();

  /// True when the cluster rides an external (e.g. socket) transport.
  bool external_transport() const { return config_.transport != nullptr; }

  net::Mailbox& mail() { return *mail_; }
  const std::shared_ptr<const crypto::SignatureScheme>& sigs() const { return sigs_; }
  int n() const { return config_.n; }

  FaustClient& client(ClientId i);

  /// The correct server, or nullptr when with_server was false or the
  /// cluster is durable (see pserver()).
  ustor::Server* server() { return server_.get(); }

  /// The durable server, or nullptr outside durable mode / while crashed.
  storage::PersistentServer* pserver() { return pserver_.get(); }

  /// True when this cluster was built with a durability_dir.
  bool durable() const { return !config_.durability_dir.empty(); }

  /// The deployment's cache configuration (as passed in).
  const cache::CacheOptions& cache_options() const { return config_.cache; }

  /// The owned honest cache node, or nullptr (cache.enabled false,
  /// cache.with_node false, or an external node attached instead).
  cache::CacheNode* cache_node() { return cache_node_.get(); }

  /// True while the (durable) server is attached and processing.
  bool server_up() const { return pserver_ != nullptr || server_ != nullptr; }

  /// Transiently crashes the durable server: in-flight messages to/from
  /// it are dropped (net().kill epoch fencing — a stale pre-crash REPLY
  /// can never reach a post-restart client) and its memory state is
  /// destroyed. Its WAL and snapshot survive on disk.
  void crash_server();

  /// Rebuilds the durable server from disk (constructor-time recovery:
  /// verified snapshot + log suffix, or full replay) and reconnects every
  /// healthy client so in-flight operations resume exactly once.
  void restart_server();

  /// Reconnects every healthy client (FaustClient::reconnect →
  /// ustor::Client::resubmit). restart_server() does this itself; the
  /// external-transport mode calls it directly after the REMOTE server
  /// process came back (shard::ShardedCluster::restart_shard). Must run
  /// on the cluster's executor thread.
  void reconnect_clients();

  /// History recorded by the synchronous helpers (checker input).
  checker::HistoryRecorder& recorder() { return recorder_; }

  /// Synchronous write at client i; returns the operation timestamp, or 0
  /// if the operation did not complete within `step_budget` events.
  /// Simulation-only (drives the scheduler; see sched()).
  Timestamp write(ClientId i, std::string_view value, std::size_t step_budget = 1'000'000);

  /// Synchronous read of register j at client i. `completed`, if given,
  /// reports whether the operation finished (⊥ is a legal return value,
  /// so the value alone cannot tell). Simulation-only.
  ustor::Value read(ClientId i, ClientId j, bool* completed = nullptr,
                    std::size_t step_budget = 1'000'000);

  /// Advances virtual time by `d`, processing everything due in between.
  /// Under an external scheduler this advances every co-scheduled
  /// cluster. Simulation-only.
  void run_for(sim::Time d) { sched().run_until(sched().now() + d); }

  bool any_failed() const;
  bool all_failed() const;

 private:
  const ClusterConfig config_;
  std::unique_ptr<sim::Scheduler> owned_sched_;  // null when external
  exec::Executor* const exec_;
  sim::Scheduler* const sim_;  // exec_ if it is a simulator, else null
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::Mailbox> mail_;
  std::shared_ptr<const crypto::SignatureScheme> sigs_;
  std::unique_ptr<ustor::Server> server_;
  std::unique_ptr<storage::PersistentServer> pserver_;  // durable mode
  std::unique_ptr<cache::CacheNode> cache_node_;        // D8 (may be null)
  std::vector<std::unique_ptr<FaustClient>> clients_;
  checker::HistoryRecorder recorder_;
};

}  // namespace faust
