#include "kvstore/kv_client.h"

#include <memory>
#include <utility>

#include "wire/encoder.h"

namespace faust::kv {

Bytes encode_map(const std::map<std::string, std::pair<std::string, std::uint64_t>>& m) {
  wire::Writer w;
  w.put_u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [key, entry] : m) {
    w.put_bytes(to_bytes(key));
    w.put_bytes(to_bytes(entry.first));
    w.put_u64(entry.second);
  }
  return w.take();
}

std::optional<std::map<std::string, std::pair<std::string, std::uint64_t>>> decode_map(
    BytesView data) {
  wire::Reader r(data);
  const std::uint32_t count = r.get_u32();
  if (!r.ok() || count > (1u << 20)) return std::nullopt;
  std::map<std::string, std::pair<std::string, std::uint64_t>> m;
  for (std::uint32_t k = 0; k < count && r.ok(); ++k) {
    const std::string key = to_string(r.get_bytes());
    const std::string value = to_string(r.get_bytes());
    const std::uint64_t seq = r.get_u64();
    m[key] = {value, seq};
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

KvClient::KvClient(FaustClient& faust) : faust_(faust) {}

void KvClient::put(std::string key, std::string value, PutHandler done) {
  own_[std::move(key)] = {std::move(value), ++put_seq_};
  publish(std::move(done));
}

void KvClient::erase(const std::string& key, PutHandler done) {
  own_.erase(key);
  ++put_seq_;  // keeps (seq, writer) strictly advancing across publications
  publish(std::move(done));
}

void KvClient::publish(PutHandler done) {
  faust_.write(encode_map(own_), [done = std::move(done)](Timestamp t) {
    if (done) done(t);
  });
}

void KvClient::snapshot(std::function<void(std::map<std::string, KvEntry>)> done) {
  // Read all n partitions sequentially (the FAUST client runs one op at a
  // time anyway), merging as results arrive.
  auto merged = std::make_shared<std::map<std::string, KvEntry>>();
  auto done_ptr =
      std::make_shared<std::function<void(std::map<std::string, KvEntry>)>>(std::move(done));
  read_partition(1, merged, done_ptr);
}

void KvClient::read_partition(
    ClientId j, std::shared_ptr<std::map<std::string, KvEntry>> merged,
    std::shared_ptr<std::function<void(std::map<std::string, KvEntry>)>> done) {
  if (j > faust_.n()) {
    (*done)(std::move(*merged));
    return;
  }
  faust_.read(j, [this, j, merged, done](const ustor::Value& v, Timestamp) {
    if (v.has_value()) {
      if (const auto part = decode_map(*v)) {
        for (const auto& [key, entry] : *part) {
          const auto it = merged->find(key);
          // Winner: lexicographically largest (seq, writer).
          if (it == merged->end() || entry.second > it->second.seq ||
              (entry.second == it->second.seq && j > it->second.writer)) {
            (*merged)[key] = KvEntry{entry.first, j, entry.second};
          }
        }
      }
    }
    read_partition(j + 1, merged, done);
  });
}

void KvClient::get(const std::string& key, GetHandler done) {
  snapshot([key, done = std::move(done)](std::map<std::string, KvEntry> merged) {
    auto it = merged.find(key);
    if (it == merged.end()) {
      done(std::nullopt);
    } else {
      done(std::move(it->second));
    }
  });
}

void KvClient::list(ListHandler done) {
  snapshot([done = std::move(done)](std::map<std::string, KvEntry> merged) { done(merged); });
}

}  // namespace faust::kv
