#include "kvstore/kv_client.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "wire/encoder.h"

namespace faust::kv {

Bytes encode_map(const std::map<std::string, std::pair<std::string, std::uint64_t>>& m) {
  wire::Writer w;
  w.put_u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [key, entry] : m) {
    w.put_bytes(to_bytes(key));
    w.put_bytes(to_bytes(entry.first));
    w.put_u64(entry.second);
  }
  return w.take();
}

std::optional<std::map<std::string, std::pair<std::string, std::uint64_t>>> decode_map(
    BytesView data) {
  wire::Reader r(data);
  const std::uint32_t count = r.get_u32();
  if (!r.ok() || count > (1u << 20)) return std::nullopt;
  std::map<std::string, std::pair<std::string, std::uint64_t>> m;
  for (std::uint32_t k = 0; k < count && r.ok(); ++k) {
    std::string key = to_string(r.get_bytes_view());
    std::string value = to_string(r.get_bytes_view());
    const std::uint64_t seq = r.get_u64();
    if (!r.ok()) return std::nullopt;
    // Canonical form: encode_map emits keys in strictly ascending order, so
    // any other order (or a duplicate) is a forgery, not a partition.
    if (!m.empty() && key <= m.rbegin()->first) return std::nullopt;
    m.emplace_hint(m.end(), std::move(key), std::pair{std::move(value), seq});
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

KvClient::KvClient(FaustClient& faust) : faust_(faust) {}

void KvClient::put(std::string key, std::string value, PutHandler done) {
  own_[std::move(key)] = {std::move(value), ++put_seq_};
  publish(std::move(done));
}

void KvClient::erase(const std::string& key, PutHandler done) {
  if (own_.erase(key) == 0) {
    // The key was never in this client's partition: republishing would
    // re-sign the identical map for nothing. Complete immediately with 0
    // ("no register write was needed").
    if (done) done(0);
    return;
  }
  ++put_seq_;  // keeps (seq, writer) strictly advancing across publications
  publish(std::move(done));
}

void KvClient::apply_with_seqs(const std::vector<SeqChange>& changes, PutHandler done) {
  bool any = false;
  for (const auto& change : changes) {
    if (change.seq == 0) continue;  // caller-marked no-op
    if (change.value.has_value()) {
      own_[change.key] = {*change.value, change.seq};
    } else {
      own_.erase(change.key);
    }
    put_seq_ = std::max(put_seq_, change.seq);
    any = true;
  }
  if (!any) {
    if (done) done(0);
    return;
  }
  publish(std::move(done));
}

void KvClient::publish(PutHandler done) {
  faust_.write(encode_map(own_), [done = std::move(done)](Timestamp t) {
    if (done) done(t);
  });
}

void KvClient::snapshot(std::function<void(std::map<std::string, KvEntry>, Timestamp)> done) {
  // Read all n partitions sequentially (the FAUST client runs one op at a
  // time anyway), merging as results arrive.
  auto snap = std::make_shared<Snapshot>();
  snap->done = std::move(done);
  read_partition(1, std::move(snap));
}

void KvClient::read_partition(ClientId j, std::shared_ptr<Snapshot> snap) {
  if (j > faust_.n()) {
    last_snapshot_ts_ = snap->max_read_ts;
    snap->done(std::move(snap->merged), snap->max_read_ts);
    return;
  }
  faust_.read(j, [this, j, snap](const ustor::Value& v, Timestamp t) {
    snap->max_read_ts = std::max(snap->max_read_ts, t);
    if (v.has_value()) {
      if (const auto part = decode_map(*v)) {
        for (const auto& [key, entry] : *part) {
          const auto it = snap->merged.find(key);
          // Winner: lexicographically largest (seq, writer).
          if (it == snap->merged.end() || entry.second > it->second.seq ||
              (entry.second == it->second.seq && j > it->second.writer)) {
            snap->merged[key] = KvEntry{entry.first, j, entry.second};
          }
        }
      }
    }
    read_partition(j + 1, snap);
  });
}

void KvClient::get(const std::string& key, GetHandler done) {
  snapshot([key, done = std::move(done)](std::map<std::string, KvEntry> merged, Timestamp ts) {
    auto it = merged.find(key);
    if (it == merged.end()) {
      done(std::nullopt, ts);
    } else {
      done(std::move(it->second), ts);
    }
  });
}

void KvClient::list(ListHandler done) {
  snapshot([done = std::move(done)](std::map<std::string, KvEntry> merged, Timestamp ts) {
    done(merged, ts);
  });
}

}  // namespace faust::kv
