#include "kvstore/kv_client.h"

#include <cstring>
#include <memory>
#include <utility>

#include "common/check.h"
#include "wire/encoder.h"

namespace faust::kv {
namespace {

// Entry wire layout (matching wire::Writer: LE integers, length-prefixed
// byte strings): u32 klen | key | u32 vlen | value | u64 seq. The buffer
// opens with a u32 entry count. Fixed per-entry overhead:
constexpr std::size_t kEntryFixed = 4 + 4 + 8;
constexpr std::size_t kHeaderSize = 4;

std::size_t entry_size(const PartitionEntry& e) {
  return kEntryFixed + e.key.size() + e.value.size();
}

void write_u32_at(Bytes& b, std::size_t off, std::uint32_t v) {
  b[off] = static_cast<std::uint8_t>(v);
  b[off + 1] = static_cast<std::uint8_t>(v >> 8);
  b[off + 2] = static_cast<std::uint8_t>(v >> 16);
  b[off + 3] = static_cast<std::uint8_t>(v >> 24);
}

void write_u64_at(Bytes& b, std::size_t off, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) b[off + static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(v >> (8 * k));
}

/// Writes one entry's bytes at `off` (the space must already exist).
void write_entry_at(Bytes& b, std::size_t off, const PartitionEntry& e) {
  write_u32_at(b, off, static_cast<std::uint32_t>(e.key.size()));
  off += 4;
  std::memcpy(b.data() + off, e.key.data(), e.key.size());
  off += e.key.size();
  write_u32_at(b, off, static_cast<std::uint32_t>(e.value.size()));
  off += 4;
  std::memcpy(b.data() + off, e.value.data(), e.value.size());
  off += e.value.size();
  write_u64_at(b, off, e.seq);
}

Partition::iterator lower_bound_key(Partition& p, std::string_view key) {
  return std::lower_bound(p.begin(), p.end(), key,
                          [](const PartitionEntry& e, std::string_view k) { return e.key < k; });
}

}  // namespace

Bytes encode_partition(const Partition& p) {
  std::size_t total = kHeaderSize;
  for (const PartitionEntry& e : p) total += entry_size(e);
  Bytes out;
  out.resize(total);
  write_u32_at(out, 0, static_cast<std::uint32_t>(p.size()));
  std::size_t off = kHeaderSize;
  for (const PartitionEntry& e : p) {
    write_entry_at(out, off, e);
    off += entry_size(e);
  }
  return out;
}

std::optional<Partition> decode_partition(BytesView data) {
  wire::Reader r(data);
  const std::uint32_t count = r.get_u32();
  if (!r.ok() || count > (1u << 20)) return std::nullopt;
  Partition p;
  // Reserve against the structural bound, not the untrusted header: every
  // real entry occupies at least kEntryFixed bytes, so a short forged
  // buffer claiming 2^20 entries cannot force a large allocation.
  p.reserve(std::min<std::size_t>(count, r.remaining() / kEntryFixed + 1));
  for (std::uint32_t k = 0; k < count && r.ok(); ++k) {
    PartitionEntry e;
    e.key = to_string(r.get_bytes_view());
    e.value = to_string(r.get_bytes_view());
    e.seq = r.get_u64();
    if (!r.ok()) return std::nullopt;
    // Canonical form: encode_partition emits keys in strictly ascending
    // order, so any other order (or a duplicate) is a forgery.
    if (!p.empty() && e.key <= p.back().key) return std::nullopt;
    p.push_back(std::move(e));
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return p;
}

Bytes encode_map(const std::map<std::string, std::pair<std::string, std::uint64_t>>& m) {
  Partition p;
  p.reserve(m.size());
  for (const auto& [key, entry] : m) p.push_back(PartitionEntry{key, entry.first, entry.second});
  return encode_partition(p);
}

std::optional<std::map<std::string, std::pair<std::string, std::uint64_t>>> decode_map(
    BytesView data) {
  const auto p = decode_partition(data);
  if (!p.has_value()) return std::nullopt;
  std::map<std::string, std::pair<std::string, std::uint64_t>> m;
  for (const PartitionEntry& e : *p) {
    m.emplace_hint(m.end(), e.key, std::pair{e.value, e.seq});
  }
  return m;
}

KvClient::KvClient(FaustClient& faust, KvTuning tuning)
    : faust_(faust),
      tuning_(tuning),
      part_memo_(static_cast<std::size_t>(faust.n())) {}

bool KvClient::owns_key(std::string_view key) const {
  const auto it = std::lower_bound(
      own_.begin(), own_.end(), key,
      [](const PartitionEntry& e, std::string_view k) { return e.key < k; });
  return it != own_.end() && it->key == key;
}

BytesView KvClient::encoded_partition() {
  if (!enc_valid_) rebuild_encoding();
  return BytesView(*enc_);
}

Bytes& KvClient::mutable_enc() {
  // An in-flight publication may still share the buffer (FaustClient
  // queues ops); clone before patching so its bytes stay frozen.
  if (enc_.use_count() > 1) enc_ = std::make_shared<Bytes>(*enc_);
  return *enc_;
}

void KvClient::log_splice(std::size_t offset, std::size_t erase_len, BytesView insert) {
  if (!splice_log_valid_) return;
  pending_splices_.push_back(
      ustor::Splice{offset, erase_len, Bytes(insert.begin(), insert.end())});
}

void KvClient::rebuild_encoding() {
  enc_ = std::make_shared<Bytes>(encode_partition(own_));
  // Splice offsets referred to the discarded buffer; the next publish
  // ships the full encoding and reseeds the log.
  pending_splices_.clear();
  splice_log_valid_ = false;
  enc_off_.clear();
  enc_off_.reserve(own_.size());
  std::size_t off = kHeaderSize;
  for (const PartitionEntry& e : own_) {
    enc_off_.push_back(off);
    off += entry_size(e);
  }
  if (chunked()) enc_hasher_.reset(BytesView(*enc_));
  enc_valid_ = true;
  ++encode_rebuilds_;
}

void KvClient::splice_replace(std::size_t idx) {
  Bytes& b = mutable_enc();
  const std::size_t off = enc_off_[idx];
  const std::size_t old_end = idx + 1 < enc_off_.size() ? enc_off_[idx + 1] : b.size();
  const std::size_t old_sz = old_end - off;
  const std::size_t new_sz = entry_size(own_[idx]);
  if (new_sz > old_sz) {
    b.insert(b.begin() + static_cast<std::ptrdiff_t>(off), new_sz - old_sz, 0);
  } else if (new_sz < old_sz) {
    b.erase(b.begin() + static_cast<std::ptrdiff_t>(off),
            b.begin() + static_cast<std::ptrdiff_t>(off + (old_sz - new_sz)));
  }
  write_entry_at(b, off, own_[idx]);
  if (new_sz != old_sz) {
    const std::ptrdiff_t delta =
        static_cast<std::ptrdiff_t>(new_sz) - static_cast<std::ptrdiff_t>(old_sz);
    for (std::size_t i = idx + 1; i < enc_off_.size(); ++i) {
      enc_off_[i] = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(enc_off_[i]) + delta);
    }
  }
  if (chunked()) {
    // Same-size edits dirty only the entry's chunks; a resize shifts the
    // whole tail (the tree handles the length change internally).
    enc_hasher_.update(BytesView(b),
                       crypto::ChunkedHasher::ByteRange{off, new_sz == old_sz ? off + new_sz
                                                                              : b.size()});
  }
  log_splice(off, old_sz, BytesView(b.data() + off, new_sz));
  ++encode_splices_;
}

void KvClient::splice_insert(std::size_t idx) {
  Bytes& b = mutable_enc();
  const std::size_t off = idx < enc_off_.size() ? enc_off_[idx] : b.size();
  const std::size_t sz = entry_size(own_[idx]);
  b.insert(b.begin() + static_cast<std::ptrdiff_t>(off), sz, 0);
  write_entry_at(b, off, own_[idx]);
  write_u32_at(b, 0, static_cast<std::uint32_t>(own_.size()));
  enc_off_.insert(enc_off_.begin() + static_cast<std::ptrdiff_t>(idx), off);
  for (std::size_t i = idx + 1; i < enc_off_.size(); ++i) enc_off_[i] += sz;
  if (chunked()) {
    enc_hasher_.update(BytesView(b), {crypto::ChunkedHasher::ByteRange{0, kHeaderSize},
                                      crypto::ChunkedHasher::ByteRange{off, b.size()}});
  }
  log_splice(off, 0, BytesView(b.data() + off, sz));
  log_splice(0, kHeaderSize, BytesView(b.data(), kHeaderSize));
  ++encode_splices_;
}

void KvClient::splice_erase(std::size_t idx, std::size_t old_size) {
  Bytes& b = mutable_enc();
  const std::size_t off = enc_off_[idx];
  b.erase(b.begin() + static_cast<std::ptrdiff_t>(off),
          b.begin() + static_cast<std::ptrdiff_t>(off + old_size));
  write_u32_at(b, 0, static_cast<std::uint32_t>(own_.size()));
  enc_off_.erase(enc_off_.begin() + static_cast<std::ptrdiff_t>(idx));
  for (std::size_t i = idx; i < enc_off_.size(); ++i) enc_off_[i] -= old_size;
  if (chunked()) {
    enc_hasher_.update(BytesView(b), {crypto::ChunkedHasher::ByteRange{0, kHeaderSize},
                                      crypto::ChunkedHasher::ByteRange{off, b.size()}});
  }
  log_splice(off, old_size, BytesView());
  log_splice(0, kHeaderSize, BytesView(b.data(), kHeaderSize));
  ++encode_splices_;
}

bool KvClient::apply_change(const std::string& key, std::optional<std::string> value,
                            std::uint64_t seq) {
  const bool incremental = tuning_.incremental_encode && enc_valid_;
  auto it = lower_bound_key(own_, key);
  const bool found = it != own_.end() && it->key == key;
  const std::size_t idx = static_cast<std::size_t>(it - own_.begin());
  if (value.has_value()) {
    if (found) {
      it->value = std::move(*value);
      it->seq = seq;
      if (incremental) {
        splice_replace(idx);
      } else {
        enc_valid_ = false;
      }
    } else {
      own_.insert(it, PartitionEntry{key, std::move(*value), seq});
      if (incremental) {
        splice_insert(idx);
      } else {
        enc_valid_ = false;
      }
    }
    return true;
  }
  if (!found) return false;
  const std::size_t old_size = entry_size(*it);
  own_.erase(it);
  if (incremental) {
    splice_erase(idx, old_size);
  } else {
    enc_valid_ = false;
  }
  return true;
}

void KvClient::put(std::string key, std::string value, PutHandler done) {
  apply_change(key, std::move(value), ++put_seq_);
  publish(std::move(done));
}

void KvClient::erase(const std::string& key, PutHandler done) {
  if (!owns_key(key)) {
    // The key was never in this client's partition: republishing would
    // re-sign the identical map for nothing. Complete immediately with 0
    // ("no register write was needed").
    if (done) done(0);
    return;
  }
  ++put_seq_;  // keeps (seq, writer) strictly advancing across publications
  apply_change(key, std::nullopt, 0);
  publish(std::move(done));
}

void KvClient::apply_with_seqs(const std::vector<SeqChange>& changes, PutHandler done) {
  bool any = false;
  for (const auto& change : changes) {
    if (change.seq == 0) continue;  // caller-marked no-op
    apply_change(change.key, change.value, change.seq);
    put_seq_ = std::max(put_seq_, change.seq);
    any = true;
  }
  if (!any) {
    if (done) done(0);
    return;
  }
  publish(std::move(done));
}

void KvClient::publish(PutHandler done) {
  if (!enc_valid_) rebuild_encoding();
  std::optional<crypto::Hash> digest;
  if (chunked()) digest = enc_hasher_.root();

  // D8 writer push fill: once the register write completes, hand the
  // cache this publication's self-certifying tuple — the exact wire δ
  // (faust_.last_write_sig()) over the exact published bytes (the shared
  // encoding, pinned by the captured shared_ptr: a later splice clones
  // before mutating while it is still referenced). Wrapping `done` keeps
  // every publish path (delta and full) covered.
  if (cache_ != nullptr) {
    const crypto::Hash fill_digest =
        digest.has_value()
            ? *digest
            : ustor::value_digest(ustor::DigestMode::kFlat, BytesView(*enc_));
    done = [this, enc = enc_, fill_digest, done = std::move(done)](Timestamp t) {
      if (t != 0 && cache_ != nullptr) {
        cache::FillSection fill;
        fill.writer = faust_.id();
        fill.present = true;
        fill.writer_ts = t;
        fill.digest = fill_digest;
        const BytesView sig = faust_.last_write_sig();
        fill.sig.assign(sig.begin(), sig.end());
        fill.value = *enc;
        fill.as_of = t;
        ++cache_push_fills_;
        std::vector<cache::FillSection> fills;
        fills.push_back(std::move(fill));
        cache_->fill(std::move(fills));
      }
      if (done) done(t);
    };
  }

  // D6: ship the logged splices instead of the encoding when that is
  // actually smaller. The first publication is always full (it seeds the
  // server's base and the verifiers' chunk trees); after that, per-op
  // bytes track the change set.
  if (faust_.deltas_active() && digest.has_value() && published_ > 0 && splice_log_valid_ &&
      !pending_splices_.empty()) {
    std::size_t delta_bytes = 0;
    for (const ustor::Splice& s : pending_splices_) delta_bytes += 20 + s.insert.size();
    if (delta_bytes < enc_->size()) {
      ++publish_deltas_;
      ++published_;
      const crypto::Hash new_root = *digest;
      std::vector<ustor::Splice> splices = std::move(pending_splices_);
      pending_splices_.clear();
      const crypto::Hash base = last_pub_root_;
      last_pub_root_ = new_root;
      faust_.write_delta(base, new_root, enc_->size(), std::move(splices),
                         [done = std::move(done)](Timestamp t) {
                           if (done) done(t);
                         });
      return;
    }
  }

  ++publish_fulls_;
  ++published_;
  pending_splices_.clear();
  if (digest.has_value()) {
    last_pub_root_ = *digest;
    // From this full publication on, incremental splices can be logged
    // against a server-known base.
    splice_log_valid_ = faust_.deltas_active();
  } else {
    splice_log_valid_ = false;
  }
  // The buffer itself is shared with the write (zero-copy down to the
  // wire encoding); the next splice clones it iff it is still in flight.
  faust_.write_shared(enc_, digest, [done = std::move(done)](Timestamp t) {
    if (done) done(t);
  });
}

void KvClient::snapshot(
    std::function<void(const std::map<std::string, KvEntry>&, Timestamp, const ReadOrigin&)>
        done,
    bool bypass_cache) {
  // Read all n partitions sequentially (the FAUST client runs one op at a
  // time anyway), folding each result as it arrives.
  auto snap = std::make_shared<Snapshot>();
  const std::size_t n = static_cast<std::size_t>(faust_.n());
  snap->parts.resize(n);
  snap->fps.resize(n);
  snap->resolved.assign(n, false);
  snap->done = std::move(done);
  ++snapshots_total_;
  if (cache_ != nullptr && !bypass_cache) {
    // D8: one bulk verified lookup first; the engine fallback below only
    // touches the registers the cache could not serve. Bases advertise
    // this client's own verified decode memos, enabling the O(1)
    // "unchanged" token and arming the bogus-negative rejection.
    snap->tried_cache = true;
    std::vector<cache::CacheClient::Base> bases(n);
    if (tuning_.decode_memo) {
      for (std::size_t slot = 0; slot < n; ++slot) {
        const PartMemo& memo = part_memo_[slot];
        if (memo.part) bases[slot] = cache::CacheClient::Base{true, memo.fp.digest};
      }
    }
    cache_->lookup(std::move(bases), [this, snap](const cache::CacheClient::Result& res) {
      consume_cache_result(snap, res.sections);
    });
    return;
  }
  read_partition(1, std::move(snap));
}

void KvClient::consume_cache_result(const std::shared_ptr<Snapshot>& snap,
                                    const std::vector<cache::CacheClient::Section>& sections) {
  fold_cache_sections(snap, sections);
  read_partition(1, snap);
}

void KvClient::fold_cache_sections(const std::shared_ptr<Snapshot>& snap,
                                   const std::vector<cache::CacheClient::Section>& sections) {
  const std::size_t n = static_cast<std::size_t>(faust_.n());
  FAUST_CHECK(sections.size() == n);  // CacheClient always delivers n
  const auto fold_as_of = [&](Timestamp as_of) {
    snap->cache_as_of = snap->any_cached ? std::min(snap->cache_as_of, as_of) : as_of;
    snap->any_cached = true;
  };
  for (std::size_t slot = 0; slot < n; ++slot) {
    const cache::CacheClient::Section& sec = sections[slot];
    switch (sec.outcome) {
      case cache::Outcome::kServed: {
        // Verified full value: same trust level as a register read that
        // passed the DATA check, so it feeds the decode memo too.
        const PartFp fp{true, sec.digest};
        auto decoded = decode_partition(sec.value);
        auto part = std::make_shared<const Partition>(
            decoded.has_value() ? std::move(*decoded) : Partition{});
        snap->fps[slot] = fp;
        snap->parts[slot] = part;
        if (tuning_.decode_memo) {
          PartMemo& memo = part_memo_[slot];
          memo.fp = fp;
          memo.part = std::move(part);
        }
        snap->resolved[slot] = true;
        ++regs_cache_served_;
        fold_as_of(sec.as_of);
        break;
      }
      case cache::Outcome::kUnchanged: {
        // "Digest equals your advertised base": replay the memo the base
        // came from. The memo can only have moved on if a concurrent
        // snapshot refreshed it meanwhile — then fall through to an
        // engine read rather than serve content we no longer hold.
        const PartMemo& memo = part_memo_[slot];
        if (memo.part && memo.fp.digest == sec.digest) {
          snap->fps[slot] = memo.fp;
          snap->parts[slot] = memo.part;
          snap->resolved[slot] = true;
          ++regs_cache_served_;
          ++decode_memo_hits_;
          fold_as_of(sec.as_of);
        }
        break;
      }
      case cache::Outcome::kNegative: {
        // Plausible never-written claim (the CacheClient already rejected
        // it if our own memo refutes it): the slot merges as ⊥.
        snap->resolved[slot] = true;
        ++regs_cache_served_;
        fold_as_of(sec.as_of);
        break;
      }
      case cache::Outcome::kMiss:
      case cache::Outcome::kRejected:
        break;  // engine fallback reads this slot
    }
  }
}

void KvClient::snapshot_degraded(DegradedHandler done) {
  if (cache_ == nullptr) {
    // No cache tier wired: a degraded read has nowhere to go.
    done(nullptr, 0, ReadOrigin{});
    return;
  }
  auto snap = std::make_shared<Snapshot>();
  const std::size_t n = static_cast<std::size_t>(faust_.n());
  snap->parts.resize(n);
  snap->fps.resize(n);
  snap->resolved.assign(n, false);
  snap->tried_cache = true;
  ++snapshots_total_;
  ++degraded_snapshots_;
  std::vector<cache::CacheClient::Base> bases(n);
  if (tuning_.decode_memo) {
    for (std::size_t slot = 0; slot < n; ++slot) {
      const PartMemo& memo = part_memo_[slot];
      if (memo.part) bases[slot] = cache::CacheClient::Base{true, memo.fp.digest};
    }
  }
  cache_->lookup(
      std::move(bases),
      [this, snap, done = std::move(done)](const cache::CacheClient::Result& res) mutable {
        fold_cache_sections(snap, res.sections);
        for (std::size_t slot = 0; slot < snap->resolved.size(); ++slot) {
          if (!snap->resolved[slot]) {
            // A register the cache could not serve: the snapshot would be
            // silently partial — fail it whole instead (kUnavailable up
            // the stack), never mix stale slots with fabricated ⊥s.
            ++degraded_unavailable_;
            done(nullptr, 0, ReadOrigin{});
            return;
          }
        }
        snap->done = [done = std::move(done)](const std::map<std::string, KvEntry>& merged,
                                              Timestamp ts, const ReadOrigin& origin) {
          done(&merged, ts, origin);
        };
        // No engine read ran (max_read_ts == 0, no fills owed): the
        // shared finisher merges, reports ts = the cache freshness
        // horizon, and leaves the stability anchor untouched.
        finish_snapshot(snap);
      },
      /*allow_stale=*/true);
}

void KvClient::read_partition(ClientId j, std::shared_ptr<Snapshot> snap) {
  while (j <= faust_.n() &&
         snap->resolved[static_cast<std::size_t>(j - 1)]) {
    ++j;  // cache-resolved: no engine read, no fill owed
  }
  if (j > faust_.n()) {
    finish_snapshot(snap);
    return;
  }
  faust_.read_ex(j, [this, j, snap](const ustor::Value& v, Timestamp t, const ReadMeta& meta) {
    snap->max_read_ts = std::max(snap->max_read_ts, t);
    ++regs_engine_read_;
    if (snap->tried_cache) {
      // Read-through fill: hand the cache exactly what this verified
      // fallback read returned — the self-certifying tuple for a present
      // register, a negative entry for ⊥ (both stamped with the read's
      // timestamp as the freshness horizon).
      cache::FillSection fill;
      fill.writer = j;
      fill.as_of = t;
      if (v.has_value()) {
        fill.present = true;
        fill.writer_ts = meta.writer_ts;
        fill.digest = meta.value_digest;
        fill.sig.assign(meta.data_sig.begin(), meta.data_sig.end());
        fill.value = *v;
      }
      snap->fills.push_back(std::move(fill));
    }
    if (v.has_value()) {
      const std::size_t slot = static_cast<std::size_t>(j - 1);
      const PartFp fp{true, meta.value_digest};
      snap->fps[slot] = fp;
      PartMemo& memo = part_memo_[slot];
      if (tuning_.decode_memo && memo.part && memo.fp == fp) {
        // The verified triple matches a previous decode of byte-identical
        // content (digest collision resistance): replay it. A tampered
        // value never gets here — it already failed the DATA-signature
        // check inside the FAUST/USTOR layer and halted the client.
        ++decode_memo_hits_;
        snap->parts[slot] = memo.part;
      } else {
        ++decode_memo_misses_;
        auto decoded = decode_partition(*v);
        // A signed-but-undecodable buffer cannot come from a correct
        // writer; treat it as an empty partition (the pre-memo behaviour
        // skipped it identically).
        auto part = std::make_shared<const Partition>(decoded.has_value() ? std::move(*decoded)
                                                                          : Partition{});
        snap->parts[slot] = part;
        if (tuning_.decode_memo) {
          memo.fp = fp;
          memo.part = std::move(part);
        }
      }
    }
    read_partition(j + 1, snap);
  });
}

void KvClient::finish_snapshot(const std::shared_ptr<Snapshot>& snap) {
  // Only engine reads advance the stability anchor: a fully cache-served
  // snapshot observed no register read, so it neither advances nor resets
  // what the stability cut is measured against.
  if (snap->max_read_ts > 0) last_snapshot_ts_ = snap->max_read_ts;
  if (cache_ != nullptr && snap->tried_cache && !snap->fills.empty()) {
    ++cache_fill_batches_;
    cache_->fill(std::move(snap->fills));
  }
  ReadOrigin origin;
  origin.cached = snap->any_cached;
  origin.as_of = snap->any_cached ? snap->cache_as_of : 0;
  // Engine-read snapshots report the largest register-read timestamp (the
  // stability anchor); a zero-engine-read snapshot reports the cache
  // freshness horizon instead (see GetExHandler).
  const Timestamp ts = snap->max_read_ts > 0 ? snap->max_read_ts : origin.as_of;
  if (snap->tried_cache && snap->max_read_ts == 0) ++snapshots_cached_;
  if (tuning_.decode_memo && merged_cache_ && snap->fps == merged_fps_) {
    // Every register returned the same verified content the cached merge
    // was built from: serve it without merging (the read-heavy steady
    // state of a get).
    ++merged_cache_hits_;
    const auto cache = merged_cache_;  // pin across the user callback
    snap->done(*cache, ts, origin);
    return;
  }
  auto merged = std::make_shared<std::map<std::string, KvEntry>>();
  for (std::size_t slot = 0; slot < snap->parts.size(); ++slot) {
    if (!snap->parts[slot]) continue;
    const ClientId j = static_cast<ClientId>(slot + 1);
    for (const PartitionEntry& e : *snap->parts[slot]) {
      auto [it, inserted] = merged->try_emplace(e.key);
      // Winner: lexicographically largest (seq, writer).
      if (inserted || e.seq > it->second.seq ||
          (e.seq == it->second.seq && j > it->second.writer)) {
        it->second = KvEntry{e.value, j, e.seq};
      }
    }
  }
  if (tuning_.decode_memo) {
    merged_cache_ = merged;
    merged_fps_ = snap->fps;
  }
  snap->done(*merged, ts, origin);
}

void KvClient::get(const std::string& key, GetHandler done) {
  get_ex(key, /*bypass_cache=*/false,
         [done = std::move(done)](std::optional<KvEntry> entry, Timestamp ts,
                                  const ReadOrigin&) { done(std::move(entry), ts); });
}

void KvClient::list(ListHandler done) {
  list_ex(/*bypass_cache=*/false,
          [done = std::move(done)](const std::map<std::string, KvEntry>& merged, Timestamp ts,
                                   const ReadOrigin&) { done(merged, ts); });
}

void KvClient::get_ex(const std::string& key, bool bypass_cache, GetExHandler done) {
  snapshot(
      [key, done = std::move(done)](const std::map<std::string, KvEntry>& merged, Timestamp ts,
                                    const ReadOrigin& origin) {
        const auto it = merged.find(key);
        if (it == merged.end()) {
          done(std::nullopt, ts, origin);
        } else {
          done(it->second, ts, origin);
        }
      },
      bypass_cache);
}

void KvClient::list_ex(bool bypass_cache, ListExHandler done) {
  snapshot(
      [done = std::move(done)](const std::map<std::string, KvEntry>& merged, Timestamp ts,
                               const ReadOrigin& origin) { done(merged, ts, origin); },
      bypass_cache);
}

}  // namespace faust::kv
