// A multi-writer key-value store layered on FAUST's single-writer
// registers — the same move SUNDR uses to build a filesystem over
// per-principal blocks, and a template for the "variety of additional
// services" the paper's conclusion envisions.
//
// Layout: client C_i serializes its private map key → (value, seq) into
// its own register X_i on every put (seq is C_i's put counter). A get(k)
// reads all n registers and merges: the winning entry for k is the one
// with the lexicographically largest (seq, writer) pair. The merge is
// deterministic, so any two clients with consistent registers agree on
// every key — and FAUST's stability cut therefore applies verbatim to KV
// state: once the underlying register writes are stable, so is the merged
// view. All fail-aware semantics (fail_i, stability, causality) are
// inherited from the FAUST layer for free.
//
// O(change) engineering (PERF.md "O(change) operations"): per-op cost
// tracks the CHANGE SET, not the keyspace. A put patches the single
// affected entry's bytes in the kept canonical encoding (the sorted-key
// format makes splice offsets computable) and, under chunked DATA
// digests, re-hashes only the touched chunks; a get whose registers
// return unchanged verified (writer, timestamp, digest) triples skips
// decoding — and when EVERY register is unchanged, the whole merge — via
// version-keyed memos. KvTuning::{incremental_encode, decode_memo} force
// the legacy full-reencode/full-decode paths for differential comparison;
// published bytes and merged views are identical in both modes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cache/cache_client.h"
#include "crypto/chunked_hasher.h"
#include "faust/faust_client.h"

namespace faust::kv {

/// Provenance of a merged snapshot (D8 edge cache): whether any register
/// was served by the cache instead of a FAUST register read, and the
/// freshness horizon of the cache-served portion. A purely engine-read
/// snapshot has cached=false and as_of=0.
struct ReadOrigin {
  /// At least one register came from the edge cache (verified, possibly
  /// stale — see as_of).
  bool cached = false;
  /// Smallest fill-time FAUST timestamp over the cache-served registers:
  /// every cached section was verified by its filler at or after this
  /// timestamp. 0 when nothing was cache-served. Advisory as a freshness
  /// claim (an untrusted cache can under-report age, never forge content).
  Timestamp as_of = 0;
};

/// One key's winning entry, with its provenance.
struct KvEntry {
  std::string value;
  ClientId writer = 0;       // who wrote the winning value
  std::uint64_t seq = 0;     // the writer's put counter at that put
};

inline bool operator==(const KvEntry& a, const KvEntry& b) {
  return a.value == b.value && a.writer == b.writer && a.seq == b.seq;
}

/// One entry of a writer's partition.
struct PartitionEntry {
  std::string key;
  std::string value;
  std::uint64_t seq = 0;

  bool operator==(const PartitionEntry&) const = default;
};

/// A decoded partition: entries in strictly ascending key order. A flat
/// sorted vector, not a tree — the wire format is already canonically
/// ordered, so decoding is an append loop plus an adjacency duplicate
/// check, and lookups are binary searches with no pointer chasing.
using Partition = std::vector<PartitionEntry>;

/// Serialization of a partition (canonical: ascending keys, unique).
Bytes encode_partition(const Partition& p);

/// Strict decode: nullopt on malformed bytes, out-of-order or duplicate
/// keys, or trailing garbage (any such buffer is a forgery, not a
/// partition — encode_partition never produces it).
std::optional<Partition> decode_partition(BytesView data);

/// Map-based conveniences over the same wire format (tests and models).
Bytes encode_map(const std::map<std::string, std::pair<std::string, std::uint64_t>>& m);
std::optional<std::map<std::string, std::pair<std::string, std::uint64_t>>> decode_map(
    BytesView data);

/// Performance knobs (NOT semantics: both settings of each produce
/// byte-identical publications and identical merged views — the
/// differential tests replay both). Defaults are the fast paths; the
/// legacy settings exist as the comparison baseline and escape hatch.
struct KvTuning {
  /// Patch the kept canonical encoding in place on each change (false:
  /// re-encode the whole partition on every publish, the pre-O(change)
  /// behaviour).
  bool incremental_encode = true;
  /// Cache decoded partitions per writer keyed by the VERIFIED (writer,
  /// timestamp, digest) triple, plus the merged view keyed by all n
  /// triples (false: re-decode and re-merge every snapshot).
  bool decode_memo = true;
};

/// Key-value facade over one FaustClient.
class KvClient {
 public:
  using PutHandler = std::function<void(Timestamp)>;
  /// `done(entry, read_ts)`: read_ts is the largest FAUST timestamp among
  /// the observing register reads — the snapshot is *stable* once the
  /// stability cut covers it (see last_snapshot_ts()).
  using GetHandler = std::function<void(std::optional<KvEntry>, Timestamp)>;
  using ListHandler = std::function<void(const std::map<std::string, KvEntry>&, Timestamp)>;
  /// Origin-extended variants: additionally deliver the snapshot's
  /// ReadOrigin (cache provenance + freshness horizon). For a snapshot
  /// with any cache-served register and NO engine read, the delivered
  /// read_ts is the freshness horizon (origin.as_of), not a register-read
  /// timestamp — stability claims only attach to engine-read snapshots.
  using GetExHandler =
      std::function<void(std::optional<KvEntry>, Timestamp, const ReadOrigin&)>;
  using ListExHandler =
      std::function<void(const std::map<std::string, KvEntry>&, Timestamp, const ReadOrigin&)>;

  /// Borrows `faust`; the caller keeps it alive. Multiple KvClients must
  /// not share one FaustClient. The DATA digest mode is read off the
  /// FaustClient's config (it is deployment-wide).
  explicit KvClient(FaustClient& faust, KvTuning tuning = {});

  /// Upserts key := value in this client's partition and publishes the
  /// whole partition to its register. `done` receives the register
  /// write's FAUST timestamp.
  void put(std::string key, std::string value, PutHandler done = {});

  /// Removes `key` from this client's partition (other writers' entries
  /// for the key survive and may win subsequent merges). When the key is
  /// not in this client's own partition the erase is a no-op: nothing is
  /// re-signed or republished and `done(0)` fires immediately — 0 marks
  /// "no register write was needed", not a failure.
  void erase(const std::string& key, PutHandler done = {});

  /// One batch change with its sequence number pre-drawn by the caller
  /// (api::Store draws tickets at plan time, in program order, so that a
  /// batch's winners are identical on every backend — see store.h).
  /// seq == 0 marks a no-op (an erase of a key the caller knows is
  /// absent): the change is skipped entirely.
  struct SeqChange {
    std::string key;
    std::optional<std::string> value;  // nullopt = erase
    std::uint64_t seq = 0;
  };

  /// Applies every change in order under its pre-drawn sequence number
  /// and publishes the partition ONCE (or not at all when every change is
  /// a no-op — `done(0)` then fires immediately). Conflict winners are
  /// exactly as if the changes had been individual put/erase calls with
  /// those sequence numbers; the intermediate register states are simply
  /// never materialized. This is the batching engine under
  /// api::Store::apply. The caller's sequence numbers must be fresh
  /// (larger than any this client used before); put_seq() advances past
  /// them.
  void apply_with_seqs(const std::vector<SeqChange>& changes, PutHandler done = {});

  /// Merged lookup across all n partitions (issues n register reads; an
  /// unchanged snapshot is served from the merged-view memo without
  /// decoding or copying anything).
  void get(const std::string& key, GetHandler done);

  /// Full merged snapshot across all partitions. The map reference is
  /// valid only for the duration of the callback.
  void list(ListHandler done);

  /// Like get/list, with cache control and provenance (see GetExHandler).
  /// `bypass_cache` forces every register through the FAUST engine even
  /// when a cache is attached — the authoritative path differential tests
  /// and oracles pin merged views with.
  void get_ex(const std::string& key, bool bypass_cache, GetExHandler done);
  void list_ex(bool bypass_cache, ListExHandler done);

  /// D10 degraded snapshot handler: `merged` is null when the cache could
  /// not serve EVERY register (the degraded read is unavailable, not
  /// silently partial); otherwise the map is valid only within the
  /// callback, `ts` is the cache freshness horizon and `origin.cached` is
  /// always true.
  using DegradedHandler =
      std::function<void(const std::map<std::string, KvEntry>*, Timestamp, const ReadOrigin&)>;

  /// Cache-ONLY merged snapshot for when the home shard is unreachable
  /// (DESIGN.md D10): one allow_stale bulk lookup — expired-but-held
  /// entries serve too — and NO engine fallback. Every register must
  /// resolve from the cache (verified value, unchanged token, or
  /// negative); any miss or rejection fails the whole snapshot with a
  /// null map. Never advances the stability anchor: the result is
  /// stale-but-authentic by contract, flagged via ReadOrigin.
  void snapshot_degraded(DegradedHandler done);

  /// Attaches the edge-cache hop (D8): subsequent snapshots first issue
  /// one bulk verified lookup through `c`, engine-read only the registers
  /// the cache could not serve (miss / verification failure), fill the
  /// cache with what those fallback reads returned, and push-fill this
  /// client's own register on every publish. `c` must outlive this client
  /// (or be detached with nullptr first); it must belong to the same
  /// deployment (same n, signature scheme and digest mode).
  void attach_cache(cache::CacheClient* c) { cache_ = c; }
  cache::CacheClient* attached_cache() const { return cache_; }

  /// This client's own pending partition (local, pre-publication view).
  const Partition& own_partition() const { return own_; }

  /// True iff `key` is in this client's own partition (binary search).
  bool owns_key(std::string_view key) const;

  /// The maintained canonical encoding of own_partition() — what the next
  /// publish ships. Tests pin that the incremental splices keep it equal
  /// to a from-scratch encode_partition().
  BytesView encoded_partition();

  FaustClient& faust() { return faust_; }
  const FaustClient& faust() const { return faust_; }

  /// Coordination hook for the sharded layer: raises the put counter so
  /// the next put/erase uses a sequence number > `seen`. A ShardedKvClient
  /// spreads one logical client over S per-shard KvClients; syncing the
  /// counters before every op makes the (seq, writer) winner of any
  /// cross-writer conflict identical to a single-deployment oracle, where
  /// the counter counts ALL of the client's ops, not just one shard's.
  void advance_seq(std::uint64_t seen) { put_seq_ = std::max(put_seq_, seen); }

  /// Current put counter (the seq the most recent put/erase used).
  std::uint64_t put_seq() const { return put_seq_; }

  /// FAUST timestamp of the most recent completed snapshot (the largest
  /// read timestamp among its n register reads). A merged get/list result
  /// is *stable* once the stability cut covers this timestamp: every read
  /// that observed the merge is then in the linearizable prefix (Def. 5
  /// item 6), and with it the winning writes it saw.
  Timestamp last_snapshot_ts() const { return last_snapshot_ts_; }

  // --- Diagnostics (the O(change) claims in numbers; tests + benches) ----

  /// Publications that patched the kept encoding vs rebuilt it.
  std::uint64_t encode_splices() const { return encode_splices_; }
  std::uint64_t encode_rebuilds() const { return encode_rebuilds_; }
  /// Register reads whose decoded partition came from / missed the
  /// version-keyed memo.
  std::uint64_t decode_memo_hits() const { return decode_memo_hits_; }
  std::uint64_t decode_memo_misses() const { return decode_memo_misses_; }
  /// Snapshots served whole from the merged-view memo (no merge ran).
  std::uint64_t merged_cache_hits() const { return merged_cache_hits_; }
  /// Publications shipped as splice deltas vs full encodings (D6: bytes
  /// per op track the change set once the first full publish seeds the
  /// server's base).
  std::uint64_t publish_deltas() const { return publish_deltas_; }
  std::uint64_t publish_fulls() const { return publish_fulls_; }
  /// Edge-cache effectiveness (all zero until attach_cache).
  /// Registers resolved by the cache (verified full value or unchanged
  /// token or negative) vs read through the FAUST engine.
  std::uint64_t registers_cache_served() const { return regs_cache_served_; }
  std::uint64_t registers_engine_read() const { return regs_engine_read_; }
  /// Snapshots that completed without ANY engine read (every register
  /// cache-served) — the "no shard contact" number the perf gate pins.
  std::uint64_t snapshots_cached() const { return snapshots_cached_; }
  std::uint64_t snapshots_total() const { return snapshots_total_; }
  /// Read-through fill batches and writer push fills sent.
  std::uint64_t cache_fill_batches() const { return cache_fill_batches_; }
  std::uint64_t cache_push_fills() const { return cache_push_fills_; }
  /// D10 degraded (cache-only) snapshots attempted / failed-unavailable.
  std::uint64_t degraded_snapshots() const { return degraded_snapshots_; }
  std::uint64_t degraded_unavailable() const { return degraded_unavailable_; }

 private:
  /// Verified fingerprint of one register's content: what the decode memo
  /// is keyed by. Only values that passed the DATA-signature check (which
  /// binds digest AND writer timestamp) ever produce one, so a hit can
  /// only replay a previously VERIFIED decode of byte-identical content
  /// (collision resistance of the digest). The timestamp itself is NOT
  /// part of the equality: t_j advances on every op of C_j — reads
  /// included — while the bytes stand still, so keying on it would
  /// invalidate unchanged content (the reader's own slot on every
  /// snapshot, every slot under dummy reads); freshness of t_j is already
  /// enforced by USTOR's line-51 check before a value ever reaches us.
  struct PartFp {
    bool present = false;     // register held a value (not ⊥)
    crypto::Hash digest{};    // verified x̄_j

    bool operator==(const PartFp&) const = default;
  };

  struct PartMemo {
    PartFp fp;
    std::shared_ptr<const Partition> part;  // null = no memo yet
  };

  /// In-flight snapshot accumulator (get/list may overlap; each op
  /// carries its own, and pins the decoded partitions it observed via
  /// shared ownership, so a concurrent snapshot refreshing a memo slot
  /// cannot mutate what this one merges).
  struct Snapshot {
    std::vector<std::shared_ptr<const Partition>> parts;  // [j-1]; null = ⊥
    std::vector<PartFp> fps;                              // [j-1]
    Timestamp max_read_ts = 0;
    std::function<void(const std::map<std::string, KvEntry>&, Timestamp, const ReadOrigin&)>
        done;
    // D8 cache bookkeeping: slots already resolved by the verified cache
    // lookup (skipped by the engine fallback), whether the lookup was
    // attempted, the min fill-time stamp over cache-served slots, and the
    // read-through fills owed to the cache for the slots it failed on.
    std::vector<bool> resolved;  // [j-1]
    bool tried_cache = false;
    bool any_cached = false;
    Timestamp cache_as_of = 0;
    std::vector<cache::FillSection> fills;
  };

  bool chunked() const {
    return faust_.config().data_digest == ustor::DigestMode::kChunked;
  }

  /// Applies one change to own_ (and the kept encoding, when valid).
  /// Returns false iff it was an erase of an absent key.
  bool apply_change(const std::string& key, std::optional<std::string> value,
                    std::uint64_t seq);

  /// Re-encodes own_ from scratch (and rebuilds the chunk tree).
  void rebuild_encoding();

  /// Clones the encoding buffer iff a prior publication still shares it.
  Bytes& mutable_enc();

  void splice_replace(std::size_t idx);
  void splice_insert(std::size_t idx);
  void splice_erase(std::size_t idx, std::size_t old_size);

  /// Appends one wire splice to the pending delta log (no-op while the
  /// log is invalid). `insert` views the freshly patched encoding.
  void log_splice(std::size_t offset, std::size_t erase_len, BytesView insert);

  void publish(PutHandler done);

  /// Collects all n registers — through the cache hop first when one is
  /// attached and not bypassed — then merges (or replays the merged-view
  /// memo) and calls `done`; the map reference is valid only within the
  /// callback.
  void snapshot(
      std::function<void(const std::map<std::string, KvEntry>&, Timestamp, const ReadOrigin&)>
          done,
      bool bypass_cache = false);

  /// Folds a verified cache lookup result into the snapshot (resolving
  /// served / unchanged / negative slots), then engine-reads the rest.
  void consume_cache_result(const std::shared_ptr<Snapshot>& snap,
                            const std::vector<cache::CacheClient::Section>& sections);

  /// The per-slot verification fold shared by the normal and degraded
  /// cache paths (marks resolved slots, updates memos, tracks as_of).
  void fold_cache_sections(const std::shared_ptr<Snapshot>& snap,
                           const std::vector<cache::CacheClient::Section>& sections);

  /// Reads partition j (skipping cache-resolved slots), folds it into the
  /// snapshot, recurses to j+1; finishes past n.
  void read_partition(ClientId j, std::shared_ptr<Snapshot> snap);
  void finish_snapshot(const std::shared_ptr<Snapshot>& snap);

  FaustClient& faust_;
  const KvTuning tuning_;

  Partition own_;  // ascending by key
  std::uint64_t put_seq_ = 0;

  // The kept canonical encoding of own_ (valid iff enc_valid_): shared
  // with in-flight publications, cloned on write only when still aliased.
  std::shared_ptr<Bytes> enc_;
  std::vector<std::size_t> enc_off_;  // [i] = byte offset of entry i
  crypto::ChunkedHasher enc_hasher_;  // mirrors *enc_ (chunked mode only)
  bool enc_valid_ = false;

  // D6 delta-publish log: the wire splices applied to *enc_ since the
  // last publication, in order (each relative to the evolving buffer —
  // exactly the form SUBMIT_DELTA ships). Valid only between publishes
  // under deltas; a rebuild_encoding() discards it (offsets lost).
  std::vector<ustor::Splice> pending_splices_;
  bool splice_log_valid_ = false;
  crypto::Hash last_pub_root_{};  // chunk-tree root of the last publication
  std::uint64_t published_ = 0;   // publications so far (first must be full)

  std::vector<PartMemo> part_memo_;  // [j-1]: version-keyed decode memo
  std::shared_ptr<const std::map<std::string, KvEntry>> merged_cache_;
  std::vector<PartFp> merged_fps_;  // fingerprints merged_cache_ was built from

  Timestamp last_snapshot_ts_ = 0;

  std::uint64_t encode_splices_ = 0;
  std::uint64_t encode_rebuilds_ = 0;
  std::uint64_t decode_memo_hits_ = 0;
  std::uint64_t decode_memo_misses_ = 0;
  std::uint64_t merged_cache_hits_ = 0;
  std::uint64_t publish_deltas_ = 0;
  std::uint64_t publish_fulls_ = 0;

  cache::CacheClient* cache_ = nullptr;  // D8 edge-cache hop; null = off
  std::uint64_t regs_cache_served_ = 0;
  std::uint64_t regs_engine_read_ = 0;
  std::uint64_t snapshots_cached_ = 0;
  std::uint64_t snapshots_total_ = 0;
  std::uint64_t cache_fill_batches_ = 0;
  std::uint64_t cache_push_fills_ = 0;
  std::uint64_t degraded_snapshots_ = 0;
  std::uint64_t degraded_unavailable_ = 0;
};

}  // namespace faust::kv
