// A multi-writer key-value store layered on FAUST's single-writer
// registers — the same move SUNDR uses to build a filesystem over
// per-principal blocks, and a template for the "variety of additional
// services" the paper's conclusion envisions.
//
// Layout: client C_i serializes its private map key → (value, seq) into
// its own register X_i on every put (seq is C_i's put counter). A get(k)
// reads all n registers and merges: the winning entry for k is the one
// with the lexicographically largest (seq, writer) pair. The merge is
// deterministic, so any two clients with consistent registers agree on
// every key — and FAUST's stability cut therefore applies verbatim to KV
// state: once the underlying register writes are stable, so is the merged
// view. All fail-aware semantics (fail_i, stability, causality) are
// inherited from the FAUST layer for free.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "faust/faust_client.h"

namespace faust::kv {

/// One key's winning entry, with its provenance.
struct KvEntry {
  std::string value;
  ClientId writer = 0;       // who wrote the winning value
  std::uint64_t seq = 0;     // the writer's put counter at that put
};

inline bool operator==(const KvEntry& a, const KvEntry& b) {
  return a.value == b.value && a.writer == b.writer && a.seq == b.seq;
}

/// Serialization of a client's private map (exposed for tests).
Bytes encode_map(const std::map<std::string, std::pair<std::string, std::uint64_t>>& m);
std::optional<std::map<std::string, std::pair<std::string, std::uint64_t>>> decode_map(
    BytesView data);

/// Key-value facade over one FaustClient.
class KvClient {
 public:
  using PutHandler = std::function<void(Timestamp)>;
  /// `done(entry, read_ts)`: read_ts is the largest FAUST timestamp among
  /// the observing register reads — the snapshot is *stable* once the
  /// stability cut covers it (see last_snapshot_ts()).
  using GetHandler = std::function<void(std::optional<KvEntry>, Timestamp)>;
  using ListHandler = std::function<void(const std::map<std::string, KvEntry>&, Timestamp)>;

  /// Borrows `faust`; the caller keeps it alive. Multiple KvClients must
  /// not share one FaustClient.
  explicit KvClient(FaustClient& faust);

  /// Upserts key := value in this client's partition and publishes the
  /// whole partition to its register. `done` receives the register
  /// write's FAUST timestamp.
  void put(std::string key, std::string value, PutHandler done = {});

  /// Removes `key` from this client's partition (other writers' entries
  /// for the key survive and may win subsequent merges). When the key is
  /// not in this client's own partition the erase is a no-op: nothing is
  /// re-signed or republished and `done(0)` fires immediately — 0 marks
  /// "no register write was needed", not a failure.
  void erase(const std::string& key, PutHandler done = {});

  /// One batch change with its sequence number pre-drawn by the caller
  /// (api::Store draws tickets at plan time, in program order, so that a
  /// batch's winners are identical on every backend — see store.h).
  /// seq == 0 marks a no-op (an erase of a key the caller knows is
  /// absent): the change is skipped entirely.
  struct SeqChange {
    std::string key;
    std::optional<std::string> value;  // nullopt = erase
    std::uint64_t seq = 0;
  };

  /// Applies every change in order under its pre-drawn sequence number
  /// and publishes the partition ONCE (or not at all when every change is
  /// a no-op — `done(0)` then fires immediately). Conflict winners are
  /// exactly as if the changes had been individual put/erase calls with
  /// those sequence numbers; the intermediate register states are simply
  /// never materialized. This is the batching engine under
  /// api::Store::apply. The caller's sequence numbers must be fresh
  /// (larger than any this client used before); put_seq() advances past
  /// them.
  void apply_with_seqs(const std::vector<SeqChange>& changes, PutHandler done = {});

  /// Merged lookup across all n partitions (issues n register reads).
  void get(const std::string& key, GetHandler done);

  /// Full merged snapshot across all partitions.
  void list(ListHandler done);

  /// This client's own pending partition (local, pre-publication view).
  const std::map<std::string, std::pair<std::string, std::uint64_t>>& own_partition() const {
    return own_;
  }

  FaustClient& faust() { return faust_; }
  const FaustClient& faust() const { return faust_; }

  /// Coordination hook for the sharded layer: raises the put counter so
  /// the next put/erase uses a sequence number > `seen`. A ShardedKvClient
  /// spreads one logical client over S per-shard KvClients; syncing the
  /// counters before every op makes the (seq, writer) winner of any
  /// cross-writer conflict identical to a single-deployment oracle, where
  /// the counter counts ALL of the client's ops, not just one shard's.
  void advance_seq(std::uint64_t seen) { put_seq_ = std::max(put_seq_, seen); }

  /// Current put counter (the seq the most recent put/erase used).
  std::uint64_t put_seq() const { return put_seq_; }

  /// FAUST timestamp of the most recent completed snapshot (the largest
  /// read timestamp among its n register reads). A merged get/list result
  /// is *stable* once the stability cut covers this timestamp: every read
  /// that observed the merge is then in the linearizable prefix (Def. 5
  /// item 6), and with it the winning writes it saw.
  Timestamp last_snapshot_ts() const { return last_snapshot_ts_; }

 private:
  /// In-flight snapshot accumulator (get/list may overlap; each op carries
  /// its own).
  struct Snapshot {
    std::map<std::string, KvEntry> merged;
    Timestamp max_read_ts = 0;
    std::function<void(std::map<std::string, KvEntry>, Timestamp)> done;
  };

  void publish(PutHandler done);

  /// Collects all n registers, then merges and calls `done` with the
  /// merged map and the snapshot's observing-read timestamp.
  void snapshot(std::function<void(std::map<std::string, KvEntry>, Timestamp)> done);

  /// Reads partition j, merges it, recurses to j+1; fires `done` past n.
  void read_partition(ClientId j, std::shared_ptr<Snapshot> snap);

  FaustClient& faust_;
  std::map<std::string, std::pair<std::string, std::uint64_t>> own_;  // key -> (value, seq)
  std::uint64_t put_seq_ = 0;
  Timestamp last_snapshot_ts_ = 0;
};

}  // namespace faust::kv
