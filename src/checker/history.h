// Histories of register operations, as consumed by the consistency
// checkers (Defs. 1–6 of the paper).
//
// A history is the trace of invocations/responses observed at the
// clients; the harness records one OpRecord per operation.  Written
// values are assumed unique across the execution (as in §2), which lets
// the checkers recover the reads-from relation directly from values.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "sim/scheduler.h"
#include "ustor/types.h"

namespace faust::checker {

/// Sentinel "time" for operations that never completed.
inline constexpr sim::Time kNever = UINT64_MAX;

/// One operation of the recorded history.
struct OpRecord {
  int id = 0;  // dense 0-based id (index into the history vector)
  ClientId client = 0;
  ustor::OpCode oc = ustor::OpCode::kRead;
  ClientId target = 0;  // register index (owner id)
  ustor::Value value;   // written value, or value returned by the read
  sim::Time invoked = 0;
  sim::Time responded = kNever;  // kNever: incomplete
  Timestamp t = 0;               // protocol timestamp (0 if incomplete)

  bool complete() const { return responded != kNever; }
  bool is_write() const { return oc == ustor::OpCode::kWrite; }

  /// Real-time precedence: this op completed before `o` was invoked.
  bool precedes(const OpRecord& o) const {
    return complete() && responded < o.invoked;
  }
};

/// Collects OpRecords as operations are invoked/completed.
class HistoryRecorder {
 public:
  /// Registers an invocation; returns the operation id to close later.
  int begin(ClientId client, ustor::OpCode oc, ClientId target, ustor::Value written,
            sim::Time now);

  /// Marks completion. For reads, `result` is the returned value.
  void end(int id, sim::Time now, Timestamp t, ustor::Value result = std::nullopt);

  const std::vector<OpRecord>& history() const { return ops_; }
  std::vector<OpRecord>& mutable_history() { return ops_; }

  /// Operations of one client, in program order.
  std::vector<OpRecord> by_client(ClientId client) const;

 private:
  std::vector<OpRecord> ops_;
};

/// Finds the write op that produced `value` (std::nullopt target means the
/// initial ⊥, for which there is no writer). Returns -1 if the value was
/// never written (a "thin air" read) or the id of the writing op.
/// Precondition: written values are unique.
int find_writer(const std::vector<OpRecord>& history, ClientId reg, const ustor::Value& value);

}  // namespace faust::checker
