#include "checker/causal.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace faust::checker {
namespace {

/// Reads-from edges: read op id -> writer op id (only for non-⊥ reads).
/// Returns false if some read returns a never-written value.
bool build_reads_from(const std::vector<OpRecord>& history, std::vector<int>& rf) {
  rf.assign(history.size(), -1);
  for (const OpRecord& op : history) {
    if (op.is_write() || !op.complete() || !op.value.has_value()) continue;
    const int w = find_writer(history, op.target, op.value);
    if (w < 0) return false;
    rf[static_cast<std::size_t>(op.id)] = w;
  }
  return true;
}

}  // namespace

CausalOrder build_causal_order(const std::vector<OpRecord>& history) {
  const std::size_t n = history.size();
  CausalOrder co;
  co.reach.assign(n, std::vector<bool>(n, false));

  std::vector<int> rf;
  if (!build_reads_from(history, rf)) {
    co.cyclic = true;  // treat thin-air as an order violation
    return co;
  }

  // Direct edges.
  std::map<ClientId, int> last_of_client;
  for (const OpRecord& op : history) {
    const auto i = static_cast<std::size_t>(op.id);
    auto it = last_of_client.find(op.client);
    if (it != last_of_client.end()) {
      co.reach[static_cast<std::size_t>(it->second)][i] = true;  // program order
    }
    last_of_client[op.client] = op.id;
    if (rf[i] >= 0) co.reach[static_cast<std::size_t>(rf[i])][i] = true;  // reads-from
  }

  // Transitive closure (Floyd–Warshall; histories in tests are modest).
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!co.reach[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (co.reach[k][j]) co.reach[i][j] = true;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (co.reach[i][i]) co.cyclic = true;
  }
  return co;
}

namespace {

/// Backtracking serializer for one client's causal view.
struct ViewSearch {
  const std::vector<OpRecord>* history;
  const CausalOrder* co;
  std::vector<int> member;  // op ids in the candidate view
  std::unordered_set<std::uint64_t> dead;

  bool dfs(std::uint64_t placed, std::map<ClientId, ustor::Value>& regs) {
    if (placed == (member.size() == 64 ? ~0ULL : ((1ULL << member.size()) - 1))) return true;
    if (dead.count(placed) > 0) return false;

    for (std::size_t i = 0; i < member.size(); ++i) {
      if (placed & (1ULL << i)) continue;
      const OpRecord& cand = (*history)[static_cast<std::size_t>(member[i])];
      // All causal predecessors inside the view must already be placed.
      bool ready = true;
      for (std::size_t j = 0; j < member.size() && ready; ++j) {
        if (i == j || (placed & (1ULL << j))) continue;
        if (co->precedes(member[j], member[i])) ready = false;
      }
      if (!ready) continue;

      ustor::Value saved;
      bool had = false;
      if (cand.is_write()) {
        auto it = regs.find(cand.target);
        if (it != regs.end()) {
          saved = it->second;
          had = true;
        }
        regs[cand.target] = cand.value;
      } else {
        auto it = regs.find(cand.target);
        const ustor::Value current = it == regs.end() ? std::nullopt : it->second;
        if (!(current == cand.value)) continue;
      }
      const bool ok = dfs(placed | (1ULL << i), regs);
      if (cand.is_write()) {
        if (had) {
          regs[cand.target] = saved;
        } else {
          regs.erase(cand.target);
        }
      }
      if (ok) return true;
    }
    dead.insert(placed);
    return false;
  }
};

}  // namespace

CheckResult check_causal(const std::vector<OpRecord>& history) {
  std::vector<int> rf;
  if (!build_reads_from(history, rf)) {
    return CheckResult::fail("some read returned a never-written value");
  }
  const CausalOrder co = build_causal_order(history);
  if (co.cyclic) return CheckResult::fail("causal order is cyclic");

  // Clients present in the history.
  std::unordered_set<ClientId> clients;
  for (const OpRecord& op : history) clients.insert(op.client);

  for (const ClientId ci : clients) {
    // Candidate view: Ci's complete ops + every update causally preceding
    // any of them (the minimal set Def. 3 permits).
    std::vector<int> member;
    std::unordered_set<int> in_view;
    for (const OpRecord& op : history) {
      if (op.client == ci && op.complete()) {
        member.push_back(op.id);
        in_view.insert(op.id);
      }
    }
    for (const OpRecord& w : history) {
      if (!w.is_write() || in_view.count(w.id) > 0) continue;
      for (const int own : member) {
        if (w.client != ci && co.precedes(w.id, own)) {
          member.push_back(w.id);
          in_view.insert(w.id);
          break;
        }
      }
    }
    FAUST_CHECK(member.size() < 64);

    ViewSearch search{&history, &co, member, {}};
    std::map<ClientId, ustor::Value> regs;
    if (!search.dfs(0, regs)) {
      return CheckResult::fail("no causal serialization exists for client C" +
                               std::to_string(ci));
    }
  }
  return CheckResult::pass();
}

}  // namespace faust::checker
