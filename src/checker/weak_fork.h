// Weak fork-linearizability (Def. 6) validation, plus a brute-force
// fork-linearizability decision procedure for tiny histories.
//
// Deciding Def. 6 from a bare history means guessing views — exponential
// in general.  The repository instead *validates*: adversarial harnesses
// know exactly which schedule each fork pretended (ustor::ServerCore logs
// it), so tests hand the checker candidate views and it verifies all four
// conditions of Def. 6 mechanically.  For the Figure 3 separation result
// we additionally need "NO fork-linearizable views exist", which
// `exists_fork_linearizable_views` decides by exhaustive search over very
// small histories.
#pragma once

#include <map>
#include <vector>

#include "checker/history.h"
#include "checker/linearizability.h"  // CheckResult

namespace faust::checker {

/// Candidate views: for each client, the sequence of op ids forming its
/// view β_i of the history.
using ViewMap = std::map<ClientId, std::vector<int>>;

/// Validates Def. 6 (view legality, weak real-time order, causality,
/// at-most-one-join) for the given views.
CheckResult validate_weak_fork_linearizable(const std::vector<OpRecord>& history,
                                            const ViewMap& views);

/// Validates classical fork-linearizability for the given views: view
/// legality, *full* real-time order, and the no-join property.
CheckResult validate_fork_linearizable(const std::vector<OpRecord>& history,
                                       const ViewMap& views);

/// Exhaustively decides whether ANY fork-linearizable views exist for a
/// (complete) history. Exponential — history must be tiny (≤ max_ops).
bool exists_fork_linearizable_views(const std::vector<OpRecord>& history,
                                    std::size_t max_ops = 8);

}  // namespace faust::checker
