// Linearizability checking for SWMR-register histories (Def. 2).
//
// Two independent checkers:
//
//  * `check_linearizable` — polynomial-time. Linearizability is local
//    (Herlihy & Wing), so each register is checked separately; per
//    register, writes are by a single owner and written values are unique,
//    so the reads-from mapping is determined and the classical atomicity
//    axioms (a reading function exists iff no read reads from the future,
//    no read skips over a fully-preceding newer write, and no two
//    real-time-ordered reads invert write order) are sound and complete.
//    Incomplete writes are treated as pending-forever (they may always be
//    linearized after everything that observed nothing of them);
//    incomplete reads are ignored.
//
//  * `check_linearizable_brute` — exhaustive Wing–Gong search with
//    memoization, exponential, for small complete histories. Exists to
//    cross-validate the polynomial checker in property tests.
#pragma once

#include <string>
#include <vector>

#include "checker/history.h"

namespace faust::checker {

/// Outcome with a human-readable reason on failure.
struct CheckResult {
  bool ok = true;
  std::string violation;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
};

/// Polynomial checker. Requires unique written values per register.
CheckResult check_linearizable(const std::vector<OpRecord>& history);

/// Exponential reference checker; history must be complete and small
/// (aborts via FAUST_CHECK beyond `max_ops`).
bool check_linearizable_brute(const std::vector<OpRecord>& history, std::size_t max_ops = 16);

}  // namespace faust::checker
