// Causal-consistency checking (Def. 3) and the potential-causality order.
//
// The causal order →σ is the transitive closure of program order and
// reads-from (§2); with unique written values, reads-from is recovered
// directly from returned values.  Def. 3 then asks, per client, for a
// serialization of (that client's ops ∪ the causally-required updates)
// that extends →σ and satisfies the register semantics.  Finding one is a
// constrained topological sort, implemented as a memoized backtracking
// search — views in this repository's tests stay well under the 64-op
// bitmask bound.
#pragma once

#include <cstdint>
#include <vector>

#include "checker/history.h"
#include "checker/linearizability.h"  // CheckResult

namespace faust::checker {

/// Potential causality as an adjacency structure over op ids.
struct CausalOrder {
  /// reach[i] bit j set ⇔ op i →σ op j (strict). Dense over history ids.
  std::vector<std::vector<bool>> reach;
  bool cyclic = false;

  bool precedes(int a, int b) const {
    return reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
  }
};

/// Builds →σ from program order + reads-from. `cyclic` is set if the
/// relation is not a strict partial order (itself a violation).
CausalOrder build_causal_order(const std::vector<OpRecord>& history);

/// Checks Def. 3 for every client. Complete operations only are
/// considered at the reading client; reads returning never-written values
/// fail immediately.
CheckResult check_causal(const std::vector<OpRecord>& history);

}  // namespace faust::checker
