#include "checker/history.h"

#include "common/check.h"

namespace faust::checker {

int HistoryRecorder::begin(ClientId client, ustor::OpCode oc, ClientId target,
                           ustor::Value written, sim::Time now) {
  OpRecord op;
  op.id = static_cast<int>(ops_.size());
  op.client = client;
  op.oc = oc;
  op.target = target;
  op.value = std::move(written);
  op.invoked = now;
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

void HistoryRecorder::end(int id, sim::Time now, Timestamp t, ustor::Value result) {
  FAUST_CHECK(id >= 0 && static_cast<std::size_t>(id) < ops_.size());
  OpRecord& op = ops_[static_cast<std::size_t>(id)];
  FAUST_CHECK(!op.complete());
  op.responded = now;
  op.t = t;
  if (op.oc == ustor::OpCode::kRead) op.value = std::move(result);
}

std::vector<OpRecord> HistoryRecorder::by_client(ClientId client) const {
  std::vector<OpRecord> out;
  for (const OpRecord& op : ops_) {
    if (op.client == client) out.push_back(op);
  }
  return out;
}

int find_writer(const std::vector<OpRecord>& history, ClientId reg, const ustor::Value& value) {
  if (!value.has_value()) return -1;  // ⊥ has no writer
  for (const OpRecord& op : history) {
    if (op.is_write() && op.target == reg && op.value == value) return op.id;
  }
  return -1;
}

}  // namespace faust::checker
