#include "checker/weak_fork.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "checker/causal.h"
#include "common/check.h"

namespace faust::checker {
namespace {

std::string op_str(const OpRecord& op) {
  return "op#" + std::to_string(op.id) + "(C" + std::to_string(op.client) +
         (op.is_write() ? " w" : " r") + std::to_string(op.target) + ")";
}

/// View legality (Def. 1 adapted): all ops exist, no duplicates, the
/// client's own complete ops appear exactly and in program order (with at
/// most its one pending op appended somewhere), and the sequence respects
/// the register sequential specification.
CheckResult check_view_legality(const std::vector<OpRecord>& history, ClientId ci,
                                const std::vector<int>& view) {
  std::unordered_set<int> seen;
  std::map<ClientId, ustor::Value> regs;
  std::vector<int> own_in_view;

  for (const int id : view) {
    if (id < 0 || static_cast<std::size_t>(id) >= history.size()) {
      return CheckResult::fail("view of C" + std::to_string(ci) + " names unknown op");
    }
    if (!seen.insert(id).second) {
      return CheckResult::fail("view of C" + std::to_string(ci) + " repeats " +
                               op_str(history[static_cast<std::size_t>(id)]));
    }
    const OpRecord& op = history[static_cast<std::size_t>(id)];
    if (op.client == ci) own_in_view.push_back(id);

    if (op.is_write()) {
      regs[op.target] = op.value;
    } else {
      auto it = regs.find(op.target);
      const ustor::Value current = it == regs.end() ? std::nullopt : it->second;
      // A pending read has no determined return value; any extension is
      // allowed for it (Def. 1 appends a response). Complete reads must
      // match.
      if (op.complete() && !(current == op.value)) {
        return CheckResult::fail("view of C" + std::to_string(ci) + ": " + op_str(op) +
                                 " violates the sequential specification");
      }
    }
  }

  // β|Ci must equal Ci's complete ops in program order, possibly with the
  // single pending op (if any) appended.
  std::vector<int> expected;
  int pending = -1;
  for (const OpRecord& op : history) {
    if (op.client != ci) continue;
    if (op.complete()) {
      expected.push_back(op.id);
    } else {
      FAUST_CHECK(pending == -1);  // well-formed: one pending op per client
      pending = op.id;
    }
  }
  std::vector<int> own_expected = expected;
  if (own_in_view != own_expected) {
    own_expected.push_back(pending);
    if (pending == -1 || own_in_view != own_expected) {
      return CheckResult::fail("view of C" + std::to_string(ci) +
                               " does not contain exactly C" + std::to_string(ci) +
                               "'s operations in program order");
    }
  }
  return CheckResult::pass();
}

/// Set of op ids that are the last operation of their client within the
/// view (the lastops(β) of §4).
std::unordered_set<int> last_ops(const std::vector<OpRecord>& history,
                                 const std::vector<int>& view) {
  std::map<ClientId, int> last;
  for (const int id : view) last[history[static_cast<std::size_t>(id)].client] = id;
  std::unordered_set<int> out;
  for (const auto& [cl, id] : last) out.insert(id);
  return out;
}

/// Real-time order preservation over the view, optionally exempting
/// lastops (weak = true gives the weak real-time order of §4).
CheckResult check_real_time(const std::vector<OpRecord>& history, ClientId ci,
                            const std::vector<int>& view, bool weak) {
  std::unordered_set<int> exempt;
  if (weak) exempt = last_ops(history, view);

  for (std::size_t a = 0; a < view.size(); ++a) {
    for (std::size_t b = a + 1; b < view.size(); ++b) {
      const OpRecord& ob = history[static_cast<std::size_t>(view[b])];
      const OpRecord& oa = history[static_cast<std::size_t>(view[a])];
      if (weak && (exempt.count(view[a]) > 0 || exempt.count(view[b]) > 0)) continue;
      if (ob.precedes(oa)) {
        return CheckResult::fail("view of C" + std::to_string(ci) + ": " + op_str(oa) +
                                 " placed before " + op_str(ob) +
                                 " against their real-time order");
      }
    }
  }
  return CheckResult::pass();
}

/// Def. 6 condition 3: causally preceding updates are present and ordered.
CheckResult check_causal_inclusion(const std::vector<OpRecord>& history, ClientId ci,
                                   const std::vector<int>& view, const CausalOrder& co) {
  std::unordered_map<int, std::size_t> pos;
  for (std::size_t p = 0; p < view.size(); ++p) pos[view[p]] = p;

  for (const int id : view) {
    for (const OpRecord& upd : history) {
      if (!upd.is_write() || upd.id == id) continue;
      if (!co.precedes(upd.id, id)) continue;
      auto it = pos.find(upd.id);
      if (it == pos.end()) {
        return CheckResult::fail("view of C" + std::to_string(ci) + " misses update " +
                                 op_str(upd) + " that causally precedes " +
                                 op_str(history[static_cast<std::size_t>(id)]));
      }
      if (it->second >= pos[id]) {
        return CheckResult::fail("view of C" + std::to_string(ci) + " orders " +
                                 op_str(upd) + " after " +
                                 op_str(history[static_cast<std::size_t>(id)]) +
                                 " against causality");
      }
    }
  }
  return CheckResult::pass();
}

/// Join condition between two views: for common ops o of the same client
/// that are not that client's last common op, the prefixes up to o must be
/// identical. With `at_most_one_join` false this is the strict no-join of
/// fork-linearizability (prefix equality at *every* common op).
CheckResult check_join(const std::vector<OpRecord>& history, ClientId ci, ClientId cj,
                       const std::vector<int>& vi, const std::vector<int>& vj,
                       bool at_most_one_join) {
  std::unordered_map<int, std::size_t> pos_j;
  for (std::size_t p = 0; p < vj.size(); ++p) pos_j[vj[p]] = p;

  // Common ops grouped by executing client, in vi order.
  std::map<ClientId, std::vector<int>> common_by_client;
  std::unordered_map<int, std::size_t> pos_i;
  for (std::size_t p = 0; p < vi.size(); ++p) {
    pos_i[vi[p]] = p;
    if (pos_j.count(vi[p]) > 0) {
      common_by_client[history[static_cast<std::size_t>(vi[p])].client].push_back(vi[p]);
    }
  }

  for (const auto& [cl, ops] : common_by_client) {
    // Under at-most-one-join the condition applies to every common op
    // that precedes another common op of the same client; i.e. all but
    // the last one. Under no-join it applies to all of them.
    const std::size_t limit = at_most_one_join ? (ops.empty() ? 0 : ops.size() - 1)
                                               : ops.size();
    for (std::size_t q = 0; q < limit; ++q) {
      const int o = ops[q];
      const std::size_t pi = pos_i[o];
      const std::size_t pj = pos_j.at(o);
      if (pi != pj) {
        return CheckResult::fail("views of C" + std::to_string(ci) + "/C" +
                                 std::to_string(cj) + " disagree on prefix length at " +
                                 op_str(history[static_cast<std::size_t>(o)]));
      }
      for (std::size_t p = 0; p <= pi; ++p) {
        if (vi[p] != vj[p]) {
          return CheckResult::fail("views of C" + std::to_string(ci) + "/C" +
                                   std::to_string(cj) + " have different prefixes at " +
                                   op_str(history[static_cast<std::size_t>(o)]));
        }
      }
    }
  }
  return CheckResult::pass();
}

CheckResult validate(const std::vector<OpRecord>& history, const ViewMap& views, bool weak) {
  const CausalOrder co = build_causal_order(history);
  if (weak && co.cyclic) return CheckResult::fail("causal order of the history is cyclic");

  for (const auto& [ci, view] : views) {
    CheckResult r = check_view_legality(history, ci, view);
    if (!r.ok) return r;
    r = check_real_time(history, ci, view, weak);
    if (!r.ok) return r;
    if (weak) {
      r = check_causal_inclusion(history, ci, view, co);
      if (!r.ok) return r;
    }
  }
  for (auto it = views.begin(); it != views.end(); ++it) {
    for (auto jt = std::next(it); jt != views.end(); ++jt) {
      CheckResult r = check_join(history, it->first, jt->first, it->second, jt->second,
                                 /*at_most_one_join=*/weak);
      if (!r.ok) return r;
    }
  }
  return CheckResult::pass();
}

}  // namespace

CheckResult validate_weak_fork_linearizable(const std::vector<OpRecord>& history,
                                            const ViewMap& views) {
  return validate(history, views, /*weak=*/true);
}

CheckResult validate_fork_linearizable(const std::vector<OpRecord>& history,
                                       const ViewMap& views) {
  return validate(history, views, /*weak=*/false);
}

namespace {

/// Enumerates all legal fork-linearizable views for one client via DFS:
/// sequences over subsets of ops that contain all of the client's ops in
/// order, satisfy the sequential spec, and preserve full real-time order.
void enumerate_views(const std::vector<OpRecord>& history, ClientId ci,
                     std::vector<int>& current, std::vector<bool>& used,
                     std::vector<std::vector<int>>& out) {
  // Accept `current` if it contains all of ci's ops.
  std::size_t own_needed = 0, own_have = 0;
  for (const OpRecord& op : history) {
    if (op.client == ci) ++own_needed;
  }
  for (const int id : current) {
    if (history[static_cast<std::size_t>(id)].client == ci) ++own_have;
  }
  if (own_have == own_needed) out.push_back(current);

  for (std::size_t i = 0; i < history.size(); ++i) {
    if (used[i]) continue;
    const OpRecord& cand = history[i];
    // Real-time: no op already placed may be preceded by cand... i.e. we
    // append cand only if cand does not precede any placed op.
    bool ok = true;
    for (const int id : current) {
      if (cand.precedes(history[static_cast<std::size_t>(id)])) ok = false;
    }
    // Program order of ci must be respected and complete: placing a later
    // own-op before an earlier one is excluded by real-time (own ops are
    // sequential), nothing more to do.
    if (!ok) continue;
    // Sequential spec incremental check.
    if (!cand.is_write()) {
      ustor::Value cur = std::nullopt;
      for (const int id : current) {
        const OpRecord& o = history[static_cast<std::size_t>(id)];
        if (o.is_write() && o.target == cand.target) cur = o.value;
      }
      if (!(cur == cand.value)) continue;
    }
    used[i] = true;
    current.push_back(cand.id);
    enumerate_views(history, ci, current, used, out);
    current.pop_back();
    used[i] = false;
  }
}

}  // namespace

bool exists_fork_linearizable_views(const std::vector<OpRecord>& history,
                                    std::size_t max_ops) {
  FAUST_CHECK(history.size() <= max_ops);
  for (const OpRecord& op : history) FAUST_CHECK(op.complete());

  std::set<ClientId> clients;
  for (const OpRecord& op : history) clients.insert(op.client);

  // Candidate views per client.
  std::vector<ClientId> order(clients.begin(), clients.end());
  std::vector<std::vector<std::vector<int>>> candidates;
  for (const ClientId ci : order) {
    std::vector<std::vector<int>> views;
    std::vector<int> current;
    std::vector<bool> used(history.size(), false);
    enumerate_views(history, ci, current, used, views);
    if (views.empty()) return false;
    candidates.push_back(std::move(views));
  }

  // Try every combination; accept if pairwise no-join holds.
  std::vector<std::size_t> pick(order.size(), 0);
  for (;;) {
    ViewMap vm;
    for (std::size_t i = 0; i < order.size(); ++i) vm[order[i]] = candidates[i][pick[i]];
    bool ok = true;
    for (auto it = vm.begin(); it != vm.end() && ok; ++it) {
      for (auto jt = std::next(it); jt != vm.end() && ok; ++jt) {
        if (!check_join(history, it->first, jt->first, it->second, jt->second,
                        /*at_most_one_join=*/false)
                 .ok) {
          ok = false;
        }
      }
    }
    if (ok) return true;

    // Next combination.
    std::size_t d = 0;
    while (d < pick.size()) {
      if (++pick[d] < candidates[d].size()) break;
      pick[d] = 0;
      ++d;
    }
    if (d == pick.size()) return false;
  }
}

}  // namespace faust::checker
