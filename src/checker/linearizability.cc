#include "checker/linearizability.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace faust::checker {
namespace {

/// Per-register data assembled for the polynomial check.
struct RegisterOps {
  std::vector<OpRecord> writes;  // owner's writes, program order (w_1..w_m)
  std::vector<OpRecord> reads;   // complete reads of this register
};

std::string describe(const OpRecord& op) {
  std::string s = "op#" + std::to_string(op.id) + " C" + std::to_string(op.client) +
                  (op.is_write() ? " write(X" : " read(X") + std::to_string(op.target) + ")";
  return s;
}

CheckResult check_register(const RegisterOps& r) {
  const std::size_t m = r.writes.size();

  // Map each read to the index of the write it read from (0 = initial ⊥,
  // 1..m = writes).
  struct ReadIdx {
    const OpRecord* op;
    std::size_t k;
  };
  std::vector<ReadIdx> reads;
  reads.reserve(r.reads.size());
  for (const OpRecord& rd : r.reads) {
    std::size_t k = 0;
    if (rd.value.has_value()) {
      bool found = false;
      for (std::size_t w = 0; w < m; ++w) {
        if (r.writes[w].value == rd.value) {
          k = w + 1;
          found = true;
          break;
        }
      }
      if (!found) {
        return CheckResult::fail(describe(rd) + " returned a value never written");
      }
    }
    reads.push_back({&rd, k});
  }

  for (const ReadIdx& ri : reads) {
    const OpRecord& rd = *ri.op;
    // (a) The write read from must not begin after the read ended.
    if (ri.k > 0) {
      const OpRecord& wk = r.writes[ri.k - 1];
      if (rd.responded < wk.invoked) {
        return CheckResult::fail(describe(rd) + " read from the future " + describe(wk));
      }
    }
    // (b) No write lies entirely between the write read from and the read.
    // With sequential writes only the immediately-next write can.
    if (ri.k < m) {
      const OpRecord& wnext = r.writes[ri.k];
      if (wnext.complete() && wnext.responded < rd.invoked) {
        return CheckResult::fail(describe(rd) + " skipped over completed " + describe(wnext));
      }
    }
  }

  // (c) No new-old inversion: reads ordered in real time must not observe
  // writes in the reverse order. Sweep: sort by response time, prefix-max
  // of k, binary search per read.
  std::vector<ReadIdx> by_resp = reads;
  std::sort(by_resp.begin(), by_resp.end(),
            [](const ReadIdx& a, const ReadIdx& b) { return a.op->responded < b.op->responded; });
  std::vector<std::size_t> prefix_max(by_resp.size());
  for (std::size_t i = 0; i < by_resp.size(); ++i) {
    prefix_max[i] = by_resp[i].k;
    if (i > 0) prefix_max[i] = std::max(prefix_max[i], prefix_max[i - 1]);
  }
  for (const ReadIdx& r2 : reads) {
    // Largest index with responded < r2.invoked.
    std::size_t lo = 0, hi = by_resp.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (by_resp[mid].op->responded < r2.op->invoked) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > 0 && prefix_max[lo - 1] > r2.k) {
      return CheckResult::fail(describe(*r2.op) + " observed an older write than a read that preceded it (new-old inversion)");
    }
  }
  return CheckResult::pass();
}

}  // namespace

CheckResult check_linearizable(const std::vector<OpRecord>& history) {
  std::map<ClientId, RegisterOps> regs;
  for (const OpRecord& op : history) {
    RegisterOps& r = regs[op.target];
    if (op.is_write()) {
      r.writes.push_back(op);
    } else if (op.complete()) {
      r.reads.push_back(op);
    }
  }
  for (auto& [reg, r] : regs) {
    // Writes in owner program order == invocation order (owner is a single
    // sequential client).
    std::sort(r.writes.begin(), r.writes.end(),
              [](const OpRecord& a, const OpRecord& b) { return a.invoked < b.invoked; });
    CheckResult res = check_register(r);
    if (!res.ok) {
      res.violation = "register X" + std::to_string(reg) + ": " + res.violation;
      return res;
    }
  }
  return CheckResult::pass();
}

namespace {

/// Wing–Gong DFS state: bitmask of linearized ops; register contents are
/// re-derivable from the mask (last linearized write per register), so the
/// mask alone keys the memo table.
struct BruteContext {
  const std::vector<OpRecord>* ops;
  std::unordered_set<std::uint64_t> dead;  // masks proven unlinearizable

  bool dfs(std::uint64_t mask, const std::unordered_map<ClientId, ustor::Value>& regs) {
    const std::size_t n = ops->size();
    if (mask == (n == 64 ? ~0ULL : ((1ULL << n) - 1))) return true;
    if (dead.count(mask) > 0) return false;

    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) continue;
      const OpRecord& cand = (*ops)[i];
      // Real-time: cannot linearize `cand` while an op that wholly
      // precedes it is still pending.
      bool blocked = false;
      for (std::size_t j = 0; j < n && !blocked; ++j) {
        if (i == j || (mask & (1ULL << j))) continue;
        if ((*ops)[j].precedes(cand)) blocked = true;
      }
      if (blocked) continue;

      auto next = regs;
      if (cand.is_write()) {
        next[cand.target] = cand.value;
      } else {
        auto it = regs.find(cand.target);
        const ustor::Value current = it == regs.end() ? std::nullopt : it->second;
        if (!(current == cand.value)) continue;  // read would return wrong value
      }
      if (dfs(mask | (1ULL << i), next)) return true;
    }
    dead.insert(mask);
    return false;
  }
};

}  // namespace

bool check_linearizable_brute(const std::vector<OpRecord>& history, std::size_t max_ops) {
  FAUST_CHECK(history.size() <= max_ops && history.size() < 64);
  for (const OpRecord& op : history) FAUST_CHECK(op.complete());
  BruteContext ctx{&history, {}};
  return ctx.dfs(0, {});
}

}  // namespace faust::checker
