// CacheNode — an UNTRUSTED edge cache between clients and a shard's
// FAUST deployment (DESIGN.md D8; ROADMAP "Verifiable edge-cache tier").
//
// The node sits on the same net::Transport / exec::Executor seams as
// every other party and speaks only the cache wire protocol
// (cache_wire.h). It holds NO keys and signs NOTHING: everything it
// stores arrived in a CACHE_FILL from some client, and everything it
// serves is re-verified by the receiving client against the writer's
// DATA signature. A Byzantine cache (or a Byzantine client poisoning it
// with garbage fills) can therefore at worst serve stale-but-authentic
// data or force a fallback to the home shard — never a wrong value.
//
// Storage model (dnscache.c lineage, adapted to partition granularity):
//   * one entry per writer register X_j: (writer_ts, digest, DATA sig,
//     partition bytes, as_of) — or a NEGATIVE entry recording that the
//     filler observed X_j unwritten (⊥);
//   * TTL-bounded: an entry older than `ttl` ticks (executor time) is a
//     miss and is dropped — the bound on how stale a lost or delayed
//     fill can leave the cache;
//   * LRU over a bounded byte arena: present entries' value bytes count
//     against `arena_bytes`; inserting past the bound evicts
//     least-recently-served entries first.
//
// Fill acceptance is monotone per writer: a present tuple with a larger
// writer_ts replaces anything; an equal-writer_ts/equal-digest re-fill
// only refreshes the TTL and freshness stamp; a negative never displaces
// a present entry (registers go ⊥ → written, never back). The cache
// cannot adjudicate conflicting fills at the same writer_ts (it verifies
// nothing) — it keeps what it has and lets TTL expiry wash a poisoned
// slot out; clients reject and fall back in the meantime.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_wire.h"
#include "exec/executor.h"
#include "net/transport.h"

namespace faust::cache {

/// Deployment knobs for the cache tier (embedded in ClusterConfig; the
/// defaults suit the benches' virtual-time scale).
struct CacheOptions {
  /// Deployment has a cache tier: clients wire a CacheClient and read
  /// through it.
  bool enabled = false;
  /// The Cluster owns an honest CacheNode (false: a test attaches its own
  /// node — e.g. a Byzantine one — under kCacheNodeId).
  bool with_node = true;
  /// Byte budget for stored partition values (LRU evicts past it).
  std::size_t arena_bytes = 64ull << 20;
  /// Entry lifetime in executor ticks (0 = never expires).
  exec::Time ttl = 200'000;
  /// Client-side budget for one CACHE_GET round trip before it is scored
  /// a miss (covers a killed or silent cache node; 0 = wait forever).
  exec::Time lookup_timeout = 2'000;
};

/// The cache node proper. All calls run on the owning executor's thread
/// (it is a net::Node like any other protocol party).
class CacheNode : public net::Node {
 public:
  /// Attaches itself to `net` under `self`; detaches on destruction.
  CacheNode(NodeId self, net::Transport& net, exec::Executor& exec, int n,
            CacheOptions opts = {});
  ~CacheNode() override;

  CacheNode(const CacheNode&) = delete;
  CacheNode& operator=(const CacheNode&) = delete;

  void on_message(NodeId from, BytesView msg) override;

  int n() const { return n_; }

  // --- Counters (benches and tests read these at quiescence) ------------
  std::uint64_t lookups() const { return lookups_; }          // CACHE_GETs served
  std::uint64_t hits() const { return hits_; }                // sections: full value
  std::uint64_t unchanged_hits() const { return unchanged_; } // sections: O(1) token
  std::uint64_t negatives_served() const { return negatives_served_; }
  std::uint64_t misses() const { return misses_; }            // sections: nothing held
  std::uint64_t expirations() const { return expirations_; }  // TTL drops
  std::uint64_t evictions() const { return evictions_; }      // LRU arena drops
  std::uint64_t fills_accepted() const { return fills_accepted_; }
  std::uint64_t fills_refreshed() const { return fills_refreshed_; }
  std::uint64_t fills_rejected() const { return fills_rejected_; }
  std::uint64_t malformed() const { return malformed_; }
  /// Sections served from an EXPIRED entry to an allow_stale lookup
  /// (D10 degraded reads; always truthfully bounded by as_of).
  std::uint64_t stale_served() const { return stale_served_; }
  /// Bytes of partition values currently held against the arena budget.
  std::size_t arena_used() const { return arena_used_; }
  /// True iff a (present or negative) unexpired entry exists for X_j.
  bool holds(ClientId j) const;

 protected:
  struct Entry {
    bool present = false;  // false = negative entry
    Timestamp writer_ts = 0;
    crypto::Hash digest{};
    Bytes sig;
    std::shared_ptr<const Bytes> value;  // present only
    Timestamp as_of = 0;
    exec::Time filled_at = 0;
    std::uint64_t last_used = 0;  // logical LRU clock

    std::size_t charge() const { return value ? value->size() : 0; }
  };

  /// Adversary seam: a Byzantine cache subclass distorts the fully built
  /// reply sections here, before encoding. The honest node does nothing.
  virtual void corrupt_reply(NodeId to, std::vector<OutSection>& sections);

  /// TTL policy seam: a Byzantine cache overrides this to keep serving
  /// entries past their lifetime (stale-beyond-TTL data — which clients
  /// must surface as staleness, not accept as fresh).
  virtual bool entry_expired(const Entry& e) const;

  /// Adversary seam over fill acceptance (a frozen cache ignores fills).
  virtual bool accept_fills() const { return true; }

  std::optional<Entry>& slot(ClientId j) { return entries_[static_cast<std::size_t>(j - 1)]; }

  exec::Executor& exec_;

 private:
  void handle_get(NodeId from, const GetMessage& m);
  void handle_fill(const FillMessageView& m);
  /// Evicts least-recently-used present entries until the arena fits.
  void enforce_arena();

  const NodeId self_;
  net::Transport& net_;
  const int n_;
  const CacheOptions opts_;

  std::vector<std::optional<Entry>> entries_;  // [j-1]
  std::size_t arena_used_ = 0;
  std::uint64_t lru_clock_ = 0;

  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t unchanged_ = 0;
  std::uint64_t negatives_served_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t fills_accepted_ = 0;
  std::uint64_t fills_refreshed_ = 0;
  std::uint64_t fills_rejected_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t stale_served_ = 0;
};

}  // namespace faust::cache
