#include "cache/cache_client.h"

#include <utility>

#include "common/check.h"
#include "ustor/messages.h"

namespace faust::cache {

CacheClient::CacheClient(ClientId id, NodeId cache_node, int n,
                         std::shared_ptr<const crypto::SignatureScheme> sigs,
                         ustor::DigestMode digest_mode, net::Transport& net,
                         exec::Executor& exec, exec::Time lookup_timeout)
    : id_(id),
      self_(cache_endpoint(id)),
      cache_node_(cache_node),
      n_(n),
      sigs_(std::make_shared<crypto::VerifyCache>(std::move(sigs))),
      digest_mode_(digest_mode),
      net_(net),
      exec_(exec),
      lookup_timeout_(lookup_timeout) {
  FAUST_CHECK(id >= 1 && n >= 1);
  net_.attach(self_, *this);
}

CacheClient::~CacheClient() {
  for (auto& [req, p] : pending_) {
    if (p.timer != 0) exec_.cancel(p.timer);
  }
  net_.detach(self_);
}

void CacheClient::lookup(std::vector<Base> bases, LookupHandler done, bool allow_stale) {
  FAUST_CHECK(bases.size() == static_cast<std::size_t>(n_));
  const std::uint64_t req = next_req_++;
  GetMessage m;
  m.req_id = req;
  m.allow_stale = allow_stale;
  m.bases.resize(bases.size());
  for (std::size_t slot = 0; slot < bases.size(); ++slot) {
    if (bases[slot].present) m.bases[slot] = bases[slot].digest;
  }
  Pending p;
  p.bases = std::move(bases);
  p.done = std::move(done);
  if (lookup_timeout_ > 0) {
    p.timer = exec_.after(lookup_timeout_, [this, req] { complete_missed(req); });
  }
  pending_.emplace(req, std::move(p));
  ++lookups_sent_;
  net_.send(self_, cache_node_, encode_get(m));
}

void CacheClient::fill(std::vector<FillSection> sections) {
  if (sections.empty()) return;
  ++fills_sent_;
  net_.send(self_, cache_node_, encode_fill(sections));
}

void CacheClient::complete_missed(std::uint64_t req_id) {
  const auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  ++timeouts_;
  missed_ += static_cast<std::uint64_t>(n_);
  Result r;
  r.timed_out = true;
  r.sections.resize(static_cast<std::size_t>(n_));
  p.done(r);
}

CacheClient::Section CacheClient::verify_section(ClientId j, const ReplySectionView& raw,
                                                 const Base& base) {
  Section out;
  switch (raw.status) {
    case SectionStatus::kMiss:
      ++missed_;
      return out;  // kMiss
    case SectionStatus::kNegative:
      // Unverifiable by construction (⊥ is unsigned). Registers never
      // revert to ⊥, so our own verified knowledge refutes a negative for
      // any register we have seen written — the Byzantine "bogus
      // negative" — and we reject it. Otherwise ⊥ is consistent with
      // everything we know; at worst the claim is STALE (the register was
      // written after the filler looked), the same staleness class as any
      // cached data, bounded by as_of.
      if (base.present) {
        ++rejected_;
        out.outcome = Outcome::kRejected;
        return out;
      }
      ++negative_;
      out.outcome = Outcome::kNegative;
      out.as_of = raw.as_of;
      return out;
    case SectionStatus::kUnchanged: {
      // The cache claims X_j still equals the base we advertised. Only
      // meaningful if we DID advertise one, and only acceptable with the
      // writer's authentic binding of (writer_ts, that exact digest).
      if (!base.present || raw.digest != base.digest || raw.writer_ts == 0 ||
          !sigs_->verify(j, ustor::data_payload(raw.writer_ts, base.digest), raw.sig)) {
        ++rejected_;
        out.outcome = Outcome::kRejected;
        return out;
      }
      ++unchanged_;
      out.outcome = Outcome::kUnchanged;
      out.writer_ts = raw.writer_ts;
      out.digest = base.digest;
      out.as_of = raw.as_of;
      return out;
    }
    case SectionStatus::kHit: {
      // Full tuple: recompute the digest of the served bytes under the
      // deployment's mode and check the writer's DATA signature over it —
      // byte-for-byte the check a shard REPLY's value goes through.
      const crypto::Hash digest =
          ustor::value_digest(digest_mode_, std::optional<BytesView>(raw.value));
      if (raw.writer_ts == 0 || digest != raw.digest ||
          !sigs_->verify(j, ustor::data_payload(raw.writer_ts, digest), raw.sig)) {
        ++rejected_;
        out.outcome = Outcome::kRejected;
        return out;
      }
      ++served_;
      out.outcome = Outcome::kServed;
      out.writer_ts = raw.writer_ts;
      out.digest = digest;
      out.value = raw.value;
      out.as_of = raw.as_of;
      return out;
    }
  }
  ++rejected_;
  out.outcome = Outcome::kRejected;
  return out;
}

void CacheClient::on_message(NodeId from, BytesView msg) {
  if (from != cache_node_) return;  // not our cache: drop
  const auto reply = decode_reply_view(msg);
  if (!reply.has_value()) {
    // Garbage from the cache. No request id to correlate — drop and let
    // the affected lookup's timer score it a miss. Nothing to fail: the
    // cache is untrusted by design.
    ++malformed_;
    return;
  }
  const auto it = pending_.find(reply->req_id);
  if (it == pending_.end()) return;  // late, duplicate, or unsolicited
  if (reply->sections.size() != static_cast<std::size_t>(n_)) {
    // Structurally wrong for our deployment: reject wholesale (every
    // section), complete so the caller falls back immediately.
    Pending p = std::move(it->second);
    pending_.erase(it);
    if (p.timer != 0) exec_.cancel(p.timer);
    ++malformed_;
    rejected_ += static_cast<std::uint64_t>(n_);
    Result r;
    r.sections.resize(static_cast<std::size_t>(n_));
    for (Section& s : r.sections) s.outcome = Outcome::kRejected;
    p.done(r);
    return;
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.timer != 0) exec_.cancel(p.timer);
  Result r;
  r.sections.resize(static_cast<std::size_t>(n_));
  for (std::size_t slot = 0; slot < r.sections.size(); ++slot) {
    r.sections[slot] = verify_section(static_cast<ClientId>(slot + 1),
                                      reply->sections[slot], p.bases[slot]);
  }
  p.done(r);
}

}  // namespace faust::cache
