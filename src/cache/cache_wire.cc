#include "cache/cache_wire.h"

#include <cstring>

#include "wire/encoder.h"

namespace faust::cache {
namespace {

// Structural ceiling on section counts: far above any real deployment's n
// (clients per shard), low enough that a forged header cannot force a
// large allocation.
constexpr std::uint32_t kMaxSections = 4096;

void put_hash(wire::Writer& w, const crypto::Hash& h) {
  w.put_raw(BytesView(h.data(), h.size()));
}

bool get_hash(wire::Reader& r, crypto::Hash& out) {
  const BytesView v = r.get_view(out.size());
  if (wire::Reader::is_error(v)) return false;
  std::memcpy(out.data(), v.data(), out.size());
  return true;
}

}  // namespace

Bytes encode_get(const GetMessage& m) {
  std::size_t hint = 1 + 8 + 1 + 4;
  for (const auto& b : m.bases) hint += 1 + (b.has_value() ? sizeof(crypto::Hash) : 0);
  wire::Writer w(hint);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kGet));
  w.put_u64(m.req_id);
  w.put_u8(m.allow_stale ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(m.bases.size()));
  for (const auto& b : m.bases) {
    w.put_u8(b.has_value() ? 1 : 0);
    if (b.has_value()) put_hash(w, *b);
  }
  return w.take();
}

std::optional<GetMessage> decode_get(BytesView data) {
  wire::Reader r(data);
  if (r.get_u8() != static_cast<std::uint8_t>(MsgType::kGet)) return std::nullopt;
  GetMessage m;
  m.req_id = r.get_u64();
  const std::uint8_t stale = r.get_u8();
  if (stale > 1) return std::nullopt;
  m.allow_stale = stale == 1;
  const std::uint32_t count = r.get_u32();
  if (!r.ok() || count > kMaxSections) return std::nullopt;
  m.bases.resize(count);
  for (std::uint32_t k = 0; k < count && r.ok(); ++k) {
    const std::uint8_t has = r.get_u8();
    if (has > 1) return std::nullopt;
    if (has == 1) {
      crypto::Hash h{};
      if (!get_hash(r, h)) return std::nullopt;
      m.bases[k] = h;
    }
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

Bytes encode_reply(std::uint64_t req_id, const std::vector<OutSection>& sections) {
  std::size_t hint = 1 + 8 + 4;
  for (const OutSection& s : sections) {
    hint += 1;
    switch (s.status) {
      case SectionStatus::kHit:
        hint += 8 + sizeof(crypto::Hash) + 4 + s.sig.size() + 4 +
                (s.value ? s.value->size() : 0) + 8;
        break;
      case SectionStatus::kUnchanged:
        hint += 8 + sizeof(crypto::Hash) + 4 + s.sig.size() + 8;
        break;
      case SectionStatus::kNegative:
        hint += 8;
        break;
      case SectionStatus::kMiss:
        break;
    }
  }
  wire::Writer w(hint);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kReply));
  w.put_u64(req_id);
  w.put_u32(static_cast<std::uint32_t>(sections.size()));
  for (const OutSection& s : sections) {
    w.put_u8(static_cast<std::uint8_t>(s.status));
    switch (s.status) {
      case SectionStatus::kHit:
        w.put_u64(s.writer_ts);
        put_hash(w, s.digest);
        w.put_bytes(BytesView(s.sig));
        w.put_bytes(s.value ? BytesView(*s.value) : BytesView());
        w.put_u64(s.as_of);
        break;
      case SectionStatus::kUnchanged:
        w.put_u64(s.writer_ts);
        put_hash(w, s.digest);
        w.put_bytes(BytesView(s.sig));
        w.put_u64(s.as_of);
        break;
      case SectionStatus::kNegative:
        w.put_u64(s.as_of);
        break;
      case SectionStatus::kMiss:
        break;
    }
  }
  return w.take();
}

std::optional<ReplyMessageView> decode_reply_view(BytesView data) {
  wire::Reader r(data);
  if (r.get_u8() != static_cast<std::uint8_t>(MsgType::kReply)) return std::nullopt;
  ReplyMessageView m;
  m.req_id = r.get_u64();
  const std::uint32_t count = r.get_u32();
  if (!r.ok() || count > kMaxSections) return std::nullopt;
  m.sections.resize(count);
  for (std::uint32_t k = 0; k < count && r.ok(); ++k) {
    ReplySectionView& s = m.sections[k];
    const std::uint8_t status = r.get_u8();
    if (status > static_cast<std::uint8_t>(SectionStatus::kNegative)) return std::nullopt;
    s.status = static_cast<SectionStatus>(status);
    switch (s.status) {
      case SectionStatus::kHit:
        s.writer_ts = r.get_u64();
        if (!get_hash(r, s.digest)) return std::nullopt;
        s.sig = r.get_bytes_view();
        s.value = r.get_bytes_view();
        s.as_of = r.get_u64();
        if (wire::Reader::is_error(s.sig) || wire::Reader::is_error(s.value)) {
          return std::nullopt;
        }
        break;
      case SectionStatus::kUnchanged:
        s.writer_ts = r.get_u64();
        if (!get_hash(r, s.digest)) return std::nullopt;
        s.sig = r.get_bytes_view();
        s.as_of = r.get_u64();
        if (wire::Reader::is_error(s.sig)) return std::nullopt;
        break;
      case SectionStatus::kNegative:
        s.as_of = r.get_u64();
        break;
      case SectionStatus::kMiss:
        break;
    }
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

Bytes encode_fill(const std::vector<FillSection>& sections) {
  std::size_t hint = 1 + 4;
  for (const FillSection& s : sections) {
    hint += 4 + 1 + 8;
    if (s.present) hint += 8 + sizeof(crypto::Hash) + 4 + s.sig.size() + 4 + s.value.size();
  }
  wire::Writer w(hint);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kFill));
  w.put_u32(static_cast<std::uint32_t>(sections.size()));
  for (const FillSection& s : sections) {
    w.put_u32(static_cast<std::uint32_t>(s.writer));
    w.put_u8(s.present ? 1 : 0);
    if (s.present) {
      w.put_u64(s.writer_ts);
      put_hash(w, s.digest);
      w.put_bytes(BytesView(s.sig));
      w.put_bytes(BytesView(s.value));
    }
    w.put_u64(s.as_of);
  }
  return w.take();
}

std::optional<FillMessageView> decode_fill_view(BytesView data) {
  wire::Reader r(data);
  if (r.get_u8() != static_cast<std::uint8_t>(MsgType::kFill)) return std::nullopt;
  FillMessageView m;
  const std::uint32_t count = r.get_u32();
  if (!r.ok() || count > kMaxSections) return std::nullopt;
  m.sections.resize(count);
  for (std::uint32_t k = 0; k < count && r.ok(); ++k) {
    FillSectionView& s = m.sections[k];
    const std::uint32_t writer = r.get_u32();
    if (writer == 0 || writer > kMaxSections) return std::nullopt;
    s.writer = static_cast<ClientId>(writer);
    const std::uint8_t present = r.get_u8();
    if (present > 1) return std::nullopt;
    s.present = present == 1;
    if (s.present) {
      s.writer_ts = r.get_u64();
      if (!get_hash(r, s.digest)) return std::nullopt;
      s.sig = r.get_bytes_view();
      s.value = r.get_bytes_view();
      if (wire::Reader::is_error(s.sig) || wire::Reader::is_error(s.value)) {
        return std::nullopt;
      }
    }
    s.as_of = r.get_u64();
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

}  // namespace faust::cache
