// CacheClient — the client-side half of the edge-cache hop (DESIGN.md
// D8): issues bulk CACHE_GET lookups, VERIFIES every served section
// against the writer's DATA signature before handing it up, and ships
// CACHE_FILLs (verified read-through and writer push fills).
//
// Verification is exactly the shard-reply discipline applied to the
// cache hop: a served value's digest is recomputed under the
// deployment's DigestMode (chunk-tree root or flat hash) and the
// writer's signature over data_payload(writer_ts, digest) is checked
// through a VerifyCache — so re-serving the same authentic tuple costs
// one hash, and the O(1) "unchanged" token (digest equals the base the
// client advertised from its own verified decode memo) costs one memoized
// signature check and ships no bytes at all.
//
// What a Byzantine cache can and cannot do through this filter:
//   * tampered value bytes / forged digests / forged signatures — the
//     recomputed digest or the signature check fails: section REJECTED,
//     caller falls back to the home shard;
//   * a false "unchanged" claim for content that moved on — the shipped
//     (writer_ts, sig) cannot verify against the advertised base digest
//     unless it is the base's own authentic binding, in which case the
//     reply is merely STALE, not wrong;
//   * a bogus negative ("never written") for a register the caller has
//     verified present content of — REJECTED outright: registers never
//     revert to ⊥, so the caller's own memo refutes the claim;
//   * stale-but-authentic data — passes verification by design; the
//     section's as_of freshness horizon surfaces the staleness to the
//     caller (kv::ReadOrigin), it is never hidden.
//
// Threading: lives on its owning shard's executor thread like every
// other protocol object (one lookup timer per in-flight request).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cache/cache_node.h"
#include "cache/cache_wire.h"
#include "crypto/verify_cache.h"
#include "exec/executor.h"
#include "net/transport.h"
#include "ustor/types.h"

namespace faust::cache {

/// Verified per-register outcome of a lookup.
enum class Outcome : std::uint8_t {
  kMiss = 0,      // cache had nothing (or the lookup timed out)
  kServed = 1,    // verified full value (Section::value)
  kUnchanged = 2, // verified "digest equals your base": reuse the memo
  kNegative = 3,  // plausible never-written claim (unverifiable but consistent)
  kRejected = 4,  // verification failed: Byzantine or poisoned — fall back
};

/// The client-side verifier & fill pump for one (client, shard) pair.
class CacheClient : public net::Node {
 public:
  struct Section {
    Outcome outcome = Outcome::kMiss;
    Timestamp writer_ts = 0;
    crypto::Hash digest{};  // verified digest (kServed / kUnchanged)
    BytesView value;        // kServed only; valid during the callback
    Timestamp as_of = 0;    // freshness horizon (advisory, see file comment)
  };

  struct Result {
    bool timed_out = false;
    std::vector<Section> sections;  // [j-1]
  };

  /// Invoked once per lookup, on the executor thread. Section value views
  /// alias the reply buffer: consume (decode/copy) within the callback.
  using LookupHandler = std::function<void(const Result&)>;

  /// What the caller already holds verified for X_j: present=true
  /// advertises `digest` (enabling kUnchanged AND arming the
  /// bogus-negative rejection).
  struct Base {
    bool present = false;
    crypto::Hash digest{};
  };

  /// Attaches to `net` under cache_endpoint(id); talks to `cache_node`.
  /// `sigs` is the deployment's client-shared signature scheme (wrapped in
  /// a private VerifyCache so recurring tuples verify in O(1)).
  CacheClient(ClientId id, NodeId cache_node, int n,
              std::shared_ptr<const crypto::SignatureScheme> sigs,
              ustor::DigestMode digest_mode, net::Transport& net, exec::Executor& exec,
              exec::Time lookup_timeout = 2'000);
  ~CacheClient() override;

  CacheClient(const CacheClient&) = delete;
  CacheClient& operator=(const CacheClient&) = delete;

  /// One bulk lookup for all n registers. `bases[j-1]` advertises the
  /// caller's verified digest of X_j (see Base). Multiple lookups may be
  /// in flight (request-id correlated). `allow_stale` is the D10 degraded
  /// mode: the cache also serves expired-but-held entries (without TTL
  /// refresh) — set only when the home shard is unreachable and
  /// stale-but-authentic beats nothing.
  void lookup(std::vector<Base> bases, LookupHandler done, bool allow_stale = false);

  /// Fire-and-forget CACHE_FILL of verified tuples (read-through or
  /// writer push). Sections with present=false are negative fills.
  void fill(std::vector<FillSection> sections);

  void on_message(NodeId from, BytesView msg) override;

  ClientId id() const { return id_; }

  // --- Counters ---------------------------------------------------------
  std::uint64_t lookups_sent() const { return lookups_sent_; }
  std::uint64_t sections_served() const { return served_; }
  std::uint64_t sections_unchanged() const { return unchanged_; }
  std::uint64_t sections_negative() const { return negative_; }
  std::uint64_t sections_missed() const { return missed_; }
  std::uint64_t sections_rejected() const { return rejected_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t fills_sent() const { return fills_sent_; }
  std::uint64_t malformed_replies() const { return malformed_; }

 private:
  struct Pending {
    std::vector<Base> bases;
    LookupHandler done;
    exec::EventId timer = 0;
  };

  /// Verifies one raw reply section against its advertised base; returns
  /// the checked Section (kRejected on any failure).
  Section verify_section(ClientId j, const ReplySectionView& raw, const Base& base);

  void complete_missed(std::uint64_t req_id);

  const ClientId id_;
  const NodeId self_;
  const NodeId cache_node_;
  const int n_;
  const std::shared_ptr<const crypto::VerifyCache> sigs_;
  const ustor::DigestMode digest_mode_;
  net::Transport& net_;
  exec::Executor& exec_;
  const exec::Time lookup_timeout_;

  std::uint64_t next_req_ = 1;
  std::map<std::uint64_t, Pending> pending_;

  std::uint64_t lookups_sent_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t unchanged_ = 0;
  std::uint64_t negative_ = 0;
  std::uint64_t missed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t fills_sent_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace faust::cache
