// Wire format of the edge-cache tier (DESIGN.md D8).
//
// Three message types on tags 6–8 (disjoint from ustor::MsgType, sharing
// the net::Network / rt::ThreadBus per-type byte-accounting buckets):
//
//   CACHE_GET   client → cache   one bulk lookup for all n register
//                                partitions of a shard, each slot
//                                optionally advertising the digest of the
//                                content the client already holds verified
//                                (the D6 "unchanged" idea applied to the
//                                cache hop);
//   CACHE_REPLY cache → client   one section per register: a full hit
//                                (value bytes), an O(1) "unchanged" token
//                                (digest matched the advertised base, no
//                                bytes), a negative entry (the cache
//                                believes the register was never written),
//                                or a miss;
//   CACHE_FILL  client → cache   verified read-through / writer push
//                                fills: (writer_ts, digest, DATA
//                                signature, value) tuples the cache may
//                                store and re-serve. Fire-and-forget.
//
// Trust model: the cache verifies NOTHING (it holds no keys) and clients
// trust NOTHING the cache says — every served section is re-verified
// against the writer's DATA signature before use (cache_client.h), and
// both sides decode defensively (wire::Reader hardening), since either
// peer may be Byzantine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "crypto/sha256.h"

namespace faust::cache {

/// Node id of a deployment's cache node, and the per-client endpoint ids
/// the cache-facing client halves attach under. Far outside the protocol
/// range (server = 0, clients 1..n) so the spaces can never collide.
inline constexpr NodeId kCacheNodeId = 1'000'000;
inline constexpr NodeId cache_endpoint(ClientId i) { return kCacheNodeId + i; }

/// Leading wire tags (bucketed by the transports exactly like
/// ustor::MsgType; values chosen from the free range below kTypeBuckets).
enum class MsgType : std::uint8_t {
  kGet = 6,
  kReply = 7,
  kFill = 8,
};

/// Per-register outcome in a CACHE_REPLY.
enum class SectionStatus : std::uint8_t {
  kMiss = 0,       // nothing cached (or expired)
  kHit = 1,        // full (writer_ts, digest, sig, value) tuple
  kUnchanged = 2,  // digest equals the advertised base; no bytes shipped
  kNegative = 3,   // cache believes the register was never written
};

/// CACHE_GET: one lookup covering registers 1..n.
struct GetMessage {
  std::uint64_t req_id = 0;
  /// D10 degraded mode: serve expired-but-held entries too (without
  /// refreshing their TTL). Set only by clients whose home shard is
  /// unreachable — stale-but-authentic data, truthfully bounded by each
  /// section's as_of, beats no data. Normal lookups leave this false and
  /// expired entries count as misses.
  bool allow_stale = false;
  /// [j-1]: digest of the verified content of X_j the client already
  /// holds decoded (enables the unchanged fast path), or nullopt.
  std::vector<std::optional<crypto::Hash>> bases;
};

/// One register's section of a CACHE_REPLY (zero-copy views into the
/// message buffer; valid only during the on_message call).
struct ReplySectionView {
  SectionStatus status = SectionStatus::kMiss;
  Timestamp writer_ts = 0;   // hit/unchanged
  crypto::Hash digest{};     // hit: x̄ of value; unchanged: echoed base
  BytesView sig;             // hit/unchanged: writer's DATA signature
  BytesView value;           // hit only: the partition bytes
  /// FAUST timestamp of the observing read (or write) the filler verified
  /// this content at — the freshness horizon a cached read surfaces.
  /// Advisory: an untrusted cache can lie here, which makes the data at
  /// worst stale-but-authentic (the signature still binds ts and bytes).
  Timestamp as_of = 0;
};

struct ReplyMessageView {
  std::uint64_t req_id = 0;
  std::vector<ReplySectionView> sections;  // [j-1]
};

/// One register's tuple in a CACHE_FILL (and the owned form the cache
/// node builds replies from).
struct FillSection {
  ClientId writer = 0;
  bool present = false;  // false = negative entry (register never written)
  Timestamp writer_ts = 0;
  crypto::Hash digest{};
  Bytes sig;
  Bytes value;
  Timestamp as_of = 0;
};

struct FillSectionView {
  ClientId writer = 0;
  bool present = false;
  Timestamp writer_ts = 0;
  crypto::Hash digest{};
  BytesView sig;
  BytesView value;
  Timestamp as_of = 0;
};

struct FillMessageView {
  std::vector<FillSectionView> sections;
};

/// Owned section the cache node hands to encode_reply (values alias the
/// cache's stored buffers via shared ownership).
struct OutSection {
  SectionStatus status = SectionStatus::kMiss;
  Timestamp writer_ts = 0;
  crypto::Hash digest{};
  Bytes sig;
  std::shared_ptr<const Bytes> value;  // hit only
  Timestamp as_of = 0;
};

Bytes encode_get(const GetMessage& m);
Bytes encode_reply(std::uint64_t req_id, const std::vector<OutSection>& sections);
Bytes encode_fill(const std::vector<FillSection>& sections);

/// Hardened decoders: nullopt on any malformed input (wrong tag, short
/// buffer, out-of-range counts, trailing garbage). Views alias `data`.
std::optional<GetMessage> decode_get(BytesView data);
std::optional<ReplyMessageView> decode_reply_view(BytesView data);
std::optional<FillMessageView> decode_fill_view(BytesView data);

}  // namespace faust::cache
