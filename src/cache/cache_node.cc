#include "cache/cache_node.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace faust::cache {

CacheNode::CacheNode(NodeId self, net::Transport& net, exec::Executor& exec, int n,
                     CacheOptions opts)
    : exec_(exec),
      self_(self),
      net_(net),
      n_(n),
      opts_(opts),
      entries_(static_cast<std::size_t>(n)) {
  FAUST_CHECK(n >= 1);
  net_.attach(self_, *this);
}

CacheNode::~CacheNode() { net_.detach(self_); }

bool CacheNode::holds(ClientId j) const {
  if (j < 1 || j > n_) return false;
  const auto& e = entries_[static_cast<std::size_t>(j - 1)];
  return e.has_value() && !entry_expired(*e);
}

bool CacheNode::entry_expired(const Entry& e) const {
  return opts_.ttl > 0 && exec_.now() > e.filled_at + opts_.ttl;
}

void CacheNode::corrupt_reply(NodeId /*to*/, std::vector<OutSection>& /*sections*/) {}

void CacheNode::on_message(NodeId from, BytesView msg) {
  if (msg.empty()) {
    ++malformed_;
    return;
  }
  switch (static_cast<MsgType>(msg[0])) {
    case MsgType::kGet: {
      const auto m = decode_get(msg);
      if (!m.has_value()) {
        ++malformed_;
        return;
      }
      handle_get(from, *m);
      return;
    }
    case MsgType::kFill: {
      const auto m = decode_fill_view(msg);
      if (!m.has_value()) {
        ++malformed_;
        return;
      }
      handle_fill(*m);
      return;
    }
    default:
      // A reply addressed to a cache, or an unknown tag: a confused or
      // malicious peer. Drop — the cache has nothing to fail.
      ++malformed_;
      return;
  }
}

void CacheNode::handle_get(NodeId from, const GetMessage& m) {
  ++lookups_;
  std::vector<OutSection> sections(static_cast<std::size_t>(n_));
  const std::size_t asked = std::min(m.bases.size(), sections.size());
  for (std::size_t slot = 0; slot < sections.size(); ++slot) {
    OutSection& out = sections[slot];
    std::optional<Entry>& e = entries_[slot];
    const bool expired = e.has_value() && entry_expired(*e);
    if (expired && !m.allow_stale) {
      ++expirations_;
      arena_used_ -= e->charge();
      e.reset();
    }
    if (!e.has_value()) {
      ++misses_;
      continue;  // kMiss
    }
    // D10 degraded lookup: an allow_stale get serves the expired entry
    // as held — as_of still truthfully bounds its freshness — but does
    // NOT refresh its TTL; normal lookups will still expire it.
    if (expired) ++stale_served_;
    e->last_used = ++lru_clock_;
    if (!e->present) {
      ++negatives_served_;
      out.status = SectionStatus::kNegative;
      out.as_of = e->as_of;
      continue;
    }
    const std::optional<crypto::Hash>& base = slot < asked ? m.bases[slot] : std::nullopt;
    if (base.has_value() && *base == e->digest) {
      ++unchanged_;
      out.status = SectionStatus::kUnchanged;
    } else {
      ++hits_;
      out.status = SectionStatus::kHit;
      out.value = e->value;
    }
    out.writer_ts = e->writer_ts;
    out.digest = e->digest;
    out.sig = e->sig;
    out.as_of = e->as_of;
  }
  corrupt_reply(from, sections);
  net_.send(self_, from, encode_reply(m.req_id, sections));
}

void CacheNode::handle_fill(const FillMessageView& m) {
  if (!accept_fills()) return;
  for (const FillSectionView& s : m.sections) {
    if (s.writer < 1 || s.writer > n_) {
      ++fills_rejected_;
      continue;
    }
    std::optional<Entry>& e = slot(s.writer);
    if (e.has_value() && entry_expired(*e)) {
      ++expirations_;
      arena_used_ -= e->charge();
      e.reset();
    }
    if (!s.present) {
      // Negative fill: never displaces a present entry (registers are
      // write-once-direction: ⊥ → written, never back).
      if (e.has_value() && e->present) {
        ++fills_rejected_;
        continue;
      }
      if (e.has_value() && s.as_of <= e->as_of) {
        ++fills_rejected_;
        continue;
      }
      Entry fresh;
      fresh.present = false;
      fresh.as_of = s.as_of;
      fresh.filled_at = exec_.now();
      fresh.last_used = ++lru_clock_;
      if (e.has_value()) {
        ++fills_refreshed_;
      } else {
        ++fills_accepted_;
      }
      e = std::move(fresh);
      continue;
    }
    if (e.has_value() && e->present) {
      if (s.writer_ts < e->writer_ts) {
        ++fills_rejected_;  // an older (delayed) fill never regresses
        continue;
      }
      if (s.writer_ts == e->writer_ts) {
        if (s.digest == e->digest) {
          // Re-observation of the held content: refresh TTL + freshness.
          e->filled_at = exec_.now();
          e->as_of = std::max(e->as_of, s.as_of);
          e->last_used = ++lru_clock_;
          ++fills_refreshed_;
        } else {
          // Conflicting content at the same timestamp: unverifiable from
          // here. Keep what we have; TTL expiry washes the slot either
          // way, and readers reject whichever side fails verification.
          ++fills_rejected_;
        }
        continue;
      }
    }
    if (s.value.size() > opts_.arena_bytes) {
      ++fills_rejected_;  // could never fit, even alone
      continue;
    }
    Entry fresh;
    fresh.present = true;
    fresh.writer_ts = s.writer_ts;
    fresh.digest = s.digest;
    fresh.sig = Bytes(s.sig.begin(), s.sig.end());
    fresh.value = std::make_shared<const Bytes>(s.value.begin(), s.value.end());
    fresh.as_of = s.as_of;
    fresh.filled_at = exec_.now();
    fresh.last_used = ++lru_clock_;
    if (e.has_value()) arena_used_ -= e->charge();
    arena_used_ += fresh.charge();
    e = std::move(fresh);
    ++fills_accepted_;
    enforce_arena();
  }
}

void CacheNode::enforce_arena() {
  while (arena_used_ > opts_.arena_bytes) {
    std::size_t victim = entries_.size();
    std::uint64_t oldest = 0;
    for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
      const std::optional<Entry>& e = entries_[slot];
      if (!e.has_value() || !e->present) continue;  // negatives are free
      if (victim == entries_.size() || e->last_used < oldest) {
        victim = slot;
        oldest = e->last_used;
      }
    }
    if (victim == entries_.size()) return;  // nothing chargeable left
    arena_used_ -= entries_[victim]->charge();
    entries_[victim].reset();
    ++evictions_;
  }
}

}  // namespace faust::cache
