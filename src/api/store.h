// faust::api::Store — ONE client surface over every deployment shape.
//
// The paper's client interface is a single fail-aware store: put/get plus
// the stable_i / fail_i output actions. After the sharding and threading
// work the repository grew three divergent C++ surfaces (kv::KvClient,
// shard::ShardedKvClient, raw FaustClient) with incompatible handler
// signatures and hand-rolled "step until this flag flips" completion
// loops in every caller. This facade unifies them (DESIGN.md, decision
// D4):
//
//   * uniform result structs — PutResult / GetResult / ListResult carry
//     the same fail/stability context on every backend (a plain
//     single-deployment get now reports its observing-read timestamp just
//     like a sharded one);
//   * a completion-token model — every operation takes a plain callback
//     OR returns an awaitable Ticket<T> whose wait()/settle() resolves
//     against the deployment's execution substrate through the
//     exec::Executor seam (blocking under threaded runtimes, scheduler-
//     stepping in deterministic mode), so callers never hand-roll event
//     loops;
//   * a pipelined, coalescing batch entry point — apply(vector<Op>)
//     routes each op to its home shard, keeps per-shard program order,
//     folds adjacent mutations into ONE signed publication and adjacent
//     reads into ONE merged snapshot per shard, and runs the S per-shard
//     chains concurrently (genuinely parallel under kThreaded);
//   * one event subscription — on_event replaces the per-class on_fail /
//     on_stable hooks: shard failures and stability-cut advances arrive
//     through a single handler regardless of deployment shape.
//
// Backends are built by the open_store() factories: over one Cluster
// (wrapping kv::KvClient) or over a shard::ShardedCluster (wrapping
// shard::ShardedKvClient, both execution modes). The legacy classes stay
// as the internal engines — and as the independently-testable oracles the
// differential tests replay against.
//
// Threading contract: one logical client = one issuing thread (the
// paper's well-formed executions). Callbacks and events fire on the
// deployment's executor thread(s): inline/scheduler context when
// deterministic, shard runtime threads when threaded.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "faust/faust_client.h"  // FailureReason
#include "kvstore/kv_client.h"   // kv::KvEntry, kv::KvChange

namespace faust {
class Cluster;
}
namespace faust::shard {
class ShardedCluster;
}
namespace faust::sim {
class Scheduler;
}

namespace faust::api {

// --- Result structs --------------------------------------------------------

/// Typed outcome of an operation (D10). `failed` on the result structs
/// stays the catch-all boolean (`failed == (status != kOk)` for puts and
/// gets, except degraded cache-served gets, which are kOk); the status
/// distinguishes WHY, because the reactions differ:
///   kFailed      — fail_i fired on the home shard: the server misbehaved,
///                  cryptographic evidence exists, stop trusting it.
///   kTimedOut    — the wait deadline expired: a timing fault, NOT
///                  misbehavior. The operation itself is still in flight
///                  and may complete; the deadline abandons the wait, not
///                  the op. Retry/backoff territory.
///   kUnavailable — the shard's breaker is open (consecutive timeouts):
///                  the op was refused fast instead of queued behind a
///                  partition. Reads may still be served degraded from
///                  the cache tier (flagged cached/as_of, never stable).
enum class Status : std::uint8_t {
  kOk = 0,
  kFailed,
  kTimedOut,
  kUnavailable,
};

/// Completion of a put/erase (one publication to the writer's register).
struct PutResult {
  /// FAUST timestamp of the register write. 0 when no write was issued:
  /// either the op was a no-op (erase of an absent key, failed=false) or
  /// the home shard had failed (failed=true).
  Timestamp ts = 0;
  /// True iff the write was already covered by the home shard's stability
  /// cut when the result materialized (rarely true for a fresh write; ask
  /// Store::stable_ts later for the cut's progress).
  bool stable = false;
  std::size_t shard = 0;  ///< home shard (always 0 on a single deployment)
  bool failed = false;    ///< the op did not take effect (see status)
  Status status = Status::kOk;  ///< typed outcome (D10)
};

/// Completion of a point lookup (one merged snapshot of the home shard).
struct GetResult {
  std::optional<kv::KvEntry> entry;  ///< winning (value, writer, seq), if any
  /// Largest FAUST timestamp among the observing register reads; the
  /// merged value is in the linearizable prefix once the home shard's
  /// stability cut covers it (Def. 5 item 6).
  Timestamp read_ts = 0;
  bool stable = false;    ///< read_ts covered by the cut at completion time
  std::size_t shard = 0;  ///< home shard of the key
  bool failed = false;    ///< fail_i had fired on the home shard
  /// D8 edge cache: at least one register of the observing snapshot was
  /// served by the home shard's cache — verified authentic, but possibly
  /// stale up to `as_of` (the fill-time freshness horizon). A cached
  /// result is never reported stable: stability claims attach only to
  /// snapshots whose registers were all read through the FAUST engine.
  bool cached = false;
  Timestamp as_of = 0;
  /// Typed outcome (D10). A degraded read served stale from the cache
  /// while its shard's breaker is open reports kOk with cached=true and
  /// as_of set — usable data, truthfully flagged; kUnavailable means not
  /// even the cache could answer.
  Status status = Status::kOk;
};

/// Completion of a full listing (merged across every shard).
struct ListResult {
  std::map<std::string, kv::KvEntry> entries;
  bool complete = false;  ///< false when a failed shard's keys are missing
};

bool operator==(const PutResult& a, const PutResult& b);
bool operator==(const GetResult& a, const GetResult& b);
bool operator==(const ListResult& a, const ListResult& b);

// --- Batch ops -------------------------------------------------------------

/// One operation of a batched apply().
struct Op {
  enum class Kind { kPut, kErase, kGet, kList };
  Kind kind = Kind::kPut;
  std::string key;
  std::string value;  // kPut only

  static Op put(std::string key, std::string value) {
    return Op{Kind::kPut, std::move(key), std::move(value)};
  }
  static Op erase(std::string key) { return Op{Kind::kErase, std::move(key), {}}; }
  static Op get(std::string key) { return Op{Kind::kGet, std::move(key), {}}; }
  static Op list() { return Op{Kind::kList, {}, {}}; }
};

/// Per-op results of a batch, in the batch's op order. Exactly one of the
/// result members is meaningful per op (matching its kind).
struct OpResult {
  Op::Kind kind = Op::Kind::kPut;
  PutResult put;    // kPut / kErase
  GetResult get;    // kGet
  ListResult list;  // kList
};

struct BatchResult {
  std::vector<OpResult> results;
  /// True iff no op in the batch completed with a failure outcome.
  bool ok = false;
};

// --- Events ----------------------------------------------------------------

/// Unified fail-aware notifications (replaces the per-class on_fail /
/// on_stable hooks).
struct Event {
  enum class Kind {
    kShardFailed,        ///< fail_i fired on `shard` (reason set)
    kStabilityAdvanced,  ///< `shard`'s stability cut advanced (stable_ts set)
  };
  Kind kind = Kind::kShardFailed;
  std::size_t shard = 0;
  FailureReason reason = FailureReason::kUstorDetected;  // kShardFailed
  Timestamp stable_ts = 0;  // kStabilityAdvanced: new fully-stable timestamp
};

// --- Completion tokens -----------------------------------------------------

namespace detail {

/// Per-store resolution context shared by all of its tickets. How a
/// ticket resolves depends on the deployment's execution substrate:
/// kStep drives the shared sim::Scheduler (deterministic mode — stepping
/// IS the only way anything completes); kBlock blocks the calling thread
/// until an executor thread delivers the result (threaded runtimes).
struct StoreCore {
  enum class Mode { kStep, kBlock };
  Mode mode = Mode::kStep;
  sim::Scheduler* sched = nullptr;  // kStep only
  std::mutex mu;                    // guards every ticket's value slot
  std::condition_variable cv;       // kBlock completion signal
  std::size_t step_budget = 10'000'000;               // kStep resolve bound
  std::chrono::milliseconds wait_timeout{120'000};    // kBlock resolve bound

  /// Sentinel shard for tickets without a single home shard (batches).
  static constexpr std::size_t kNoShard = ~std::size_t{0};

  // D10 per-shard health (consecutive-timeout breaker). Lives in the
  // shared core because tickets — the component that observes deadline
  // expiry — may outlive the Store. All fields below are guarded by mu.
  struct ShardHealth {
    std::uint32_t consecutive_timeouts = 0;
    bool open = false;       // breaker tripped: refuse ops fast
    std::uint32_t skipped = 0;  // ops refused since it opened/last probe
    bool probing = false;    // one recovery probe is in flight
    std::uint64_t opens = 0; // times the breaker tripped (diagnostics)
  };
  std::uint32_t breaker_threshold = 0;  // 0 = breaker disabled (default)
  std::uint32_t breaker_cooldown = 4;   // refusals between recovery probes
  std::vector<ShardHealth> health;

  /// A ticket wait on `shard` expired: count it; trip at the threshold.
  void note_timeout(std::size_t shard);
  /// The shard answered (any real completion): reset and close.
  void note_contact(std::size_t shard);
  /// Plan-time gate: true if ops to `shard` must be refused right now.
  /// Every `breaker_cooldown`-th refused op is let through instead as the
  /// recovery probe (half-open); its completion closes the breaker, its
  /// timeout re-arms it.
  bool breaker_blocks(std::size_t shard);
  bool breaker_open(std::size_t shard);
};

template <typename T>
struct TicketState {
  std::shared_ptr<StoreCore> core;
  std::optional<T> value;  // guarded by core->mu
  /// Home shard for breaker attribution; kNoShard when not attributable.
  std::size_t shard = StoreCore::kNoShard;
};

/// Per-result-type hooks for the D10 breaker: how a timeout is stamped
/// into the result and whether a resolved value proves the shard spoke.
template <typename T>
struct ShardOutcome {
  static void mark_timeout(T&, std::size_t) {}
  static bool counts_as_contact(const T&) { return false; }
};
template <>
struct ShardOutcome<PutResult> {
  static void mark_timeout(PutResult& r, std::size_t shard) {
    r.shard = shard;
    r.status = Status::kTimedOut;
  }
  static bool counts_as_contact(const PutResult& r) {
    return r.status == Status::kOk || r.status == Status::kFailed;
  }
};
template <>
struct ShardOutcome<GetResult> {
  static void mark_timeout(GetResult& r, std::size_t shard) {
    r.shard = shard;
    r.status = Status::kTimedOut;
  }
  static bool counts_as_contact(const GetResult& r) {
    // Cache-served degraded reads never touched the shard.
    return !r.cached && (r.status == Status::kOk || r.status == Status::kFailed);
  }
};

/// The result a wait()/settle() returns when the operation cannot
/// complete within the resolve bound (e.g. a crashed server that no peer
/// has reported yet). The ticket itself stays pending and will still be
/// settled by fail_i or store destruction.
template <typename T>
T unresolved_result();

bool drain_scheduler(StoreCore& core, const std::function<bool()>& ready);

// Batch execution plan (defined in store.cc).
struct Step;
struct BatchCtx;

}  // namespace detail

/// Awaitable handle for one operation's result. Obtained from the
/// ticket-returning Store overloads; default-constructed tickets are
/// invalid. wait() and settle() are the same mode-aware resolve under two
/// names — "wait" reads naturally against a threaded runtime (the caller
/// blocks), "settle" against the deterministic scheduler (the caller
/// steps it) — so code written with either ports across modes unchanged.
template <typename T>
class Ticket {
 public:
  Ticket() = default;

  bool valid() const { return st_ != nullptr; }

  /// True once the operation completed (or was settled with its failure
  /// outcome by fail_i or store destruction).
  bool ready() const {
    FAUST_CHECK(st_);
    std::lock_guard lock(st_->core->mu);
    return st_->value.has_value();
  }

  /// Resolves and returns the result: steps the deterministic scheduler
  /// until the operation completes (kStep) or blocks on the executor
  /// threads (kBlock). If the resolve bound (step_budget / wait_timeout)
  /// expires first, returns a Status::kTimedOut result and leaves the
  /// ticket pending — the deadline abandons the WAIT, not the operation,
  /// which may still complete (and still be settled by fail_i or store
  /// destruction). A timeout feeds the shard's D10 breaker.
  T wait() { return wait_bounded(st_ ? st_->core->wait_timeout : std::chrono::milliseconds{0}); }

  /// wait() with a per-call deadline overriding the store-wide
  /// wait_timeout (kBlock mode; under kStep the step budget bounds the
  /// resolve either way).
  T wait_for(std::chrono::milliseconds deadline) { return wait_bounded(deadline); }

  /// Synonym of wait() (the deterministic-mode reading of the resolve).
  T settle() { return wait(); }

  /// The resolved result; ready() must be true.
  T result() const {
    FAUST_CHECK(st_);
    std::lock_guard lock(st_->core->mu);
    FAUST_CHECK(st_->value.has_value());
    return *st_->value;
  }

 private:
  friend class Store;
  explicit Ticket(std::shared_ptr<detail::TicketState<T>> st) : st_(std::move(st)) {}

  T wait_bounded(std::chrono::milliseconds deadline) {
    FAUST_CHECK(st_);
    detail::StoreCore& core = *st_->core;
    bool resolved;
    if (core.mode == detail::StoreCore::Mode::kStep) {
      resolved = detail::drain_scheduler(core, [this] {
        std::lock_guard lock(st_->core->mu);
        return st_->value.has_value();
      });
    } else {
      std::unique_lock lock(core.mu);
      resolved = core.cv.wait_for(lock, deadline, [this] { return st_->value.has_value(); });
    }
    if (!resolved) {
      if (st_->shard != detail::StoreCore::kNoShard) core.note_timeout(st_->shard);
      T r = detail::unresolved_result<T>();
      if (st_->shard != detail::StoreCore::kNoShard) {
        detail::ShardOutcome<T>::mark_timeout(r, st_->shard);
      }
      return r;
    }
    T r;
    {
      std::lock_guard lock(core.mu);
      r = *st_->value;
    }
    if (st_->shard != detail::StoreCore::kNoShard &&
        detail::ShardOutcome<T>::counts_as_contact(r)) {
      core.note_contact(st_->shard);
    }
    return r;
  }

  std::shared_ptr<detail::TicketState<T>> st_;
};

// --- The store -------------------------------------------------------------

/// The unified fail-aware key-value store. Instances come from the
/// open_store() factories below; the API is identical regardless of
/// deployment shape (single / sharded) and execution mode (deterministic
/// / threaded).
class Store {
 public:
  using PutHandler = std::function<void(const PutResult&)>;
  using GetHandler = std::function<void(const GetResult&)>;
  using ListHandler = std::function<void(const ListResult&)>;
  using BatchHandler = std::function<void(const BatchResult&)>;
  using EventHandler = std::function<void(const Event&)>;

  /// Destruction settles every in-flight operation (and with it every
  /// outstanding ticket) with its failure outcome, so handlers are never
  /// silently dropped. Same contract as the engines underneath: tear the
  /// store down before (or together with) its deployment, stopping a
  /// threaded deployment first.
  virtual ~Store() = default;

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  // -- Callback forms -------------------------------------------------------

  void put(std::string key, std::string value, PutHandler done);
  void erase(std::string key, PutHandler done);
  void get(std::string key, GetHandler done);
  void list(ListHandler done);

  /// Pipelined batch: ops are routed to their home shards, per-shard
  /// program order is preserved, and the per-shard chains run
  /// concurrently. Adjacent mutations on one shard coalesce into ONE
  /// publication (sharing its timestamp; every put/erase still draws its
  /// own sequence number, so winners are exactly as if issued
  /// individually); adjacent reads on one shard share ONE merged
  /// snapshot. A kList op takes one snapshot on EVERY shard, each at that
  /// shard's current position in the batch. Results arrive in op order.
  void apply(std::vector<Op> ops, BatchHandler done);

  // -- Ticket forms ---------------------------------------------------------

  Ticket<PutResult> put(std::string key, std::string value);
  Ticket<PutResult> erase(std::string key);
  Ticket<GetResult> get(std::string key);
  Ticket<ListResult> list();
  Ticket<BatchResult> apply(std::vector<Op> ops);

  // -- Events ---------------------------------------------------------------

  /// Installs the unified event handler. Install before traffic starts;
  /// under a threaded deployment events fire on shard runtime threads.
  void on_event(EventHandler handler) { events_ = std::move(handler); }

  // -- Deadlines & degradation (D10) ---------------------------------------

  /// Store-wide ticket-wait deadline (kBlock mode; default 120 s). Waits
  /// that outlast it resolve to Status::kTimedOut — typed, prompt, never
  /// a silent hang — while the op itself stays in flight.
  void set_wait_timeout(std::chrono::milliseconds t) { core_->wait_timeout = t; }
  /// kStep resolve bound: scheduler steps a wait may consume before
  /// resolving to Status::kTimedOut.
  void set_step_budget(std::size_t steps) { core_->step_budget = steps; }

  /// Arms the per-shard consecutive-timeout breaker: after `threshold`
  /// ticket waits on one shard expire back-to-back, ops to that shard are
  /// refused fast with Status::kUnavailable (writes) or served degraded
  /// from the cache tier (reads; flagged cached/as_of, never stable)
  /// instead of queuing behind a partition. Every `cooldown_ops`-th
  /// refusal is let through as a recovery probe; its completion closes
  /// the breaker. threshold 0 disables (the default).
  void set_breaker(std::uint32_t threshold, std::uint32_t cooldown_ops = 4) {
    std::lock_guard lock(core_->mu);
    core_->breaker_threshold = threshold;
    core_->breaker_cooldown = cooldown_ops == 0 ? 1 : cooldown_ops;
  }
  /// True while shard `s`'s breaker is open.
  bool breaker_open(std::size_t s) const { return core_->breaker_open(s); }

  // -- Introspection --------------------------------------------------------

  virtual ClientId id() const = 0;
  virtual std::size_t shards() const = 0;
  virtual std::size_t home_shard(std::string_view key) const = 0;
  /// The fully-stable timestamp of this client on shard `s`.
  virtual Timestamp stable_ts(std::size_t shard) const = 0;
  /// fail_i fired on shard `s`. Threaded mode: meaningful at quiescence.
  virtual bool failed(std::size_t shard) const = 0;
  bool any_failed() const;

  /// Re-evaluates an earlier result against the CURRENT stability cut
  /// (results snapshot `stable` at completion time; the cut advances
  /// behind them).
  bool stable(const GetResult& r) const;
  bool stable(const PutResult& r) const;

 protected:
  Store() : core_(std::make_shared<detail::StoreCore>()) {}

  // The engine hooks every backend provides; apply() and the single-op
  // forms are built on nothing else.

  /// Draws the next sequence ticket from the backend's (cross-shard)
  /// counter. Called at plan time, in batch program order — which is what
  /// makes a batch's winners and exact per-entry sequence numbers
  /// identical on every backend, independent of shard-chain execution
  /// order.
  virtual std::uint64_t engine_next_seq() = 0;

  /// `done(ts, failed)` — apply `changes` (with their pre-drawn tickets)
  /// to shard `s` in one publication (KvClient::apply_with_seqs
  /// semantics: all-no-op runs publish nothing and report ts=0).
  using MutateDone = std::function<void(Timestamp ts, bool failed)>;
  virtual void engine_mutate(std::size_t shard, std::vector<kv::KvClient::SeqChange> changes,
                             MutateDone done) = 0;

  /// `done(merged, read_ts, origin)` — one full merged snapshot of shard
  /// `s` (null when the shard failed). The map is BORROWED: valid only
  /// for the duration of the callback (it may be the engine's merged-view
  /// memo, served without a copy — a batch's gets read it in place and
  /// only kList contributions copy out of it). `origin` is the snapshot's
  /// cache provenance (kv::ReadOrigin).
  using SnapshotDone = std::function<void(const std::map<std::string, kv::KvEntry>*,
                                          Timestamp, const kv::ReadOrigin&)>;
  virtual void engine_snapshot(std::size_t shard, SnapshotDone done) = 0;

  /// D10 graceful degradation: a cache-only snapshot of shard `s`, taken
  /// while its breaker is open — the shard itself is NOT contacted.
  /// Backends with a cache tier override this to serve expired-but-held
  /// entries (flagged via origin.cached/as_of); the default reports the
  /// shard unreachable (null map → Status::kUnavailable).
  virtual void engine_degraded_snapshot(std::size_t shard, SnapshotDone done) {
    (void)shard;
    done(nullptr, 0, kv::ReadOrigin{});
  }

  /// Implementations forward fail_i / stable_i through this.
  void emit(const Event& e) {
    if (events_) events_(e);
  }

  /// Derived destructors call this FIRST. A batch chain whose current
  /// step is settled by destruction must not issue its REMAINING steps
  /// into the tearing-down deployment (they would re-arm pending slots
  /// after the settle pass drained them, and their tickets would never
  /// resolve); once closing, run_step synthesizes failure outcomes for
  /// the rest of the chain inline.
  void begin_close() { closing_.store(true, std::memory_order_release); }

  /// Creates a ticket and issues the op with a callback that resolves it.
  /// `shard` attributes the ticket's wait outcomes to a home shard for
  /// the D10 breaker (kNoShard = not attributable, e.g. batches).
  template <typename T, typename Issue>
  Ticket<T> make_ticket(Issue issue, std::size_t shard = detail::StoreCore::kNoShard) {
    auto st = std::make_shared<detail::TicketState<T>>();
    st->core = core_;
    st->shard = shard;
    issue([st](const T& result) {
      {
        std::lock_guard lock(st->core->mu);
        if (!st->value.has_value()) st->value = result;
      }
      st->core->cv.notify_all();
    });
    return Ticket<T>(st);
  }

  std::shared_ptr<detail::StoreCore> core_;

 private:
  /// Executes one step of a batch's per-shard chain, then recurses to the
  /// next from the completion callback (see store.cc).
  void run_step(std::size_t shard, std::size_t step_index,
                std::shared_ptr<std::vector<std::vector<detail::Step>>> plan,
                std::shared_ptr<detail::BatchCtx> ctx);

  /// Plan-time mirror of the client's live keys (this store is the only
  /// writer of its partitions, so the mirror is exact): decides the
  /// no-op-erase rule without touching shard-thread state. Only the
  /// issuing thread reads or writes it.
  std::set<std::string> own_keys_;

  std::atomic<bool> closing_{false};  // see begin_close()

  EventHandler events_;
};

// --- Factories -------------------------------------------------------------

/// Opens the store of client `id` over a single FAUST deployment. The
/// cluster must outlive the store; at most one store (or legacy KvClient)
/// per (cluster, id).
std::unique_ptr<Store> open_store(Cluster& cluster, ClientId id);

/// Opens the store of client `id` over a sharded deployment (either
/// execution mode). Same lifetime rules, against every shard.
std::unique_ptr<Store> open_store(shard::ShardedCluster& deployment, ClientId id);

}  // namespace faust::api
