// api::Store over ONE FAUST deployment: wraps a kv::KvClient (the legacy
// single-deployment engine) and adds the facade's uniform result,
// settling and event semantics. shard is always 0.
#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "api/store.h"
#include "faust/cluster.h"

namespace faust::api {
namespace {

class SingleStore final : public Store {
 public:
  SingleStore(Cluster& cluster, ClientId id)
      : cluster_(cluster), faust_(cluster.client(id)), kv_(faust_) {
    if (cluster_.simulated()) {
      core_->mode = detail::StoreCore::Mode::kStep;
      core_->sched = &cluster_.sched();
    } else {
      core_->mode = detail::StoreCore::Mode::kBlock;
    }
    // Chain the fail-aware hooks (preserving anything the harness
    // installed) and translate them into facade events. The handler swap
    // mutates FaustClient state, so it runs on the executor thread; if
    // the runtime is already stopped the swap never happens and the
    // destructor must not "restore" anything.
    hooked_ = run_on_exec_sync([this] {
      chained_fail_ = faust_.on_fail;
      auto prev_fail = faust_.on_fail;
      faust_.on_fail = [this, prev_fail = std::move(prev_fail)](FailureReason reason) {
        if (prev_fail) prev_fail(reason);
        settle_all();
        Event e;
        e.kind = Event::Kind::kShardFailed;
        e.shard = 0;
        e.reason = reason;
        emit(e);
      };
      chained_stable_ = faust_.on_stable;
      auto prev_stable = faust_.on_stable;
      faust_.on_stable =
          [this, prev_stable = std::move(prev_stable)](const FaustClient::StabilityCut& w) {
            if (prev_stable) prev_stable(w);
            Event e;
            e.kind = Event::Kind::kStabilityAdvanced;
            e.shard = 0;
            e.stable_ts = faust_.fully_stable_timestamp();
            emit(e);
          };
    });
    if (cluster_.cache_options().enabled) {
      // net::Network::attach is not thread-safe, so the cache hop is
      // built on the executor thread; a stopped runtime simply leaves
      // this store uncached.
      const bool made = run_on_exec_sync([this] {
        cache_ = std::make_unique<cache::CacheClient>(
            faust_.id(), cache::kCacheNodeId, cluster_.n(), cluster_.sigs(),
            faust_.config().data_digest, cluster_.transport(), cluster_.exec(),
            cluster_.cache_options().lookup_timeout);
      });
      if (made) kv_.attach_cache(cache_.get());
    }
  }

  /// Settles whatever is still in flight (resolving its tickets with the
  /// failure outcome) and restores the hook chains. By the Store
  /// destructor contract the deployment is quiescent here, so touching
  /// the FaustClient inline is safe.
  ~SingleStore() override {
    begin_close();  // chains settle inline; no new engine work from here on
    settle_all();
    if (hooked_) {
      faust_.on_fail = std::move(chained_fail_);
      faust_.on_stable = std::move(chained_stable_);
    }
  }

  ClientId id() const override { return faust_.id(); }
  std::size_t shards() const override { return 1; }
  std::size_t home_shard(std::string_view) const override { return 0; }
  Timestamp stable_ts(std::size_t) const override { return faust_.fully_stable_timestamp(); }
  bool failed(std::size_t) const override { return faust_.failed(); }

 protected:
  std::uint64_t engine_next_seq() override { return ++seq_; }

  void engine_mutate(std::size_t, std::vector<kv::KvClient::SeqChange> changes,
                     MutateDone done) override {
    // Armed before the dispatch (and the failure check, which must read
    // FaustClient state on its own thread), so destruction-settling
    // reaches ops whose body never got to run.
    MutateDone complete = arm(std::move(done));
    if (!dispatch([this, changes = std::move(changes), complete]() mutable {
          if (faust_.failed()) {
            complete(0, /*failed=*/true);
            return;
          }
          kv_.apply_with_seqs(changes,
                              [complete](Timestamp t) { complete(t, /*failed=*/false); });
        })) {
      complete(0, /*failed=*/true);  // runtime stopped: the body never runs
    }
  }

  void engine_snapshot(std::size_t, SnapshotDone done) override {
    // Adapt the snapshot completion onto the mutate-shaped pending slot:
    // the abort path reports (0, failed) which maps to (nullptr, 0). The
    // merged map is only BORROWED through the slot — the engine's list
    // callback runs `complete` synchronously, so the pointer parked in
    // `result` is alive exactly when the armed done reads it.
    struct Parked {
      const std::map<std::string, kv::KvEntry>* merged = nullptr;
      kv::ReadOrigin origin;
    };
    auto result = std::make_shared<Parked>();
    MutateDone complete =
        arm([result, done = std::move(done)](Timestamp ts, bool failed) {
          done(failed ? nullptr : result->merged, failed ? 0 : ts,
               failed ? kv::ReadOrigin{} : result->origin);
        });
    if (!dispatch([this, result, complete]() mutable {
          if (faust_.failed()) {
            complete(0, /*failed=*/true);
            return;
          }
          kv_.list_ex(/*bypass_cache=*/false,
                      [result, complete](const std::map<std::string, kv::KvEntry>& m,
                                         Timestamp ts, const kv::ReadOrigin& origin) {
                        result->merged = &m;
                        result->origin = origin;
                        complete(ts, /*failed=*/false);
                      });
        })) {
      complete(0, /*failed=*/true);  // runtime stopped: the body never runs
    }
  }

  void engine_degraded_snapshot(std::size_t, SnapshotDone done) override {
    // Same borrowed-pointer parking as engine_snapshot; the engine's
    // degraded path either delivers a fully cache-served map or null.
    struct Parked {
      const std::map<std::string, kv::KvEntry>* merged = nullptr;
      kv::ReadOrigin origin;
    };
    auto result = std::make_shared<Parked>();
    MutateDone complete =
        arm([result, done = std::move(done)](Timestamp ts, bool failed) {
          done(failed ? nullptr : result->merged, failed ? 0 : ts,
               failed ? kv::ReadOrigin{} : result->origin);
        });
    if (!dispatch([this, result, complete]() mutable {
          kv_.snapshot_degraded([result, complete](const std::map<std::string, kv::KvEntry>* m,
                                                   Timestamp ts, const kv::ReadOrigin& origin) {
            if (m == nullptr) {
              complete(0, /*failed=*/true);
              return;
            }
            result->merged = m;
            result->origin = origin;
            complete(ts, /*failed=*/false);
          });
        })) {
      complete(0, /*failed=*/true);  // runtime stopped: the body never runs
    }
  }

 private:
  /// Runs `body` in the deployment's execution context: inline when the
  /// caller drives a sim::Scheduler, post()ed when the cluster lives on a
  /// threaded runtime (FaustClient state is only touched by its thread).
  /// Returns false when a stopped runtime refused the post — the body
  /// will never run and the caller must settle the op itself.
  bool dispatch(std::function<void()> body) {
    if (cluster_.simulated()) {
      body();
      return true;
    }
    return cluster_.exec().post(std::move(body)) != 0;
  }

  bool run_on_exec_sync(const std::function<void()>& body) {
    if (cluster_.simulated()) {
      body();
      return true;
    }
    return exec::post_sync(cluster_.exec(), body);
  }

  /// Registers a pending slot for one in-flight engine op and returns the
  /// idempotent completion; settle_all() fires the abort path (t=0,
  /// failed=true) for whatever has not completed yet.
  MutateDone arm(MutateDone done) {
    auto fired = std::make_shared<bool>(false);
    MutateDone complete;
    std::lock_guard lock(mu_);
    const std::uint64_t op = ++next_op_;
    complete = [this, op, fired, done = std::move(done)](Timestamp t, bool failed) {
      {
        std::lock_guard relock(mu_);
        if (*fired) return;
        *fired = true;
        pending_.erase(op);
      }
      done(t, failed);
    };
    pending_.emplace(op, [complete] { complete(0, /*failed=*/true); });
    return complete;
  }

  void settle_all() {
    // Detach first: abort thunks relock mu_ and may issue follow-up work.
    std::map<std::uint64_t, std::function<void()>> aborts;
    {
      std::lock_guard lock(mu_);
      aborts = std::move(pending_);
      pending_.clear();
    }
    for (auto& [op, abort] : aborts) abort();
  }

  Cluster& cluster_;
  FaustClient& faust_;
  /// D8 edge-cache hop (null when the deployment has no cache tier).
  /// Declared before kv_ so the KvClient holding a raw pointer to it via
  /// attach_cache is destroyed first.
  std::unique_ptr<cache::CacheClient> cache_;
  kv::KvClient kv_;
  std::uint64_t seq_ = 0;  // plan-time ticket counter (issuing thread only)

  /// Guards the pending registry (shard threads vs caller in kBlock mode).
  std::mutex mu_;
  std::uint64_t next_op_ = 0;
  std::map<std::uint64_t, std::function<void()>> pending_;

  FaustClient::FailHandler chained_fail_;      // restored at destruction...
  FaustClient::StableHandler chained_stable_;  // ...
  bool hooked_ = false;  // ...but only if the ctor's hook swap actually ran
};

}  // namespace

std::unique_ptr<Store> open_store(Cluster& cluster, ClientId id) {
  return std::make_unique<SingleStore>(cluster, id);
}

}  // namespace faust::api
