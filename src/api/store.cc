#include "api/store.h"

#include <utility>

#include "sim/scheduler.h"

namespace faust::api {

bool operator==(const PutResult& a, const PutResult& b) {
  return a.ts == b.ts && a.stable == b.stable && a.shard == b.shard &&
         a.failed == b.failed && a.status == b.status;
}

bool operator==(const GetResult& a, const GetResult& b) {
  return a.entry == b.entry && a.read_ts == b.read_ts && a.stable == b.stable &&
         a.shard == b.shard && a.failed == b.failed && a.cached == b.cached &&
         a.as_of == b.as_of && a.status == b.status;
}

bool operator==(const ListResult& a, const ListResult& b) {
  return a.entries == b.entries && a.complete == b.complete;
}

namespace detail {

template <>
PutResult unresolved_result<PutResult>() {
  PutResult r;
  r.failed = true;
  r.status = Status::kTimedOut;
  return r;
}

template <>
GetResult unresolved_result<GetResult>() {
  GetResult r;
  r.failed = true;
  r.status = Status::kTimedOut;
  return r;
}

template <>
ListResult unresolved_result<ListResult>() {
  return ListResult{};  // complete = false
}

template <>
BatchResult unresolved_result<BatchResult>() {
  return BatchResult{};  // ok = false
}

bool drain_scheduler(StoreCore& core, const std::function<bool()>& ready) {
  FAUST_CHECK(core.sched != nullptr);
  std::size_t budget = core.step_budget;
  while (!ready()) {
    if (budget == 0 || !core.sched->step()) return ready();
    --budget;
  }
  return true;
}

// --- D10 per-shard breaker -------------------------------------------------

void StoreCore::note_timeout(std::size_t shard) {
  std::lock_guard lock(mu);
  if (breaker_threshold == 0 || shard == kNoShard) return;
  if (shard >= health.size()) health.resize(shard + 1);
  ShardHealth& h = health[shard];
  h.probing = false;  // a probe that timed out re-arms the breaker
  if (++h.consecutive_timeouts >= breaker_threshold && !h.open) {
    h.open = true;
    h.skipped = 0;
    ++h.opens;
  }
}

void StoreCore::note_contact(std::size_t shard) {
  std::lock_guard lock(mu);
  if (shard == kNoShard || shard >= health.size()) return;
  ShardHealth& h = health[shard];
  h.consecutive_timeouts = 0;
  h.open = false;
  h.probing = false;
  h.skipped = 0;
}

bool StoreCore::breaker_blocks(std::size_t shard) {
  std::lock_guard lock(mu);
  if (breaker_threshold == 0 || shard >= health.size()) return false;
  ShardHealth& h = health[shard];
  if (!h.open) return false;
  if (h.probing) return true;  // one probe at a time
  if (++h.skipped >= breaker_cooldown) {
    // Half-open: let this op through as the recovery probe. Completion
    // (note_contact) closes the breaker; another timeout re-arms it.
    h.probing = true;
    h.skipped = 0;
    return false;
  }
  return true;
}

bool StoreCore::breaker_open(std::size_t shard) {
  std::lock_guard lock(mu);
  return shard < health.size() && health[shard].open;
}

}  // namespace detail

// --- Batch planning and execution ------------------------------------------
//
// apply() is the ONE operation path: the single-op forms are batches of
// one. The plan is a per-shard list of steps in batch order — a step is
// either a mutation run (adjacent puts/erases, ONE publication) or a read
// point (adjacent gets plus any kList contributions, ONE snapshot). The
// per-shard chains execute their steps sequentially but run concurrently
// with each other; that concurrency is virtual-time overlap under the
// deterministic scheduler and genuine parallelism under threaded shards.

namespace detail {

struct Step {
  bool is_mutation = false;
  /// D10: a read step planned while the home shard's breaker was open —
  /// executed via engine_degraded_snapshot (cache-only, shard untouched).
  bool degraded = false;
  std::vector<std::size_t> op_indices;  // into the batch's op vector
};

struct BatchCtx {
  std::mutex mu;
  std::vector<Op> ops;
  std::vector<std::uint64_t> op_seqs;  // plan-time tickets; 0 = no-op / read
  std::vector<OpResult> results;
  /// kList accumulators: op index -> (shards still to contribute, result).
  struct ListAcc {
    std::size_t waiting = 0;
    ListResult acc;
  };
  std::map<std::size_t, ListAcc> lists;
  std::size_t chains_left = 0;
  bool ok = true;
  Store::BatchHandler done;
};

}  // namespace detail

using detail::BatchCtx;
using detail::Step;

void Store::apply(std::vector<Op> ops, BatchHandler done) {
  const std::size_t shard_count = shards();
  if (ops.empty()) {
    if (done) done(BatchResult{{}, true});
    return;
  }

  auto ctx = std::make_shared<BatchCtx>();
  ctx->results.resize(ops.size());
  ctx->op_seqs.resize(ops.size(), 0);
  ctx->done = std::move(done);

  // Plan: route every op, coalescing into per-shard step runs, and draw
  // each mutation's sequence ticket HERE, in program order — the shard
  // chains below complete in arbitrary relative order (they race under
  // kThreaded), but the tickets, and with them every conflict winner, are
  // fixed before anything executes.
  auto plan = std::make_shared<std::vector<std::vector<Step>>>(shard_count);
  const auto step_for = [&](std::size_t s, bool mutation, bool degraded = false) -> Step& {
    auto& steps = (*plan)[s];
    if (steps.empty() || steps.back().is_mutation != mutation ||
        steps.back().degraded != degraded) {
      steps.push_back(Step{mutation, degraded, {}});
    }
    return steps.back();
  };
  // D10 breaker gate, applied HERE at plan time — before any sequence
  // ticket is drawn. Refusing an op after drawing its ticket would leave
  // a gap in the (seq, writer) order and shift conflict winners, breaking
  // the chaos-vs-clean differential; refusing before keeps the executed
  // prefix byte-identical to a run where the refused ops never existed.
  // Writes to an open shard fail fast (kUnavailable, no ticket, mirror
  // untouched); reads fall back to the cache tier served-stale.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case Op::Kind::kPut: {
        const std::size_t s = home_shard(op.key);
        if (core_->breaker_blocks(s)) {
          ctx->results[i].kind = op.kind;
          ctx->results[i].put =
              PutResult{0, false, s, /*failed=*/true, Status::kUnavailable};
          ctx->ok = false;
          break;
        }
        own_keys_.insert(op.key);
        ctx->op_seqs[i] = engine_next_seq();
        step_for(s, /*mutation=*/true).op_indices.push_back(i);
        break;
      }
      case Op::Kind::kErase: {
        const std::size_t s = home_shard(op.key);
        if (core_->breaker_blocks(s)) {
          ctx->results[i].kind = op.kind;
          ctx->results[i].put =
              PutResult{0, false, s, /*failed=*/true, Status::kUnavailable};
          ctx->ok = false;
          break;
        }
        // The no-op-erase rule, decided against the plan-time mirror:
        // erasing a key this client does not hold consumes no ticket (and
        // the engines publish nothing for it).
        if (own_keys_.erase(op.key) > 0) ctx->op_seqs[i] = engine_next_seq();
        step_for(s, /*mutation=*/true).op_indices.push_back(i);
        break;
      }
      case Op::Kind::kGet: {
        const std::size_t s = home_shard(op.key);
        const bool degraded = core_->breaker_blocks(s);
        step_for(s, /*mutation=*/false, degraded).op_indices.push_back(i);
        break;
      }
      case Op::Kind::kList: {
        auto& acc = ctx->lists[i];
        acc.waiting = 0;
        acc.acc.complete = true;
        for (std::size_t s = 0; s < shard_count; ++s) {
          if (core_->breaker_blocks(s)) {
            // An unreachable shard's keys are missing, and a stale cache
            // view must not masquerade as them: the listing reports
            // incomplete rather than silently mixing freshness.
            acc.acc.complete = false;
            ctx->ok = false;
            continue;
          }
          ++acc.waiting;
          step_for(s, /*mutation=*/false).op_indices.push_back(i);
        }
        if (acc.waiting == 0) {
          ctx->results[i].kind = op.kind;
          ctx->results[i].list = std::move(acc.acc);
          ctx->ok = false;
        }
        break;
      }
    }
  }
  ctx->ops = std::move(ops);
  for (const auto& steps : *plan) {
    if (!steps.empty()) ++ctx->chains_left;
  }

  if (ctx->chains_left == 0) {
    // Every op was refused at the gate: complete the batch inline.
    if (ctx->done) ctx->done(BatchResult{std::move(ctx->results), ctx->ok});
    return;
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (!(*plan)[s].empty()) run_step(s, 0, plan, ctx);
  }
}

void Store::run_step(std::size_t s, std::size_t step_index,
                     std::shared_ptr<std::vector<std::vector<Step>>> plan,
                     std::shared_ptr<BatchCtx> ctx) {
  const auto& steps = (*plan)[s];
  if (step_index == steps.size()) {
    Store::BatchHandler fire;
    BatchResult result;
    {
      std::lock_guard lock(ctx->mu);
      if (--ctx->chains_left == 0) {
        fire = std::move(ctx->done);
        result.results = std::move(ctx->results);
        result.ok = ctx->ok;
      }
    }
    if (fire) fire(result);
    return;
  }
  const Step& step = steps[step_index];

  if (step.is_mutation) {
    const auto complete = [this, s, step_index, plan, ctx](Timestamp ts, bool failed) {
      PutResult r;
      r.shard = s;
      r.failed = failed;
      r.status = failed ? Status::kFailed : Status::kOk;
      const bool covered = !failed && ts > 0 && stable_ts(s) >= ts;
      {
        std::lock_guard lock(ctx->mu);
        if (failed) ctx->ok = false;
        for (const std::size_t i : (*plan)[s][step_index].op_indices) {
          ctx->results[i].kind = ctx->ops[i].kind;
          // A no-op change reports ts=0 ("no write was needed for this
          // op") even when effective neighbors shared a publication.
          const bool took_effect = !failed && ctx->op_seqs[i] != 0;
          r.ts = took_effect ? ts : 0;
          r.stable = took_effect && covered;
          ctx->results[i].put = r;
        }
      }
      run_step(s, step_index + 1, plan, ctx);
    };
    if (closing_.load(std::memory_order_acquire)) {
      // begin_close(): settle the rest of the chain without new engine
      // work (which would re-arm already-drained pending slots).
      complete(0, /*failed=*/true);
      return;
    }
    std::vector<kv::KvClient::SeqChange> changes;
    changes.reserve(step.op_indices.size());
    for (const std::size_t i : step.op_indices) {
      const Op& op = ctx->ops[i];
      changes.push_back(kv::KvClient::SeqChange{
          op.key,
          op.kind == Op::Kind::kPut ? std::optional<std::string>(op.value) : std::nullopt,
          ctx->op_seqs[i]});
    }
    engine_mutate(s, std::move(changes), complete);
    return;
  }

  const bool degraded = step.degraded;
  const auto snapshot_complete =
      [this, s, step_index, plan, ctx, degraded](
          const std::map<std::string, kv::KvEntry>* merged, Timestamp read_ts,
          const kv::ReadOrigin& origin) {
        const bool failed = merged == nullptr;
        const Timestamp cut = (!failed && read_ts > 0) ? stable_ts(s) : 0;
        {
          std::lock_guard lock(ctx->mu);
          if (failed) ctx->ok = false;
          for (const std::size_t i : (*plan)[s][step_index].op_indices) {
            const Op& op = ctx->ops[i];
            ctx->results[i].kind = op.kind;
            if (op.kind == Op::Kind::kGet) {
              GetResult& g = ctx->results[i].get;
              g.shard = s;
              g.failed = failed;
              // Degraded reads that the cache could not answer are a
              // reachability outcome (kUnavailable), not misbehavior.
              g.status = failed ? (degraded ? Status::kUnavailable : Status::kFailed)
                                : Status::kOk;
              g.read_ts = read_ts;
              if (!failed) {
                const auto it = merged->find(op.key);
                if (it != merged->end()) g.entry = it->second;
                g.cached = origin.cached;
                g.as_of = origin.as_of;
                // Stability claims never attach to cache-served views: a
                // cached register is authentic but its observation is not
                // an engine read the stability cut can cover.
                g.stable = !origin.cached && read_ts > 0 && cut >= read_ts;
              }
            } else {  // kList contribution from this shard
              auto& acc = ctx->lists.at(i);
              if (failed) {
                acc.acc.complete = false;
              } else {
                for (const auto& [key, entry] : *merged) {
                  // Home-shard filter: a key can only appear in a foreign
                  // shard's registers under a misbehaving party; it must
                  // not shadow the home shard's authoritative entry.
                  if (home_shard(key) == s) acc.acc.entries[key] = entry;
                }
              }
              if (--acc.waiting == 0) {
                ctx->results[i].list = std::move(acc.acc);
              }
            }
          }
        }
        run_step(s, step_index + 1, plan, ctx);
      };
  if (closing_.load(std::memory_order_acquire)) {
    // begin_close(): settle the rest of the chain without new engine
    // work (which would re-arm already-drained pending slots).
    snapshot_complete(nullptr, 0, kv::ReadOrigin{});
    return;
  }
  if (degraded) {
    engine_degraded_snapshot(s, snapshot_complete);
  } else {
    engine_snapshot(s, snapshot_complete);
  }
}

// --- Single-op forms: batches of one ---------------------------------------

void Store::put(std::string key, std::string value, PutHandler done) {
  std::vector<Op> ops;
  ops.push_back(Op::put(std::move(key), std::move(value)));
  apply(std::move(ops), [done = std::move(done)](const BatchResult& b) {
    if (done) done(b.results[0].put);
  });
}

void Store::erase(std::string key, PutHandler done) {
  std::vector<Op> ops;
  ops.push_back(Op::erase(std::move(key)));
  apply(std::move(ops), [done = std::move(done)](const BatchResult& b) {
    if (done) done(b.results[0].put);
  });
}

void Store::get(std::string key, GetHandler done) {
  std::vector<Op> ops;
  ops.push_back(Op::get(std::move(key)));
  apply(std::move(ops), [done = std::move(done)](const BatchResult& b) {
    if (done) done(b.results[0].get);
  });
}

void Store::list(ListHandler done) {
  std::vector<Op> ops;
  ops.push_back(Op::list());
  apply(std::move(ops), [done = std::move(done)](const BatchResult& b) {
    if (done) done(b.results[0].list);
  });
}

Ticket<PutResult> Store::put(std::string key, std::string value) {
  const std::size_t s = home_shard(key);  // breaker attribution (D10)
  return make_ticket<PutResult>(
      [&](auto resolve) { put(std::move(key), std::move(value), std::move(resolve)); }, s);
}

Ticket<PutResult> Store::erase(std::string key) {
  const std::size_t s = home_shard(key);
  return make_ticket<PutResult>(
      [&](auto resolve) { erase(std::move(key), std::move(resolve)); }, s);
}

Ticket<GetResult> Store::get(std::string key) {
  const std::size_t s = home_shard(key);
  return make_ticket<GetResult>(
      [&](auto resolve) { get(std::move(key), std::move(resolve)); }, s);
}

Ticket<ListResult> Store::list() {
  return make_ticket<ListResult>([&](auto resolve) { list(std::move(resolve)); });
}

Ticket<BatchResult> Store::apply(std::vector<Op> ops) {
  return make_ticket<BatchResult>(
      [&](auto resolve) { apply(std::move(ops), std::move(resolve)); });
}

// --- Stability and failure helpers -----------------------------------------

bool Store::any_failed() const {
  for (std::size_t s = 0; s < shards(); ++s) {
    if (failed(s)) return true;
  }
  return false;
}

bool Store::stable(const GetResult& r) const {
  // Cache-served observations are never stability-eligible (D8): the
  // cut covers engine reads, not fills that may be stale up to as_of.
  if (r.failed || r.cached || r.read_ts == 0) return false;
  return stable_ts(r.shard) >= r.read_ts;
}

bool Store::stable(const PutResult& r) const {
  if (r.failed || r.ts == 0) return false;
  return stable_ts(r.shard) >= r.ts;
}

}  // namespace faust::api
