// api::Store over a sharded deployment: wraps shard::ShardedKvClient
// (the legacy sharded engine, which already owns routing, cross-shard
// sequence coordination and fail-settling) and translates its hooks into
// facade events. Works in both execution modes; under kThreaded the
// engine posts every op body onto the home shard's runtime.
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "api/store.h"
#include "shard/sharded_cluster.h"
#include "shard/sharded_kv_client.h"

namespace faust::api {
namespace {

class ShardedStore final : public Store {
 public:
  ShardedStore(shard::ShardedCluster& deployment, ClientId id)
      : deployment_(deployment), id_(id), kv_(deployment, id) {
    if (deployment_.threaded()) {
      core_->mode = detail::StoreCore::Mode::kBlock;
    } else {
      core_->mode = detail::StoreCore::Mode::kStep;
      core_->sched = &deployment_.sched();
    }
    kv_.on_fail = [this](std::size_t s, FailureReason reason) {
      Event e;
      e.kind = Event::Kind::kShardFailed;
      e.shard = s;
      e.reason = reason;
      emit(e);
    };
    // Surface each shard's stable_i as a facade event, preserving any
    // handler the harness installed. The swap mutates FaustClient state,
    // so it runs on the shard's own thread; a shard whose runtime is
    // already stopped is skipped (and not "restored" at destruction).
    chained_stable_.resize(deployment_.shards());
    hooked_.assign(deployment_.shards(), false);
    for (std::size_t s = 0; s < deployment_.shards(); ++s) {
      hooked_[s] = run_on_shard_sync(s, [this, s] {
        FaustClient& f = deployment_.shard(s).client(id_);
        chained_stable_[s] = f.on_stable;
        auto prev = f.on_stable;
        f.on_stable = [this, s, prev = std::move(prev)](const FaustClient::StabilityCut& w) {
          if (prev) prev(w);
          Event e;
          e.kind = Event::Kind::kStabilityAdvanced;
          e.shard = s;
          e.stable_ts = deployment_.shard(s).client(id_).fully_stable_timestamp();
          emit(e);
        };
      });
    }
  }

  /// Restores the stability hooks, then lets the wrapped engine's
  /// destructor settle every in-flight op (which resolves the facade's
  /// outstanding tickets with their failure outcomes). Destructor
  /// contract as everywhere in the shard layer: threaded deployments must
  /// be stop()ped (or quiescent) first.
  ~ShardedStore() override {
    begin_close();  // chains settle inline once ~kv_ aborts their steps
    for (std::size_t s = 0; s < chained_stable_.size(); ++s) {
      if (hooked_[s]) {
        // Same rule as installation: the swap mutates FaustClient state a
        // live runtime thread reads (stability cuts keep advancing on
        // timers), so it must run on the shard's own thread.
        run_on_shard_sync(s, [this, s] {
          deployment_.shard(s).client(id_).on_stable = std::move(chained_stable_[s]);
        });
      }
    }
  }

  ClientId id() const override { return id_; }
  std::size_t shards() const override { return deployment_.shards(); }
  std::size_t home_shard(std::string_view key) const override {
    return deployment_.router().shard_of(key);
  }
  Timestamp stable_ts(std::size_t s) const override {
    return deployment_.shard(s).client(id_).fully_stable_timestamp();
  }
  bool failed(std::size_t s) const override {
    return deployment_.shard(s).client(id_).failed();
  }

 protected:
  std::uint64_t engine_next_seq() override { return kv_.draw_seq(); }

  void engine_mutate(std::size_t s, std::vector<kv::KvClient::SeqChange> changes,
                     MutateDone done) override {
    kv_.apply_on_shard(s, std::move(changes), std::move(done));
  }

  void engine_snapshot(std::size_t s, SnapshotDone done) override {
    kv_.snapshot_on_shard(s, std::move(done));
  }

  void engine_degraded_snapshot(std::size_t s, SnapshotDone done) override {
    kv_.snapshot_degraded_on_shard(s, std::move(done));
  }

 private:
  bool run_on_shard_sync(std::size_t s, const std::function<void()>& body) {
    if (!deployment_.threaded()) {
      body();
      return true;
    }
    return exec::post_sync(deployment_.shard_exec(s), body);
  }

  shard::ShardedCluster& deployment_;
  const ClientId id_;
  shard::ShardedKvClient kv_;
  std::vector<FaustClient::StableHandler> chained_stable_;  // restored at dtor...
  std::vector<bool> hooked_;  // ...per shard, only if its hook swap ran
};

}  // namespace

std::unique_ptr<Store> open_store(shard::ShardedCluster& deployment, ClientId id) {
  return std::make_unique<ShardedStore>(deployment, id);
}

}  // namespace faust::api
