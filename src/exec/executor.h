// The execution seam: timers and deferred callbacks behind one interface.
//
// Protocol code (FaustClient, the network fabrics, the KV layers) is
// written against exec::Executor only, so the exact same objects run on
// two substrates:
//
//   * sim::Scheduler — the deterministic discrete-event loop over virtual
//     time (tests, benches, differential oracles);
//   * rt::ThreadedRuntime — one OS thread per runtime, pacing deadlines
//     against a monotonic clock (the threaded shard mode).
//
// This mirrors the net::Transport seam (DESIGN.md decision D2) one layer
// down: Transport abstracts message delivery, Executor abstracts time.
//
// Time is in abstract "ticks" exactly as in sim::Scheduler; a runtime
// decides what a tick means in wall-clock terms (the simulator: nothing;
// ThreadedRuntime: a configurable real duration, zero by default, i.e.
// virtual deadlines executed as fast as the thread can drain them).
//
// Threading contract: how member calls may be issued is defined by the
// implementation. sim::Scheduler is single-threaded. ThreadedRuntime
// accepts after/at/cancel/post from any thread, and runs every task on
// its own runtime thread — tasks scheduled on one executor never run
// concurrently with each other, which is what lets single-threaded
// protocol objects run unchanged on top of it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

namespace faust::exec {

/// Abstract time in ticks since the start of the run.
using Time = std::uint64_t;

/// Handle for cancelling a scheduled event. 0 is never a valid id, so
/// implementations may return it for "nothing scheduled".
using EventId = std::uint64_t;

/// Minimal timer/callback executor (see file comment).
class Executor {
 public:
  using Task = std::function<void()>;

  virtual ~Executor() = default;

  /// Current time in ticks. Starts at 0.
  virtual Time now() const = 0;

  /// Schedules `task` to run `delay` ticks from now(). Returns an id
  /// usable with `cancel`.
  virtual EventId after(Time delay, Task task) = 0;

  /// Schedules `task` at absolute time `when`. A `when` in the past is
  /// clamped to "as soon as possible".
  virtual EventId at(Time when, Task task) = 0;

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  virtual void cancel(EventId id) = 0;

  /// Schedules `task` to run as soon as possible, after everything
  /// already due. Equivalent to after(0, ...); the hook exists so
  /// cross-thread callers can marshal work onto the executor's thread
  /// without talking about time at all.
  virtual EventId post(Task task) { return after(0, std::move(task)); }
};

/// Runs `body` on `exec`'s thread and waits for it to finish. Returns
/// false when the executor shut down without running it — either the
/// post was refused outright (a stopped runtime returns id 0) or the
/// runtime stopped after accepting the task and dropped its queue, which
/// the wait detects by probing with further posts. Must not be called
/// from the executor's own thread (it would wait on itself); for a
/// single-threaded executor like sim::Scheduler run the body inline
/// instead. The posted task owns its state (shared, body copied), so an
/// early false return never leaves it with dangling captures; but note
/// that stop()ping the executor concurrently with a post_sync on it is
/// outside the runtime's threading contract (one controlling thread), and
/// under such a race a false return only means the body was not yet
/// OBSERVED to run.
inline bool post_sync(Executor& exec, std::function<void()> body) {
  auto ran = std::make_shared<std::atomic<bool>>(false);
  if (exec.post([ran, body = std::move(body)] {
        body();
        ran->store(true, std::memory_order_release);
      }) == 0) {
    return false;
  }
  std::uint32_t spins = 0;
  while (!ran->load(std::memory_order_acquire)) {
    // Probe occasionally: once stopped, every post returns 0, and the
    // accepted-then-dropped task will never run.
    if (++spins % 1024 == 0 && exec.post([] {}) == 0) {
      return ran->load(std::memory_order_acquire);
    }
    std::this_thread::yield();
  }
  return true;
}

}  // namespace faust::exec
