#include "ustor/messages.h"

#include "wire/encoder.h"

namespace faust::ustor {
namespace {

// Per-field helpers. Each decode helper leaves `r` in the error state on
// malformed input; callers check r.ok() once at the end.  Decoding is
// zero-copy throughout: byte fields come out as views into the source
// buffer, and the owned decode_* entry points deep-copy at the end.

void put_value(wire::Writer& w, const ValueView& v) {
  w.put_u8(v.has_value() ? 1 : 0);
  if (v.has_value()) w.put_bytes(*v);
}

ValueView as_view(const Value& v) {
  if (!v.has_value()) return std::nullopt;
  return BytesView(*v);
}

ValueView as_view(const SharedValue& v) {
  if (!v.has_value()) return std::nullopt;
  return v->view();
}

// Presence flags are encoded as exactly 0 or 1; any other value is
// rejected so that decodable messages have a unique encoding (decision
// D3) — the wire-fuzz suite asserts decode∘encode is the identity on
// every accepted buffer.
ValueView get_value(wire::Reader& r) {
  const std::uint8_t present = r.get_u8();
  if (present > 1) r.poison();
  if (present != 1) return std::nullopt;
  return r.get_bytes_view();
}

void put_digest(wire::Writer& w, const Digest& d) {
  w.put_u8(d.present ? 1 : 0);
  if (d.present) w.put_raw(BytesView(d.hash.data(), d.hash.size()));
}

Digest get_digest(wire::Reader& r) {
  const std::uint8_t present = r.get_u8();
  if (present > 1) r.poison();
  if (present != 1) return Digest::bottom();
  const BytesView raw = r.get_view(32);
  Digest d;
  if (raw.size() == 32) {
    d.present = true;
    std::copy(raw.begin(), raw.end(), d.hash.begin());
  }
  return d;
}

void put_version(wire::Writer& w, const Version& v) {
  w.put_u32(static_cast<std::uint32_t>(v.V.size()));
  for (const Timestamp t : v.V) w.put_u64(t);
  for (const Digest& d : v.M) put_digest(w, d);
}

// Hard cap on decoded vector lengths: a Byzantine server must not be able
// to make a client allocate unbounded memory from a short message.
constexpr std::uint32_t kMaxN = 1 << 16;

Version get_version(wire::Reader& r) {
  const std::uint32_t n = r.get_u32();
  if (n > kMaxN) {
    r.poison();
    return Version();
  }
  Version v(static_cast<int>(n));
  for (auto& t : v.V) t = r.get_u64();
  for (auto& d : v.M) d = get_digest(r);
  return v;
}

void put_signed_version(wire::Writer& w, const SignedVersion& sv) {
  put_version(w, sv.version);
  w.put_bytes(sv.commit_sig);
}

SignedVersionView get_signed_version(wire::Reader& r) {
  SignedVersionView sv;
  sv.version = get_version(r);
  sv.commit_sig = r.get_bytes_view();
  return sv;
}

void put_invocation(wire::Writer& w, const InvocationTuple& inv) {
  w.put_u32(static_cast<std::uint32_t>(inv.client));
  w.put_u8(static_cast<std::uint8_t>(inv.oc));
  w.put_u32(static_cast<std::uint32_t>(inv.target));
  w.put_bytes(inv.submit_sig);
}

InvocationTupleView get_invocation(wire::Reader& r) {
  InvocationTupleView inv;
  inv.client = static_cast<ClientId>(r.get_u32());
  const std::uint8_t oc = r.get_u8();
  if (oc > 1) r.poison();  // unknown opcode
  inv.oc = static_cast<OpCode>(oc);
  inv.target = static_cast<ClientId>(r.get_u32());
  inv.submit_sig = r.get_bytes_view();
  return inv;
}

InvocationTuple to_owned(const InvocationTupleView& v) {
  return InvocationTuple{v.client, v.oc, v.target,
                         Bytes(v.submit_sig.begin(), v.submit_sig.end())};
}

// D10 piggybacked-COMMIT tail of SUBMIT / SUBMIT_DELTA: present-flag,
// then the CommitMessage body (version, φ, ψ). Written only when a
// commit rides along, so the absent case stays byte-identical to the
// pre-D10 encoding — the tail is recognized purely by bytes remaining
// after the DATA signature.
void put_commit_tail(wire::Writer& w, const CommitMessage& cm) {
  w.put_u8(1);
  put_version(w, cm.version);
  w.put_bytes(cm.commit_sig);
  w.put_bytes(cm.proof_sig);
}

std::size_t commit_tail_size(const CommitMessage& cm) {
  return 1 + encoded_version_size(cm.version) + 4 + cm.commit_sig.size() + 4 +
         cm.proof_sig.size();
}

// Parses the optional commit tail into view fields; call with the reader
// positioned right after the DATA signature. Poisons on a malformed tail.
template <typename SubmitView>
void get_commit_tail(wire::Reader& r, SubmitView& m) {
  if (!r.ok() || r.exhausted()) return;
  if (r.get_u8() != 1) {
    r.poison();
    return;
  }
  m.has_commit = true;
  m.commit_version = get_version(r);
  m.commit_sig = r.get_bytes_view();
  m.proof_sig = r.get_bytes_view();
}

// Materializes the view tail back into the owned optional.
template <typename SubmitView>
std::optional<CommitMessage> owned_commit(const SubmitView& v) {
  if (!v.has_commit) return std::nullopt;
  CommitMessage cm;
  cm.version = v.commit_version;
  cm.commit_sig.assign(v.commit_sig.begin(), v.commit_sig.end());
  cm.proof_sig.assign(v.proof_sig.begin(), v.proof_sig.end());
  return cm;
}

// Exact encoded sizes of the composite fields (mirror the put_* helpers).

std::size_t value_size(const ValueView& v) {
  return 1 + (v.has_value() ? 4 + v->size() : 0);
}

std::size_t version_size(const Version& v) { return encoded_version_size(v); }

std::size_t signed_version_size(const SignedVersion& sv) {
  return version_size(sv.version) + 4 + sv.commit_sig.size();
}

std::size_t invocation_size(const InvocationTuple& inv) {
  return 4 + 1 + 4 + 4 + inv.submit_sig.size();
}

// Delta-message helpers. Hashes here are always-present raw 32-byte
// fields (unlike the optional Digest), so they carry no presence flag.

void put_hash(wire::Writer& w, const crypto::Hash& h) {
  w.put_raw(BytesView(h.data(), h.size()));
}

crypto::Hash get_hash(wire::Reader& r) {
  crypto::Hash h{};
  const BytesView raw = r.get_view(32);
  if (raw.size() == 32) std::copy(raw.begin(), raw.end(), h.begin());
  return h;
}

void put_splice(wire::Writer& w, std::uint64_t offset, std::uint64_t erase_len,
                BytesView insert) {
  w.put_u64(offset);
  w.put_u64(erase_len);
  w.put_bytes(insert);
}

SpliceView get_splice(wire::Reader& r) {
  SpliceView s;
  s.offset = r.get_u64();
  s.erase_len = r.get_u64();
  s.insert = r.get_bytes_view();
  return s;
}

std::size_t splice_size(std::size_t insert_len) { return 8 + 8 + 4 + insert_len; }

template <typename S>
std::size_t splices_size(const std::vector<S>& ss) {
  std::size_t sz = 4;  // count prefix
  for (const auto& s : ss) sz += splice_size(s.insert.size());
  return sz;
}

// Splices apply sequentially: each offset refers to the buffer as left by
// the previous splice, which is exactly how KvClient's incremental encoder
// produced them. Every bound is checked against the evolving buffer, so a
// Byzantine splice list can never read or write out of range — it just
// yields nullopt and the receiver falls back to the full-value path.
template <typename S>
std::optional<Bytes> apply_delta_impl(BytesView base, std::span<const S> splices,
                                      std::uint64_t expected_size) {
  Bytes buf(base.begin(), base.end());
  for (const S& s : splices) {
    if (s.offset > buf.size()) return std::nullopt;
    if (s.erase_len > buf.size() - s.offset) return std::nullopt;
    const auto at = buf.begin() + static_cast<std::ptrdiff_t>(s.offset);
    buf.erase(at, at + static_cast<std::ptrdiff_t>(s.erase_len));
    buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(s.offset), s.insert.begin(),
               s.insert.end());
  }
  if (buf.size() != expected_size) return std::nullopt;
  return buf;
}

/// The read part of a REPLY, flattened to views so that ReplyMessage
/// (owned) and ReplySnapshot (shared slices) encode byte-identically.
struct ReadPartView {
  const SignedVersion* writer = nullptr;  // null = no read payload
  Timestamp tj = 0;
  ValueView value;
  BytesView data_sig;
};

ReadPartView read_part(const std::optional<ReadPayload>& read) {
  if (!read.has_value()) return {};
  return ReadPartView{&read->writer, read->tj, as_view(read->value), BytesView(read->data_sig)};
}

ReadPartView read_part(const std::optional<ReadPayloadShared>& read) {
  if (!read.has_value()) return {};
  return ReadPartView{&read->writer, read->tj, as_view(read->value), read->data_sig.view()};
}

std::size_t reply_body_size(const SignedVersion& last, const ReadPartView& read,
                            const std::vector<InvocationTuple>& L, std::size_t l_count,
                            const std::vector<Bytes>& P) {
  std::size_t sz = 1 + 4 + signed_version_size(last) + 1;
  if (read.writer != nullptr) {
    sz += signed_version_size(*read.writer) + 8 + value_size(read.value) + 4 +
          read.data_sig.size();
  }
  sz += 4;
  for (std::size_t q = 0; q < l_count; ++q) sz += invocation_size(L[q]);
  sz += 4;
  for (const Bytes& p : P) sz += 4 + p.size();
  return sz;
}

/// Shared REPLY encoding body, so ReplyMessage and ReplySnapshot produce
/// byte-identical output. Only the first `l_count` entries of L belong to
/// this reply (a snapshot's shared vector may have grown since).
void encode_reply_body(wire::Writer& w, ClientId c, const SignedVersion& last,
                       const ReadPartView& read, const std::vector<InvocationTuple>& L,
                       std::size_t l_count, const std::vector<Bytes>& P) {
  w.put_u8(static_cast<std::uint8_t>(MsgType::kReply));
  w.put_u32(static_cast<std::uint32_t>(c));
  put_signed_version(w, last);
  w.put_u8(read.writer != nullptr ? 1 : 0);
  if (read.writer != nullptr) {
    put_signed_version(w, *read.writer);
    w.put_u64(read.tj);
    put_value(w, read.value);
    w.put_bytes(read.data_sig);
  }
  w.put_u32(static_cast<std::uint32_t>(l_count));
  for (std::size_t q = 0; q < l_count; ++q) put_invocation(w, L[q]);
  w.put_u32(static_cast<std::uint32_t>(P.size()));
  for (const Bytes& p : P) w.put_bytes(p);
}

/// Clamp a snapshot's logical length to the vector it aliases (a
/// hand-built snapshot could disagree; never read past the end).
std::size_t snapshot_l_count(const ReplySnapshot& m) {
  return m.L ? std::min(m.l_count, m.L->size()) : 0;
}

}  // namespace

Value to_owned(const ValueView& v) {
  if (!v.has_value()) return std::nullopt;
  return Bytes(v->begin(), v->end());
}

std::optional<Bytes> apply_delta(BytesView base, std::span<const Splice> splices,
                                 std::uint64_t expected_size) {
  return apply_delta_impl<Splice>(base, splices, expected_size);
}

std::optional<Bytes> apply_delta(BytesView base, std::span<const SpliceView> splices,
                                 std::uint64_t expected_size) {
  return apply_delta_impl<SpliceView>(base, splices, expected_size);
}

ReadPayloadShared to_shared(ReadPayload rp) {
  ReadPayloadShared out;
  out.writer = std::move(rp.writer);
  out.tj = rp.tj;
  out.value = to_shared(std::move(rp.value));
  out.data_sig = SharedBytes::owned(std::move(rp.data_sig));
  return out;
}

ReplyMessage ReplyMessageView::materialize() const {
  ReplyMessage m;
  m.c = c;
  m.last = last.to_owned();
  if (read.has_value()) {
    ReadPayload rp;
    rp.writer = read->writer.to_owned();
    rp.tj = read->tj;
    rp.value = ustor::to_owned(read->value);
    rp.data_sig = Bytes(read->data_sig.begin(), read->data_sig.end());
    m.read = std::move(rp);
  }
  m.L.reserve(L.size());
  for (const InvocationTupleView& inv : L) m.L.push_back(to_owned(inv));
  m.P.reserve(P.size());
  for (const BytesView& p : P) m.P.emplace_back(p.begin(), p.end());
  return m;
}

ReplyMessage ReplySnapshot::materialize() const {
  ReplyMessage m;
  m.c = c;
  m.last = last;
  if (read.has_value()) m.read = read->materialize();
  const std::size_t lc = snapshot_l_count(*this);
  if (L) m.L.assign(L->begin(), L->begin() + static_cast<std::ptrdiff_t>(lc));
  if (P) m.P = *P;
  return m;
}

std::size_t size_hint(const SubmitMessage& m) {
  return 1 + 8 + invocation_size(m.inv) + value_size(as_view(m.value)) + 4 +
         m.data_sig.size() + (m.commit ? commit_tail_size(*m.commit) : 0);
}

std::size_t size_hint(const ReplyMessage& m) {
  return reply_body_size(m.last, read_part(m.read), m.L, m.L.size(), m.P);
}

std::size_t size_hint(const ReplySnapshot& m) {
  static const std::vector<InvocationTuple> kNoL;
  static const std::vector<Bytes> kNoP;
  return reply_body_size(m.last, read_part(m.read), m.L ? *m.L : kNoL, snapshot_l_count(m),
                         m.P ? *m.P : kNoP);
}

std::size_t size_hint(const SubmitDeltaMessage& m) {
  std::size_t sz = 1 + 8 + invocation_size(m.inv) + 4 + m.data_sig.size() +
                   (m.commit ? commit_tail_size(*m.commit) : 0);
  if (m.inv.oc == OpCode::kWrite) {
    sz += 32 + 32 + 8 + splices_size(m.splices);  // base, root, size, splices
  } else {
    sz += 8 + 32;  // base_ts, base_digest
  }
  return sz;
}

std::size_t size_hint(const ReplyDeltaMessage& m) {
  std::size_t sz = 1 + 4 + signed_version_size(m.last) + signed_version_size(m.read.writer) +
                   8 + 1 + 32;
  if (!m.read.unchanged) sz += 8 + splices_size(m.read.splices);
  sz += 4 + m.read.data_sig.size();
  sz += 4;
  for (const InvocationTuple& inv : m.L) sz += invocation_size(inv);
  sz += 4;
  for (const Bytes& p : m.P) sz += 4 + p.size();
  return sz;
}

std::size_t size_hint(const CommitMessage& m) {
  return 1 + version_size(m.version) + 4 + m.commit_sig.size() + 4 + m.proof_sig.size();
}

std::size_t size_hint(const ProbeMessage&) { return 1; }

std::size_t size_hint(const VersionMessage& m) {
  return 1 + 4 + signed_version_size(m.ver);
}

std::size_t size_hint(const FailureMessage& m) {
  std::size_t sz = 1 + 1;
  if (m.has_evidence) sz += 4 + signed_version_size(m.a) + 4 + signed_version_size(m.b);
  return sz;
}

Bytes encode_submit(Timestamp t, const InvocationTuple& inv, const ValueView& value,
                    BytesView data_sig, const CommitMessage* commit) {
  wire::Writer w(1 + 8 + invocation_size(inv) + value_size(value) + 4 + data_sig.size() +
                 (commit ? commit_tail_size(*commit) : 0));
  w.put_u8(static_cast<std::uint8_t>(MsgType::kSubmit));
  w.put_u64(t);
  put_invocation(w, inv);
  put_value(w, value);
  w.put_bytes(data_sig);
  if (commit) put_commit_tail(w, *commit);
  return w.take();
}

Bytes encode(const SubmitMessage& m) {
  return encode_submit(m.t, m.inv, as_view(m.value), BytesView(m.data_sig),
                       m.commit ? &*m.commit : nullptr);
}

Bytes encode(const ReplyMessage& m) {
  wire::Writer w(size_hint(m));
  encode_reply_body(w, m.c, m.last, read_part(m.read), m.L, m.L.size(), m.P);
  return w.take();
}

Bytes encode(const ReplySnapshot& m) {
  static const std::vector<InvocationTuple> kNoL;
  static const std::vector<Bytes> kNoP;
  wire::Writer w(size_hint(m));
  encode_reply_body(w, m.c, m.last, read_part(m.read), m.L ? *m.L : kNoL, snapshot_l_count(m),
                    m.P ? *m.P : kNoP);
  return w.take();
}

Bytes encode_submit_delta(Timestamp t, const InvocationTuple& inv,
                          const crypto::Hash& base_digest, const crypto::Hash& new_root,
                          std::uint64_t new_size, std::span<const Splice> splices,
                          BytesView data_sig, const CommitMessage* commit) {
  std::size_t sz = 1 + 8 + invocation_size(inv) + 32 + 32 + 8 + 4 + 4 + data_sig.size() +
                   (commit ? commit_tail_size(*commit) : 0);
  for (const Splice& s : splices) sz += splice_size(s.insert.size());
  wire::Writer w(sz);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kSubmitDelta));
  w.put_u64(t);
  put_invocation(w, inv);
  put_hash(w, base_digest);
  put_hash(w, new_root);
  w.put_u64(new_size);
  w.put_u32(static_cast<std::uint32_t>(splices.size()));
  for (const Splice& s : splices) put_splice(w, s.offset, s.erase_len, BytesView(s.insert));
  w.put_bytes(data_sig);
  if (commit) put_commit_tail(w, *commit);
  return w.take();
}

Bytes encode_submit_read_base(Timestamp t, const InvocationTuple& inv, Timestamp base_ts,
                              const crypto::Hash& base_digest, BytesView data_sig,
                              const CommitMessage* commit) {
  wire::Writer w(1 + 8 + invocation_size(inv) + 8 + 32 + 4 + data_sig.size() +
                 (commit ? commit_tail_size(*commit) : 0));
  w.put_u8(static_cast<std::uint8_t>(MsgType::kSubmitDelta));
  w.put_u64(t);
  put_invocation(w, inv);
  w.put_u64(base_ts);
  put_hash(w, base_digest);
  w.put_bytes(data_sig);
  if (commit) put_commit_tail(w, *commit);
  return w.take();
}

Bytes encode(const SubmitDeltaMessage& m) {
  const CommitMessage* commit = m.commit ? &*m.commit : nullptr;
  if (m.inv.oc == OpCode::kWrite) {
    return encode_submit_delta(m.t, m.inv, m.base_digest, m.new_root, m.new_size,
                               std::span<const Splice>(m.splices), BytesView(m.data_sig),
                               commit);
  }
  return encode_submit_read_base(m.t, m.inv, m.base_ts, m.base_digest, BytesView(m.data_sig),
                                 commit);
}

Bytes encode(const ReplyDeltaMessage& m) {
  wire::Writer w(size_hint(m));
  w.put_u8(static_cast<std::uint8_t>(MsgType::kReplyDelta));
  w.put_u32(static_cast<std::uint32_t>(m.c));
  put_signed_version(w, m.last);
  put_signed_version(w, m.read.writer);
  w.put_u64(m.read.tj);
  w.put_u8(m.read.unchanged ? 1 : 0);
  put_hash(w, m.read.base_digest);
  if (!m.read.unchanged) {
    w.put_u64(m.read.new_size);
    w.put_u32(static_cast<std::uint32_t>(m.read.splices.size()));
    for (const Splice& s : m.read.splices) put_splice(w, s.offset, s.erase_len, BytesView(s.insert));
  }
  w.put_bytes(m.read.data_sig);
  w.put_u32(static_cast<std::uint32_t>(m.L.size()));
  for (const InvocationTuple& inv : m.L) put_invocation(w, inv);
  w.put_u32(static_cast<std::uint32_t>(m.P.size()));
  for (const Bytes& p : m.P) w.put_bytes(p);
  return w.take();
}

Bytes encode_reply_delta(const ReplySnapshot& snap, const ReadDeltaPlan& plan) {
  static const std::vector<InvocationTuple> kNoL;
  static const std::vector<Bytes> kNoP;
  static const SignedVersion kNoWriter;
  const std::vector<InvocationTuple>& L = snap.L ? *snap.L : kNoL;
  const std::size_t lc = snapshot_l_count(snap);
  const std::vector<Bytes>& P = snap.P ? *snap.P : kNoP;
  const ReadPartView read = read_part(snap.read);
  const SignedVersion& writer = read.writer != nullptr ? *read.writer : kNoWriter;

  std::size_t nsplices = 0;
  std::size_t splice_bytes = 0;
  for (const auto& run : plan.runs) {
    nsplices += run.size();
    for (const Splice& s : run) splice_bytes += splice_size(s.insert.size());
  }
  std::size_t sz =
      1 + 4 + signed_version_size(snap.last) + signed_version_size(writer) + 8 + 1 + 32;
  if (!plan.unchanged) sz += 8 + 4 + splice_bytes;
  sz += 4 + read.data_sig.size();
  sz += 4;
  for (std::size_t q = 0; q < lc; ++q) sz += invocation_size(L[q]);
  sz += 4;
  for (const Bytes& p : P) sz += 4 + p.size();

  wire::Writer w(sz);
  w.put_u8(static_cast<std::uint8_t>(MsgType::kReplyDelta));
  w.put_u32(static_cast<std::uint32_t>(snap.c));
  put_signed_version(w, snap.last);
  put_signed_version(w, writer);
  w.put_u64(read.tj);
  w.put_u8(plan.unchanged ? 1 : 0);
  put_hash(w, plan.base_digest);
  if (!plan.unchanged) {
    w.put_u64(plan.new_size);
    w.put_u32(static_cast<std::uint32_t>(nsplices));
    for (const auto& run : plan.runs) {
      for (const Splice& s : run) put_splice(w, s.offset, s.erase_len, BytesView(s.insert));
    }
  }
  w.put_bytes(read.data_sig);
  w.put_u32(static_cast<std::uint32_t>(lc));
  for (std::size_t q = 0; q < lc; ++q) put_invocation(w, L[q]);
  w.put_u32(static_cast<std::uint32_t>(P.size()));
  for (const Bytes& p : P) w.put_bytes(p);
  return w.take();
}

Bytes encode(const CommitMessage& m) {
  wire::Writer w(size_hint(m));
  w.put_u8(static_cast<std::uint8_t>(MsgType::kCommit));
  put_version(w, m.version);
  w.put_bytes(m.commit_sig);
  w.put_bytes(m.proof_sig);
  return w.take();
}

Bytes encode(const ProbeMessage&) {
  wire::Writer w(std::size_t{1});
  w.put_u8(static_cast<std::uint8_t>(MsgType::kProbe));
  return w.take();
}

Bytes encode(const VersionMessage& m) {
  wire::Writer w(size_hint(m));
  w.put_u8(static_cast<std::uint8_t>(MsgType::kVersion));
  w.put_u32(static_cast<std::uint32_t>(m.committer));
  put_signed_version(w, m.ver);
  return w.take();
}

Bytes encode(const FailureMessage& m) {
  wire::Writer w(size_hint(m));
  w.put_u8(static_cast<std::uint8_t>(MsgType::kFailure));
  w.put_u8(m.has_evidence ? 1 : 0);
  if (m.has_evidence) {
    w.put_u32(static_cast<std::uint32_t>(m.committer_a));
    put_signed_version(w, m.a);
    w.put_u32(static_cast<std::uint32_t>(m.committer_b));
    put_signed_version(w, m.b);
  }
  return w.take();
}

std::optional<MsgType> peek_type(BytesView data) {
  if (data.empty()) return std::nullopt;
  switch (data[0]) {
    case 1: return MsgType::kSubmit;
    case 2: return MsgType::kReply;
    case 3: return MsgType::kCommit;
    case 4: return MsgType::kSubmitDelta;
    case 5: return MsgType::kReplyDelta;
    case 10: return MsgType::kProbe;
    case 11: return MsgType::kVersion;
    case 12: return MsgType::kFailure;
    default: return std::nullopt;
  }
}

namespace {

/// Shared prologue: checks the tag and positions the reader after it.
bool open(wire::Reader& r, MsgType expected) {
  return r.get_u8() == static_cast<std::uint8_t>(expected) && r.ok();
}

}  // namespace

std::optional<SubmitMessageView> decode_submit_view(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kSubmit)) return std::nullopt;
  SubmitMessageView m;
  m.t = r.get_u64();
  m.inv = get_invocation(r);
  m.value = get_value(r);
  m.data_sig = r.get_bytes_view();
  get_commit_tail(r, m);
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<SubmitMessage> decode_submit(BytesView data) {
  const auto view = decode_submit_view(data);
  if (!view.has_value()) return std::nullopt;
  SubmitMessage m;
  m.t = view->t;
  m.inv = to_owned(view->inv);
  m.value = to_owned(view->value);
  m.data_sig.assign(view->data_sig.begin(), view->data_sig.end());
  m.commit = owned_commit(*view);
  return m;
}

std::optional<ReplyMessageView> decode_reply_view(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kReply)) return std::nullopt;
  ReplyMessageView m;
  m.c = static_cast<ClientId>(r.get_u32());
  m.last = get_signed_version(r);
  const std::uint8_t has_read = r.get_u8();
  if (has_read > 1) return std::nullopt;
  if (has_read == 1) {
    ReadPayloadView rp;
    rp.writer = get_signed_version(r);
    rp.tj = r.get_u64();
    rp.value = get_value(r);
    rp.data_sig = r.get_bytes_view();
    m.read = rp;
  }
  const std::uint32_t l = r.get_u32();
  if (l > kMaxN) return std::nullopt;
  m.L.reserve(l);
  for (std::uint32_t q = 0; q < l && r.ok(); ++q) m.L.push_back(get_invocation(r));
  const std::uint32_t np = r.get_u32();
  if (np > kMaxN) return std::nullopt;
  m.P.reserve(np);
  for (std::uint32_t k = 0; k < np && r.ok(); ++k) m.P.push_back(r.get_bytes_view());
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<ReplyMessage> decode_reply(BytesView data) {
  const auto view = decode_reply_view(data);
  if (!view.has_value()) return std::nullopt;
  return view->materialize();
}

std::optional<SubmitDeltaMessageView> decode_submit_delta_view(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kSubmitDelta)) return std::nullopt;
  SubmitDeltaMessageView m;
  m.t = r.get_u64();
  m.inv = get_invocation(r);
  if (!r.ok()) return std::nullopt;  // need a trustworthy oc to pick the form
  if (m.inv.oc == OpCode::kWrite) {
    m.base_digest = get_hash(r);
    m.new_root = get_hash(r);
    m.new_size = r.get_u64();
    const std::uint32_t ns = r.get_u32();
    if (ns > kMaxN) return std::nullopt;
    m.splices.reserve(ns);
    for (std::uint32_t q = 0; q < ns && r.ok(); ++q) m.splices.push_back(get_splice(r));
  } else {
    m.base_ts = r.get_u64();
    m.base_digest = get_hash(r);
  }
  m.data_sig = r.get_bytes_view();
  get_commit_tail(r, m);
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<SubmitDeltaMessage> decode_submit_delta(BytesView data) {
  const auto view = decode_submit_delta_view(data);
  if (!view.has_value()) return std::nullopt;
  SubmitDeltaMessage m;
  m.t = view->t;
  m.inv = to_owned(view->inv);
  m.base_digest = view->base_digest;
  m.new_root = view->new_root;
  m.new_size = view->new_size;
  m.splices.reserve(view->splices.size());
  for (const SpliceView& s : view->splices) {
    m.splices.push_back(Splice{s.offset, s.erase_len, Bytes(s.insert.begin(), s.insert.end())});
  }
  m.base_ts = view->base_ts;
  m.data_sig.assign(view->data_sig.begin(), view->data_sig.end());
  m.commit = owned_commit(*view);
  return m;
}

std::optional<ReplyDeltaMessageView> decode_reply_delta_view(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kReplyDelta)) return std::nullopt;
  ReplyDeltaMessageView m;
  m.c = static_cast<ClientId>(r.get_u32());
  m.last = get_signed_version(r);
  m.read.writer = get_signed_version(r);
  m.read.tj = r.get_u64();
  const std::uint8_t unchanged = r.get_u8();
  if (unchanged > 1) return std::nullopt;
  m.read.unchanged = unchanged == 1;
  m.read.base_digest = get_hash(r);
  if (!m.read.unchanged) {
    m.read.new_size = r.get_u64();
    const std::uint32_t ns = r.get_u32();
    if (ns > kMaxN) return std::nullopt;
    m.read.splices.reserve(ns);
    for (std::uint32_t q = 0; q < ns && r.ok(); ++q) m.read.splices.push_back(get_splice(r));
  }
  m.read.data_sig = r.get_bytes_view();
  const std::uint32_t l = r.get_u32();
  if (l > kMaxN) return std::nullopt;
  m.L.reserve(l);
  for (std::uint32_t q = 0; q < l && r.ok(); ++q) m.L.push_back(get_invocation(r));
  const std::uint32_t np = r.get_u32();
  if (np > kMaxN) return std::nullopt;
  m.P.reserve(np);
  for (std::uint32_t k = 0; k < np && r.ok(); ++k) m.P.push_back(r.get_bytes_view());
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<ReplyDeltaMessage> decode_reply_delta(BytesView data) {
  const auto view = decode_reply_delta_view(data);
  if (!view.has_value()) return std::nullopt;
  ReplyDeltaMessage m;
  m.c = view->c;
  m.last = view->last.to_owned();
  m.read.writer = view->read.writer.to_owned();
  m.read.tj = view->read.tj;
  m.read.unchanged = view->read.unchanged;
  m.read.base_digest = view->read.base_digest;
  m.read.new_size = view->read.new_size;
  m.read.splices.reserve(view->read.splices.size());
  for (const SpliceView& s : view->read.splices) {
    m.read.splices.push_back(
        Splice{s.offset, s.erase_len, Bytes(s.insert.begin(), s.insert.end())});
  }
  m.read.data_sig.assign(view->read.data_sig.begin(), view->read.data_sig.end());
  m.L.reserve(view->L.size());
  for (const InvocationTupleView& inv : view->L) m.L.push_back(to_owned(inv));
  m.P.reserve(view->P.size());
  for (const BytesView& p : view->P) m.P.emplace_back(p.begin(), p.end());
  return m;
}

std::optional<CommitMessage> decode_commit(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kCommit)) return std::nullopt;
  CommitMessage m;
  m.version = get_version(r);
  m.commit_sig = r.get_bytes();
  m.proof_sig = r.get_bytes();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<ProbeMessage> decode_probe(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kProbe)) return std::nullopt;
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return ProbeMessage{};
}

std::optional<VersionMessage> decode_version(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kVersion)) return std::nullopt;
  VersionMessage m;
  m.committer = static_cast<ClientId>(r.get_u32());
  const SignedVersionView sv = get_signed_version(r);
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  m.ver = sv.to_owned();
  return m;
}

std::optional<FailureMessage> decode_failure(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kFailure)) return std::nullopt;
  FailureMessage m;
  const std::uint8_t has_evidence = r.get_u8();
  if (has_evidence > 1) return std::nullopt;
  m.has_evidence = has_evidence == 1;
  if (m.has_evidence) {
    m.committer_a = static_cast<ClientId>(r.get_u32());
    const SignedVersionView a = get_signed_version(r);
    m.committer_b = static_cast<ClientId>(r.get_u32());
    const SignedVersionView b = get_signed_version(r);
    if (!r.ok() || !r.exhausted()) return std::nullopt;
    m.a = a.to_owned();
    m.b = b.to_owned();
    return m;
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

Bytes submit_payload(OpCode oc, ClientId target, Timestamp t) {
  Bytes out;
  out.reserve(6 + 1 + 4 + 8);
  append(out, std::string_view("SUBMIT"));
  append_byte(out, static_cast<std::uint8_t>(oc));
  append_u32(out, static_cast<std::uint32_t>(target));
  append_u64(out, t);
  return out;
}

Bytes data_payload(Timestamp t, const crypto::Hash& xbar) {
  Bytes out;
  out.reserve(4 + 8 + xbar.size());
  append(out, std::string_view("DATA"));
  append_u64(out, t);
  append(out, BytesView(xbar.data(), xbar.size()));
  return out;
}

Bytes commit_payload(const Version& ver) {
  Bytes out;
  out.reserve(6 + encoded_version_size(ver));
  append(out, std::string_view("COMMIT"));
  append_version(out, ver);
  return out;
}

Bytes proof_payload(const Digest& mi) {
  Bytes out;
  out.reserve(5 + 1 + 32);
  append(out, std::string_view("PROOF"));
  append_digest(out, mi);
  return out;
}

}  // namespace faust::ustor
