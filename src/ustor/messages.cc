#include "ustor/messages.h"

#include "wire/encoder.h"

namespace faust::ustor {
namespace {

// Per-field helpers. Each decode helper leaves `r` in the error state on
// malformed input; callers check r.ok() once at the end.

void put_value(wire::Writer& w, const Value& v) {
  w.put_u8(v.has_value() ? 1 : 0);
  if (v.has_value()) w.put_bytes(*v);
}

Value get_value(wire::Reader& r) {
  if (r.get_u8() == 0) return std::nullopt;
  return r.get_bytes();
}

void put_digest(wire::Writer& w, const Digest& d) {
  w.put_u8(d.present ? 1 : 0);
  if (d.present) w.put_raw(BytesView(d.hash.data(), d.hash.size()));
}

Digest get_digest(wire::Reader& r) {
  if (r.get_u8() == 0) return Digest::bottom();
  const Bytes raw = r.get_raw(32);
  Digest d;
  if (raw.size() == 32) {
    d.present = true;
    std::copy(raw.begin(), raw.end(), d.hash.begin());
  }
  return d;
}

void put_version(wire::Writer& w, const Version& v) {
  w.put_u32(static_cast<std::uint32_t>(v.V.size()));
  for (const Timestamp t : v.V) w.put_u64(t);
  for (const Digest& d : v.M) put_digest(w, d);
}

// Hard cap on decoded vector lengths: a Byzantine server must not be able
// to make a client allocate unbounded memory from a short message.
constexpr std::uint32_t kMaxN = 1 << 16;

Version get_version(wire::Reader& r) {
  const std::uint32_t n = r.get_u32();
  if (n > kMaxN) {
    (void)r.get_raw(SIZE_MAX);  // force error state
    return Version();
  }
  Version v(static_cast<int>(n));
  for (auto& t : v.V) t = r.get_u64();
  for (auto& d : v.M) d = get_digest(r);
  return v;
}

void put_signed_version(wire::Writer& w, const SignedVersion& sv) {
  put_version(w, sv.version);
  w.put_bytes(sv.commit_sig);
}

SignedVersion get_signed_version(wire::Reader& r) {
  SignedVersion sv;
  sv.version = get_version(r);
  sv.commit_sig = r.get_bytes();
  return sv;
}

void put_invocation(wire::Writer& w, const InvocationTuple& inv) {
  w.put_u32(static_cast<std::uint32_t>(inv.client));
  w.put_u8(static_cast<std::uint8_t>(inv.oc));
  w.put_u32(static_cast<std::uint32_t>(inv.target));
  w.put_bytes(inv.submit_sig);
}

InvocationTuple get_invocation(wire::Reader& r) {
  InvocationTuple inv;
  inv.client = static_cast<ClientId>(r.get_u32());
  const std::uint8_t oc = r.get_u8();
  if (oc > 1) (void)r.get_raw(SIZE_MAX);  // unknown opcode → error state
  inv.oc = static_cast<OpCode>(oc);
  inv.target = static_cast<ClientId>(r.get_u32());
  inv.submit_sig = r.get_bytes();
  return inv;
}

}  // namespace

Bytes encode(const SubmitMessage& m) {
  wire::Writer w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kSubmit));
  w.put_u64(m.t);
  put_invocation(w, m.inv);
  put_value(w, m.value);
  w.put_bytes(m.data_sig);
  return w.take();
}

Bytes encode(const ReplyMessage& m) {
  wire::Writer w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kReply));
  w.put_u32(static_cast<std::uint32_t>(m.c));
  put_signed_version(w, m.last);
  w.put_u8(m.read.has_value() ? 1 : 0);
  if (m.read.has_value()) {
    put_signed_version(w, m.read->writer);
    w.put_u64(m.read->tj);
    put_value(w, m.read->value);
    w.put_bytes(m.read->data_sig);
  }
  w.put_u32(static_cast<std::uint32_t>(m.L.size()));
  for (const InvocationTuple& inv : m.L) put_invocation(w, inv);
  w.put_u32(static_cast<std::uint32_t>(m.P.size()));
  for (const Bytes& p : m.P) w.put_bytes(p);
  return w.take();
}

Bytes encode(const CommitMessage& m) {
  wire::Writer w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kCommit));
  put_version(w, m.version);
  w.put_bytes(m.commit_sig);
  w.put_bytes(m.proof_sig);
  return w.take();
}

Bytes encode(const ProbeMessage&) {
  wire::Writer w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kProbe));
  return w.take();
}

Bytes encode(const VersionMessage& m) {
  wire::Writer w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kVersion));
  w.put_u32(static_cast<std::uint32_t>(m.committer));
  put_signed_version(w, m.ver);
  return w.take();
}

Bytes encode(const FailureMessage& m) {
  wire::Writer w;
  w.put_u8(static_cast<std::uint8_t>(MsgType::kFailure));
  w.put_u8(m.has_evidence ? 1 : 0);
  if (m.has_evidence) {
    w.put_u32(static_cast<std::uint32_t>(m.committer_a));
    put_signed_version(w, m.a);
    w.put_u32(static_cast<std::uint32_t>(m.committer_b));
    put_signed_version(w, m.b);
  }
  return w.take();
}

std::optional<MsgType> peek_type(BytesView data) {
  if (data.empty()) return std::nullopt;
  switch (data[0]) {
    case 1: return MsgType::kSubmit;
    case 2: return MsgType::kReply;
    case 3: return MsgType::kCommit;
    case 10: return MsgType::kProbe;
    case 11: return MsgType::kVersion;
    case 12: return MsgType::kFailure;
    default: return std::nullopt;
  }
}

namespace {

/// Shared prologue: checks the tag and positions the reader after it.
bool open(wire::Reader& r, MsgType expected) {
  return r.get_u8() == static_cast<std::uint8_t>(expected) && r.ok();
}

}  // namespace

std::optional<SubmitMessage> decode_submit(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kSubmit)) return std::nullopt;
  SubmitMessage m;
  m.t = r.get_u64();
  m.inv = get_invocation(r);
  m.value = get_value(r);
  m.data_sig = r.get_bytes();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<ReplyMessage> decode_reply(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kReply)) return std::nullopt;
  ReplyMessage m;
  m.c = static_cast<ClientId>(r.get_u32());
  m.last = get_signed_version(r);
  if (r.get_u8() == 1) {
    ReadPayload rp;
    rp.writer = get_signed_version(r);
    rp.tj = r.get_u64();
    rp.value = get_value(r);
    rp.data_sig = r.get_bytes();
    m.read = std::move(rp);
  }
  const std::uint32_t l = r.get_u32();
  if (l > kMaxN) return std::nullopt;
  m.L.reserve(l);
  for (std::uint32_t q = 0; q < l && r.ok(); ++q) m.L.push_back(get_invocation(r));
  const std::uint32_t np = r.get_u32();
  if (np > kMaxN) return std::nullopt;
  m.P.reserve(np);
  for (std::uint32_t k = 0; k < np && r.ok(); ++k) m.P.push_back(r.get_bytes());
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<CommitMessage> decode_commit(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kCommit)) return std::nullopt;
  CommitMessage m;
  m.version = get_version(r);
  m.commit_sig = r.get_bytes();
  m.proof_sig = r.get_bytes();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<ProbeMessage> decode_probe(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kProbe)) return std::nullopt;
  if (!r.exhausted()) return std::nullopt;
  return ProbeMessage{};
}

std::optional<VersionMessage> decode_version(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kVersion)) return std::nullopt;
  VersionMessage m;
  m.committer = static_cast<ClientId>(r.get_u32());
  m.ver = get_signed_version(r);
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<FailureMessage> decode_failure(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kFailure)) return std::nullopt;
  FailureMessage m;
  m.has_evidence = r.get_u8() == 1;
  if (m.has_evidence) {
    m.committer_a = static_cast<ClientId>(r.get_u32());
    m.a = get_signed_version(r);
    m.committer_b = static_cast<ClientId>(r.get_u32());
    m.b = get_signed_version(r);
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

Bytes submit_payload(OpCode oc, ClientId target, Timestamp t) {
  Bytes out = to_bytes("SUBMIT");
  append_byte(out, static_cast<std::uint8_t>(oc));
  append_u32(out, static_cast<std::uint32_t>(target));
  append_u64(out, t);
  return out;
}

Bytes data_payload(Timestamp t, const crypto::Hash& xbar) {
  Bytes out = to_bytes("DATA");
  append_u64(out, t);
  append(out, BytesView(xbar.data(), xbar.size()));
  return out;
}

Bytes commit_payload(const Version& ver) {
  Bytes out = to_bytes("COMMIT");
  append(out, encode_version(ver));
  return out;
}

Bytes proof_payload(const Digest& mi) {
  Bytes out = to_bytes("PROOF");
  append(out, encode_digest(mi));
  return out;
}

}  // namespace faust::ustor
