#include "ustor/messages.h"

#include "wire/encoder.h"

namespace faust::ustor {
namespace {

// Per-field helpers. Each decode helper leaves `r` in the error state on
// malformed input; callers check r.ok() once at the end.  Decoding is
// zero-copy throughout: byte fields come out as views into the source
// buffer, and the owned decode_* entry points deep-copy at the end.

void put_value(wire::Writer& w, const ValueView& v) {
  w.put_u8(v.has_value() ? 1 : 0);
  if (v.has_value()) w.put_bytes(*v);
}

ValueView as_view(const Value& v) {
  if (!v.has_value()) return std::nullopt;
  return BytesView(*v);
}

ValueView as_view(const SharedValue& v) {
  if (!v.has_value()) return std::nullopt;
  return v->view();
}

// Presence flags are encoded as exactly 0 or 1; any other value is
// rejected so that decodable messages have a unique encoding (decision
// D3) — the wire-fuzz suite asserts decode∘encode is the identity on
// every accepted buffer.
ValueView get_value(wire::Reader& r) {
  const std::uint8_t present = r.get_u8();
  if (present > 1) r.poison();
  if (present != 1) return std::nullopt;
  return r.get_bytes_view();
}

void put_digest(wire::Writer& w, const Digest& d) {
  w.put_u8(d.present ? 1 : 0);
  if (d.present) w.put_raw(BytesView(d.hash.data(), d.hash.size()));
}

Digest get_digest(wire::Reader& r) {
  const std::uint8_t present = r.get_u8();
  if (present > 1) r.poison();
  if (present != 1) return Digest::bottom();
  const BytesView raw = r.get_view(32);
  Digest d;
  if (raw.size() == 32) {
    d.present = true;
    std::copy(raw.begin(), raw.end(), d.hash.begin());
  }
  return d;
}

void put_version(wire::Writer& w, const Version& v) {
  w.put_u32(static_cast<std::uint32_t>(v.V.size()));
  for (const Timestamp t : v.V) w.put_u64(t);
  for (const Digest& d : v.M) put_digest(w, d);
}

// Hard cap on decoded vector lengths: a Byzantine server must not be able
// to make a client allocate unbounded memory from a short message.
constexpr std::uint32_t kMaxN = 1 << 16;

Version get_version(wire::Reader& r) {
  const std::uint32_t n = r.get_u32();
  if (n > kMaxN) {
    r.poison();
    return Version();
  }
  Version v(static_cast<int>(n));
  for (auto& t : v.V) t = r.get_u64();
  for (auto& d : v.M) d = get_digest(r);
  return v;
}

void put_signed_version(wire::Writer& w, const SignedVersion& sv) {
  put_version(w, sv.version);
  w.put_bytes(sv.commit_sig);
}

SignedVersionView get_signed_version(wire::Reader& r) {
  SignedVersionView sv;
  sv.version = get_version(r);
  sv.commit_sig = r.get_bytes_view();
  return sv;
}

void put_invocation(wire::Writer& w, const InvocationTuple& inv) {
  w.put_u32(static_cast<std::uint32_t>(inv.client));
  w.put_u8(static_cast<std::uint8_t>(inv.oc));
  w.put_u32(static_cast<std::uint32_t>(inv.target));
  w.put_bytes(inv.submit_sig);
}

InvocationTupleView get_invocation(wire::Reader& r) {
  InvocationTupleView inv;
  inv.client = static_cast<ClientId>(r.get_u32());
  const std::uint8_t oc = r.get_u8();
  if (oc > 1) r.poison();  // unknown opcode
  inv.oc = static_cast<OpCode>(oc);
  inv.target = static_cast<ClientId>(r.get_u32());
  inv.submit_sig = r.get_bytes_view();
  return inv;
}

InvocationTuple to_owned(const InvocationTupleView& v) {
  return InvocationTuple{v.client, v.oc, v.target,
                         Bytes(v.submit_sig.begin(), v.submit_sig.end())};
}

// Exact encoded sizes of the composite fields (mirror the put_* helpers).

std::size_t value_size(const ValueView& v) {
  return 1 + (v.has_value() ? 4 + v->size() : 0);
}

std::size_t version_size(const Version& v) { return encoded_version_size(v); }

std::size_t signed_version_size(const SignedVersion& sv) {
  return version_size(sv.version) + 4 + sv.commit_sig.size();
}

std::size_t invocation_size(const InvocationTuple& inv) {
  return 4 + 1 + 4 + 4 + inv.submit_sig.size();
}

/// The read part of a REPLY, flattened to views so that ReplyMessage
/// (owned) and ReplySnapshot (shared slices) encode byte-identically.
struct ReadPartView {
  const SignedVersion* writer = nullptr;  // null = no read payload
  Timestamp tj = 0;
  ValueView value;
  BytesView data_sig;
};

ReadPartView read_part(const std::optional<ReadPayload>& read) {
  if (!read.has_value()) return {};
  return ReadPartView{&read->writer, read->tj, as_view(read->value), BytesView(read->data_sig)};
}

ReadPartView read_part(const std::optional<ReadPayloadShared>& read) {
  if (!read.has_value()) return {};
  return ReadPartView{&read->writer, read->tj, as_view(read->value), read->data_sig.view()};
}

std::size_t reply_body_size(const SignedVersion& last, const ReadPartView& read,
                            const std::vector<InvocationTuple>& L, std::size_t l_count,
                            const std::vector<Bytes>& P) {
  std::size_t sz = 1 + 4 + signed_version_size(last) + 1;
  if (read.writer != nullptr) {
    sz += signed_version_size(*read.writer) + 8 + value_size(read.value) + 4 +
          read.data_sig.size();
  }
  sz += 4;
  for (std::size_t q = 0; q < l_count; ++q) sz += invocation_size(L[q]);
  sz += 4;
  for (const Bytes& p : P) sz += 4 + p.size();
  return sz;
}

/// Shared REPLY encoding body, so ReplyMessage and ReplySnapshot produce
/// byte-identical output. Only the first `l_count` entries of L belong to
/// this reply (a snapshot's shared vector may have grown since).
void encode_reply_body(wire::Writer& w, ClientId c, const SignedVersion& last,
                       const ReadPartView& read, const std::vector<InvocationTuple>& L,
                       std::size_t l_count, const std::vector<Bytes>& P) {
  w.put_u8(static_cast<std::uint8_t>(MsgType::kReply));
  w.put_u32(static_cast<std::uint32_t>(c));
  put_signed_version(w, last);
  w.put_u8(read.writer != nullptr ? 1 : 0);
  if (read.writer != nullptr) {
    put_signed_version(w, *read.writer);
    w.put_u64(read.tj);
    put_value(w, read.value);
    w.put_bytes(read.data_sig);
  }
  w.put_u32(static_cast<std::uint32_t>(l_count));
  for (std::size_t q = 0; q < l_count; ++q) put_invocation(w, L[q]);
  w.put_u32(static_cast<std::uint32_t>(P.size()));
  for (const Bytes& p : P) w.put_bytes(p);
}

/// Clamp a snapshot's logical length to the vector it aliases (a
/// hand-built snapshot could disagree; never read past the end).
std::size_t snapshot_l_count(const ReplySnapshot& m) {
  return m.L ? std::min(m.l_count, m.L->size()) : 0;
}

}  // namespace

Value to_owned(const ValueView& v) {
  if (!v.has_value()) return std::nullopt;
  return Bytes(v->begin(), v->end());
}

ReadPayloadShared to_shared(ReadPayload rp) {
  ReadPayloadShared out;
  out.writer = std::move(rp.writer);
  out.tj = rp.tj;
  out.value = to_shared(std::move(rp.value));
  out.data_sig = SharedBytes::owned(std::move(rp.data_sig));
  return out;
}

ReplyMessage ReplyMessageView::materialize() const {
  ReplyMessage m;
  m.c = c;
  m.last = last.to_owned();
  if (read.has_value()) {
    ReadPayload rp;
    rp.writer = read->writer.to_owned();
    rp.tj = read->tj;
    rp.value = ustor::to_owned(read->value);
    rp.data_sig = Bytes(read->data_sig.begin(), read->data_sig.end());
    m.read = std::move(rp);
  }
  m.L.reserve(L.size());
  for (const InvocationTupleView& inv : L) m.L.push_back(to_owned(inv));
  m.P.reserve(P.size());
  for (const BytesView& p : P) m.P.emplace_back(p.begin(), p.end());
  return m;
}

ReplyMessage ReplySnapshot::materialize() const {
  ReplyMessage m;
  m.c = c;
  m.last = last;
  if (read.has_value()) m.read = read->materialize();
  const std::size_t lc = snapshot_l_count(*this);
  if (L) m.L.assign(L->begin(), L->begin() + static_cast<std::ptrdiff_t>(lc));
  if (P) m.P = *P;
  return m;
}

std::size_t size_hint(const SubmitMessage& m) {
  return 1 + 8 + invocation_size(m.inv) + value_size(as_view(m.value)) + 4 + m.data_sig.size();
}

std::size_t size_hint(const ReplyMessage& m) {
  return reply_body_size(m.last, read_part(m.read), m.L, m.L.size(), m.P);
}

std::size_t size_hint(const ReplySnapshot& m) {
  static const std::vector<InvocationTuple> kNoL;
  static const std::vector<Bytes> kNoP;
  return reply_body_size(m.last, read_part(m.read), m.L ? *m.L : kNoL, snapshot_l_count(m),
                         m.P ? *m.P : kNoP);
}

std::size_t size_hint(const CommitMessage& m) {
  return 1 + version_size(m.version) + 4 + m.commit_sig.size() + 4 + m.proof_sig.size();
}

std::size_t size_hint(const ProbeMessage&) { return 1; }

std::size_t size_hint(const VersionMessage& m) {
  return 1 + 4 + signed_version_size(m.ver);
}

std::size_t size_hint(const FailureMessage& m) {
  std::size_t sz = 1 + 1;
  if (m.has_evidence) sz += 4 + signed_version_size(m.a) + 4 + signed_version_size(m.b);
  return sz;
}

Bytes encode_submit(Timestamp t, const InvocationTuple& inv, const ValueView& value,
                    BytesView data_sig) {
  wire::Writer w(1 + 8 + invocation_size(inv) + value_size(value) + 4 + data_sig.size());
  w.put_u8(static_cast<std::uint8_t>(MsgType::kSubmit));
  w.put_u64(t);
  put_invocation(w, inv);
  put_value(w, value);
  w.put_bytes(data_sig);
  return w.take();
}

Bytes encode(const SubmitMessage& m) {
  return encode_submit(m.t, m.inv, as_view(m.value), BytesView(m.data_sig));
}

Bytes encode(const ReplyMessage& m) {
  wire::Writer w(size_hint(m));
  encode_reply_body(w, m.c, m.last, read_part(m.read), m.L, m.L.size(), m.P);
  return w.take();
}

Bytes encode(const ReplySnapshot& m) {
  static const std::vector<InvocationTuple> kNoL;
  static const std::vector<Bytes> kNoP;
  wire::Writer w(size_hint(m));
  encode_reply_body(w, m.c, m.last, read_part(m.read), m.L ? *m.L : kNoL, snapshot_l_count(m),
                    m.P ? *m.P : kNoP);
  return w.take();
}

Bytes encode(const CommitMessage& m) {
  wire::Writer w(size_hint(m));
  w.put_u8(static_cast<std::uint8_t>(MsgType::kCommit));
  put_version(w, m.version);
  w.put_bytes(m.commit_sig);
  w.put_bytes(m.proof_sig);
  return w.take();
}

Bytes encode(const ProbeMessage&) {
  wire::Writer w(std::size_t{1});
  w.put_u8(static_cast<std::uint8_t>(MsgType::kProbe));
  return w.take();
}

Bytes encode(const VersionMessage& m) {
  wire::Writer w(size_hint(m));
  w.put_u8(static_cast<std::uint8_t>(MsgType::kVersion));
  w.put_u32(static_cast<std::uint32_t>(m.committer));
  put_signed_version(w, m.ver);
  return w.take();
}

Bytes encode(const FailureMessage& m) {
  wire::Writer w(size_hint(m));
  w.put_u8(static_cast<std::uint8_t>(MsgType::kFailure));
  w.put_u8(m.has_evidence ? 1 : 0);
  if (m.has_evidence) {
    w.put_u32(static_cast<std::uint32_t>(m.committer_a));
    put_signed_version(w, m.a);
    w.put_u32(static_cast<std::uint32_t>(m.committer_b));
    put_signed_version(w, m.b);
  }
  return w.take();
}

std::optional<MsgType> peek_type(BytesView data) {
  if (data.empty()) return std::nullopt;
  switch (data[0]) {
    case 1: return MsgType::kSubmit;
    case 2: return MsgType::kReply;
    case 3: return MsgType::kCommit;
    case 10: return MsgType::kProbe;
    case 11: return MsgType::kVersion;
    case 12: return MsgType::kFailure;
    default: return std::nullopt;
  }
}

namespace {

/// Shared prologue: checks the tag and positions the reader after it.
bool open(wire::Reader& r, MsgType expected) {
  return r.get_u8() == static_cast<std::uint8_t>(expected) && r.ok();
}

}  // namespace

std::optional<SubmitMessageView> decode_submit_view(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kSubmit)) return std::nullopt;
  SubmitMessageView m;
  m.t = r.get_u64();
  m.inv = get_invocation(r);
  m.value = get_value(r);
  m.data_sig = r.get_bytes_view();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<SubmitMessage> decode_submit(BytesView data) {
  const auto view = decode_submit_view(data);
  if (!view.has_value()) return std::nullopt;
  SubmitMessage m;
  m.t = view->t;
  m.inv = to_owned(view->inv);
  m.value = to_owned(view->value);
  m.data_sig.assign(view->data_sig.begin(), view->data_sig.end());
  return m;
}

std::optional<ReplyMessageView> decode_reply_view(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kReply)) return std::nullopt;
  ReplyMessageView m;
  m.c = static_cast<ClientId>(r.get_u32());
  m.last = get_signed_version(r);
  const std::uint8_t has_read = r.get_u8();
  if (has_read > 1) return std::nullopt;
  if (has_read == 1) {
    ReadPayloadView rp;
    rp.writer = get_signed_version(r);
    rp.tj = r.get_u64();
    rp.value = get_value(r);
    rp.data_sig = r.get_bytes_view();
    m.read = rp;
  }
  const std::uint32_t l = r.get_u32();
  if (l > kMaxN) return std::nullopt;
  m.L.reserve(l);
  for (std::uint32_t q = 0; q < l && r.ok(); ++q) m.L.push_back(get_invocation(r));
  const std::uint32_t np = r.get_u32();
  if (np > kMaxN) return std::nullopt;
  m.P.reserve(np);
  for (std::uint32_t k = 0; k < np && r.ok(); ++k) m.P.push_back(r.get_bytes_view());
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<ReplyMessage> decode_reply(BytesView data) {
  const auto view = decode_reply_view(data);
  if (!view.has_value()) return std::nullopt;
  return view->materialize();
}

std::optional<CommitMessage> decode_commit(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kCommit)) return std::nullopt;
  CommitMessage m;
  m.version = get_version(r);
  m.commit_sig = r.get_bytes();
  m.proof_sig = r.get_bytes();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::optional<ProbeMessage> decode_probe(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kProbe)) return std::nullopt;
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return ProbeMessage{};
}

std::optional<VersionMessage> decode_version(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kVersion)) return std::nullopt;
  VersionMessage m;
  m.committer = static_cast<ClientId>(r.get_u32());
  const SignedVersionView sv = get_signed_version(r);
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  m.ver = sv.to_owned();
  return m;
}

std::optional<FailureMessage> decode_failure(BytesView data) {
  wire::Reader r(data);
  if (!open(r, MsgType::kFailure)) return std::nullopt;
  FailureMessage m;
  const std::uint8_t has_evidence = r.get_u8();
  if (has_evidence > 1) return std::nullopt;
  m.has_evidence = has_evidence == 1;
  if (m.has_evidence) {
    m.committer_a = static_cast<ClientId>(r.get_u32());
    const SignedVersionView a = get_signed_version(r);
    m.committer_b = static_cast<ClientId>(r.get_u32());
    const SignedVersionView b = get_signed_version(r);
    if (!r.ok() || !r.exhausted()) return std::nullopt;
    m.a = a.to_owned();
    m.b = b.to_owned();
    return m;
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

Bytes submit_payload(OpCode oc, ClientId target, Timestamp t) {
  Bytes out;
  out.reserve(6 + 1 + 4 + 8);
  append(out, std::string_view("SUBMIT"));
  append_byte(out, static_cast<std::uint8_t>(oc));
  append_u32(out, static_cast<std::uint32_t>(target));
  append_u64(out, t);
  return out;
}

Bytes data_payload(Timestamp t, const crypto::Hash& xbar) {
  Bytes out;
  out.reserve(4 + 8 + xbar.size());
  append(out, std::string_view("DATA"));
  append_u64(out, t);
  append(out, BytesView(xbar.data(), xbar.size()));
  return out;
}

Bytes commit_payload(const Version& ver) {
  Bytes out;
  out.reserve(6 + encoded_version_size(ver));
  append(out, std::string_view("COMMIT"));
  append_version(out, ver);
  return out;
}

Bytes proof_payload(const Digest& mi) {
  Bytes out;
  out.reserve(5 + 1 + 32);
  append(out, std::string_view("PROOF"));
  append_digest(out, mi);
  return out;
}

}  // namespace faust::ustor
