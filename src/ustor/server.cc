#include "ustor/server.h"

#include "common/check.h"

namespace faust::ustor {

ServerCore::ServerCore(int n)
    : n_(n),
      MEM_(static_cast<std::size_t>(n)),
      SVER_(static_cast<std::size_t>(n), SignedVersion{Version(n), {}}),
      L_(std::make_shared<std::vector<InvocationTuple>>()),
      P_(std::make_shared<std::vector<Bytes>>(static_cast<std::size_t>(n))) {
  FAUST_CHECK(n >= 1);
}

ServerCore::ServerCore(const ServerCore& other)
    : n_(other.n_),
      MEM_(other.MEM_),
      c_(other.c_),
      SVER_(other.SVER_),
      L_(std::make_shared<std::vector<InvocationTuple>>(*other.L_)),
      P_(std::make_shared<std::vector<Bytes>>(*other.P_)),
      schedule_(other.schedule_),
      gen_(other.gen_),
      cow_clones_(other.cow_clones_) {}

std::vector<InvocationTuple>& ServerCore::mutable_L() {
  if (L_.use_count() > 1) {
    L_ = std::make_shared<std::vector<InvocationTuple>>(*L_);
    ++cow_clones_;
  }
  ++gen_;
  return *L_;
}

std::vector<Bytes>& ServerCore::mutable_P() {
  if (P_.use_count() > 1) {
    P_ = std::make_shared<std::vector<Bytes>>(*P_);
    ++cow_clones_;
  }
  ++gen_;
  return *P_;
}

ReplySnapshot ServerCore::submit_impl(Timestamp t, InvocationTuple inv, SharedValue value,
                                      SharedBytes data_sig) {
  const ClientId i = inv.client;
  FAUST_CHECK(i >= 1 && i <= n_);
  const ClientId j = inv.target;
  FAUST_CHECK(j >= 1 && j <= n_);

  ReplySnapshot reply;
  if (inv.oc == OpCode::kRead) {
    // Lines 108–111: a read refreshes the reader's timestamp and DATA
    // signature but keeps its stored value.
    MemEntry& me = mem(i);
    me.t = t;
    me.data_sig = std::move(data_sig);
    ReadPayloadShared rp;
    rp.writer = sver(j);
    rp.tj = mem(j).t;
    rp.value = mem(j).value;  // refcount bump, not a value copy
    rp.data_sig = mem(j).data_sig;
    reply.read = std::move(rp);
  } else {
    // Line 113.
    mem(i) = MemEntry{t, std::move(value), std::move(data_sig)};
  }
  reply.c = c_;
  reply.last = sver(c_);
  // Line 116: the reply excludes the submitting operation itself — the
  // snapshot covers only the current l_count entries, so the push below
  // appends past every live snapshot's prefix and needs no clone. L and P
  // are shared untouched: a submit deep-copies nothing.
  reply.L = L_;
  reply.l_count = L_->size();
  reply.P = P_;
  reply.generation = gen_;

  schedule_.push_back(ScheduledOp{i, inv.oc, j, t});
  L_->push_back(std::move(inv));
  ++gen_;
  return reply;
}

ReplySnapshot ServerCore::process_submit(const SubmitMessage& m) {
  return submit_impl(m.t, m.inv, to_shared(m.value), SharedBytes::copy_of(m.data_sig));
}

ReplySnapshot ServerCore::process_submit(const SubmitMessageView& m,
                                         const std::shared_ptr<const Bytes>& buffer) {
  SharedValue value;
  if (m.value.has_value()) value = SharedBytes::slice(buffer, *m.value);
  InvocationTuple inv{m.inv.client, m.inv.oc, m.inv.target,
                      Bytes(m.inv.submit_sig.begin(), m.inv.submit_sig.end())};
  return submit_impl(m.t, std::move(inv), std::move(value),
                     SharedBytes::slice(buffer, m.data_sig));
}

void ServerCore::process_commit(ClientId i, const CommitMessage& m) {
  FAUST_CHECK(i >= 1 && i <= n_);
  const Version& vc = sver(c_).version;

  // Line 119: "V_i > V^c" on the timestamp vectors — pointwise >= and not
  // equal. Committed versions of a correct execution are totally ordered
  // by the schedule, so this promotes exactly the schedule-latest commit.
  bool geq = m.version.n() == n_;
  bool strict = false;
  for (int k = 1; geq && k <= n_; ++k) {
    if (m.version.v(k) < vc.v(k)) geq = false;
    if (m.version.v(k) > vc.v(k)) strict = true;
  }
  if (geq && strict) {
    c_ = i;  // line 120
    // Line 121: drop this client's last tuple and everything before it.
    const std::vector<InvocationTuple>& L = *L_;
    for (std::size_t q = L.size(); q > 0; --q) {
      if (L[q - 1].client == i) {
        std::vector<InvocationTuple>& lm = mutable_L();
        lm.erase(lm.begin(), lm.begin() + static_cast<std::ptrdiff_t>(q));
        break;
      }
    }
  }
  sver(i) = SignedVersion{m.version, m.commit_sig};  // line 122
  mutable_P()[static_cast<std::size_t>(i - 1)] = m.proof_sig;  // line 123
}

Server::Server(int n, net::Transport& net, NodeId self) : core_(n), net_(net), self_(self) {
  net_.attach(self_, *this);
}

void Server::on_message(NodeId from, BytesView msg) {
  // No shared buffer to retain: fall back to copying the value into MEM.
  const auto type = peek_type(msg);
  if (!type.has_value()) return;  // clients are correct; ignore noise
  switch (*type) {
    case MsgType::kSubmit: {
      auto m = decode_submit(msg);
      if (!m.has_value() || m->inv.client != from) return;
      const ReplySnapshot reply = core_.process_submit(*m);
      net_.send(self_, from, encode(reply));
      break;
    }
    case MsgType::kCommit: {
      auto m = decode_commit(msg);
      if (!m.has_value()) return;
      core_.process_commit(static_cast<ClientId>(from), *m);
      break;
    }
    default:
      break;
  }
}

void Server::on_shared_message(NodeId from, const std::shared_ptr<const Bytes>& msg) {
  const BytesView bytes(*msg);
  if (peek_type(bytes) != MsgType::kSubmit) {
    on_message(from, bytes);  // COMMITs and noise: the small/legacy path
    return;
  }
  // Zero-copy SUBMIT: decode views and let MEM retain slices of `msg` —
  // the register value crosses the server without being copied.
  const auto m = decode_submit_view(bytes);
  if (!m.has_value() || m->inv.client != from) return;
  const ReplySnapshot reply = core_.process_submit(*m, msg);
  net_.send(self_, from, encode(reply));
}

}  // namespace faust::ustor
