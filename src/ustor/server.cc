#include "ustor/server.h"

#include "common/check.h"

namespace faust::ustor {

ServerCore::ServerCore(int n)
    : n_(n),
      MEM_(static_cast<std::size_t>(n)),
      SVER_(static_cast<std::size_t>(n), SignedVersion{Version(n), {}}),
      P_(static_cast<std::size_t>(n)) {
  FAUST_CHECK(n >= 1);
}

ReplyMessage ServerCore::process_submit(const SubmitMessage& m) {
  const ClientId i = m.inv.client;
  FAUST_CHECK(i >= 1 && i <= n_);
  const ClientId j = m.inv.target;
  FAUST_CHECK(j >= 1 && j <= n_);

  ReplyMessage reply;
  if (m.inv.oc == OpCode::kRead) {
    // Lines 108–111: a read refreshes the reader's timestamp and DATA
    // signature but keeps its stored value.
    MemEntry& me = mem(i);
    me.t = m.t;
    me.data_sig = m.data_sig;
    ReadPayload rp;
    rp.writer = sver(j);
    rp.tj = mem(j).t;
    rp.value = mem(j).value;
    rp.data_sig = mem(j).data_sig;
    reply.read = std::move(rp);
  } else {
    // Line 113.
    mem(i) = MemEntry{m.t, m.value, m.data_sig};
  }
  reply.c = c_;
  reply.last = sver(c_);
  reply.L = L_;
  reply.P = P_;

  // Line 116: the reply excludes the submitting operation itself.
  L_.push_back(m.inv);
  schedule_.push_back(ScheduledOp{i, m.inv.oc, j, m.t});
  return reply;
}

void ServerCore::process_commit(ClientId i, const CommitMessage& m) {
  FAUST_CHECK(i >= 1 && i <= n_);
  const Version& vc = sver(c_).version;

  // Line 119: "V_i > V^c" on the timestamp vectors — pointwise >= and not
  // equal. Committed versions of a correct execution are totally ordered
  // by the schedule, so this promotes exactly the schedule-latest commit.
  bool geq = m.version.n() == n_;
  bool strict = false;
  for (int k = 1; geq && k <= n_; ++k) {
    if (m.version.v(k) < vc.v(k)) geq = false;
    if (m.version.v(k) > vc.v(k)) strict = true;
  }
  if (geq && strict) {
    c_ = i;  // line 120
    // Line 121: drop this client's last tuple and everything before it.
    for (std::size_t q = L_.size(); q > 0; --q) {
      if (L_[q - 1].client == i) {
        L_.erase(L_.begin(), L_.begin() + static_cast<std::ptrdiff_t>(q));
        break;
      }
    }
  }
  sver(i) = SignedVersion{m.version, m.commit_sig};  // line 122
  P_[static_cast<std::size_t>(i - 1)] = m.proof_sig;  // line 123
}

Server::Server(int n, net::Transport& net, NodeId self) : core_(n), net_(net), self_(self) {
  net_.attach(self_, *this);
}

void Server::on_message(NodeId from, BytesView msg) {
  const auto type = peek_type(msg);
  if (!type.has_value()) return;  // clients are correct; ignore noise
  switch (*type) {
    case MsgType::kSubmit: {
      auto m = decode_submit(msg);
      if (!m.has_value() || m->inv.client != from) return;
      ReplyMessage reply = core_.process_submit(*m);
      net_.send(self_, from, encode(reply));
      break;
    }
    case MsgType::kCommit: {
      auto m = decode_commit(msg);
      if (!m.has_value()) return;
      core_.process_commit(static_cast<ClientId>(from), *m);
      break;
    }
    default:
      break;
  }
}

}  // namespace faust::ustor
