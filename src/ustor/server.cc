#include "ustor/server.h"

#include <span>

#include "common/check.h"
#include "crypto/chunked_hasher.h"

namespace faust::ustor {

ServerCore::ServerCore(int n)
    : n_(n),
      MEM_(static_cast<std::size_t>(n)),
      SVER_(static_cast<std::size_t>(n), SignedVersion{Version(n), {}}),
      L_(std::make_shared<std::vector<InvocationTuple>>()),
      P_(std::make_shared<std::vector<Bytes>>(static_cast<std::size_t>(n))) {
  FAUST_CHECK(n >= 1);
}

ServerCore::ServerCore(const ServerCore& other)
    : n_(other.n_),
      MEM_(other.MEM_),
      c_(other.c_),
      SVER_(other.SVER_),
      L_(std::make_shared<std::vector<InvocationTuple>>(*other.L_)),
      P_(std::make_shared<std::vector<Bytes>>(*other.P_)),
      schedule_(other.schedule_),
      gen_(other.gen_),
      cow_clones_(other.cow_clones_) {}

std::vector<InvocationTuple>& ServerCore::mutable_L() {
  if (L_.use_count() > 1) {
    L_ = std::make_shared<std::vector<InvocationTuple>>(*L_);
    ++cow_clones_;
  }
  ++gen_;
  return *L_;
}

std::vector<Bytes>& ServerCore::mutable_P() {
  if (P_.use_count() > 1) {
    P_ = std::make_shared<std::vector<Bytes>>(*P_);
    ++cow_clones_;
  }
  ++gen_;
  return *P_;
}

ReplySnapshot ServerCore::submit_impl(Timestamp t, InvocationTuple inv, SharedValue value,
                                      SharedBytes data_sig) {
  const ClientId i = inv.client;
  FAUST_CHECK(i >= 1 && i <= n_);
  const ClientId j = inv.target;
  FAUST_CHECK(j >= 1 && j <= n_);

  ReplySnapshot reply;
  if (inv.oc == OpCode::kRead) {
    // Lines 108–111: a read refreshes the reader's timestamp and DATA
    // signature but keeps its stored value.
    MemEntry& me = mem(i);
    me.t = t;
    me.data_sig = std::move(data_sig);
    ReadPayloadShared rp;
    rp.writer = sver(j);
    rp.tj = mem(j).t;
    rp.value = mem(j).value;  // refcount bump, not a value copy
    rp.data_sig = mem(j).data_sig;
    reply.read = std::move(rp);
  } else {
    // Line 113. A full write discards the delta bookkeeping: the new
    // MemEntry starts with no known digest and an empty history.
    MemEntry fresh;
    fresh.t = t;
    fresh.value = std::move(value);
    fresh.data_sig = std::move(data_sig);
    mem(i) = std::move(fresh);
  }
  reply.c = c_;
  reply.last = sver(c_);
  // Line 116: the reply excludes the submitting operation itself — the
  // snapshot covers only the current l_count entries, so the push below
  // appends past every live snapshot's prefix and needs no clone. L and P
  // are shared untouched: a submit deep-copies nothing.
  reply.L = L_;
  reply.l_count = L_->size();
  reply.P = P_;
  reply.generation = gen_;

  schedule_.push_back(ScheduledOp{i, inv.oc, j, t});
  L_->push_back(std::move(inv));
  ++gen_;
  return reply;
}

ReplySnapshot ServerCore::process_submit(const SubmitMessage& m) {
  return submit_impl(m.t, m.inv, to_shared(m.value), SharedBytes::copy_of(m.data_sig));
}

ReplySnapshot ServerCore::process_submit(const SubmitMessageView& m,
                                         const std::shared_ptr<const Bytes>& buffer) {
  SharedValue value;
  if (m.value.has_value()) value = SharedBytes::slice(buffer, *m.value);
  InvocationTuple inv{m.inv.client, m.inv.oc, m.inv.target,
                      Bytes(m.inv.submit_sig.begin(), m.inv.submit_sig.end())};
  return submit_impl(m.t, std::move(inv), std::move(value),
                     SharedBytes::slice(buffer, m.data_sig));
}

bool ServerCore::ensure_digest(ClientId i) {
  MemEntry& me = mem(i);
  if (!me.value.has_value()) return false;
  if (!me.digest_known) {
    me.digest = crypto::ChunkedHasher::digest(me.value->view());
    me.digest_known = true;
  }
  return true;
}

std::optional<ReplySnapshot> ServerCore::process_submit_delta(
    const SubmitDeltaMessageView& m, const std::shared_ptr<const Bytes>& buffer) {
  const ClientId i = m.inv.client;
  if (i < 1 || i > n_) return std::nullopt;
  if (m.inv.oc != OpCode::kWrite || m.inv.target != i) return std::nullopt;
  MemEntry& me = mem(i);
  if (!me.value.has_value()) return std::nullopt;  // no base to splice against
  auto applied =
      apply_delta(me.value->view(), std::span<const SpliceView>(m.splices), m.new_size);
  if (!applied.has_value()) return std::nullopt;

  // Chain bookkeeping: if the writer's claimed base matches the root of
  // the value we actually hold, the new record extends the history chain;
  // otherwise the chain restarts at this record. The server never verifies
  // new_root — it cannot (untrusted); verifiers check it against the DATA
  // signature and their own rehash.
  ensure_digest(i);
  std::deque<DeltaRecord> history;
  if (me.digest == m.base_digest) history = std::move(me.history);
  DeltaRecord rec;
  rec.from = m.base_digest;
  rec.to = m.new_root;
  rec.new_size = m.new_size;
  rec.splices.reserve(m.splices.size());
  std::size_t wire = 4;  // splice-count prefix
  for (const SpliceView& s : m.splices) {
    rec.splices.push_back(Splice{s.offset, s.erase_len, Bytes(s.insert.begin(), s.insert.end())});
    wire += 8 + 8 + 4 + s.insert.size();
  }
  rec.wire_bytes = wire;
  history.push_back(std::move(rec));
  while (history.size() > kDeltaHistoryDepth) history.pop_front();

  InvocationTuple inv{m.inv.client, m.inv.oc, m.inv.target,
                      Bytes(m.inv.submit_sig.begin(), m.inv.submit_sig.end())};
  SharedBytes sig = buffer ? SharedBytes::slice(buffer, m.data_sig)
                           : SharedBytes::copy_of(m.data_sig);
  ReplySnapshot reply = submit_impl(m.t, std::move(inv),
                                    SharedBytes::owned(std::move(*applied)), std::move(sig));
  // submit_impl replaced mem(i) with a bare entry; restore the delta state.
  MemEntry& fresh = mem(i);
  fresh.digest_known = true;
  fresh.digest = m.new_root;
  fresh.history = std::move(history);
  return reply;
}

ServerCore::ReadServing ServerCore::plan_read_delta(ClientId j, const crypto::Hash& base,
                                                    ReadDeltaPlan* plan) {
  plan->unchanged = false;
  plan->base_digest = base;
  plan->runs.clear();
  if (!ensure_digest(j)) return ReadServing::kFull;  // register still ⊥
  const MemEntry& me = mem(j);
  if (me.digest == base) {
    plan->unchanged = true;
    return ReadServing::kUnchanged;
  }
  // Walk the history back from the newest record, looking for the reader's
  // base; give up if the accumulated splice bytes already match the full
  // value (a delta that isn't smaller buys nothing).
  const std::size_t full_size = me.value->view().size();
  std::size_t bytes = 0;
  std::size_t start = me.history.size();
  for (std::size_t q = me.history.size(); q > 0; --q) {
    bytes += me.history[q - 1].wire_bytes;
    if (bytes >= full_size) return ReadServing::kFull;
    if (me.history[q - 1].from == base) {
      start = q - 1;
      break;
    }
  }
  if (start == me.history.size()) return ReadServing::kFull;  // base too old
  plan->new_size = full_size;
  plan->runs.reserve(me.history.size() - start);
  for (std::size_t q = start; q < me.history.size(); ++q) {
    plan->runs.push_back(std::span<const Splice>(me.history[q].splices));
  }
  return ReadServing::kDelta;
}

std::optional<SubmitMessage> expand_submit_delta(const ServerCore& core,
                                                 const SubmitDeltaMessageView& m) {
  SubmitMessage out;
  out.t = m.t;
  out.inv = InvocationTuple{m.inv.client, m.inv.oc, m.inv.target,
                            Bytes(m.inv.submit_sig.begin(), m.inv.submit_sig.end())};
  out.data_sig.assign(m.data_sig.begin(), m.data_sig.end());
  if (m.inv.oc == OpCode::kRead) return out;  // advertised-base read: no value
  if (m.inv.client < 1 || m.inv.client > core.n()) return std::nullopt;
  const ServerCore::MemEntry& me = core.mem(m.inv.client);
  if (!me.value.has_value()) return std::nullopt;
  auto applied =
      apply_delta(me.value->view(), std::span<const SpliceView>(m.splices), m.new_size);
  if (!applied.has_value()) return std::nullopt;
  out.value = std::move(*applied);
  return out;
}

void ServerCore::restore(std::vector<MemEntry> mem, ClientId c,
                         std::vector<SignedVersion> sver,
                         std::vector<InvocationTuple> concurrent, std::vector<Bytes> proofs,
                         std::vector<ScheduledOp> schedule) {
  FAUST_CHECK(static_cast<int>(mem.size()) == n_);
  FAUST_CHECK(c >= 1 && c <= n_);
  FAUST_CHECK(static_cast<int>(sver.size()) == n_);
  FAUST_CHECK(static_cast<int>(proofs.size()) == n_);
  MEM_ = std::move(mem);
  c_ = c;
  SVER_ = std::move(sver);
  L_ = std::make_shared<std::vector<InvocationTuple>>(std::move(concurrent));
  P_ = std::make_shared<std::vector<Bytes>>(std::move(proofs));
  schedule_ = std::move(schedule);
  ++gen_;
}

void ServerCore::process_commit(ClientId i, const CommitMessage& m) {
  FAUST_CHECK(i >= 1 && i <= n_);
  const Version& vc = sver(c_).version;

  // Line 119: "V_i > V^c" on the timestamp vectors — pointwise >= and not
  // equal. Committed versions of a correct execution are totally ordered
  // by the schedule, so this promotes exactly the schedule-latest commit.
  bool geq = m.version.n() == n_;
  bool strict = false;
  for (int k = 1; geq && k <= n_; ++k) {
    if (m.version.v(k) < vc.v(k)) geq = false;
    if (m.version.v(k) > vc.v(k)) strict = true;
  }
  if (geq && strict) {
    c_ = i;  // line 120
    // Line 121: drop this client's last tuple and everything before it.
    const std::vector<InvocationTuple>& L = *L_;
    for (std::size_t q = L.size(); q > 0; --q) {
      if (L[q - 1].client == i) {
        std::vector<InvocationTuple>& lm = mutable_L();
        lm.erase(lm.begin(), lm.begin() + static_cast<std::ptrdiff_t>(q));
        break;
      }
    }
  }
  // D10 reorder tolerance: chaos can deliver a client's COMMITs out of
  // order (or re-deliver an old one after a resubmit). Folding an older
  // commit over a newer one would REGRESS SVER[i]/P[i], and honest
  // readers would then fail line 52 (writer-timestamp) or line 41 (proof
  // signature) — false fail_i for a pure timing fault. One client's
  // committed versions are totally ordered, so the ≼ gate keeps exactly
  // the newest; equal versions (duplicates) rewrite idempotently.
  if (version_leq(sver(i).version, m.version)) {
    sver(i) = SignedVersion{m.version, m.commit_sig};  // line 122
    mutable_P()[static_cast<std::size_t>(i - 1)] = m.proof_sig;  // line 123
  }
}

bool ServerCore::client_in_L(ClientId i) const {
  for (const InvocationTuple& e : *L_) {
    if (e.client == i) return true;
  }
  return false;
}

Server::Server(int n, net::Transport& net, NodeId self)
    : core_(n),
      net_(net),
      self_(self),
      last_reply_(static_cast<std::size_t>(n)),
      parked_(static_cast<std::size_t>(n)) {
  net_.attach(self_, *this);
}

void Server::on_message(NodeId from, BytesView msg) {
  // No shared buffer to retain: fall back to copying the value into MEM.
  process_client_msg(from, msg, nullptr);
}

void Server::process_client_msg(NodeId from, BytesView bytes,
                                const std::shared_ptr<const Bytes>& buffer) {
  const auto type = peek_type(bytes);
  if (!type.has_value()) return;  // clients are correct; ignore noise
  if (*type == MsgType::kCommit) {
    auto m = decode_commit(bytes);
    if (!m.has_value()) return;
    core_.process_commit(static_cast<ClientId>(from), *m);
    release_parked();
    return;
  }
  if (*type != MsgType::kSubmit && *type != MsgType::kSubmitDelta) return;
  if (from < 1 || from > static_cast<NodeId>(core_.n())) return;

  // Peek (client, t) without processing: both view decoders are cheap and
  // copy nothing. The D10 piggybacked COMMIT (when present) is lifted out
  // here — it logically precedes the submit.
  Timestamp t = 0;
  std::optional<CommitMessage> piggyback;
  if (*type == MsgType::kSubmit) {
    const auto v = decode_submit_view(bytes);
    if (!v.has_value() || v->inv.client != from) return;
    t = v->t;
    if (v->has_commit) {
      piggyback = CommitMessage{v->commit_version, Bytes(v->commit_sig.begin(), v->commit_sig.end()),
                                Bytes(v->proof_sig.begin(), v->proof_sig.end())};
    }
  } else {
    const auto v = decode_submit_delta_view(bytes);
    if (!v.has_value() || v->inv.client != from) return;
    t = v->t;
    if (v->has_commit) {
      piggyback = CommitMessage{v->commit_version, Bytes(v->commit_sig.begin(), v->commit_sig.end()),
                                Bytes(v->proof_sig.begin(), v->proof_sig.end())};
    }
  }
  const ClientId i = static_cast<ClientId>(from);

  // Process the piggybacked COMMIT BEFORE the dedup and parking checks:
  // it can prune L (draining this client's parking slot, so the submit
  // below dispatches instead of deadlocking in the slot) and it advances
  // SVER[i] even when the submit itself turns out to be a duplicate —
  // which is exactly the Algorithm 1 line-52 invariant the piggyback
  // exists to uphold. The monotone gate in process_commit makes stale
  // re-deliveries no-ops.
  if (piggyback.has_value()) {
    core_.process_commit(i, *piggyback);
    release_parked();
  }

  // D10 exactly-once: t <= MEM[i].t marks a duplicated/retransmitted
  // SUBMIT for an op this server already processed. Reprocessing would
  // append a second L entry → false kSelfConcurrent at the (correct)
  // client, so the cached original reply is resent instead.
  if (t <= core_.mem(i).t) {
    ++duplicate_replies_;
    const Bytes& cached = last_reply_[static_cast<std::size_t>(i - 1)];
    if (!cached.empty()) net_.send(self_, from, Bytes(cached));
    return;
  }

  // D10 reorder tolerance: this SUBMIT overtook the client's previous
  // COMMIT (L still lists an op of the client); processing it now would
  // put the client's OWN op into its concurrency set. Park it until that
  // COMMIT lands — or, if the COMMIT was lost, until the client's
  // retransmission (which resends COMMIT before SUBMIT) drains the slot.
  if (core_.client_in_L(i)) {
    Parked p;
    p.buffer = buffer;
    if (!buffer) p.raw.assign(bytes.begin(), bytes.end());
    parked_[static_cast<std::size_t>(i - 1)] = std::move(p);
    ++parked_submits_;
    return;
  }

  dispatch_submit(from, bytes, buffer);
}

void Server::dispatch_submit(NodeId from, BytesView bytes,
                             const std::shared_ptr<const Bytes>& buffer) {
  if (peek_type(bytes) == MsgType::kSubmitDelta) {
    const auto m = decode_submit_delta_view(bytes);
    if (!m.has_value()) return;
    handle_submit_delta(from, *m, buffer);
    return;
  }
  if (buffer) {
    // Zero-copy SUBMIT: decode views and let MEM retain slices of the
    // delivered buffer — the register value crosses the server uncopied.
    const auto m = decode_submit_view(bytes);
    if (!m.has_value()) return;
    const ReplySnapshot reply = core_.process_submit(*m, buffer);
    send_reply(static_cast<ClientId>(from), encode(reply));
    return;
  }
  const auto m = decode_submit(bytes);
  if (!m.has_value()) return;
  const ReplySnapshot reply = core_.process_submit(*m);
  send_reply(static_cast<ClientId>(from), encode(reply));
}

void Server::release_parked() {
  for (ClientId i = 1; i <= core_.n(); ++i) {
    auto& slot = parked_[static_cast<std::size_t>(i - 1)];
    if (!slot.has_value() || core_.client_in_L(i)) continue;
    Parked p = std::move(*slot);
    slot.reset();
    const BytesView bytes = p.buffer ? BytesView(*p.buffer) : BytesView(p.raw);
    dispatch_submit(static_cast<NodeId>(i), bytes, p.buffer);
  }
}

void Server::send_reply(ClientId to, Bytes encoded) {
  last_reply_[static_cast<std::size_t>(to - 1)] = encoded;
  net_.send(self_, static_cast<NodeId>(to), std::move(encoded));
}

void Server::handle_submit_delta(NodeId from, const SubmitDeltaMessageView& m,
                                 const std::shared_ptr<const Bytes>& buffer) {
  if (m.inv.oc == OpCode::kWrite) {
    const auto reply = core_.process_submit_delta(m, buffer);
    // A baseless/out-of-bounds delta is dropped: correct clients never
    // send one, and a Byzantine client only hurts itself.
    if (!reply.has_value()) return;
    send_reply(static_cast<ClientId>(from), encode(*reply));
    return;
  }
  // Advertised-base read: run the ordinary read, then shrink the reply to
  // an "unchanged" token or a splice run if the reader's base allows it.
  const ClientId j = m.inv.target;
  if (j < 1 || j > core_.n()) return;
  SubmitMessageView full;
  full.t = m.t;
  full.inv = m.inv;
  full.value = std::nullopt;
  full.data_sig = m.data_sig;
  ReplySnapshot reply;
  if (buffer) {
    reply = core_.process_submit(full, buffer);
  } else {
    SubmitMessage owned;
    owned.t = m.t;
    owned.inv = InvocationTuple{m.inv.client, m.inv.oc, m.inv.target,
                                Bytes(m.inv.submit_sig.begin(), m.inv.submit_sig.end())};
    owned.data_sig.assign(m.data_sig.begin(), m.data_sig.end());
    reply = core_.process_submit(owned);
  }
  ReadDeltaPlan plan;
  if (core_.plan_read_delta(j, m.base_digest, &plan) == ServerCore::ReadServing::kFull) {
    send_reply(static_cast<ClientId>(from), encode(reply));  // D6 fallback: full value
  } else {
    send_reply(static_cast<ClientId>(from), encode_reply_delta(reply, plan));
  }
}

void Server::on_shared_message(NodeId from, const std::shared_ptr<const Bytes>& msg) {
  process_client_msg(from, BytesView(*msg), msg);
}

}  // namespace faust::ustor
