// USTOR server — Algorithm 2 of the paper.
//
// The protocol state and the SUBMIT/COMMIT handlers live in `ServerCore`,
// a plain struct with no I/O: the correct `Server` below owns one core and
// forwards messages; the Byzantine servers in src/adversary own one or
// more cores (a fork per client group) and distort what flows between
// core and network.  The core also keeps a schedule log — the sequence in
// which SUBMITs were processed — which *is* the linearization order when
// the server is correct, and which tests/checkers consume as the oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "net/transport.h"
#include "ustor/messages.h"
#include "ustor/types.h"

namespace faust::ustor {

/// One scheduled operation, as logged by the server (test oracle).
struct ScheduledOp {
  ClientId client = 0;
  OpCode oc = OpCode::kRead;
  ClientId target = 0;
  Timestamp t = 0;

  bool operator==(const ScheduledOp&) const = default;
};

/// Protocol state + handlers of Algorithm 2, free of any transport.
class ServerCore {
 public:
  explicit ServerCore(int n);

  /// Lines 107–116: updates MEM, builds the REPLY, appends to L.
  /// The caller sends the returned reply to the submitting client.
  ReplyMessage process_submit(const SubmitMessage& m);

  /// Lines 117–123: stores the version/signatures, advances the last
  /// committed pointer `c`, prunes L.
  void process_commit(ClientId i, const CommitMessage& m);

  int n() const { return n_; }

  /// The schedule so far (order of SUBMIT processing).
  const std::vector<ScheduledOp>& schedule() const { return schedule_; }

  /// Current length of the concurrent-operations list L (bench C6 tracks
  /// its growth when COMMITs are withheld).
  std::size_t pending_list_size() const { return L_.size(); }

  // State is intentionally inspectable/mutable: the adversary variants
  // (src/adversary) are "the same server, lying", and tests peek at it.
  struct MemEntry {
    Timestamp t = 0;
    Value value;     // last written value (⊥ before the first write)
    Bytes data_sig;  // last DATA-signature
  };

  MemEntry& mem(ClientId i) { return MEM_[static_cast<std::size_t>(i - 1)]; }
  const MemEntry& mem(ClientId i) const { return MEM_[static_cast<std::size_t>(i - 1)]; }
  SignedVersion& sver(ClientId i) { return SVER_[static_cast<std::size_t>(i - 1)]; }
  const SignedVersion& sver(ClientId i) const { return SVER_[static_cast<std::size_t>(i - 1)]; }
  ClientId last_committer() const { return c_; }
  const std::vector<InvocationTuple>& L() const { return L_; }
  const std::vector<Bytes>& P() const { return P_; }

 private:
  const int n_;
  std::vector<MemEntry> MEM_;        // line 102
  ClientId c_ = 1;                   // line 103
  std::vector<SignedVersion> SVER_;  // line 104
  std::vector<InvocationTuple> L_;   // line 105
  std::vector<Bytes> P_;             // line 106
  std::vector<ScheduledOp> schedule_;
};

/// The correct server: decodes messages, runs the core, replies.
class Server : public net::Node {
 public:
  Server(int n, net::Transport& net, NodeId self = kServerNode);

  void on_message(NodeId from, BytesView msg) override;

  ServerCore& core() { return core_; }
  const ServerCore& core() const { return core_; }

 private:
  ServerCore core_;
  net::Transport& net_;
  const NodeId self_;
};

}  // namespace faust::ustor
