// USTOR server — Algorithm 2 of the paper.
//
// The protocol state and the SUBMIT/COMMIT handlers live in `ServerCore`,
// a plain struct with no I/O: the correct `Server` below owns one core and
// forwards messages; the Byzantine servers in src/adversary own one or
// more cores (a fork per client group) and distort what flows between
// core and network.  The core also keeps a schedule log — the sequence in
// which SUBMITs were processed — which *is* the linearization order when
// the server is correct, and which tests/checkers consume as the oracle.
//
// Replies are copy-on-write snapshots (ReplySnapshot): process_submit no
// longer deep-copies L and P into every reply; it hands out shared
// references and clones only if it must mutate state while a snapshot is
// still alive (see PERF.md).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "net/transport.h"
#include "ustor/messages.h"
#include "ustor/types.h"

namespace faust::ustor {

/// One scheduled operation, as logged by the server (test oracle).
struct ScheduledOp {
  ClientId client = 0;
  OpCode oc = OpCode::kRead;
  ClientId target = 0;
  Timestamp t = 0;

  bool operator==(const ScheduledOp&) const = default;
};

/// Protocol state + handlers of Algorithm 2, free of any transport.
class ServerCore {
 public:
  explicit ServerCore(int n);

  /// Deep copy: a forked core (src/adversary "same server, lying") gets
  /// its own L/P vectors — the two worlds must diverge independently.
  /// Snapshots already handed out keep aliasing the original's state.
  ServerCore(const ServerCore& other);
  ServerCore(ServerCore&&) = default;
  ServerCore& operator=(const ServerCore&) = delete;

  /// Lines 107–116: updates MEM, builds the REPLY, appends to L.  The
  /// returned snapshot shares L and P with the server state (no deep
  /// copy); it remains valid and immutable across later submits/commits.
  /// The caller encodes it directly, or materialize()s a mutable copy.
  ReplySnapshot process_submit(const SubmitMessage& m);

  /// Zero-copy variant (the correct server's hot path): `m` views into
  /// `buffer`, and MEM retains the value and DATA signature as shared
  /// slices of it — a submitted register value is never copied out of the
  /// delivered message (PERF.md "O(change) operations"). Behaviour and
  /// reply bytes are identical to the owned overload.
  ReplySnapshot process_submit(const SubmitMessageView& m,
                               const std::shared_ptr<const Bytes>& buffer);

  /// SUBMIT_DELTA write form (D6): applies the splices to the retained
  /// value, records the delta for later advertised-base reads, then runs
  /// the ordinary submit. nullopt if there is no base value or the splice
  /// list is out of bounds — a correct client never sends either, so the
  /// server silently drops (the client's resend/fallback machinery owns
  /// recovery). `buffer` may be null (owned-copy path).
  std::optional<ReplySnapshot> process_submit_delta(const SubmitDeltaMessageView& m,
                                                    const std::shared_ptr<const Bytes>& buffer);

  /// How an advertised-base read can be served.
  enum class ReadServing {
    kFull,       // base unknown / history too old / delta not smaller
    kUnchanged,  // stored root equals the advertised base
    kDelta,      // plan->runs carries the base forward to the current value
  };

  /// Decides how to answer a read of register `j` whose client advertised
  /// `base` as its last verified chunk-tree root. On kDelta the plan's
  /// spans borrow mem(j).history and are valid until the next mutation of
  /// that register.
  ReadServing plan_read_delta(ClientId j, const crypto::Hash& base, ReadDeltaPlan* plan);

  /// Lazily computes mem(i).digest (chunk-tree root of the stored value);
  /// false iff the register is still ⊥.
  bool ensure_digest(ClientId i);

  /// Lines 117–123: stores the version/signatures, advances the last
  /// committed pointer `c`, prunes L.
  void process_commit(ClientId i, const CommitMessage& m);

  /// True iff L currently lists an operation of client `i` — its COMMIT
  /// for that operation has not been processed yet. Transports that can
  /// reorder or drop (D10 chaos) use this to park a SUBMIT that overtook
  /// its predecessor's COMMIT instead of processing it into a false
  /// self-concurrency.
  bool client_in_L(ClientId i) const;

  int n() const { return n_; }

  /// The schedule so far (order of SUBMIT processing).
  const std::vector<ScheduledOp>& schedule() const { return schedule_; }

  /// Current length of the concurrent-operations list L (bench C6 tracks
  /// its growth when COMMITs are withheld).
  std::size_t pending_list_size() const { return L_->size(); }

  /// Bumped on every mutation of the reply-visible state (L, P); each
  /// ReplySnapshot records the generation it was taken at.
  std::uint64_t generation() const { return gen_; }

  /// Number of times a COW clone was forced by a still-alive snapshot.
  /// Submits never clone (they append past every snapshot's l_count
  /// prefix); only a COMMIT that prunes L or updates P while a snapshot
  /// is still held clones — near zero in steady state, where replies are
  /// encoded and dropped before the COMMIT arrives.
  std::uint64_t cow_clones() const { return cow_clones_; }

  // State is intentionally inspectable/mutable: the adversary variants
  // (src/adversary) are "the same server, lying", and tests peek at it.
  // The value/signature are shared slices of the writer's retained SUBMIT
  // message (or owned buffers on the legacy ingest path) — consumers that
  // mutate take to_owned()/to_bytes() copies.
  /// One accepted SUBMIT_DELTA, kept so later advertised-base reads can be
  /// served as splices: the records of one history chain (`to` of each is
  /// the `from` of the next).
  struct DeltaRecord {
    crypto::Hash from{};  // chunk-tree root the splices apply against
    crypto::Hash to{};    // root after applying them (the writer's claim)
    std::uint64_t new_size = 0;
    std::vector<Splice> splices;
    std::size_t wire_bytes = 0;  // encoded size of the splice list
  };

  /// How many delta records to retain per register; a reader whose base is
  /// older than the window falls back to the full value.
  static constexpr std::size_t kDeltaHistoryDepth = 8;

  struct MemEntry {
    Timestamp t = 0;
    SharedValue value;     // last written value (⊥ before the first write)
    SharedBytes data_sig;  // last DATA-signature
    // Delta bookkeeping (D6). `digest` is the chunk-tree root of `value`,
    // computed lazily on the first delta-path touch; a full write resets
    // all three (the whole MemEntry is replaced).
    bool digest_known = false;
    crypto::Hash digest{};
    std::deque<DeltaRecord> history;
  };

  MemEntry& mem(ClientId i) { return MEM_[static_cast<std::size_t>(i - 1)]; }
  const MemEntry& mem(ClientId i) const { return MEM_[static_cast<std::size_t>(i - 1)]; }
  SignedVersion& sver(ClientId i) { return SVER_[static_cast<std::size_t>(i - 1)]; }
  const SignedVersion& sver(ClientId i) const { return SVER_[static_cast<std::size_t>(i - 1)]; }
  ClientId last_committer() const { return c_; }
  const std::vector<InvocationTuple>& L() const { return *L_; }
  const std::vector<Bytes>& P() const { return *P_; }

  /// Durability import hook (ustor/state_codec.h): replaces the entire
  /// protocol state with a previously exported image. Delta bookkeeping
  /// (digest/history of each MemEntry) is NOT part of an image — it is
  /// derived state that rebuilds on demand, so advertised-base reads
  /// against a restored core degrade to "unchanged" or full replies,
  /// never to wrong ones. Vector sizes must match n (FAUST_CHECKed).
  void restore(std::vector<MemEntry> mem, ClientId c, std::vector<SignedVersion> sver,
               std::vector<InvocationTuple> concurrent, std::vector<Bytes> proofs,
               std::vector<ScheduledOp> schedule);

 private:
  /// Copy-on-write accessors: clone the shared vector iff a snapshot
  /// still references it, then bump the state generation.
  std::vector<InvocationTuple>& mutable_L();
  std::vector<Bytes>& mutable_P();

  /// Lines 107–116 over ownership-agnostic inputs (both overloads above
  /// funnel here).
  ReplySnapshot submit_impl(Timestamp t, InvocationTuple inv, SharedValue value,
                            SharedBytes data_sig);

  const int n_;
  std::vector<MemEntry> MEM_;        // line 102
  ClientId c_ = 1;                   // line 103
  std::vector<SignedVersion> SVER_;  // line 104
  std::shared_ptr<std::vector<InvocationTuple>> L_;  // line 105 (COW-shared)
  std::shared_ptr<std::vector<Bytes>> P_;            // line 106 (COW-shared)
  std::vector<ScheduledOp> schedule_;
  std::uint64_t gen_ = 0;
  std::uint64_t cow_clones_ = 0;
};

/// Expands a SUBMIT_DELTA into the equivalent full SUBMIT against `core`'s
/// current state: write form applies the splices to the stored value, read
/// form carries no value. Used by servers that do not speak the delta
/// protocol themselves (adversaries, the WAL replayer) — replying with a
/// full REPLY to a delta-speaking client is always acceptable under the
/// D6 negotiation. nullopt on a baseless or out-of-bounds delta.
std::optional<SubmitMessage> expand_submit_delta(const ServerCore& core,
                                                 const SubmitDeltaMessageView& m);

/// The correct server: decodes messages, runs the core, replies.
///
/// D10 chaos tolerance. The paper's channels are reliable FIFO; under a
/// FaultPlan they are not, and three purely-timing anomalies would
/// otherwise masquerade as server misbehavior at a correct client:
///   - a DUPLICATED (or retransmitted) SUBMIT reprocessed as a new op
///     appends a second L entry for the client → false kSelfConcurrent.
///     The submit timestamp doubles as a per-client sequence number
///     (reads and writes both advance MEM[i].t), so t <= MEM[i].t marks
///     an already-processed op and the cached original reply is resent.
///   - a SUBMIT that OVERTOOK its predecessor's COMMIT (L still lists an
///     op of the client) is parked — one slot per client suffices, a
///     client runs one op at a time — and dispatched once that COMMIT
///     lands. A lost COMMIT drains the slot too: the client's
///     retransmission resends COMMIT before SUBMIT.
///   - stale/duplicated COMMITs are handled inside ServerCore (monotone
///     SVER/P fold).
/// None of this changes behaviour on a clean FIFO transport.
class Server : public net::Node {
 public:
  Server(int n, net::Transport& net, NodeId self = kServerNode);

  void on_message(NodeId from, BytesView msg) override;

  /// Shared delivery (net::Network uses this): SUBMITs take the zero-copy
  /// path, retaining the value as a slice of `msg` instead of copying it.
  void on_shared_message(NodeId from, const std::shared_ptr<const Bytes>& msg) override;

  ServerCore& core() { return core_; }
  const ServerCore& core() const { return core_; }

  /// Duplicate SUBMITs answered from the reply cache (D10 exactly-once).
  std::uint64_t duplicate_replies() const { return duplicate_replies_; }
  /// SUBMITs parked behind a not-yet-processed predecessor COMMIT.
  std::uint64_t parked_submits() const { return parked_submits_; }

 private:
  /// A SUBMIT held back until the client's previous COMMIT arrives. The
  /// shared buffer is retained when the message came in on the zero-copy
  /// path; otherwise `raw` owns a copy.
  struct Parked {
    Bytes raw;
    std::shared_ptr<const Bytes> buffer;
  };

  /// Both delivery paths funnel here; `buffer` is null on the owned
  /// (on_message) path.
  void process_client_msg(NodeId from, BytesView bytes,
                          const std::shared_ptr<const Bytes>& buffer);

  /// Runs a (de-duplicated, un-parked) SUBMIT/SUBMIT_DELTA through the
  /// core and replies.
  void dispatch_submit(NodeId from, BytesView bytes,
                       const std::shared_ptr<const Bytes>& buffer);

  /// Shared SUBMIT_DELTA handling for both delivery paths; `buffer` is
  /// null on the owned (on_message) path.
  void handle_submit_delta(NodeId from, const SubmitDeltaMessageView& m,
                           const std::shared_ptr<const Bytes>& buffer);

  /// Dispatches every parked SUBMIT whose blocking L entry is gone (a
  /// COMMIT's prune can clear OTHER clients' entries too, so all slots
  /// are scanned after every process_commit).
  void release_parked();

  /// Caches the encoded reply for duplicate suppression, then sends it.
  void send_reply(ClientId to, Bytes encoded);

  ServerCore core_;
  net::Transport& net_;
  const NodeId self_;
  std::vector<Bytes> last_reply_;         // per client, most recent reply bytes
  std::vector<std::optional<Parked>> parked_;  // one slot per client
  std::uint64_t duplicate_replies_ = 0;
  std::uint64_t parked_submits_ = 0;
};

}  // namespace faust::ustor
