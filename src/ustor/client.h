// USTOR client — Algorithm 1 of the paper.
//
// One instance per client C_i. Operations are asynchronous: `writex` /
// `readx` send a SUBMIT message and invoke the given callback when the
// operation completes (after the single REPLY round; the trailing COMMIT
// is off the critical path, exactly as in §5, so the protocol is wait-free
// whenever the server responds).
//
// Every check of lines 35–52 is implemented verbatim; any violation makes
// the client emit fail_i (the `on_fail` hook) and halt, as the paper
// prescribes.  Garbage from the server (undecodable messages, wrong vector
// sizes, out-of-range indices) is routed into the same fail path — a
// Byzantine server can stop a client but never crash or confuse it.
//
// Hot-path engineering (PERF.md): replies are decoded zero-copy
// (decode_reply_view) and verified through two memo layers — exact-match
// memos for the recurring COMMIT/PROOF entries, and a VerifyCache for
// everything else.  Neither weakens any check: a memo hit requires
// byte-exact equality with a previously *verified* input, so forged or
// tampered data always goes through (and fails) full verification.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "common/ids.h"
#include "crypto/chunked_hasher.h"
#include "crypto/signature.h"
#include "crypto/verify_cache.h"
#include "net/transport.h"
#include "ustor/messages.h"
#include "ustor/types.h"

namespace faust::ustor {

/// Why the client declared the server faulty (diagnostic detail carried
/// alongside the paper's single fail_i event).
enum class FailCause {
  kNone,
  kMalformedMessage,    // undecodable or ill-typed server message
  kBadCommitSignature,  // line 35 / 49
  kVersionRegression,   // line 36: (V_i,M_i) ⋠ (V_c,M_c) or V_c[i] ≠ V_i[i]
  kBadProofSignature,   // line 41
  kSelfConcurrent,      // line 43: own operation listed as concurrent
  kBadSubmitSignature,  // line 43
  kBadDataSignature,    // line 50
  kStaleRead,           // line 51: (V_j,M_j) ⋠ (V_c,M_c) or t_j ≠ V_i[j]
  kBadWriterTimestamp,  // line 52: V_j[j] ∉ {t_j, t_j − 1}
  kUnsolicitedReply,    // REPLY with no operation in flight
};

/// Result of an extended write (the paper's writex): the operation's
/// timestamp and the version it committed.
struct WriteResult {
  Timestamp t = 0;
  SignedVersion own;  // (V_i, M_i) plus our COMMIT-signature on it
  /// The DATA signature δ_i = sign_i(DATA‖t‖x̄) that went out with the
  /// SUBMIT — the exact wire bytes, not a re-signature (relevant for
  /// stateful schemes like MSS where re-signing consumes a key and yields
  /// different bytes). Together with (t, x̄, value) this is the same
  /// self-certifying tuple a read yields, usable for edge-cache push
  /// fills (DESIGN.md D8).
  Bytes data_sig;
};

/// Result of an extended read (readx): the value, our committed version,
/// and the register owner's largest committed version (V_j, M_j).
struct ReadResult {
  Timestamp t = 0;
  Value value;
  SignedVersion own;
  ClientId writer = 0;  // register owner C_j
  SignedVersion writer_version;
  /// The VERIFIED binding of the value: t_j (the writer's timestamp the
  /// DATA signature was checked against; 0 for a never-written register)
  /// and the value digest x̄_j that signature covers. Collision resistance
  /// makes (writer, writer_ts, value_digest) a sound cache key for any
  /// derived artifact of the value — the KV layer's decode memos key on
  /// it (PERF.md "O(change) operations").
  Timestamp writer_ts = 0;
  crypto::Hash value_digest{};
  /// The writer's DATA signature δ_j that was verified over
  /// data_payload(writer_ts, value_digest) — empty for a never-written
  /// register. Re-serving (writer_ts, value_digest, value, data_sig) to
  /// any verifier (e.g. an edge cache's readers, DESIGN.md D8) lets them
  /// run the exact same check; the tuple is self-certifying.
  Bytes data_sig;
};

/// Client-side protocol engine (Algorithm 1).
class Client : public net::Node {
 public:
  using WriteCallback = std::function<void(const WriteResult&)>;
  using ReadCallback = std::function<void(const ReadResult&)>;

  /// `id` ∈ [1, n]. The signature scheme is shared by all clients (and is
  /// never given to the server). `server` is the server's node id.
  /// `verify_cache_entries` bounds the VerifyCache this client wraps the
  /// scheme in (see crypto/verify_cache.h for the eviction policy).
  /// `digest_mode` selects how DATA payload digests are computed; every
  /// client of a deployment must use the same mode (the verifier
  /// recomputes the signer's digest).
  /// `wire_deltas` opts into the D6 delta wire protocol (SUBMIT_DELTA /
  /// REPLY_DELTA); it only takes effect under DigestMode::kChunked, whose
  /// chunk trees make deltas verifiable. Replies degrade to the full-value
  /// path on any base mismatch, so mixed deployments stay correct.
  Client(ClientId id, int n, std::shared_ptr<const crypto::SignatureScheme> sigs,
         net::Transport& net, NodeId server = kServerNode,
         std::size_t verify_cache_entries = 4096, DigestMode digest_mode = DigestMode::kFlat,
         bool wire_deltas = false);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Extended write to own register X_i (paper's writex_i). At most one
  /// operation may be in flight; see busy().
  void writex(Value x, WriteCallback done);

  /// Zero-copy write: the value is a shared immutable buffer whose bytes
  /// are copied exactly once, into the wire encoding. When
  /// `precomputed_xbar` is non-null it is used as x̄_i instead of
  /// re-digesting the buffer — the caller (the KV layer's incremental
  /// encoder) maintains the digest across edits and MUST pass exactly
  /// value_digest(mode, *x); a wrong digest only invalidates the caller's
  /// own DATA signature, which every verifier then rejects.
  void writex(std::shared_ptr<const Bytes> x, const crypto::Hash* precomputed_xbar,
              WriteCallback done);

  /// Delta write (D6): ships only the splices that carry the last
  /// published value forward, plus the new chunk-tree root the caller
  /// maintains incrementally. `base_digest` must be the root of the value
  /// currently held by the server (our previous publish); on any server-
  /// side mismatch the submit is dropped and the caller's timeout/retry
  /// machinery re-publishes in full. Requires wire deltas to be active.
  void writex_delta(const crypto::Hash& base_digest, const crypto::Hash& new_root,
                    std::uint64_t new_size, std::vector<Splice> splices, WriteCallback done);

  /// Extended read of register X_j (paper's readx_i), 1 <= j <= n.
  /// With wire deltas active and a verified value of X_j memoized, the
  /// request advertises (t_j, x̄_j) so the server may answer with an
  /// "unchanged" token or a splice run instead of the full value.
  void readx(ClientId j, ReadCallback done);

  /// Reconnect-and-resume after a server restart (DESIGN.md D7): re-sends
  /// the latest COMMIT (deterministic HMAC — byte-identical to the
  /// original, and process_commit is idempotent) and then, if an
  /// operation is still in flight, the retained SUBMIT bytes. The COMMIT
  /// goes first so a recovered server that already processed the SUBMIT
  /// prunes our op from L before answering the resend; the durable
  /// server's duplicate detection serves the cached original reply, so
  /// the op completes exactly once. No-op when idle or failed.
  void resubmit();

  /// True while an operation is awaiting its REPLY.
  bool busy() const { return pending_.has_value(); }

  /// True once fail_i has been emitted; the client is halted forever.
  bool failed() const { return fail_cause_ != FailCause::kNone; }
  FailCause fail_cause() const { return fail_cause_; }

  /// The fail_i output action (§5): invoked exactly once, at detection.
  std::function<void(FailCause)> on_fail;

  ClientId id() const { return id_; }
  int n() const { return n_; }

  /// Current version (V_i, M_i) — last committed.
  const Version& version() const { return version_; }

  /// COMMIT-signature on the current version (⊥ before the first op).
  const Bytes& commit_signature() const { return commit_sig_; }

  /// Number of completed operations (diagnostics).
  std::uint64_t completed_ops() const { return completed_ops_; }

  /// Replies that provably answered an already-completed own operation
  /// (chaos duplicates, retransmission echoes) and were dropped without
  /// alarm — the D10 no-false-fail_i rule in numbers.
  std::uint64_t stale_replies_dropped() const { return stale_replies_dropped_; }

  /// D10: piggyback this client's latest COMMIT on every SUBMIT /
  /// SUBMIT_DELTA. Over a lossy fabric, commit delivery then rides the
  /// (retransmitted) submit, so the server's SVER for this client never
  /// lags a served value by more than one version — the invariant behind
  /// Algorithm 1 line 52. A reader on a reliable fabric never needs it;
  /// OFF keeps the wire bytes (and pinned message counts) unchanged.
  void set_attach_commits(bool on) { attach_commits_ = on; }
  bool attach_commits() const { return attach_commits_; }

  /// True when the D6 delta wire protocol is in effect for this client.
  bool wire_deltas() const { return wire_deltas_; }

  // D6 outcome counters (diagnostics; benches surface them as JSON).
  std::uint64_t delta_submits() const { return delta_submits_; }
  std::uint64_t delta_reads_advertised() const { return delta_reads_advertised_; }
  std::uint64_t delta_replies_unchanged() const { return delta_replies_unchanged_; }
  std::uint64_t delta_replies_spliced() const { return delta_replies_spliced_; }
  std::uint64_t delta_fallbacks() const { return delta_fallbacks_; }

  /// True iff a verified present value of X_j is memoized (i.e. the next
  /// read of j will advertise a base under wire deltas).
  bool has_verified_base(ClientId j) const;

  /// Test hook: drops the verified-value memo (and chunk-tree state) for
  /// X_j, as a bounded-memory deployment would under cache pressure. The
  /// next delta reply against the forgotten base cannot resolve and must
  /// fall back to a full read.
  void evict_verified_value(ClientId j);

  /// The signature-verification cache this client funnels all signature
  /// checks through (diagnostics: hit/miss counts).
  const crypto::VerifyCache& verify_cache() const { return *sigs_; }

  // net::Node: handles REPLY messages.
  void on_message(NodeId from, BytesView msg) override;

 private:
  struct PendingOp {
    OpCode oc;
    ClientId target;
    Timestamp t;
    WriteCallback write_done;  // set for writes
    ReadCallback read_done;    // set for reads
    bool advertised = false;   // read carried an advertised base (D6)
    Bytes data_sig;            // write's wire δ, echoed in WriteResult
  };

  void fail(FailCause cause);

  /// D10 stale-reply filter: true iff `vc` (a reply's V_c) provably
  /// answers an already-completed own operation (V_c[i] < V_i[i]) — the
  /// reply is then counted and dropped instead of tripping the
  /// unsolicited-reply / regression checks (chaos duplicates must never
  /// forge failure evidence).
  bool stale_reply(const Version& vc);

  /// FNV-1a over the raw reply bytes — the echo identity (see
  /// stale_reply).
  static std::uint64_t reply_fingerprint(BytesView msg);
  bool reply_seen(std::uint64_t fp) const;
  void remember_reply(std::uint64_t fp);

  void handle_reply(const ReplyMessageView& m);

  /// REPLY_DELTA path (D6): resolves the candidate value against the
  /// memoized base, then runs the verbatim checks of lines 34–52 on the
  /// reconstruction. Unresolvable or unverifiable deltas degrade to a
  /// full-value retry; genuine protocol violations still emit fail_i.
  void handle_reply_delta(const ReplyDeltaMessageView& m);

  /// D6 fallback: commits the absorbed version (so the retried reply does
  /// not list our own just-absorbed operation as concurrent), then
  /// re-issues the pending read as a plain full-value SUBMIT. At most one
  /// fallback per op: the retry never advertises a base.
  void retry_read_full();

  /// Sends the SUBMIT for the pending read of X_j, advertising the
  /// memoized base when `allow_delta` and one is available.
  void send_read_submit(ClientId j, bool allow_delta);

  /// Lines 18–19 / 31–32 + completion: signs and sends COMMIT, pops the
  /// pending op and invokes its callback.
  void complete_op();

  /// Lines 34–47. Returns false (after emitting fail) on any violation.
  bool update_version(const ReplyMessageView& m);

  /// Lines 48–52. Returns false (after emitting fail) on any violation.
  bool check_data(const ReplyMessageView& m, ClientId j);

  /// Signs and sends the COMMIT message for the current version and
  /// refreshes commit_sig_ / proof material.
  void send_commit();

  /// Line 35/49 with memo: true iff `sig` is `committer`'s COMMIT
  /// signature over `v`. Skips verification when (v, sig) equals the last
  /// pair that verified for this committer.
  bool commit_sig_valid(ClientId committer, const Version& v, BytesView sig);

  /// Line 41 with memo: true iff `sig` is C_k's PROOF signature over mk.
  bool proof_sig_valid(ClientId k, const Digest& mk, BytesView sig);

  /// Line 50 with memo: true iff `sig` is C_j's DATA signature binding
  /// (tj, x̄(value)). On success stages the verified digest in
  /// staged_digest_. Under DigestMode::kChunked the digest of a changed
  /// value is re-derived incrementally: the per-writer ChunkedHasher
  /// mirrors the last VERIFIED value, so only chunks that differ from it
  /// are rehashed (a memcmp scan finds them). A forged value therefore
  /// still produces ITS OWN root — never the memoized one — and fails the
  /// signature check exactly like the flat mode.
  bool data_sig_valid(ClientId j, Timestamp tj, const ValueView& value, BytesView sig);

  /// Shared writex body: `x_view` aliases either the owned value or the
  /// shared buffer; exactly one wire copy is made.
  void writex_impl(const ValueView& x_view, const crypto::Hash* precomputed_xbar,
                   WriteCallback done);

  const ClientId id_;
  const int n_;
  const std::shared_ptr<const crypto::VerifyCache> sigs_;
  net::Transport& net_;
  const NodeId server_;
  const DigestMode digest_mode_;
  const bool wire_deltas_;            // D6 active (requires kChunked)
  const crypto::Hash bottom_digest_;  // x̄ of ⊥ (mode-independent)

  crypto::Hash xbar_;       // hash of own register's last written value
  Version version_;         // (V_i, M_i)
  Bytes commit_sig_;        // φ on version_ (empty before first commit)
  FailCause fail_cause_ = FailCause::kNone;
  std::optional<PendingOp> pending_;
  Bytes last_submit_;  // wire bytes of the latest SUBMIT, for resubmit()
  std::uint64_t completed_ops_ = 0;
  std::uint64_t stale_replies_dropped_ = 0;  // D10 (see accessor)

  // Fingerprints of recently processed replies (ring; zero = empty). A
  // stale-versioned reply is dropped as a chaos echo ONLY if its bytes
  // match one of these — fresh content with a regressed version stays a
  // hard failure. 64 entries dwarfs any bounded-delay duplicate window.
  std::array<std::uint64_t, 64> reply_fps_{};
  std::size_t reply_fp_next_ = 0;
  std::uint64_t current_reply_fp_ = 0;  // fp of the reply being handled

  bool attach_commits_ = false;  // D10 COMMIT piggyback (see accessor)
  CommitMessage last_commit_;    // latest sent COMMIT, for the piggyback

  /// The commit to piggyback on the next SUBMIT, or null (feature off /
  /// nothing committed yet).
  const CommitMessage* piggyback_commit() const {
    return attach_commits_ && !last_commit_.commit_sig.empty() ? &last_commit_ : nullptr;
  }

  /// Set only while check_data() re-runs lines 48–52 on a value
  /// RECONSTRUCTED from a delta: the two data-signature rejections then
  /// mean "the delta (or the server's unchanged claim) did not check out"
  /// — grounds for the full-value fallback, not for fail_i, since a full
  /// retry will either verify or produce primary evidence of misbehavior.
  /// Every other check (commit sigs, version order, staleness) stays a
  /// hard failure regardless.
  bool delta_tolerant_ = false;

  std::uint64_t delta_submits_ = 0;
  std::uint64_t delta_reads_advertised_ = 0;
  std::uint64_t delta_replies_unchanged_ = 0;
  std::uint64_t delta_replies_spliced_ = 0;
  std::uint64_t delta_fallbacks_ = 0;

  // Read-reply fields staged by check_data() for the completion callback.
  Value last_read_value_;
  SignedVersion last_read_writer_version_;
  Timestamp last_read_writer_ts_ = 0;
  crypto::Hash last_read_digest_{};
  Bytes last_read_sig_;
  crypto::Hash staged_digest_{};  // set by data_sig_valid on success

  // Exact-match memos of the last successfully verified inputs, one slot
  // per peer (empty signature = no entry). See class comment.
  std::vector<SignedVersion> verified_commit_;  // [k-1]: (version, φ_k)
  std::vector<std::pair<Digest, Bytes>> verified_proof_;  // [k-1]: (M[k], ψ_k)
  struct VerifiedData {
    Timestamp tj = 0;
    Value value;
    Bytes sig;
    crypto::Hash digest{};  // x̄ the signature was verified against
  };
  std::vector<VerifiedData> verified_data_;  // [j-1]: (t_j, value, δ_j)
  /// [j-1]: chunked-mode incremental digest state, mirroring
  /// verified_data_[j-1].value (kChunked only; see data_sig_valid).
  std::vector<crypto::ChunkedHasher> data_hashers_;
};

}  // namespace faust::ustor
