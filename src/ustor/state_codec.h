// Canonical serialization of a ServerCore's protocol state — the payload
// of the durability layer's snapshots (storage/snapshot_store.h).
//
// The image covers exactly Algorithm 2's state: MEM (timestamp, value,
// DATA signature per register), the last-committer pointer c, SVER, the
// concurrent-operations list L, the proof vector P, and the schedule log
// (the recovery oracle the tests compare). Derived per-register delta
// bookkeeping (chunk-tree digest, splice history) is deliberately NOT
// serialized: it rebuilds lazily, and a restored server answers
// advertised-base reads with "unchanged" or full replies until fresh
// deltas accumulate — correct, just momentarily less compact.
//
// Encoding goes through wire::Writer/Reader (DESIGN.md D3), so an image
// has a unique byte representation; decode is defensive (false on any
// malformed input) because a snapshot read from disk is untrusted bytes —
// the Byzantine-disk tests feed tampered images through this decoder.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "ustor/server.h"

namespace faust::ustor {

/// Serializes `core`'s full protocol state (see file comment).
Bytes encode_server_state(const ServerCore& core);

/// Decodes an image produced by encode_server_state and installs it into
/// `core` via ServerCore::restore. Returns false (leaving `core`
/// untouched) on any malformed input or an n mismatch.
bool restore_server_state(ServerCore& core, BytesView image);

}  // namespace faust::ustor
