#include "ustor/client.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace faust::ustor {
namespace {

bool same_bytes(BytesView a, BytesView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

Client::Client(ClientId id, int n, std::shared_ptr<const crypto::SignatureScheme> sigs,
               net::Transport& net, NodeId server, std::size_t verify_cache_entries,
               DigestMode digest_mode, bool wire_deltas)
    : id_(id),
      n_(n),
      sigs_(std::make_shared<crypto::VerifyCache>(std::move(sigs), verify_cache_entries)),
      net_(net),
      server_(server),
      digest_mode_(digest_mode),
      wire_deltas_(wire_deltas && digest_mode == DigestMode::kChunked),
      bottom_digest_(value_digest(digest_mode, std::nullopt)),
      version_(n),
      verified_commit_(static_cast<std::size_t>(n)),
      verified_proof_(static_cast<std::size_t>(n)),
      verified_data_(static_cast<std::size_t>(n)),
      data_hashers_(digest_mode == DigestMode::kChunked ? static_cast<std::size_t>(n) : 0) {
  FAUST_CHECK(id_ >= 1 && id_ <= n_);
  xbar_ = bottom_digest_;  // x̄_i of the initial value ⊥
  net_.attach(id_, *this);
}

void Client::fail(FailCause cause) {
  if (failed()) return;
  fail_cause_ = cause;
  pending_.reset();  // the operation never completes; the server is faulty
  if (on_fail) on_fail(cause);
}

void Client::writex(Value x, WriteCallback done) {
  const ValueView view = x.has_value() ? ValueView(BytesView(*x)) : ValueView(std::nullopt);
  writex_impl(view, nullptr, std::move(done));
}

void Client::writex(std::shared_ptr<const Bytes> x, const crypto::Hash* precomputed_xbar,
                    WriteCallback done) {
  FAUST_CHECK(x != nullptr);
  writex_impl(ValueView(BytesView(*x)), precomputed_xbar, std::move(done));
}

void Client::writex_impl(const ValueView& x_view, const crypto::Hash* precomputed_xbar,
                         WriteCallback done) {
  FAUST_CHECK(!busy());  // well-formed executions: one op at a time
  if (failed()) return;

  const Timestamp t = version_.v(id_) + 1;                              // line 12
  xbar_ = precomputed_xbar ? *precomputed_xbar
                           : value_digest(digest_mode_, x_view);        // line 13

  InvocationTuple inv;
  inv.client = id_;
  inv.oc = OpCode::kWrite;
  inv.target = id_;  // writes go to own register X_i
  inv.submit_sig = sigs_->sign(id_, submit_payload(OpCode::kWrite, id_, t));
  const Bytes data_sig = sigs_->sign(id_, data_payload(t, xbar_));

  pending_ = PendingOp{OpCode::kWrite, id_, t, std::move(done), {}};
  pending_->data_sig = data_sig;
  // line 15; the value bytes are copied exactly once, into the wire buffer
  last_submit_ = encode_submit(t, inv, x_view, data_sig, piggyback_commit());
  net_.send(id_, server_, Bytes(last_submit_));
}

void Client::writex_delta(const crypto::Hash& base_digest, const crypto::Hash& new_root,
                          std::uint64_t new_size, std::vector<Splice> splices,
                          WriteCallback done) {
  FAUST_CHECK(!busy());
  FAUST_CHECK(wire_deltas_);
  if (failed()) return;

  const Timestamp t = version_.v(id_) + 1;  // line 12
  xbar_ = new_root;                         // line 13: caller-maintained root

  InvocationTuple inv;
  inv.client = id_;
  inv.oc = OpCode::kWrite;
  inv.target = id_;
  inv.submit_sig = sigs_->sign(id_, submit_payload(OpCode::kWrite, id_, t));
  const Bytes data_sig = sigs_->sign(id_, data_payload(t, new_root));

  pending_ = PendingOp{OpCode::kWrite, id_, t, std::move(done), {}};
  pending_->data_sig = data_sig;
  ++delta_submits_;
  last_submit_ = encode_submit_delta(t, inv, base_digest, new_root, new_size,
                                     std::span<const Splice>(splices), BytesView(data_sig),
                                     piggyback_commit());
  net_.send(id_, server_, Bytes(last_submit_));
}

void Client::readx(ClientId j, ReadCallback done) {
  FAUST_CHECK(!busy());
  FAUST_CHECK(j >= 1 && j <= n_);
  if (failed()) return;

  pending_ = PendingOp{OpCode::kRead, j, 0, {}, std::move(done)};
  send_read_submit(j, /*allow_delta=*/true);
}

void Client::send_read_submit(ClientId j, bool allow_delta) {
  const Timestamp t = version_.v(id_) + 1;  // line 25
  pending_->t = t;

  InvocationTuple inv;
  inv.client = id_;
  inv.oc = OpCode::kRead;
  inv.target = j;
  inv.submit_sig = sigs_->sign(id_, submit_payload(OpCode::kRead, j, t));
  const Bytes data_sig = sigs_->sign(id_, data_payload(t, xbar_));  // line 26: x̄_i unchanged

  const VerifiedData& memo = verified_data_[static_cast<std::size_t>(j - 1)];
  const bool advertise =
      allow_delta && wire_deltas_ && !memo.sig.empty() && memo.value.has_value();
  pending_->advertised = advertise;
  if (advertise) {
    ++delta_reads_advertised_;
    last_submit_ = encode_submit_read_base(t, inv, memo.tj, memo.digest, BytesView(data_sig),
                                           piggyback_commit());
  } else {
    // line 27; the piggyback (when on) carries the latest COMMIT with it
    last_submit_ = encode_submit(t, inv, std::nullopt, BytesView(data_sig), piggyback_commit());
  }
  net_.send(id_, server_, Bytes(last_submit_));
}

bool Client::has_verified_base(ClientId j) const {
  const VerifiedData& memo = verified_data_[static_cast<std::size_t>(j - 1)];
  return !memo.sig.empty() && memo.value.has_value();
}

void Client::evict_verified_value(ClientId j) {
  verified_data_[static_cast<std::size_t>(j - 1)] = VerifiedData{};
  if (digest_mode_ == DigestMode::kChunked) {
    data_hashers_[static_cast<std::size_t>(j - 1)] = crypto::ChunkedHasher{};
  }
}

void Client::on_message(NodeId from, BytesView msg) {
  if (failed()) return;  // halted
  if (from != server_) return;

  const auto type = peek_type(msg);
  if (type == MsgType::kReplyDelta) {
    current_reply_fp_ = reply_fingerprint(msg);
    auto reply = decode_reply_delta_view(msg);
    if (!reply.has_value()) {
      fail(FailCause::kMalformedMessage);
      return;
    }
    handle_reply_delta(*reply);
    if (!failed()) remember_reply(current_reply_fp_);
    return;
  }
  if (!type.has_value() || *type != MsgType::kReply) {
    fail(FailCause::kMalformedMessage);
    return;
  }
  // Zero-copy decode: the view's byte fields alias `msg`, which stays
  // alive for the whole delivery callback. handle_reply copies the few
  // fields it keeps.
  current_reply_fp_ = reply_fingerprint(msg);
  auto reply = decode_reply_view(msg);
  if (!reply.has_value()) {
    fail(FailCause::kMalformedMessage);
    return;
  }
  handle_reply(*reply);
  if (!failed()) remember_reply(current_reply_fp_);
}

void Client::remember_reply(std::uint64_t fp) {
  if (reply_seen(fp)) return;  // echoes re-deliver the same bytes
  reply_fps_[reply_fp_next_] = fp;
  reply_fp_next_ = (reply_fp_next_ + 1) % reply_fps_.size();
}

bool Client::stale_reply(const Version& vc) {
  // Chaos tolerance (D10): duplicating or reordering channels can
  // redeliver the REPLY of an operation that already completed, and the
  // server's duplicate-suppression cache echoes the ORIGINAL reply bytes
  // after a resubmitted SUBMIT. Both carry V_c[i] < V_i[i] — but so does
  // the reply of a server that regressed this client's version (dropped
  // its COMMITs, replayed a fork). The discriminator is CONTENT: under a
  // correct server exactly one reply per own timestamp ever exists, so
  // every legitimate stale delivery is byte-identical to a reply this
  // client already processed. Match → timing fault, dropped without
  // alarm (Def. 5 accuracy). No match → the stale version is fresh
  // evidence, and the reply falls through to line 36, which fails the
  // client as before. (A Byzantine server replaying an old reply
  // verbatim is indistinguishable from a lossy channel and merely
  // stalls the op — the api layer's deadline surfaces that as
  // unavailability, never as fail_i.)
  if (vc.n() == n_ && vc.v(id_) < version_.v(id_) && reply_seen(current_reply_fp_)) {
    ++stale_replies_dropped_;
    return true;
  }
  return false;
}

std::uint64_t Client::reply_fingerprint(BytesView msg) {
  // FNV-1a. A collision can only make FRESH bytes look like an echo —
  // suppressing a detection a server could equally avoid by staying
  // silent — never the reverse: a true echo always matches its own
  // stored fingerprint, so accuracy does not rest on this hash.
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : msg) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

bool Client::reply_seen(std::uint64_t fp) const {
  for (const std::uint64_t f : reply_fps_) {
    if (f == fp) return true;
  }
  return false;
}

void Client::handle_reply(const ReplyMessageView& m) {
  if (stale_reply(m.last.version)) return;
  if (!pending_.has_value()) {
    // A correct server replies exactly once per SUBMIT.
    fail(FailCause::kUnsolicitedReply);
    return;
  }
  const bool is_read = pending_->oc == OpCode::kRead;
  // The REPLY shape must match the pending operation (Algorithm 2 lines
  // 111 / 114).
  if (is_read != m.read.has_value()) {
    fail(FailCause::kMalformedMessage);
    return;
  }

  if (!update_version(m)) return;                      // lines 17 / 29
  if (is_read && !check_data(m, pending_->target)) return;  // line 30

  complete_op();
}

void Client::complete_op() {
  // Lines 18–19 / 31–32: sign and send COMMIT; the operation completes
  // without waiting for any acknowledgement (wait-freedom).
  send_commit();

  PendingOp op = std::move(*pending_);
  pending_.reset();
  ++completed_ops_;

  if (op.oc == OpCode::kWrite) {
    WriteResult r;
    r.t = op.t;
    r.own = SignedVersion{version_, commit_sig_};
    r.data_sig = std::move(op.data_sig);
    if (op.write_done) op.write_done(r);
  } else {
    ReadResult r;
    r.t = op.t;
    r.value = last_read_value_;
    r.own = SignedVersion{version_, commit_sig_};
    r.writer = op.target;
    r.writer_version = last_read_writer_version_;
    r.writer_ts = last_read_writer_ts_;
    r.value_digest = last_read_digest_;
    r.data_sig = last_read_sig_;
    if (op.read_done) op.read_done(r);
  }
}

void Client::handle_reply_delta(const ReplyDeltaMessageView& m) {
  if (stale_reply(m.last.version)) return;
  if (!pending_.has_value()) {
    fail(FailCause::kUnsolicitedReply);
    return;
  }
  // Only a read that advertised a base may be answered with REPLY_DELTA.
  if (pending_->oc != OpCode::kRead || !pending_->advertised) {
    fail(FailCause::kMalformedMessage);
    return;
  }
  const ClientId j = pending_->target;

  // Resolve the candidate value against the memoized verified base. The
  // server echoes the base digest it served against; anything other than
  // our memo's digest (evicted, rotated, or a lie) is unresolvable.
  const VerifiedData& memo = verified_data_[static_cast<std::size_t>(j - 1)];
  bool resolved = false;
  Bytes rebuilt;  // owns the spliced reconstruction while we verify it
  ValueView candidate = std::nullopt;
  if (!memo.sig.empty() && memo.value.has_value() && memo.digest == m.read.base_digest) {
    if (m.read.unchanged) {
      candidate = BytesView(*memo.value);
      resolved = true;
    } else {
      auto applied = apply_delta(BytesView(*memo.value),
                                 std::span<const SpliceView>(m.read.splices), m.read.new_size);
      if (applied.has_value()) {
        rebuilt = std::move(*applied);
        candidate = BytesView(rebuilt);
        resolved = true;
      }
    }
  }

  // Lines 34–52 run verbatim on a full-reply view over the delta reply;
  // the reconstruction stands in for the wire value.
  ReplyMessageView full;
  full.c = m.c;
  full.last = m.last;
  ReadPayloadView rp;
  rp.writer = m.read.writer;
  rp.tj = m.read.tj;
  rp.value = candidate;
  rp.data_sig = m.read.data_sig;
  full.read = rp;
  full.L = m.L;
  full.P = m.P;

  if (!update_version(full)) return;  // genuine violations: fail_i as ever
  if (!resolved) {
    retry_read_full();
    return;
  }
  delta_tolerant_ = true;
  const bool data_ok = check_data(full, j);
  delta_tolerant_ = false;
  if (!data_ok) {
    if (failed()) return;  // staleness/commit-sig violations already failed
    retry_read_full();     // the delta did not check out: re-read in full
    return;
  }
  if (m.read.unchanged) {
    ++delta_replies_unchanged_;
  } else {
    ++delta_replies_spliced_;
  }
  complete_op();
}

void Client::retry_read_full() {
  ++delta_fallbacks_;
  // Commit the version we just absorbed FIRST: without it, the server's L
  // still lists the absorbed operation and the retried reply would flag it
  // as self-concurrency (line 43).
  send_commit();
  send_read_submit(pending_->target, /*allow_delta=*/false);
}

void Client::resubmit() {
  if (failed()) return;
  // Latest COMMIT first (see header): signing is deterministic HMAC, so
  // send_commit() reproduces the exact pre-crash bytes, and FIFO channels
  // deliver it before the resent SUBMIT below.
  if (!commit_sig_.empty()) send_commit();
  if (pending_.has_value() && !last_submit_.empty()) {
    net_.send(id_, server_, Bytes(last_submit_));
  }
}

bool Client::commit_sig_valid(ClientId committer, const Version& v, BytesView sig) {
  SignedVersion& memo = verified_commit_[static_cast<std::size_t>(committer - 1)];
  if (!memo.commit_sig.empty() && memo.version == v && same_bytes(memo.commit_sig, sig)) {
    return true;
  }
  if (!sigs_->verify(committer, commit_payload(v), sig)) return false;
  memo.version = v;
  memo.commit_sig.assign(sig.begin(), sig.end());
  return true;
}

bool Client::proof_sig_valid(ClientId k, const Digest& mk, BytesView sig) {
  auto& [memo_digest, memo_sig] = verified_proof_[static_cast<std::size_t>(k - 1)];
  if (!memo_sig.empty() && memo_digest == mk && same_bytes(memo_sig, sig)) return true;
  if (!sigs_->verify(k, proof_payload(mk), sig)) return false;
  memo_digest = mk;
  memo_sig.assign(sig.begin(), sig.end());
  return true;
}

bool Client::data_sig_valid(ClientId j, Timestamp tj, const ValueView& value, BytesView sig) {
  VerifiedData& memo = verified_data_[static_cast<std::size_t>(j - 1)];
  const bool value_matches =
      memo.value.has_value() == value.has_value() &&
      (!value.has_value() || same_bytes(*memo.value, *value));
  if (!memo.sig.empty() && memo.tj == tj && value_matches && same_bytes(memo.sig, sig)) {
    staged_digest_ = memo.digest;
    return true;
  }
  crypto::Hash digest;
  if (digest_mode_ == DigestMode::kChunked && value.has_value()) {
    // Incremental re-digest against the last VERIFIED value of C_j: the
    // hasher's tree mirrors memo.value, so only chunks that actually
    // differ are rehashed. The root is derived from the RECEIVED bytes
    // either way — a tampered value yields a root its signature cannot
    // cover, and the check below fails exactly as with a full rehash.
    crypto::ChunkedHasher& h = data_hashers_[static_cast<std::size_t>(j - 1)];
    if (h.initialized() && memo.value.has_value()) {
      h.update_diff(BytesView(*memo.value), *value);
    } else {
      h.reset(*value);
    }
    digest = h.root();
  } else {
    digest = value_digest(digest_mode_, value);
  }
  if (!sigs_->verify(j, data_payload(tj, digest), sig)) {
    // The hasher now mirrors the REJECTED bytes while memo.value still
    // holds the verified ones; restore the invariant before the fail path
    // runs (the client halts right after, but keep the state honest).
    if (digest_mode_ == DigestMode::kChunked && value.has_value()) {
      crypto::ChunkedHasher& h = data_hashers_[static_cast<std::size_t>(j - 1)];
      if (memo.value.has_value()) {
        h.reset(BytesView(*memo.value));
      } else {
        h = crypto::ChunkedHasher{};
      }
    }
    return false;
  }
  memo.tj = tj;
  // Skip the O(K) copy when the bytes already match — which is also the
  // case where `value` may alias memo.value itself (an "unchanged" delta
  // reply verifies the memoized bytes in place).
  if (!value_matches) memo.value = to_owned(value);
  memo.sig.assign(sig.begin(), sig.end());
  memo.digest = digest;
  staged_digest_ = digest;
  return true;
}

bool Client::update_version(const ReplyMessageView& m) {
  const Version& vc = m.last.version;

  // Structural validation (a Byzantine server may send anything): vector
  // sizes and the committer index must be sane before we index with them.
  if (m.c < 1 || m.c > n_ || vc.n() != n_ || static_cast<int>(m.P.size()) != n_ ||
      static_cast<int>(vc.M.size()) != n_) {
    fail(FailCause::kMalformedMessage);
    return false;
  }

  // Line 35: the version must be the initial one or carry a valid
  // COMMIT-signature by C_c.
  if (!vc.is_zero() && !commit_sig_valid(m.c, vc, m.last.commit_sig)) {
    fail(FailCause::kBadCommitSignature);
    return false;
  }

  // Line 36: our own version must be a predecessor, and the server must
  // not have hidden or invented operations of ours.
  if (!version_leq(version_, vc) || vc.v(id_) != version_.v(id_)) {
    fail(FailCause::kVersionRegression);
    return false;
  }

  version_ = vc;                      // line 37
  Digest d = version_.m(m.c);         // line 38

  for (const InvocationTupleView& inv : m.L) {  // lines 39–45
    const ClientId k = inv.client;
    if (k < 1 || k > n_) {
      fail(FailCause::kMalformedMessage);
      return false;
    }
    // Line 41: the server must have received the COMMIT of C_k's previous
    // operation — P[k] proves it and pins C_k's view-history prefix.
    const Digest& mk = version_.m(k);
    if (mk.present && !proof_sig_valid(k, mk, m.P[static_cast<std::size_t>(k - 1)])) {
      fail(FailCause::kBadProofSignature);
      return false;
    }
    version_.v(k) += 1;  // line 42
    // Line 43: we never run concurrently with ourselves, and the SUBMIT
    // signature must bind (oc, target, position).
    if (k == id_) {
      fail(FailCause::kSelfConcurrent);
      return false;
    }
    if (!sigs_->verify(k, submit_payload(inv.oc, inv.target, version_.v(k)),
                       inv.submit_sig)) {
      fail(FailCause::kBadSubmitSignature);
      return false;
    }
    d = chain_step(d, k);   // line 44
    version_.m(k) = d;      // line 45
  }

  version_.v(id_) += 1;                    // line 46
  version_.m(id_) = chain_step(d, id_);    // line 47

  // The position we just computed must equal the timestamp we submitted;
  // otherwise the server inserted or dropped operations of ours (already
  // excluded by line 36 + 43, but cheap to assert defensively).
  if (version_.v(id_) != pending_->t) {
    fail(FailCause::kVersionRegression);
    return false;
  }
  return true;
}

bool Client::check_data(const ReplyMessageView& m, ClientId j) {
  const ReadPayloadView& rp = *m.read;
  const Version& vj = rp.writer.version;

  if (vj.n() != n_ || static_cast<int>(vj.M.size()) != n_) {
    fail(FailCause::kMalformedMessage);
    return false;
  }

  // Line 49: SVER[j] is initial or carries C_j's COMMIT-signature.
  if (!vj.is_zero() && !commit_sig_valid(j, vj, rp.writer.commit_sig)) {
    fail(FailCause::kBadCommitSignature);
    return false;
  }

  // Line 50: the value is bound to t_j by C_j's DATA-signature. Under
  // delta_tolerant_ (the value is a local reconstruction from a delta), a
  // failed binding condemns the delta, not the server: return false so the
  // caller retries in full — that retry either verifies or yields primary
  // evidence that fails the client for real.
  if (rp.tj != 0 && !data_sig_valid(j, rp.tj, rp.value, rp.data_sig)) {
    if (!delta_tolerant_) fail(FailCause::kBadDataSignature);
    return false;
  }
  if (rp.tj == 0) staged_digest_ = bottom_digest_;
  // Tightening consistent with the technical report: when t_j = 0, C_j has
  // never submitted an operation, so the register must still hold ⊥ — no
  // signature exists that could vouch for any other value.
  if (rp.tj == 0 && rp.value.has_value()) {
    if (!delta_tolerant_) fail(FailCause::kBadDataSignature);
    return false;
  }

  // Line 51: the writer's version is in our past, and the returned data
  // stems from the most recent operation of C_j in our view.
  if (!version_leq(vj, m.last.version) || rp.tj != version_.v(j)) {
    fail(FailCause::kStaleRead);
    return false;
  }

  // Line 52: C_j's own entry matches t_j (COMMIT received) or t_j − 1
  // (COMMIT still in flight).
  if (!(vj.v(j) == rp.tj || (rp.tj > 0 && vj.v(j) == rp.tj - 1))) {
    fail(FailCause::kBadWriterTimestamp);
    return false;
  }

  last_read_value_ = to_owned(rp.value);
  last_read_writer_version_ = rp.writer.to_owned();
  last_read_writer_ts_ = rp.tj;
  last_read_digest_ = staged_digest_;
  last_read_sig_ = rp.tj != 0 ? Bytes(rp.data_sig.begin(), rp.data_sig.end()) : Bytes();
  return true;
}

void Client::send_commit() {
  CommitMessage cm;
  cm.version = version_;
  cm.commit_sig = sigs_->sign(id_, commit_payload(version_));
  cm.proof_sig = sigs_->sign(id_, proof_payload(version_.m(id_)));
  commit_sig_ = cm.commit_sig;
  // Prime the memo with our own commit: when the server next echoes our
  // version back as SVER[c], it is skipped without re-verification.
  SignedVersion& memo = verified_commit_[static_cast<std::size_t>(id_ - 1)];
  memo.version = version_;
  memo.commit_sig = commit_sig_;
  net_.send(id_, server_, encode(cm));
  // Retain for the D10 piggyback: the next SUBMIT carries this commit so
  // its delivery cannot be lost independently of the submit.
  last_commit_ = std::move(cm);
}

}  // namespace faust::ustor
